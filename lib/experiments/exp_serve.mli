(** Serve: open-loop arrival-rate sweep over the lock/unlock server —
    requests/served/shed/rejected counts, shed rate and tail latencies
    per base rate at a fixed small admission queue. *)

val rates : float list

(** The sweep's server config at one base rate. *)
val config : rate:float -> Sentry_serve.Server.config

val run : unit -> Sentry_util.Table.t list
