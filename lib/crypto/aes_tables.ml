(** AES lookup tables, derived at startup from [Gf256].

    The layout matches the paper's Table 4 accounting: one 1 KB
    encryption round table and one 1 KB decryption round table
    ("2 Round Tables, 2048 bytes"), the forward and inverse S-boxes
    ("2 S-box, 512 bytes") and the 40-byte Rcon array.  None of these
    contents is secret, but the {e order} in which entries are read
    during a block operation leaks key material to a bus monitor —
    they are the cipher's access-protected state. *)

let sbox = Array.init 256 Gf256.sbox_entry

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i s -> t.(s) <- i) sbox;
  t

(** Rcon as ten 4-byte words: [x^(i) | 0 | 0 | 0]. *)
let rcon =
  let r = Array.make 10 0 in
  let x = ref 1 in
  for i = 0 to 9 do
    r.(i) <- !x;
    x := Gf256.xtime !x
  done;
  r

(** Encryption round table: entry [x] packs the MixColumns column
    produced by S-box output [s = sbox x]: bytes (2s, s, s, 3s). *)
let te_entry x =
  let s = sbox.(x) in
  (Gf256.mul 2 s, s, s, Gf256.mul 3 s)

(** Decryption (InvMixColumns) table: entry [x] packs the column for a
    raw state byte [x]: bytes (14x, 9x, 13x, 11x).  Indexed by state
    bytes after AddRoundKey, so its access pattern is key-dependent
    just like [te]. *)
let td_entry x = (Gf256.mul 14 x, Gf256.mul 9 x, Gf256.mul 13 x, Gf256.mul 11 x)

(* Word-packed copies for the fast (native) implementation.  Byte 0 of
   the tuple is the most significant byte of the word. *)
let pack (b0, b1, b2, b3) = (b0 lsl 24) lor (b1 lsl 16) lor (b2 lsl 8) lor b3

let te_words = Array.init 256 (fun x -> pack (te_entry x))
let td_words = Array.init 256 (fun x -> pack (td_entry x))

(* Byte-rotated copies of the round tables.  A textbook T-table round
   computes [te x], [ror8 (te y)], [ror16 (te z)], [ror24 (te w)]; the
   fast cipher trades 1 KB per rotation for doing no rotation work in
   the inner loop.  Derived, never secret — exactly as
   access-protected as the base tables they alias. *)
let ror8 w = ((w lsr 8) lor ((w land 0xff) lsl 24)) land 0xffffffff

let te_words_r8 = Array.map ror8 te_words
let te_words_r16 = Array.map ror8 te_words_r8
let te_words_r24 = Array.map ror8 te_words_r16
let td_words_r8 = Array.map ror8 td_words
let td_words_r16 = Array.map ror8 td_words_r8
let td_words_r24 = Array.map ror8 td_words_r16

(** Serialised forms used to place the tables in simulated memory for
    the instrumented cipher.  Entry [x] occupies bytes [4x..4x+3]. *)
let serialize_table entry =
  let b = Bytes.create 1024 in
  for x = 0 to 255 do
    let b0, b1, b2, b3 = entry x in
    Bytes.set b (4 * x) (Char.chr b0);
    Bytes.set b ((4 * x) + 1) (Char.chr b1);
    Bytes.set b ((4 * x) + 2) (Char.chr b2);
    Bytes.set b ((4 * x) + 3) (Char.chr b3)
  done;
  b

let te_bytes = serialize_table te_entry
let td_bytes = serialize_table td_entry

let sbox_bytes =
  let b = Bytes.create 256 in
  Array.iteri (fun i s -> Bytes.set b i (Char.chr s)) sbox;
  b

let inv_sbox_bytes =
  let b = Bytes.create 256 in
  Array.iteri (fun i s -> Bytes.set b i (Char.chr s)) inv_sbox;
  b

let rcon_bytes =
  let b = Bytes.make 40 '\000' in
  Array.iteri (fun i r -> Bytes.set b (4 * i) (Char.chr r)) rcon;
  b
