(** Modeled AES performance and energy per variant (Figs 11 and 12).

    The simulator transforms bytes with the fast native cipher and
    charges simulated time/energy according to the variant that would
    have run on hardware.  Constants live in [Sentry_soc.Calib]. *)

open Sentry_soc

type variant =
  | Openssl_user (* generic user-level OpenSSL AES *)
  | Crypto_api_kernel (* generic AES via the kernel Crypto API *)
  | Hw_accelerated of [ `Awake | `Downscaled ]
  | Onsoc_locked_l2 (* AES_On_SoC, state in a locked L2 way *)
  | Onsoc_iram (* AES_On_SoC, state in iRAM *)

type platform = [ `Tegra3 | `Nexus4 ]

let platform_of_machine m =
  match (Machine.config m).Machine.name with
  | "tegra3" -> `Tegra3
  | "nexus4" -> `Nexus4
  | "future" -> `Tegra3 (* same CPU class; pinned memory changes security, not speed *)
  | other -> invalid_arg ("Perf.platform_of_machine: " ^ other)

let variant_name = function
  | Openssl_user -> "Generic AES (OpenSSL)"
  | Crypto_api_kernel -> "Generic AES (kernel CryptoAPI)"
  | Hw_accelerated `Awake -> "Crypto Hardware (awake)"
  | Hw_accelerated `Downscaled -> "Crypto Hardware (down-scaled)"
  | Onsoc_locked_l2 -> "AES_On_SoC (Locked L2)"
  | Onsoc_iram -> "AES_On_SoC (iRAM)"

(** Modeled throughput on 4 KB pages, MB/s. *)
let throughput_mb_s ~(platform : platform) variant =
  match (platform, variant) with
  | `Nexus4, Openssl_user -> Calib.aes_nexus_user_mb_s
  | `Nexus4, Crypto_api_kernel -> Calib.aes_nexus_kernel_mb_s
  | `Nexus4, Hw_accelerated `Awake -> Calib.aes_nexus_hw_awake_mb_s
  | `Nexus4, Hw_accelerated `Downscaled -> Calib.aes_nexus_hw_downscaled_mb_s
  | `Nexus4, Onsoc_locked_l2 ->
      (* no cache locking on the Nexus 4 (locked firmware) *)
      invalid_arg "Perf: locked-L2 AES unavailable on nexus4"
  | `Nexus4, Onsoc_iram ->
      Calib.aes_nexus_kernel_mb_s /. (1.0 +. Calib.aes_onsoc_iram_overhead)
  | `Tegra3, (Openssl_user | Crypto_api_kernel) -> Calib.aes_tegra_generic_mb_s
  | `Tegra3, Onsoc_locked_l2 ->
      Calib.aes_tegra_generic_mb_s /. (1.0 +. Calib.aes_onsoc_locked_l2_overhead)
  | `Tegra3, Onsoc_iram ->
      Calib.aes_tegra_generic_mb_s /. (1.0 +. Calib.aes_onsoc_iram_overhead)
  | `Tegra3, Hw_accelerated _ -> invalid_arg "Perf: no crypto accelerator on tegra3"

(** Modeled full-system energy, J per byte. *)
let j_per_byte = function
  | Openssl_user -> Calib.aes_cpu_j_per_byte
  | Crypto_api_kernel | Onsoc_locked_l2 | Onsoc_iram -> Calib.aes_kernel_j_per_byte
  | Hw_accelerated `Downscaled -> Calib.aes_hw_j_per_byte
  | Hw_accelerated `Awake -> Calib.aes_hw_j_per_byte /. 4.0

(** [charge m variant ~bytes] advances the simulated clock and energy
    meter as if [bytes] had been transformed by [variant]. *)
let charge m variant ~bytes =
  let platform = platform_of_machine m in
  let mb_s = throughput_mb_s ~platform variant in
  let seconds = Sentry_util.Units.bytes_to_mb bytes /. mb_s in
  let start_ns = Clock.now (Machine.clock m) in
  Clock.advance (Machine.clock m) (seconds *. Sentry_util.Units.s);
  if Sentry_obs.Trace.on () then
    Sentry_obs.Trace.span ~cat:Sentry_obs.Event.Crypto ~subsystem:"crypto.perf" ~start_ns
      ~end_ns:(Clock.now (Machine.clock m))
      ~args:
        [
          ("variant", Sentry_obs.Event.Str (variant_name variant));
          ("bytes", Sentry_obs.Event.Int bytes);
        ]
      "aes-charge";
  Energy.charge (Machine.energy m) ~category:"aes"
    (float_of_int bytes *. j_per_byte variant)
