lib/workloads/apps.ml: App
