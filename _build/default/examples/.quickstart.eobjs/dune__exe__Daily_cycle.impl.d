examples/daily_cycle.ml: Address_space Bytes Bytes_util Calib Config Dram Energy List Machine Printf Process Sentry Sentry_core Sentry_kernel Sentry_soc Sentry_util String Suspend System Units Vm
