(** Process model: address space, scheduling state (including the
    un-schedulable [Locked_out] parking of §7) and the Sentry
    sensitivity mark. *)

type run_state = Runnable | Sleeping | Locked_out

type t = {
  pid : int;
  name : string;
  aspace : Address_space.t;
  kstack : int;  (** kernel stack frame (DRAM) for register spills *)
  mutable sensitive : bool;
  mutable state : run_state;
  mutable kernel_time_ns : float;
  mutable user_time_ns : float;
  mutable faults : int;
}

val create : name:string -> aspace:Address_space.t -> kstack:int -> t

(** Restart pid numbering at 1.  Pids are global to the OS process
    (atomically allocated, so concurrent shards never collide);
    deterministic harnesses (trace scenarios) reset before booting so
    repeated runs produce identical event streams. *)
val reset_pids : unit -> unit
val mark_sensitive : t -> unit
val pp : Format.formatter -> t -> unit
