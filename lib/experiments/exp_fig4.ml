(** Fig 4: performance overhead upon device lock (encrypt-on-lock). *)

open Sentry_util

let run () =
  let rows =
    List.map
      (fun (m : Exp_apps.metrics) ->
        [
          m.Exp_apps.profile.Sentry_workloads.App.app_name;
          Printf.sprintf "%.2f s" m.Exp_apps.lock_s;
          Printf.sprintf "%.1f MB" m.Exp_apps.lock_mb;
        ])
      (Exp_apps.all ())
  in
  [
    Table.make ~title:"Fig 4: overhead upon device lock"
      ~header:[ "App"; "Time"; "MB encrypted" ]
      ~notes:
        [
          "Paper: 0.7-2 s per app, proportional to the amount encrypted (Maps 48 MB).";
        ]
      rows;
  ]
