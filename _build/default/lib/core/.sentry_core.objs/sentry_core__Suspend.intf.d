lib/core/suspend.mli: Decrypt_on_unlock Encrypt_on_lock Lock_state Sentry
