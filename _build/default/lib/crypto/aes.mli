(** Fast native AES (the "generic OpenSSL AES" of the paper): the
    bulk-data path used for actual byte transformations.  The
    security-relevant instrumented twin is [Aes_block]; both are
    pinned to FIPS-197 vectors. *)

type key = Aes_key.t

val expand : Bytes.t -> key

val block_size : int

(** [encrypt_block k src src_off dst dst_off] transforms one 16-byte
    block; [src] and [dst] may alias. *)
val encrypt_block : key -> Bytes.t -> int -> Bytes.t -> int -> unit

(** Inverse cipher (direct order, forward schedule applied backwards —
    no separate decryption schedule is stored). *)
val decrypt_block : key -> Bytes.t -> int -> Bytes.t -> int -> unit

(** One-shot block APIs (fresh output buffer). *)
val encrypt_block_copy : key -> Bytes.t -> Bytes.t

val decrypt_block_copy : key -> Bytes.t -> Bytes.t
