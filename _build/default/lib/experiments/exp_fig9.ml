(** Fig 9: dm-crypt throughput under filebench — randread and randrw,
    cached and direct I/O, for no-crypto / generic AES / Sentry. *)

open Sentry_util
open Sentry_core
open Sentry_workloads

let fileset_mb = 12
let nfiles = 12
let ops = 1200

let one ~crypto ~workload ~direct_io =
  let seed = Hashtbl.hash (Filebench.crypto_name crypto, Filebench.workload_name workload, direct_io) in
  let system = System.boot `Tegra3 ~seed in
  (* Sentry must be installed so AES_On_SoC is in the Crypto API *)
  (match crypto with
  | Filebench.Sentry_aes -> ignore (Sentry.install system (Config.default `Tegra3))
  | Filebench.No_crypto | Filebench.Generic_aes -> ());
  let setup = Filebench.prepare system ~crypto ~fileset_mb ~nfiles in
  let r = Filebench.run setup workload ~direct_io ~ops ~seed in
  r.Filebench.throughput_mb_s

let table_for workload =
  let configs = [ Filebench.No_crypto; Filebench.Generic_aes; Filebench.Sentry_aes ] in
  let rows =
    List.map
      (fun crypto ->
        [
          Filebench.crypto_name crypto;
          Printf.sprintf "%.1f MB/s" (one ~crypto ~workload ~direct_io:false);
          Printf.sprintf "%.1f MB/s" (one ~crypto ~workload ~direct_io:true);
        ])
      configs
  in
  Table.make
    ~title:(Printf.sprintf "Fig 9: dm-crypt filebench '%s'" (Filebench.workload_name workload))
    ~header:[ "Config"; "cached"; "direct I/O" ]
    ~notes:
      [
        "Paper (log scale): the buffer cache masks encryption for cached randread;";
        "direct I/O exposes it -- generic AES and Sentry land within a few % of each other.";
      ]
    rows

let run () =
  [ table_for Filebench.Randread; table_for Filebench.Randrw; table_for Filebench.Seqread ]
