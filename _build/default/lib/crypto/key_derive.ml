(** Root key management (§7, Bootstrapping).

    Sentry uses two AES root keys:
    - a {e volatile} key protecting sensitive applications' memory
      pages, generated fresh on every boot and stored only on-SoC;
    - a {e persistent} key protecting on-disk state (dm-crypt),
      derived from the boot password and a secret in the device's
      secure hardware fuse, read from the TrustZone secure world. *)

open Sentry_soc

let key_len = 16

(** [volatile_key machine] — fresh random per-boot key. *)
let volatile_key machine = Sentry_util.Prng.bytes (Machine.prng machine) key_len

(** Iterated hash stretch: 4096 rounds of SHA-256 over
    password ‖ fuse-secret ‖ round-counter. *)
let stretch ~password ~fuse_secret =
  let state = ref (Bytes.cat (Bytes.of_string password) fuse_secret) in
  for round = 0 to 4095 do
    let counter = Bytes.make 4 '\000' in
    Bytes.set counter 0 (Char.chr (round land 0xff));
    Bytes.set counter 1 (Char.chr ((round lsr 8) land 0xff));
    state := Sha256.digest (Bytes.cat !state counter)
  done;
  Bytes.sub !state 0 key_len

(** [persistent_key machine ~password] reads the fuse from the secure
    world and derives the disk root key.
    @raise Trustzone.Permission_denied outside the secure world path. *)
let persistent_key machine ~password =
  let tz = Machine.trustzone machine in
  Trustzone.with_secure_world tz (fun () ->
      let fuse_secret = Trustzone.read_fuse tz in
      stretch ~password ~fuse_secret)
