(** ESSIV ("encrypted salt-sector IV") generation for block-device
    encryption, as used by dm-crypt's default [aes-cbc-essiv:sha256]
    mode.

    IV(sector) = AES_{s}(sector_number_le) where s = SHA-256(key).
    Prevents watermarking attacks that predictable sector IVs allow. *)

type t = { salt_key : Aes.key }

(** [create ~key] hashes the volume key into the IV-generating key. *)
let create ~key = { salt_key = Aes.expand (Sha256.digest key) }

(** [iv t ~sector] is the 16-byte IV for the given sector number
    (little-endian encoded, zero padded). *)
let iv t ~sector =
  let block = Bytes.make 16 '\000' in
  for i = 0 to 7 do
    Bytes.set block i (Char.chr ((sector lsr (8 * i)) land 0xff))
  done;
  Aes.encrypt_block_copy t.salt_key block
