(** Off-SoC DRAM with a Table 2-calibrated data-remanence model.  The
    backing store is directly inspectable — cold-boot and DMA attacks
    read this array, not the CPU's cached view. *)

open Sentry_util

type t

val create : bus:Bus.t -> clock:Clock.t -> prng:Prng.t -> size:int -> t
val region : t -> Memmap.region
val size : t -> int
val contains : t -> int -> bool

(** Raised by any access while the rails are down ([set_powered t
    false]) — a power fault, distinct from the [Invalid_argument]
    programming errors. *)
exception Powered_off

(** Bus-visible fetch/store (used by the L2 controller, uncached CPU
    accesses and DMA). *)
val read : t -> initiator:[ `Cpu | `Dma | `L2 ] -> int -> int -> Bytes.t

(** Scatter-gather fetch straight into [buf] at [off]: no intermediate
    buffer; bus transaction, taint and energy bit-identical to [read]
    (which is implemented on top). *)
val read_into :
  t -> initiator:[ `Cpu | `Dma | `L2 ] -> int -> Bytes.t -> off:int -> len:int -> unit

(** [write t ~initiator ?level ?taint addr b] — the written range's
    shadow comes from [taint] (per-byte labels, e.g. an evicted cache
    line's) when given, else uniformly from [level] (default
    [Public]). *)
val write :
  t ->
  initiator:[ `Cpu | `Dma | `L2 ] ->
  ?level:Taint.level ->
  ?taint:Bytes.t ->
  int ->
  Bytes.t ->
  unit

(** Scatter-gather store of the [len]-byte view of [buf] at [off];
    [write] is implemented on top. *)
val write_from :
  t ->
  initiator:[ `Cpu | `Dma | `L2 ] ->
  ?level:Taint.level ->
  ?taint:Bytes.t ->
  int ->
  Bytes.t ->
  off:int ->
  len:int ->
  unit

(** The access check alone ([Powered_off] / range), for fast paths
    that hoist it out of a per-line loop. *)
val validate : t -> int -> int -> unit

(** The memory bus this DRAM answers on, for fast paths that inline
    their own transaction accounting. *)
val bus : t -> Bus.t

(** Lazily allocate the taint shadow (no-op when already enabled). *)
val enable_taint : t -> unit

val taint_enabled : t -> bool

(** Taint join over a physical range ([Public] when tracking is off). *)
val taint_range : t -> int -> int -> Taint.level

(** Copy of the shadow labels behind a physical range. *)
val shadow_of_range : t -> int -> int -> Bytes.t

(** Copy the shadow labels behind a range into [dst] at [dst_off]
    (all-[Public] when tracking is off) — the allocation-free twin of
    [shadow_of_range]. *)
val blit_shadow_into : t -> int -> int -> Bytes.t -> int -> unit

(** Uniformly relabel a physical range. *)
val set_taint : t -> int -> int -> Taint.level -> unit

(** The raw shadow store (same layout as [raw]); [None] until taint
    tracking is enabled. *)
val shadow : t -> Bytes.t option

(** Direct backing-store access (attack tooling / test assertions —
    no bus traffic). *)
val raw : t -> Bytes.t

val snapshot : t -> Bytes.t

(** Model [off_s] seconds without power: each byte survives with the
    calibrated probability; decayed bytes fall to the per-row ground
    state.  The module must already be powered off ([set_powered t
    false]) — cells decay only without self-refresh.
    @raise Invalid_argument on a still-powered module. *)
val power_cycle : t -> off_s:float -> unit

val set_powered : t -> bool -> unit
