lib/soc/trustzone.mli: Bytes Fuse Memmap
