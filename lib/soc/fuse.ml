(** Secure hardware fuse.

    Holds a random, hard-to-guess per-device secret, readable only by
    code running inside the TrustZone secure world (§7, Bootstrapping).
    Also carries the JTAG-disable fuse (§3.2). *)

open Sentry_util

type t = { secret : Bytes.t; mutable jtag_enabled : bool; mutable burned : bool }

let secret_len = 32

let burned t = t.burned
let create ~prng = { secret = Prng.bytes prng secret_len; jtag_enabled = true; burned = false }

(** Raw secret — callers must go through [Trustzone.read_fuse], which
    enforces the secure-world check; this function is the hardware
    wire, exposed for the TrustZone implementation only. *)
let secret_unchecked t = Bytes.copy t.secret

(** Burn the JTAG fuse at provisioning time; irreversible. *)
let burn_jtag_fuse t =
  t.jtag_enabled <- false;
  t.burned <- true

let jtag_enabled t = t.jtag_enabled
