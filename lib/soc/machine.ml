(** The assembled platform.

    Two configurations mirror the paper's prototypes:
    - [tegra3]: firmware access available, so L2 cache locking can be
      enabled; iRAM too; no useful crypto accelerator; not optimised
      for energy.
    - [nexus4]: locked firmware — no cache locking, no TrustZone
      access; iRAM available; has a crypto accelerator; retail energy
      characteristics.

    All CPU loads/stores go through [read]/[write]; DRAM addresses are
    cached through the PL310, iRAM addresses are served on-SoC.  The
    [read_uncached]/[write_uncached] pair models device-style or
    explicitly uncached mappings. *)

open Sentry_util

type config = {
  name : string;
  dram_size : int;
  iram_size : int;
  cache_locking_available : bool;
  has_crypto_accel : bool;
  trustzone_available : bool;
  has_pinned_memory : bool; (* the §10 future-architecture feature *)
}

let tegra3 ?(dram_size = 32 * Units.mib) () =
  {
    name = "tegra3";
    dram_size;
    iram_size = Memmap.default_iram_size;
    cache_locking_available = true;
    has_crypto_accel = false;
    trustzone_available = true;
    has_pinned_memory = false;
  }

let nexus4 ?(dram_size = 32 * Units.mib) () =
  {
    name = "nexus4";
    dram_size;
    iram_size = Memmap.default_iram_size;
    cache_locking_available = false;
    has_crypto_accel = true;
    trustzone_available = false;
    has_pinned_memory = false;
  }

(** The hypothetical platform of §10's architecture suggestion: a
    Tegra-class SoC plus a dedicated pin-on-SoC memory. *)
let future ?(dram_size = 32 * Units.mib) () =
  { (tegra3 ~dram_size ()) with name = "future"; has_pinned_memory = true }

type t = {
  conf : config;
  clock : Clock.t;
  energy : Energy.t;
  prng : Prng.t;
  bus : Bus.t;
  dram : Dram.t;
  iram : Iram.t;
  l2 : Pl310.t;
  fuse : Fuse.t;
  tz : Trustzone.t;
  dma : Dma.t;
  cpu : Cpu.t;
  pinned : Pinned_mem.t option;
  byte_scratch : Bytes.t; (* 1-byte buffer backing read_byte/write_byte *)
  mutable boots : int;
  mutable ambient_taint : Taint.level; (* label applied to CPU stores *)
}

let create ?(seed = 0x5e17) conf =
  let clock = Clock.create () in
  let energy = Energy.create () in
  let prng = Prng.create ~seed in
  let bus = Bus.create ~clock ~energy in
  let dram = Dram.create ~bus ~clock ~prng ~size:conf.dram_size in
  let iram = Iram.create ~clock ~energy ~size:conf.iram_size in
  let l2 = Pl310.create ~dram ~clock ~energy () in
  let fuse = Fuse.create ~prng in
  let tz = Trustzone.create ~fuse in
  let dma = Dma.create ~dram ~iram ~tz ~clock ~energy in
  let cpu = Cpu.create ~clock in
  let pinned =
    if conf.has_pinned_memory then
      Some (Pinned_mem.create ~clock ~energy ~size:Memmap.default_pinned_size)
    else None
  in
  {
    conf;
    clock;
    energy;
    prng;
    bus;
    dram;
    iram;
    l2;
    fuse;
    tz;
    dma;
    cpu;
    pinned;
    byte_scratch = Bytes.create 1;
    boots = 1;
    ambient_taint = Taint.Public;
  }

let config t = t.conf
let clock t = t.clock
let energy t = t.energy
let prng t = t.prng
let bus t = t.bus
let dram t = t.dram
let iram t = t.iram
let l2 t = t.l2
let fuse t = t.fuse
let trustzone t = t.tz
let dma t = t.dma
let cpu t = t.cpu
let pinned t = t.pinned
let now t = Clock.now t.clock

let dram_region t = Dram.region t.dram
let iram_region t = Iram.region t.iram

(* --------------------------- taint ------------------------------- *)

(** Allocate every shadow store: DRAM, iRAM, L2 lines, pinned memory.
    Idempotent; zero cost until called (the default). *)
let enable_taint t =
  Pl310.enable_taint t.l2;
  (* Pl310.enable_taint covers DRAM *)
  Iram.enable_taint t.iram;
  Option.iter Pinned_mem.enable_taint t.pinned

let taint_enabled t = Pl310.taint_enabled t.l2

(** [with_taint t level f] — run [f] with every CPU store it performs
    labelled [level].  This is the source-tagging primitive: writers
    that know they are moving key material or ciphertext declare it
    here without changing call-site signatures below them.  Nests:
    the innermost label wins. *)
let with_taint t level f =
  let saved = t.ambient_taint in
  t.ambient_taint <- level;
  Fun.protect ~finally:(fun () -> t.ambient_taint <- saved) f

let ambient_taint t = t.ambient_taint

(* ------------------------- CPU memory ops ------------------------ *)

let in_dram t addr = Dram.contains t.dram addr
let in_iram t addr = Iram.contains t.iram addr

let in_pinned t addr =
  match t.pinned with Some p -> Pinned_mem.contains p addr | None -> false

(** Taint join over a physical range, seen through the cache for DRAM
    addresses.  [Public] when tracking is off or the address is
    unmapped. *)
let taint_of t addr len =
  if in_dram t addr then Pl310.taint_range t.l2 addr len
  else if in_iram t addr then Iram.taint_range t.iram addr len
  else
    match t.pinned with
    | Some p when Pinned_mem.contains p addr -> Pinned_mem.taint_range p addr len
    | Some _ | None -> Taint.Public

exception Bus_fault of int

(** Cached CPU read straight into the caller's buffer: identical
    accounting to [read] (which is implemented on top), no
    allocation. *)
let read_into t addr buf ~off ~len =
  if in_dram t addr then Pl310.read_into t.l2 addr buf ~off ~len
  else if in_iram t addr then Iram.read_into t.iram addr buf ~off ~len
  else
    match t.pinned with
    | Some p when Pinned_mem.contains p addr -> Pinned_mem.read_into p addr buf ~off ~len
    | Some _ | None -> raise (Bus_fault addr)

(** Cached CPU read of [len] bytes at physical [addr]. *)
let read t addr len =
  let b = Bytes.create len in
  read_into t addr b ~off:0 ~len;
  b

(** Cached CPU write of the [len]-byte view of [buf] at [off]; bytes
    are labelled with the ambient taint.  [write] is implemented on
    top. *)
let write_from t addr buf ~off ~len =
  (* fault hook: bit flips land in DRAM behind this store; power loss /
     reset here models a crash between arbitrary kernel stores *)
  Sentry_faults.Injector.fire Sentry_faults.Injector.Points.machine_write;
  if in_dram t addr then Pl310.write_from t.l2 ~taint:t.ambient_taint addr buf ~off ~len
  else if in_iram t addr then Iram.write_from t.iram ~level:t.ambient_taint addr buf ~off ~len
  else
    match t.pinned with
    | Some p when Pinned_mem.contains p addr ->
        Pinned_mem.write_from p ~level:t.ambient_taint addr buf ~off ~len
    | Some _ | None -> raise (Bus_fault addr)

(** Cached CPU write; bytes are labelled with the ambient taint. *)
let write t addr b = write_from t addr b ~off:0 ~len:(Bytes.length b)

(** Batched-pipeline page-run read: [Pl310.read_run_into] for DRAM
    addresses (bit-identical state evolution to [read_into], tight
    host loop), the generic path elsewhere. *)
let read_run_into t addr buf ~off ~len =
  if in_dram t addr then Pl310.read_run_into t.l2 addr buf ~off ~len
  else read_into t addr buf ~off ~len

(** Page-run write twin of [read_run_into]; same fault hook and taint
    labelling as [write_from]. *)
let write_run_from t addr buf ~off ~len =
  Sentry_faults.Injector.fire Sentry_faults.Injector.Points.machine_write;
  if in_dram t addr then Pl310.write_run_from t.l2 ~taint:t.ambient_taint addr buf ~off ~len
  else if in_iram t addr then Iram.write_from t.iram ~level:t.ambient_taint addr buf ~off ~len
  else
    match t.pinned with
    | Some p when Pinned_mem.contains p addr ->
        Pinned_mem.write_from p ~level:t.ambient_taint addr buf ~off ~len
    | Some _ | None -> raise (Bus_fault addr)

(** Uncached CPU access: goes straight to DRAM over the bus (device
    memory attribute / explicitly uncached mapping). *)
let read_uncached t addr len =
  if in_dram t addr then begin
    Clock.advance t.clock (float_of_int ((len + 31) / 32) *. Calib.dram_line_ns);
    Dram.read t.dram ~initiator:`Cpu addr len
  end
  else read t addr len

let write_uncached t addr b =
  if in_dram t addr then begin
    Clock.advance t.clock
      (float_of_int ((Bytes.length b + 31) / 32) *. Calib.dram_line_ns);
    Dram.write t.dram ~initiator:`Cpu ~level:t.ambient_taint addr b
  end
  else write t addr b

(** Bulk raw store with no per-access charging: for operations whose
    cost is modeled wholesale from a calibrated rate (e.g. the zeroing
    thread's non-temporal store stream).  Bypasses cache and bus
    accounting; any stale cache lines over the range are dropped. *)
let write_raw t addr b =
  if in_dram t addr then begin
    let off = addr - (Dram.region t.dram).Memmap.base in
    Bytes.blit b 0 (Dram.raw t.dram) off (Bytes.length b);
    Dram.set_taint t.dram addr (Bytes.length b) t.ambient_taint;
    Pl310.invalidate_range t.l2 addr (Bytes.length b)
  end
  else write t addr b

(* Single-byte accessors reuse the machine's one-byte scratch buffer
   instead of allocating per call. *)
let read_byte t addr =
  read_into t addr t.byte_scratch ~off:0 ~len:1;
  Bytes.get t.byte_scratch 0

let write_byte t addr c =
  Bytes.set t.byte_scratch 0 c;
  write_from t addr t.byte_scratch ~off:0 ~len:1

(** Charge pure compute time (no memory traffic). *)
let compute t ~ns = Clock.advance t.clock ns

(* ---------------------------- reboot ----------------------------- *)

type reboot = Warm | Reflash | Hard_reset of float

(** [reboot t kind] models the three cold-boot-relevant resets of the
    Table 2 experiment.

    - [Warm]: OS reboot, no power loss.  iRAM and DRAM cells keep
      their charge, but the booting kernel overwrites its own
      footprint (~3.6% of DRAM).  The boot ROM reinitialises the L2
      controller (invalidating without cleaning — dirty data is lost,
      not leaked).
    - [Reflash]: short power disconnect (tapping RESET, ~0.2 s) to
      enter the flasher.  DRAM decays slightly (97.5% survives);
      firmware zeroes iRAM and resets the L2.
    - [Hard_reset d]: power removed for [d] seconds (pulling the
      module / holding RESET).  DRAM decays per the remanence curve;
      iRAM and L2 are firmware-cleared. *)
let reboot t kind =
  t.boots <- t.boots + 1;
  Cpu.zero_regs t.cpu;
  Cpu.enable_irqs t.cpu;
  (* the pinned memory's boot ROM runs unconditionally on every reset *)
  Option.iter Pinned_mem.boot_rom_clear t.pinned;
  (match kind with
  | Warm ->
      (* Kernel image + early boot allocations clobber low DRAM. *)
      let overwrite =
        int_of_float (Calib.warm_reboot_overwrite_fraction *. float_of_int t.conf.dram_size)
      in
      Bytes.fill (Dram.raw t.dram) 0 overwrite '\000';
      Dram.set_taint t.dram (Dram.region t.dram).Memmap.base overwrite Taint.Public;
      Pl310.reset t.l2
  | Reflash ->
      Dram.set_powered t.dram false;
      Dram.power_cycle t.dram ~off_s:0.2;
      Dram.set_powered t.dram true;
      Iram.firmware_clear t.iram;
      Pl310.reset t.l2
  | Hard_reset off_s ->
      Dram.set_powered t.dram false;
      Dram.power_cycle t.dram ~off_s;
      Dram.set_powered t.dram true;
      Iram.firmware_clear t.iram;
      Pl310.reset t.l2);
  Clock.advance t.clock (2.0 *. Units.s)

let boots t = t.boots
