lib/kernel/block_dev.ml: Blockio Bytes Calib Clock Energy Machine Sentry_soc Sentry_util
