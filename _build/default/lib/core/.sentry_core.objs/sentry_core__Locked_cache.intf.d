lib/core/locked_cache.mli: Hashtbl Machine Sentry_soc
