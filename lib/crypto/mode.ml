(** Block cipher modes of operation, generic over a 16-byte block
    transform so the native and instrumented ciphers share them.

    Sentry uses CBC — the Android/Linux default (§6.1). *)

type block_fn = bytes -> int -> bytes -> int -> unit
(** [f src src_off dst dst_off] transforms one 16-byte block. *)

type cipher = { encrypt : block_fn; decrypt : block_fn }

let of_key k = { encrypt = Aes.encrypt_block k; decrypt = Aes.decrypt_block k }

let block = 16

let check_blocks name data =
  if Bytes.length data mod block <> 0 then
    invalid_arg (name ^ ": data not a multiple of the block size")

(* ------------------------- scatter-gather ------------------------- *)

(* The [_into] variants transform [len] bytes from [src] at [src_off]
   into [dst] at [dst_off]; [src] and [dst] may be the same buffer at
   the same offset (in-place).  They are the zero-allocation bulk path
   under the page pipeline; the classic allocating entry points below
   are thin wrappers over them. *)

type scratch = { chain : Bytes.t; tmp : Bytes.t }

(** Reusable chaining state for the [_into] CBC paths: one [scratch]
    per long-lived cipher owner avoids two buffer allocations per
    call. *)
let make_scratch () = { chain = Bytes.create block; tmp = Bytes.create block }

let check_into name ~src ~src_off ~dst ~dst_off ~len =
  if len mod block <> 0 then invalid_arg (name ^ ": data not a multiple of the block size");
  if src_off < 0 || src_off + len > Bytes.length src then invalid_arg (name ^ ": bad src range");
  if dst_off < 0 || dst_off + len > Bytes.length dst then invalid_arg (name ^ ": bad dst range")

(* xor the 16-byte [chain] into [dst] at [dst_off] *)
let xor16_at chain dst dst_off =
  for i = 0 to block - 1 do
    Bytes.unsafe_set dst (dst_off + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get chain i)
         lxor Char.code (Bytes.unsafe_get dst (dst_off + i))))
  done

(* ------------------------------ ECB ------------------------------ *)

let ecb_encrypt_into c ~src ~src_off ~dst ~dst_off ~len =
  check_into "Mode.ecb_encrypt_into" ~src ~src_off ~dst ~dst_off ~len;
  for i = 0 to (len / block) - 1 do
    c.encrypt src (src_off + (block * i)) dst (dst_off + (block * i))
  done

let ecb_decrypt_into c ~src ~src_off ~dst ~dst_off ~len =
  check_into "Mode.ecb_decrypt_into" ~src ~src_off ~dst ~dst_off ~len;
  for i = 0 to (len / block) - 1 do
    c.decrypt src (src_off + (block * i)) dst (dst_off + (block * i))
  done

let ecb_encrypt c data =
  check_blocks "Mode.ecb_encrypt" data;
  let out = Bytes.create (Bytes.length data) in
  ecb_encrypt_into c ~src:data ~src_off:0 ~dst:out ~dst_off:0 ~len:(Bytes.length data);
  out

let ecb_decrypt c data =
  check_blocks "Mode.ecb_decrypt" data;
  let out = Bytes.create (Bytes.length data) in
  ecb_decrypt_into c ~src:data ~src_off:0 ~dst:out ~dst_off:0 ~len:(Bytes.length data);
  out

(* ------------------------------ CBC ------------------------------ *)

let cbc_encrypt_into ?scratch c ~iv ~src ~src_off ~dst ~dst_off ~len =
  check_into "Mode.cbc_encrypt_into" ~src ~src_off ~dst ~dst_off ~len;
  if Bytes.length iv <> block then invalid_arg "Mode.cbc_encrypt_into: bad IV";
  let { chain; tmp } = match scratch with Some s -> s | None -> make_scratch () in
  Bytes.blit iv 0 chain 0 block;
  for i = 0 to (len / block) - 1 do
    Bytes.blit src (src_off + (block * i)) tmp 0 block;
    Sentry_util.Bytes_util.xor_into ~src:chain ~dst:tmp;
    c.encrypt tmp 0 dst (dst_off + (block * i));
    Bytes.blit dst (dst_off + (block * i)) chain 0 block
  done

let cbc_decrypt_into ?scratch c ~iv ~src ~src_off ~dst ~dst_off ~len =
  check_into "Mode.cbc_decrypt_into" ~src ~src_off ~dst ~dst_off ~len;
  if Bytes.length iv <> block then invalid_arg "Mode.cbc_decrypt_into: bad IV";
  let { chain; tmp } = match scratch with Some s -> s | None -> make_scratch () in
  Bytes.blit iv 0 chain 0 block;
  for i = 0 to (len / block) - 1 do
    (* save the ciphertext block first so src and dst may alias *)
    Bytes.blit src (src_off + (block * i)) tmp 0 block;
    c.decrypt src (src_off + (block * i)) dst (dst_off + (block * i));
    xor16_at chain dst (dst_off + (block * i));
    Bytes.blit tmp 0 chain 0 block
  done

let cbc_encrypt c ~iv data =
  check_blocks "Mode.cbc_encrypt" data;
  if Bytes.length iv <> block then invalid_arg "Mode.cbc_encrypt: bad IV";
  let out = Bytes.create (Bytes.length data) in
  cbc_encrypt_into c ~iv ~src:data ~src_off:0 ~dst:out ~dst_off:0 ~len:(Bytes.length data);
  out

let cbc_decrypt c ~iv data =
  check_blocks "Mode.cbc_decrypt" data;
  if Bytes.length iv <> block then invalid_arg "Mode.cbc_decrypt: bad IV";
  let out = Bytes.create (Bytes.length data) in
  cbc_decrypt_into c ~iv ~src:data ~src_off:0 ~dst:out ~dst_off:0 ~len:(Bytes.length data);
  out

(* ------------------------------ CTR ------------------------------ *)

let incr_counter ctr =
  let rec go i =
    if i >= 0 then begin
      let v = (Char.code (Bytes.get ctr i) + 1) land 0xff in
      Bytes.set ctr i (Char.chr v);
      if v = 0 then go (i - 1)
    end
  in
  go (block - 1)

(** CTR encrypt = decrypt; works on any length. *)
let ctr_transform c ~nonce data =
  if Bytes.length nonce <> block then invalid_arg "Mode.ctr_transform: bad nonce";
  let n = Bytes.length data in
  let out = Bytes.create n in
  let ctr = Bytes.copy nonce in
  let keystream = Bytes.create block in
  let off = ref 0 in
  while !off < n do
    c.encrypt ctr 0 keystream 0;
    let chunk = min block (n - !off) in
    for i = 0 to chunk - 1 do
      Bytes.set out (!off + i)
        (Char.chr
           (Char.code (Bytes.get data (!off + i))
           lxor Char.code (Bytes.get keystream i)))
    done;
    incr_counter ctr;
    off := !off + block
  done;
  out

(* ----------------------------- PKCS#7 ---------------------------- *)

let pad_pkcs7 data =
  let n = Bytes.length data in
  let padlen = block - (n mod block) in
  let out = Bytes.create (n + padlen) in
  Bytes.blit data 0 out 0 n;
  Bytes.fill out n padlen (Char.chr padlen);
  out

let unpad_pkcs7 data =
  let n = Bytes.length data in
  if n = 0 || n mod block <> 0 then invalid_arg "Mode.unpad_pkcs7: bad length";
  let padlen = Char.code (Bytes.get data (n - 1)) in
  if padlen = 0 || padlen > block then invalid_arg "Mode.unpad_pkcs7: bad padding";
  for i = n - padlen to n - 1 do
    if Char.code (Bytes.get data i) <> padlen then invalid_arg "Mode.unpad_pkcs7: bad padding"
  done;
  Bytes.sub data 0 (n - padlen)
