lib/crypto/accessor.mli: Bytes Machine Sentry_soc
