(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation (§8), then runs the Bechamel microbenchmark
    suite over the implementation's primitives.

    {v
    dune exec bench/main.exe                 # everything
    dune exec bench/main.exe -- fig9 fig10   # selected experiments
    dune exec bench/main.exe -- micro        # microbenchmarks only
    dune exec bench/main.exe -- --list       # what exists
    v} *)

let list_experiments () =
  print_endline "Available experiments:";
  List.iter
    (fun (e : Sentry_experiments.Experiments.entry) ->
      Printf.printf "  %-11s %s\n" e.Sentry_experiments.Experiments.id
        e.Sentry_experiments.Experiments.description)
    Sentry_experiments.Experiments.all;
  print_endline "  micro       bechamel microbenchmarks"

let run_all () =
  print_endline "Sentry: reproduction of every table and figure (ASPLOS'15)";
  print_endline "==========================================================\n";
  List.iter Sentry_experiments.Experiments.run_and_print Sentry_experiments.Experiments.all;
  Micro.run ()

let run_selected ~csv ids =
  List.iter
    (fun id ->
      if id = "micro" then Micro.run ()
      else
        match Sentry_experiments.Experiments.find id with
        | Some e ->
            if csv then
              List.iter
                (fun t -> print_string (Sentry_util.Table.to_csv t))
                (e.Sentry_experiments.Experiments.run ())
            else Sentry_experiments.Experiments.run_and_print e
        | None ->
            Printf.eprintf "unknown experiment %S (try --list)\n" id;
            exit 1)
    ids

open Cmdliner

let ids =
  let doc = "Experiment ids to run (default: all + micro). Use --list to enumerate." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_flag =
  let doc = "List available experiments." in
  Arg.(value & flag & info [ "list" ] ~doc)

let csv_flag =
  let doc = "Emit CSV instead of aligned tables (selected experiments only)." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let main list_it csv ids =
  if list_it then list_experiments ()
  else match ids with [] -> run_all () | ids -> run_selected ~csv ids

let cmd =
  let doc = "regenerate the Sentry paper's tables and figures" in
  Cmd.v (Cmd.info "sentry-bench" ~doc) Term.(const main $ list_flag $ csv_flag $ ids)

let () = exit (Cmd.eval cmd)
