lib/attacks/cold_boot.ml: Dram Iram Key_finder Machine Memdump Memmap Sentry_soc
