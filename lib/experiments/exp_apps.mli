(** Shared runner for the Figs 2-5 application macrobenchmarks: each
    app runs a full launch -> lock -> unlock+resume -> scripted-session
    cycle on the Nexus 4 configuration, with AES energy metered. *)

type metrics = {
  profile : Sentry_workloads.App.profile;
  lock_s : float;
  lock_mb : float;
  lock_j : float;
  unlock_s : float;
  unlock_mb : float;
  unlock_j : float;
  script_elapsed_s : float;
  script_overhead_pct : float;
  script_mb : float;
}

(** Run one app cycle under [backend] (default [Batched]).  Only the
    default-backend results are memoized by [all]. *)
val run_app :
  ?backend:Sentry_core.Sentry.backend -> Sentry_workloads.App.profile -> metrics

(** All four apps, computed once per trial and shared by Figs 2-5. *)
val all : unit -> metrics list

(** Drop the memo behind [all] so the next call re-runs the app
    cycles (bench trial isolation). *)
val reset : unit -> unit
