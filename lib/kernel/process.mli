(** Process model: address space, scheduling state (including the
    un-schedulable [Locked_out] parking of §7) and the Sentry
    sensitivity mark. *)

type run_state = Runnable | Sleeping | Locked_out

type t = {
  pid : int;
  name : string;
  aspace : Address_space.t;
  kstack : int;  (** kernel stack frame (DRAM) for register spills *)
  mutable sensitive : bool;
  mutable state : run_state;
  mutable kernel_time_ns : float;
  mutable user_time_ns : float;
  mutable faults : int;
}

(** [create ?pid ~name ~aspace ~kstack ()] — an explicit [pid]
    bypasses the global allocator entirely (the sharded fleet assigns
    deterministic per-shard pid ranges this way, because pids feed
    the per-page ESSIV IVs); without it the pid comes off the global
    atomic counter. *)
val create : ?pid:int -> name:string -> aspace:Address_space.t -> kstack:int -> unit -> t

(** Restart global pid numbering at 1.  Default pids are global to
    the OS process (atomically allocated, so concurrent domains never
    collide but do interleave); single-domain deterministic harnesses
    (trace scenarios) reset before booting so repeated runs produce
    identical event streams.  Sharded harnesses use explicit
    per-shard pids instead — see {!create}. *)
val reset_pids : unit -> unit
val mark_sensitive : t -> unit
val pp : Format.formatter -> t -> unit
