lib/util/units.ml: Fmt
