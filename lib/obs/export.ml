(** Exporters: Chrome [trace_event] JSON (Perfetto /
    [chrome://tracing]), a JSONL event dump, folded stacks for
    flamegraph tooling, a self/total-time span profile, and the flat
    metrics report behind [BENCH_sentry.json]. *)

let arg_json = function
  | Event.Int i -> Json_out.Int i
  | Event.Float f -> Json_out.Float f
  | Event.Str s -> Json_out.Str s
  | Event.Bool b -> Json_out.Bool b

let args_json args = Json_out.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)

(* ----------------------- Chrome trace_event ---------------------- *)

(* trace_event timestamps are microseconds. *)
let us ns = ns /. 1000.0

(** One lane (Chrome "thread") per subsystem, in order of first
    appearance; lane names are announced with [thread_name] metadata
    events as the format prescribes. *)
let chrome_trace ?(process_name = "sentry-sim") events =
  let tids = Hashtbl.create 16 in
  let order = ref [] in
  let tid_of subsystem =
    match Hashtbl.find_opt tids subsystem with
    | Some tid -> tid
    | None ->
        let tid = Hashtbl.length tids + 1 in
        Hashtbl.add tids subsystem tid;
        order := (subsystem, tid) :: !order;
        tid
  in
  let event_json (e : Event.t) =
    let common =
      [
        ("name", Json_out.Str e.Event.name);
        ("cat", Json_out.Str (Event.category_name e.Event.cat));
        ("pid", Json_out.Int 1);
        ("tid", Json_out.Int (tid_of e.Event.subsystem));
        ("ts", Json_out.Float (us e.Event.ts_ns));
        ("args", args_json e.Event.args);
      ]
    in
    match e.Event.phase with
    | Event.Instant -> Json_out.Obj (("ph", Json_out.Str "i") :: ("s", Json_out.Str "t") :: common)
    | Event.Complete dur ->
        Json_out.Obj (("ph", Json_out.Str "X") :: ("dur", Json_out.Float (us dur)) :: common)
    | Event.Counter -> Json_out.Obj (("ph", Json_out.Str "C") :: common)
  in
  let body = List.map event_json events in
  let meta =
    Json_out.Obj
      [
        ("name", Json_out.Str "process_name");
        ("ph", Json_out.Str "M");
        ("pid", Json_out.Int 1);
        ("args", Json_out.Obj [ ("name", Json_out.Str process_name) ]);
      ]
    :: List.rev_map
         (fun (subsystem, tid) ->
           Json_out.Obj
             [
               ("name", Json_out.Str "thread_name");
               ("ph", Json_out.Str "M");
               ("pid", Json_out.Int 1);
               ("tid", Json_out.Int tid);
               ("args", Json_out.Obj [ ("name", Json_out.Str subsystem) ]);
             ])
         !order
  in
  Json_out.Obj
    [
      ("traceEvents", Json_out.List (meta @ body));
      ("displayTimeUnit", Json_out.Str "ns");
    ]

let chrome_trace_string ?process_name events =
  Json_out.to_string (chrome_trace ?process_name events)

(* ----------------------------- JSONL ----------------------------- *)

let event_json (e : Event.t) =
  let phase_fields =
    match e.Event.phase with
    | Event.Instant -> [ ("phase", Json_out.Str "instant") ]
    | Event.Complete dur ->
        [ ("phase", Json_out.Str "complete"); ("dur_ns", Json_out.Float dur) ]
    | Event.Counter -> [ ("phase", Json_out.Str "counter") ]
  in
  let causal =
    (if e.Event.span = 0 then [] else [ ("span", Json_out.Int e.Event.span) ])
    @ if e.Event.parent = 0 then [] else [ ("parent", Json_out.Int e.Event.parent) ]
  in
  Json_out.Obj
    ([
       ("ts_ns", Json_out.Float e.Event.ts_ns);
       ("cat", Json_out.Str (Event.category_name e.Event.cat));
       ("subsystem", Json_out.Str e.Event.subsystem);
       ("name", Json_out.Str e.Event.name);
     ]
    @ phase_fields @ causal
    @ [ ("args", args_json e.Event.args) ])

(** One JSON object per line. *)
let jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json_out.add buf (event_json e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* ------------------------ causal span views ---------------------- *)

let frame (e : Event.t) = e.Event.subsystem ^ ":" ^ e.Event.name

(* Spans that carry a causal id, indexed by it, plus per-parent child
   time — the two maps both folded stacks and the profile need. *)
let span_index events =
  let by_id = Hashtbl.create 256 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.phase with
      | Event.Complete _ when e.Event.span <> 0 -> Hashtbl.replace by_id e.Event.span e
      | Event.Complete _ | Event.Instant | Event.Counter -> ())
    events;
  let child_ns = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ (e : Event.t) ->
      match e.Event.phase with
      | Event.Complete dur when e.Event.parent <> 0 && Hashtbl.mem by_id e.Event.parent ->
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt child_ns e.Event.parent) in
          Hashtbl.replace child_ns e.Event.parent (prev +. dur)
      | Event.Complete _ | Event.Instant | Event.Counter -> ())
    by_id;
  (by_id, child_ns)

let self_ns child_ns (e : Event.t) dur =
  Float.max 0.0 (dur -. Option.value ~default:0.0 (Hashtbl.find_opt child_ns e.Event.span))

(* Root-first frame path of a span, following parent ids; depth-capped
   so a malformed parent cycle cannot hang the exporter. *)
let stack_of by_id (e : Event.t) =
  let rec up (e : Event.t) acc depth =
    if depth = 0 || e.Event.parent = 0 then acc
    else
      match Hashtbl.find_opt by_id e.Event.parent with
      | None -> acc
      | Some p -> up p (frame p :: acc) (depth - 1)
  in
  up e [ frame e ] 64

(** Folded stacks ("frame;frame;frame self_ns", one line per unique
    stack, sorted) — the input format of flamegraph.pl / speedscope /
    inferno.  Self time excludes tracked children, so the flamegraph
    widths add up. *)
let folded events =
  let by_id, child_ns = span_index events in
  let acc = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (e : Event.t) ->
      match e.Event.phase with
      | Event.Complete dur ->
          let stack = String.concat ";" (stack_of by_id e) in
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc stack) in
          Hashtbl.replace acc stack (prev +. self_ns child_ns e dur)
      | Event.Instant | Event.Counter -> ())
    by_id;
  let rows = Hashtbl.fold (fun stack v l -> (stack, v) :: l) acc [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  let buf = Buffer.create 1024 in
  List.iter (fun (stack, v) -> Buffer.add_string buf (Printf.sprintf "%s %.0f\n" stack v)) rows;
  Buffer.contents buf

type span_row = { sr_frame : string; sr_count : int; sr_total_ns : float; sr_self_ns : float }

(** Per-frame profile over tracked spans, heaviest self time first
    (ties broken by frame name). *)
let top_spans ?(limit = 20) events =
  let by_id, child_ns = span_index events in
  let acc = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (e : Event.t) ->
      match e.Event.phase with
      | Event.Complete dur ->
          let f = frame e in
          let c, tot, self = Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt acc f) in
          Hashtbl.replace acc f (c + 1, tot +. dur, self +. self_ns child_ns e dur)
      | Event.Instant | Event.Counter -> ())
    by_id;
  let rows =
    Hashtbl.fold
      (fun f (c, tot, self) l ->
        { sr_frame = f; sr_count = c; sr_total_ns = tot; sr_self_ns = self } :: l)
      acc []
  in
  let rows =
    List.sort
      (fun a b ->
        match Float.compare b.sr_self_ns a.sr_self_ns with
        | 0 -> String.compare a.sr_frame b.sr_frame
        | c -> c)
      rows
  in
  List.filteri (fun i _ -> i < limit) rows

let top_spans_table rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-42s %8s %14s %14s\n" "span" "count" "total_ns" "self_ns");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-42s %8d %14.0f %14.0f\n" r.sr_frame r.sr_count r.sr_total_ns
           r.sr_self_ns))
    rows;
  Buffer.contents buf

(* ------------------------- metrics report ------------------------ *)

(** Flat metrics as one [{"key": k, "value": v}] object per line —
    the shape the bench trajectory tooling ingests. *)
let metrics_jsonl pairs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) ->
      Json_out.add buf (Json_out.Obj [ ("key", Json_out.Str k); ("value", Json_out.Float v) ]);
      Buffer.add_char buf '\n')
    pairs;
  Buffer.contents buf

(** Flat metrics as a single JSON object. *)
let metrics_json pairs = Json_out.Obj (List.map (fun (k, v) -> (k, Json_out.Float v)) pairs)

(* ------------------------------ files ---------------------------- *)

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
