examples/quickstart.mli:
