(** Serve: open-loop arrival-rate sweep over the lock/unlock server.

    One row per base arrival rate at a fixed small admission queue:
    as the open-loop rate passes the pipeline's service capacity the
    queue fills, queue waits stretch and the shed rate climbs — the
    saturation knee the backpressure verdicts exist to make visible.
    All columns are simulated and therefore deterministic for the
    seed; there is no host wall-clock in this table. *)

open Sentry_util
module Sv = Sentry_serve.Server

let rates = [ 20.0; 80.0; 320.0; 1280.0 ]

let config ~rate =
  {
    Sv.default with
    Sv.rate_hz = rate;
    duration_s = 1.0;
    queue_depth = 8;
    (* tight enough that large tenants' page weight can saturate the
       journal/iRAM model before the FIFO fills — so the sweep shows
       both failure modes, not just queue overflow *)
    backlog_pages_max = 12;
    batch_max = 4;
  }

let dist_of cls dists =
  match List.assoc_opt cls dists with
  | Some (d : Sv.dist) -> d.Sv.p99_ns
  | None -> 0.0

let run () =
  let rows =
    List.map
      (fun rate ->
        let s = Sv.run (config ~rate) in
        let qw_p99 =
          (* worst per-class p99 queue wait — the tail the SLO watches *)
          List.fold_left (fun a (_, (d : Sv.dist)) -> Float.max a d.Sv.p99_ns) 0.0
            s.Sv.queue_wait_by_class
        in
        [
          Printf.sprintf "%.0f" rate;
          string_of_int s.Sv.requests;
          string_of_int s.Sv.served;
          string_of_int s.Sv.shed;
          string_of_int s.Sv.rejected;
          Printf.sprintf "%.3f" s.Sv.shed_rate;
          Printf.sprintf "%.1f us" (qw_p99 /. 1e3);
          Printf.sprintf "%.1f us" (dist_of "medium" s.Sv.latency_by_class /. 1e3);
        ])
      rates
  in
  [
    Table.make ~title:"Serve: open-loop arrival rate vs admission backpressure"
      ~header:
        [
          "Rate (req/s)";
          "Requests";
          "Served";
          "Shed";
          "Rejected";
          "Shed rate";
          "Queue wait p99";
          "Medium u->t p99";
        ]
      ~notes:
        [
          "Queue depth 8, batches of 4, 1 simulated second; all columns simulated.";
          "Shed = FIFO overflow; Rejected = journal/iRAM page-backlog saturation.";
        ]
      rows;
  ]
