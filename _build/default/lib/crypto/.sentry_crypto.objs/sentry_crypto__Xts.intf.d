lib/crypto/xts.mli: Bytes
