(** Per-page encryption under the volatile root key, with ESSIV-style
    per-(pid, vpn) IVs.  All transforms go through [Aes_on_soc]. *)

open Sentry_soc

type t

val create : Machine.t -> aes:Sentry_crypto.Aes_on_soc.t -> volatile_key:Bytes.t -> t

(** Rebuild the IV derivation under a fresh volatile key (crash
    recovery after power loss); the [t] and every reference to it
    stay valid.  Re-key the AES context separately. *)
val rekey : t -> volatile_key:Bytes.t -> unit

(** Deterministic IV for page [vpn] of process [pid]. *)
val iv : t -> pid:int -> vpn:int -> Bytes.t

val encrypt_bytes : t -> pid:int -> vpn:int -> Bytes.t -> Bytes.t
val decrypt_bytes : t -> pid:int -> vpn:int -> Bytes.t -> Bytes.t

(** Encrypt a physical frame in place through the cached path. *)
val encrypt_frame : t -> pid:int -> vpn:int -> frame:int -> unit

(** Decrypt a physical frame in place. *)
val decrypt_frame : t -> pid:int -> vpn:int -> frame:int -> unit

(** (bytes encrypted, bytes decrypted) since the last reset — the
    counters behind the Figs 2-4 "MBytes" series. *)
val counters : t -> int * int

val reset_counters : t -> unit
