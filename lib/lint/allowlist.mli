(** The checked-in exception file ([lint.allow]): one
    ["RULE file symbol # justification"] entry per line.  The
    justification is mandatory — an exception without a written reason
    is a parse error. *)

type entry = {
  rule : Finding.rule;
  file : string;
  symbol : string;
  justification : string;
  source_line : int;  (** line in the allow file, for diagnostics *)
}

type t = entry list

val empty : t

val parse_string : string -> (t, string) result

val load : string -> (t, string) result
(** A missing file is an empty allowlist; a malformed one is an
    [Error]. *)

val matches : entry -> Finding.t -> bool

val allows : t -> Finding.t -> bool

val unused : t -> Finding.t list -> entry list
(** Entries that matched no finding: stale exceptions worth pruning. *)
