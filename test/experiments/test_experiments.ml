(** Golden regression tests for the reproduction itself: every paper
    shape the bench harness must keep producing, asserted numerically
    (with tolerances matching EXPERIMENTS.md). *)

open Sentry_util
open Sentry_soc
open Sentry_crypto
open Sentry_core
open Sentry_attacks
open Sentry_workloads

let checkb = Alcotest.(check bool)
let close ?(tol = 0.02) name want got =
  Alcotest.(check (float (want *. tol))) name want got

(* ------------------------------ Table 2 --------------------------- *)

let remanence variant ~seed =
  let machine = Machine.create ~seed (Machine.tegra3 ~dram_size:(8 * Units.mib) ()) in
  let pat = Bytes.of_string "\xde\xad\xbe\xef\x13\x37\xc0\xde" in
  Bytes_util.fill_pattern (Dram.raw (Machine.dram machine)) pat;
  Bytes_util.fill_pattern (Iram.raw (Machine.iram machine)) pat;
  let dram_dump, iram_dump = Cold_boot.mount machine variant in
  (Memdump.remanence_ratio iram_dump ~pattern:pat, Memdump.remanence_ratio dram_dump ~pattern:pat)

let test_table2_shapes () =
  let iram, dram = remanence Cold_boot.Os_reboot ~seed:1 in
  close "warm iram 100%" 1.0 iram;
  close "warm dram 96.4%" 0.964 dram;
  let iram, dram = remanence Cold_boot.Device_reflash ~seed:2 in
  close ~tol:1.0 "reflash iram 0%" 0.0 iram;
  close ~tol:0.01 "reflash dram 97.5%" 0.975 dram;
  let iram, dram = remanence Cold_boot.Two_second_reset ~seed:3 in
  checkb "2s iram 0" true (iram = 0.0);
  checkb "2s dram ~0.1%" true (dram < 0.01)

(* ------------------------------ Table 3 --------------------------- *)

let test_table3_full_matrix () =
  List.iter
    (fun (attack, storage, safe) ->
      let expect = storage <> Verdict.Plain_dram in
      checkb
        (Verdict.attack_name attack ^ " vs " ^ Verdict.storage_name storage)
        expect safe)
    (Verdict.matrix ())

(* ------------------------------ Table 4 --------------------------- *)

let test_table4_access_protected_total () =
  List.iter
    (fun size ->
      let _, _, ap = Aes_state.by_sensitivity size in
      Alcotest.(check int) "2600 access-protected bytes" 2600 ap)
    [ Aes_key.Aes_128; Aes_key.Aes_192; Aes_key.Aes_256 ]

(* ------------------------------ Figs 2-5 -------------------------- *)

let metrics = lazy (Sentry_experiments.Exp_apps.all ())

let find_app name =
  List.find
    (fun (m : Sentry_experiments.Exp_apps.metrics) ->
      m.Sentry_experiments.Exp_apps.profile.App.app_name = name)
    (Lazy.force metrics)

let test_fig2_resume_shapes () =
  let maps = find_app "Maps" and contacts = find_app "Contacts" in
  close ~tol:0.15 "maps resume ~1.5s" 1.5 maps.Sentry_experiments.Exp_apps.unlock_s;
  checkb "contacts fast" true (contacts.Sentry_experiments.Exp_apps.unlock_s < 0.4);
  close ~tol:0.01 "maps 38MB at unlock" 38.0 maps.Sentry_experiments.Exp_apps.unlock_mb;
  (* proportionality: more MB -> more time, across all four apps *)
  let sorted_by_mb =
    List.sort
      (fun (a : Sentry_experiments.Exp_apps.metrics) b ->
        compare a.Sentry_experiments.Exp_apps.unlock_mb b.Sentry_experiments.Exp_apps.unlock_mb)
      (Lazy.force metrics)
  in
  let times = List.map (fun (m : Sentry_experiments.Exp_apps.metrics) -> m.Sentry_experiments.Exp_apps.unlock_s) sorted_by_mb in
  checkb "monotone in MB" true (List.sort compare times = times)

let test_fig3_overhead_shapes () =
  let pct name = (find_app name).Sentry_experiments.Exp_apps.script_overhead_pct in
  checkb "contacts ~4.3%" true (pct "Contacts" > 3.5 && pct "Contacts" < 5.5);
  checkb "maps ~1.2%" true (pct "Maps" > 0.8 && pct "Maps" < 1.8);
  checkb "twitter ~1.3%" true (pct "Twitter" > 0.8 && pct "Twitter" < 2.0);
  checkb "mp3 ~0.2%" true (pct "MP3" > 0.05 && pct "MP3" < 0.4);
  checkb "contacts is worst" true
    (pct "Contacts" > pct "Maps" && pct "Contacts" > pct "Twitter" && pct "Contacts" > pct "MP3")

let test_fig4_lock_shapes () =
  let maps = find_app "Maps" in
  close ~tol:0.01 "maps encrypts 48MB" 48.0 maps.Sentry_experiments.Exp_apps.lock_mb;
  checkb "lock under 2s" true
    (List.for_all
       (fun (m : Sentry_experiments.Exp_apps.metrics) -> m.Sentry_experiments.Exp_apps.lock_s < 2.0)
       (Lazy.force metrics))

let test_fig5_energy_shapes () =
  let maps = find_app "Maps" in
  let total = maps.Sentry_experiments.Exp_apps.lock_j +. maps.Sentry_experiments.Exp_apps.unlock_j in
  checkb "maps ~2.3-2.8 J per cycle" true (total > 2.0 && total < 3.0);
  let daily = 150.0 *. total /. Calib.nexus4_battery_j in
  checkb "~1-2% battery/day" true (daily > 0.008 && daily < 0.025)

(* ------------------------------ Figs 6-8 -------------------------- *)

let bg_factor profile ~budget ~seed =
  let base =
    let system = System.boot `Tegra3 ~seed in
    let proc =
      System.spawn system ~name:"bg" ~bytes:(profile.Background_app.working_set_kb * Units.kib)
    in
    System.fill_region system proc
      (List.hd (Sentry_kernel.Address_space.regions proc.Sentry_kernel.Process.aspace))
      (Bytes.of_string "golden!!");
    (Background_app.run system proc profile ~seed).Background_app.kernel_time_ns
  in
  let with_sentry =
    let system = System.boot `Tegra3 ~seed in
    let config = { (Config.default `Tegra3) with Config.background_budget_bytes = budget } in
    let sentry = Sentry.install system config in
    let proc =
      System.spawn system ~name:"bg" ~bytes:(profile.Background_app.working_set_kb * Units.kib)
    in
    System.fill_region system proc
      (List.hd (Sentry_kernel.Address_space.regions proc.Sentry_kernel.Process.aspace))
      (Bytes.of_string "golden!!");
    Sentry.mark_sensitive sentry proc;
    Sentry.enable_background sentry proc;
    ignore (Sentry.lock sentry);
    (Background_app.run system proc profile ~seed).Background_app.kernel_time_ns
  in
  with_sentry /. base

let test_fig6_alpine_factor () =
  let f = bg_factor Background_app.alpine ~budget:(256 * Units.kib) ~seed:(Hashtbl.hash "alpine") in
  checkb "alpine 256KB in [2.0, 3.5] (paper 2.74)" true (f > 2.0 && f < 3.5)

let test_fig8_xmms2_factor () =
  let f = bg_factor Background_app.xmms2 ~budget:(512 * Units.kib) ~seed:(Hashtbl.hash "xmms2") in
  checkb "xmms2 512KB in [1.25, 1.7] (paper 1.48)" true (f > 1.25 && f < 1.7)

(* ------------------------------ Fig 9 ----------------------------- *)

let test_fig9_shapes () =
  let run crypto ~direct_io =
    let seed = 99 in
    let system = System.boot `Tegra3 ~seed in
    (match crypto with
    | Filebench.Sentry_aes -> ignore (Sentry.install system (Config.default `Tegra3))
    | _ -> ());
    let setup = Filebench.prepare system ~crypto ~fileset_mb:2 ~nfiles:4 in
    (Filebench.run setup Filebench.Randread ~direct_io ~ops:150 ~seed).Filebench.throughput_mb_s
  in
  let nc = run Filebench.No_crypto ~direct_io:false in
  let g = run Filebench.Generic_aes ~direct_io:false in
  let s = run Filebench.Sentry_aes ~direct_io:false in
  checkb "cache masks crypto (within 5%)" true
    (abs_float (g -. nc) /. nc < 0.05 && abs_float (s -. nc) /. nc < 0.05);
  let gd = run Filebench.Generic_aes ~direct_io:true in
  let sd = run Filebench.Sentry_aes ~direct_io:true in
  checkb "direct I/O near AES rate" true (gd > 8.0 && gd < 14.0);
  checkb "sentry within 3% of generic" true (abs_float (sd -. gd) /. gd < 0.03)

(* ------------------------------ Fig 10 ---------------------------- *)

let test_fig10_shapes () =
  let r0 = Kernel_compile.run ~locked_ways:0 () in
  let r1 = Kernel_compile.run ~locked_ways:1 () in
  close ~tol:0.001 "baseline anchor" 14.41 r0.Kernel_compile.minutes;
  checkb "1 way ~14.5 min (paper 14.53)" true
    (r1.Kernel_compile.minutes > 14.45 && r1.Kernel_compile.minutes < 14.65)

(* ---------------------------- Figs 11-12 -------------------------- *)

let test_fig11_onsoc_overhead () =
  let g = Perf.throughput_mb_s ~platform:`Tegra3 Perf.Openssl_user in
  let l = Perf.throughput_mb_s ~platform:`Tegra3 Perf.Onsoc_locked_l2 in
  checkb "<1% overhead" true ((g -. l) /. g < 0.01)

let test_fig12_hw_energy_worse () =
  checkb "hw ~3-4x CPU energy" true
    (Perf.j_per_byte (Perf.Hw_accelerated `Downscaled) /. Perf.j_per_byte Perf.Openssl_user > 3.0)

(* ---------------------------- motivation -------------------------- *)

let test_motivation_battery_cycles () =
  (* 2 GB at the kernel AES rate, energy per byte -> cycles to empty *)
  let joules = 2048.0 *. 1048576.0 *. Perf.j_per_byte Perf.Crypto_api_kernel in
  let cycles = Calib.nexus4_battery_j /. joules in
  checkb "~410-450 cycles" true (cycles > 380.0 && cycles < 480.0);
  let seconds = 2048.0 /. Calib.aes_nexus_kernel_mb_s in
  checkb "about a minute" true (seconds > 45.0 && seconds < 75.0)

let () =
  Alcotest.run "sentry_golden"
    [
      ( "tables",
        [
          Alcotest.test_case "table2 remanence" `Quick test_table2_shapes;
          Alcotest.test_case "table3 matrix" `Quick test_table3_full_matrix;
          Alcotest.test_case "table4 access-protected" `Quick test_table4_access_protected_total;
        ] );
      ( "app-figures",
        [
          Alcotest.test_case "fig2 resume" `Slow test_fig2_resume_shapes;
          Alcotest.test_case "fig3 overhead" `Slow test_fig3_overhead_shapes;
          Alcotest.test_case "fig4 lock" `Slow test_fig4_lock_shapes;
          Alcotest.test_case "fig5 energy" `Slow test_fig5_energy_shapes;
        ] );
      ( "background-figures",
        [
          Alcotest.test_case "fig6 alpine" `Slow test_fig6_alpine_factor;
          Alcotest.test_case "fig8 xmms2" `Slow test_fig8_xmms2_factor;
        ] );
      ( "system-figures",
        [
          Alcotest.test_case "fig9 filebench" `Slow test_fig9_shapes;
          Alcotest.test_case "fig10 compile" `Slow test_fig10_shapes;
          Alcotest.test_case "fig11 on-soc" `Quick test_fig11_onsoc_overhead;
          Alcotest.test_case "fig12 hw energy" `Quick test_fig12_hw_energy_worse;
          Alcotest.test_case "motivation" `Quick test_motivation_battery_cycles;
        ] );
    ]
