(** The rule-engine vocabulary of the secret-flow verifier.

    A checker is a pluggable invariant over the simulated machine: it
    looks at taint shadows, hardware registers and kernel state and
    reports findings.  Checkers are driven by {e events} — lock-state
    transitions, bus transactions, cache evictions, DMA reads, or an
    explicit on-demand sweep — delivered by [Engine]. *)

(** What woke the engine up. *)
type event =
  | Transition of {
      old_state : Sentry_core.Lock_state.state;
      new_state : Sentry_core.Lock_state.state;
    }  (** the screen-lock state machine moved *)
  | Bus_txn of Sentry_soc.Bus.transaction  (** something crossed the external bus *)
  | Eviction of { way : int; addr : int; locked : bool }
      (** the L2 wrote a dirty line back to DRAM *)
  | Dma_read of { addr : int; len : int; taint : Sentry_soc.Taint.level }
      (** a device-initiated read completed *)
  | On_demand  (** explicit sweep ([Engine.check_now]) *)

val event_name : event -> string

(** One invariant.  [check] inspects the machine behind [Sentry.t] for
    [event] and returns findings; [is_problematic] selects the ones
    that are violations (a checker may also return informational
    findings); [to_string] renders a finding for reports. *)
module type CHECKER = sig
  type t

  val name : string
  val check : Sentry_core.Sentry.t -> event -> t list
  val is_problematic : t -> bool
  val to_string : t -> string
end

(** A checker with its finding type sealed in, so heterogeneous rule
    sets can live in one list. *)
type packed = Packed : (module CHECKER with type t = 'a) -> packed

val packed_name : packed -> string

(** A problematic finding, stamped with the simulated time it was
    observed. *)
type violation = { checker : string; message : string; time_ns : float }

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

(** Evaluate one packed checker against [event]; problematic findings
    become violations stamped with the current simulated time. *)
val run_packed : Sentry_core.Sentry.t -> event -> packed -> violation list
