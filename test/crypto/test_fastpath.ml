(* Differential tests for the zero-allocation crypto fast path: the
   in-place [_into] cipher modes and the cached-cipher bulk path must
   produce bit-identical bytes — and, on the SoC, bit-identical
   simulated clock/energy — to the allocating entry points. *)

open Sentry_util
open Sentry_soc
open Sentry_crypto

let check_bytes = Alcotest.(check bytes)
let checkf = Alcotest.(check (float 0.0)) (* exact: bit-identity, not tolerance *)

let key = Bytes.of_string "sixteen byte key"
let iv = Bytes.init 16 (fun i -> Char.chr (0x30 + i))
let cipher () = Mode.of_key (Aes.expand key)
let payload n = Bytes.init n (fun i -> Char.chr ((i * 11) land 0xff))

(* ------------------------ mode _into twins ------------------------ *)

let test_cbc_into_matches_allocating () =
  let c = cipher () in
  List.iter
    (fun n ->
      let data = payload n in
      let expected = Mode.cbc_encrypt c ~iv data in
      (* out-of-place, at a shifted view inside an oversized buffer *)
      let src = Bytes.make (n + 24) '\x5a' in
      Bytes.blit data 0 src 16 n;
      let dst = Bytes.make (n + 8) '\x00' in
      Mode.cbc_encrypt_into c ~iv ~src ~src_off:16 ~dst ~dst_off:8 ~len:n;
      check_bytes "cbc encrypt view" expected (Bytes.sub dst 8 n);
      let back = Bytes.make n '\x00' in
      Mode.cbc_decrypt_into c ~iv ~src:dst ~src_off:8 ~dst:back ~dst_off:0 ~len:n;
      check_bytes "cbc decrypt view" data back)
    [ 16; 64; 4096 ]

let test_cbc_into_in_place () =
  let c = cipher () in
  let data = payload 4096 in
  let expected = Mode.cbc_encrypt c ~iv data in
  let buf = Bytes.copy data in
  let scratch = Mode.make_scratch () in
  Mode.cbc_encrypt_into ~scratch c ~iv ~src:buf ~src_off:0 ~dst:buf ~dst_off:0 ~len:4096;
  check_bytes "in-place encrypt" expected buf;
  Mode.cbc_decrypt_into ~scratch c ~iv ~src:buf ~src_off:0 ~dst:buf ~dst_off:0 ~len:4096;
  check_bytes "in-place decrypt" data buf

let test_scratch_reuse_is_stateless () =
  let c = cipher () in
  let scratch = Mode.make_scratch () in
  let data = payload 256 in
  let one = Bytes.copy data and two = Bytes.copy data in
  Mode.cbc_encrypt_into ~scratch c ~iv ~src:one ~src_off:0 ~dst:one ~dst_off:0 ~len:256;
  (* a second transform through the same scratch must not be affected
     by whatever the first left behind *)
  Mode.cbc_encrypt_into ~scratch c ~iv ~src:two ~src_off:0 ~dst:two ~dst_off:0 ~len:256;
  check_bytes "scratch carries no state" one two

let test_ecb_into_matches_allocating () =
  let c = cipher () in
  let data = payload 128 in
  let expected = Mode.ecb_encrypt c data in
  let buf = Bytes.copy data in
  Mode.ecb_encrypt_into c ~src:buf ~src_off:0 ~dst:buf ~dst_off:0 ~len:128;
  check_bytes "ecb encrypt in place" expected buf;
  Mode.ecb_decrypt_into c ~src:buf ~src_off:0 ~dst:buf ~dst_off:0 ~len:128;
  check_bytes "ecb decrypt in place" data buf

let test_xts_into_matches_allocating () =
  let k = Xts.expand (Bytes.of_string "0123456789abcdefFEDCBA9876543210") in
  let tweak = Xts.tweak_of_sector 42 in
  let data = payload 512 in
  let expected = Xts.encrypt k ~tweak data in
  let buf = Bytes.copy data in
  Xts.transform_into k ~dir:`Encrypt ~tweak ~src:buf ~src_off:0 ~dst:buf ~dst_off:0 ~len:512;
  check_bytes "xts encrypt in place" expected buf;
  Xts.transform_into k ~dir:`Decrypt ~tweak ~src:buf ~src_off:0 ~dst:buf ~dst_off:0 ~len:512;
  check_bytes "xts decrypt in place" data buf

let test_cbc_into_rejects_bad_iv () =
  let c = cipher () in
  let buf = payload 32 in
  Alcotest.check_raises "short iv" (Invalid_argument "Mode.cbc_encrypt_into: bad IV") (fun () ->
      Mode.cbc_encrypt_into c ~iv:(Bytes.create 8) ~src:buf ~src_off:0 ~dst:buf ~dst_off:0 ~len:32)

(* --------------------- on-SoC bulk differential ------------------- *)

let boot () = Machine.create ~seed:33 (Machine.tegra3 ~dram_size:(4 * Units.mib) ())

let mk_aes m = Aes_on_soc.create m ~storage:Aes_on_soc.In_iram ~base:(Machine.iram_region m).Memmap.base ~key

(* The cached-cipher [bulk_into] path must charge the same simulated
   clock and energy as the allocating [bulk], and write the same
   ciphertext. *)
let test_bulk_into_differential () =
  let data = payload 8192 in
  let m_a = boot () in
  let out_a = Aes_on_soc.bulk (mk_aes m_a) ~dir:`Encrypt ~iv data in
  let m_b = boot () in
  let out_b = Bytes.copy data in
  Aes_on_soc.bulk_into (mk_aes m_b) ~dir:`Encrypt ~iv ~src:out_b ~src_off:0 ~dst:out_b ~dst_off:0
    ~len:8192;
  check_bytes "ciphertext" out_a out_b;
  checkf "simulated clock" (Machine.now m_a) (Machine.now m_b);
  checkf "energy total" (Energy.total (Machine.energy m_a)) (Energy.total (Machine.energy m_b))

let test_bulk_roundtrip () =
  let m = boot () in
  let a = mk_aes m in
  let data = payload 4096 in
  let ct = Aes_on_soc.bulk a ~dir:`Encrypt ~iv data in
  check_bytes "roundtrip" data (Aes_on_soc.bulk a ~dir:`Decrypt ~iv ct)

(* Re-keying must refresh the cached bulk cipher together with the
   on-SoC context: after [set_key] the bulk output matches a fresh
   instance created with the new key, not the old one. *)
let test_set_key_refreshes_cached_cipher () =
  let key2 = Bytes.of_string "another 16b key!" in
  let data = payload 256 in
  let m = boot () in
  let a = mk_aes m in
  let old_ct = Aes_on_soc.bulk a ~dir:`Encrypt ~iv data in
  Aes_on_soc.set_key a key2;
  let new_ct = Aes_on_soc.bulk a ~dir:`Encrypt ~iv data in
  let m2 = boot () in
  let fresh = Aes_on_soc.create m2 ~storage:Aes_on_soc.In_iram ~base:(Machine.iram_region m2).Memmap.base ~key:key2 in
  check_bytes "matches fresh instance under the new key" (Aes_on_soc.bulk fresh ~dir:`Encrypt ~iv data) new_ct;
  if Bytes.equal old_ct new_ct then Alcotest.fail "re-key did not change the bulk output";
  check_bytes "decrypts under the new key" data (Aes_on_soc.bulk a ~dir:`Decrypt ~iv new_ct)

(* Allocation regression for the cipher core: a warm in-place CBC
   transform over a reusable scratch must stay (near) allocation free.
   The ceiling is far below the old per-call closure cost (~115 words
   per block) and far above harmless noise. *)
let test_cbc_into_allocation_ceiling () =
  let c = cipher () in
  let scratch = Mode.make_scratch () in
  let buf = payload 4096 in
  Mode.cbc_encrypt_into ~scratch c ~iv ~src:buf ~src_off:0 ~dst:buf ~dst_off:0 ~len:4096;
  let mw0 = Gc.minor_words () in
  for _ = 1 to 64 do
    Mode.cbc_encrypt_into ~scratch c ~iv ~src:buf ~src_off:0 ~dst:buf ~dst_off:0 ~len:4096
  done;
  let per_page = (Gc.minor_words () -. mw0) /. 64.0 in
  if per_page > 256.0 then
    Alcotest.failf "cbc_encrypt_into allocated %.1f minor words per page (ceiling 256)" per_page

let () =
  Alcotest.run "sentry_crypto_fastpath"
    [
      ( "modes",
        [
          Alcotest.test_case "cbc into = allocating" `Quick test_cbc_into_matches_allocating;
          Alcotest.test_case "cbc in place" `Quick test_cbc_into_in_place;
          Alcotest.test_case "scratch reuse" `Quick test_scratch_reuse_is_stateless;
          Alcotest.test_case "ecb into = allocating" `Quick test_ecb_into_matches_allocating;
          Alcotest.test_case "xts into = allocating" `Quick test_xts_into_matches_allocating;
          Alcotest.test_case "bad iv rejected" `Quick test_cbc_into_rejects_bad_iv;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "bulk_into differential" `Quick test_bulk_into_differential;
          Alcotest.test_case "bulk roundtrip" `Quick test_bulk_roundtrip;
          Alcotest.test_case "set_key refreshes cipher" `Quick test_set_key_refreshes_cached_cipher;
        ] );
      ( "allocation",
        [ Alcotest.test_case "cbc into ceiling" `Quick test_cbc_into_allocation_ceiling ] );
    ]
