(** Raw block devices.

    [Ramdisk] models the paper's dm-crypt isolation setup — "an
    in-memory disk partition of 450 MB" (§8.2) — where the medium is
    fast enough that encryption is the bottleneck.  [Emmc] models the
    phone's actual flash for workloads where the medium matters. *)

open Sentry_soc

type kind = Ramdisk | Emmc

let sector_size = 512

type t = {
  machine : Machine.t;
  kind : kind;
  data : Bytes.t;
  mutable reads : int;
  mutable writes : int;
}

let bandwidth_bytes_per_s kind ~write =
  let mb = float_of_int Sentry_util.Units.mib in
  match (kind, write) with
  | Ramdisk, _ -> 800.0 *. mb
  | Emmc, false -> 80.0 *. mb
  | Emmc, true -> 40.0 *. mb

let create machine ~kind ~size =
  if size mod sector_size <> 0 then invalid_arg "Block_dev.create: size not sector aligned";
  { machine; kind; data = Bytes.make size '\000'; reads = 0; writes = 0 }

let size t = Bytes.length t.data
let sectors t = size t / sector_size

let charge t ~write len =
  let seconds = float_of_int len /. bandwidth_bytes_per_s t.kind ~write in
  Clock.advance (Machine.clock t.machine) (seconds *. Sentry_util.Units.s);
  Energy.charge (Machine.energy t.machine) ~category:"blockdev"
    (float_of_int len *. Calib.dram_byte_j)

(** Raw medium contents — what a forensic flash dump sees.  dm-crypt's
    security claim is that this is ciphertext. *)
let raw t = t.data

let target t =
  {
    Blockio.name = "blockdev";
    size = size t;
    read =
      (fun ~off ~len ->
        t.reads <- t.reads + 1;
        charge t ~write:false len;
        Bytes.sub t.data off len);
    write =
      (fun ~off b ->
        t.writes <- t.writes + 1;
        charge t ~write:true (Bytes.length b);
        Bytes.blit b 0 t.data off (Bytes.length b));
  }

let stats t = (t.reads, t.writes)
