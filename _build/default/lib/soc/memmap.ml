(** Physical address map of the simulated SoC.

    Mirrors the flavour of a Tegra 3-class part: a small on-SoC SRAM
    (iRAM) low in the address space and off-SoC DRAM above it.  All
    addresses are plain OCaml ints (63-bit, plenty for a 32-bit map). *)

let iram_base = 0x4000_0000
let default_iram_size = 256 * Sentry_util.Units.kib

(** The first 64 KB of iRAM is reserved by platform firmware; Sentry's
    allocator must never hand it out (overwriting it "crashes the
    tablet", §4.5). *)
let iram_firmware_reserved = 64 * Sentry_util.Units.kib

let dram_base = 0x8000_0000

(* The §10 "architecture suggestion": a small dedicated pin-on-SoC
   memory, hardware-inaccessible to DMA and erased by immutable boot
   ROM.  Only present on the hypothetical future platform. *)
let pinned_base = 0x5000_0000
let default_pinned_size = 64 * Sentry_util.Units.kib

type region = { base : int; size : int }

let region ~base ~size = { base; size }
let limit r = r.base + r.size
let contains r addr = addr >= r.base && addr < limit r

(** [offset r addr] is the offset of [addr] within [r].
    Requires [contains r addr]. *)
let offset r addr =
  assert (contains r addr);
  addr - r.base

let pp_region ppf r =
  Fmt.pf ppf "[0x%08x, 0x%08x) (%a)" r.base (limit r) Sentry_util.Units.pp_bytes r.size
