(** Block cipher modes of operation, generic over a 16-byte block
    transform.  Sentry uses CBC (the Android/Linux default, §6.1). *)

type block_fn = Bytes.t -> int -> Bytes.t -> int -> unit
(** [f src src_off dst dst_off] transforms one 16-byte block. *)

type cipher = { encrypt : block_fn; decrypt : block_fn }

val of_key : Aes.key -> cipher

val block : int

(** {2 Scatter-gather ([_into]) transforms}

    Zero-allocation bulk path: transform [len] bytes from [src] at
    [src_off] into [dst] at [dst_off].  [src] and [dst] may be the
    same buffer at the same offset (in-place).  The allocating entry
    points below are wrappers over these; both produce bit-identical
    bytes. *)

type scratch

(** Reusable CBC chaining buffers; one per long-lived cipher owner
    avoids two allocations per call.  Omitting [?scratch] allocates a
    fresh one. *)
val make_scratch : unit -> scratch

val ecb_encrypt_into :
  cipher -> src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit

val ecb_decrypt_into :
  cipher -> src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit

val cbc_encrypt_into :
  ?scratch:scratch ->
  cipher ->
  iv:Bytes.t ->
  src:Bytes.t ->
  src_off:int ->
  dst:Bytes.t ->
  dst_off:int ->
  len:int ->
  unit

val cbc_decrypt_into :
  ?scratch:scratch ->
  cipher ->
  iv:Bytes.t ->
  src:Bytes.t ->
  src_off:int ->
  dst:Bytes.t ->
  dst_off:int ->
  len:int ->
  unit

(** {2 Allocating transforms} *)

val ecb_encrypt : cipher -> Bytes.t -> Bytes.t
val ecb_decrypt : cipher -> Bytes.t -> Bytes.t

(** @raise Invalid_argument unless data is block-aligned and the IV is
    16 bytes (same for [cbc_decrypt]). *)
val cbc_encrypt : cipher -> iv:Bytes.t -> Bytes.t -> Bytes.t

val cbc_decrypt : cipher -> iv:Bytes.t -> Bytes.t -> Bytes.t

(** CTR keystream xor — its own inverse; any data length. *)
val ctr_transform : cipher -> nonce:Bytes.t -> Bytes.t -> Bytes.t

val pad_pkcs7 : Bytes.t -> Bytes.t

(** @raise Invalid_argument on malformed padding. *)
val unpad_pkcs7 : Bytes.t -> Bytes.t
