lib/experiments/exp_fig10.ml: Kernel_compile List Printf Sentry_util Sentry_workloads Table
