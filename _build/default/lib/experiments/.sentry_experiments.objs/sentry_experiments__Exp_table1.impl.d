lib/experiments/exp_table1.ml: Bus_monitor Bytes Cold_boot Dma_attack Fuse Jtag_attack Machine Sentry_attacks Sentry_core Sentry_kernel Sentry_soc Sentry_util System Table
