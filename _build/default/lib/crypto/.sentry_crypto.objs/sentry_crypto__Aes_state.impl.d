lib/crypto/aes_state.ml: Aes_key Fmt List
