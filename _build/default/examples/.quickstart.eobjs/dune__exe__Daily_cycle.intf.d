examples/daily_cycle.mli:
