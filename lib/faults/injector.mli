(** Global fault-injection engine: arm a [Plan], and hook points
    threaded through the memory/crypto stack fire its triggers.
    Disarmed, a hook is one ref read and allocates nothing. *)

type record = { point : string; kind : Fault.kind; occurrence : int }

exception Injected of record

val arm : Plan.t -> unit
val disarm : unit -> unit
val armed : unit -> bool

(** The armed plan, if any. *)
val plan : unit -> Plan.t option

(** Install the [Bit_flip] corruption handler (the machine-owning
    harness flips DRAM bits).  Cleared by [arm]/[disarm].
    @raise Invalid_argument when not armed. *)
val set_bit_flip_handler : (point:string -> bits:int -> unit) -> unit

(** Firings so far, oldest first (empty when disarmed). *)
val fired : unit -> record list

(** Arrivals seen at a point this armed session. *)
val occurrences : string -> int

(** Hook arrival; interrupting faults raise [Injected]. *)
val fire : string -> unit

(** Hook arrival for result-returning callers: [Dma_error] comes back
    as a value, globally-fatal kinds still raise [Injected]. *)
val poll : string -> record option

(** Canonical hook-point names (hooks and plans must agree). *)
module Points : sig
  val page_encrypted : string
  val page_decrypted : string
  val frame_transform : string
  val dm_crypt_sector : string
  val dma_read : string
  val dma_write : string
  val machine_write : string
  val all : string list
end
