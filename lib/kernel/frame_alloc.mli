(** Physical frame allocator with a dirty-page list: freed frames keep
    their contents until the zeroing thread scrubs them — the freed-page
    hazard Sentry's lock barrier closes (§7). *)

open Sentry_soc

type t

val create : Machine.t -> region:Memmap.region -> t
val total_frames : t -> int
val free_frames : t -> int
val dirty_frames : t -> int
val allocated_frames : t -> int

exception Out_of_memory

(** A clean page-aligned frame; zeroes a dirty frame on demand when the
    free list is dry.  @raise Out_of_memory when both lists are empty. *)
val alloc : t -> int

(** Release a frame onto the dirty list (contents intact!). *)
val free : t -> int -> unit

(** Frames freed but not yet scrubbed, without claiming them. *)
val pending_dirty : t -> int list

(** The DRAM range this allocator manages. *)
val managed_region : t -> Memmap.region

(** Hand the dirty list to the zeroing thread. *)
val take_dirty : t -> int list

(** Return zeroed frames to the free list. *)
val give_clean : t -> int list -> unit
