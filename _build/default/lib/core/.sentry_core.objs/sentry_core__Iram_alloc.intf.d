lib/core/iram_alloc.mli: Machine Sentry_soc
