lib/workloads/daily_use.ml: App Calib Energy Machine Perf Sentry_core Sentry_crypto Sentry_soc Sentry_util
