(** The trace recorder: a bounded ring buffer of [Event.t].

    A recorder is an explicit {!Recorder.t} handle — the owner of a
    simulated machine creates one, threads it to whatever harvests
    events, and reads it back.  Handles are what the multicore sharded
    fleet needs: one recorder per tenant shard, merged after the run
    with {!Recorder.merge}.

    Hot-path emitters deep in the memory system still go through the
    {e ambient} recorder — the handle installed in the {e calling
    domain}'s [Domain.DLS] slot — because threading a handle through
    every cache access would cost the zero-allocation fast path its
    shape.  The slot is domain-local, so each tenant shard on a pool
    worker installs its own recorder without racing its siblings.
    Mirroring the [Config.track_taint] pattern, nothing is allocated
    and the guard is one domain-local read until a recorder is
    installed:

    {[
      if Trace.on () then
        Trace.emit ~ts:(Clock.now clock) ~cat:Event.Bus ~subsystem:"soc.bus" "read" ~args:[...]
    ]}

    so the disabled path neither allocates the argument list nor
    builds the event.

    {b Causal spans.}  Each recorder carries a span-id counter and a
    stack of open spans on the simulated clock.  [enter_span] pushes a
    frame (its parent is whatever frame was on top); [exit_span] pops
    it and emits the [Complete] event carrying both ids.  Instants and
    after-the-fact [span] calls pick up the currently open frame as
    their parent, so a fleet unlock decomposes into
    [unlock → decrypt_batch → bulk-decrypt / dma-sweep / journal]
    trees that {!Export.folded} can render as a flamegraph.

    On overflow the ring keeps the {e newest} events (oldest are
    overwritten) and counts drops — a trace of a long run always ends
    with the most recent window plus an honest drop counter. *)

type open_span = {
  id : int;
  o_parent : int;
  o_cat : Event.category;
  o_subsystem : string;
  o_name : string;
  o_start : float;
}

type t = {
  buf : Event.t option array;
  capacity : int;
  mutable total : int; (* events ever emitted into this recorder *)
  mutable carried_drops : int; (* drops inherited from merged-in recorders *)
  counts : int array; (* per-category emission counts (never dropped) *)
  mutable now : unit -> float; (* simulated-time source for clockless emitters *)
  mutable next_span : int; (* next span id; ids are per-recorder, starting at 1 *)
  mutable open_spans : open_span list; (* innermost first *)
}

let default_capacity = 1 lsl 16

let make ?(capacity = default_capacity) ?(now = fun () -> 0.0) () =
  if capacity <= 0 then invalid_arg "Trace.Recorder.create: capacity must be positive";
  {
    buf = Array.make capacity None;
    capacity;
    total = 0;
    carried_drops = 0;
    counts = Array.make Event.num_categories 0;
    now;
    next_span = 1;
    open_spans = [];
  }

let set_time_source_r t f = t.now <- f
let now_r t = t.now ()

let current_parent t = match t.open_spans with [] -> 0 | f :: _ -> f.id

let fresh_span t =
  let id = t.next_span in
  t.next_span <- id + 1;
  id

let emit_r t ?ts ?span ?parent ~cat ~subsystem ?(phase = Event.Instant) ?(args = []) name =
  let ts_ns = match ts with Some ts -> ts | None -> t.now () in
  let parent = match parent with Some p -> p | None -> current_parent t in
  let span = match span with Some s -> s | None -> 0 in
  let e = { Event.ts_ns; cat; subsystem; name; phase; span; parent; args } in
  t.buf.(t.total mod t.capacity) <- Some e;
  t.total <- t.total + 1;
  let i = Event.category_index cat in
  t.counts.(i) <- t.counts.(i) + 1

(** After-the-fact span: gets a fresh id and the currently open frame
    as parent — correct whenever it is emitted at the simulated moment
    the work ends (the instrumented stack's convention). *)
let span_r t ?(args = []) ~cat ~subsystem ~start_ns ~end_ns name =
  let id = fresh_span t in
  emit_r t ~ts:start_ns ~span:id ~cat ~subsystem
    ~phase:(Event.Complete (end_ns -. start_ns))
    ~args name

let enter_span_r t ?ts ~cat ~subsystem name =
  let o_start = match ts with Some ts -> ts | None -> t.now () in
  let id = fresh_span t in
  t.open_spans <-
    { id; o_parent = current_parent t; o_cat = cat; o_subsystem = subsystem; o_name = name; o_start }
    :: t.open_spans

(** Pop the innermost open span and emit its [Complete] event.  A
    no-op on an empty stack, so a recorder installed mid-span cannot
    crash the exit side of the pair. *)
let exit_span_r t ?ts ?(args = []) () =
  match t.open_spans with
  | [] -> ()
  | f :: rest ->
      t.open_spans <- rest;
      let end_ns = match ts with Some ts -> ts | None -> t.now () in
      emit_r t ~ts:f.o_start ~span:f.id ~parent:f.o_parent ~cat:f.o_cat ~subsystem:f.o_subsystem
        ~phase:(Event.Complete (end_ns -. f.o_start))
        ~args f.o_name

let open_depth_r t = List.length t.open_spans

type stats = { emitted : int; dropped : int; capacity : int }

let stats_r t =
  {
    emitted = t.total + t.carried_drops;
    dropped = t.carried_drops + max 0 (t.total - t.capacity);
    capacity = t.capacity;
  }

let events_r t =
  let n = min t.total t.capacity in
  let first = if t.total <= t.capacity then 0 else t.total mod t.capacity in
  List.init n (fun i ->
      match t.buf.((first + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let category_counts_r t =
  List.filter_map
    (fun c ->
      let n = t.counts.(Event.category_index c) in
      if n = 0 then None else Some (c, n))
    Event.categories

let clear_r t =
  Array.fill t.buf 0 t.capacity None;
  t.total <- 0;
  t.carried_drops <- 0;
  Array.fill t.counts 0 Event.num_categories 0;
  t.next_span <- 1;
  t.open_spans <- []

(** Deterministic fan-in for per-shard recorders.  The result is a
    fresh recorder sized to hold every retained event of both inputs:

    - [b]'s span/parent ids are offset past [a]'s id space, so trees
      from different shards never collide;
    - retained events are interleaved by a {e stable} sort on
      simulated timestamp (ties keep [a] before [b]);
    - per-category counts add, and drops carry over, so
      [stats (merge a b)] reports the sum of both inputs' emissions.

    Inputs are left untouched.  Open (unexited) spans do not travel —
    merge after the shards have quiesced. *)
let merge_r a b =
  let sa = stats_r a and sb = stats_r b in
  let offset = a.next_span - 1 in
  let shift id = if id = 0 then 0 else id + offset in
  let eb =
    List.map
      (fun (e : Event.t) -> { e with Event.span = shift e.Event.span; parent = shift e.Event.parent })
      (events_r b)
  in
  let all =
    List.stable_sort
      (fun (x : Event.t) (y : Event.t) -> Float.compare x.Event.ts_ns y.Event.ts_ns)
      (events_r a @ eb)
  in
  let t = make ~capacity:(max 1 (List.length all)) ~now:a.now () in
  List.iter
    (fun (e : Event.t) ->
      emit_r t ~ts:e.Event.ts_ns ~span:e.Event.span ~parent:e.Event.parent ~cat:e.Event.cat
        ~subsystem:e.Event.subsystem ~phase:e.Event.phase ~args:e.Event.args e.Event.name)
    all;
  Array.iteri (fun i _ -> t.counts.(i) <- a.counts.(i) + b.counts.(i)) t.counts;
  t.carried_drops <- sa.dropped + sb.dropped;
  t.next_span <- a.next_span + b.next_span - 1;
  t

module Recorder = struct
  type nonrec t = t

  let create = make
  let set_time_source = set_time_source_r
  let now = now_r
  let emit = emit_r
  let span = span_r
  let enter_span = enter_span_r
  let exit_span = exit_span_r
  let open_depth = open_depth_r
  let merge = merge_r
  let stats = stats_r
  let events = events_r
  let category_counts = category_counts_r
  let clear = clear_r
end

(* ----------------------- the ambient recorder --------------------- *)

(* The ambient slot is domain-local ([Domain.DLS]), not a process
   global: each domain owns its own installed recorder, so a tenant
   shard running on a pool worker installs a per-shard recorder
   without racing the main domain's (or any sibling shard's).  A
   freshly spawned domain starts with no recorder — tracing inside a
   shard is an explicit install, never inherited.  This retired the
   R1 lint.allow entry the old [ref] needed. *)
let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let installed () = Domain.DLS.get current_key

let install r = Domain.DLS.set current_key (Some r)
let uninstall () = Domain.DLS.set current_key None

let on () = installed () <> None

let start ?capacity ?now () = install (make ?capacity ?now ())

(** Idempotent [start]: keeps an already-installed recorder (and its
    events) instead of replacing it. *)
let ensure ?capacity ?now () = if not (on ()) then start ?capacity ?now ()

let stop () = uninstall ()

let set_time_source f = match installed () with Some t -> set_time_source_r t f | None -> ()

let now () = match installed () with Some t -> now_r t | None -> 0.0

let emit ?ts ~cat ~subsystem ?phase ?args name =
  match installed () with
  | None -> ()
  | Some t -> emit_r t ?ts ~cat ~subsystem ?phase ?args name

(** Emit a span given its boundaries (simulated ns). *)
let span ?args ~cat ~subsystem ~start_ns ~end_ns name =
  match installed () with
  | None -> ()
  | Some t -> span_r t ?args ~cat ~subsystem ~start_ns ~end_ns name

let enter_span ?ts ~cat ~subsystem name =
  match installed () with None -> () | Some t -> enter_span_r t ?ts ~cat ~subsystem name

let exit_span ?ts ?args () =
  match installed () with None -> () | Some t -> exit_span_r t ?ts ?args ()

let stats () =
  match installed () with
  | None -> { emitted = 0; dropped = 0; capacity = 0 }
  | Some t -> stats_r t

(** Retained events, oldest first. *)
let events () = match installed () with None -> [] | Some t -> events_r t

(** Per-category emission counts (includes dropped events). *)
let category_counts () = match installed () with None -> [] | Some t -> category_counts_r t

(** Drop every retained event and reset the counters, keeping the
    recorder installed. *)
let clear () = match installed () with None -> () | Some t -> clear_r t
