(** The fault vocabulary of the injection subsystem.

    A fault is what goes wrong at a hook point; the {e plan} (see
    [Plan]) decides where and when.  Kinds mirror the hazards the
    crash-consistency work defends against: power removed mid-walk,
    a reset without power loss, a DMA transfer aborting, and DRAM
    bit flips (disturbance errors / marginal cells). *)

type kind =
  | Power_loss  (** power removed: DRAM decays, iRAM firmware-cleared on boot *)
  | Reset  (** reset without power loss (watchdog, kernel panic) *)
  | Dma_error  (** a DMA transfer aborts with a bus error *)
  | Bit_flip of int  (** [n] random DRAM bits flip silently *)

let name = function
  | Power_loss -> "power-loss"
  | Reset -> "reset"
  | Dma_error -> "dma-error"
  | Bit_flip n -> Printf.sprintf "bit-flip(%d)" n

(** Does this kind abort the interrupted operation (exception /
    transfer error), as opposed to corrupting state silently? *)
let interrupts = function
  | Power_loss | Reset | Dma_error -> true
  | Bit_flip _ -> false
