lib/crypto/aes.mli: Aes_key Bytes
