lib/crypto/aes_on_soc.mli: Bytes Crypto_api Machine Sentry_soc
