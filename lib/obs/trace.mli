(** Global bounded-ring trace recorder.  Off (and allocation-free on
    the instrumented paths) until [start]. *)

(** Is a recorder active?  The hot-path guard: emitters must check
    this before building argument lists. *)
val on : unit -> bool

(** [start ?capacity ?now ()] installs a fresh recorder.  [now] is the
    simulated-time source used when an emitter has no clock at hand
    (see [set_time_source]).  Default capacity: 65536 events. *)
val start : ?capacity:int -> ?now:(unit -> float) -> unit -> unit

(** [ensure] is [start] unless a recorder is already active. *)
val ensure : ?capacity:int -> ?now:(unit -> float) -> unit -> unit

(** Uninstall the recorder (events are discarded). *)
val stop : unit -> unit

(** Point clockless emitters at the booted machine's simulated clock. *)
val set_time_source : (unit -> float) -> unit

(** Current simulated time per the time source (0 when off). *)
val now : unit -> float

(** Record one event.  [ts] defaults to the time source; no-op when
    the recorder is off. *)
val emit :
  ?ts:float ->
  cat:Event.category ->
  subsystem:string ->
  ?phase:Event.phase ->
  ?args:(string * Event.arg) list ->
  string ->
  unit

(** Record a [Complete] span from its simulated boundaries. *)
val span :
  ?args:(string * Event.arg) list ->
  cat:Event.category ->
  subsystem:string ->
  start_ns:float ->
  end_ns:float ->
  string ->
  unit

type stats = { emitted : int; dropped : int; capacity : int }

val stats : unit -> stats

(** Retained events, oldest first (newest [capacity] survive overflow). *)
val events : unit -> Event.t list

(** Per-category emission counts, including dropped events. *)
val category_counts : unit -> (Event.category * int) list

(** Reset the ring and counters without uninstalling the recorder. *)
val clear : unit -> unit
