(** Fig 9: dm-crypt throughput under filebench — randread and randrw,

    See the implementation for methodology notes. *)

val run : unit -> Sentry_util.Table.t list
