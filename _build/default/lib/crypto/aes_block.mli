(** Instrumented AES: the same cipher as [Aes] but with every piece of
    working state living in memory behind an [Accessor] — so that,
    memory-backed, table lookups produce observable, key-dependent
    addresses (the §3.1 bus side channel) unless the context is
    on-SoC.  Pinned by tests to byte-equality with [Aes]. *)

type t = {
  acc : Accessor.t;
  size : Aes_key.size;
  nr : int;
  off_input : int;
  off_key : int;
  off_round_index : int;
  off_round_keys : int;
  off_te : int;
  off_td : int;
  off_sbox : int;
  off_inv_sbox : int;
  off_rcon : int;
  off_block_index : int;
  off_ivec : int;
  mutable blocks_done : int;
}

(** Bytes of raw cipher state for a key size (= [Aes_state.total_size]). *)
val context_size : Aes_key.size -> int

(** Lay the full cipher context out behind the accessor: expands the
    key and writes tables, key and schedule into their
    [Aes_state] slots. *)
val init : Accessor.t -> key:Bytes.t -> t

(** Overwrite all secret and access-protected state with 0xFF. *)
val wipe : t -> unit

val encrypt_block : t -> Bytes.t -> int -> Bytes.t -> int -> unit
val decrypt_block : t -> Bytes.t -> int -> Bytes.t -> int -> unit

(** Mirror the CBC chaining vector into the context's public slot. *)
val set_iv : t -> Bytes.t -> unit

(** As a [Mode.cipher], so ECB/CBC/CTR come for free. *)
val cipher : t -> Mode.cipher

(** The permutation linking round-1 Te-lookup order to state byte
    positions — what the bus-monitor attack inverts. *)
val round1_lookup_order : int array
