(** Secret-provenance lattice and shadow-byte stores.

    One label per simulated byte: [Public < Ciphertext <
    Secret_cleartext].  Shadows are byte buffers ('\000'/'\001'/'\002'
    per data byte) so propagation reuses the data path's own
    blits/fills.  Allocation is lazy — tracking is opt-in via
    [Machine.enable_taint]. *)

type level = Public | Ciphertext | Secret_cleartext

val to_char : level -> char
val of_char : char -> level

(** Lattice rank: [Public] = 0, [Ciphertext] = 1,
    [Secret_cleartext] = 2. *)
val rank : level -> int

val join : level -> level -> level
val to_string : level -> string
val pp : Format.formatter -> level -> unit

(** A shadow for [n] data bytes, initially all [Public]. *)
val create_shadow : int -> Bytes.t

(** [fill shadow pos len level] labels a range uniformly. *)
val fill : Bytes.t -> int -> int -> level -> unit

(** [max_range shadow pos len] — the join over a range. *)
val max_range : Bytes.t -> int -> int -> level

val get : Bytes.t -> int -> level
val set : Bytes.t -> int -> level -> unit

(** [runs_at_least shadow ~level ~len] — does a contiguous run of at
    least [len] bytes labelled [>= level] exist? *)
val runs_at_least : Bytes.t -> level:level -> len:int -> bool

(** [fuzzy_window shadow ~level ~len ~min_match] — does a window of
    [len] bytes exist where at least [min_match] (fraction) of bytes
    are labelled [>= level]?  Taint analogue of
    [Memdump.contains_fuzzy]. *)
val fuzzy_window : Bytes.t -> level:level -> len:int -> min_match:float -> bool

(** Maximal runs of bytes labelled [>= level], as [(offset, length)]
    pairs in offset order. *)
val runs : Bytes.t -> level:level -> (int * int) list
