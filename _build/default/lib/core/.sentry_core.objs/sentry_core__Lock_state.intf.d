lib/core/lock_state.mli:
