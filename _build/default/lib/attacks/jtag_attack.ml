(** JTAG attacks (§3.2 — out of the paper's threat model because they
    are {e preventable}): a debug probe soldered to the JTAG pads can
    read every memory on the device, including on-SoC storage — unless
    the vendor burned the JTAG-disable fuse at provisioning time.

    This module exists to demonstrate that provisioning step: the same
    dump that succeeds on an unfused device fails on a fused one. *)

open Sentry_soc

type result = Dumped of Memdump.t list | Jtag_disabled

(** [dump machine] — attach the debug probe.  With JTAG enabled the
    probe halts the core and reads {e everything}: DRAM, iRAM, even
    pinned memory; with the fuse burned the probe gets nothing. *)
let dump machine =
  if not (Fuse.jtag_enabled (Machine.fuse machine)) then Jtag_disabled
  else begin
    let dram = Machine.dram machine in
    let iram = Machine.iram machine in
    let dumps =
      [
        Memdump.of_bytes ~label:"DRAM-via-JTAG" ~base:(Dram.region dram).Memmap.base
          (Dram.snapshot dram);
        Memdump.of_bytes ~label:"iRAM-via-JTAG" ~base:(Iram.region iram).Memmap.base
          (Iram.snapshot iram);
      ]
    in
    let dumps =
      match Machine.pinned machine with
      | Some pm ->
          dumps
          @ [
              Memdump.of_bytes ~label:"pinned-via-JTAG"
                ~base:(Pinned_mem.region pm).Memmap.base
                (Bytes.copy (Pinned_mem.raw pm));
            ]
      | None -> dumps
    in
    Dumped dumps
  end

(** [succeeds machine ~secret] — does the probe recover the secret? *)
let succeeds machine ~secret =
  match dump machine with
  | Jtag_disabled -> false
  | Dumped dumps -> List.exists (fun d -> Memdump.contains d secret) dumps
