(** Registry of named counters, gauges and bounded HDR-style
    histograms, keyed by ["subsystem/name"] plus optional sorted
    low-cardinality labels (["subsystem/name{k=v,…}"]). *)

type counter
type gauge
type histogram
type t

val create : unit -> t

(** The flat key an instrument registers under.  Labels are sorted by
    key; label keys/values must not contain ['{'], ['}'], [','],
    ['='], ['/'] or newlines.
    @raise Invalid_argument on an ill-formed label. *)
val key : subsystem:string -> ?labels:(string * string) list -> string -> string

(** Register-or-fetch.  @raise Invalid_argument if the key exists
    with a different instrument kind, or on an ill-formed label. *)
val counter : t -> subsystem:string -> ?labels:(string * string) list -> string -> counter

val gauge : t -> subsystem:string -> ?labels:(string * string) list -> string -> gauge
val histogram : t -> subsystem:string -> ?labels:(string * string) list -> string -> histogram

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

(** Set a gauge without touching its timestamp (stays at its previous
    write time; 0 initially). *)
val set : gauge -> float -> unit

(** Set a gauge stamped with the simulated time of the write — what
    [merge]'s last-writer-wins resolution keys on. *)
val set_at : gauge -> ts:float -> float -> unit

val gauge_value : gauge -> float
val gauge_ts : gauge -> float

(** Record one observation: bumps count/sum/min/max and the HDR
    bucket; the first [reservoir_capacity] samples are also kept
    exactly.  O(1) memory per instrument. *)
val observe : histogram -> float -> unit

(** Samples retained exactly (capped at [reservoir_capacity]). *)
val reservoir_capacity : int

val hist_count : histogram -> int

(** Retained exact observations, in insertion order (truncated to
    [reservoir_capacity] once the count exceeds it). *)
val observations : histogram -> float array

(** Occupied HDR buckets as [(lower_bound, count)]. *)
val bucket_counts : histogram -> (float * int) list

(** Nearest-rank percentile (0 when empty): exact over the sorted
    reservoir while the count fits it, bucket-upper-bound estimate
    (≤ 6.25% relative error, clamped to the tracked max) beyond. *)
val hist_percentile : histogram -> float -> float

val hist_mean : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float

(** Sorted [(key, value)] pairs; histograms fan out into
    [/count], [/mean], [/p50], [/p95], [/p99], [/p999], [/max]. *)
val flat : t -> (string * float) list

(** Bulk-harvest scalar readings as gauges under one subsystem. *)
val set_many : t -> subsystem:string -> (string * float) list -> unit

(** {2 Snapshots and deterministic merge} *)

(** Isolated deep copy — safe to merge or export while the source
    keeps recording. *)
val snapshot : t -> t

(** [merge a b] — fresh registry combining both.  Counters add;
    gauges keep the later write by simulated timestamp (value ties
    broken toward the larger value, so merge is commutative);
    histograms add count/sum/bucket occupancy, keep global min/max
    and a count-weighted deterministic downsample of both reservoirs
    (lossless concatenation while the combined count fits, so merging
    shard registries whose histograms fit the reservoir reproduces a
    single global registry key-for-key).  Bucket counts, count,
    min/max — and therefore every percentile the flat report exports —
    merge exactly regardless of merge order.
    @raise Invalid_argument on instrument-kind mismatch. *)
val merge : t -> t -> t
