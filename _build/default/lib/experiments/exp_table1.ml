(** Table 1: the threat model summary — rendered with each in-scope
    row {e demonstrated} by mounting the attack against an unprotected
    control, and each preventable out-of-scope row demonstrated
    against its prevention. *)

open Sentry_util
open Sentry_soc
open Sentry_core
open Sentry_attacks

let secret = Bytes.of_string "TABLE1-CONTROL-SECRET"

let control ~seed =
  let system = System.boot `Tegra3 ~seed in
  let machine = System.machine system in
  let frame = Sentry_kernel.Frame_alloc.alloc system.System.frames in
  Machine.write_uncached machine frame secret;
  (machine, frame)

let run () =
  let cold =
    let machine, _ = control ~seed:11 in
    Cold_boot.succeeds machine Cold_boot.Device_reflash ~secret
  in
  let bus =
    let machine, frame = control ~seed:12 in
    let monitor = Bus_monitor.attach machine in
    ignore (Machine.read machine frame 32);
    let seen = Bus_monitor.saw_secret monitor ~secret in
    Bus_monitor.detach monitor;
    seen
  in
  let dma =
    let machine, _ = control ~seed:13 in
    Dma_attack.succeeds machine ~secret
  in
  let jtag_fused =
    let machine, _ = control ~seed:14 in
    Fuse.burn_jtag_fuse (Machine.fuse machine);
    Jtag_attack.succeeds machine ~secret
  in
  let show b = if b then "demonstrated" else "blocked" in
  [
    Table.make ~title:"Table 1: threat model (in-scope rows mounted against unprotected DRAM)"
      ~header:[ "In-scope attack"; "vs unprotected DRAM" ]
      [
        [ "cold boot"; show cold ];
        [ "bus monitoring"; show bus ];
        [ "DMA attacks"; show dma ];
      ];
    Table.make ~title:"Table 1 (cont.): out-of-scope threats"
      ~header:[ "Out-of-scope threat"; "why / status here" ]
      ~notes:[ "See THREAT_MODEL.md for the module and test behind every row." ]
      [
        [ "software attacks (malware)"; "Sentry trusts the OS (see DESIGN.md)" ];
        [ "physical side-channel attacks"; "not modeled (bus-pattern channel IS in scope)" ];
        [ "code-injection"; "TrustZone denies protected windows; no integrity elsewhere" ];
        [ "JTAG attacks"; "preventable: fuse burned => " ^ show jtag_fused ^ " (i.e. fails)" ];
        [ "sophisticated physical attacks"; "not modeled (test-only raw accessors)" ];
      ];
  ]
