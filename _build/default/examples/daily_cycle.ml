(** A day in the life of a protected phone: 150 suspend/wake cycles
    (§7/§8.2's figure), background mail polls on timer wakes, a few
    real unlocks — with the battery cost tallied at the end.

    Run with: [dune exec examples/daily_cycle.exe] *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core

let () =
  let system = System.boot `Tegra3 ~seed:365 in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let mail = System.spawn system ~name:"mail" ~bytes:(128 * Units.kib) in
  let region = List.hd (Address_space.regions mail.Process.aspace) in
  System.fill_region system mail region (Bytes.of_string "INBOXPG!");
  Sentry.mark_sensitive sentry mail;
  Sentry.enable_background sentry mail;
  let susp = Suspend.create sentry in
  let energy = Machine.energy machine in
  let e0 = Energy.total energy in
  let dram = Dram.raw (Machine.dram machine) in
  let cycles = 150 in
  let unlock_every = 10 (* the user really looks at 15 of the 150 wakes *) in
  let leaks = ref 0 and polls = ref 0 in
  for cycle = 1 to cycles do
    (* a background service cycle leaves the device suspended already *)
    if not (Suspend.suspended susp) then ignore (Suspend.suspend susp);
    if Bytes_util.contains dram (Bytes.of_string "INBOXPG!") then incr leaks;
    if cycle mod 3 = 0 then begin
      (* timer wake: poll the mailbox while locked *)
      ignore
        (Suspend.background_service_cycle susp ~slept_s:300.0 (fun () ->
             incr polls;
             Vm.read system.System.vm mail ~vaddr:region.Address_space.vstart ~len:8))
    end
    else if cycle mod unlock_every = 0 then begin
      (match Suspend.wake_and_unlock susp ~pin:"1234" ~slept_s:300.0 with
      | Ok _ -> ()
      | Error _ -> failwith "unlock failed");
      (* the user reads some mail, then walks away *)
      ignore (Vm.read system.System.vm mail ~vaddr:region.Address_space.vstart ~len:64)
    end
    else Suspend.wake susp ~reason:Suspend.User_interaction ~slept_s:300.0
  done;
  if Suspend.suspended susp then
    Suspend.wake susp ~reason:Suspend.User_interaction ~slept_s:60.0;
  let spent = Energy.total energy -. e0 in
  let suspends, wakes = Suspend.counts susp in
  Printf.printf "day simulated: %d suspends, %d background polls, wake reasons: %s\n" suspends
    !polls
    (String.concat ", "
       (List.map (fun (r, n) -> Printf.sprintf "%s x%d" (Suspend.wake_reason_name r) n) wakes));
  Printf.printf "plaintext leaks to DRAM while asleep: %d (must be 0)\n" !leaks;
  assert (!leaks = 0);
  Printf.printf
    "energy for the whole day's protection of this 128 KB app: %.1f mJ (%.4f%% of a battery)\n"
    (spent *. 1e3)
    (100.0 *. spent /. Calib.nexus4_battery_j);
  Printf.printf "(a 48 MB app like Maps costs ~400 J/day = ~1.4%% -- see bench fig5)\n";
  print_endline "daily_cycle OK"
