(** DMA attacks (§3.1): dump a PIN-locked, powered-on device's memory
    through a DMA-capable peripheral.  Transfers bypass the L2 (locked
    ways are invisible); iRAM is reachable unless TrustZone denies. *)

open Sentry_soc

(** Page-sized DMA reads over the whole region; returns the image and
    how many windows TrustZone denied (denied pages read as zero). *)
val dump : Machine.t -> target:[ `Dram | `Iram ] -> Memdump.t * int

(** Dump both targets and grep for the secret. *)
val succeeds : Machine.t -> secret:Bytes.t -> bool

(** Code-injection flavour: attempt a DMA write. *)
val inject : Machine.t -> addr:int -> Bytes.t -> (unit, Dma.error) result
