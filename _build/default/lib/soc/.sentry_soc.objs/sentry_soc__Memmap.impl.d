lib/soc/memmap.ml: Fmt Sentry_util
