open Sentry_util
open Sentry_soc
open Sentry_crypto

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_bytes = Alcotest.(check bytes)
let hex = Hex.decode

(* ------------------------------ GF(2^8) --------------------------- *)

let test_gf256_xtime () =
  checki "2*1" 2 (Gf256.xtime 1);
  checki "2*0x80 reduces" 0x1b (Gf256.xtime 0x80);
  checki "2*0xff" 0xe5 (Gf256.xtime 0xff)

let test_gf256_mul_known () =
  (* FIPS-197 §4.2: {57} . {83} = {c1} *)
  checki "57*83" 0xc1 (Gf256.mul 0x57 0x83);
  checki "57*13" 0xfe (Gf256.mul 0x57 0x13);
  checki "identity" 0x57 (Gf256.mul 0x57 1);
  checki "zero" 0 (Gf256.mul 0x57 0)

let test_gf256_inverse () =
  checki "inv 0 = 0" 0 (Gf256.inv 0);
  for a = 1 to 255 do
    checki "a * inv a = 1" 1 (Gf256.mul a (Gf256.inv a))
  done

let test_gf256_commutative () =
  for _ = 1 to 100 do
    let p = Prng.create ~seed:77 in
    let a = Prng.byte p and b = Prng.byte p in
    checki "commutes" (Gf256.mul a b) (Gf256.mul b a)
  done

(* ------------------------------ Tables ---------------------------- *)

let test_sbox_known_values () =
  (* FIPS-197 Figure 7 spot checks *)
  checki "S(0x00)" 0x63 Aes_tables.sbox.(0x00);
  checki "S(0x53)" 0xed Aes_tables.sbox.(0x53);
  checki "S(0xff)" 0x16 Aes_tables.sbox.(0xff)

let test_sbox_bijective () =
  let seen = Array.make 256 false in
  Array.iter (fun s -> seen.(s) <- true) Aes_tables.sbox;
  checkb "bijection" true (Array.for_all Fun.id seen)

let test_inv_sbox_inverse () =
  for x = 0 to 255 do
    checki "inv_sbox . sbox = id" x Aes_tables.inv_sbox.(Aes_tables.sbox.(x))
  done

let test_rcon_values () =
  Alcotest.(check (array int)) "rcon"
    [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]
    Aes_tables.rcon

let test_te_structure () =
  for x = 0 to 255 do
    let b0, b1, b2, b3 = Aes_tables.te_entry x in
    let s = Aes_tables.sbox.(x) in
    checki "2s" (Gf256.mul 2 s) b0;
    checki "s" s b1;
    checki "s" s b2;
    checki "3s" (Gf256.mul 3 s) b3
  done

let test_serialized_tables_consistent () =
  checki "te bytes" 1024 (Bytes.length Aes_tables.te_bytes);
  for x = 0 to 255 do
    let b0, _, _, b3 = Aes_tables.te_entry x in
    checki "first byte" b0 (Char.code (Bytes.get Aes_tables.te_bytes (4 * x)));
    checki "last byte" b3 (Char.code (Bytes.get Aes_tables.te_bytes ((4 * x) + 3)))
  done

(* ---------------------------- Key schedule ------------------------ *)

let test_key_expansion_fips_a1 () =
  (* FIPS-197 A.1: last round key of the example 128-bit expansion *)
  let k = Aes_key.expand (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  checki "rounds" 10 k.Aes_key.nr;
  let last = Aes_key.round_key k 10 in
  check_bytes "w40..w43" (hex "d014f9a8c9ee2589e13f0cc8b6630ca6") last

let test_key_expansion_sizes () =
  List.iter
    (fun (len, nr, total) ->
      let k = Aes_key.expand (Bytes.make len 'k') in
      checki "nr" nr k.Aes_key.nr;
      checki "schedule bytes" total (Aes_key.schedule_bytes k))
    [ (16, 10, 176); (24, 12, 208); (32, 14, 240) ]

let test_key_expansion_bad_length () =
  Alcotest.check_raises "bad" (Invalid_argument "Aes_key: bad key length 15") (fun () ->
      ignore (Aes_key.expand (Bytes.make 15 'k')))

let test_schedule_recognizer_accepts_real () =
  let p = Prng.create ~seed:5 in
  for _ = 1 to 20 do
    let key = Prng.bytes p 16 in
    let sched = Aes_key.serialize (Aes_key.expand key) in
    let buf = Bytes.cat (Prng.bytes p 64) (Bytes.cat sched (Prng.bytes p 64)) in
    checkb "valid at 64" true (Aes_key.is_valid_128_schedule buf 64);
    check_bytes "key recovered" key (Aes_key.key_of_128_schedule buf 64)
  done

let test_schedule_recognizer_rejects_noise () =
  let p = Prng.create ~seed:6 in
  let buf = Prng.bytes p 4096 in
  let hits = ref 0 in
  for off = 0 to 4096 - 176 do
    if Aes_key.is_valid_128_schedule buf off then incr hits
  done;
  checki "no false positives" 0 !hits

let test_schedule_recognizer_rejects_corrupted () =
  let key = Bytes.make 16 'q' in
  let sched = Aes_key.serialize (Aes_key.expand key) in
  Bytes.set sched 100 (Char.chr (Char.code (Bytes.get sched 100) lxor 1));
  checkb "one flipped bit rejected" false (Aes_key.is_valid_128_schedule sched 0)

(* ------------------------------- AES ------------------------------ *)

let fips_cases =
  [
    (* key, plaintext, ciphertext *)
    ( "2b7e151628aed2a6abf7158809cf4f3c",
      "3243f6a8885a308d313198a2e0370734",
      "3925841d02dc09fbdc118597196a0b32" );
    ( "000102030405060708090a0b0c0d0e0f",
      "00112233445566778899aabbccddeeff",
      "69c4e0d86a7b0430d8cdb78070b4c55a" );
    ( "000102030405060708090a0b0c0d0e0f1011121314151617",
      "00112233445566778899aabbccddeeff",
      "dda97ca4864cdfe06eaf70a0ec0d7191" );
    ( "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
      "00112233445566778899aabbccddeeff",
      "8ea2b7ca516745bfeafc49904b496089" );
  ]

let test_aes_fips_vectors () =
  List.iter
    (fun (k, pt, ct) ->
      let key = Aes.expand (hex k) in
      check_bytes ("encrypt " ^ ct) (hex ct) (Aes.encrypt_block_copy key (hex pt));
      check_bytes ("decrypt " ^ pt) (hex pt) (Aes.decrypt_block_copy key (hex ct)))
    fips_cases

let test_aes_in_place () =
  let key = Aes.expand (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let buf = hex "3243f6a8885a308d313198a2e0370734" in
  Aes.encrypt_block key buf 0 buf 0;
  check_bytes "in place" (hex "3925841d02dc09fbdc118597196a0b32") buf

let test_aes_at_offset () =
  let key = Aes.expand (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let src = Bytes.cat (Bytes.make 3 'x') (hex "3243f6a8885a308d313198a2e0370734") in
  let dst = Bytes.make 24 '\000' in
  Aes.encrypt_block key src 3 dst 5;
  check_bytes "offset" (hex "3925841d02dc09fbdc118597196a0b32") (Bytes.sub dst 5 16)

(* ------------------------------ Modes ----------------------------- *)

(* NIST SP 800-38A F.2.1 CBC-AES128.Encrypt *)
let sp800_key = "2b7e151628aed2a6abf7158809cf4f3c"
let sp800_iv = "000102030405060708090a0b0c0d0e0f"

let sp800_pt =
  "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"

let sp800_cbc_ct =
  "7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b273bed6b8e3c1743b7116e69e222295163ff1caa1681fac09120eca307586e1a7"

let test_cbc_nist_vector () =
  let c = Mode.of_key (Aes.expand (hex sp800_key)) in
  check_bytes "cbc encrypt" (hex sp800_cbc_ct)
    (Mode.cbc_encrypt c ~iv:(hex sp800_iv) (hex sp800_pt));
  check_bytes "cbc decrypt" (hex sp800_pt)
    (Mode.cbc_decrypt c ~iv:(hex sp800_iv) (hex sp800_cbc_ct))

(* NIST SP 800-38A F.5.1 CTR-AES128.Encrypt *)
let test_ctr_nist_vector () =
  let c = Mode.of_key (Aes.expand (hex sp800_key)) in
  let nonce = hex "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
  let ct =
    "874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff5ae4df3edbd5d35e5b4f09020db03eab1e031dda2fbe03d1792170a0f3009cee"
  in
  check_bytes "ctr" (hex ct) (Mode.ctr_transform c ~nonce (hex sp800_pt));
  check_bytes "ctr inverse" (hex sp800_pt) (Mode.ctr_transform c ~nonce (hex ct))

let test_ecb_nist_vector () =
  let c = Mode.of_key (Aes.expand (hex sp800_key)) in
  let ct =
    "3ad77bb40d7a3660a89ecaf32466ef97f5d3d58503b9699de785895a96fdbaaf43b1cd7f598ece23881b00e3ed0306887b0c785e27e8ad3f8223207104725dd4"
  in
  check_bytes "ecb" (hex ct) (Mode.ecb_encrypt c (hex sp800_pt));
  check_bytes "ecb decrypt" (hex sp800_pt) (Mode.ecb_decrypt c (hex ct))

let test_cbc_rejects_misaligned () =
  let c = Mode.of_key (Aes.expand (hex sp800_key)) in
  Alcotest.check_raises "misaligned"
    (Invalid_argument "Mode.cbc_encrypt: data not a multiple of the block size") (fun () ->
      ignore (Mode.cbc_encrypt c ~iv:(hex sp800_iv) (Bytes.make 17 'x')))

let test_cbc_bad_iv () =
  let c = Mode.of_key (Aes.expand (hex sp800_key)) in
  Alcotest.check_raises "iv" (Invalid_argument "Mode.cbc_encrypt: bad IV") (fun () ->
      ignore (Mode.cbc_encrypt c ~iv:(Bytes.make 8 'i') (Bytes.make 16 'x')))

let test_pkcs7 () =
  let data = Bytes.of_string "hello" in
  let padded = Mode.pad_pkcs7 data in
  checki "padded length" 16 (Bytes.length padded);
  check_bytes "unpad" data (Mode.unpad_pkcs7 padded);
  (* exact multiple gets a full pad block *)
  let b16 = Bytes.make 16 'a' in
  checki "full block pad" 32 (Bytes.length (Mode.pad_pkcs7 b16));
  check_bytes "unpad full" b16 (Mode.unpad_pkcs7 (Mode.pad_pkcs7 b16))

let test_pkcs7_bad_padding () =
  Alcotest.check_raises "bad" (Invalid_argument "Mode.unpad_pkcs7: bad padding") (fun () ->
      ignore (Mode.unpad_pkcs7 (Bytes.make 16 '\x11')))

let test_ctr_counter_carry () =
  (* counter ending in 0xff..ff must carry, not wrap within a byte *)
  let c = Mode.of_key (Aes.expand (hex sp800_key)) in
  let nonce = hex "000000000000000000000000000000ff" in
  let out = Mode.ctr_transform c ~nonce (Bytes.make 48 '\000') in
  (* decrypting with the same nonce must roundtrip (checks carry consistency) *)
  check_bytes "carry roundtrip" (Bytes.make 48 '\000') (Mode.ctr_transform c ~nonce out)

(* ----------------------------- SHA-256 ---------------------------- *)

let test_sha256_vectors () =
  List.iter
    (fun (msg, want) -> check_bytes msg (hex want) (Sha256.digest_string msg))
    [
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ]

let test_sha256_long_input () =
  (* million 'a' standard vector *)
  let msg = Bytes.make 1_000_000 'a' in
  check_bytes "million a"
    (hex "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
    (Sha256.digest msg)

let test_sha256_padding_boundaries () =
  (* lengths around the 55/56/64 padding boundaries must not crash and
     must be distinct *)
  let digests =
    List.map (fun n -> Sha256.digest (Bytes.make n 'x')) [ 54; 55; 56; 57; 63; 64; 65 ]
  in
  let distinct = List.sort_uniq compare (List.map Bytes.to_string digests) in
  checki "all distinct" (List.length digests) (List.length distinct)

let test_hmac_rfc4231 () =
  (* RFC 4231 test case 2 *)
  let key = Bytes.of_string "Jefe" in
  let msg = Bytes.of_string "what do ya want for nothing?" in
  check_bytes "hmac"
    (hex "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
    (Sha256.hmac ~key msg)

(* ------------------------------ ESSIV ----------------------------- *)

let test_essiv_deterministic_distinct () =
  let e = Essiv.create ~key:(Bytes.make 16 'k') in
  check_bytes "deterministic" (Essiv.iv e ~sector:42) (Essiv.iv e ~sector:42);
  checkb "distinct sectors" false (Bytes.equal (Essiv.iv e ~sector:1) (Essiv.iv e ~sector:2))

let test_essiv_key_dependent () =
  let e1 = Essiv.create ~key:(Bytes.make 16 'a') in
  let e2 = Essiv.create ~key:(Bytes.make 16 'b') in
  checkb "key dependent" false (Bytes.equal (Essiv.iv e1 ~sector:7) (Essiv.iv e2 ~sector:7))

(* ---------------------------- Aes_state --------------------------- *)

let test_state_sizes_table4 () =
  let check_size size secret public ap total =
    let s, p, a = Aes_state.by_sensitivity size in
    checki "secret" secret s;
    checki "public" public p;
    checki "access-protected" ap a;
    checki "total" total (Aes_state.total_size size)
  in
  check_size Aes_key.Aes_128 208 18 2600 2826;
  check_size Aes_key.Aes_192 248 18 2600 2866;
  check_size Aes_key.Aes_256 288 18 2600 2906

let test_state_layout_no_overlap () =
  List.iter
    (fun size ->
      let fields = Aes_state.layout size in
      let rec pairs = function
        | [] -> ()
        | (f : Aes_state.field) :: rest ->
            List.iter
              (fun (g : Aes_state.field) ->
                checkb "disjoint" true
                  (f.Aes_state.offset + f.Aes_state.size <= g.Aes_state.offset
                  || g.Aes_state.offset + g.Aes_state.size <= f.Aes_state.offset))
              rest;
            pairs rest
      in
      pairs fields)
    [ Aes_key.Aes_128; Aes_key.Aes_192; Aes_key.Aes_256 ]

let test_state_fields_word_aligned () =
  List.iter
    (fun (f : Aes_state.field) -> checki (f.Aes_state.name ^ " aligned") 0 (f.Aes_state.offset mod 4))
    (Aes_state.layout Aes_key.Aes_128)

let test_state_fits_one_page () =
  List.iter
    (fun size -> checkb "fits page" true (Aes_state.context_bytes size <= 4096))
    [ Aes_key.Aes_128; Aes_key.Aes_192; Aes_key.Aes_256 ]

let test_round_tables_dominate () =
  (* the paper's observation: access-protected state is an order of
     magnitude larger than everything else combined *)
  let s, p, a = Aes_state.by_sensitivity Aes_key.Aes_128 in
  checkb "dominates" true (a > 10 * (s + p - 18))

(* ---------------------------- Aes_block --------------------------- *)

let native_block key =
  let buf = Bytes.make 4096 '\000' in
  Aes_block.init (Accessor.native buf) ~key

let test_instrumented_equals_fast () =
  let p = Prng.create ~seed:21 in
  List.iter
    (fun klen ->
      let key = Prng.bytes p klen in
      let fast = Aes.expand key in
      let blk = native_block key in
      for _ = 1 to 20 do
        let pt = Prng.bytes p 16 in
        let c1 = Aes.encrypt_block_copy fast pt in
        let c2 = Bytes.create 16 in
        Aes_block.encrypt_block blk pt 0 c2 0;
        check_bytes "enc equal" c1 c2;
        let d = Bytes.create 16 in
        Aes_block.decrypt_block blk c1 0 d 0;
        check_bytes "dec roundtrip" pt d
      done)
    [ 16; 24; 32 ]

let test_instrumented_cbc_matches_mode () =
  let p = Prng.create ~seed:22 in
  let key = Prng.bytes p 16 in
  let blk = native_block key in
  let iv = Prng.bytes p 16 in
  let data = Prng.bytes p 128 in
  let want = Mode.cbc_encrypt (Mode.of_key (Aes.expand key)) ~iv data in
  check_bytes "cbc" want (Mode.cbc_encrypt (Aes_block.cipher blk) ~iv data)

let test_instrumented_wipe () =
  let buf = Bytes.make 4096 '\000' in
  let blk = Aes_block.init (Accessor.native buf) ~key:(Bytes.make 16 'k') in
  Aes_block.wipe blk;
  (* every secret / access-protected byte is 0xff *)
  List.iter
    (fun (f : Aes_state.field) ->
      match f.Aes_state.sensitivity with
      | Aes_state.Secret | Aes_state.Access_protected ->
          for i = f.Aes_state.offset to f.Aes_state.offset + f.Aes_state.size - 1 do
            checki "wiped" 0xff (Char.code (Bytes.get buf i))
          done
      | Aes_state.Public -> ())
    (Aes_state.layout Aes_key.Aes_128)

let test_round1_lookup_order_is_permutation () =
  let a = Array.copy Aes_block.round1_lookup_order in
  Array.sort compare a;
  Alcotest.(check (array int)) "permutation" (Array.init 16 Fun.id) a

(* --------------------- machine-backed ciphers --------------------- *)

let boot_machine () = Machine.create ~seed:33 (Machine.tegra3 ~dram_size:(4 * Units.mib) ())

let test_machine_backed_cipher_correct () =
  let m = boot_machine () in
  let base = (Machine.dram_region m).Memmap.base + 0x10000 in
  let blk = Aes_block.init (Accessor.machine m ~base) ~key:(hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let ct = Bytes.create 16 in
  Aes_block.encrypt_block blk (hex "3243f6a8885a308d313198a2e0370734") 0 ct 0;
  check_bytes "fips through simulated memory" (hex "3925841d02dc09fbdc118597196a0b32") ct

let test_generic_aes_schedule_lands_in_dram () =
  let m = boot_machine () in
  let base = (Machine.dram_region m).Memmap.base + 0x20000 in
  let g = Generic_aes.create m ~ctx_base:base ~variant:Perf.Openssl_user in
  let key = Bytes.of_string "sixteen byte key" in
  Generic_aes.set_key g key;
  Pl310.flush_masked (Machine.l2 m);
  let sched = Aes_key.serialize (Aes_key.expand key) in
  checkb "schedule in DRAM" true (Bytes_util.contains (Dram.raw (Machine.dram m)) sched)

let test_generic_aes_requires_dram () =
  let m = boot_machine () in
  Alcotest.check_raises "iram rejected"
    (Invalid_argument "Generic_aes.create: context must be in DRAM") (fun () ->
      ignore
        (Generic_aes.create m ~ctx_base:(Machine.iram_region m).Memmap.base
           ~variant:Perf.Openssl_user))

let test_generic_bulk_matches_instrumented () =
  let m = boot_machine () in
  let base = (Machine.dram_region m).Memmap.base + 0x30000 in
  let g = Generic_aes.create m ~ctx_base:base ~variant:Perf.Openssl_user in
  Generic_aes.set_key g (Bytes.make 16 'k');
  let iv = Bytes.make 16 'i' in
  let data = Bytes.make 64 'd' in
  check_bytes "bulk = instrumented"
    (Generic_aes.encrypt_instrumented g ~iv data)
    (Generic_aes.bulk g ~dir:`Encrypt ~iv data)

(* ---------------------------- Crypto API -------------------------- *)

let dummy_impl name priority =
  {
    Crypto_api.name;
    algorithm = "cbc(aes)";
    priority;
    set_key = (fun _ -> ());
    encrypt = (fun ~iv:_ d -> d);
    decrypt = (fun ~iv:_ d -> d);
  }

let test_crypto_api_priority () =
  let api = Crypto_api.create () in
  Crypto_api.register api (dummy_impl "lo" 100);
  Crypto_api.register api (dummy_impl "hi" 500);
  Crypto_api.register api (dummy_impl "mid" 300);
  checkb "highest wins" true ((Crypto_api.find api ~algorithm:"cbc(aes)").Crypto_api.name = "hi");
  Crypto_api.unregister api ~name:"hi";
  checkb "next highest" true ((Crypto_api.find api ~algorithm:"cbc(aes)").Crypto_api.name = "mid")

let test_crypto_api_not_found () =
  let api = Crypto_api.create () in
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Crypto_api.find api ~algorithm:"gcm(aes)"))

let test_crypto_api_list_sorted () =
  let api = Crypto_api.create () in
  Crypto_api.register api (dummy_impl "a" 1);
  Crypto_api.register api (dummy_impl "b" 9);
  match Crypto_api.list api with
  | [ first; second ] ->
      checkb "sorted" true
        (first.Crypto_api.name = "b" && second.Crypto_api.name = "a")
  | _ -> Alcotest.fail "length"

(* ----------------------------- Hw_accel --------------------------- *)

let test_hw_accel_size_sensitivity () =
  let m = Machine.create ~seed:44 (Machine.nexus4 ~dram_size:(2 * Units.mib) ()) in
  let hw = Hw_accel.create m in
  let small = Hw_accel.throughput_mb_s hw ~bytes:4096 in
  let large = Hw_accel.throughput_mb_s hw ~bytes:Units.mib in
  checkb "bulk much faster" true (large > 2.0 *. small);
  Alcotest.(check (float 1.0)) "4k calibration" Calib.aes_nexus_hw_awake_mb_s small

let test_hw_accel_downscaling () =
  let m = Machine.create ~seed:44 (Machine.nexus4 ~dram_size:(2 * Units.mib) ()) in
  let hw = Hw_accel.create m in
  let awake = Hw_accel.throughput_mb_s hw ~bytes:4096 in
  Hw_accel.set_awake hw false;
  let asleep = Hw_accel.throughput_mb_s hw ~bytes:4096 in
  Alcotest.(check (float 0.01)) "4x down" (awake /. 4.0) asleep

let test_hw_accel_transform_correct () =
  let m = Machine.create ~seed:44 (Machine.nexus4 ~dram_size:(2 * Units.mib) ()) in
  let hw = Hw_accel.create m in
  let key = Bytes.make 16 'k' and iv = Bytes.make 16 'i' in
  Hw_accel.set_key hw key;
  let data = Bytes.make 64 'd' in
  let want = Mode.cbc_encrypt (Mode.of_key (Aes.expand key)) ~iv data in
  check_bytes "matches software" want (Hw_accel.encrypt hw ~iv data);
  check_bytes "decrypt" data (Hw_accel.decrypt hw ~iv want)

let test_hw_accel_unavailable_on_tegra () =
  let m = boot_machine () in
  Alcotest.check_raises "tegra"
    (Invalid_argument "Hw_accel.create: platform has no crypto accelerator") (fun () ->
      ignore (Hw_accel.create m))

(* ------------------------------ Perf ------------------------------ *)

let test_perf_onsoc_overhead_under_1pct () =
  let generic = Perf.throughput_mb_s ~platform:`Tegra3 Perf.Openssl_user in
  let locked = Perf.throughput_mb_s ~platform:`Tegra3 Perf.Onsoc_locked_l2 in
  let iram = Perf.throughput_mb_s ~platform:`Tegra3 Perf.Onsoc_iram in
  checkb "locked <1%" true ((generic -. locked) /. generic < 0.01);
  checkb "iram <1%" true ((generic -. iram) /. generic < 0.01)

let test_perf_charge_advances_clock () =
  let m = boot_machine () in
  let t0 = Machine.now m in
  Perf.charge m Perf.Openssl_user ~bytes:Units.mib;
  let dt = Machine.now m -. t0 in
  let want = 1.0 /. Calib.aes_tegra_generic_mb_s *. Units.s in
  Alcotest.(check (float (want /. 100.0))) "modeled time" want dt

let test_perf_invalid_combos () =
  Alcotest.check_raises "locked l2 on nexus"
    (Invalid_argument "Perf: locked-L2 AES unavailable on nexus4") (fun () ->
      ignore (Perf.throughput_mb_s ~platform:`Nexus4 Perf.Onsoc_locked_l2));
  Alcotest.check_raises "hw on tegra"
    (Invalid_argument "Perf: no crypto accelerator on tegra3") (fun () ->
      ignore (Perf.throughput_mb_s ~platform:`Tegra3 (Perf.Hw_accelerated `Awake)))

(* ------------------------------- XTS ------------------------------ *)

(* IEEE 1619-2007 XTS-AES-128 vectors 1 and 2 *)
let test_xts_ieee_vectors () =
  let k1 = Xts.expand (Bytes.make 32 '\000') in
  check_bytes "vector 1"
    (hex "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e")
    (Xts.encrypt_sector k1 ~sector:0 (Bytes.make 32 '\000'));
  let k2 = Xts.expand (Bytes.cat (Bytes.make 16 '\x11') (Bytes.make 16 '\x22')) in
  check_bytes "vector 2"
    (hex "c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0")
    (Xts.encrypt_sector k2 ~sector:0x3333333333 (Bytes.make 32 '\x44'))

let test_xts_roundtrip_and_sector_sensitivity () =
  let p = Prng.create ~seed:61 in
  let k = Xts.expand (Prng.bytes p 32) in
  let data = Prng.bytes p 512 in
  let ct1 = Xts.encrypt_sector k ~sector:7 data in
  check_bytes "roundtrip" data (Xts.decrypt_sector k ~sector:7 ct1);
  let ct2 = Xts.encrypt_sector k ~sector:8 data in
  checkb "sector-dependent" false (Bytes.equal ct1 ct2)

let test_xts_bad_inputs () =
  Alcotest.check_raises "key length" (Invalid_argument "Xts.expand: key must be 32 or 64 bytes")
    (fun () -> ignore (Xts.expand (Bytes.make 16 'k')));
  let k = Xts.expand (Bytes.make 32 'k') in
  Alcotest.check_raises "alignment" (Invalid_argument "Xts: data must be a multiple of 16 bytes")
    (fun () -> ignore (Xts.encrypt_sector k ~sector:0 (Bytes.make 17 'x')))

let test_xts_aes256_flavor () =
  let p = Prng.create ~seed:62 in
  let k = Xts.expand (Prng.bytes p 64) in
  let data = Prng.bytes p 64 in
  check_bytes "xts-aes-256 roundtrip" data
    (Xts.decrypt_sector k ~sector:3 (Xts.encrypt_sector k ~sector:3 data))

let test_xts_crypto_api_priority () =
  let m = boot_machine () in
  let api = Crypto_api.create () in
  let base = (Machine.dram_region m).Memmap.base + 0x40000 in
  let g = Generic_aes.create m ~ctx_base:base ~variant:Perf.Crypto_api_kernel in
  Generic_aes.register_xts g api;
  checkb "generic xts registered" true
    ((Crypto_api.find api ~algorithm:"xts(aes)").Crypto_api.name = "aes-generic-xts");
  let impl = Crypto_api.find api ~algorithm:"xts(aes)" in
  impl.Crypto_api.set_key (Bytes.make 32 'k');
  let data = Bytes.make 512 'd' in
  let tweak = Xts.tweak_of_sector 5 in
  let ct = impl.Crypto_api.encrypt ~iv:tweak data in
  check_bytes "api xts matches module" ct
    (Xts.encrypt (Xts.expand (Bytes.make 32 'k')) ~tweak data);
  check_bytes "api xts decrypt" data (impl.Crypto_api.decrypt ~iv:tweak ct)

(* ---------------------------- Key_derive -------------------------- *)

let test_key_derive_volatile_fresh () =
  let m1 = boot_machine () in
  let m2 = Machine.create ~seed:99 (Machine.tegra3 ~dram_size:(2 * Units.mib) ()) in
  let k1 = Key_derive.volatile_key m1 and k2 = Key_derive.volatile_key m2 in
  checki "length" Key_derive.key_len (Bytes.length k1);
  checkb "differs across boots" false (Bytes.equal k1 k2)

let test_key_derive_persistent_stable () =
  let m = boot_machine () in
  let k1 = Key_derive.persistent_key m ~password:"hunter2" in
  let k2 = Key_derive.persistent_key m ~password:"hunter2" in
  check_bytes "stable" k1 k2;
  let k3 = Key_derive.persistent_key m ~password:"hunter3" in
  checkb "password-sensitive" false (Bytes.equal k1 k3)

let test_key_derive_device_bound () =
  let m1 = boot_machine () in
  let m2 = Machine.create ~seed:98 (Machine.tegra3 ~dram_size:(2 * Units.mib) ()) in
  let k1 = Key_derive.persistent_key m1 ~password:"pw" in
  let k2 = Key_derive.persistent_key m2 ~password:"pw" in
  checkb "fuse-bound" false (Bytes.equal k1 k2)

(* --------------------------- properties --------------------------- *)

let qcheck_tests =
  let open QCheck in
  let keygen = string_of_size (Gen.oneofl [ 16; 24; 32 ]) in
  [
    Test.make ~name:"AES decrypt . encrypt = id (all key sizes)" ~count:300
      (pair keygen (string_of_size (Gen.return 16)))
      (fun (k, pt) ->
        let key = Aes.expand (Bytes.of_string k) in
        let pt = Bytes.of_string pt in
        Bytes.equal (Aes.decrypt_block_copy key (Aes.encrypt_block_copy key pt)) pt);
    Test.make ~name:"CBC roundtrip at any block count" ~count:100
      (pair (string_of_size (Gen.return 16)) (int_range 0 8))
      (fun (k, nblocks) ->
        let c = Mode.of_key (Aes.expand (Bytes.of_string k)) in
        let iv = Bytes.make 16 '\x42' in
        let data = Bytes.init (16 * nblocks) (fun i -> Char.chr (i land 0xff)) in
        Bytes.equal (Mode.cbc_decrypt c ~iv (Mode.cbc_encrypt c ~iv data)) data);
    Test.make ~name:"CTR is an involution" ~count:100
      (pair (string_of_size (Gen.return 16)) (string_of_size Gen.(0 -- 100)))
      (fun (k, data) ->
        let c = Mode.of_key (Aes.expand (Bytes.of_string k)) in
        let nonce = Bytes.make 16 '\x17' in
        let data = Bytes.of_string data in
        Bytes.equal (Mode.ctr_transform c ~nonce (Mode.ctr_transform c ~nonce data)) data);
    Test.make ~name:"pkcs7 unpad . pad = id" ~count:200 (string_of_size Gen.(0 -- 64))
      (fun s ->
        let b = Bytes.of_string s in
        Bytes.equal (Mode.unpad_pkcs7 (Mode.pad_pkcs7 b)) b);
    Test.make ~name:"encryption changes the data" ~count:100 (string_of_size (Gen.return 16))
      (fun pt ->
        let key = Aes.expand (Bytes.make 16 'Z') in
        not (Bytes.equal (Aes.encrypt_block_copy key (Bytes.of_string pt)) (Bytes.of_string pt)));
    Test.make ~name:"instrumented cipher equals fast cipher" ~count:50
      (pair keygen (string_of_size (Gen.return 16)))
      (fun (k, pt) ->
        let key = Bytes.of_string k and pt = Bytes.of_string pt in
        let blk = native_block key in
        let out = Bytes.create 16 in
        Aes_block.encrypt_block blk pt 0 out 0;
        Bytes.equal out (Aes.encrypt_block_copy (Aes.expand key) pt));
    Test.make ~name:"sha256 avalanche: one flipped bit changes the digest" ~count:100
      (pair (string_of_size Gen.(1 -- 64)) (int_range 0 7))
      (fun (s, bit) ->
        let b = Bytes.of_string s in
        let d1 = Sha256.digest b in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl bit)));
        not (Bytes.equal d1 (Sha256.digest b)));
    Test.make ~name:"key schedule recognizer: valid iff untampered" ~count:50
      (pair (string_of_size (Gen.return 16)) (int_range 0 175))
      (fun (k, pos) ->
        let sched = Aes_key.serialize (Aes_key.expand (Bytes.of_string k)) in
        let ok = Aes_key.is_valid_128_schedule sched 0 in
        Bytes.set sched pos (Char.chr (Char.code (Bytes.get sched pos) lxor 0x80));
        ok && not (Aes_key.is_valid_128_schedule sched 0));
  ]

let () =
  Alcotest.run "sentry_crypto"
    [
      ( "gf256",
        [
          Alcotest.test_case "xtime" `Quick test_gf256_xtime;
          Alcotest.test_case "mul known" `Quick test_gf256_mul_known;
          Alcotest.test_case "inverse" `Quick test_gf256_inverse;
          Alcotest.test_case "commutative" `Quick test_gf256_commutative;
        ] );
      ( "tables",
        [
          Alcotest.test_case "sbox values" `Quick test_sbox_known_values;
          Alcotest.test_case "sbox bijective" `Quick test_sbox_bijective;
          Alcotest.test_case "inv sbox" `Quick test_inv_sbox_inverse;
          Alcotest.test_case "rcon" `Quick test_rcon_values;
          Alcotest.test_case "te structure" `Quick test_te_structure;
          Alcotest.test_case "serialized consistent" `Quick test_serialized_tables_consistent;
        ] );
      ( "key-schedule",
        [
          Alcotest.test_case "fips a.1" `Quick test_key_expansion_fips_a1;
          Alcotest.test_case "sizes" `Quick test_key_expansion_sizes;
          Alcotest.test_case "bad length" `Quick test_key_expansion_bad_length;
          Alcotest.test_case "recognizer accepts" `Quick test_schedule_recognizer_accepts_real;
          Alcotest.test_case "recognizer rejects noise" `Quick test_schedule_recognizer_rejects_noise;
          Alcotest.test_case "recognizer rejects corrupt" `Quick
            test_schedule_recognizer_rejects_corrupted;
        ] );
      ( "aes",
        [
          Alcotest.test_case "fips vectors" `Quick test_aes_fips_vectors;
          Alcotest.test_case "in place" `Quick test_aes_in_place;
          Alcotest.test_case "at offset" `Quick test_aes_at_offset;
        ] );
      ( "modes",
        [
          Alcotest.test_case "cbc nist" `Quick test_cbc_nist_vector;
          Alcotest.test_case "ctr nist" `Quick test_ctr_nist_vector;
          Alcotest.test_case "ecb nist" `Quick test_ecb_nist_vector;
          Alcotest.test_case "misaligned" `Quick test_cbc_rejects_misaligned;
          Alcotest.test_case "bad iv" `Quick test_cbc_bad_iv;
          Alcotest.test_case "pkcs7" `Quick test_pkcs7;
          Alcotest.test_case "pkcs7 bad" `Quick test_pkcs7_bad_padding;
          Alcotest.test_case "ctr carry" `Quick test_ctr_counter_carry;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Slow test_sha256_long_input;
          Alcotest.test_case "padding boundaries" `Quick test_sha256_padding_boundaries;
          Alcotest.test_case "hmac rfc4231" `Quick test_hmac_rfc4231;
        ] );
      ( "essiv",
        [
          Alcotest.test_case "deterministic distinct" `Quick test_essiv_deterministic_distinct;
          Alcotest.test_case "key dependent" `Quick test_essiv_key_dependent;
        ] );
      ( "aes-state",
        [
          Alcotest.test_case "table 4 sizes" `Quick test_state_sizes_table4;
          Alcotest.test_case "no overlap" `Quick test_state_layout_no_overlap;
          Alcotest.test_case "word aligned" `Quick test_state_fields_word_aligned;
          Alcotest.test_case "fits one page" `Quick test_state_fits_one_page;
          Alcotest.test_case "round tables dominate" `Quick test_round_tables_dominate;
        ] );
      ( "aes-block",
        [
          Alcotest.test_case "equals fast" `Quick test_instrumented_equals_fast;
          Alcotest.test_case "cbc matches" `Quick test_instrumented_cbc_matches_mode;
          Alcotest.test_case "wipe" `Quick test_instrumented_wipe;
          Alcotest.test_case "round1 order" `Quick test_round1_lookup_order_is_permutation;
        ] );
      ( "machine-backed",
        [
          Alcotest.test_case "correct through memory" `Quick test_machine_backed_cipher_correct;
          Alcotest.test_case "generic schedule in DRAM" `Quick
            test_generic_aes_schedule_lands_in_dram;
          Alcotest.test_case "generic requires DRAM" `Quick test_generic_aes_requires_dram;
          Alcotest.test_case "bulk matches instrumented" `Quick test_generic_bulk_matches_instrumented;
        ] );
      ( "crypto-api",
        [
          Alcotest.test_case "priority" `Quick test_crypto_api_priority;
          Alcotest.test_case "not found" `Quick test_crypto_api_not_found;
          Alcotest.test_case "list sorted" `Quick test_crypto_api_list_sorted;
        ] );
      ( "hw-accel",
        [
          Alcotest.test_case "size sensitivity" `Quick test_hw_accel_size_sensitivity;
          Alcotest.test_case "down-scaling" `Quick test_hw_accel_downscaling;
          Alcotest.test_case "transform correct" `Quick test_hw_accel_transform_correct;
          Alcotest.test_case "tegra has none" `Quick test_hw_accel_unavailable_on_tegra;
        ] );
      ( "perf",
        [
          Alcotest.test_case "on-soc <1%" `Quick test_perf_onsoc_overhead_under_1pct;
          Alcotest.test_case "charge" `Quick test_perf_charge_advances_clock;
          Alcotest.test_case "invalid combos" `Quick test_perf_invalid_combos;
        ] );
      ( "xts",
        [
          Alcotest.test_case "ieee vectors" `Quick test_xts_ieee_vectors;
          Alcotest.test_case "roundtrip + sector" `Quick test_xts_roundtrip_and_sector_sensitivity;
          Alcotest.test_case "bad inputs" `Quick test_xts_bad_inputs;
          Alcotest.test_case "aes-256 flavor" `Quick test_xts_aes256_flavor;
          Alcotest.test_case "crypto api" `Quick test_xts_crypto_api_priority;
        ] );
      ( "key-derive",
        [
          Alcotest.test_case "volatile fresh" `Quick test_key_derive_volatile_fresh;
          Alcotest.test_case "persistent stable" `Quick test_key_derive_persistent_stable;
          Alcotest.test_case "device bound" `Quick test_key_derive_device_bound;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
