lib/attacks/dma_attack.ml: Buffer Bytes Dma Machine Memdump Memmap Sentry_soc
