(** ARM TrustZone: two worlds backed by hardware access control.

    Sentry uses TrustZone for two things (§3.1, §10): programming the
    PL310 lockdown registers (co-processor access is secure-world
    only) and denying DMA windows over protected memory — in
    particular over the iRAM region holding keys, since iRAM is
    otherwise ordinary memory as far as DMA is concerned (§4.4). *)

type world = Secure | Normal

exception Permission_denied of string

type t = {
  fuse : Fuse.t;
  mutable world : world;
  mutable dma_denied : Memmap.region list;
}

let create ~fuse = { fuse; world = Normal; dma_denied = [] }

let world t = t.world

(** [with_secure_world t f] executes [f] in the secure world (the SMC
    world-switch instruction), restoring the previous world after. *)
let with_secure_world t f =
  let saved = t.world in
  t.world <- Secure;
  Fun.protect ~finally:(fun () -> t.world <- saved) f

let require_secure t what =
  if t.world <> Secure then raise (Permission_denied what)

(** [deny_dma t region] (secure world only) blocks all DMA accesses
    intersecting [region]. *)
let deny_dma t region =
  require_secure t "Trustzone.deny_dma";
  t.dma_denied <- region :: t.dma_denied

let allow_all_dma t =
  require_secure t "Trustzone.allow_all_dma";
  t.dma_denied <- []

let regions_intersect (a : Memmap.region) (b : Memmap.region) =
  a.Memmap.base < Memmap.limit b && b.Memmap.base < Memmap.limit a

(** [dma_allowed t ~addr ~len] — the hardware filter consulted on
    every DMA transfer.  TrustZone cannot authenticate DMA initiators
    (§3.1), so the deny list applies to {e all} devices. *)
let dma_allowed t ~addr ~len =
  let req = Memmap.region ~base:addr ~size:(max 1 len) in
  not (List.exists (regions_intersect req) t.dma_denied)

(** [read_fuse t] — the device secret, secure world only. *)
let read_fuse t =
  require_secure t "Trustzone.read_fuse";
  Fuse.secret_unchecked t.fuse

(** Secure-world gate used by the PL310 driver: lockdown registers are
    only programmable from the secure world (§10). *)
let check_coprocessor_access t = require_secure t "PL310 lockdown register"
