lib/kernel/zerod.mli: Frame_alloc Machine Sentry_soc
