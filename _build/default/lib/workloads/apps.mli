(** The four applications of the paper's macrobenchmarks (§8.2), with
    profile numbers taken from the paper's own measurements. *)

val contacts : App.profile
val maps : App.profile
val twitter : App.profile
val mp3 : App.profile
val all : App.profile list
