lib/soc/dma.ml: Bytes Calib Clock Dram Energy Iram Memmap Trustzone
