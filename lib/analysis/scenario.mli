(** The canned verification scenario: a full lock/unlock cycle with a
    sensitive foreground app, a short-lived sensitive app whose freed
    pages must be scrubbed, and (where the platform supports it) a
    background-enabled app paging over encrypted DRAM while locked.

    Run unmodified it must produce {e zero} violations on every
    platform; each [fault] deliberately breaks one Sentry protection
    and must trip the matching checker — the analysis-layer
    counterpart of the attack-based tests in [Sentry_attacks]. *)

(** Deliberate protection breakages, one per paper section. *)
type fault =
  | No_fault
  | Stock_flush_while_locked
      (** run the stock full L2 flush after locking: cleans locked
          ways to DRAM and drops lockdown (§4.2) *)
  | Skip_register_clearing
      (** [onsoc_enable_irq] without the register scrub (§6.2) *)
  | Skip_freed_page_barrier
      (** zeroing thread disabled: freed sensitive pages linger (§7) *)
  | Widen_dma_window
      (** TrustZone DMA deny list cleared: iRAM exposed (§4.4) *)

val fault_name : fault -> string

(** Every deliberate fault (without [No_fault]). *)
val faults : fault list

(** The checker each fault must trip. *)
val expected_checker : fault -> string option

(** The platform each fault's protection exists on (stock flush needs
    cache locking; the DMA window matters where keys live in iRAM). *)
val fault_platform : fault -> Sentry_core.Config.platform

type result = {
  platform : Sentry_core.Config.platform;
  fault : fault;
  engine : Engine.t;  (** detached, violations still readable *)
  violations : Checker.violation list;
  lock_stats : Sentry_core.Encrypt_on_lock.stats;
}

(** [run ?fault platform] — execute the scenario and return every
    violation the engine recorded. *)
val run : ?fault:fault -> Sentry_core.Config.platform -> result

(** Did the run trip the checker its fault targets? *)
val tripped_expected : result -> bool
