(** Harvest component statistics (bus, L2, CPU, scheduler, zerod, page
    crypt, background pager, lock state, the trace recorder) into a
    metrics registry under stable ["subsystem/name"] keys; [Complete]
    spans in the trace ring become duration histograms. *)

val collect : ?recorder:Sentry_obs.Trace.Recorder.t -> Sentry.t -> Sentry_obs.Metrics.t
(** [recorder] defaults to the ambient recorder (none installed = no
    trace rows). *)

(** [Metrics.flat] of [collect]: the machine-readable report body. *)
val flat : ?recorder:Sentry_obs.Trace.Recorder.t -> Sentry.t -> (string * float) list
