(** The external memory bus between the SoC and DRAM.

    Everything that leaves the SoC package crosses this bus: L2 miss
    fills, write-backs, uncached CPU accesses and DMA transfers.  A bus
    monitoring attack (§3.1) attaches a probe here and sees every
    transaction — address, direction and data — which is exactly what a
    FuturePlus-style DDR analyzer captures.

    Accesses served from iRAM or from the L2 cache never appear here;
    that asymmetry is the core of Sentry's security argument. *)

type op = Read | Write

type transaction = {
  op : op;
  addr : int;
  data : bytes; (* snapshot of the bytes that crossed the bus *)
  taint : Taint.level; (* provenance join over [data] (Public when tracking is off) *)
  time_ns : float;
  initiator : [ `Cpu | `L2 | `Dma ];
}

type t = {
  clock : Clock.t;
  meter : Energy.meter; (* pre-resolved "bus" energy cell *)
  mutable monitors : (transaction -> unit) list;
  mutable transactions : int; (* total count, always maintained *)
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let create ~clock ~energy =
  {
    clock;
    meter = Energy.meter energy ~category:"bus";
    monitors = [];
    transactions = 0;
    bytes_read = 0;
    bytes_written = 0;
  }

(** [attach_monitor t f] registers a probe called on every transaction.
    Returns a detach function. *)
let attach_monitor t f =
  t.monitors <- f :: t.monitors;
  fun () -> t.monitors <- List.filter (fun g -> g != f) t.monitors

let monitored t = t.monitors <> []

(** [record t ~initiator ?taint op addr data] logs one transaction and
    charges bus energy.  Timing is charged by the initiating component
    (the L2 controller, the CPU or the DMA engine), not here, to avoid
    double counting.

    The [data] field of the delivered transaction is a {e defensive
    copy} taken at record time: callers are free to reuse or mutate
    their buffer afterwards without retroactively altering any
    monitor's view of what crossed the bus. *)
let initiator_name = function `Cpu -> "cpu" | `L2 -> "l2" | `Dma -> "dma"

(** [record_view t ~initiator ?taint op addr buf ~off ~len] — like
    [record], but the transaction's bytes are described as a view into
    [buf] rather than a standalone buffer, so the unmonitored,
    untraced fast path allocates nothing.  When a monitor {e is}
    attached, the delivered [data] is still a defensive snapshot taken
    here, preserving the aliasing contract of [record]. *)
let record_view t ~initiator ~taint op addr buf ~off ~len =
  t.transactions <- t.transactions + 1;
  (match op with
  | Read -> t.bytes_read <- t.bytes_read + len
  | Write -> t.bytes_written <- t.bytes_written + len);
  Energy.meter_charge_bytes t.meter ~per_byte_j:Calib.dram_byte_j len;
  if Sentry_obs.Trace.on () then
    Sentry_obs.Trace.emit ~ts:(Clock.now t.clock) ~cat:Sentry_obs.Event.Bus ~subsystem:"soc.bus"
      (match op with Read -> "read" | Write -> "write")
      ~args:
        [
          ("addr", Sentry_obs.Event.Int addr);
          ("bytes", Sentry_obs.Event.Int len);
          ("initiator", Sentry_obs.Event.Str (initiator_name initiator));
          ("taint", Sentry_obs.Event.Str (Taint.to_string taint));
        ];
  if t.monitors <> [] then begin
    let txn =
      { op; addr; data = Bytes.sub buf off len; taint; time_ns = Clock.now t.clock; initiator }
    in
    List.iter (fun f -> f txn) t.monitors
  end

let record t ~initiator ?(taint = Taint.Public) op addr data =
  record_view t ~initiator ~taint op addr data ~off:0 ~len:(Bytes.length data)

(** [account t op len] — the accounting-only core of [record_view],
    for callers that have already checked [monitored t = false] and
    that tracing is off (the batched page pipeline's line loop): same
    transaction counters and bus energy, nothing else.  Must never be
    used when a monitor is attached or tracing is on — those paths
    need the full [record_view]. *)
let account t op len =
  t.transactions <- t.transactions + 1;
  (match op with
  | Read -> t.bytes_read <- t.bytes_read + len
  | Write -> t.bytes_written <- t.bytes_written + len);
  Energy.meter_charge_bytes t.meter ~per_byte_j:Calib.dram_byte_j len

let stats t = (t.transactions, t.bytes_read, t.bytes_written)

let pp_op ppf = function Read -> Fmt.string ppf "R" | Write -> Fmt.string ppf "W"

let pp_transaction ppf txn =
  Fmt.pf ppf "%a 0x%08x %d bytes @%a" pp_op txn.op txn.addr (Bytes.length txn.data)
    Sentry_util.Units.pp_time txn.time_ns
