lib/core/background.mli: Locked_cache Machine Page_crypt Sentry_kernel Sentry_soc Vm
