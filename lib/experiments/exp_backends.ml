(** Backend race ("backends"): the four protection backends —
    [Batched], [Per_page], the MemShield-style [Offload] command queue
    and the MProtect-style [No_access] mapping revocation — over the
    Fig-2/Fig-4 app cycle, the fleet churn workload and the open-loop
    server, plus a measured lock-size crossover sweep.

    The interesting structure is where each backend wins:

    - [No_access] locks almost for free (no bytes move) but leaves
      cleartext in DRAM — table3 concedes cold boot/DMA by design.
    - [Offload] beats the CPU path on bulk lock walks once the batch
      is deep enough to amortise its fixed completion latency, and
      loses the lazy single-fault path everywhere — that break-even
      batch size is the measured crossover this experiment reports
      (and BENCH_sentry.json records). *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core
open Sentry_workloads

let backends = Backend.all_kinds
let label = Backend.kind_name

(* ----------------------- micro lock/fault ------------------------ *)

(* One lock walk over a [pages]-page process: the simulated elapsed
   time is exactly what the backend's lock strategy costs. *)
let lock_elapsed_ns backend ~pages =
  let system = System.boot `Nexus4 ~seed:5 in
  let sentry = Sentry.install system (Config.default `Nexus4) in
  Sentry.set_backend sentry backend;
  let proc = System.spawn system ~name:"sweep" ~bytes:(pages * Page.size) in
  Sentry.mark_sensitive sentry proc;
  (Sentry.lock sentry).Encrypt_on_lock.elapsed_ns

(* One lazy fault after unlock: the per-page unlock-to-first-touch
   cost, where the offload queue's fixed latency is pure loss. *)
let fault_elapsed_ns backend =
  let system = System.boot `Nexus4 ~seed:6 in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Nexus4) in
  Sentry.set_backend sentry backend;
  let proc = System.spawn system ~name:"fault" ~bytes:(8 * Page.size) in
  Sentry.mark_sensitive sentry proc;
  ignore (Sentry.lock sentry);
  (match Sentry.unlock sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> failwith "Exp_backends: unlock failed");
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  let t0 = Machine.now machine in
  Vm.touch system.System.vm proc ~vaddr:region.Address_space.vstart;
  Machine.now machine -. t0

let sweep_sizes = [ 1; 2; 4; 8; 16; 32; 64 ]

(** Smallest lock batch (pages) where the offload queue's simulated
    lock walk is at least as fast as the batched CPU path — [None] if
    it never catches up over the sweep. *)
let lock_crossover_pages () =
  List.find_opt
    (fun n ->
      lock_elapsed_ns Sentry.Offload ~pages:n <= lock_elapsed_ns Sentry.Batched ~pages:n)
    sweep_sizes

(* --------------------------- workloads --------------------------- *)

(** The Fig-2/Fig-4 app cycle (MP3 profile — the smallest) under each
    backend. *)
let app_race () = List.map (fun b -> (b, Exp_apps.run_app ~backend:b Apps.mp3)) backends

let fleet_cfg =
  { Fleet.default with Fleet.procs = 6; pages_per_proc = 8; cycles = 2 }

let fleet_race () =
  List.map (fun b -> (b, Fleet.run { fleet_cfg with Fleet.backend = b })) backends

let serve_cfg =
  let module Sv = Sentry_serve.Server in
  { Sv.default with Sv.tenants = 6; duration_s = 0.5 }

let serve_race () =
  let module Sv = Sentry_serve.Server in
  List.map (fun b -> (b, Sv.run { serve_cfg with Sv.backend = b })) backends

(* ----------------------------- tables ---------------------------- *)

let run () =
  let module Sv = Sentry_serve.Server in
  let app = app_race () in
  let fleet = fleet_race () in
  let serve = serve_race () in
  let app_rows =
    List.map
      (fun (b, (m : Exp_apps.metrics)) ->
        [
          label b;
          Printf.sprintf "%.3f s" m.Exp_apps.lock_s;
          Printf.sprintf "%.1f MB" m.Exp_apps.lock_mb;
          Printf.sprintf "%.3f s" m.Exp_apps.unlock_s;
          Printf.sprintf "%.2f J" (m.Exp_apps.lock_j +. m.Exp_apps.unlock_j);
        ])
      app
  in
  let fleet_rows =
    List.map
      (fun (b, (s : Fleet.stats)) ->
        let p99 =
          match List.assoc_opt "medium" s.Fleet.latency_by_class with
          | Some l -> Printf.sprintf "%.1f us" (l.Fleet.p99_ns /. 1e3)
          | None -> "-"
        in
        [
          label b;
          Printf.sprintf "%.3f ms" (s.Fleet.sim_elapsed_ns /. 1e6);
          Printf.sprintf "%.1f us" (s.Fleet.unlock_to_first_touch_ns /. 1e3);
          p99;
          Printf.sprintf "%.4f J" s.Fleet.energy_j;
        ])
      fleet
  in
  let serve_rows =
    List.map
      (fun (b, (s : Sv.stats)) ->
        [
          label b;
          string_of_int s.Sv.requests;
          string_of_int s.Sv.served;
          Printf.sprintf "%.3f" s.Sv.shed_rate;
          Printf.sprintf "%.3f ms" (s.Sv.sim_elapsed_ns /. 1e6);
        ])
      serve
  in
  let sweep_rows =
    List.map
      (fun n ->
        let b = lock_elapsed_ns Sentry.Batched ~pages:n in
        let o = lock_elapsed_ns Sentry.Offload ~pages:n in
        [
          string_of_int n;
          Printf.sprintf "%.1f us" (b /. 1e3);
          Printf.sprintf "%.1f us" (o /. 1e3);
          (if o <= b then "offload" else "batched");
        ])
      sweep_sizes
  in
  let crossover_note =
    match lock_crossover_pages () with
    | Some n -> Printf.sprintf "Offload overtakes the batched CPU path at %d-page lock walks." n
    | None -> "Offload never overtakes the batched CPU path over the sweep."
  in
  let fault_rows =
    List.map
      (fun b -> [ label b; Printf.sprintf "%.1f us" (fault_elapsed_ns b /. 1e3) ])
      backends
  in
  [
    Table.make ~title:"Backends: MP3 app cycle (Fig 2/4 style, simulated)"
      ~header:[ "Backend"; "Lock"; "Locked MB"; "Unlock+resume"; "AES J" ]
      ~notes:
        [
          "no-access moves no bytes at lock: near-zero lock time and AES energy,";
          "at the price of cleartext DRAM (see table3 / THREAT_MODEL.md).";
        ]
      app_rows;
    Table.make ~title:"Backends: lock-size sweep (batched vs offload, simulated)"
      ~header:[ "Pages"; "Batched"; "Offload"; "Winner" ]
      ~notes:[ crossover_note ] sweep_rows;
    Table.make ~title:"Backends: single lazy fault after unlock (simulated)"
      ~header:[ "Backend"; "Unlock->first-touch" ]
      ~notes:
        [
          "The offload queue pays its fixed completion latency per fault,";
          "so it loses the lazy path even where it wins bulk locks.";
        ]
      fault_rows;
    Table.make ~title:"Backends: fleet churn (6 procs x 8 pages x 2 cycles)"
      ~header:[ "Backend"; "Sim elapsed"; "Unlock->touch mean"; "Medium p99"; "AES J" ]
      fleet_rows;
    Table.make ~title:"Backends: open-loop serve (6 tenants, 0.5 s)"
      ~header:[ "Backend"; "Requests"; "Served"; "Shed rate"; "Sim elapsed" ]
      serve_rows;
  ]
