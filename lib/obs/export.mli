(** Trace/metrics exporters. *)

(** Chrome [trace_event] document (loadable in Perfetto and
    [chrome://tracing]): one lane per subsystem, instants as ["i"],
    spans as ["X"] with microsecond [ts]/[dur]. *)
val chrome_trace : ?process_name:string -> Event.t list -> Json_out.t

val chrome_trace_string : ?process_name:string -> Event.t list -> string

(** One event as a JSON object (the JSONL record shape). *)
val event_json : Event.t -> Json_out.t

(** One JSON object per line. *)
val jsonl : Event.t list -> string

(** Flat metrics, one [{"key":…,"value":…}] object per line. *)
val metrics_jsonl : (string * float) list -> string

(** Flat metrics as a single JSON object. *)
val metrics_json : (string * float) list -> Json_out.t

val write_file : path:string -> string -> unit
