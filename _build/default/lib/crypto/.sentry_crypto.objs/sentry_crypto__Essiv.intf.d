lib/crypto/essiv.mli: Bytes
