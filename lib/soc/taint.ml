(** Secret-provenance lattice and shadow-byte stores.

    Every byte of simulated memory (DRAM, iRAM, pinned memory, L2
    lines, CPU registers) can carry a taint label mirroring what the
    byte holds from Sentry's point of view:

    {v
    Public  <  Ciphertext  <  Secret_cleartext
    v}

    - [Secret_cleartext]: key material or sensitive-application
      plaintext.  The security invariant is that such bytes never
      reach DRAM or cross the external bus while the device is locked.
    - [Ciphertext]: output of [Page_crypt] / [Aes_on_soc] encryption.
      Free to live anywhere; decrypting re-raises it to
      [Secret_cleartext].
    - [Public]: everything else (zeroed pages, attacker-supplied DMA
      data, non-sensitive applications).

    Shadow stores are plain byte buffers (one label char per data
    byte) so propagation is the same [blit]/[fill] the data path
    already performs.  They are allocated lazily — taint tracking is
    opt-in (see [Machine.enable_taint]) and costs nothing when off. *)

type level = Public | Ciphertext | Secret_cleartext

let to_char = function Public -> '\000' | Ciphertext -> '\001' | Secret_cleartext -> '\002'

let of_char = function
  | '\000' -> Public
  | '\001' -> Ciphertext
  | _ -> Secret_cleartext

let rank = function Public -> 0 | Ciphertext -> 1 | Secret_cleartext -> 2

let join a b = if rank a >= rank b then a else b

let to_string = function
  | Public -> "public"
  | Ciphertext -> "ciphertext"
  | Secret_cleartext -> "secret-cleartext"

let pp ppf l = Fmt.string ppf (to_string l)

(* ------------------------- shadow buffers ------------------------ *)

(** A shadow for [n] data bytes, all [Public]. *)
let create_shadow n = Bytes.make n (to_char Public)

(** [fill shadow pos len level] labels a range uniformly. *)
let fill shadow pos len level = Bytes.fill shadow pos len (to_char level)

(** [max_range shadow pos len] — the join over a range. *)
let max_range shadow pos len =
  let acc = ref Public in
  for i = pos to pos + len - 1 do
    let l = of_char (Bytes.unsafe_get shadow i) in
    if rank l > rank !acc then acc := l
  done;
  !acc

let get shadow pos = of_char (Bytes.get shadow pos)
let set shadow pos level = Bytes.set shadow pos (to_char level)

(** [runs_at_least shadow ~level ~len] — is there a contiguous run of
    at least [len] bytes labelled [>= level]?  Used by checkers that
    mirror an attacker's contiguous-content search. *)
let runs_at_least shadow ~level ~len =
  let n = Bytes.length shadow in
  let need = rank level in
  let rec scan i run =
    if run >= len then true
    else if i >= n then false
    else if rank (of_char (Bytes.unsafe_get shadow i)) >= need then scan (i + 1) (run + 1)
    else scan (i + 1) 0
  in
  len > 0 && scan 0 0

(** [fuzzy_window shadow ~level ~len ~min_match] — is there a window
    of [len] bytes in which at least [min_match] (fraction) carry a
    label [>= level]?  The taint analogue of an error-correcting
    cold-boot search ([Memdump.contains_fuzzy]). *)
let fuzzy_window shadow ~level ~len ~min_match =
  let n = Bytes.length shadow in
  let need = rank level in
  let needed = int_of_float (ceil (min_match *. float_of_int len)) in
  if len = 0 || n < len then false
  else begin
    let hit i = if rank (of_char (Bytes.unsafe_get shadow i)) >= need then 1 else 0 in
    (* sliding window count *)
    let count = ref 0 in
    for i = 0 to len - 1 do
      count := !count + hit i
    done;
    let rec slide i =
      if !count >= needed then true
      else if i + len >= n then false
      else begin
        count := !count - hit i + hit (i + len);
        slide (i + 1)
      end
    in
    slide 0
  end

(** Labelled runs of [>= level] bytes as [(offset, length)] pairs,
    for violation reports. *)
let runs shadow ~level =
  let n = Bytes.length shadow in
  let need = rank level in
  let acc = ref [] in
  let start = ref (-1) in
  for i = 0 to n - 1 do
    let tainted = rank (of_char (Bytes.unsafe_get shadow i)) >= need in
    if tainted && !start < 0 then start := i
    else if (not tainted) && !start >= 0 then begin
      acc := (!start, i - !start) :: !acc;
      start := -1
    end
  done;
  if !start >= 0 then acc := (!start, n - !start) :: !acc;
  List.rev !acc
