lib/crypto/xts.ml: Aes Bytes Char Sentry_util
