lib/crypto/aes_tables.mli: Bytes
