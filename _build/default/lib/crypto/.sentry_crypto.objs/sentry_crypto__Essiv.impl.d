lib/crypto/essiv.ml: Aes Bytes Char Sha256
