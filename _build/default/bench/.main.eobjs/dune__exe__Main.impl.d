bench/main.ml: Arg Cmd Cmdliner List Micro Printf Sentry_experiments Sentry_util Term
