(** The device-lock path (§2, §7): freed-page barrier, page-table
    walk + in-place page encryption, shared-page policy, young-bit
    clearing, un-schedulable parking, masked L2 flush. *)

type stats = {
  pages_encrypted : int;
  bytes_encrypted : int;
  pages_skipped_shared : int;  (** pages left alone by the share policy *)
  freed_pages_zeroed : int;  (** frames the zeroing barrier scrubbed *)
  elapsed_ns : float;
  energy_j : float;  (** AES energy attributable to this lock pass *)
}

(** [run pc system ~sensitive ~background] executes the full lock
    sequence through the batched pipeline (the default): gather every
    page to encrypt, sort by frame, push the whole batch through
    [Page_crypt.encrypt_batch] with journal records coalesced per
    [Lock_journal.coalesce] pages.  Processes for which [background]
    returns [true] stay schedulable (the encrypted-DRAM pager will
    serve them); the rest are parked on the un-schedulable queue.
    With [?journal], walk progress is journaled for crash recovery;
    the walk is idempotent (keyed off PTE [encrypted] bits and guarded
    parking), so recovery can simply re-run it. *)
val run :
  ?journal:Lock_journal.t ->
  Page_crypt.t ->
  System.t ->
  sensitive:Sentry_kernel.Process.t list ->
  background:(Sentry_kernel.Process.t -> bool) ->
  stats

(** The page-at-a-time reference pipeline (same sequence, per-page
    journal records); the batched [run] is differentially tested
    against it. *)
val run_per_page :
  ?journal:Lock_journal.t ->
  Page_crypt.t ->
  System.t ->
  sensitive:Sentry_kernel.Process.t list ->
  background:(Sentry_kernel.Process.t -> bool) ->
  stats

(** MemShield-style offload driver ([Backend.Offload]): the batched
    gather/sort/commit machinery pipelining frame-sorted runs into the
    [Offload_engine] command queue, with one completion poll per run.
    Simulated DRAM/PTE/taint evolution is bit-identical to [run]. *)
val run_offload :
  ?journal:Lock_journal.t ->
  Page_crypt.t ->
  System.t ->
  sensitive:Sentry_kernel.Process.t list ->
  background:(Sentry_kernel.Process.t -> bool) ->
  stats

(** MProtect-style no-access walk ([Backend.No_access]): revoke each
    sensitive page's mapping instead of encrypting it.  DRAM keeps the
    cleartext — cold boot and DMA succeed against it by design; the
    Table-3 checkers flag exactly that.  [stats.bytes_encrypted] is 0;
    [stats.pages_encrypted] counts protected (revoked) pages. *)
val run_no_access :
  ?journal:Lock_journal.t ->
  Page_crypt.t ->
  System.t ->
  sensitive:Sentry_kernel.Process.t list ->
  background:(Sentry_kernel.Process.t -> bool) ->
  stats
