lib/kernel/address_space.mli: Frame_alloc Machine Page_table Sentry_soc
