lib/soc/pinned_mem.mli: Bytes Clock Energy Memmap
