(** The Table 3 security matrix: place a secret in each storage
    alternative, mount each in-scope attack, report Safe/Unsafe.

    Each cell is evaluated on a fresh machine so attacks cannot
    contaminate each other.  "DRAM (unprotected)" is included as the
    control row — every attack should succeed against it. *)

open Sentry_soc
open Sentry_core

type storage = Plain_dram | Iram_storage | Locked_l2_storage

let storage_name = function
  | Plain_dram -> "DRAM (control)"
  | Iram_storage -> "iRAM"
  | Locked_l2_storage -> "Locked L2 Cache"

type attack = Cold_boot_attack | Bus_monitoring_attack | Dma_memory_attack

let attack_name = function
  | Cold_boot_attack -> "Cold Boot"
  | Bus_monitoring_attack -> "Bus Monitoring"
  | Dma_memory_attack -> "DMA Attack"

let secret = Bytes.of_string "TOP-SECRET-KEY-MATERIAL-0xDEADBEEF"

(** Build a machine with [secret] placed per [storage]; returns the
    system, machine and the secret's address.  With [track_taint] the
    shadow stores are allocated and the planted secret is labelled
    [Secret_cleartext], so the analysis engine can re-derive this
    module's verdicts from provenance instead of content. *)
let place_secret ?(track_taint = false) ~seed storage =
  let system = System.boot `Tegra3 ~seed in
  let machine = System.machine system in
  if track_taint then Machine.enable_taint machine;
  let tag f = Machine.with_taint machine Taint.Secret_cleartext f in
  let addr =
    match storage with
    | Plain_dram ->
        let frame = Sentry_kernel.Frame_alloc.alloc system.System.frames in
        tag (fun () -> Machine.write_uncached machine frame secret);
        frame
    | Iram_storage ->
        let alloc = Iram_alloc.create machine in
        let addr =
          match Iram_alloc.alloc alloc ~bytes:(Bytes.length secret) with
          | Some a -> a
          | None -> failwith "iram alloc"
        in
        tag (fun () -> Machine.write machine addr secret);
        (* Sentry protects iRAM from DMA via TrustZone (§4.4). *)
        Trustzone.with_secure_world (Machine.trustzone machine) (fun () ->
            Trustzone.deny_dma (Machine.trustzone machine) (Machine.iram_region machine));
        addr
    | Locked_l2_storage ->
        let lc = Locked_cache.create machine ~arena_base:system.System.arena_base ~max_ways:2 in
        let page = Locked_cache.alloc_page lc in
        tag (fun () -> Machine.write machine page secret);
        page
  in
  (system, machine, addr)

(** Evaluate one cell: [true] = the storage is safe (attack failed). *)
let safe ~storage ~attack =
  let seed = Hashtbl.hash (storage_name storage, attack_name attack) in
  match attack with
  | Cold_boot_attack ->
      (* Strongest practical variant: reflash (short power loss keeps
         most of DRAM alive, firmware wipes on-SoC state). *)
      let _, machine, _ = place_secret ~seed storage in
      not (Cold_boot.succeeds machine Cold_boot.Device_reflash ~secret)
  | Dma_memory_attack ->
      let _, machine, _ = place_secret ~seed storage in
      not (Dma_attack.succeeds machine ~secret)
  | Bus_monitoring_attack ->
      (* The probe watches while the CPU actively uses the secret
         (reads it and writes it back — the victim computing with it).
         On-SoC storage generates no bus traffic; DRAM does as soon as
         lines miss or write back. *)
      let _, machine, addr = place_secret ~seed storage in
      let monitor = Bus_monitor.attach machine in
      (match storage with
      | Plain_dram ->
          (* victim reads the secret through the cache (miss -> bus) *)
          ignore (Machine.read machine addr (Bytes.length secret))
      | Iram_storage | Locked_l2_storage ->
          ignore (Machine.read machine addr (Bytes.length secret));
          Machine.write machine addr secret);
      (* give write-backs a chance: the OS eventually flushes
         (masked, so locked ways survive) *)
      Pl310.flush_masked (Machine.l2 machine);
      let seen = Bus_monitor.saw_secret monitor ~secret in
      Bus_monitor.detach monitor;
      not seen

let storages = [ Plain_dram; Iram_storage; Locked_l2_storage ]
let attacks = [ Cold_boot_attack; Bus_monitoring_attack; Dma_memory_attack ]

(** The full matrix: [(attack, storage, safe)] triples. *)
let matrix () =
  List.concat_map
    (fun attack -> List.map (fun storage -> (attack, storage, safe ~storage ~attack)) storages)
    attacks
