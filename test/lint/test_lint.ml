(** sentry_lint suite: each rule against a known-bad fixture with the
    {e exact} expected finding set, a known-clean file, cross-file R2
    resolution, allowlist suppression/staleness, and the JSON report.

    The fixtures live under [fixtures/] — a directory name
    [Driver.discover] skips, so the corpus never leaks into a lint of
    the real tree. *)

open Sentry_lint

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let triple_list = Alcotest.(check (list (triple string string int)))

let fx name = Filename.concat "fixtures" name

let scan ?(r4_exempt = false) name =
  Rules.scan_file ~file:(fx name) ~r4_exempt (Driver.parse_file (fx name))

let corpus =
  [ "bad_r1.ml"; "bad_r2.ml"; "bad_r3.ml"; "bad_r4.ml"; "bad_r5.ml"; "clean.ml" ]
let run_corpus ?allow () = Driver.run ?allow ~roots:(List.map fx corpus) ()

(** (rule, symbol, line) — the full identity a fixture pins down. *)
let shape (f : Finding.t) = (Finding.rule_id f.Finding.rule, f.Finding.symbol, f.Finding.line)
let shapes fs = List.map shape (List.sort Finding.compare fs)

(* --------------------------- per-rule fixtures --------------------- *)

let test_r1_every_ctor_shape () =
  let s = scan "bad_r1.ml" in
  triple_list "exact R1 set"
    [ ("R1", "hits", 6); ("R1", "table", 7); ("R1", "scratch", 8); ("R1", "cfg", 9) ]
    (shapes s.Rules.findings);
  checki "one global per finding" 4 (List.length s.Rules.globals);
  (* the same-module writes in [bump] are not even R2 candidates *)
  checki "no cross-module assigns" 0 (List.length s.Rules.assigns)

let test_r2_needs_the_corpus () =
  let s = scan "bad_r2.ml" in
  triple_list "nothing resolvable in isolation" [] (shapes s.Rules.findings);
  checki "two candidates collected" 2 (List.length s.Rules.assigns);
  (* no R1 corpus, no findings: an assign to a non-global is fine *)
  checki "unresolved against empty corpus" 0
    (List.length (Rules.resolve_assigns ~globals:[] s.Rules.assigns))

let test_r3_both_spellings () =
  let s = scan "bad_r3.ml" in
  triple_list "exact R3 set" [ ("R3", "()", 4); ("R3", "_", 5) ] (shapes s.Rules.findings);
  List.iter
    (fun (f : Finding.t) ->
      checkb "R3 is a warning" true (Finding.severity f.Finding.rule = Finding.Warning))
    s.Rules.findings

let test_r4_and_fastpath_exemption () =
  let s = scan "bad_r4.ml" in
  triple_list "exact R4 set"
    [ ("R4", "Bytes.unsafe_get", 4); ("R4", "Obj.magic", 5) ]
    (shapes s.Rules.findings);
  let exempt = scan ~r4_exempt:true "bad_r4.ml" in
  triple_list "audited fast path: same file, no findings" [] (shapes exempt.Rules.findings)

let test_r5_spawned_closures () =
  let s = scan "bad_r5.ml" in
  triple_list "exact R5 set"
    [
      ("R5", "Trace.emit", 9);
      ("R5", "Injector.arm", 10);
      ("R5", "Trace.enter_span", 14);
      ("R5", "Trace.exit_span", 17);
    ]
    (shapes s.Rules.findings);
  (* install/activate-style setup and Recorder handles not flagged;
     the nested spawn reported exactly once *)
  checki "no globals" 0 (List.length s.Rules.globals);
  checki "no assigns" 0 (List.length s.Rules.assigns)

let test_clean_file () =
  let s = scan "clean.ml" in
  triple_list "no findings" [] (shapes s.Rules.findings);
  checki "no globals (Atomic and literals are fine)" 0 (List.length s.Rules.globals);
  checki "no assigns" 0 (List.length s.Rules.assigns)

(* ----------------------------- the corpus -------------------------- *)

let expected_corpus =
  [
    ("R1", "hits", 6);
    ("R1", "table", 7);
    ("R1", "scratch", 8);
    ("R1", "cfg", 9);
    ("R2", "Bad_r1.hits", 5);
    ("R2", "Bad_r1.cfg", 6);
    ("R3", "()", 4);
    ("R3", "_", 5);
    ("R4", "Bytes.unsafe_get", 4);
    ("R4", "Obj.magic", 5);
    ("R5", "Trace.emit", 9);
    ("R5", "Injector.arm", 10);
    ("R5", "Trace.enter_span", 14);
    ("R5", "Trace.exit_span", 17);
  ]

let test_corpus_exact () =
  let r = run_corpus () in
  checki "all six files scanned" 6 r.Driver.files_scanned;
  triple_list "exact corpus findings" expected_corpus (shapes r.Driver.findings);
  checkb "not clean" false (Driver.clean r);
  checki "nothing allowlisted" 0 (List.length r.Driver.allowed)

let allow_of_string s =
  match Allowlist.parse_string s with
  | Ok a -> a
  | Error e -> Alcotest.failf "allowlist did not parse: %s" e

let test_allow_suppresses_exactly_one () =
  let allow = allow_of_string "R1 fixtures/bad_r1.ml hits # fixture exercise\n" in
  let r = run_corpus ~allow () in
  checki "one allowed" 1 (List.length r.Driver.allowed);
  checki "rest still violations" 13 (List.length r.Driver.unallowed);
  checkb "suppressed the right one" false
    (List.exists (fun f -> shape f = ("R1", "hits", 6)) r.Driver.unallowed);
  checki "no stale entries" 0 (List.length r.Driver.stale_allows)

let test_allow_everything_is_clean () =
  let text =
    expected_corpus
    |> List.map (fun (rule, symbol, _) ->
           let file =
             match rule with
             | "R1" -> "bad_r1.ml"
             | "R2" -> "bad_r2.ml"
             | "R3" -> "bad_r3.ml"
             | "R4" -> "bad_r4.ml"
             | _ -> "bad_r5.ml"
           in
           Printf.sprintf "%s fixtures/%s %s # blanket fixture grant" rule file symbol)
    |> String.concat "\n"
  in
  let r = run_corpus ~allow:(allow_of_string text) () in
  checkb "clean under a full grant" true (Driver.clean r);
  checki "all fourteen allowed" 14 (List.length r.Driver.allowed)

let test_stale_allow_reported () =
  let allow = allow_of_string "R1 fixtures/clean.ml ghost # long gone\n" in
  let r = run_corpus ~allow () in
  checki "stale entry surfaced" 1 (List.length r.Driver.stale_allows);
  checkb "and grants nothing" true (List.length r.Driver.unallowed = 14)

let test_justification_is_mandatory () =
  checkb "no justification, no parse" true
    (match Allowlist.parse_string "R1 fixtures/bad_r1.ml hits\n" with
    | Error _ -> true
    | Ok _ -> false);
  checkb "unknown rule rejected" true
    (match Allowlist.parse_string "R9 foo.ml x # what\n" with
    | Error _ -> true
    | Ok _ -> false)

let test_json_report_shape () =
  let s = Driver.to_json_string (run_corpus ()) in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "schema tag" true (contains "sentry-lint/v1");
  checkb "carries the rule ids" true (contains "\"R1\"" && contains "\"R4\"");
  checkb "violation total" true (contains "14")

let () =
  Alcotest.run "sentry_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 every ctor shape" `Quick test_r1_every_ctor_shape;
          Alcotest.test_case "R2 needs the corpus" `Quick test_r2_needs_the_corpus;
          Alcotest.test_case "R3 both spellings" `Quick test_r3_both_spellings;
          Alcotest.test_case "R4 and fast-path exemption" `Quick test_r4_and_fastpath_exemption;
          Alcotest.test_case "R5 spawned closures" `Quick test_r5_spawned_closures;
          Alcotest.test_case "clean file" `Quick test_clean_file;
        ] );
      ( "driver",
        [
          Alcotest.test_case "corpus exact" `Quick test_corpus_exact;
          Alcotest.test_case "allow suppresses one" `Quick test_allow_suppresses_exactly_one;
          Alcotest.test_case "full grant is clean" `Quick test_allow_everything_is_clean;
          Alcotest.test_case "stale allow reported" `Quick test_stale_allow_reported;
          Alcotest.test_case "justification mandatory" `Quick test_justification_is_mandatory;
          Alcotest.test_case "json report shape" `Quick test_json_report_shape;
        ] );
    ]
