(** Open-loop arrival generation on the simulated clock: a seeded
    Poisson stream with a four-phase diurnal profile (night at half
    rate, two shoulders at the base rate, a peak quarter at the burst
    multiplier).  A schedule is a pure function of its {!config}, so
    every shard of a sharded serve run can regenerate it bit-for-bit
    and filter out its own tenants. *)

type request = {
  id : int;  (** 0-based arrival order over the whole schedule *)
  at_ns : float;  (** simulated arrival time *)
  tenant : int;  (** global tenant index in the pool *)
  cls : string;  (** {!Sentry_workloads.Fleet.tenant_class} of [tenant] *)
}

type config = {
  rate_hz : float;  (** base Poisson arrival rate (simulated Hz) *)
  burst : float;  (** peak-quarter multiplier over the base rate *)
  duration_s : float;  (** simulated span the schedule covers *)
  tenants : int;  (** pool size arrivals are drawn from *)
  seed : int;
}

(** Instantaneous rate multiplier at fraction [frac] ∈ [0, 1) of the
    schedule: 0.5 / 1.0 / burst / 1.0 by quarter. *)
val phase_multiplier : burst:float -> float -> float

(** The full schedule, in arrival order.  Deterministic in [config].
    @raise Invalid_argument on a non-positive rate, duration or tenant
    count, or a negative burst. *)
val generate : config -> request list
