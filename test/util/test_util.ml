open Sentry_util

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------ Prng ----------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    checki "same stream" (Prng.bits a) (Prng.bits b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits a = Prng.bits b then incr same
  done;
  checkb "streams differ" true (!same < 4)

let test_prng_int_bounds () =
  let p = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int p 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_prng_float_bounds () =
  let p = Prng.create ~seed:4 in
  for _ = 1 to 1000 do
    let v = Prng.float p 2.5 in
    checkb "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_flip_bias () =
  let p = Prng.create ~seed:5 in
  let heads = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Prng.flip p ~p:0.25 then incr heads
  done;
  let ratio = float_of_int !heads /. float_of_int n in
  checkb "quarter-ish" true (ratio > 0.22 && ratio < 0.28)

let test_prng_bytes_len () =
  let p = Prng.create ~seed:6 in
  checki "length" 33 (Bytes.length (Prng.bytes p 33))

let test_prng_shuffle_permutation () =
  let p = Prng.create ~seed:9 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_zipf_gen_skew () =
  let gen = Prng.zipf_gen ~n:100 ~s:1.2 in
  let p = Prng.create ~seed:10 in
  let top = ref 0 and n = 5000 in
  for _ = 1 to n do
    if gen p < 10 then incr top
  done;
  (* with s=1.2 the top decile should draw well over a third of mass *)
  checkb "skewed" true (float_of_int !top /. float_of_int n > 0.35)

let test_prng_exponential_positive () =
  let p = Prng.create ~seed:11 in
  for _ = 1 to 100 do
    checkb "positive" true (Prng.exponential p ~mean:3.0 >= 0.0)
  done

(* ------------------------------ Hex ------------------------------ *)

let test_hex_roundtrip () =
  let p = Prng.create ~seed:12 in
  for _ = 1 to 50 do
    let b = Prng.bytes p (Prng.int p 64) in
    check Alcotest.bytes "roundtrip" b (Hex.decode (Hex.encode b))
  done

let test_hex_known () =
  check Alcotest.string "encode" "00ff10" (Hex.encode (Hex.decode "00ff10"));
  check Alcotest.string "abc" "616263" (Hex.encode_string "abc")

let test_hex_uppercase_decode () =
  check Alcotest.bytes "upper" (Hex.decode "deadbeef") (Hex.decode "DEADBEEF")

let test_hex_bad_input () =
  Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.decode: not a hex digit")
    (fun () -> ignore (Hex.decode "zz"))

let test_hex_dump_shape () =
  let d = Hex.dump ~base:0x1000 (Bytes.of_string "hello world, this is a dump") in
  checkb "base" true (String.length d > 0 && String.sub d 0 8 = "00001000");
  checkb "ascii gutter" true (String.contains d '|')

(* --------------------------- Bytes_util -------------------------- *)

let test_fill_count_pattern () =
  let b = Bytes.create 64 in
  Bytes_util.fill_pattern b (Bytes.of_string "ABCD");
  checki "count" 16 (Bytes_util.count_pattern b (Bytes.of_string "ABCD"));
  Bytes.set b 5 'x';
  checki "one slot broken" 15 (Bytes_util.count_pattern b (Bytes.of_string "ABCD"))

let test_count_pattern_partial_tail () =
  let b = Bytes.create 10 in
  Bytes_util.fill_pattern b (Bytes.of_string "abc");
  (* 3 full slots fit in 10 bytes *)
  checki "tail ignored" 3 (Bytes_util.count_pattern b (Bytes.of_string "abc"))

let test_find_contains () =
  let b = Bytes.of_string "xxxxneedleyyyy" in
  check Alcotest.(option int) "found" (Some 4) (Bytes_util.find b (Bytes.of_string "needle"));
  checkb "contains" true (Bytes_util.contains b (Bytes.of_string "needle"));
  checkb "missing" false (Bytes_util.contains b (Bytes.of_string "nadel"));
  check Alcotest.(option int) "empty needle" (Some 0) (Bytes_util.find b Bytes.empty)

let test_find_at_end () =
  let b = Bytes.of_string "aaaaaab" in
  check Alcotest.(option int) "end" (Some 5) (Bytes_util.find b (Bytes.of_string "ab"))

let test_xor_into () =
  let a = Bytes.of_string "\x0f\xf0" and d = Bytes.of_string "\xff\xff" in
  Bytes_util.xor_into ~src:a ~dst:d;
  check Alcotest.bytes "xor" (Bytes.of_string "\xf0\x0f") d;
  Bytes_util.xor_into ~src:a ~dst:d;
  check Alcotest.bytes "involution" (Bytes.of_string "\xff\xff") d

let test_equal_ct () =
  checkb "equal" true (Bytes_util.equal_ct (Bytes.of_string "abc") (Bytes.of_string "abc"));
  checkb "diff" false (Bytes_util.equal_ct (Bytes.of_string "abc") (Bytes.of_string "abd"));
  checkb "len" false (Bytes_util.equal_ct (Bytes.of_string "abc") (Bytes.of_string "ab"))

let test_zero_is_zero () =
  let b = Bytes.of_string "junk" in
  checkb "not zero" false (Bytes_util.is_zero b);
  Bytes_util.zero b;
  checkb "zero" true (Bytes_util.is_zero b);
  checkb "empty is zero" true (Bytes_util.is_zero Bytes.empty)

(* ------------------------------ Stats ---------------------------- *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  checki "n" 4 s.Stats.n

let test_stats_stddev () =
  let s = Stats.summarize [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "stddev" 2.0 s.Stats.stddev

let test_stats_constant_series () =
  let s = Stats.summarize (Array.make 10 3.5) in
  Alcotest.(check (float 1e-12)) "zero spread" 0.0 s.Stats.stddev

let test_stats_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile 100.0 xs)

let test_stats_repeat () =
  let s = Stats.repeat ~trials:5 (fun i -> float_of_int i) in
  Alcotest.(check (float 1e-9)) "mean" 2.0 s.Stats.mean

let test_stats_overhead () =
  Alcotest.(check (float 1e-9)) "2x" 2.0 (Stats.overhead ~base:5.0 ~measured:10.0);
  checkb "inf" true (Stats.overhead ~base:0.0 ~measured:1.0 = infinity)

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty series") (fun () ->
      ignore (Stats.summarize [||]))

let test_stats_single_element () =
  let s = Stats.summarize [| 42.0 |] in
  checki "n" 1 s.Stats.n;
  Alcotest.(check (float 1e-12)) "mean" 42.0 s.Stats.mean;
  Alcotest.(check (float 1e-12)) "stddev" 0.0 s.Stats.stddev;
  Alcotest.(check (float 1e-12)) "min" 42.0 s.Stats.min;
  Alcotest.(check (float 1e-12)) "max" 42.0 s.Stats.max;
  Alcotest.(check (float 1e-12)) "p50" 42.0 (Stats.percentile 50.0 [| 42.0 |])

let test_stats_all_equal () =
  let xs = Array.make 7 5.5 in
  Alcotest.(check (float 1e-12)) "p0" 5.5 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-12)) "p50" 5.5 (Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-12)) "p100" 5.5 (Stats.percentile 100.0 xs)

let test_stats_percentile_extremes () =
  let xs = [| 9.0; 1.0; 5.0; 3.0; 7.0 |] in
  Alcotest.(check (float 1e-12)) "p0 is min" 1.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-12)) "p100 is max" 9.0 (Stats.percentile 100.0 xs)

(* Float.compare gives a total order (NaN before every real), so a
   stray NaN cannot poison the sort or flip the extrema fold based on
   argument order: high percentiles and max stay real numbers. *)
let test_stats_nan_safety () =
  let xs = [| 3.0; Float.nan; 1.0; 2.0 |] in
  checkb "p0 is the NaN (ordered first)" true (Float.is_nan (Stats.percentile 0.0 xs));
  Alcotest.(check (float 1e-12)) "p50 real" 1.0 (Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-12)) "p100 real" 3.0 (Stats.percentile 100.0 xs);
  let s = Stats.summarize xs in
  checkb "min is the NaN (ordered first)" true (Float.is_nan s.Stats.min);
  Alcotest.(check (float 1e-12)) "max real" 3.0 s.Stats.max

(* ------------------------------ Units ---------------------------- *)

let test_units_pp () =
  check Alcotest.string "bytes" "1.00 MB" (Units.to_string Units.pp_bytes Units.mib);
  check Alcotest.string "kb" "4.0 KB" (Units.to_string Units.pp_bytes 4096);
  check Alcotest.string "time" "1.50 s" (Units.to_string Units.pp_time (1.5 *. Units.s));
  check Alcotest.string "minutes" "2.00 min" (Units.to_string Units.pp_time (120.0 *. Units.s));
  check Alcotest.string "energy" "2.00 mJ" (Units.to_string Units.pp_energy 0.002)

let test_units_throughput () =
  Alcotest.(check (float 1e-6)) "100 MB/s" 100.0
    (Units.throughput_mb_s ~bytes:(100 * Units.mib) ~time_ns:Units.s);
  Alcotest.(check (float 1e-6)) "zero time" 0.0 (Units.throughput_mb_s ~bytes:5 ~time_ns:0.0)

(* ------------------------------ Table ---------------------------- *)

let test_table_render () =
  let t =
    Table.make ~title:"T" ~header:[ "a"; "bb" ] ~notes:[ "n" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let s = Table.to_string t in
  checkb "has title" true (String.length s > 0);
  List.iter
    (fun needle ->
      checkb needle true
        (Bytes_util.contains (Bytes.of_string s) (Bytes.of_string needle)))
    [ "T"; "a"; "bb"; "333"; "note: n" ]

let test_table_csv () =
  let t =
    Table.make ~title:"T" ~header:[ "a"; "b" ]
      [ [ "plain"; "with,comma" ]; [ "with\"quote"; "x" ] ]
  in
  let csv = Table.to_csv t in
  checkb "comment title" true (String.length csv > 0 && csv.[0] = '#');
  checkb "comma quoted" true
    (Bytes_util.contains (Bytes.of_string csv) (Bytes.of_string "\"with,comma\""));
  checkb "quote doubled" true
    (Bytes_util.contains (Bytes.of_string csv) (Bytes.of_string "\"with\"\"quote\""))

let test_table_ragged_rows () =
  (* rows narrower than the header must not crash *)
  let t = Table.make ~title:"x" ~header:[ "a"; "b"; "c" ] [ [ "1" ]; [ "1"; "2"; "3" ] ] in
  checkb "renders" true (String.length (Table.to_string t) > 0)

(* --------------------------- properties -------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"hex roundtrip" ~count:200 (string_of_size Gen.(0 -- 100)) (fun s ->
        Bytes.to_string (Hex.decode (Hex.encode_string s)) = s);
    Test.make ~name:"xor_into is an involution" ~count:200
      (pair (string_of_size Gen.(return 32)) (string_of_size Gen.(return 32)))
      (fun (a, b) ->
        let src = Bytes.of_string a and dst = Bytes.of_string b in
        Bytes_util.xor_into ~src ~dst;
        Bytes_util.xor_into ~src ~dst;
        Bytes.to_string dst = b);
    Test.make ~name:"equal_ct agrees with Bytes.equal" ~count:500
      (pair (string_of_size Gen.(0 -- 20)) (string_of_size Gen.(0 -- 20)))
      (fun (a, b) ->
        Bytes_util.equal_ct (Bytes.of_string a) (Bytes.of_string b) = (a = b));
    Test.make ~name:"count_pattern after fill_pattern = slots" ~count:100
      (pair (int_range 1 16) (int_range 1 256))
      (fun (pn, n) ->
        QCheck.assume (n >= pn);
        let pat = Bytes.init pn (fun i -> Char.chr ((i * 37) mod 256)) in
        let b = Bytes.create n in
        Bytes_util.fill_pattern b pat;
        Bytes_util.count_pattern b pat = n / pn);
    Test.make ~name:"percentile is monotone" ~count:100
      (list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
      (fun xs ->
        let a = Array.of_list xs in
        Stats.percentile 25.0 a <= Stats.percentile 75.0 a);
  ]

(* ------------------------------ dpool ------------------------------ *)

let test_dpool_run_order () =
  (* results come back in submission order however many workers race *)
  List.iter
    (fun domains ->
      let tasks = List.init 17 (fun i () -> i * i) in
      Alcotest.(check (list int))
        (Printf.sprintf "order preserved at %d domains" domains)
        (List.init 17 (fun i -> i * i))
        (Dpool.run ~domains tasks))
    [ 1; 2; 4 ]

let test_dpool_exception_propagates () =
  Alcotest.check_raises "task exception re-raised at await" (Failure "task 2 boom") (fun () ->
      ignore (Dpool.run ~domains:2 [ (fun () -> 1); (fun () -> failwith "task 2 boom") ]))

let test_dpool_more_workers_than_tasks () =
  Alcotest.(check (list int)) "8 domains, 2 tasks" [ 10; 20 ]
    (Dpool.run ~domains:8 [ (fun () -> 10); (fun () -> 20) ])

let test_dpool_submit_await_reuse () =
  let pool = Dpool.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Dpool.shutdown pool)
    (fun () ->
      let p1 = Dpool.submit pool (fun () -> "a") in
      let p2 = Dpool.submit pool (fun () -> "b") in
      Alcotest.(check string) "first" "a" (Dpool.await p1);
      Alcotest.(check string) "second" "b" (Dpool.await p2);
      (* await is idempotent: the settled state is kept *)
      Alcotest.(check string) "first again" "a" (Dpool.await p1))

(* A raising job must cost only its own promise: workers survive it,
   every later submission still runs, and results stay in submission
   order — on the same still-open pool. *)
let test_dpool_raise_ok_mixture () =
  let pool = Dpool.create ~domains:2 in
  Fun.protect
    ~finally:(fun () -> Dpool.shutdown pool)
    (fun () ->
      let promises =
        List.init 20 (fun i ->
            ( i,
              Dpool.submit pool (fun () ->
                  if i mod 3 = 0 then failwith (Printf.sprintf "boom %d" i) else i * 10) ))
      in
      List.iter
        (fun (i, p) ->
          if i mod 3 = 0 then
            Alcotest.check_raises
              (Printf.sprintf "task %d re-raises at await" i)
              (Failure (Printf.sprintf "boom %d" i))
              (fun () -> ignore (Dpool.await p))
          else Alcotest.(check int) (Printf.sprintf "task %d result" i) (i * 10) (Dpool.await p))
        promises;
      (* the pool is still healthy after a burst of failures *)
      Alcotest.(check string) "post-failure submission runs" "alive"
        (Dpool.await (Dpool.submit pool (fun () -> "alive"))))

let test_dpool_run_results_mixture () =
  let outcomes =
    Dpool.run_results ~domains:4
      (List.init 9 (fun i () -> if i mod 2 = 1 then failwith "odd" else i))
  in
  Alcotest.(check int) "every task has an outcome" 9 (List.length outcomes);
  List.iteri
    (fun i o ->
      match o with
      | Ok v ->
          Alcotest.(check bool) "even tasks succeed" true (i mod 2 = 0);
          Alcotest.(check int) "in submission order" i v
      | Error (Failure m) ->
          Alcotest.(check bool) "odd tasks fail" true (i mod 2 = 1);
          Alcotest.(check string) "their own exception" "odd" m
      | Error e -> raise e)
    outcomes

let test_dpool_shutdown_rejects_submit () =
  let pool = Dpool.create ~domains:1 in
  Dpool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Dpool.submit: pool is shut down") (fun () ->
      ignore (Dpool.submit pool (fun () -> ())))

let test_dpool_invalid_domains () =
  Alcotest.check_raises "zero domains" (Invalid_argument "Dpool.create: domains must be positive")
    (fun () -> ignore (Dpool.create ~domains:0))

let () =
  Alcotest.run "sentry_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "flip bias" `Quick test_prng_flip_bias;
          Alcotest.test_case "bytes length" `Quick test_prng_bytes_len;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "zipf skew" `Quick test_prng_zipf_gen_skew;
          Alcotest.test_case "exponential positive" `Quick test_prng_exponential_positive;
        ] );
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "known" `Quick test_hex_known;
          Alcotest.test_case "uppercase" `Quick test_hex_uppercase_decode;
          Alcotest.test_case "bad input" `Quick test_hex_bad_input;
          Alcotest.test_case "dump shape" `Quick test_hex_dump_shape;
        ] );
      ( "bytes_util",
        [
          Alcotest.test_case "fill/count" `Quick test_fill_count_pattern;
          Alcotest.test_case "partial tail" `Quick test_count_pattern_partial_tail;
          Alcotest.test_case "find/contains" `Quick test_find_contains;
          Alcotest.test_case "find at end" `Quick test_find_at_end;
          Alcotest.test_case "xor_into" `Quick test_xor_into;
          Alcotest.test_case "equal_ct" `Quick test_equal_ct;
          Alcotest.test_case "zero/is_zero" `Quick test_zero_is_zero;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "constant" `Quick test_stats_constant_series;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "repeat" `Quick test_stats_repeat;
          Alcotest.test_case "overhead" `Quick test_stats_overhead;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "single element" `Quick test_stats_single_element;
          Alcotest.test_case "all equal" `Quick test_stats_all_equal;
          Alcotest.test_case "percentile extremes" `Quick test_stats_percentile_extremes;
          Alcotest.test_case "NaN safety" `Quick test_stats_nan_safety;
        ] );
      ( "units",
        [
          Alcotest.test_case "pretty printing" `Quick test_units_pp;
          Alcotest.test_case "throughput" `Quick test_units_throughput;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
      ( "dpool",
        [
          Alcotest.test_case "run preserves order" `Quick test_dpool_run_order;
          Alcotest.test_case "exception propagates" `Quick test_dpool_exception_propagates;
          Alcotest.test_case "more workers than tasks" `Quick test_dpool_more_workers_than_tasks;
          Alcotest.test_case "submit/await reuse" `Quick test_dpool_submit_await_reuse;
          Alcotest.test_case "raise/ok mixture" `Quick test_dpool_raise_ok_mixture;
          Alcotest.test_case "run_results mixture" `Quick test_dpool_run_results_mixture;
          Alcotest.test_case "shutdown rejects submit" `Quick test_dpool_shutdown_rejects_submit;
          Alcotest.test_case "invalid domains" `Quick test_dpool_invalid_domains;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
