lib/soc/pinned_mem.ml: Bytes Bytes_util Calib Clock Energy Memmap Printf Sentry_util
