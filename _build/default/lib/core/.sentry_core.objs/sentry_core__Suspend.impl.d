lib/core/suspend.ml: Clock Encrypt_on_lock List Machine Sentry Sentry_soc Sentry_util System Units
