(** Table 4: the breakdown of AES state in bytes, computed from this
    implementation's actual context layout. *)

open Sentry_util
open Sentry_crypto

let sizes = [ Aes_key.Aes_128; Aes_key.Aes_192; Aes_key.Aes_256 ]

let run () =
  let layouts = List.map Aes_state.layout sizes in
  let l128 = List.nth layouts 0 in
  let rows =
    List.map
      (fun (f : Aes_state.field) ->
        f.Aes_state.name
        :: List.map
             (fun layout ->
               string_of_int (Aes_state.find layout f.Aes_state.name).Aes_state.size)
             layouts
        @ [ Units.to_string Aes_state.pp_sensitivity f.Aes_state.sensitivity ])
      l128
  in
  let totals =
    "TOTAL" :: List.map (fun s -> string_of_int (Aes_state.total_size s)) sizes @ [ "" ]
  in
  let class_rows =
    List.map
      (fun (label, pick) ->
        (label ^ " state")
        :: List.map
             (fun s ->
               let secret, public, ap = Aes_state.by_sensitivity s in
               string_of_int (pick (secret, public, ap)))
             sizes
        @ [ "" ])
      [
        ("Secret", fun (s, _, _) -> s);
        ("Public", fun (_, p, _) -> p);
        ("Access-protected", fun (_, _, a) -> a);
      ]
  in
  [
    Table.make ~title:"Table 4: AES state breakdown (bytes)"
      ~header:[ "State"; "AES-128"; "AES-192"; "AES-256"; "Sensitivity" ]
      ~notes:
        [
          "Round tables alone are an order of magnitude more state than everything else --";
          "why register-only schemes (AESSE/TRESOR) cannot guard the access-protected state.";
          "Paper counts 320/368/416 round-key bytes (it stores a separate inverse schedule;";
          "this implementation applies the forward schedule backwards, so stores 176/208/240).";
        ]
      (rows @ [ totals ] @ class_rows);
  ]
