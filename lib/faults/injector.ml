(** The global fault-injection engine.

    Modeled on [Sentry_obs.Trace]: a process-wide singleton so hook
    points deep in the memory system need no plumbing.  Disarmed (the
    default) a hook costs one ref read and allocates nothing, keeping
    the lock-path allocation ceilings intact.

    Armed with a [Plan], every [fire]/[poll] arrival at a hook point
    bumps that point's occurrence counter and evaluates the plan's
    triggers:

    - {e interrupting} kinds ([Power_loss], [Reset], [Dma_error])
      raise [Injected] from [fire]; [poll] returns [Dma_error] as a
      value (for result-returning callers like the DMA engine) and
      raises for the globally-fatal kinds;
    - [Bit_flip n] invokes the installed corruption handler (the
      machine-owning harness flips DRAM bits) and execution continues
      — the fault is silent, as in real hardware.

    Every firing is recorded (inspectable via [fired]) and emitted to
    the trace ring under the [Fault] category. *)

open Sentry_util

type record = { point : string; kind : Fault.kind; occurrence : int }

exception Injected of record

type state = {
  plan : Plan.t;
  prng : Prng.t;
  counts : (string, int ref) Hashtbl.t;
  mutable fired : record list; (* newest first *)
  mutable bit_flip_handler : (point:string -> bits:int -> unit) option;
}

let active : state option ref = ref None

let arm plan =
  active :=
    Some
      {
        plan;
        prng = Prng.create ~seed:plan.Plan.seed;
        counts = Hashtbl.create 8;
        fired = [];
        bit_flip_handler = None;
      }

let disarm () = active := None
let armed () = !active <> None
let plan () = Option.map (fun st -> st.plan) !active

(** [set_bit_flip_handler f] — installed by whoever owns the machine;
    receives every [Bit_flip] firing.  Cleared by [arm]/[disarm]. *)
let set_bit_flip_handler f =
  match !active with
  | Some st -> st.bit_flip_handler <- Some f
  | None -> invalid_arg "Injector.set_bit_flip_handler: not armed"

(** Firings so far, oldest first. *)
let fired () = match !active with Some st -> List.rev st.fired | None -> []

(** Arrivals seen at [point] (armed sessions only). *)
let occurrences point =
  match !active with
  | Some st -> ( match Hashtbl.find_opt st.counts point with Some c -> !c | None -> 0)
  | None -> 0

let trace r =
  if Sentry_obs.Trace.on () then
    Sentry_obs.Trace.emit ~cat:Sentry_obs.Event.Fault ~subsystem:"faults.injector"
      "fault-injected"
      ~args:
        [
          ("point", Sentry_obs.Event.Str r.point);
          ("kind", Sentry_obs.Event.Str (Fault.name r.kind));
          ("occurrence", Sentry_obs.Event.Int r.occurrence);
        ]

let bump st point =
  match Hashtbl.find_opt st.counts point with
  | Some c ->
      incr c;
      !c
  | None ->
      Hashtbl.add st.counts point (ref 1);
      1

let matches st ~n (tr : Plan.trigger) =
  match tr.Plan.at with
  | Plan.Nth k -> n = k
  | Plan.Every k -> k > 0 && n mod k = 0
  | Plan.Prob p -> Prng.flip st.prng ~p

(* Evaluate one arrival: record and apply every matching trigger;
   return the first interrupting fault, if any. *)
let eval st point =
  let n = bump st point in
  List.fold_left
    (fun interrupting (tr : Plan.trigger) ->
      if String.equal tr.Plan.point point && matches st ~n tr then begin
        let r = { point; kind = tr.Plan.kind; occurrence = n } in
        st.fired <- r :: st.fired;
        trace r;
        match tr.Plan.kind with
        | Fault.Bit_flip bits ->
            (match st.bit_flip_handler with Some f -> f ~point ~bits | None -> ());
            interrupting
        | Fault.Power_loss | Fault.Reset | Fault.Dma_error -> (
            match interrupting with Some _ -> interrupting | None -> Some r)
      end
      else interrupting)
    None st.plan.Plan.triggers

(** [fire point] — a hook arrival that cannot report an error value:
    interrupting faults propagate as [Injected]. *)
let fire point =
  match !active with
  | None -> ()
  | Some st -> ( match eval st point with None -> () | Some r -> raise (Injected r))

(** [poll point] — a hook arrival whose caller returns [result]s (the
    DMA engine): a matching [Dma_error] comes back as a value; the
    globally-fatal kinds ([Power_loss], [Reset]) still raise. *)
let poll point =
  match !active with
  | None -> None
  | Some st -> (
      match eval st point with
      | None -> None
      | Some ({ kind = Fault.Dma_error; _ } as r) -> Some r
      | Some r -> raise (Injected r))

(** Canonical hook-point names.  Hooks and plans must agree on these
    strings; keeping them here prevents drift. *)
module Points = struct
  let page_encrypted = "page_crypt.encrypt_frame"
  (* after the ciphertext reached memory, before the PTE flags it *)

  let page_decrypted = "page_crypt.decrypt_frame"
  let frame_transform = "page_crypt.frame_transform" (* mid-call, before write-back *)
  let dm_crypt_sector = "dm_crypt.sector"
  let dma_read = "dma.read"
  let dma_write = "dma.write"
  let machine_write = "machine.write"

  let all =
    [
      page_encrypted;
      page_decrypted;
      frame_transform;
      dm_crypt_sector;
      dma_read;
      dma_write;
      machine_write;
    ]
end
