lib/core/config.ml: Sentry_util
