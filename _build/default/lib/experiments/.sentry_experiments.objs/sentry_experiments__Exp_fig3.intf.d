lib/experiments/exp_fig3.mli: Sentry_util
