lib/crypto/aes.ml: Aes_key Aes_tables Array Bytes Char
