(** Sentry configuration: platform, on-SoC storage choice, locked-way
    budget and PIN policy. *)

type platform = [ `Tegra3 | `Nexus4 | `Future ]

type onsoc_storage =
  | Use_iram  (** keys + AES context in on-SoC SRAM (both platforms) *)
  | Use_locked_l2  (** keys + AES context in way-locked L2 (Tegra 3 only) *)
  | Use_pinned
      (** keys + AES context in the §10 pin-on-SoC memory (the
          [`Future] platform only) *)

type t = {
  platform : platform;
  storage : onsoc_storage;
  max_locked_ways : int;  (** cache-way budget Sentry may lock *)
  background_budget_bytes : int;
      (** total locked-cache footprint for background paging (the
          "256 KB" / "512 KB" of Figs 6-8), including Sentry's own
          static on-SoC allocations *)
  pin : string;
  max_pin_attempts : int;  (** wrong PINs before deep-lock *)
  track_taint : bool;
      (** allocate shadow memory and tag secret flows so the analysis
          engine can verify invariants (off by default: zero cost) *)
  trace : bool;
      (** start the global observability recorder at install and point
          its time source at the machine clock (off by default: hot
          paths pay one ref test and record nothing) *)
  journal : bool;
      (** allocate a small iRAM journal and record lock/unlock walk
          progress through it, enabling [Sentry.recover] after a crash
          (off by default: the extra on-SoC writes would perturb the
          bit-identical observable contracts) *)
}

(** Tegra 3 defaults: locked-L2 storage, 4-way budget, 256 KB
    background pool. *)
val default_tegra3 : t

(** Nexus 4 defaults: iRAM storage only — the retail firmware blocks
    cache locking, so no background support (§7). *)
val default_nexus4 : t

(** §10 future platform: pinned storage + locked-cache paging. *)
val default_future : t

val default : platform -> t

(** Checks platform/storage consistency (e.g. rejects locked-L2
    storage on the Nexus 4). *)
val validate : t -> (t, string) result
