(** Fig 5: energy overhead of encrypt-on-lock and decrypt-on-unlock,
    plus the §8.2 daily-battery figure. *)

open Sentry_util

let run () =
  let metrics = Exp_apps.all () in
  let rows =
    List.map
      (fun (m : Exp_apps.metrics) ->
        [
          m.Exp_apps.profile.Sentry_workloads.App.app_name;
          Printf.sprintf "%.2f J" m.Exp_apps.lock_j;
          Printf.sprintf "%.2f J" m.Exp_apps.unlock_j;
          Printf.sprintf "%.2f J" (m.Exp_apps.lock_j +. m.Exp_apps.unlock_j);
        ])
      metrics
  in
  let daily =
    List.map
      (fun (m : Exp_apps.metrics) ->
        let per_day =
          float_of_int Sentry_soc.Calib.unlocks_per_day
          *. (m.Exp_apps.lock_j +. m.Exp_apps.unlock_j)
        in
        [
          m.Exp_apps.profile.Sentry_workloads.App.app_name;
          Printf.sprintf "%.0f J" per_day;
          Printf.sprintf "%.1f%%"
            (100.0 *. per_day /. Sentry_soc.Calib.nexus4_battery_j);
        ])
      metrics
  in
  [
    Table.make ~title:"Fig 5: energy of encrypt-on-lock / decrypt-on-unlock"
      ~header:[ "App"; "Encrypt-on-lock"; "Decrypt-on-unlock"; "Total/cycle" ]
      ~notes:[ "Paper: up to ~2.3 J for Maps; minimal for the others." ]
      rows;
    Table.make ~title:"Daily battery cost at 150 lock/unlock cycles (S8.2)"
      ~header:[ "App"; "J/day"; "Battery/day" ]
      ~notes:[ "Paper: ~2% of battery per day to protect an application." ]
      daily;
  ]
