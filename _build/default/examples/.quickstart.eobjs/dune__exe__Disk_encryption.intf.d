examples/disk_encryption.mli:
