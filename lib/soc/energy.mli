(** Energy accounting (joules) with per-category attribution. *)

type t

val create : unit -> t
val charge : t -> category:string -> float -> unit

(** [charge_bytes t ~category ~per_byte_j bytes] charges
    [float_of_int bytes *. per_byte_j] joules without boxing the
    product — the allocation-free form of [charge] for per-cache-line
    call sites.  Accounting is bit-identical to the equivalent
    [charge] call. *)
val charge_bytes : t -> category:string -> per_byte_j:float -> int -> unit

(** A pre-resolved charging handle for one category: resolves the
    accumulator cell once so per-cache-line charges skip the category
    lookup.  Interchangeable and bit-identical with [charge]. *)
type meter

val meter : t -> category:string -> meter
val meter_charge_bytes : meter -> per_byte_j:float -> int -> unit

val total : t -> float

(** Joules charged to one category so far (0 if never charged). *)
val category : t -> string -> float

(** All (category, joules) pairs, sorted by name. *)
val categories : t -> (string * float) list

val reset : t -> unit

(** Run a thunk and return its result with the energy charged to the
    category during the call. *)
val metered : t -> category:string -> (unit -> 'a) -> 'a * float

val pp : Format.formatter -> t -> unit
