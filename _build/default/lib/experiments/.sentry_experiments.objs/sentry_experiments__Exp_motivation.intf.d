lib/experiments/exp_motivation.mli: Sentry_util
