lib/experiments/exp_ablations.mli: Sentry_util
