lib/crypto/perf.ml: Calib Clock Energy Machine Sentry_soc Sentry_util
