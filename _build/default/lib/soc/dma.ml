(** DMA controller.

    A DMA engine moves data without CPU cooperation and — crucially —
    {e bypasses the L2 cache}: transfers read and write DRAM (or iRAM)
    directly.  Cache coherence is software-managed on these SoCs
    (§4.4): the OS must clean lines before an outgoing transfer and
    invalidate before an incoming one.

    A DMA {e attack} (§3.1) programs this controller over an exposed
    interface to dump memory of a PIN-locked device.  The only
    hardware defence is TrustZone's deny list. *)

type error = Denied | Bad_address

type t = {
  dram : Dram.t;
  iram : Iram.t;
  tz : Trustzone.t;
  clock : Clock.t;
  energy : Energy.t;
}

let create ~dram ~iram ~tz ~clock ~energy = { dram; iram; tz; clock; energy }

let charge t len =
  Clock.advance t.clock (float_of_int len *. Calib.dma_byte_ns);
  Energy.charge t.energy ~category:"dma" (float_of_int len *. Calib.onsoc_byte_j)

let target t addr len =
  if Dram.contains t.dram addr && Dram.contains t.dram (addr + len - 1) then Some `Dram
  else if Iram.contains t.iram addr && Iram.contains t.iram (addr + len - 1) then Some `Iram
  else None

(** [read t ~addr ~len] — a device-initiated read of physical memory.
    Sees DRAM as it is, stale or not (never the cache's view), and
    iRAM unless TrustZone denies the window. *)
let read t ~addr ~len =
  if not (Trustzone.dma_allowed t.tz ~addr ~len) then Error Denied
  else
    match target t addr len with
    | None -> Error Bad_address
    | Some `Dram ->
        charge t len;
        Ok (Dram.read t.dram ~initiator:`Dma addr len)
    | Some `Iram ->
        charge t len;
        (* iRAM DMA stays on-SoC: no bus transaction, but the data
           still leaves through the peripheral. *)
        Ok (Bytes.sub (Iram.raw t.iram) (addr - (Iram.region t.iram).Memmap.base) len)

(** [write t ~addr b] — a device-initiated write (e.g. an incoming
    network buffer, or a code-injection attempt). *)
let write t ~addr b =
  let len = Bytes.length b in
  if not (Trustzone.dma_allowed t.tz ~addr ~len) then Error Denied
  else
    match target t addr len with
    | None -> Error Bad_address
    | Some `Dram ->
        charge t len;
        Ok (Dram.write t.dram ~initiator:`Dma addr b)
    | Some `Iram ->
        charge t len;
        Ok (Bytes.blit b 0 (Iram.raw t.iram) (addr - (Iram.region t.iram).Memmap.base) len)
