(** Cross-check: re-derive the Table 3 security matrix from taint
    provenance and compare against [Sentry_attacks.Verdict], which
    derives it from content (actually mounting each attack and
    grepping the dumps).

    The two computations share nothing but the secret-placement code,
    so agreement on every (attack, storage) cell is strong evidence
    that the shadow plumbing models the same flows the attacks
    exploit. *)

open Sentry_soc
open Sentry_attacks

let secret = Taint.Secret_cleartext

(* Same decay tolerance as [Cold_boot.succeeds]: error-correcting
   tooling reconstructs a key from ~85% of its bytes. *)
let decay_tolerance = 0.85

let seed_for storage attack =
  Hashtbl.hash (Verdict.storage_name storage, Verdict.attack_name attack, "taint")

(** One cell from provenance: [true] = no secret-cleartext taint is
    reachable by this attack. *)
let analyzer_safe ~(storage : Verdict.storage) ~(attack : Verdict.attack) =
  let seed = seed_for storage attack in
  let len = Bytes.length Verdict.secret in
  match attack with
  | Verdict.Cold_boot_attack ->
      (* Reflash, then ask whether a decay-tolerant window of secret
         taint survives anywhere an imaging attacker can see.
         [Dram.power_cycle] clears the shadow of every byte that
         decayed, so the fuzzy window models exactly what the
         error-corrected scan could still reconstruct. *)
      let _, machine, _ = Verdict.place_secret ~track_taint:true ~seed storage in
      Machine.reboot machine Machine.Reflash;
      let in_dram =
        match Dram.shadow (Machine.dram machine) with
        | Some sh -> Taint.fuzzy_window sh ~level:secret ~len ~min_match:decay_tolerance
        | None -> false
      in
      let in_iram =
        match Iram.shadow (Machine.iram machine) with
        | Some sh -> Taint.fuzzy_window sh ~level:secret ~len ~min_match:decay_tolerance
        | None -> false
      in
      not (in_dram || in_iram)
  | Verdict.Dma_memory_attack ->
      (* Any secret-tainted run that sits inside an open DMA window is
         reachable by a device-initiated read. *)
      let _, machine, _ = Verdict.place_secret ~track_taint:true ~seed storage in
      let tz = Machine.trustzone machine in
      let reachable mem_shadow base =
        match mem_shadow with
        | None -> false
        | Some sh ->
            Taint.runs sh ~level:secret
            |> List.exists (fun (off, len) -> Trustzone.dma_allowed tz ~addr:(base + off) ~len)
      in
      let dram = Machine.dram machine and iram = Machine.iram machine in
      not
        (reachable (Dram.shadow dram) (Dram.region dram).Memmap.base
        || reachable (Iram.shadow iram) (Iram.region iram).Memmap.base)
  | Verdict.Bus_monitoring_attack ->
      (* Replicate [Verdict.safe]'s victim access pattern and watch the
         taint of every bus transaction instead of its payload. *)
      let _, machine, addr = Verdict.place_secret ~track_taint:true ~seed storage in
      let leaked = ref false in
      let detach =
        Bus.attach_monitor (Machine.bus machine) (fun txn ->
            if Taint.rank txn.Bus.taint >= Taint.rank secret then leaked := true)
      in
      (match storage with
      | Verdict.Plain_dram -> ignore (Machine.read machine addr len)
      | Verdict.Iram_storage | Verdict.Locked_l2_storage ->
          ignore (Machine.read machine addr len);
          Machine.with_taint machine secret (fun () -> Machine.write machine addr Verdict.secret));
      Pl310.flush_masked (Machine.l2 machine);
      detach ();
      not !leaked

type cell = {
  attack : Verdict.attack;
  storage : Verdict.storage;
  verdict_safe : bool;  (** content-based: the attack was mounted *)
  analyzer_safe : bool;  (** provenance-based: taint reachability *)
}

let cell_agrees c = Bool.equal c.verdict_safe c.analyzer_safe

(** Every (attack, storage) cell, both ways. *)
let agreement () =
  Verdict.matrix ()
  |> List.map (fun (attack, storage, verdict_safe) ->
         { attack; storage; verdict_safe; analyzer_safe = analyzer_safe ~storage ~attack })

(** [true] iff the analyzer agrees with the mounted attacks on every
    cell. *)
let agrees () = List.for_all cell_agrees (agreement ())

let pp_cell ppf c =
  let show b = if b then "safe" else "UNSAFE" in
  Fmt.pf ppf "%-15s vs %-17s  attack:%-6s  taint:%-6s  %s"
    (Verdict.attack_name c.attack)
    (Verdict.storage_name c.storage)
    (show c.verdict_safe) (show c.analyzer_safe)
    (if cell_agrees c then "agree" else "DISAGREE")

let report () =
  let cells = agreement () in
  let buf = Buffer.create 256 in
  List.iter (fun c -> Buffer.add_string buf (Fmt.str "%a\n" pp_cell c)) cells;
  Buffer.add_string buf
    (if List.for_all cell_agrees cells then "analyzer agrees with Verdict.matrix on every cell\n"
     else "DISAGREEMENT between analyzer and Verdict.matrix\n");
  Buffer.contents buf
