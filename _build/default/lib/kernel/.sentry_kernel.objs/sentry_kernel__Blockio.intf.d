lib/kernel/blockio.mli: Bytes
