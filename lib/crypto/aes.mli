(** Fast native AES (the "generic OpenSSL AES" of the paper): the
    bulk-data path used for actual byte transformations.  The
    security-relevant instrumented twin is [Aes_block]; both are
    pinned to FIPS-197 vectors. *)

type key = Aes_key.t

val expand : Bytes.t -> key

val block_size : int

(** [encrypt_block k src src_off dst dst_off] transforms one 16-byte
    block; [src] and [dst] may alias. *)
val encrypt_block : key -> Bytes.t -> int -> Bytes.t -> int -> unit

(** Inverse cipher (direct order, forward schedule applied backwards —
    no separate decryption schedule is stored). *)
val decrypt_block : key -> Bytes.t -> int -> Bytes.t -> int -> unit

(** [cbc_encrypt_into k ~iv ?iv_off src src_off dst dst_off nblocks]
    encrypts [nblocks] contiguous 16-byte blocks in CBC mode with the
    chain held in scalar registers (no per-block buffer traffic); the
    AES-128 round structure is fully unrolled.  This is the batched
    lock pipeline's page kernel.  [src] and [dst] may alias at equal
    offsets.  Output is bit-identical to chaining [encrypt_block]
    by hand (and is differentially tested against [Mode]). *)
val cbc_encrypt_into :
  key -> iv:Bytes.t -> ?iv_off:int -> Bytes.t -> int -> Bytes.t -> int -> int -> unit

(** [cbc_decrypt_into k ~iv ?iv_off buf off nblocks] decrypts
    [nblocks] contiguous blocks of [buf] {e in place} in CBC mode —
    the unlock twin of [cbc_encrypt_into]. *)
val cbc_decrypt_into : key -> iv:Bytes.t -> ?iv_off:int -> Bytes.t -> int -> int -> unit

(** One-shot block APIs (fresh output buffer). *)
val encrypt_block_copy : key -> Bytes.t -> Bytes.t

val decrypt_block_copy : key -> Bytes.t -> Bytes.t
