(** Cold-boot attacks (§3.1) in the three Table 2 reset variants:
    force a reset, image what the memories still hold, scan. *)

open Sentry_soc

type variant = Os_reboot | Device_reflash | Two_second_reset

val variant_name : variant -> string
val reboot_of_variant : variant -> Machine.reboot

type image = { dram : Memdump.t; iram : Memdump.t }

(** Force the reset {e once} and dump both memories.  Destructive;
    answer every question against the one image (each extra reset
    decays DRAM further — the footgun this API removes). *)
val image : Machine.t -> variant -> image

(** Scan an already-captured image for AES key schedules. *)
val keys_of_image : image -> Bytes.t list

(** Is [secret] findable in an already-captured image?  Matching
    tolerates ~15% decayed bytes (error-correcting tooling). *)
val secret_in_image : image -> secret:Bytes.t -> bool

(** Force the reset and image DRAM and iRAM.  Destructive.
    Compatibility wrapper over [image]. *)
val mount : Machine.t -> variant -> Memdump.t * Memdump.t

(** Image memory and scan both dumps for AES key schedules.
    One-shot wrapper: mounts its own reset. *)
val recover_keys : Machine.t -> variant -> Bytes.t list

(** Can the attacker find [secret] after the reset?  One-shot wrapper:
    mounts its own reset — capture an [image] instead when asking more
    than one question of the same machine state. *)
val succeeds : Machine.t -> variant -> secret:Bytes.t -> bool
