(** The device-unlock path (§7, On-demand Decryption).

    Most pages decrypt lazily: unlock leaves them encrypted with the
    young bit clear, and the page-fault handler decrypts on first
    touch.  DMA regions (GPU buffers, I/O rings) are decrypted eagerly
    — device accesses use physical addresses and never fault. *)

open Sentry_soc
open Sentry_kernel

type stats = {
  dma_pages_eager : int;
  dma_bytes_eager : int;
  elapsed_ns : float;
  energy_j : float;
}

(** The lazy young-bit fault handler active while unlocked. *)
let fault_handler pc : Vm.fault_handler =
 fun proc ~vaddr pte ->
  let vpn = Page.vpn_of vaddr in
  if pte.Page_table.encrypted then begin
    Page_crypt.decrypt_frame pc ~pid:proc.Process.pid ~vpn ~frame:pte.Page_table.frame;
    pte.Page_table.encrypted <- false
  end;
  pte.Page_table.young <- true

let decrypt_region ?journal pc proc (region : Address_space.region) =
  let pid = proc.Process.pid in
  let pages = ref 0 in
  List.iter
    (fun (vpn, pte) ->
      if pte.Page_table.present && pte.Page_table.encrypted then begin
        (* fail-secure ordering: clear the bit before the cleartext
           lands, so a crash anywhere in this window makes the recovery
           sweep re-encrypt the page.  The reverse order would leave a
           cleartext frame whose PTE still claims ciphertext — invisible
           to recovery. *)
        pte.Page_table.encrypted <- false;
        Page_crypt.decrypt_frame pc ~pid ~vpn ~frame:pte.Page_table.frame;
        pte.Page_table.young <- true;
        incr pages;
        Option.iter (fun j -> Lock_journal.record j ~pid) journal
      end)
    (Address_space.region_ptes proc.Process.aspace region);
  !pages

(** [run pc system ~sensitive] — the eager part of unlock: decrypt DMA
    regions, re-admit processes, install the lazy handler.  With
    [?journal], eager progress is journaled so a crash mid-unlock can
    be rolled back to fully-locked ([Sentry.recover] re-encrypts the
    already-decrypted pages and aborts the unlock). *)
let run ?journal pc (system : System.t) ~sensitive =
  let machine = system.System.machine in
  let clock = Machine.clock machine in
  let start = Clock.now clock in
  let energy0 = Energy.category (Machine.energy machine) "aes" in
  let dma_pages = ref 0 in
  Option.iter
    (fun j ->
      let pid = match sensitive with p :: _ -> p.Process.pid | [] -> 0 in
      Lock_journal.begin_pass j Lock_journal.Unlock_pass ~pid)
    journal;
  List.iter
    (fun proc ->
      List.iter
        (fun region ->
          match region.Address_space.kind with
          | Address_space.Dma ->
              dma_pages := !dma_pages + decrypt_region ?journal pc proc region;
              (* devices read these frames physically, bypassing the
                 cache: clean the decrypted lines out to DRAM (standard
                 pre-DMA coherence maintenance) *)
              List.iter
                (fun (_, pte) ->
                  Pl310.clean_invalidate_range (Machine.l2 machine) pte.Page_table.frame
                    Page.size)
                (Address_space.region_ptes proc.Process.aspace region)
          | Address_space.Normal | Address_space.Shared _ -> ())
        (Address_space.regions proc.Process.aspace);
      Sched.make_schedulable system.System.sched proc)
    sensitive;
  Option.iter Lock_journal.commit journal;
  Vm.set_fault_handler system.System.vm (fault_handler pc);
  {
    dma_pages_eager = !dma_pages;
    dma_bytes_eager = !dma_pages * Page.size;
    elapsed_ns = Clock.elapsed clock ~since:start;
    energy_j = Energy.category (Machine.energy machine) "aes" -. energy0;
  }

(** Eager-everything alternative (the ablation Fig 2 is compared
    against): decrypt every page of every sensitive process now. *)
let run_eager pc (system : System.t) ~sensitive =
  let pages = ref 0 in
  List.iter
    (fun proc ->
      List.iter
        (fun region -> pages := !pages + decrypt_region pc proc region)
        (Address_space.regions proc.Process.aspace);
      Sched.make_schedulable system.System.sched proc)
    sensitive;
  Vm.set_fault_handler system.System.vm (fault_handler pc);
  !pages
