(** Foreground application model for the Figs 2-5 experiments.

    An app is characterised by its memory profile — how much is
    resident (encrypted at lock), how much of that is device-DMA
    memory (decrypted eagerly at unlock), how much the resume path
    touches, and how much more a scripted interaction session touches
    — plus the script length and a young-bit refault factor capturing
    access-flag aging during the run.

    The profile numbers for the four paper apps live in [Apps] and
    come from the paper's own measurements (e.g. Maps: 38 MB decrypted
    around unlock of which 15 MB is DMA, 48 MB encrypted at lock). *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core

type profile = {
  app_name : string;
  footprint_mb : float; (* resident set, encrypted at lock *)
  dma_mb : float; (* DMA region, eager decrypt at unlock *)
  resume_mb : float; (* touched by the resume path (lazy) *)
  runtime_mb : float; (* additionally touched during the script *)
  refault_factor : float; (* aging refaults per runtime page *)
  script_s : float; (* scripted interaction duration *)
}

type t = {
  profile : profile;
  proc : Process.t;
  main_region : Address_space.region;
  dma_region : Address_space.region;
}

let mb f = int_of_float (f *. float_of_int Units.mib)

(** [launch system profile] spawns the process with its main and DMA
    regions and fills them with recognisable content. *)
let launch (system : System.t) profile =
  let main_bytes = mb (profile.footprint_mb -. profile.dma_mb) in
  let proc = System.spawn system ~name:profile.app_name ~bytes:main_bytes in
  let aspace = proc.Process.aspace in
  let dma_region =
    Address_space.map_region aspace ~name:"dma" ~kind:Address_space.Dma ~bytes:(mb profile.dma_mb)
  in
  let main_region =
    match Address_space.find_region aspace ~name:"main" with
    | Some r -> r
    | None -> assert false
  in
  let pattern = Bytes.of_string (profile.app_name ^ "-data!") in
  System.fill_region system proc main_region pattern;
  System.fill_region system proc dma_region pattern;
  { profile; proc; main_region; dma_region }

let touch_pages (system : System.t) t ~(region : Address_space.region) ~first_page ~pages =
  for i = first_page to first_page + pages - 1 do
    Vm.touch system.System.vm t.proc
      ~vaddr:(region.Address_space.vstart + (i * Page.size))
  done

(** The resume step after unlock: the app touches its resume set;
    encrypted pages fault and decrypt lazily. *)
let resume (system : System.t) t =
  let pages = mb t.profile.resume_mb / Page.size in
  touch_pages system t ~region:t.main_region ~first_page:0 ~pages

(* Clear young bits on [pages] pages starting at [first_page]
   (access-flag aging). *)
let age t ~first_page ~pages =
  let table = Address_space.table t.proc.Process.aspace in
  let vpn0 = Page.vpn_of t.main_region.Address_space.vstart + first_page in
  for i = 0 to pages - 1 do
    match Page_table.find table ~vpn:(vpn0 + i) with
    | Some pte -> pte.Page_table.young <- false
    | None -> ()
  done

(** The scripted interaction session (§8.2): touches the runtime set
    beyond the resume set, plus [refault_factor] aging refaults per
    page, padded with compute to the script's nominal duration. *)
let run_script (system : System.t) t =
  let machine = system.System.machine in
  let start = Machine.now machine in
  let resume_pages = mb t.profile.resume_mb / Page.size in
  let runtime_pages = mb t.profile.runtime_mb / Page.size in
  touch_pages system t ~region:t.main_region ~first_page:resume_pages ~pages:runtime_pages;
  (* aging refaults over already-decrypted pages *)
  let refaults = int_of_float (t.profile.refault_factor *. float_of_int runtime_pages) in
  let batch = max 1 (min runtime_pages 256) in
  let rounds = (refaults + batch - 1) / max 1 batch in
  for _ = 1 to rounds do
    age t ~first_page:resume_pages ~pages:batch;
    touch_pages system t ~region:t.main_region ~first_page:resume_pages ~pages:batch
  done;
  (* The script's own work is a fixed amount of user-time compute
     (touch costs without Sentry are cached accesses, i.e. noise), so
     a Sentry run's extra time over [script_s] is the overhead. *)
  Machine.compute machine ~ns:(t.profile.script_s *. Units.s);
  Machine.now machine -. start
