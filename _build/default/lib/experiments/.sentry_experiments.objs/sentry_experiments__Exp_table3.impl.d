lib/experiments/exp_table3.ml: List Sentry_attacks Sentry_util Table Verdict
