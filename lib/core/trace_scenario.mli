(** Canned, deterministic workloads for trace capture: same seed, same
    event stream.  Both scenarios exercise lock transitions, bus
    traffic, DMA (incl. a TrustZone denial), page faults and crypto
    operations. *)

type name =
  | Lock_cycle
      (** boot → DMA round-trip → encrypt-on-lock → background reads
          (where the platform pages through locked cache) → wrong PIN →
          unlock → lazy-decrypt faults → context switches *)
  | Dm_crypt_io
      (** a dm-crypt volume under a 4-page buffer cache: 8 page writes,
          8 re-reads (evictions), sync, DMA round-trip *)

val all : name list
val name_to_string : name -> string
val of_string : string -> name option
val describe : name -> string

type result = { system : System.t; sentry : Sentry.t }

val default_seed : int

(** [run ?seed name platform] boots a fresh system (PRNG fixed by
    [seed], default [default_seed]) and drives the scenario with
    [Config.trace] set, so [Sentry.install] ensures a recorder. *)
val run : ?seed:int -> name -> Config.platform -> result
