(** PL310-style shared L2 cache controller with lockdown-by-way
    (§4.2): write-back, write-allocate, 8 ways of 128 KB by default.
    Locked ways keep serving hits and absorbing writes but never
    evict — their data never reaches DRAM — and the flush mask makes
    kernel cache maintenance skip them (the Sentry patch, §4.5).
    [flush_all_stock] reproduces the dangerous stock behaviour. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable bypasses : int;  (** accesses with no allocatable way *)
}

type t

val create :
  ?ways:int ->
  ?way_size:int ->
  ?line_size:int ->
  dram:Dram.t ->
  clock:Clock.t ->
  energy:Energy.t ->
  unit ->
  t

val ways : t -> int
val way_size : t -> int
val line_size : t -> int
val size : t -> int
val stats : t -> stats

val set_of_addr : t -> int -> int
val tag_of_addr : t -> int -> int
val line_base : t -> int -> int

(** {2 Lockdown and flush-mask registers} *)

val lockdown : t -> int

(** A set bit means the way receives no new allocations. *)
val set_lockdown : t -> int -> unit

val flush_mask : t -> int

(** Ways that maintenance operations must skip. *)
val set_flush_mask : t -> int -> unit

(** {2 Lookup} *)

(** The way currently holding [addr]'s line, if resident. *)
val lookup : t -> int -> int option

val resident : t -> int -> bool
val way_of : t -> int -> int option

(** {2 CPU access path} *)

(** Cached read: hit, fill (evicting per lockdown), or — when every
    way is locked — an uncached DRAM bypass. *)
val read : t -> int -> int -> Bytes.t

(** Scatter-gather read straight into [buf] at [off]: identical
    clock/energy/stats to [read] (which is implemented on top), no
    allocation. *)
val read_into : t -> int -> Bytes.t -> off:int -> len:int -> unit

(** Cached write (write-allocate, write-back); [taint] labels the
    written bytes when taint tracking is on. *)
val write : t -> ?taint:Taint.level -> int -> Bytes.t -> unit

(** Scatter-gather write of the [len]-byte view of [buf] at [off];
    [write] is implemented on top. *)
val write_from : t -> ?taint:Taint.level -> int -> Bytes.t -> off:int -> len:int -> unit

(** {2 Batched run fast path} *)

(** [read_run_into t addr buf ~off ~len] — the batched lock/unlock
    pipeline's page-run read.  Bit-identical simulated state evolution
    to [read_into] (same per-line stats, clock advances, energy
    charges, bus transactions, victim choices; differentially tested)
    with the per-line host overhead hoisted out of the loop.  Falls
    back to [read_into] whenever tracing is on, a bus monitor is
    attached or a write-back hook is installed. *)
val read_run_into : t -> int -> Bytes.t -> off:int -> len:int -> unit

(** Page-run write twin of [read_run_into]. *)
val write_run_from : t -> ?taint:Taint.level -> int -> Bytes.t -> off:int -> len:int -> unit

(** {2 Taint tracking} *)

(** Lazily allocate per-line shadows (and DRAM's, transitively). *)
val enable_taint : t -> unit

val taint_enabled : t -> bool

(** Taint join over a range as the CPU sees it: resident lines'
    shadows where cached, DRAM's shadow elsewhere. [Public] when
    tracking is off. *)
val taint_range : t -> int -> int -> Taint.level

(** Per-byte shadow of the line resident in ([way], [set]); [None]
    until taint tracking is enabled. *)
val line_shadow : t -> int -> int -> Bytes.t option

(** [set_writeback_hook t f] — [f] fires on every dirty-line
    writeback to DRAM; [locked] is true when the line's way is under
    lockdown at writeback time (the eviction Sentry's kernel patch
    must never allow, §4.5). *)
val set_writeback_hook : t -> (way:int -> addr:int -> locked:bool -> unit) -> unit

val clear_writeback_hook : t -> unit

(** Visit every valid resident line ([f ~way ~addr data]); used by
    analysis passes searching the cache for key material. *)
val iter_resident : t -> (way:int -> addr:int -> Bytes.t -> unit) -> unit

(** {2 Maintenance} *)

(** Sentry-patched flush: clean+invalidate every way not excluded by
    the flush mask; lockdown preserved. *)
val flush_masked : t -> unit

(** Stock full flush: cleans and drops {e locked} ways too and resets
    the lockdown — the leak the paper discovered (§4.2). *)
val flush_all_stock : t -> unit

(** Per-line clean+invalidate for DMA coherence; honours the flush
    mask. *)
val clean_invalidate_range : t -> int -> int -> unit

(** Invalidate without cleaning (before incoming DMA); locked/masked
    ways are skipped. *)
val invalidate_range : t -> int -> int -> unit

(** Power-on reset: invalidate and zero everything, clear both
    registers. *)
val reset : t -> unit

(** Raw bytes of a resident line (test/attack tooling: probing the
    SRAM arrays directly, outside the paper's threat model). *)
val peek_line : t -> int -> Bytes.t option

val hit_rate : t -> float
