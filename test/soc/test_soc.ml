open Sentry_util
open Sentry_soc

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let fresh ?(dram_size = 4 * Units.mib) ?(seed = 1) () =
  Machine.create ~seed (Machine.tegra3 ~dram_size ())

let dram_base m = (Machine.dram_region m).Memmap.base
let iram_base m = (Machine.iram_region m).Memmap.base

(* ----------------------------- Memmap ----------------------------- *)

let test_memmap_regions () =
  let r = Memmap.region ~base:0x1000 ~size:0x100 in
  checkb "contains base" true (Memmap.contains r 0x1000);
  checkb "contains last" true (Memmap.contains r 0x10ff);
  checkb "excludes limit" false (Memmap.contains r 0x1100);
  checki "offset" 0x40 (Memmap.offset r 0x1040)

let test_memmap_layout_disjoint () =
  let m = fresh () in
  let dram = Machine.dram_region m and iram = Machine.iram_region m in
  checkb "disjoint" true
    (Memmap.limit iram <= dram.Memmap.base || Memmap.limit dram <= iram.Memmap.base)

(* ------------------------- Clock / Energy ------------------------ *)

let test_clock_advance () =
  let c = Clock.create () in
  Clock.advance c 100.0;
  Clock.advance c 50.0;
  Alcotest.(check (float 1e-9)) "now" 150.0 (Clock.now c);
  Alcotest.(check (float 1e-9)) "elapsed" 50.0 (Clock.elapsed c ~since:100.0);
  let (), dt = Clock.timed c (fun () -> Clock.advance c 7.0) in
  Alcotest.(check (float 1e-9)) "timed" 7.0 dt

let test_energy_categories () =
  let e = Energy.create () in
  Energy.charge e ~category:"aes" 1.0;
  Energy.charge e ~category:"aes" 0.5;
  Energy.charge e ~category:"dma" 2.0;
  Alcotest.(check (float 1e-9)) "total" 3.5 (Energy.total e);
  Alcotest.(check (float 1e-9)) "aes" 1.5 (Energy.category e "aes");
  Alcotest.(check (float 1e-9)) "missing" 0.0 (Energy.category e "nope");
  let (), spent = Energy.metered e ~category:"aes" (fun () -> Energy.charge e ~category:"aes" 0.25) in
  Alcotest.(check (float 1e-9)) "metered" 0.25 spent

(* ------------------------------ DRAM ------------------------------ *)

let test_dram_read_write_uncached () =
  let m = fresh () in
  let addr = dram_base m + 0x1234 in
  Machine.write_uncached m addr (Bytes.of_string "hello");
  Alcotest.(check bytes) "readback" (Bytes.of_string "hello") (Machine.read_uncached m addr 5)

let test_dram_bounds () =
  let m = fresh () in
  let dram = Machine.dram m in
  Alcotest.check_raises "oob"
    (Invalid_argument
       (Printf.sprintf "Dram: access out of range 0x%x+%d" (Memmap.limit (Dram.region dram)) 1))
    (fun () -> ignore (Dram.read dram ~initiator:`Cpu (Memmap.limit (Dram.region dram)) 1))

let test_dram_remanence_full_survival () =
  let m = fresh () in
  Bytes_util.fill_pattern (Dram.raw (Machine.dram m)) (Bytes.of_string "PATTERNZ");
  Dram.set_powered (Machine.dram m) false;
  Dram.power_cycle (Machine.dram m) ~off_s:0.0;
  Dram.set_powered (Machine.dram m) true;
  checki "no decay at 0s"
    (Bytes.length (Dram.raw (Machine.dram m)) / 8)
    (Bytes_util.count_pattern (Dram.raw (Machine.dram m)) (Bytes.of_string "PATTERNZ"))

let test_dram_remanence_decay_monotonic () =
  let survival off_s =
    let m = fresh ~seed:(int_of_float (off_s *. 1000.0)) () in
    let pat = Bytes.of_string "PATTERNZ" in
    Bytes_util.fill_pattern (Dram.raw (Machine.dram m)) pat;
    Dram.set_powered (Machine.dram m) false;
    Dram.power_cycle (Machine.dram m) ~off_s;
    Dram.set_powered (Machine.dram m) true;
    float_of_int (Bytes_util.count_pattern (Dram.raw (Machine.dram m)) pat)
  in
  let s02 = survival 0.2 and s10 = survival 1.0 and s20 = survival 2.0 in
  checkb "0.2 > 1.0" true (s02 > s10);
  checkb "1.0 > 2.0" true (s10 > s20)

let test_dram_powered_off_is_typed () =
  let m = fresh () in
  let dram = Machine.dram m in
  let base = (Dram.region dram).Memmap.base in
  Dram.set_powered dram false;
  Alcotest.check_raises "read on dead rails" Dram.Powered_off (fun () ->
      ignore (Dram.read dram ~initiator:`Cpu base 16));
  Alcotest.check_raises "write on dead rails" Dram.Powered_off (fun () ->
      Dram.write dram ~initiator:`Cpu base (Bytes.make 16 'x'));
  Dram.set_powered dram true;
  ignore (Dram.read dram ~initiator:`Cpu base 16)

let test_dram_power_cycle_guards_still_powered () =
  let m = fresh () in
  Alcotest.check_raises "decay needs the rails down"
    (Invalid_argument "Dram.power_cycle: still powered (cells decay only without self-refresh)")
    (fun () -> Dram.power_cycle (Machine.dram m) ~off_s:1.0)

let test_dram_remanence_calibration () =
  Alcotest.(check (float 0.005)) "reflash point" (0.975 ** (1.0 /. 8.0))
    (Calib.dram_survival ~power_off_s:0.2);
  Alcotest.(check (float 0.02)) "2s point" (0.001 ** (1.0 /. 8.0))
    (Calib.dram_survival ~power_off_s:2.0)

(* ------------------------------ iRAM ------------------------------ *)

let test_iram_roundtrip () =
  let m = fresh () in
  let addr = iram_base m + 0x8000 in
  Machine.write m addr (Bytes.of_string "soc-data");
  Alcotest.(check bytes) "readback" (Bytes.of_string "soc-data") (Machine.read m addr 8)

let test_iram_no_bus_traffic () =
  let m = fresh () in
  let before, _, _ = Bus.stats (Machine.bus m) in
  Machine.write m (iram_base m + 0x9000) (Bytes.make 4096 'x');
  ignore (Machine.read m (iram_base m + 0x9000) 4096);
  let after, _, _ = Bus.stats (Machine.bus m) in
  checki "no transactions" before after

let test_iram_firmware_clear () =
  let m = fresh () in
  Machine.write m (iram_base m + 0x8000) (Bytes.of_string "secret");
  Iram.firmware_clear (Machine.iram m);
  checkb "zeroed" true (Bytes_util.is_zero (Iram.raw (Machine.iram m)))

let test_iram_firmware_region_crash () =
  let m = fresh () in
  checkb "ok before" true (Iram.firmware_ok (Machine.iram m));
  Machine.write m (iram_base m + 0x100) (Bytes.of_string "oops");
  checkb "crashed" false (Iram.firmware_ok (Machine.iram m))

(* ------------------------------ Bus ------------------------------- *)

let test_bus_monitor_sees_uncached () =
  let m = fresh () in
  let seen = ref [] in
  let detach = Bus.attach_monitor (Machine.bus m) (fun txn -> seen := txn :: !seen) in
  Machine.write_uncached m (dram_base m) (Bytes.of_string "leak");
  checkb "observed" true (List.length !seen > 0);
  let txn = List.hd !seen in
  checkb "payload" true (Bytes_util.contains txn.Bus.data (Bytes.of_string "leak"));
  detach ();
  let n = List.length !seen in
  Machine.write_uncached m (dram_base m) (Bytes.of_string "more");
  checki "detached" n (List.length !seen)

let test_bus_counts () =
  let m = fresh () in
  let t0, r0, w0 = Bus.stats (Machine.bus m) in
  Machine.write_uncached m (dram_base m) (Bytes.make 64 'a');
  ignore (Machine.read_uncached m (dram_base m) 64);
  let t1, r1, w1 = Bus.stats (Machine.bus m) in
  checkb "transactions" true (t1 > t0);
  checki "read bytes" 64 (r1 - r0);
  checki "write bytes" 64 (w1 - w0)

let test_bus_record_snapshots_data () =
  (* the recorded transaction must hold a defensive copy: mutating the
     initiator's buffer after [record] returns cannot rewrite history *)
  let m = fresh () in
  let seen = ref [] in
  let detach = Bus.attach_monitor (Machine.bus m) (fun txn -> seen := txn :: !seen) in
  let buf = Bytes.of_string "original" in
  Bus.record (Machine.bus m) ~initiator:`Cpu Bus.Write (dram_base m) buf;
  Bytes.fill buf 0 (Bytes.length buf) '\xff';
  detach ();
  (match !seen with
  | [ txn ] ->
      Alcotest.(check bytes) "snapshot unchanged" (Bytes.of_string "original") txn.Bus.data;
      checkb "not aliased" false (txn.Bus.data == buf)
  | _ -> Alcotest.fail "expected exactly one transaction")

(* ----------------------------- PL310 ------------------------------ *)

let test_l2_geometry () =
  let m = fresh () in
  let l2 = Machine.l2 m in
  checki "ways" 8 (Pl310.ways l2);
  checki "way size" (128 * Units.kib) (Pl310.way_size l2);
  checki "line" 32 (Pl310.line_size l2);
  checki "total" Units.mib (Pl310.size l2)

let test_l2_cached_read_write () =
  let m = fresh () in
  let addr = dram_base m + 0x5000 in
  Machine.write m addr (Bytes.of_string "cached line data");
  Alcotest.(check bytes) "hit" (Bytes.of_string "cached line data") (Machine.read m addr 16)

let test_l2_writeback_on_flush () =
  let m = fresh () in
  let addr = dram_base m + 0x6000 in
  Machine.write m addr (Bytes.of_string "dirty!!!");
  (* write-back: DRAM does not see it yet *)
  checkb "not in dram" false
    (Bytes_util.contains (Dram.raw (Machine.dram m)) (Bytes.of_string "dirty!!!"));
  Pl310.flush_masked (Machine.l2 m);
  checkb "in dram after flush" true
    (Bytes_util.contains (Dram.raw (Machine.dram m)) (Bytes.of_string "dirty!!!"))

let test_l2_eviction_writes_back () =
  let m = fresh () in
  let addr = dram_base m + 0x7000 in
  Machine.write m addr (Bytes.of_string "evictme!");
  (* storm over 2 MB with the same set alignment to force eviction *)
  for i = 1 to 16 do
    ignore (Machine.read m (addr + (i * 128 * Units.kib)) 32)
  done;
  checkb "written back" true
    (Bytes_util.contains (Dram.raw (Machine.dram m)) (Bytes.of_string "evictme!"))

let test_l2_lockdown_blocks_allocation () =
  let m = fresh () in
  let l2 = Machine.l2 m in
  Pl310.set_lockdown l2 0xff;
  (* all ways locked *)
  let addr = dram_base m + 0x8000 in
  ignore (Machine.read m addr 32);
  checkb "not resident" false (Pl310.resident l2 addr);
  checkb "bypass counted" true ((Pl310.stats l2).Pl310.bypasses > 0);
  (* reads still work, straight from DRAM *)
  Machine.write_uncached m addr (Bytes.of_string "via-dram");
  Alcotest.(check bytes) "uncached value" (Bytes.of_string "via-dram") (Machine.read m addr 8)

let test_l2_warming_targets_single_way () =
  let m = fresh () in
  let l2 = Machine.l2 m in
  (* enable only way 3 *)
  Pl310.set_lockdown l2 (0xff lxor (1 lsl 3));
  let base = dram_base m + (2 * Units.mib) in
  for i = 0 to 63 do
    Machine.write m (base + (i * 32)) (Bytes.make 32 '\xff')
  done;
  for i = 0 to 63 do
    Alcotest.(check (option int)) "in way 3" (Some 3) (Pl310.way_of l2 (base + (i * 32)))
  done

let test_l2_locked_way_never_written_back () =
  (* the paper's §4.2 validation: data in a locked way must never
     appear in DRAM, even under cache pressure and masked flushes *)
  let m = fresh () in
  let l2 = Machine.l2 m in
  let base = dram_base m + (2 * Units.mib) in
  Pl310.set_lockdown l2 (0xff lxor 1);
  Machine.write m base (Bytes.of_string "LOCKEDSECRET0000");
  Pl310.set_lockdown l2 1;
  Pl310.set_flush_mask l2 1;
  (* pressure: sweep 4 MB *)
  for i = 0 to (2 * Units.mib / 32) - 1 do
    ignore (Machine.read m (dram_base m + (i * 32)) 8)
  done;
  Pl310.flush_masked l2;
  checkb "never in DRAM" false
    (Bytes_util.contains (Dram.raw (Machine.dram m)) (Bytes.of_string "LOCKEDSECRET0000"));
  checkb "still resident" true (Pl310.resident l2 base);
  Alcotest.(check bytes) "still readable" (Bytes.of_string "LOCKEDSECRET0000")
    (Machine.read m base 16)

let test_l2_stock_flush_leaks_locked_ways () =
  (* the dangerous stock behaviour the paper discovered: a full flush
     unlocks locked ways and writes their dirty data to DRAM *)
  let m = fresh () in
  let l2 = Machine.l2 m in
  let base = dram_base m + (2 * Units.mib) in
  Pl310.set_lockdown l2 (0xff lxor 1);
  Machine.write m base (Bytes.of_string "LOCKEDSECRET0000");
  Pl310.set_lockdown l2 1;
  Pl310.set_flush_mask l2 1;
  Pl310.flush_all_stock l2;
  checkb "leaked to DRAM" true
    (Bytes_util.contains (Dram.raw (Machine.dram m)) (Bytes.of_string "LOCKEDSECRET0000"));
  checki "lockdown dropped" 0 (Pl310.lockdown l2)

let test_l2_invalidate_range_skips_locked () =
  let m = fresh () in
  let l2 = Machine.l2 m in
  let base = dram_base m + (2 * Units.mib) in
  Pl310.set_lockdown l2 (0xff lxor 1);
  Machine.write m base (Bytes.of_string "keepme!!");
  Pl310.set_lockdown l2 1;
  Pl310.set_flush_mask l2 1;
  Pl310.invalidate_range l2 base 32;
  checkb "locked line survives invalidate" true (Pl310.resident l2 base)

let test_l2_reset_clears_everything () =
  let m = fresh () in
  let l2 = Machine.l2 m in
  Machine.write m (dram_base m) (Bytes.of_string "cachedat");
  Pl310.set_lockdown l2 3;
  Pl310.set_flush_mask l2 3;
  Pl310.reset l2;
  checkb "not resident" false (Pl310.resident l2 (dram_base m));
  checki "lockdown" 0 (Pl310.lockdown l2);
  checki "flush mask" 0 (Pl310.flush_mask l2);
  checkb "no line data" true
    (match Pl310.peek_line l2 (dram_base m) with None -> true | Some _ -> false)

let test_l2_hit_rate_counting () =
  let m = fresh () in
  let l2 = Machine.l2 m in
  let addr = dram_base m in
  ignore (Machine.read m addr 32);
  (* miss *)
  for _ = 1 to 9 do
    ignore (Machine.read m addr 32) (* hits *)
  done;
  Alcotest.(check (float 0.01)) "90% hits" 0.9 (Pl310.hit_rate l2)

let test_l2_cross_line_access () =
  let m = fresh () in
  let addr = dram_base m + 0x5000 + 30 in
  (* spans two lines *)
  Machine.write m addr (Bytes.of_string "span");
  Alcotest.(check bytes) "cross-line" (Bytes.of_string "span") (Machine.read m addr 4)

let test_l2_secure_world_needed_for_lockdown () =
  (* Trustzone gate is enforced by the Locked_cache driver, not the raw
     controller; here we check the gate itself *)
  let m = fresh () in
  let tz = Machine.trustzone m in
  Alcotest.check_raises "normal world denied"
    (Trustzone.Permission_denied "PL310 lockdown register") (fun () ->
      Trustzone.check_coprocessor_access tz);
  Trustzone.with_secure_world tz (fun () -> Trustzone.check_coprocessor_access tz)

(* ------------------------------- DMA ------------------------------ *)

let test_dma_reads_dram_not_cache () =
  let m = fresh () in
  let addr = dram_base m + 0x9000 in
  Machine.write_uncached m addr (Bytes.of_string "olddata!");
  (* dirty the cache with new data, not yet written back *)
  Machine.write m addr (Bytes.of_string "newdata!");
  match Dma.read (Machine.dma m) ~addr ~len:8 with
  | Ok b -> Alcotest.(check bytes) "stale dram view" (Bytes.of_string "olddata!") b
  | Error _ -> Alcotest.fail "dma denied"

let test_dma_write_then_cpu_stale_until_invalidate () =
  let m = fresh () in
  let addr = dram_base m + 0xa000 in
  Machine.write m addr (Bytes.of_string "cpu-data");
  Pl310.flush_masked (Machine.l2 m);
  ignore (Machine.read m addr 8);
  (* cache it *)
  (match Dma.write (Machine.dma m) ~addr (Bytes.of_string "dma-data") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "dma denied");
  (* CPU still sees the stale cached copy... *)
  Alcotest.(check bytes) "stale" (Bytes.of_string "cpu-data") (Machine.read m addr 8);
  (* ...until software invalidates (the coherence contract) *)
  Pl310.invalidate_range (Machine.l2 m) addr 8;
  Alcotest.(check bytes) "fresh" (Bytes.of_string "dma-data") (Machine.read m addr 8)

let test_dma_trustzone_denial () =
  let m = fresh () in
  let tz = Machine.trustzone m in
  let region = Memmap.region ~base:(dram_base m + 0x10000) ~size:0x1000 in
  Trustzone.with_secure_world tz (fun () -> Trustzone.deny_dma tz region);
  (match Dma.read (Machine.dma m) ~addr:(dram_base m + 0x10000) ~len:16 with
  | Error Dma.Denied -> ()
  | _ -> Alcotest.fail "should be denied");
  (* outside the denied window it still works *)
  match Dma.read (Machine.dma m) ~addr:(dram_base m) ~len:16 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "should be allowed"

let test_dma_iram_access () =
  let m = fresh () in
  Machine.write m (iram_base m + 0x8000) (Bytes.of_string "iramsec!");
  (match Dma.read (Machine.dma m) ~addr:(iram_base m + 0x8000) ~len:8 with
  | Ok b -> Alcotest.(check bytes) "iram readable by dma" (Bytes.of_string "iramsec!") b
  | Error _ -> Alcotest.fail "unexpected denial");
  (* protect it, as Sentry does *)
  let tz = Machine.trustzone m in
  Trustzone.with_secure_world tz (fun () -> Trustzone.deny_dma tz (Machine.iram_region m));
  match Dma.read (Machine.dma m) ~addr:(iram_base m + 0x8000) ~len:8 with
  | Error Dma.Denied -> ()
  | _ -> Alcotest.fail "should be denied after protection"

let test_dma_bad_address () =
  let m = fresh () in
  match Dma.read (Machine.dma m) ~addr:0x100 ~len:8 with
  | Error Dma.Bad_address -> ()
  | _ -> Alcotest.fail "expected bad address"

(* --------------------------- TrustZone ---------------------------- *)

let test_trustzone_world_switch () =
  let m = fresh () in
  let tz = Machine.trustzone m in
  checkb "starts normal" true (Trustzone.world tz = Trustzone.Normal);
  Trustzone.with_secure_world tz (fun () ->
      checkb "secure inside" true (Trustzone.world tz = Trustzone.Secure));
  checkb "restored" true (Trustzone.world tz = Trustzone.Normal)

let test_trustzone_world_restored_on_exception () =
  let m = fresh () in
  let tz = Machine.trustzone m in
  (try Trustzone.with_secure_world tz (fun () -> failwith "boom") with Failure _ -> ());
  checkb "restored after raise" true (Trustzone.world tz = Trustzone.Normal)

let test_trustzone_fuse_gate () =
  let m = fresh () in
  let tz = Machine.trustzone m in
  Alcotest.check_raises "fuse from normal world"
    (Trustzone.Permission_denied "Trustzone.read_fuse") (fun () ->
      ignore (Trustzone.read_fuse tz));
  let secret = Trustzone.with_secure_world tz (fun () -> Trustzone.read_fuse tz) in
  checki "fuse length" Fuse.secret_len (Bytes.length secret);
  let again = Trustzone.with_secure_world tz (fun () -> Trustzone.read_fuse tz) in
  Alcotest.(check bytes) "stable" secret again

let test_fuse_jtag () =
  let m = fresh () in
  let fuse = Machine.fuse m in
  checkb "jtag initially on" true (Fuse.jtag_enabled fuse);
  Fuse.burn_jtag_fuse fuse;
  checkb "jtag off" false (Fuse.jtag_enabled fuse)

(* ------------------------------ CPU -------------------------------- *)

let test_cpu_regs_and_zero () =
  let m = fresh () in
  let cpu = Machine.cpu m in
  Cpu.load_regs cpu (Bytes.of_string "0123456789abcdef");
  checkb "loaded" true
    (Bytes_util.contains (Cpu.regs_snapshot cpu) (Bytes.of_string "0123456789abcdef"));
  Cpu.zero_regs cpu;
  checkb "zeroed" true (Bytes_util.is_zero (Cpu.regs_snapshot cpu))

let test_cpu_irq_bracket () =
  let m = fresh () in
  let cpu = Machine.cpu m in
  checkb "irqs on" true (Cpu.irqs_enabled cpu);
  Cpu.with_irqs_off cpu (fun () ->
      checkb "irqs off inside" false (Cpu.irqs_enabled cpu);
      Cpu.load_regs cpu (Bytes.of_string "sensitive-state!"));
  checkb "irqs back on" true (Cpu.irqs_enabled cpu);
  checkb "regs zeroed on exit" true (Bytes_util.is_zero (Cpu.regs_snapshot cpu))

let test_cpu_irq_window_measured () =
  let m = fresh () in
  let cpu = Machine.cpu m in
  Cpu.with_irqs_off cpu (fun () -> Machine.compute m ~ns:(100.0 *. Units.us));
  Alcotest.(check (float 1.0)) "window" (100.0 *. Units.us) (Cpu.max_irq_window_ns cpu)

(* ----------------------------- Machine ----------------------------- *)

let test_machine_bus_fault () =
  let m = fresh () in
  Alcotest.check_raises "unmapped" (Machine.Bus_fault 0x10) (fun () ->
      ignore (Machine.read m 0x10 1))

let test_machine_reboot_warm_preserves_iram () =
  let m = fresh () in
  Machine.write m (iram_base m + 0x8000) (Bytes.of_string "staying!");
  Machine.reboot m Machine.Warm;
  Alcotest.(check bytes) "iram intact" (Bytes.of_string "staying!")
    (Machine.read m (iram_base m + 0x8000) 8)

let test_machine_reboot_reflash_clears_iram () =
  let m = fresh () in
  Machine.write m (iram_base m + 0x8000) (Bytes.of_string "leaving!");
  Machine.reboot m Machine.Reflash;
  checkb "iram zeroed" true (Bytes_util.is_zero (Iram.raw (Machine.iram m)))

let test_machine_reboot_resets_cache () =
  let m = fresh () in
  Machine.write m (dram_base m) (Bytes.of_string "dirtyline");
  Machine.reboot m Machine.Warm;
  checkb "cache invalidated without writeback" false
    (Bytes_util.contains (Dram.raw (Machine.dram m)) (Bytes.of_string "dirtyline"))

let test_machine_write_raw_coherent () =
  let m = fresh () in
  let addr = dram_base m + 0xb000 in
  Machine.write m addr (Bytes.of_string "cached!!");
  Machine.write_raw m addr (Bytes.of_string "rawdata!");
  Alcotest.(check bytes) "cpu sees raw write" (Bytes.of_string "rawdata!") (Machine.read m addr 8)

let test_machine_clock_monotonic () =
  let m = fresh () in
  let t0 = Machine.now m in
  ignore (Machine.read m (dram_base m) 64);
  checkb "time advanced" true (Machine.now m > t0)

let test_nexus_config () =
  let m = Machine.create (Machine.nexus4 ~dram_size:(4 * Units.mib) ()) in
  checkb "no cache locking" false (Machine.config m).Machine.cache_locking_available;
  checkb "has accel" true (Machine.config m).Machine.has_crypto_accel

(* --------------------------- properties --------------------------- *)

let qcheck_tests =
  let open QCheck in
  let machine = fresh ~dram_size:(2 * Units.mib) () in
  let base = dram_base machine in
  [
    (* Transparency oracle: under cached reads/writes, masked flushes
       and arbitrary lockdown changes, the cache must be invisible --
       every read returns exactly what a plain byte array would. *)
    Test.make ~name:"cache is transparent under any op sequence" ~count:25
      (list_of_size Gen.(5 -- 60)
         (triple (int_range 0 ((256 * 1024) - 64))
            (oneofl [ `Write; `Read; `Flush; `Lockdown 0; `Lockdown 3; `Lockdown 0x7f ])
            (string_of_size Gen.(1 -- 48))))
      (fun ops ->
        let m = fresh ~dram_size:(2 * Units.mib) ~seed:4242 () in
        let b = dram_base m in
        let model = Bytes.make (256 * 1024) '\000' in
        (* bring model and memory in sync *)
        Machine.write m b (Bytes.copy model);
        List.for_all
          (fun (off, op, payload) ->
            (match op with
            | `Write ->
                let p = Bytes.of_string payload in
                Machine.write m (b + off) p;
                Bytes.blit p 0 model off (Bytes.length p)
            | `Read -> ()
            | `Flush -> Pl310.flush_masked (Machine.l2 m)
            | `Lockdown mask -> Pl310.set_lockdown (Machine.l2 m) mask);
            let len = min 48 ((256 * 1024) - off) in
            Bytes.equal (Machine.read m (b + off) len) (Bytes.sub model off len))
          ops);
    Test.make ~name:"cached write/read roundtrip at any offset" ~count:200
      (pair (int_range 0 (Units.mib - 64)) (string_of_size Gen.(1 -- 64)))
      (fun (off, s) ->
        let b = Bytes.of_string s in
        Machine.write machine (base + off) b;
        Bytes.equal (Machine.read machine (base + off) (Bytes.length b)) b);
    Test.make ~name:"uncached matches cached after flush" ~count:50
      (int_range 0 (Units.mib - 64))
      (fun off ->
        let b = Bytes.of_string "COHERENT" in
        Machine.write machine (base + off) b;
        Pl310.flush_masked (Machine.l2 machine);
        Bytes.equal (Machine.read_uncached machine (base + off) 8) b);
    Test.make ~name:"set/tag decomposition is injective per line" ~count:200
      (pair (int_range 0 0xffff) (int_range 0 0xffff))
      (fun (a, b) ->
        let l2 = Machine.l2 machine in
        let a = base + (a * 32) and b = base + (b * 32) in
        a = b
        || Pl310.set_of_addr l2 a <> Pl310.set_of_addr l2 b
        || Pl310.tag_of_addr l2 a <> Pl310.tag_of_addr l2 b);
  ]

let () =
  Alcotest.run "sentry_soc"
    [
      ( "memmap",
        [
          Alcotest.test_case "regions" `Quick test_memmap_regions;
          Alcotest.test_case "layout disjoint" `Quick test_memmap_layout_disjoint;
        ] );
      ( "clock-energy",
        [
          Alcotest.test_case "clock" `Quick test_clock_advance;
          Alcotest.test_case "energy" `Quick test_energy_categories;
        ] );
      ( "dram",
        [
          Alcotest.test_case "rw uncached" `Quick test_dram_read_write_uncached;
          Alcotest.test_case "bounds" `Quick test_dram_bounds;
          Alcotest.test_case "no decay at 0s" `Quick test_dram_remanence_full_survival;
          Alcotest.test_case "decay monotonic" `Quick test_dram_remanence_decay_monotonic;
          Alcotest.test_case "calibration" `Quick test_dram_remanence_calibration;
          Alcotest.test_case "powered-off is typed" `Quick test_dram_powered_off_is_typed;
          Alcotest.test_case "power_cycle guard" `Quick test_dram_power_cycle_guards_still_powered;
        ] );
      ( "iram",
        [
          Alcotest.test_case "roundtrip" `Quick test_iram_roundtrip;
          Alcotest.test_case "no bus traffic" `Quick test_iram_no_bus_traffic;
          Alcotest.test_case "firmware clear" `Quick test_iram_firmware_clear;
          Alcotest.test_case "firmware region crash" `Quick test_iram_firmware_region_crash;
        ] );
      ( "bus",
        [
          Alcotest.test_case "monitor" `Quick test_bus_monitor_sees_uncached;
          Alcotest.test_case "counters" `Quick test_bus_counts;
          Alcotest.test_case "record snapshots data" `Quick test_bus_record_snapshots_data;
        ] );
      ( "pl310",
        [
          Alcotest.test_case "geometry" `Quick test_l2_geometry;
          Alcotest.test_case "cached rw" `Quick test_l2_cached_read_write;
          Alcotest.test_case "writeback on flush" `Quick test_l2_writeback_on_flush;
          Alcotest.test_case "eviction writes back" `Quick test_l2_eviction_writes_back;
          Alcotest.test_case "lockdown blocks allocation" `Quick test_l2_lockdown_blocks_allocation;
          Alcotest.test_case "warming targets one way" `Quick test_l2_warming_targets_single_way;
          Alcotest.test_case "locked way never written back" `Quick
            test_l2_locked_way_never_written_back;
          Alcotest.test_case "stock flush leaks locked ways" `Quick
            test_l2_stock_flush_leaks_locked_ways;
          Alcotest.test_case "invalidate skips locked" `Quick test_l2_invalidate_range_skips_locked;
          Alcotest.test_case "reset clears everything" `Quick test_l2_reset_clears_everything;
          Alcotest.test_case "hit rate" `Quick test_l2_hit_rate_counting;
          Alcotest.test_case "cross-line access" `Quick test_l2_cross_line_access;
          Alcotest.test_case "secure-world lockdown gate" `Quick
            test_l2_secure_world_needed_for_lockdown;
        ] );
      ( "dma",
        [
          Alcotest.test_case "reads DRAM not cache" `Quick test_dma_reads_dram_not_cache;
          Alcotest.test_case "write + invalidate coherence" `Quick
            test_dma_write_then_cpu_stale_until_invalidate;
          Alcotest.test_case "trustzone denial" `Quick test_dma_trustzone_denial;
          Alcotest.test_case "iram access + protection" `Quick test_dma_iram_access;
          Alcotest.test_case "bad address" `Quick test_dma_bad_address;
        ] );
      ( "trustzone",
        [
          Alcotest.test_case "world switch" `Quick test_trustzone_world_switch;
          Alcotest.test_case "restored on exception" `Quick
            test_trustzone_world_restored_on_exception;
          Alcotest.test_case "fuse gate" `Quick test_trustzone_fuse_gate;
          Alcotest.test_case "jtag fuse" `Quick test_fuse_jtag;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "regs and zero" `Quick test_cpu_regs_and_zero;
          Alcotest.test_case "irq bracket" `Quick test_cpu_irq_bracket;
          Alcotest.test_case "irq window" `Quick test_cpu_irq_window_measured;
        ] );
      ( "machine",
        [
          Alcotest.test_case "bus fault" `Quick test_machine_bus_fault;
          Alcotest.test_case "warm reboot keeps iram" `Quick test_machine_reboot_warm_preserves_iram;
          Alcotest.test_case "reflash clears iram" `Quick test_machine_reboot_reflash_clears_iram;
          Alcotest.test_case "reboot resets cache" `Quick test_machine_reboot_resets_cache;
          Alcotest.test_case "write_raw coherent" `Quick test_machine_write_raw_coherent;
          Alcotest.test_case "clock monotonic" `Quick test_machine_clock_monotonic;
          Alcotest.test_case "nexus config" `Quick test_nexus_config;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
