(** Background e-mail sync while the device is locked (the paper's
    alpine scenario, §2/§5).

    A mail client keeps fetching messages while the screen is locked.
    Sentry pages its working set through locked L2 cache: DRAM only
    ever holds ciphertext, yet the client reads, parses and stores
    messages normally.

    Run with: [dune exec examples/background_mail.exe] *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core

let mailbox_pages = 96 (* 384 KB mailbox: exceeds the 256 KB budget *)

let () =
  let system = System.boot `Tegra3 ~seed:99 in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let mail = System.spawn system ~name:"mail" ~bytes:(mailbox_pages * Page.size) in
  let region = List.hd (Address_space.regions mail.Process.aspace) in
  System.fill_region system mail region (Bytes.of_string "emptybox");
  Sentry.mark_sensitive sentry mail;
  Sentry.enable_background sentry mail;
  ignore (Sentry.lock sentry);
  Printf.printf "device locked; mail app stays schedulable (background mode)\n";

  let vm = system.System.vm in
  let dram = Dram.raw (Machine.dram machine) in
  let page_addr i = region.Address_space.vstart + (i * Page.size) in

  (* While locked, 40 messages arrive; each is written into a mailbox
     slot, and a summary line is read back (e.g. for a notification). *)
  let leaks = ref 0 in
  for msg = 0 to 39 do
    let slot = msg mod mailbox_pages in
    let body =
      Bytes.of_string (Printf.sprintf "From: alice@example.com  Subj: secret plan %02d " msg)
    in
    Vm.write vm mail ~vaddr:(page_addr slot) body;
    let summary = Vm.read vm mail ~vaddr:(page_addr slot) ~len:20 in
    assert (Bytes.equal summary (Bytes.sub body 0 20));
    (* invariant check after every message: no mail plaintext in DRAM *)
    if Bytes_util.contains dram (Bytes.of_string "alice@example.com") then incr leaks
  done;
  let bg = Option.get (Sentry.background_engine sentry) in
  let page_ins, page_outs = Background.stats bg in
  Printf.printf "synced 40 messages while locked: %d page-ins, %d page-outs, %d resident\n"
    page_ins page_outs (Background.resident_pages bg);
  Printf.printf "plaintext sightings in DRAM during sync: %d (must be 0)\n" !leaks;
  assert (!leaks = 0);

  (* Unlock and read a message back through the normal lazy path. *)
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> failwith "unlock");
  let first = Vm.read vm mail ~vaddr:(page_addr 39) ~len:20 in
  Printf.printf "after unlock, latest message header: %S\n" (Bytes.to_string first);
  print_endline "background_mail OK"
