(** Fault-injection engine.  A {!session} is an explicit handle (plan,
    PRNG, occurrence counters, firing log); hook points threaded
    through the memory/crypto stack consult the calling domain's
    {e active} session (a [Domain.DLS] slot — per-domain, so tenant
    shards on pool workers own independent sessions and start
    disarmed), and a disarmed hook is one domain-local read that
    allocates nothing.  [arm]/[disarm] are compat wrappers over
    handles, acting on the calling domain's slot. *)

type record = { point : string; kind : Fault.kind; occurrence : int }

exception Injected of record

type session

(** A fresh, inactive session over [plan]. *)
val create : Plan.t -> session

val plan_of : session -> Plan.t

(** Firings so far, oldest first. *)
val fired_of : session -> record list

(** Arrivals seen at a point in this session. *)
val occurrences_of : session -> string -> int

(** Install the [Bit_flip] corruption handler (the machine-owning
    harness flips DRAM bits). *)
val set_bit_flip_handler_of : session -> (point:string -> bits:int -> unit) -> unit

(** {2 The active session} *)

(** Make [s] the session the hook points consult. *)
val activate : session -> unit

val deactivate : unit -> unit
val current : unit -> session option

(** {2 Compat wrappers over the active session} *)

(** [arm plan] — create and activate. *)
val arm : Plan.t -> unit

val disarm : unit -> unit
val armed : unit -> bool

(** The active plan, if any. *)
val plan : unit -> Plan.t option

(** @raise Invalid_argument when not armed. *)
val set_bit_flip_handler : (point:string -> bits:int -> unit) -> unit

(** Firings so far, oldest first (empty when disarmed). *)
val fired : unit -> record list

(** Arrivals seen at a point this armed session. *)
val occurrences : string -> int

(** {2 Hook points} *)

(** Hook arrival; interrupting faults raise [Injected]. *)
val fire : string -> unit

(** Hook arrival for result-returning callers: [Dma_error] comes back
    as a value, globally-fatal kinds still raise [Injected]. *)
val poll : string -> record option

(** Canonical hook-point names (hooks and plans must agree). *)
module Points : sig
  val page_encrypted : string
  val page_decrypted : string
  val frame_transform : string
  val dm_crypt_sector : string
  val dma_read : string
  val dma_write : string
  val machine_write : string
  val all : string list
end
