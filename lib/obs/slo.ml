(** Declarative latency/throughput objectives evaluated against a
    flat metrics snapshot.

    A spec is a plain-text file, one objective per line:

    {v
    # unlock-to-first-touch tail latency, large tenants
    workloads.fleet/unlock_to_first_touch_ns{tenant_class=large} p999 <= 2.0e9
    core.lock_state/locks >= 1
    v}

    Grammar per line (blank lines and [#] comments ignored):

    {v KEY [STAT] OP THRESHOLD v}

    - [KEY] — a metric key as {!Metrics.flat} emits it (labels
      included).  For histograms, give the base key plus a [STAT].
    - [STAT] — optional: [p50], [p95], [p99], [p999], [mean], [max]
      or [count]; appended to [KEY] as ["/stat"] before lookup.
    - [OP] — [<=] or [>=].
    - [THRESHOLD] — a float.

    A missing key is a violation (an SLO on a metric nobody records
    must fail loudly, not vacuously pass). *)

type op = Le | Ge

type objective = {
  key : string; (* full flat key after STAT expansion *)
  op : op;
  threshold : float;
  line : int; (* 1-based spec line, for error messages *)
}

type outcome = {
  objective : objective;
  actual : float option; (* None: key absent from the snapshot *)
  ok : bool;
}

type report = { outcomes : outcome list; violations : int }

let op_name = function Le -> "<=" | Ge -> ">="

let stats = [ "p50"; "p95"; "p99"; "p999"; "mean"; "max"; "count" ]

let parse_line ~line s =
  let s = match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s in
  let toks =
    String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) s)
    |> List.filter (fun t -> t <> "")
  in
  match toks with
  | [] -> Ok None
  | _ -> (
      let key, rest =
        match toks with
        | key :: stat :: rest when List.mem stat stats -> (key ^ "/" ^ stat, rest)
        | key :: rest -> (key, rest)
        | [] -> ("", [])
      in
      match rest with
      | [ op; threshold ] -> (
          let op = match op with "<=" -> Some Le | ">=" -> Some Ge | _ -> None in
          match (op, float_of_string_opt threshold) with
          | Some op, Some threshold -> Ok (Some { key; op; threshold; line })
          | None, _ -> Error (Printf.sprintf "line %d: operator must be <= or >=" line)
          | _, None -> Error (Printf.sprintf "line %d: bad threshold %S" line threshold))
      | _ ->
          Error
            (Printf.sprintf "line %d: expected 'KEY [STAT] <=|>= THRESHOLD', got %S" line
               (String.trim s)))

(** Parse a spec document.  [Error] carries the first malformed line. *)
let parse doc =
  let lines = String.split_on_char '\n' doc in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse_line ~line:i l with
        | Ok None -> go (i + 1) acc rest
        | Ok (Some o) -> go (i + 1) (o :: acc) rest
        | Error e -> Error e)
  in
  go 1 [] lines

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | doc -> parse doc
  | exception Sys_error e -> Error e

(** Evaluate objectives against flat [(key, value)] pairs. *)
let evaluate objectives pairs =
  let outcomes =
    List.map
      (fun o ->
        match List.assoc_opt o.key pairs with
        | None -> { objective = o; actual = None; ok = false }
        | Some v ->
            let ok = match o.op with Le -> v <= o.threshold | Ge -> v >= o.threshold in
            { objective = o; actual = Some v; ok })
      objectives
  in
  { outcomes; violations = List.length (List.filter (fun r -> not r.ok) outcomes) }

let ok report = report.violations = 0

let outcome_json r =
  Json_out.Obj
    [
      ("key", Json_out.Str r.objective.key);
      ("op", Json_out.Str (op_name r.objective.op));
      ("threshold", Json_out.Float r.objective.threshold);
      ("actual", match r.actual with Some v -> Json_out.Float v | None -> Json_out.Null);
      ("ok", Json_out.Bool r.ok);
    ]

let report_json report =
  Json_out.Obj
    [
      ("ok", Json_out.Bool (ok report));
      ("objectives", Json_out.Int (List.length report.outcomes));
      ("violations", Json_out.Int report.violations);
      ("results", Json_out.List (List.map outcome_json report.outcomes));
    ]

let pp_outcome ppf r =
  let actual =
    match r.actual with Some v -> Printf.sprintf "%g" v | None -> "(missing)"
  in
  Fmt.pf ppf "%s %-60s %s %g  actual %s"
    (if r.ok then "PASS" else "FAIL")
    r.objective.key (op_name r.objective.op) r.objective.threshold actual

let pp_report ppf report =
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_outcome r) report.outcomes;
  Fmt.pf ppf "%d objective(s), %d violation(s)@." (List.length report.outcomes) report.violations
