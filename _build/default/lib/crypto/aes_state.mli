(** Classification and layout of AES's working state (§6.1, Table 4):
    Secret (key material), Public (counters, chaining vector) and
    Access-protected (lookup tables whose {e access pattern} leaks).
    Doubles as the instrumented cipher's concrete context layout. *)

type sensitivity = Secret | Public | Access_protected

val pp_sensitivity : Format.formatter -> sensitivity -> unit

type field = { name : string; size : int; sensitivity : sensitivity; offset : int }

(** The context fields in memory order (word-aligned offsets). *)
val layout : Aes_key.size -> field list

(** @raise Invalid_argument for an unknown field name. *)
val find : field list -> string -> field

(** Raw state bytes — the Table 4 sum, no padding. *)
val total_size : Aes_key.size -> int

(** Context footprint in memory, padding included (fits one 4 KB
    page for every key size). *)
val context_bytes : Aes_key.size -> int

(** (secret, public, access-protected) byte totals. *)
val by_sensitivity : Aes_key.size -> int * int * int

(** Bytes that must live on-SoC (secret + access-protected). *)
val onsoc_bytes : Aes_key.size -> int
