(** The "generic AES" baseline: a stock software cipher whose context
    — key schedule included — is allocated in DRAM, with no register
    or interrupt discipline.  This is the cipher every attack
    experiment breaks. *)

open Sentry_soc

type t

(** [create ?uncached machine ~ctx_base ~variant] places the cipher
    context at a DRAM address.  [uncached] forces all context accesses
    onto the external bus (freshly-rebooted / cold-cache victim).
    @raise Invalid_argument if [ctx_base] is not in DRAM. *)
val create : ?uncached:bool -> Machine.t -> ctx_base:int -> variant:Perf.variant -> t

(** Key expansion — writes the full schedule into (simulated) DRAM. *)
val set_key : t -> Bytes.t -> unit

(** Instrumented CBC paths: every state access through DRAM, round
    state live in unprotected CPU registers. *)
val encrypt_instrumented : t -> iv:Bytes.t -> Bytes.t -> Bytes.t

val decrypt_instrumented : t -> iv:Bytes.t -> Bytes.t -> Bytes.t

(** Bulk path: native transform + modeled cost; the schedule is still
    in DRAM and the registers still unprotected. *)
val bulk : t -> dir:[ `Encrypt | `Decrypt ] -> iv:Bytes.t -> Bytes.t -> Bytes.t

(** Register with a [Crypto_api] at the stock priority (100). *)
val register : t -> Crypto_api.t -> unit

(** Register the XTS flavour under "xts(aes)" (32-byte keys; the IV
    argument carries the tweak block). *)
val register_xts : t -> Crypto_api.t -> unit
