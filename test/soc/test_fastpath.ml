(* Differential tests for the zero-allocation scatter-gather memory
   path: the [_into]/[_from] APIs must leave every piece of simulated
   state — bytes, clock, energy, bus statistics, cache statistics,
   taint shadows — bit-identical to the allocating [read]/[write] pair
   they replace.  Only host wall-clock and GC pressure may differ. *)

open Sentry_util
open Sentry_soc

let check_bytes = Alcotest.(check bytes)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 0.0)) (* exact: bit-identity, not tolerance *)

let mk () = Machine.create ~seed:7 (Machine.tegra3 ~dram_size:(4 * Units.mib) ())

let payload n c = Bytes.init n (fun i -> Char.chr ((Char.code c + (i * 7)) land 0xff))

(* Drive one scripted workload against a fresh machine.  With
   [use_into] the script goes through the scatter-gather API, always
   at a non-zero view offset inside an oversized buffer, so the view
   arithmetic is exercised; otherwise it uses the allocating API.  The
   script covers line-straddling accesses, a page-sized transfer,
   taint-labelled stores, lockdown + masked flush, and single bytes. *)
let drive ~taint ~use_into =
  let m = mk () in
  if taint then Machine.enable_taint m;
  let base = (Machine.dram_region m).Memmap.base in
  let do_write addr b =
    if use_into then begin
      let buf = Bytes.make (Bytes.length b + 13) '\xaa' in
      Bytes.blit b 0 buf 5 (Bytes.length b);
      Machine.write_from m addr buf ~off:5 ~len:(Bytes.length b)
    end
    else Machine.write m addr b
  in
  let do_read addr len =
    if use_into then begin
      let buf = Bytes.make (len + 9) '\x00' in
      Machine.read_into m addr buf ~off:4 ~len;
      Bytes.sub buf 4 len
    end
    else Machine.read m addr len
  in
  do_write (base + 30) (payload 100 'a') (* straddles line boundaries *);
  do_write (base + 4096) (payload 4096 'b') (* page-sized *);
  Machine.with_taint m Taint.Secret_cleartext (fun () ->
      do_write (base + 8192 + 17) (payload 515 'c'));
  let r1 = do_read (base + 30) 100 in
  let r2 = do_read (base + 4096) 4096 in
  Pl310.set_lockdown (Machine.l2 m) 0b1;
  Pl310.set_flush_mask (Machine.l2 m) 0b1;
  Machine.with_taint m Taint.Ciphertext (fun () -> do_write (base + 16384 + 3) (payload 61 'd'));
  Pl310.flush_masked (Machine.l2 m);
  let r3 = do_read (base + 8192 + 17) 515 in
  Machine.write_byte m (base + 100_000) 'z';
  let rb = Bytes.make 1 (Machine.read_byte m (base + 100_000)) in
  (m, Bytes.concat Bytes.empty [ r1; r2; r3; rb ])

let assert_identical m_a m_b =
  checkf "simulated clock" (Machine.now m_a) (Machine.now m_b);
  checkf "energy total" (Energy.total (Machine.energy m_a)) (Energy.total (Machine.energy m_b));
  Alcotest.(check (list (pair string (float 0.0))))
    "energy categories"
    (Energy.categories (Machine.energy m_a))
    (Energy.categories (Machine.energy m_b));
  let sa = Pl310.stats (Machine.l2 m_a) and sb = Pl310.stats (Machine.l2 m_b) in
  checki "l2 hits" sa.Pl310.hits sb.Pl310.hits;
  checki "l2 misses" sa.Pl310.misses sb.Pl310.misses;
  checki "l2 writebacks" sa.Pl310.writebacks sb.Pl310.writebacks;
  checki "l2 bypasses" sa.Pl310.bypasses sb.Pl310.bypasses;
  let ta, ra, wa = Bus.stats (Machine.bus m_a) and tb, rb, wb = Bus.stats (Machine.bus m_b) in
  checki "bus transactions" ta tb;
  checki "bus bytes read" ra rb;
  checki "bus bytes written" wa wb;
  check_bytes "dram contents" (Dram.snapshot (Machine.dram m_a)) (Dram.snapshot (Machine.dram m_b));
  match (Dram.shadow (Machine.dram m_a), Dram.shadow (Machine.dram m_b)) with
  | Some a, Some b -> check_bytes "dram taint shadow" (Bytes.copy a) (Bytes.copy b)
  | None, None -> ()
  | _ -> Alcotest.fail "taint enabled on only one machine"

let test_differential_plain () =
  let m_a, bytes_a = drive ~taint:false ~use_into:false in
  let m_b, bytes_b = drive ~taint:false ~use_into:true in
  check_bytes "read-back bytes" bytes_a bytes_b;
  assert_identical m_a m_b

let test_differential_tainted () =
  let m_a, bytes_a = drive ~taint:true ~use_into:false in
  let m_b, bytes_b = drive ~taint:true ~use_into:true in
  check_bytes "read-back bytes" bytes_a bytes_b;
  assert_identical m_a m_b

(* The write-back path passes the live line array to DRAM as a view
   instead of copying it.  The bus monitor's transaction and the DRAM
   contents must still be snapshots: mutating the line after the
   write-back may not alter either retroactively. *)
let test_writeback_no_alias () =
  let m = mk () in
  let base = (Machine.dram_region m).Memmap.base in
  let captured = ref [] in
  let detach =
    Bus.attach_monitor (Machine.bus m) (fun txn ->
        if txn.Bus.op = Bus.Write then captured := txn :: !captured)
  in
  Machine.write m base (Bytes.make 32 'A');
  Pl310.flush_masked (Machine.l2 m) (* writes the 'A' line back *);
  Machine.write m base (Bytes.make 32 'B') (* re-fills and mutates the same line *);
  detach ();
  let wb =
    match List.find_opt (fun txn -> txn.Bus.addr = base && txn.Bus.initiator = `L2) !captured with
    | Some txn -> txn
    | None -> Alcotest.fail "no write-back transaction captured"
  in
  check_bytes "monitor still sees the written-back bytes" (Bytes.make 32 'A') wb.Bus.data;
  check_bytes "dram still holds the written-back bytes" (Bytes.make 32 'A')
    (Bytes.sub (Dram.raw (Machine.dram m)) 0 32)

(* Byte accessors share the machine's scratch buffer; they must still
   behave like 1-byte reads/writes. *)
let test_byte_accessors () =
  let m = mk () in
  let base = (Machine.dram_region m).Memmap.base in
  Machine.write m base (Bytes.of_string "hello");
  Alcotest.(check char) "read_byte" 'e' (Machine.read_byte m (base + 1));
  Machine.write_byte m (base + 1) 'u';
  check_bytes "write_byte lands" (Bytes.of_string "hullo") (Machine.read m base 5)

(* Allocation regression: the warm cached path must stay allocation
   free.  The ceiling is generous (the old path allocated hundreds of
   words per access; the fast path allocates none) so the test only
   trips on a real regression, not on compiler-version noise. *)
let test_warm_path_allocation_ceiling () =
  let m = mk () in
  let base = (Machine.dram_region m).Memmap.base in
  let buf = Bytes.create 4096 in
  Machine.write_from m base buf ~off:0 ~len:4096 (* warm the lines *);
  let mw0 = Gc.minor_words () in
  for _ = 1 to 64 do
    Machine.read_into m base buf ~off:0 ~len:4096;
    Machine.write_from m base buf ~off:0 ~len:4096
  done;
  let per_page = (Gc.minor_words () -. mw0) /. 128.0 in
  if per_page > 64.0 then
    Alcotest.failf "warm 4 KB access allocated %.1f minor words (ceiling 64)" per_page

let () =
  Alcotest.run "sentry_soc_fastpath"
    [
      ( "differential",
        [
          Alcotest.test_case "into = allocating (taint off)" `Quick test_differential_plain;
          Alcotest.test_case "into = allocating (taint on)" `Quick test_differential_tainted;
        ] );
      ( "aliasing",
        [
          Alcotest.test_case "write-back snapshots" `Quick test_writeback_no_alias;
          Alcotest.test_case "byte accessors" `Quick test_byte_accessors;
        ] );
      ( "allocation",
        [ Alcotest.test_case "warm path ceiling" `Quick test_warm_path_allocation_ceiling ] );
    ]
