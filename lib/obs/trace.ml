(** The trace recorder: a bounded ring buffer of [Event.t].

    A recorder is an explicit {!Recorder.t} handle — the owner of a
    simulated machine creates one, threads it to whatever harvests
    events, and reads it back.  Handles are what the multicore sharded
    fleet needs: one recorder per tenant shard, merged after the run.

    Hot-path emitters deep in the memory system still go through the
    {e ambient} recorder — a single installed handle behind one ref
    read — because threading a handle through every cache access would
    cost the zero-allocation fast path its shape.  Mirroring the
    [Config.track_taint] pattern, nothing is allocated and the guard
    is a single physical-equality test until a recorder is installed:

    {[
      if Trace.on () then
        Trace.emit ~ts:(Clock.now clock) ~cat:Event.Bus ~subsystem:"soc.bus" "read" ~args:[...]
    ]}

    so the disabled path neither allocates the argument list nor
    builds the event.

    On overflow the ring keeps the {e newest} events (oldest are
    overwritten) and counts drops — a trace of a long run always ends
    with the most recent window plus an honest drop counter. *)

type t = {
  buf : Event.t option array;
  capacity : int;
  mutable total : int; (* events ever emitted into this recorder *)
  counts : int array; (* per-category emission counts (never dropped) *)
  mutable now : unit -> float; (* simulated-time source for clockless emitters *)
}

let default_capacity = 1 lsl 16

let make ?(capacity = default_capacity) ?(now = fun () -> 0.0) () =
  if capacity <= 0 then invalid_arg "Trace.Recorder.create: capacity must be positive";
  {
    buf = Array.make capacity None;
    capacity;
    total = 0;
    counts = Array.make Event.num_categories 0;
    now;
  }

let set_time_source_r t f = t.now <- f
let now_r t = t.now ()

let emit_r t ?ts ~cat ~subsystem ?(phase = Event.Instant) ?(args = []) name =
  let ts_ns = match ts with Some ts -> ts | None -> t.now () in
  let e = { Event.ts_ns; cat; subsystem; name; phase; args } in
  t.buf.(t.total mod t.capacity) <- Some e;
  t.total <- t.total + 1;
  let i = Event.category_index cat in
  t.counts.(i) <- t.counts.(i) + 1

let span_r t ?(args = []) ~cat ~subsystem ~start_ns ~end_ns name =
  emit_r t ~ts:start_ns ~cat ~subsystem ~phase:(Event.Complete (end_ns -. start_ns)) ~args name

type stats = { emitted : int; dropped : int; capacity : int }

let stats_r t =
  { emitted = t.total; dropped = max 0 (t.total - t.capacity); capacity = t.capacity }

let events_r t =
  let n = min t.total t.capacity in
  let first = if t.total <= t.capacity then 0 else t.total mod t.capacity in
  List.init n (fun i ->
      match t.buf.((first + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let category_counts_r t =
  List.filter_map
    (fun c ->
      let n = t.counts.(Event.category_index c) in
      if n = 0 then None else Some (c, n))
    Event.categories

let clear_r t =
  Array.fill t.buf 0 t.capacity None;
  t.total <- 0;
  Array.fill t.counts 0 Event.num_categories 0

module Recorder = struct
  type nonrec t = t

  let create = make
  let set_time_source = set_time_source_r
  let now = now_r
  let emit = emit_r
  let span = span_r
  let stats = stats_r
  let events = events_r
  let category_counts = category_counts_r
  let clear = clear_r
end

(* ----------------------- the ambient recorder --------------------- *)

(* The one deliberate global in lib/obs (allowlisted in lint.allow):
   the compat shim behind the module-level emitters.  Everything it
   does is a one-liner over the handle API above, so callers that
   thread explicit recorders never touch it. *)
let current : t option ref = ref None

let install r = current := Some r
let uninstall () = current := None
let installed () = !current

let on () = !current <> None

let start ?capacity ?now () = install (make ?capacity ?now ())

(** Idempotent [start]: keeps an already-installed recorder (and its
    events) instead of replacing it. *)
let ensure ?capacity ?now () = if not (on ()) then start ?capacity ?now ()

let stop () = uninstall ()

let set_time_source f = match !current with Some t -> set_time_source_r t f | None -> ()

let now () = match !current with Some t -> now_r t | None -> 0.0

let emit ?ts ~cat ~subsystem ?phase ?args name =
  match !current with
  | None -> ()
  | Some t -> emit_r t ?ts ~cat ~subsystem ?phase ?args name

(** Emit a span given its boundaries (simulated ns). *)
let span ?args ~cat ~subsystem ~start_ns ~end_ns name =
  match !current with
  | None -> ()
  | Some t -> span_r t ?args ~cat ~subsystem ~start_ns ~end_ns name

let stats () =
  match !current with
  | None -> { emitted = 0; dropped = 0; capacity = 0 }
  | Some t -> stats_r t

(** Retained events, oldest first. *)
let events () = match !current with None -> [] | Some t -> events_r t

(** Per-category emission counts (includes dropped events). *)
let category_counts () = match !current with None -> [] | Some t -> category_counts_r t

(** Drop every retained event and reset the counters, keeping the
    recorder installed. *)
let clear () = match !current with None -> () | Some t -> clear_r t
