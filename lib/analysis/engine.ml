(** The checker engine: wires a checker set into a live [Sentry.t]'s
    machine and accumulates violations.

    Event sources:
    - lock-state transitions ([Lock_state.on_transition]);
    - every external-bus transaction ([Bus.attach_monitor]);
    - every dirty-line writeback ([Pl310.set_writeback_hook]);
    - every device-initiated DMA read ([Dma.set_read_hook]);
    - explicit sweeps ([check_now]).

    Checkers are read-only, but a content-based rule may legitimately
    touch the simulated memory system (e.g. reading the root key back
    from on-SoC storage); the [dispatching] latch drops any events
    such an access would generate, so evaluation never recurses. *)

open Sentry_soc
open Sentry_core

type t = {
  sentry : Sentry.t;
  checkers : Checker.packed list;
  mutable violations : Checker.violation list; (* newest first *)
  mutable events_seen : int;
  mutable detach_bus : (unit -> unit) option;
  mutable dispatching : bool;
}

let dispatch t event =
  if not t.dispatching then begin
    t.dispatching <- true;
    Fun.protect
      ~finally:(fun () -> t.dispatching <- false)
      (fun () ->
        t.events_seen <- t.events_seen + 1;
        let vs = List.concat_map (Checker.run_packed t.sentry event) t.checkers in
        if Sentry_obs.Trace.on () then
          List.iter
            (fun v ->
              Sentry_obs.Trace.emit ~ts:v.Checker.time_ns ~cat:Sentry_obs.Event.Taint
                ~subsystem:"analysis.engine" "taint-violation"
                ~args:
                  [
                    ("checker", Sentry_obs.Event.Str v.Checker.checker);
                    ("message", Sentry_obs.Event.Str v.Checker.message);
                  ])
            vs;
        t.violations <- List.rev_append vs t.violations)
  end

(** [attach ?checkers sentry] — hook the engine into the machine.
    Enables taint tracking if the configuration did not already (the
    shadow stores may then miss writes that predate this call). *)
let attach ?(checkers = Checkers.all) sentry =
  let t =
    {
      sentry;
      checkers;
      violations = [];
      events_seen = 0;
      detach_bus = None;
      dispatching = false;
    }
  in
  let m = System.machine (Sentry.system sentry) in
  if not (Machine.taint_enabled m) then Machine.enable_taint m;
  t.detach_bus <-
    Some (Bus.attach_monitor (Machine.bus m) (fun txn -> dispatch t (Checker.Bus_txn txn)));
  Pl310.set_writeback_hook (Machine.l2 m) (fun ~way ~addr ~locked ->
      dispatch t (Checker.Eviction { way; addr; locked }));
  Dma.set_read_hook (Machine.dma m) (fun ~addr ~len ~taint ->
      dispatch t (Checker.Dma_read { addr; len; taint }));
  Lock_state.on_transition (Sentry.lock_state sentry) (fun ~old_state ~new_state ->
      dispatch t (Checker.Transition { old_state; new_state }));
  t

let detach t =
  let m = System.machine (Sentry.system t.sentry) in
  (match t.detach_bus with
  | Some f ->
      f ();
      t.detach_bus <- None
  | None -> ());
  Pl310.clear_writeback_hook (Machine.l2 m);
  Dma.clear_read_hook (Machine.dma m);
  Lock_state.clear_observers (Sentry.lock_state t.sentry)

(** Run every checker against the machine as it stands. *)
let check_now t = dispatch t Checker.On_demand

(** All recorded violations, oldest first. *)
let violations t = List.rev t.violations

let violation_count t = List.length t.violations
let events_seen t = t.events_seen
let clear t = t.violations <- []

(** Violations recorded against a specific rule. *)
let violations_of t name =
  List.filter (fun v -> String.equal v.Checker.checker name) (violations t)

(** Human-readable report: per-rule counts, then each violation. *)
let report t =
  let buf = Buffer.create 256 in
  let vs = violations t in
  Buffer.add_string buf
    (Printf.sprintf "%d violation(s) over %d event(s)\n" (List.length vs) t.events_seen);
  List.iter
    (fun (Checker.Packed (module C)) ->
      let n = List.length (violations_of t C.name) in
      Buffer.add_string buf (Printf.sprintf "  %-45s %s\n" C.name
           (if n = 0 then "ok" else Printf.sprintf "%d VIOLATION(S)" n)))
    t.checkers;
  List.iter (fun v -> Buffer.add_string buf ("  ! " ^ Checker.violation_to_string v ^ "\n")) vs;
  Buffer.contents buf
