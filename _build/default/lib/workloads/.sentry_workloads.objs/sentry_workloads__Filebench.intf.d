lib/workloads/filebench.mli: Buffer_cache Ramfs Sentry_core Sentry_kernel
