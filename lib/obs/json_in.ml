(** Minimal dependency-free JSON parser; see the interface for the
    supported subset. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char b c;
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char b '\r';
              advance ();
              go ()
          | Some ('b' | 'f') ->
              advance ();
              go ()
          | Some 'u' ->
              (* \uXXXX: decoded only for the ASCII range; anything
                 wider is replaced, which is fine for metric keys. *)
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              Buffer.add_char b (if code < 0x80 then Char.chr code else '?');
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "empty input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
