(** Minimal dependency-free JSON parser — the read-side counterpart of
    {!Json_out}.  Covers the subset the repo's own tooling emits:
    objects, arrays, strings with the common escapes, numbers,
    booleans and null.  Used by [bench --compare] to read a committed
    [BENCH_sentry.json] snapshot back in. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(** [parse s] parses one JSON document.  @raise Parse_error on
    malformed input or trailing garbage. *)
val parse : string -> t

(** [member k j] is the value bound to key [k] when [j] is an object
    containing it. *)
val member : string -> t -> t option

(** Typed projections; [None] on a shape mismatch. *)
val to_float : t -> float option

val to_string : t -> string option
val to_list : t -> t list option
