(** Fig 11: AES throughput on 4 KB pages across every variant —

    See the implementation for methodology notes. *)

val run : unit -> Sentry_util.Table.t list
