(** AES key schedule (FIPS-197 §5.2) for 128/192/256-bit keys. *)

type size = Aes_128 | Aes_192 | Aes_256

let size_of_bytes = function
  | 16 -> Aes_128
  | 24 -> Aes_192
  | 32 -> Aes_256
  | n -> invalid_arg (Printf.sprintf "Aes_key: bad key length %d" n)

let key_bytes = function Aes_128 -> 16 | Aes_192 -> 24 | Aes_256 -> 32
let nk = function Aes_128 -> 4 | Aes_192 -> 6 | Aes_256 -> 8
let rounds = function Aes_128 -> 10 | Aes_192 -> 12 | Aes_256 -> 14

type t = {
  size : size;
  nr : int;
  words : int array; (* 4*(nr+1) round-key words, big-endian packed *)
}

let sub_word w =
  let s i = Aes_tables.sbox.((w lsr i) land 0xff) in
  (s 24 lsl 24) lor (s 16 lsl 16) lor (s 8 lsl 8) lor s 0

let rot_word w = ((w lsl 8) lor (w lsr 24)) land 0xffffffff

(** [expand key] computes the full schedule from a raw 16/24/32-byte
    key. *)
let expand key =
  let size = size_of_bytes (Bytes.length key) in
  let nk = nk size and nr = rounds size in
  let total = 4 * (nr + 1) in
  let w = Array.make total 0 in
  for i = 0 to nk - 1 do
    w.(i) <-
      (Char.code (Bytes.get key (4 * i)) lsl 24)
      lor (Char.code (Bytes.get key ((4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get key ((4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get key ((4 * i) + 3))
  done;
  for i = nk to total - 1 do
    let temp = w.(i - 1) in
    let temp =
      if i mod nk = 0 then sub_word (rot_word temp) lxor (Aes_tables.rcon.((i / nk) - 1) lsl 24)
      else if nk > 6 && i mod nk = 4 then sub_word temp
      else temp
    in
    w.(i) <- w.(i - nk) lxor temp
  done;
  { size; nr; words = w }

(** Round key [r] as 16 bytes (4 words). *)
let round_key t r =
  let b = Bytes.create 16 in
  for c = 0 to 3 do
    let w = t.words.((4 * r) + c) in
    Bytes.set b (4 * c) (Char.chr ((w lsr 24) land 0xff));
    Bytes.set b ((4 * c) + 1) (Char.chr ((w lsr 16) land 0xff));
    Bytes.set b ((4 * c) + 2) (Char.chr ((w lsr 8) land 0xff));
    Bytes.set b ((4 * c) + 3) (Char.chr (w land 0xff))
  done;
  b

(** The whole schedule serialised, 16*(nr+1) bytes — the layout the
    instrumented cipher stores in (simulated) memory, and the layout
    the cold-boot key-schedule scanner searches for. *)
let serialize t =
  let b = Bytes.create (16 * (t.nr + 1)) in
  for r = 0 to t.nr do
    Bytes.blit (round_key t r) 0 b (16 * r) 16
  done;
  b

let schedule_bytes t = 16 * (t.nr + 1)

(** Check whether [b] at [off] satisfies the AES-128 key-expansion
    recurrence for a full 176-byte schedule.  This is the structural
    test the Halderman-style memory scanner uses: a key schedule is
    44 words where w[i] = w[i-4] xor f(w[i-1]). *)
let is_valid_128_schedule b off =
  if off + 176 > Bytes.length b then false
  else begin
    let word i =
      (Char.code (Bytes.get b (off + (4 * i))) lsl 24)
      lor (Char.code (Bytes.get b (off + (4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get b (off + (4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get b (off + (4 * i) + 3))
    in
    (* Reject the degenerate all-zero buffer, which trivially satisfies
       nothing (w4 would need the rcon term). *)
    let rec check i =
      if i = 44 then true
      else
        let temp = word (i - 1) in
        let temp =
          if i mod 4 = 0 then sub_word (rot_word temp) lxor (Aes_tables.rcon.((i / 4) - 1) lsl 24)
          else temp
        in
        if word i <> word (i - 4) lxor temp then false else check (i + 1)
    in
    check 4
  end

(** Extract the original 16-byte key from a schedule found in memory. *)
let key_of_128_schedule b off = Bytes.sub b off 16
