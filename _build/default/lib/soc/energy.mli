(** Energy accounting (joules) with per-category attribution. *)

type t

val create : unit -> t
val charge : t -> category:string -> float -> unit
val total : t -> float

(** Joules charged to one category so far (0 if never charged). *)
val category : t -> string -> float

(** All (category, joules) pairs, sorted by name. *)
val categories : t -> (string * float) list

val reset : t -> unit

(** Run a thunk and return its result with the energy charged to the
    category during the call. *)
val metered : t -> category:string -> (unit -> 'a) -> 'a * float

val pp : Format.formatter -> t -> unit
