(** Fig 4: performance overhead upon device lock (encrypt-on-lock). 

    See the implementation for methodology notes. *)

val run : unit -> Sentry_util.Table.t list
