lib/core/onsoc.mli: Config Iram_alloc Locked_cache Machine Sentry_soc
