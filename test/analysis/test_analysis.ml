open Sentry_soc
open Sentry_core
open Sentry_analysis

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------ Taint ----------------------------- *)

let test_taint_lattice () =
  let open Taint in
  checkb "join secret" true (join Ciphertext Secret_cleartext = Secret_cleartext);
  checkb "join public" true (join Public Public = Public);
  checkb "join sym" true (join Ciphertext Public = join Public Ciphertext);
  checkb "rank order" true (rank Public < rank Ciphertext && rank Ciphertext < rank Secret_cleartext);
  List.iter (fun l -> checkb "char roundtrip" true (of_char (to_char l) = l))
    [ Public; Ciphertext; Secret_cleartext ]

let test_taint_runs () =
  let sh = Taint.create_shadow 16 in
  Taint.fill sh 2 3 Taint.Secret_cleartext;
  Taint.fill sh 10 4 Taint.Secret_cleartext;
  Alcotest.(check (list (pair int int))) "runs" [ (2, 3); (10, 4) ]
    (Taint.runs sh ~level:Taint.Secret_cleartext);
  checkb "max_range" true (Taint.max_range sh 0 16 = Taint.Secret_cleartext);
  checkb "window exact" true
    (Taint.fuzzy_window sh ~level:Taint.Secret_cleartext ~len:3 ~min_match:1.0);
  checkb "window too wide" false
    (Taint.fuzzy_window sh ~level:Taint.Secret_cleartext ~len:8 ~min_match:0.9)

(* -------------------------- Propagation --------------------------- *)

let boot_tainted () =
  let system = System.boot `Tegra3 ~seed:7 in
  let m = System.machine system in
  Machine.enable_taint m;
  (system, m)

let frame system = Sentry_kernel.Frame_alloc.alloc system.System.frames

let test_ambient_taint_through_cache () =
  let system, m = boot_tainted () in
  let addr = frame system in
  let blob = Bytes.make 64 's' in
  Machine.with_taint m Taint.Secret_cleartext (fun () -> Machine.write m addr blob);
  checkb "cached write tainted" true (Machine.taint_of m addr 64 = Taint.Secret_cleartext);
  (* force the dirty line out: the DRAM shadow must inherit it *)
  Pl310.flush_masked (Machine.l2 m);
  Pl310.invalidate_range (Machine.l2 m) addr 64;
  checkb "taint survives writeback" true (Machine.taint_of m addr 64 = Taint.Secret_cleartext);
  (* ... and a re-fill brings it back into the line shadow *)
  ignore (Machine.read m addr 64);
  checkb "taint survives refill" true (Machine.taint_of m addr 64 = Taint.Secret_cleartext)

let test_relabel_on_encrypt () =
  let system, m = boot_tainted () in
  let addr = frame system in
  Machine.with_taint m Taint.Secret_cleartext (fun () ->
      Machine.write m addr (Bytes.make 64 's'));
  Machine.with_taint m Taint.Ciphertext (fun () -> Machine.write m addr (Bytes.make 64 'c'));
  checkb "ciphertext overwrote" true (Machine.taint_of m addr 64 = Taint.Ciphertext);
  Machine.write m addr (Bytes.make 64 'p');
  checkb "public overwrote" true (Machine.taint_of m addr 64 = Taint.Public)

let test_write_raw_uses_ambient () =
  let system, m = boot_tainted () in
  let addr = frame system in
  Machine.with_taint m Taint.Secret_cleartext (fun () ->
      Machine.write_raw m addr (Bytes.make 32 's'));
  checkb "raw write tainted" true (Machine.taint_of m addr 32 = Taint.Secret_cleartext)

let test_registers_carry_taint () =
  let _, m = boot_tainted () in
  let cpu = Machine.cpu m in
  Cpu.load_regs cpu ~taint:Taint.Secret_cleartext (Bytes.make 32 'k');
  checkb "loaded" true (Cpu.reg_taint cpu = Taint.Secret_cleartext);
  Cpu.onsoc_enable_irq cpu;
  checkb "scrubbed" true (Cpu.reg_taint cpu = Taint.Public);
  Cpu.set_zeroing_enabled cpu false;
  Cpu.load_regs cpu ~taint:Taint.Secret_cleartext (Bytes.make 32 'k');
  Cpu.onsoc_enable_irq cpu;
  checkb "fault keeps taint" true (Cpu.reg_taint cpu = Taint.Secret_cleartext)

let test_key_writes_are_tagged () =
  let system = System.boot `Tegra3 ~seed:9 in
  let config = { (Config.default `Tegra3) with Config.track_taint = true } in
  let _sentry = Sentry.install system config in
  let m = System.machine system in
  (* the root key lives in locked L2: its line shadow must be secret *)
  let found = ref false in
  Pl310.iter_resident (Machine.l2 m) (fun ~way:_ ~addr data ->
      ignore data;
      if Pl310.taint_range (Machine.l2 m) addr 16 = Taint.Secret_cleartext then found := true);
  checkb "key tagged secret somewhere on-SoC" true !found

(* ------------------------- Scenario: clean ------------------------ *)

let test_clean_scenario platform () =
  let r = Scenario.run platform in
  checki "no violations" 0 (List.length r.Scenario.violations);
  checkb "events flowed" true (Engine.events_seen r.Scenario.engine > 0);
  checkb "pages were encrypted" true (r.Scenario.lock_stats.Encrypt_on_lock.pages_encrypted > 0)

(* ------------------------- Scenario: faults ----------------------- *)

let test_fault fault () =
  let r = Scenario.run ~fault (Scenario.fault_platform fault) in
  checkb "violations found" true (r.Scenario.violations <> []);
  checkb "expected checker tripped" true (Scenario.tripped_expected r)

let test_fault_names_precise () =
  (* each fault's violation list names the expected checker *)
  List.iter
    (fun fault ->
      let expected = Option.get (Scenario.expected_checker fault) in
      let r = Scenario.run ~fault (Scenario.fault_platform fault) in
      checkb (expected ^ " present") true
        (List.exists (fun v -> v.Checker.checker = expected) r.Scenario.violations))
    Scenario.faults

(* ------------------------ Engine plumbing ------------------------- *)

let test_engine_detach_stops_events () =
  let system = System.boot `Tegra3 ~seed:5 in
  let config = { (Config.default `Tegra3) with Config.track_taint = true } in
  let sentry = Sentry.install system config in
  let engine = Engine.attach sentry in
  let app = System.spawn system ~name:"a" ~bytes:8192 in
  Sentry.mark_sensitive sentry app;
  (match Sentry_kernel.Address_space.find_region app.Sentry_kernel.Process.aspace ~name:"main" with
  | Some region -> System.fill_region system app region (Bytes.of_string "traffic!")
  | None -> ());
  let seen_attached = Engine.events_seen engine in
  checkb "bus events observed" true (seen_attached > 0);
  Engine.detach engine;
  ignore (Sentry.lock sentry);
  checki "no events after detach" seen_attached (Engine.events_seen engine)

let test_violation_report_mentions_rule () =
  let r =
    Scenario.run ~fault:Scenario.Skip_register_clearing
      (Scenario.fault_platform Scenario.Skip_register_clearing)
  in
  let report = Engine.report r.Scenario.engine in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  checkb "report names rule" true (contains report "registers-clean-on-suspend")

(* ------------------------ Verdict cross-check --------------------- *)

let test_verdict_agreement () =
  let cells = Verdict_check.agreement () in
  checki "nine cells" 9 (List.length cells);
  List.iter
    (fun c ->
      checkb
        (Sentry_attacks.Verdict.attack_name c.Verdict_check.attack
        ^ " vs "
        ^ Sentry_attacks.Verdict.storage_name c.Verdict_check.storage)
        true (Verdict_check.cell_agrees c))
    cells

let () =
  Alcotest.run "analysis"
    [
      ( "taint",
        [
          Alcotest.test_case "lattice" `Quick test_taint_lattice;
          Alcotest.test_case "runs and windows" `Quick test_taint_runs;
          Alcotest.test_case "ambient through cache" `Quick test_ambient_taint_through_cache;
          Alcotest.test_case "relabel on encrypt" `Quick test_relabel_on_encrypt;
          Alcotest.test_case "write_raw ambient" `Quick test_write_raw_uses_ambient;
          Alcotest.test_case "register taint" `Quick test_registers_carry_taint;
          Alcotest.test_case "key writes tagged" `Quick test_key_writes_are_tagged;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "clean on tegra3" `Quick (test_clean_scenario `Tegra3);
          Alcotest.test_case "clean on nexus4" `Quick (test_clean_scenario `Nexus4);
          Alcotest.test_case "clean on future" `Quick (test_clean_scenario `Future);
          Alcotest.test_case "stock flush flagged" `Quick
            (test_fault Scenario.Stock_flush_while_locked);
          Alcotest.test_case "skipped reg clear flagged" `Quick
            (test_fault Scenario.Skip_register_clearing);
          Alcotest.test_case "skipped page barrier flagged" `Quick
            (test_fault Scenario.Skip_freed_page_barrier);
          Alcotest.test_case "widened DMA window flagged" `Quick
            (test_fault Scenario.Widen_dma_window);
          Alcotest.test_case "fault->checker mapping precise" `Quick test_fault_names_precise;
        ] );
      ( "engine",
        [
          Alcotest.test_case "detach stops events" `Quick test_engine_detach_stops_events;
          Alcotest.test_case "report names rule" `Quick test_violation_report_mentions_rule;
        ] );
      ("verdict", [ Alcotest.test_case "taint vs attacks agree" `Quick test_verdict_agreement ]);
    ]
