(** The device-unlock path (§7): eager decryption of DMA regions
    (devices never fault), lazy young-bit-fault decryption for
    everything else. *)

open Sentry_kernel

type stats = {
  dma_pages_eager : int;
  dma_bytes_eager : int;
  elapsed_ns : float;
  energy_j : float;
}

(** The lazy fault handler installed while the device is unlocked:
    decrypts an encrypted page on first touch and sets its young bit.
    Fail-secure: the PTE's [encrypted] bit is cleared before the
    cleartext lands, so a crash mid-handler is re-encrypted by the
    recovery sweep. *)
val fault_handler : Page_crypt.t -> Vm.fault_handler

(** Offload twin of [fault_handler]: the single-page decrypt is one
    command submitted to the [Offload_engine] queue and polled to
    completion — every first touch pays the engine's full fixed
    latency (the losing side of the Offload crossover). *)
val fault_handler_offload : Page_crypt.t -> Vm.fault_handler

(** No_access lazy handler: restore the revoked mapping (PTE write +
    TLB shootdown, no crypto); residual ciphertext pages from a
    crypto backend's earlier cycle still decrypt, fail-secure. *)
val fault_handler_no_access : Page_crypt.t -> Vm.fault_handler

(** Decrypt every still-encrypted page of one region now; returns the
    page count.  DMA regions end with the pre-DMA coherence sweep
    (decrypted lines cleaned out to DRAM, contiguous frames coalesced
    into single maintenance calls). *)
val decrypt_region :
  ?journal:Lock_journal.t -> Page_crypt.t -> Process.t -> Address_space.region -> int

(** Batched twin of [decrypt_region]: frame-sorted
    [Page_crypt.decrypt_batch] with coalesced journal records; same
    per-page fail-secure ordering and coherence sweep. *)
val decrypt_region_batched :
  ?journal:Lock_journal.t -> Page_crypt.t -> Process.t -> Address_space.region -> int

(** The standard (lazy) unlock through the batched pipeline (the
    default): eager DMA decrypt + handler install + re-admission to
    the scheduler.  With [?journal], eager progress is journaled so a
    crash mid-unlock can be rolled back ([Sentry.recover] re-encrypts
    and aborts the unlock). *)
val run : ?journal:Lock_journal.t -> Page_crypt.t -> System.t -> sensitive:Process.t list -> stats

(** The page-at-a-time reference unlock; the batched [run] is
    differentially tested against it. *)
val run_per_page :
  ?journal:Lock_journal.t -> Page_crypt.t -> System.t -> sensitive:Process.t list -> stats

(** Offload unlock: eager DMA batches pipeline into the command queue;
    the installed lazy handler is [fault_handler_offload]. *)
val run_offload :
  ?journal:Lock_journal.t -> Page_crypt.t -> System.t -> sensitive:Process.t list -> stats

(** No_access unlock: eagerly restore DMA-region mappings (PTE writes
    only, no coherence sweep — the bytes never moved); the installed
    lazy handler is [fault_handler_no_access]. *)
val run_no_access :
  ?journal:Lock_journal.t -> Page_crypt.t -> System.t -> sensitive:Process.t list -> stats

(** The eager-everything ablation: decrypt every page of every
    sensitive process at unlock time; returns total pages. *)
val run_eager : Page_crypt.t -> System.t -> sensitive:Process.t list -> int

(** The page-at-a-time eager ablation. *)
val run_eager_per_page : Page_crypt.t -> System.t -> sensitive:Process.t list -> int

(** The eager-everything ablation through the offload engine. *)
val run_eager_offload : Page_crypt.t -> System.t -> sensitive:Process.t list -> int

(** The eager-everything ablation under No_access: restore every
    revoked mapping now. *)
val run_eager_no_access : Page_crypt.t -> System.t -> sensitive:Process.t list -> int
