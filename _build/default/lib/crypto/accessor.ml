(** Memory accessors: where a cipher's working state physically lives.

    The instrumented cipher ([Aes_block]) performs every state access
    through one of these, so the same algorithm can run:
    - [native]: over a plain OCaml buffer (fast path, no simulation);
    - [machine]: over simulated memory through the cache hierarchy
      (iRAM or DRAM, depending on the base address);
    - [machine_uncached]: over simulated DRAM with uncached accesses —
      every access crosses the external bus, the worst case for bus
      monitoring. *)

open Sentry_soc

type t = {
  load : int -> int -> bytes; (* offset, length *)
  store : int -> bytes -> unit;
  base : int option; (* physical base address when memory-backed *)
  description : string;
}

let native buf =
  {
    load = (fun off len -> Bytes.sub buf off len);
    store = (fun off b -> Bytes.blit b 0 buf off (Bytes.length b));
    base = None;
    description = "native";
  }

let machine m ~base =
  {
    load = (fun off len -> Machine.read m (base + off) len);
    store = (fun off b -> Machine.write m (base + off) b);
    base = Some base;
    description = Printf.sprintf "machine@0x%08x" base;
  }

let machine_uncached m ~base =
  {
    load = (fun off len -> Machine.read_uncached m (base + off) len);
    store = (fun off b -> Machine.write_uncached m (base + off) b);
    base = Some base;
    description = Printf.sprintf "machine-uncached@0x%08x" base;
  }

let load8 t off = Char.code (Bytes.get (t.load off 1) 0)
let store8 t off v = t.store off (Bytes.make 1 (Char.chr v))
