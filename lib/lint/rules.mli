(** The domain-safety rules over the untyped Parsetree.  Type-blind by
    design (the linter must run on code that does not yet compile);
    each rule is a syntactic approximation documented in the
    implementation and DESIGN.md §11. *)

type global = {
  gfile : string;
  gmodule : string;  (** the component other modules reference, e.g. [Trace] *)
  gname : string;
  gkind : string;  (** the mutable constructor, e.g. ["ref"] *)
}

type assign = {
  afile : string;
  aloc : Location.t;
  target_module : string;
  target_name : string;
  target_path : string;
}

type scan = {
  findings : Finding.t list;  (** R1/R3/R4/R5 — resolvable within one file *)
  globals : global list;
  assigns : assign list;  (** R2 candidates, resolved against the corpus *)
}

val module_name_of_file : string -> string

val scan_file : file:string -> r4_exempt:bool -> Parsetree.structure -> scan
(** [r4_exempt] marks an audited fast-path module whose [unsafe_*]
    uses are accepted wholesale. *)

val resolve_assigns : globals:global list -> assign list -> Finding.t list
(** R2: assignments whose qualified target names an R1 global from a
    different file. *)
