lib/crypto/aes_block.mli: Accessor Aes_key Bytes Mode
