(** Open-loop arrival generation on the simulated clock.

    A schedule is a pure function of its {!config}: a seeded
    exponential inter-arrival draw (Poisson base rate) whose
    instantaneous rate follows a four-phase diurnal profile — the
    duration is one simulated "day" split into quarters (night /
    morning / peak / evening) with the peak quarter scaled by the
    burst multiplier.  Each arrival targets a tenant drawn uniformly
    from the pool, carrying the fleet's tenant class so the serving
    loop can label latency per class.

    Open loop means the generator never looks at the server: arrivals
    keep their timestamps whether the queue drains or sheds, which is
    what makes the backpressure verdicts meaningful. *)

open Sentry_util

type request = {
  id : int;  (** 0-based arrival order over the whole schedule *)
  at_ns : float;  (** simulated arrival time *)
  tenant : int;  (** global tenant index in the pool *)
  cls : string;  (** {!Sentry_workloads.Fleet.tenant_class} of [tenant] *)
}

type config = {
  rate_hz : float;  (** base Poisson arrival rate (simulated Hz) *)
  burst : float;  (** peak-quarter multiplier over the base rate *)
  duration_s : float;  (** simulated span the schedule covers *)
  tenants : int;  (** pool size arrivals are drawn from *)
  seed : int;
}

(* Diurnal profile over one schedule-duration "day": a quiet night
   quarter, two shoulder quarters at the base rate, and a peak quarter
   at [burst]x.  Piecewise-constant so the rate (and therefore the
   schedule) is trivially reproducible. *)
let phase_multiplier ~burst frac =
  if frac < 0.25 then 0.5
  else if frac < 0.5 then 1.0
  else if frac < 0.75 then Float.max 0.0 burst
  else 1.0

let validate (c : config) =
  if c.rate_hz <= 0.0 then invalid_arg "Arrivals.generate: rate_hz must be positive";
  if c.burst < 0.0 then invalid_arg "Arrivals.generate: burst must be non-negative";
  if c.duration_s <= 0.0 then invalid_arg "Arrivals.generate: duration_s must be positive";
  if c.tenants <= 0 then invalid_arg "Arrivals.generate: tenants must be positive"

(* Sequential thinning-free sampling: at time t the next gap is drawn
   exponential with the phase's instantaneous mean.  For a
   piecewise-constant profile this is exact within a phase and a
   standard approximation across a boundary — and, crucially, a pure
   fold over the PRNG stream. *)
let generate (c : config) =
  validate c;
  let prng = Prng.create ~seed:c.seed in
  let duration_ns = c.duration_s *. Units.s in
  let rec go id t acc =
    let mult = phase_multiplier ~burst:c.burst (t /. duration_ns) in
    if mult <= 0.0 then
      (* a zero-rate phase generates nothing; skip to the next phase
         boundary *)
      let next_phase = (Float.of_int (int_of_float (t /. duration_ns *. 4.0) + 1)) /. 4.0 in
      let t' = next_phase *. duration_ns in
      if t' >= duration_ns then List.rev acc else go id t' acc
    else
      let gap = Prng.exponential prng ~mean:(Units.s /. (c.rate_hz *. mult)) in
      let t' = t +. gap in
      if t' >= duration_ns then List.rev acc
      else
        let tenant = Prng.int prng c.tenants in
        let cls = Sentry_workloads.Fleet.tenant_class ~index:tenant in
        go (id + 1) t' ({ id; at_ns = t'; tenant; cls } :: acc)
  in
  go 0 0.0 []
