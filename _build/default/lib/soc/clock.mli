(** Simulated wall clock (nanoseconds). *)

type t

val create : unit -> t
val now : t -> float
val advance : t -> float -> unit
val reset : t -> unit
val elapsed : t -> since:float -> float

(** Run a thunk and return its result with the simulated time it
    consumed. *)
val timed : t -> (unit -> 'a) -> 'a * float
