lib/kernel/dm_crypt.ml: Block_dev Blockio Bytes Crypto_api Essiv Sentry_crypto String Xts
