lib/experiments/exp_fig12.mli: Sentry_util
