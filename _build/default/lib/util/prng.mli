(** Deterministic pseudo-random number generator (splitmix64).  All
    stochastic behaviour in the simulator draws from an explicit [t]
    so every experiment is reproducible from its seed. *)

type t

val create : seed:int -> t
val copy : t -> t
val next_int64 : t -> int64

(** 62 non-negative random bits. *)
val bits : t -> int

(** Uniform in [0, bound); requires [bound > 0]. *)
val int : t -> int -> int

(** Uniform in [0, bound). *)
val float : t -> float -> float

(** Bernoulli draw with success probability [p]. *)
val flip : t -> p:float -> bool

val byte : t -> int
val bytes : t -> int -> Bytes.t

(** Fisher-Yates shuffle, in place. *)
val shuffle : t -> 'a array -> unit

val exponential : t -> mean:float -> float

(** One-shot Zipf draw (degenerate; prefer [zipf_gen]). *)
val zipf : t -> n:int -> s:float -> int

(** Precompute a Zipf CDF once; returns a sampler over ranks
    [0, n). *)
val zipf_gen : n:int -> s:float -> t -> int
