lib/experiments/exp_fig4.ml: Exp_apps Lazy List Printf Sentry_util Sentry_workloads Table
