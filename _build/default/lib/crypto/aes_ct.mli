(** Table-free AES: no lookup tables, hence no access-protected state
    — the ablation point for what hiding access patterns costs
    without on-SoC storage (cf. AESSE/TRESOR, §9).  Slow by design;
    pinned to the same FIPS vectors. *)

type key = Aes_key.t

val expand : Bytes.t -> key

(** Algebraic S-box (field inverse + affine), no table. *)
val sub_byte : int -> int

val inv_sub_byte : int -> int

val encrypt_block : key -> Bytes.t -> int -> Bytes.t -> int -> unit
val decrypt_block : key -> Bytes.t -> int -> Bytes.t -> int -> unit

(** As a [Mode.cipher]. *)
val cipher : key -> Mode.cipher

(** Sensitive state of this variant: key material only. *)
val secret_state_bytes : key -> int
