(** Round-robin scheduler with the register-spill hazard: a context
    switch with IRQs enabled saves the register file to the outgoing
    task's DRAM kernel stack — the leak AES_On_SoC's bracket prevents
    (§6.2).  Interrupt-masked sections cannot be preempted. *)

open Sentry_soc

type t

val create : Machine.t -> t
val admit : t -> Process.t -> unit
val current : t -> Process.t option

(** Park a process on the un-schedulable queue (Sentry lock path). *)
val make_unschedulable : t -> Process.t -> unit

(** Return a process to the run queue (unlock path). *)
val make_schedulable : t -> Process.t -> unit

(** Rotate to the next runnable process (spilling registers); [None]
    when preemption is masked or the queue is empty. *)
val context_switch : t -> Process.t option

(** A timer tick: fire a context switch if interrupts allow. *)
val tick : t -> unit

(** (context switches, register spills). *)
val stats : t -> int * int

(** [(run_queue, locked_queue)], front first — an inspection view for
    invariant checks: the queues are disjoint and duplicate-free, and
    no [Locked_out] process appears on the run queue. *)
val queues : t -> Process.t list * Process.t list
