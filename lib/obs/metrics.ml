(** Metrics registry: named counters, gauges and HDR-style histograms,
    registered per subsystem with optional low-cardinality labels.

    A registry is a plain value — experiments and the CLI build one,
    point subsystems at it (or harvest component stats into it), and
    flatten it into the machine-readable report behind
    [BENCH_sentry.json].  Keys are ["subsystem/name"], with sorted
    labels appended as ["{k=v,k2=v2}"]; histogram keys fan out into
    [.../count], [.../mean], [.../p50], [.../p95], [.../p99],
    [.../p999] and [.../max].

    {b Bounded memory.}  A histogram stores a fixed 256-entry
    reservoir (the first observations, exact) plus explicit
    log2-octave buckets with 16 linear sub-buckets per octave — so a
    long fleet soak costs O(1) per instrument no matter how many
    samples it records.  Percentiles are exact while the sample count
    fits the reservoir and bucket-upper-bound estimates (≤ 6.25%
    relative error) beyond it.

    {b Merge.}  [snapshot]/[merge] combine per-shard registries
    deterministically: counters add, gauges resolve last-writer by
    simulated timestamp, histograms add bucket occupancy and
    concatenate reservoirs in merge order.  Merging registries whose
    histograms all still fit the reservoir reproduces a single global
    registry key-for-key — the fan-in the Domains-sharded fleet
    needs. *)

type counter = { mutable count : int }
type gauge = { mutable value : float; mutable ts : float (* simulated ns of last set *) }

let reservoir_capacity = 256
let num_octaves = 64
let sub_buckets = 16

(* Bucket 0 is the underflow bucket (values < 1); bucket
   [1 + oct*16 + sub] covers [2^oct * (1 + sub/16), 2^oct * (1 + (sub+1)/16)). *)
let num_buckets = 1 + (num_octaves * sub_buckets)

type histogram = {
  res : float array; (* first [reservoir_capacity] observations, exact *)
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
  buckets : int array;
}

type instrument = C of counter | G of gauge | H of histogram

type t = { table : (string, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

(* Label keys/values feed the flat key verbatim, so the characters the
   key grammar uses are off limits. *)
let check_label_atom s =
  String.iter
    (fun c ->
      match c with
      | '{' | '}' | ',' | '=' | '/' | '\n' -> invalid_arg ("Metrics: label contains '" ^ String.make 1 c ^ "': " ^ s)
      | _ -> ())
    s

let label_suffix = function
  | [] -> ""
  | labels ->
      List.iter
        (fun (k, v) ->
          check_label_atom k;
          check_label_atom v)
        labels;
      let sorted = List.sort compare labels in
      "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) sorted) ^ "}"

let key ~subsystem ?(labels = []) name = subsystem ^ "/" ^ name ^ label_suffix labels

let register t ~subsystem ?labels name make describe =
  let k = key ~subsystem ?labels name in
  match Hashtbl.find_opt t.table k with
  | Some i -> i
  | None ->
      let i = make () in
      ignore describe;
      Hashtbl.add t.table k i;
      i

let counter t ~subsystem ?labels name =
  match register t ~subsystem ?labels name (fun () -> C { count = 0 }) "counter" with
  | C c -> c
  | G _ | H _ -> invalid_arg ("Metrics.counter: " ^ key ~subsystem ?labels name ^ " is not a counter")

let gauge t ~subsystem ?labels name =
  match register t ~subsystem ?labels name (fun () -> G { value = 0.0; ts = 0.0 }) "gauge" with
  | G g -> g
  | C _ | H _ -> invalid_arg ("Metrics.gauge: " ^ key ~subsystem ?labels name ^ " is not a gauge")

let make_histogram () =
  H
    {
      res = Array.make reservoir_capacity 0.0;
      n = 0;
      sum = 0.0;
      minv = 0.0;
      maxv = 0.0;
      buckets = Array.make num_buckets 0;
    }

let histogram t ~subsystem ?labels name =
  match register t ~subsystem ?labels name make_histogram "histogram" with
  | H h -> h
  | C _ | G _ ->
      invalid_arg ("Metrics.histogram: " ^ key ~subsystem ?labels name ^ " is not a histogram")

let inc ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count

let set g v = g.value <- v
let set_at g ~ts v =
  g.value <- v;
  g.ts <- ts

let gauge_value g = g.value
let gauge_ts g = g.ts

(** HDR bucket for a (non-negative) observation: log2 octave plus a
    linear 1/16 sub-bucket within it; values below 1 (and NaN) land in
    the underflow bucket 0. *)
let bucket_of v =
  if not (v >= 1.0) then 0
  else
    let oct = min (num_octaves - 1) (int_of_float (Float.log2 v)) in
    let base = Float.pow 2.0 (float_of_int oct) in
    let sub = max 0 (min (sub_buckets - 1) (int_of_float ((v /. base -. 1.0) *. float_of_int sub_buckets))) in
    1 + (oct * sub_buckets) + sub

let bucket_lower i =
  if i = 0 then 0.0
  else
    let oct = (i - 1) / sub_buckets and sub = (i - 1) mod sub_buckets in
    Float.pow 2.0 (float_of_int oct) *. (1.0 +. (float_of_int sub /. float_of_int sub_buckets))

let bucket_upper i =
  if i = 0 then 1.0
  else
    let oct = (i - 1) / sub_buckets and sub = (i - 1) mod sub_buckets in
    Float.pow 2.0 (float_of_int oct) *. (1.0 +. (float_of_int (sub + 1) /. float_of_int sub_buckets))

let observe h v =
  if h.n < reservoir_capacity then h.res.(h.n) <- v;
  (if h.n = 0 then begin
     h.minv <- v;
     h.maxv <- v
   end
   else begin
     if v < h.minv then h.minv <- v;
     if v > h.maxv then h.maxv <- v
   end);
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let hist_count h = h.n

(** The retained exact observations: everything while the count fits
    the reservoir, the first [reservoir_capacity] beyond that. *)
let observations h = Array.sub h.res 0 (min h.n reservoir_capacity)

(** Occupied buckets as [(lower_bound, count)] pairs. *)
let bucket_counts h =
  List.filter
    (fun (_, n) -> n > 0)
    (List.init num_buckets (fun i -> (bucket_lower i, h.buckets.(i))))

(** Exact (sorted reservoir) while [n] fits the reservoir; nearest-rank
    over bucket upper bounds beyond, clamped to the tracked max. *)
let hist_percentile h p =
  if h.n = 0 then 0.0
  else if h.n <= reservoir_capacity then Sentry_util.Stats.percentile p (observations h)
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int h.n))) in
    let rec walk i seen =
      if i >= num_buckets then h.maxv
      else
        let seen = seen + h.buckets.(i) in
        if seen >= rank then Float.min (bucket_upper i) h.maxv else walk (i + 1) seen
    in
    walk 0 0
  end

(* The exact-path reductions run over a *sorted* copy of the reservoir
   so they depend only on the multiset of samples, not arrival order —
   that is what makes sharded runs merge bit-identically. *)
let exact_sorted h =
  let xs = observations h in
  Array.sort Float.compare xs;
  xs

let hist_mean h =
  if h.n = 0 then 0.0
  else if h.n <= reservoir_capacity then
    Array.fold_left ( +. ) 0.0 (exact_sorted h) /. float_of_int h.n
  else h.sum /. float_of_int h.n

let hist_max h = h.maxv
let hist_min h = h.minv

(** Flatten into sorted [(key, value)] pairs. *)
let flat t =
  let rows = ref [] in
  Hashtbl.iter
    (fun k i ->
      match i with
      | C c -> rows := (k, float_of_int c.count) :: !rows
      | G g -> rows := (k, g.value) :: !rows
      | H h ->
          rows := (k ^ "/count", float_of_int h.n) :: !rows;
          if h.n > 0 then
            rows :=
              (k ^ "/mean", hist_mean h)
              :: (k ^ "/p50", hist_percentile h 50.0)
              :: (k ^ "/p95", hist_percentile h 95.0)
              :: (k ^ "/p99", hist_percentile h 99.0)
              :: (k ^ "/p999", hist_percentile h 99.9)
              :: (k ^ "/max", hist_max h)
              :: !rows)
    t.table;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

(** Bulk-harvest scalar readings as gauges. *)
let set_many t ~subsystem pairs =
  List.iter (fun (name, v) -> set (gauge t ~subsystem name) v) pairs

(* ------------------------ snapshot & merge ------------------------ *)

let copy_instrument = function
  | C c -> C { count = c.count }
  | G g -> G { value = g.value; ts = g.ts }
  | H h ->
      H
        {
          res = Array.copy h.res;
          n = h.n;
          sum = h.sum;
          minv = h.minv;
          maxv = h.maxv;
          buckets = Array.copy h.buckets;
        }

(** An isolated deep copy — safe to merge or export while the source
    registry keeps recording. *)
let snapshot t =
  let table = Hashtbl.create (max 16 (Hashtbl.length t.table)) in
  Hashtbl.iter (fun k i -> Hashtbl.replace table k (copy_instrument i)) t.table;
  { table }

(* Merge the exact-sample reservoirs.  While the combined count still
   fits the reservoir, concatenation keeps every sample and the exact
   percentile path stays lossless.  Beyond that the old code kept
   [h]'s reservoir and appended a *prefix* of [h']'s — a biased
   subsample (shard 0's earliest arrivals crowd out everything else).
   Instead, deterministically downsample both sides with a stride
   keyed on (retained, quota): each side gets a slot share
   proportional to its *total* observation count, and slot [j] takes
   retained sample [j * retained / quota] — an order-of-merge
   artifact-free spread over each side's retained window.  (Merged
   percentiles beyond the reservoir come from the bucket counts,
   which add exactly; the reservoir only feeds [observations] and the
   exact path, so representativeness is what matters here.) *)
let merge_hist h h' =
  let va = min h.n reservoir_capacity and vb = min h'.n reservoir_capacity in
  if va + vb <= reservoir_capacity then begin
    if vb > 0 then Array.blit h'.res 0 h.res va vb
  end
  else begin
    let total = float_of_int (h.n + h'.n) in
    let ka = int_of_float (Float.round (float_of_int reservoir_capacity *. float_of_int h.n /. total)) in
    (* clamp so each side's quota is coverable by its retained samples *)
    let ka = max (reservoir_capacity - vb) (min ka va) in
    let kb = reservoir_capacity - ka in
    let out = Array.make reservoir_capacity 0.0 in
    for j = 0 to ka - 1 do
      out.(j) <- h.res.(j * va / ka)
    done;
    for j = 0 to kb - 1 do
      out.(ka + j) <- h'.res.(j * vb / kb)
    done;
    Array.blit out 0 h.res 0 reservoir_capacity
  end;
  if h'.n > 0 then
    if h.n = 0 then begin
      h.minv <- h'.minv;
      h.maxv <- h'.maxv
    end
    else begin
      if h'.minv < h.minv then h.minv <- h'.minv;
      if h'.maxv > h.maxv then h.maxv <- h'.maxv
    end;
  h.n <- h.n + h'.n;
  h.sum <- h.sum +. h'.sum;
  for i = 0 to num_buckets - 1 do
    h.buckets.(i) <- h.buckets.(i) + h'.buckets.(i)
  done

(** [merge a b] — a fresh registry combining both: counters add,
    gauges keep the later write (simulated timestamp, value ties
    broken toward the larger value so the operation is commutative),
    histograms add bucket occupancy / count / sum and keep a
    count-weighted deterministic downsample of both reservoirs
    (lossless concatenation while the combined count still fits).
    @raise Invalid_argument if a key exists in both with different
    instrument kinds. *)
let merge a b =
  let t = snapshot a in
  Hashtbl.iter
    (fun k i ->
      match (Hashtbl.find_opt t.table k, i) with
      | None, i -> Hashtbl.replace t.table k (copy_instrument i)
      | Some (C c), C c' -> c.count <- c.count + c'.count
      | Some (G g), G g' -> if (g'.ts, g'.value) > (g.ts, g.value) then set_at g ~ts:g'.ts g'.value
      | Some (H h), H h' -> merge_hist h h'
      | Some _, (C _ | G _ | H _) -> invalid_arg ("Metrics.merge: instrument kind mismatch for " ^ k))
    b.table;
  t
