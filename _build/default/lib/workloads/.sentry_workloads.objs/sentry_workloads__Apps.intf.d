lib/workloads/apps.mli: App
