lib/experiments/exp_apps.ml: App Apps Config Encrypt_on_lock Energy Hashtbl List Machine Page_crypt Sentry Sentry_core Sentry_soc Sentry_util Sentry_workloads System Units
