(** PL310-style shared L2 cache controller with lockdown-by-way.

    Geometry mirrors the Tegra 3: 1 MB, 8 ways of 128 KB, 32-byte
    lines, write-back + write-allocate.  The controller supports:

    - {b Lockdown by way} (the "data lockdown" register): a bitmask of
      ways that receive no new allocations.  Lines already resident in
      a locked way keep serving hits and absorbing writes, but are
      never evicted — so their data never reaches DRAM.  This is the
      mechanism Sentry repurposes for security (§4.2).
    - {b Clean/invalidate with a way mask}: Sentry's kernel patch
      (§4.5) routes every L2 flush through a mask that skips locked
      ways.  The stock full flush, by contrast, cleans {e all} ways —
      including locked ones — and drops the lockdown, which is exactly
      the dangerous behaviour the paper discovered and disabled.

    If an access misses and every way is either locked or disabled,
    the access bypasses the cache entirely (uncached DRAM access), as
    the PL310 does when allocation is impossible. *)

type line = {
  mutable valid : bool;
  mutable dirty : bool;
  mutable tag : int;
  data : Bytes.t;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable bypasses : int;
}

type t = {
  dram : Dram.t;
  clock : Clock.t;
  ways : int;
  way_size : int;
  line_size : int;
  sets : int;
  set_shift : int; (* log2 line_size *)
  tag_shift : int; (* set_shift + log2 sets: address bits above the set index *)
  fill_ns : float; (* per-line fill latency, precomputed so the miss
                      path passes an already-boxed float to the clock *)
  meter : Energy.meter; (* pre-resolved "l2" energy cell *)
  lines : line array array; (* way -> set *)
  mutable lockdown : int; (* bit w set: way w receives no allocations *)
  mutable flush_mask : int; (* bit w set: maintenance ops skip way w *)
  rr : int array; (* per-set round-robin victim pointer *)
  last_way : int array; (* per-set last-hit-way memo (lookup hint only) *)
  stats : stats;
  mutable shadows : Bytes.t array array option; (* way -> set -> per-byte line taint *)
  mutable on_writeback : (way:int -> addr:int -> locked:bool -> unit) option;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* Trace emission; every call site is guarded by [Trace.on] so the
   disabled path costs one global test and allocates nothing. *)
let obs = "soc.l2"

let trace t ?ts ?phase ?args name =
  let ts = match ts with Some ts -> ts | None -> Clock.now t.clock in
  Sentry_obs.Trace.emit ~ts ~cat:Sentry_obs.Event.Cache ~subsystem:obs ?phase ?args name

let create ?(ways = 8) ?(way_size = 128 * Sentry_util.Units.kib) ?(line_size = 32) ~dram
    ~clock ~energy () =
  let sets = way_size / line_size in
  {
    dram;
    clock;
    ways;
    way_size;
    line_size;
    sets;
    set_shift = log2 line_size;
    tag_shift = log2 line_size + log2 sets;
    fill_ns = Calib.l2_hit_line_ns +. Calib.dram_line_ns;
    meter = Energy.meter energy ~category:"l2";
    lines =
      Array.init ways (fun _ ->
          Array.init sets (fun _ ->
              { valid = false; dirty = false; tag = 0; data = Bytes.make line_size '\000' }));
    lockdown = 0;
    flush_mask = 0;
    rr = Array.make sets 0;
    last_way = Array.make sets 0;
    stats = { hits = 0; misses = 0; writebacks = 0; bypasses = 0 };
    shadows = None;
    on_writeback = None;
  }

(* ------------------------- taint shadow -------------------------- *)

let enable_taint t =
  Dram.enable_taint t.dram;
  if t.shadows = None then
    t.shadows <-
      Some (Array.init t.ways (fun _ -> Array.init t.sets (fun _ -> Taint.create_shadow t.line_size)))

let taint_enabled t = t.shadows <> None

let line_shadow t w set =
  match t.shadows with Some s -> Some s.(w).(set) | None -> None

(** [set_writeback_hook t f] — [f] fires whenever a dirty line is
    written back to DRAM, with [locked] true when the line's way is
    currently under lockdown (the eviction the Sentry kernel patch
    must never let happen, §4.5). *)
let set_writeback_hook t f = t.on_writeback <- Some f

let clear_writeback_hook t = t.on_writeback <- None

let ways t = t.ways
let way_size t = t.way_size
let line_size t = t.line_size
let size t = t.ways * t.way_size
let stats t = t.stats

let set_of_addr t addr = (addr lsr t.set_shift) land (t.sets - 1)
let tag_of_addr t addr = addr lsr t.tag_shift
let line_base t addr = addr land lnot (t.line_size - 1)

(* ---------------- lockdown & flush-mask registers ---------------- *)

let lockdown t = t.lockdown

(** [set_lockdown t mask] programs the lockdown-by-way register.  A set
    bit means the corresponding way allocates no new lines. *)
let set_lockdown t mask =
  Clock.advance t.clock Calib.pl310_op_ns;
  let masked = mask land ((1 lsl t.ways) - 1) in
  if Sentry_obs.Trace.on () && masked <> t.lockdown then
    trace t "way-lockdown"
      ~args:[ ("old_mask", Sentry_obs.Event.Int t.lockdown); ("new_mask", Sentry_obs.Event.Int masked) ];
  t.lockdown <- masked

let flush_mask t = t.flush_mask

(** [set_flush_mask t mask] records which ways the Sentry-patched
    kernel must skip during cache maintenance. *)
let set_flush_mask t mask = t.flush_mask <- mask land ((1 lsl t.ways) - 1)

(* --------------------------- lookup ------------------------------ *)

(* The way currently holding [addr]'s line, or -1: the allocation-free
   inner lookup.  A per-set last-hit-way memo short-circuits the 8-way
   scan — a page-granule access walks the same sets line after line,
   so the memoed way hits almost always.  The memo is only a hint; the
   tag/valid check still decides, so a stale entry costs one extra
   probe, never a wrong answer, and the simulated hit charge is the
   same whichever way the line is found in. *)
let rec scan_ways t set tag w =
  if w = t.ways then -1
  else
    let l = t.lines.(w).(set) in
    if l.valid && l.tag = tag then begin
      t.last_way.(set) <- w;
      w
    end
    else scan_ways t set tag (w + 1)

let lookup_way t addr =
  let set = set_of_addr t addr and tag = tag_of_addr t addr in
  let m = t.last_way.(set) in
  let lm = t.lines.(m).(set) in
  if lm.valid && lm.tag = tag then m else scan_ways t set tag 0

(** [lookup t addr] finds the way currently holding [addr]'s line. *)
let lookup t addr =
  let w = lookup_way t addr in
  if w < 0 then None else Some w

let resident t addr = lookup_way t addr >= 0

(** Way that holds [addr], if any — exposed for tests validating the
    warming protocol. *)
let way_of t addr = lookup t addr

let charge_hit t =
  t.stats.hits <- t.stats.hits + 1;
  Clock.advance t.clock Calib.l2_hit_line_ns;
  Energy.meter_charge_bytes t.meter ~per_byte_j:Calib.onsoc_byte_j t.line_size

let write_back t w set =
  let l = t.lines.(w).(set) in
  if l.valid && l.dirty then begin
    let addr = (l.tag lsl t.tag_shift) lor (set lsl t.set_shift) in
    (* [l.data] is passed as a view, not copied: [Dram.write_from]
       blits it into the backing store immediately and the bus layer
       snapshots it for any attached monitor, so later mutation of the
       line cannot alias either one (regression-tested). *)
    (match t.shadows with
    | Some s ->
        Dram.write_from t.dram ~initiator:`L2 ~taint:s.(w).(set) addr l.data ~off:0
          ~len:t.line_size
    | None -> Dram.write_from t.dram ~initiator:`L2 addr l.data ~off:0 ~len:t.line_size);
    Clock.advance t.clock Calib.dram_line_ns;
    l.dirty <- false;
    t.stats.writebacks <- t.stats.writebacks + 1;
    let locked = t.lockdown land (1 lsl w) <> 0 in
    if Sentry_obs.Trace.on () then
      trace t "line-writeback"
        ~args:
          [
            ("way", Sentry_obs.Event.Int w);
            ("addr", Sentry_obs.Event.Int addr);
            ("locked", Sentry_obs.Event.Bool locked);
          ];
    match t.on_writeback with
    | Some f -> f ~way:w ~addr ~locked
    | None -> ()
  end

(* Victim-selection helpers are top-level (not per-call closures) so
   the miss path allocates nothing. *)
let unlocked t w = t.lockdown land (1 lsl w) = 0

let rec find_invalid t set w =
  if w = t.ways then -1
  else if unlocked t w && not t.lines.(w).(set).valid then w
  else find_invalid t set (w + 1)

let rec count_unlocked t w acc =
  if w = t.ways then acc else count_unlocked t (w + 1) (if unlocked t w then acc + 1 else acc)

let rec next_unlocked t w = if unlocked t (w mod t.ways) then w mod t.ways else next_unlocked t (w + 1)

(* Pick a victim way for allocation in [set], honouring lockdown, or
   -1 when every way is locked.  Invalid lines in unlocked ways are
   preferred; otherwise round-robin over unlocked ways. *)
let victim_way t set =
  let w = find_invalid t set 0 in
  if w >= 0 then w
  else if count_unlocked t 0 0 = 0 then -1
  else begin
    (* advance round-robin pointer to the next unlocked way *)
    let w = next_unlocked t t.rr.(set) in
    t.rr.(set) <- (w + 1) mod t.ways;
    w
  end

(* Allocate (fill) the line containing [addr]; returns the way, or
   -1 when allocation is impossible (fully locked cache). *)
let fill_way t addr =
  let set = set_of_addr t addr and tag = tag_of_addr t addr in
  let w = victim_way t set in
  if w < 0 then -1
  else begin
    let l = t.lines.(w).(set) in
    write_back t w set;
    let base = line_base t addr in
    Dram.read_into t.dram ~initiator:`L2 base l.data ~off:0 ~len:t.line_size;
    (match t.shadows with
    | Some s -> Dram.blit_shadow_into t.dram base t.line_size s.(w).(set) 0
    | None -> ());
    l.valid <- true;
    l.dirty <- false;
    l.tag <- tag;
    t.last_way.(set) <- w;
    Clock.advance t.clock t.fill_ns;
    if Sentry_obs.Trace.on () then
      trace t "line-fill"
        ~args:[ ("way", Sentry_obs.Event.Int w); ("addr", Sentry_obs.Event.Int base) ];
    w
  end

(* ----------------------- CPU access path ------------------------- *)

(* Move [len] bytes between the caller's buffer and the line resident
   in way [w]: top-level (not a per-access closure) so the hot path
   allocates nothing. *)
let store_chunk t addr ~write ~taint buf buf_off len w =
  let off_in_line = addr land (t.line_size - 1) in
  let set = set_of_addr t addr in
  let l = t.lines.(w).(set) in
  if write then begin
    Bytes.blit buf buf_off l.data off_in_line len;
    (match t.shadows with
    | Some s -> Taint.fill s.(w).(set) off_in_line len taint
    | None -> ());
    l.dirty <- true
  end
  else Bytes.blit l.data off_in_line buf buf_off len

(* One line-granule access: [off] is the offset inside the line,
   [len] stays within the line.  [taint] labels written bytes.
   Allocation-free: data moves by direct blit between the caller's
   buffer and the line array (or DRAM view on a bypass). *)
let access_chunk t addr ~write ~taint buf buf_off len =
  let w = lookup_way t addr in
  if w >= 0 then begin
    charge_hit t;
    store_chunk t addr ~write ~taint buf buf_off len w
  end
  else begin
    t.stats.misses <- t.stats.misses + 1;
    let w = fill_way t addr in
    if w >= 0 then store_chunk t addr ~write ~taint buf buf_off len w
    else begin
      (* allocation impossible: uncached DRAM access *)
      t.stats.bypasses <- t.stats.bypasses + 1;
      if Sentry_obs.Trace.on () then
        trace t "bypass"
          ~args:[ ("addr", Sentry_obs.Event.Int addr); ("write", Sentry_obs.Event.Bool write) ];
      Clock.advance t.clock Calib.dram_line_ns;
      if write then
        Dram.write_from t.dram ~initiator:`Cpu ~level:taint addr buf ~off:buf_off ~len
      else Dram.read_into t.dram ~initiator:`Cpu addr buf ~off:buf_off ~len
    end
  end

let iter_chunks t addr len f =
  let pos = ref addr and remaining = ref len and done_ = ref 0 in
  while !remaining > 0 do
    let off_in_line = !pos land (t.line_size - 1) in
    let chunk = min !remaining (t.line_size - off_in_line) in
    f !pos !done_ chunk;
    pos := !pos + chunk;
    done_ := !done_ + chunk;
    remaining := !remaining - chunk
  done

let check_view name buf ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length buf then
    invalid_arg (Printf.sprintf "Pl310.%s: bad view off=%d len=%d buf=%d" name off len (Bytes.length buf))

(* Line-granule walk of [len] bytes from [addr], moving data to/from
   [buf]: the top-level twin of [iter_chunks] for the CPU fast path —
   no closure, no ref cells, so a whole walk allocates nothing. *)
let rec rw_chunks t addr ~write ~taint buf buf_off len =
  if len > 0 then begin
    let off_in_line = addr land (t.line_size - 1) in
    let chunk = min len (t.line_size - off_in_line) in
    access_chunk t addr ~write ~taint buf buf_off chunk;
    rw_chunks t (addr + chunk) ~write ~taint buf (buf_off + chunk) (len - chunk)
  end

(** [read_into t addr buf ~off ~len] performs a cached CPU read
    straight into the caller's buffer: identical clock/energy/stats
    to [read] (which is implemented on top), no allocation. *)
let read_into t addr buf ~off ~len =
  check_view "read_into" buf ~off ~len;
  rw_chunks t addr ~write:false ~taint:Taint.Public buf off len

(** [read t addr len] performs a cached CPU read. *)
let read t addr len =
  let out = Bytes.create len in
  read_into t addr out ~off:0 ~len;
  out

(** [write_from t ?taint addr buf ~off ~len] performs a cached CPU
    write (write-allocate) of the [len]-byte view of [buf] at [off];
    [write] is implemented on top. *)
let write_from t ?(taint = Taint.Public) addr buf ~off ~len =
  check_view "write_from" buf ~off ~len;
  rw_chunks t addr ~write:true ~taint buf off len

(** [write t ?taint addr b] performs a cached CPU write
    (write-allocate), labelling the written bytes [taint]. *)
let write t ?taint addr b = write_from t ?taint addr b ~off:0 ~len:(Bytes.length b)

(* ------------------- batched run fast path ----------------------- *)

(* The batched lock/unlock pipeline moves whole pages per call, so the
   per-line host overhead of the generic path (per-call dispatch, the
   per-miss 8-way [count_unlocked] rescan, the [Dram] call envelope
   with its per-access bounds check and trace/monitor tests) is paid
   4096/32 = 128 times per page.  [read_run_into]/[write_run_from]
   run the same per-line state machine in one tight loop with those
   invariants hoisted.  Simulated behaviour is {e bit-identical} to
   [read_into]/[write_from]: the same per-line sequence of stats
   updates, [Clock.advance] calls, energy charges, bus transactions,
   DRAM blits, victim choices and memo updates (differentially
   tested).  Whenever an observer could tell the difference — tracing
   on, a bus monitor attached, a write-back hook installed — the run
   falls back to the generic path, which is the same state machine
   with the observers wired in. *)

let run_fast_ok t =
  (not (Sentry_obs.Trace.on ())) && t.on_writeback = None && not (Bus.monitored (Dram.bus t.dram))

(* The tight loop.  [any_unlocked] is the hoisted
   [count_unlocked t 0 0 > 0] (the lockdown register cannot change
   inside a run).  Per-line behaviour mirrors [access_chunk] exactly
   — same stats/clock/energy/bus/blit/victim sequence; see the
   charge-order comments there.  Everything loop-invariant (geometry,
   the DRAM backing store and its shadow, the lockdown mask, the stats
   and charging handles) lives in locals, and array/bytes accesses are
   unsafe: set/way indices are masked or register-bounded, line
   offsets bounded by the chunk computation, the caller view by
   [check_view], and DRAM offsets by the one-shot whole-run
   [Dram.validate] below (write-back addresses are in range by
   construction — tags only ever come from in-range fills).

   The generic path validates DRAM lazily per miss; here the first
   DRAM touch validates the {e whole} run instead (the powered check
   is equivalent — power cannot change mid-run; an all-hit run still
   never validates).  Only error paths can tell: a run extending past
   the end of DRAM raises at the first miss, not at the offending
   line. *)
let run_chunks t ~any_unlocked ~write ~taint buf buf_off0 addr0 len0 =
  let lines = t.lines and rr = t.rr and last_way = t.last_way and stats = t.stats in
  let clock = t.clock and meter = t.meter and shadows = t.shadows in
  let line_size = t.line_size and set_shift = t.set_shift and tag_shift = t.tag_shift in
  let set_mask = t.sets - 1 and line_mask = t.line_size - 1 in
  let nways = t.ways and lockdown = t.lockdown and fill_ns = t.fill_ns in
  let raw = Dram.raw t.dram in
  let dbase = (Dram.region t.dram).Memmap.base in
  let bus = Dram.bus t.dram in
  let dshadow = Dram.shadow t.dram in
  let validated = ref false in
  let ensure_valid () =
    if not !validated then begin
      let run_base = addr0 land lnot line_mask in
      Dram.validate t.dram run_base (((addr0 + len0 - 1) lor line_mask) + 1 - run_base);
      validated := true
    end
  in
  let uline w set = Array.unsafe_get (Array.unsafe_get lines w) set in
  let ushadow s w set = Array.unsafe_get (Array.unsafe_get s w) set in
  let rec scan set tag w =
    if w = nways then -1
    else
      let l = uline w set in
      if l.valid && l.tag = tag then begin
        Array.unsafe_set last_way set w;
        w
      end
      else scan set tag (w + 1)
  in
  let rec find_inv set w =
    if w = nways then -1
    else if lockdown land (1 lsl w) = 0 && not (uline w set).valid then w
    else find_inv set (w + 1)
  in
  let rec next_unl w =
    let w = if w >= nways then w - nways else w in
    if lockdown land (1 lsl w) = 0 then w else next_unl (w + 1)
  in
  let rec go buf_off addr len =
    if len > 0 then begin
      let off_in_line = addr land line_mask in
      let chunk = let c = line_size - off_in_line in if c < len then c else len in
      let set = (addr lsr set_shift) land set_mask in
      let tag = addr lsr tag_shift in
      let m = Array.unsafe_get last_way set in
      let lm = uline m set in
      let w = if lm.valid && lm.tag = tag then m else scan set tag 0 in
      if w >= 0 then begin
        (* hit: [charge_hit] + [store_chunk] *)
        stats.hits <- stats.hits + 1;
        Clock.advance clock Calib.l2_hit_line_ns;
        Energy.meter_charge_bytes meter ~per_byte_j:Calib.onsoc_byte_j line_size;
        let l = uline w set in
        if write then begin
          Bytes.unsafe_blit buf buf_off l.data off_in_line chunk;
          (match shadows with
          | Some s -> Taint.fill (ushadow s w set) off_in_line chunk taint
          | None -> ());
          l.dirty <- true
        end
        else Bytes.unsafe_blit l.data off_in_line buf buf_off chunk
      end
      else begin
        stats.misses <- stats.misses + 1;
        let w =
          let inv = find_inv set 0 in
          if inv >= 0 then inv
          else if not any_unlocked then -1
          else begin
            let w = next_unl (Array.unsafe_get rr set) in
            Array.unsafe_set rr set (if w + 1 = nways then 0 else w + 1);
            w
          end
        in
        if w < 0 then begin
          (* allocation impossible: uncached DRAM access (generic
             path's bypass branch, trace already known off) *)
          stats.bypasses <- stats.bypasses + 1;
          Clock.advance clock Calib.dram_line_ns;
          ensure_valid ();
          if write then begin
            Bytes.unsafe_blit buf buf_off raw (addr - dbase) chunk;
            (match dshadow with
            | Some ds -> Taint.fill ds (addr - dbase) chunk taint
            | None -> ());
            Bus.account bus Bus.Write chunk
          end
          else begin
            Bytes.unsafe_blit raw (addr - dbase) buf buf_off chunk;
            Bus.account bus Bus.Read chunk
          end
        end
        else begin
          let l = uline w set in
          (* victim write-back: identical to [write_back] (hook known
             None) *)
          if l.valid && l.dirty then begin
            let wb_addr = (l.tag lsl tag_shift) lor (set lsl set_shift) in
            ensure_valid ();
            Bytes.unsafe_blit l.data 0 raw (wb_addr - dbase) line_size;
            (match dshadow with
            | Some ds -> (
                match shadows with
                | Some s -> Bytes.unsafe_blit (ushadow s w set) 0 ds (wb_addr - dbase) line_size
                | None -> Taint.fill ds (wb_addr - dbase) line_size Taint.Public)
            | None -> ());
            Bus.account bus Bus.Write line_size;
            Clock.advance clock Calib.dram_line_ns;
            l.dirty <- false;
            stats.writebacks <- stats.writebacks + 1
          end;
          (* line fill: identical to [fill_way]'s read + shadow + flags *)
          let base = addr land lnot line_mask in
          ensure_valid ();
          Bytes.unsafe_blit raw (base - dbase) l.data 0 line_size;
          Bus.account bus Bus.Read line_size;
          (match shadows with
          | Some s -> (
              match dshadow with
              | Some ds -> Bytes.unsafe_blit ds (base - dbase) (ushadow s w set) 0 line_size
              | None -> Taint.fill (ushadow s w set) 0 line_size Taint.Public)
          | None -> ());
          l.valid <- true;
          l.dirty <- false;
          l.tag <- tag;
          Array.unsafe_set last_way set w;
          Clock.advance clock fill_ns;
          (* the [store_chunk] of the generic miss path *)
          if write then begin
            Bytes.unsafe_blit buf buf_off l.data off_in_line chunk;
            (match shadows with
            | Some s -> Taint.fill (ushadow s w set) off_in_line chunk taint
            | None -> ());
            l.dirty <- true
          end
          else Bytes.unsafe_blit l.data off_in_line buf buf_off chunk
        end
      end;
      go (buf_off + chunk) (addr + chunk) (len - chunk)
    end
  in
  go buf_off0 addr0 len0

(** [read_run_into t addr buf ~off ~len] — the batched pipeline's
    page-run read: bit-identical simulated state evolution to
    [read_into] with the per-line host overhead hoisted.  Falls back
    to [read_into] whenever tracing, a bus monitor or a write-back
    hook could observe the difference in call shape. *)
let read_run_into t addr buf ~off ~len =
  if not (run_fast_ok t) then read_into t addr buf ~off ~len
  else begin
    check_view "read_run_into" buf ~off ~len;
    let any_unlocked = count_unlocked t 0 0 > 0 in
    run_chunks t ~any_unlocked ~write:false ~taint:Taint.Public buf off addr len
  end

(** [write_run_from t ?taint addr buf ~off ~len] — the batched
    pipeline's page-run write; see [read_run_into]. *)
let write_run_from t ?(taint = Taint.Public) addr buf ~off ~len =
  if not (run_fast_ok t) then write_from t ~taint addr buf ~off ~len
  else begin
    check_view "write_run_from" buf ~off ~len;
    let any_unlocked = count_unlocked t 0 0 > 0 in
    run_chunks t ~any_unlocked ~write:true ~taint buf off addr len
  end

(** Taint join over a physical range as the CPU sees it: resident
    lines' shadows where cached, DRAM's shadow elsewhere. *)
let taint_range t addr len =
  if not (taint_enabled t) then Taint.Public
  else begin
    let acc = ref Taint.Public in
    iter_chunks t addr len (fun a _ n ->
        let off_in_line = a land (t.line_size - 1) in
        let lvl =
          match lookup t a with
          | Some w -> (
              match line_shadow t w (set_of_addr t a) with
              | Some sh -> Taint.max_range sh off_in_line n
              | None -> Taint.Public)
          | None -> Dram.taint_range t.dram a n
        in
        acc := Taint.join !acc lvl);
    !acc
  end

(** Iterate over every valid resident line: [f ~way ~addr data] sees
    the controller's live data array (read-only by convention) — used
    by analysis passes searching the cache for key material. *)
let iter_resident t f =
  for w = 0 to t.ways - 1 do
    for set = 0 to t.sets - 1 do
      let l = t.lines.(w).(set) in
      if l.valid then
        let addr = (l.tag lsl t.tag_shift) lor (set lsl t.set_shift) in
        f ~way:w ~addr l.data
    done
  done

(* ---------------------- maintenance ops -------------------------- *)

let clean_invalidate_way t w =
  (* flushing a locked way is the §4.2 hazard: record it loudly *)
  if Sentry_obs.Trace.on () && t.lockdown land (1 lsl w) <> 0 then
    trace t "locked-way-flush" ~args:[ ("way", Sentry_obs.Event.Int w) ];
  for set = 0 to t.sets - 1 do
    write_back t w set;
    t.lines.(w).(set).valid <- false
  done;
  Clock.advance t.clock Calib.pl310_op_ns

(** [flush_masked t] — the Sentry-patched kernel flush: cleans and
    invalidates every way {e not} excluded by the flush mask, and
    leaves the lockdown register alone. *)
let flush_masked t =
  let start_ns = Clock.now t.clock in
  for w = 0 to t.ways - 1 do
    if t.flush_mask land (1 lsl w) = 0 then clean_invalidate_way t w
  done;
  if Sentry_obs.Trace.on () then
    trace t "flush-masked" ~ts:start_ns
      ~phase:(Sentry_obs.Event.Complete (Clock.now t.clock -. start_ns))
      ~args:[ ("skip_mask", Sentry_obs.Event.Int t.flush_mask) ]

(** [flush_all_stock t] — the stock kernel's full clean+invalidate.
    As the paper's hardware validation found (§4.2), this {e does}
    write back and drop locked ways and resets the lockdown state:
    running it with secrets in a locked way leaks them to DRAM.
    Sentry replaces every call site of this with [flush_masked]. *)
let flush_all_stock t =
  let start_ns = Clock.now t.clock in
  for w = 0 to t.ways - 1 do
    clean_invalidate_way t w
  done;
  if Sentry_obs.Trace.on () then begin
    trace t "flush-all-stock" ~ts:start_ns
      ~phase:(Sentry_obs.Event.Complete (Clock.now t.clock -. start_ns))
      ~args:[ ("dropped_lockdown", Sentry_obs.Event.Int t.lockdown) ];
    if t.lockdown <> 0 then
      trace t "way-lockdown"
        ~args:
          [ ("old_mask", Sentry_obs.Event.Int t.lockdown); ("new_mask", Sentry_obs.Event.Int 0) ]
  end;
  t.lockdown <- 0

(** Per-line maintenance used by DMA coherence code.  Honours the
    flush mask: lines resident in protected ways are left alone. *)
let clean_invalidate_range t addr len =
  iter_chunks t addr len (fun a _ _ ->
      match lookup t a with
      | Some w when t.flush_mask land (1 lsl w) = 0 ->
          let set = set_of_addr t a in
          write_back t w set;
          t.lines.(w).(set).valid <- false
      | Some _ | None -> ())

(** Invalidate without cleaning (used before incoming DMA writes so
    the CPU does not read stale lines).  Locked/masked ways are
    skipped. *)
let invalidate_range t addr len =
  iter_chunks t addr len (fun a _ _ ->
      match lookup t a with
      | Some w when t.flush_mask land (1 lsl w) = 0 ->
          t.lines.(w).(set_of_addr t a).valid <- false
      | Some _ | None -> ())

(** Power-on reset: the low-level firmware resets the controller and
    zeroes the data arrays, so cache contents never survive a cold
    boot (§4.3). *)
let reset t =
  for w = 0 to t.ways - 1 do
    for set = 0 to t.sets - 1 do
      let l = t.lines.(w).(set) in
      l.valid <- false;
      l.dirty <- false;
      l.tag <- 0;
      Bytes.fill l.data 0 t.line_size '\000';
      match line_shadow t w set with
      | Some sh -> Taint.fill sh 0 t.line_size Taint.Public
      | None -> ()
    done
  done;
  t.lockdown <- 0;
  t.flush_mask <- 0;
  Array.fill t.rr 0 t.sets 0

(** Test/attack helper: the raw bytes of a resident line, if any.
    Models probing the SRAM arrays directly (requires decapping the
    SoC — out of the paper's threat model, but used by tests to check
    what is and is not inside the package). *)
let peek_line t addr =
  match lookup t addr with
  | None -> None
  | Some w -> Some (Bytes.copy t.lines.(w).(set_of_addr t addr).data)

let hit_rate t =
  let s = t.stats in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
