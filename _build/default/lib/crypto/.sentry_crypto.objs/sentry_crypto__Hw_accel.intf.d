lib/crypto/hw_accel.mli: Bytes Crypto_api Machine Sentry_soc
