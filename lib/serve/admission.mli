(** Bounded admission queue with explicit backpressure verdicts:
    [Shed] when the FIFO is at [depth] (arrival overload), [Rejected]
    when the pending page backlog would pass [backlog_pages_max]
    (journal/iRAM saturation — the crash-consistency journal can only
    describe so much outstanding re-encryption work). *)

type verdict = Queued | Shed | Rejected

val verdict_name : verdict -> string

type t

(** @raise Invalid_argument on a non-positive limit. *)
val create : depth:int -> backlog_pages_max:int -> t

val length : t -> int
val is_empty : t -> bool

(** Pages of decrypt/re-encrypt work currently queued. *)
val backlog_pages : t -> int

(** Try to admit [req] carrying [pages] pages of pending work.  Depth
    is checked before backlog, so [Shed] means the queue was full and
    [Rejected] means a non-full queue was page-saturated.
    @raise Invalid_argument when [pages <= 0]. *)
val offer : t -> pages:int -> Arrivals.request -> verdict

(** Pop up to [max] requests in FIFO order, releasing their backlog.
    @raise Invalid_argument when [max <= 0]. *)
val take_batch : t -> max:int -> Arrivals.request list
