(** Background applications for the Figs 6-8 experiments: alpine (an
    e-mail reader), vlock (a text lock-screen) and xmms2 (an MP3
    player) — "the types of actions users do when their smartphones
    are locked" (§8.2).

    Each is a page-access trace over a working set with a given
    locality, interleaved with syscalls (their baseline kernel time)
    and periodic access-flag aging sweeps (which make residency
    visible to the pager and produce kernel-time faults even without
    Sentry).  The reported metric is {e time spent in the kernel},
    exactly what the paper plots. *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core

type locality = Uniform | Zipf of float | Streaming of int (* pages per chunk *)

type profile = {
  bg_name : string;
  working_set_kb : int;
  accesses : int;
  locality : locality;
  syscall_every : int;
  syscall_ns : float;
  aging_every : int; (* accesses between access-flag aging sweeps *)
}

(* Calibrated so the without-Sentry kernel times and the
   with-Sentry overhead factors land near Figs 6-8: alpine ~2.7x with
   256 KB of locked cache, vlock small in absolute terms, xmms2 ~1.5x
   with 512 KB. *)
let alpine =
  {
    bg_name = "alpine";
    working_set_kb = 620;
    accesses = 6000;
    locality = Zipf 1.25; (* hot mail index, cold message bodies *)
    syscall_every = 25;
    syscall_ns = 1.0 *. Units.ms;
    aging_every = 200;
  }

let vlock =
  {
    bg_name = "vlock";
    working_set_kb = 144;
    accesses = 800;
    locality = Uniform;
    syscall_every = 40;
    syscall_ns = 1.0 *. Units.ms;
    aging_every = 100;
  }

let xmms2 =
  {
    bg_name = "xmms2";
    working_set_kb = 760;
    accesses = 9000;
    locality = Zipf 1.2;
    syscall_every = 12;
    syscall_ns = 1.0 *. Units.ms;
    aging_every = 300;
  }

(* Beyond the paper's three: the "receiving notifications, providing
   calendar alerts" workload §2 motivates -- tiny bursts over a small
   hot set, long idle gaps (modeled as syscall-heavy, access-light). *)
let notifier =
  {
    bg_name = "notifier";
    working_set_kb = 96;
    accesses = 400;
    locality = Zipf 1.0;
    syscall_every = 10;
    syscall_ns = 0.5 *. Units.ms;
    aging_every = 50;
  }

let all = [ alpine; vlock; xmms2; notifier ]

type result = {
  kernel_time_ns : float;
  faults : int;
  page_ins : int;
  page_outs : int;
}

let working_set_pages p = p.working_set_kb * Units.kib / Page.size

(** [run system proc profile ~seed] replays the trace against [proc]
    (whose main region must cover the working set) and reports kernel
    time accumulated during the run. *)
let run (system : System.t) proc profile ~seed =
  let machine = system.System.machine in
  let prng = Prng.create ~seed in
  let ws = working_set_pages profile in
  let region =
    match Address_space.find_region proc.Process.aspace ~name:"main" with
    | Some r -> r
    | None -> invalid_arg "Background_app.run: no main region"
  in
  if region.Address_space.npages < ws then invalid_arg "Background_app.run: working set too big";
  let zipf = match profile.locality with Zipf s -> Some (Prng.zipf_gen ~n:ws ~s) | _ -> None in
  let stream_pos = ref 0 in
  let page_of_access i =
    match profile.locality with
    | Uniform -> Prng.int prng ws
    | Zipf _ -> (
        match zipf with
        | Some gen ->
            (* zipf rank spread over the set deterministically *)
            let rank = gen prng in
            (rank * 7919) mod ws
        | None -> assert false)
    | Streaming chunk ->
        if i mod chunk = 0 then stream_pos := (!stream_pos + chunk) mod ws;
        (!stream_pos + (i mod chunk)) mod ws
  in
  let age_all () =
    let table = Address_space.table proc.Process.aspace in
    let vpn0 = Page.vpn_of region.Address_space.vstart in
    for i = 0 to ws - 1 do
      match Page_table.find table ~vpn:(vpn0 + i) with
      | Some pte -> pte.Page_table.young <- false
      | None -> ()
    done
  in
  let kernel0 = proc.Process.kernel_time_ns in
  let faults0 = proc.Process.faults in
  let syscall_kernel = ref 0.0 in
  for i = 0 to profile.accesses - 1 do
    if i > 0 && i mod profile.aging_every = 0 then age_all ();
    if i > 0 && i mod profile.syscall_every = 0 then begin
      Clock.advance (Machine.clock machine) profile.syscall_ns;
      syscall_kernel := !syscall_kernel +. profile.syscall_ns
    end;
    let page = page_of_access i in
    Vm.touch system.System.vm proc
      ~vaddr:(region.Address_space.vstart + (page * Page.size))
  done;
  let kernel_time_ns =
    proc.Process.kernel_time_ns -. kernel0 +. !syscall_kernel
  in
  { kernel_time_ns; faults = proc.Process.faults - faults0; page_ins = 0; page_outs = 0 }
