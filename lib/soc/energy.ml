(** Energy accounting with per-category attribution.

    The paper reports energy for encryption, decryption, page zeroing
    and full-memory sweeps separately; categories keep those
    attributable without separate meters.

    [charge] sits on the per-cache-line fast path, so accumulators are
    single-float records (flat representation: updating one allocates
    nothing) and the hit path uses exception-style [Hashtbl.find] —
    the only allocation left per call is the caller's boxed float
    argument. *)

type cell = { mutable j : float }

type t = { total : cell; by_category : (string, cell) Hashtbl.t }

let create () = { total = { j = 0.0 }; by_category = Hashtbl.create 16 }

let charge t ~category joules =
  t.total.j <- t.total.j +. joules;
  match Hashtbl.find t.by_category category with
  | c -> c.j <- c.j +. joules
  | exception Not_found -> Hashtbl.add t.by_category category { j = joules }

(** A pre-resolved charging handle: the per-cache-line components look
    their category cell up once at construction, so each charge is two
    float adds — no string hashing on the access path.  Charges made
    through a meter land in the same cells as [charge], so the two are
    freely interchangeable and bit-identical. *)
type meter = { totals : cell; own : cell }

let meter t ~category =
  let own =
    match Hashtbl.find t.by_category category with
    | c -> c
    | exception Not_found ->
        let c = { j = 0.0 } in
        Hashtbl.add t.by_category category c;
        c
  in
  { totals = t.total; own }

let meter_charge_bytes m ~per_byte_j bytes =
  let joules = float_of_int bytes *. per_byte_j in
  m.totals.j <- m.totals.j +. joules;
  m.own.j <- m.own.j +. joules

(** [charge_bytes t ~category ~per_byte_j bytes] charges
    [float_of_int bytes *. per_byte_j] joules.  The product is formed
    here and feeds the flat accumulators directly, so per-cache-line
    call sites pass only an int and allocate nothing — the boxed-float
    argument [charge] costs them.  The expression is exactly what those
    call sites computed before, so accounting stays bit-identical. *)
let charge_bytes t ~category ~per_byte_j bytes =
  let joules = float_of_int bytes *. per_byte_j in
  t.total.j <- t.total.j +. joules;
  match Hashtbl.find t.by_category category with
  | c -> c.j <- c.j +. joules
  | exception Not_found -> Hashtbl.add t.by_category category { j = joules }

let total t = t.total.j

let category t name =
  match Hashtbl.find_opt t.by_category name with Some c -> c.j | None -> 0.0

let categories t =
  Hashtbl.fold (fun k c acc -> (k, c.j) :: acc) t.by_category []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  t.total.j <- 0.0;
  Hashtbl.reset t.by_category

(** [metered t ~category:c f] runs [f ()] and returns its result with
    the energy charged to [c] during the call. *)
let metered t ~category:c f =
  let before = category t c in
  let result = f () in
  (result, category t c -. before)

let pp ppf t =
  Fmt.pf ppf "total %a" Sentry_util.Units.pp_energy t.total.j;
  List.iter
    (fun (k, v) -> Fmt.pf ppf "@ %s: %a" k Sentry_util.Units.pp_energy v)
    (categories t)
