lib/soc/dram.mli: Bus Bytes Clock Memmap Prng Sentry_util
