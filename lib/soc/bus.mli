(** The external memory bus: everything leaving the SoC package
    crosses it (L2 miss fills, write-backs, uncached accesses, DMA) —
    and a bus-monitoring probe (§3.1) sees all of it.  Accesses served
    from iRAM or L2 hits never appear here. *)

type op = Read | Write

type transaction = {
  op : op;
  addr : int;
  data : Bytes.t;
      (** snapshot of the bytes that crossed the bus — a defensive
          copy taken at record time, never aliased to the initiator's
          buffer *)
  taint : Taint.level;
      (** provenance join over [data] ([Public] when taint tracking is
          off) *)
  time_ns : float;
  initiator : [ `Cpu | `Dma | `L2 ];
}

type t

val create : clock:Clock.t -> energy:Energy.t -> t

(** Register a probe; returns a detach function. *)
val attach_monitor : t -> (transaction -> unit) -> unit -> unit

val monitored : t -> bool

(** Log one transaction (called by the L2 controller, the CPU's
    uncached path and the DMA engine).  Monitors receive a snapshot:
    the transaction's [data] is copied here, so mutating the buffer
    after [record] returns cannot alter any monitor's view. *)
val record :
  t -> initiator:[ `Cpu | `Dma | `L2 ] -> ?taint:Taint.level -> op -> int -> Bytes.t -> unit

(** Like [record], but the transaction's bytes are the [len]-byte view
    of [buf] at [off]: the unmonitored, untraced path allocates
    nothing, while an attached monitor still receives a defensive
    snapshot taken at record time.  [taint] is required (pass
    [Taint.Public] when untracked) so the per-line fast path never
    wraps it in an option.  [record] is implemented on top. *)
val record_view :
  t ->
  initiator:[ `Cpu | `Dma | `L2 ] ->
  taint:Taint.level ->
  op ->
  int ->
  Bytes.t ->
  off:int ->
  len:int ->
  unit

(** The accounting-only core of [record_view] — identical transaction
    counters and bus energy, no trace, no monitor delivery.  Only for
    callers that have already checked [monitored t = false] and that
    tracing is off (the batched page pipeline's line loop). *)
val account : t -> op -> int -> unit

(** (transaction count, bytes read, bytes written). *)
val stats : t -> int * int * int

val pp_op : Format.formatter -> op -> unit
val pp_transaction : Format.formatter -> transaction -> unit
