(** The assembled platform: two configurations mirroring the paper's
    prototypes ([tegra3]: cache locking + TrustZone + no accelerator;
    [nexus4]: locked firmware, iRAM only, crypto accelerator). *)

open Sentry_util

type config = {
  name : string;
  dram_size : int;
  iram_size : int;
  cache_locking_available : bool;
  has_crypto_accel : bool;
  trustzone_available : bool;
  has_pinned_memory : bool;  (** the §10 future-architecture feature *)
}

val tegra3 : ?dram_size:int -> unit -> config
val nexus4 : ?dram_size:int -> unit -> config

(** The hypothetical §10 platform: Tegra-class plus pin-on-SoC
    memory. *)
val future : ?dram_size:int -> unit -> config

type t

val create : ?seed:int -> config -> t

val config : t -> config
val clock : t -> Clock.t
val energy : t -> Energy.t
val prng : t -> Prng.t
val bus : t -> Bus.t
val dram : t -> Dram.t
val iram : t -> Iram.t
val l2 : t -> Pl310.t
val fuse : t -> Fuse.t
val trustzone : t -> Trustzone.t
val dma : t -> Dma.t
val cpu : t -> Cpu.t

(** The pin-on-SoC memory, on platforms that have it. *)
val pinned : t -> Pinned_mem.t option

(** Current simulated time (ns). *)
val now : t -> float

val dram_region : t -> Memmap.region
val iram_region : t -> Memmap.region
val in_dram : t -> int -> bool
val in_iram : t -> int -> bool
val in_pinned : t -> int -> bool

(** {2 Taint tracking}

    Off (and free) by default.  [enable_taint] allocates shadow-byte
    stores mirroring DRAM, iRAM, the L2 lines and pinned memory;
    writers then label their stores via [with_taint]. *)

(** Allocate every shadow store.  Idempotent. *)
val enable_taint : t -> unit

val taint_enabled : t -> bool

(** [with_taint t level f] — run [f] with every CPU store it performs
    labelled [level].  Nests; innermost label wins; exception-safe. *)
val with_taint : t -> Taint.level -> (unit -> 'a) -> 'a

(** The label currently applied to CPU stores ([Public] outside any
    [with_taint]). *)
val ambient_taint : t -> Taint.level

(** Taint join over a physical range, seen through the cache for DRAM
    addresses.  [Public] when tracking is off or the range is
    unmapped. *)
val taint_of : t -> int -> int -> Taint.level

exception Bus_fault of int

(** Cached CPU read/write: DRAM addresses go through the L2, iRAM is
    served on-SoC.  @raise Bus_fault on unmapped addresses. *)
val read : t -> int -> int -> Bytes.t

val write : t -> int -> Bytes.t -> unit

(** Scatter-gather variants: [read_into] fills [buf] at [off],
    [write_from] stores the [len]-byte view of [buf] at [off].  The
    allocating pair above is implemented on top and charges
    identically. *)
val read_into : t -> int -> Bytes.t -> off:int -> len:int -> unit

val write_from : t -> int -> Bytes.t -> off:int -> len:int -> unit

(** Page-run variants used by the batched lock/unlock pipeline:
    bit-identical simulated state evolution to [read_into] /
    [write_from] (differentially tested), with the per-line host
    overhead hoisted out of DRAM runs via {!Pl310.read_run_into}. *)
val read_run_into : t -> int -> Bytes.t -> off:int -> len:int -> unit

val write_run_from : t -> int -> Bytes.t -> off:int -> len:int -> unit

(** Uncached CPU access: straight to DRAM over the bus. *)
val read_uncached : t -> int -> int -> Bytes.t

val write_uncached : t -> int -> Bytes.t -> unit

(** Bulk raw store with no per-access charging, for operations whose
    cost is modeled wholesale (e.g. the zeroing thread); drops stale
    cache lines over the range. *)
val write_raw : t -> int -> Bytes.t -> unit

val read_byte : t -> int -> char
val write_byte : t -> int -> char -> unit

(** Charge pure compute time (no memory traffic). *)
val compute : t -> ns:float -> unit

type reboot =
  | Warm  (** OS reboot: no power loss; boot overwrites low DRAM *)
  | Reflash  (** short power disconnect; firmware wipes on-SoC state *)
  | Hard_reset of float  (** power removed for the given seconds *)

(** The three Table 2 reset variants. *)
val reboot : t -> reboot -> unit

val boots : t -> int
