(** Trace/metrics exporters. *)

(** Chrome [trace_event] document (loadable in Perfetto and
    [chrome://tracing]): one lane per subsystem, instants as ["i"],
    spans as ["X"] with microsecond [ts]/[dur]. *)
val chrome_trace : ?process_name:string -> Event.t list -> Json_out.t

val chrome_trace_string : ?process_name:string -> Event.t list -> string

(** One event as a JSON object (the JSONL record shape). *)
val event_json : Event.t -> Json_out.t

(** One JSON object per line. *)
val jsonl : Event.t list -> string

(** {2 Causal span views} *)

(** Folded stacks for flamegraph tooling (flamegraph.pl, speedscope,
    inferno): one ["frame;frame;frame self_ns"] line per unique stack,
    sorted by stack.  Frames are ["subsystem:name"]; self time
    excludes tracked children so widths add up. *)
val folded : Event.t list -> string

type span_row = {
  sr_frame : string;
  sr_count : int;
  sr_total_ns : float;
  sr_self_ns : float;
}

(** Per-frame self/total-time profile over tracked spans, heaviest
    self time first.  Default [limit]: 20 rows. *)
val top_spans : ?limit:int -> Event.t list -> span_row list

(** Render [top_spans] rows as an aligned text table. *)
val top_spans_table : span_row list -> string

(** Flat metrics, one [{"key":…,"value":…}] object per line. *)
val metrics_jsonl : (string * float) list -> string

(** Flat metrics as a single JSON object. *)
val metrics_json : (string * float) list -> Json_out.t

val write_file : path:string -> string -> unit
