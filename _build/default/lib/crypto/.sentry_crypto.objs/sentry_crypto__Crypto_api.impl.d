lib/crypto/crypto_api.ml: List
