(** Unified on-SoC storage: iRAM or locked-L2, behind one allocator
    interface, so the rest of Sentry is agnostic to which §4
    alternative the platform offers. *)

open Sentry_soc

type t =
  | Iram_storage of Iram_alloc.t
  | Locked_storage of Locked_cache.t
  | Pinned_storage of Iram_alloc.t (* §10 pin-on-SoC memory *)

let of_config machine (config : Config.t) ~arena_base =
  match config.Config.storage with
  | Config.Use_iram -> Iram_storage (Iram_alloc.create machine)
  | Config.Use_locked_l2 ->
      Locked_storage (Locked_cache.create machine ~arena_base ~max_ways:config.Config.max_locked_ways)
  | Config.Use_pinned -> (
      match Machine.pinned machine with
      | Some pm ->
          let region = Pinned_mem.region pm in
          Pinned_storage
            (Iram_alloc.create_range ~base:region.Memmap.base ~limit:(Memmap.limit region))
      | None -> invalid_arg "Onsoc: platform has no pinned on-SoC memory")

let describe = function
  | Iram_storage _ -> "iRAM"
  | Locked_storage _ -> "locked L2 cache"
  | Pinned_storage _ -> "pinned on-SoC memory (S10)"

(** [alloc t ~bytes] — an on-SoC buffer.  Locked-L2 storage is page
    granular; iRAM is byte granular. *)
let alloc t ~bytes =
  match t with
  | Iram_storage a | Pinned_storage a -> (
      match Iram_alloc.alloc a ~bytes with
      | Some addr -> addr
      | None -> failwith "Onsoc.alloc: on-SoC storage exhausted")
  | Locked_storage lc ->
      if bytes > 4096 then failwith "Onsoc.alloc: locked-L2 allocations are page-sized";
      Locked_cache.alloc_page lc

let free t addr =
  match t with
  | Iram_storage a | Pinned_storage a -> Iram_alloc.free a addr
  | Locked_storage lc -> Locked_cache.free_page lc addr

(** TrustZone hardening: deny all DMA windows over the storage.  For
    iRAM this is {e required} — iRAM is ordinary memory to a DMA
    engine (§4.4).  Locked-L2 contents are invisible to DMA anyway
    (transfers bypass the cache), but the arena region is denied too
    so a DMA {e write} cannot plant data under the locked lines. *)
let protect_from_dma t machine =
  let tz = Machine.trustzone machine in
  Trustzone.with_secure_world tz (fun () ->
      match t with
      | Iram_storage _ -> Trustzone.deny_dma tz (Machine.iram_region machine)
      | Locked_storage lc ->
          Trustzone.deny_dma tz
            (Memmap.region ~base:lc.Locked_cache.arena_base
               ~size:(Locked_cache.arena_bytes ~machine ~max_ways:lc.Locked_cache.max_ways))
      | Pinned_storage _ ->
          (* nothing to program: DMA cannot decode this memory at all —
             the hardware guarantee §10 asks for *)
          ())
