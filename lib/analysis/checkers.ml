(** The built-in invariant suite: one module per rule of the Sentry
    security argument, each phrased over taint provenance rather than
    content, so a passing run certifies the {e mechanism} (secrets
    never flowed off-SoC) and not just a lucky memory image.

    All rules are read-only: they inspect raw arrays, shadow stores
    and registers directly and never issue simulated CPU accesses that
    would themselves generate events. *)

open Sentry_soc
open Sentry_core
open Sentry_kernel
open Checker

let machine sentry = System.machine (Sentry.system sentry)

(* Transition events fire after the state is updated, so "the device
   is now locked" is just [Sentry.is_locked]. *)
let locked_event sentry = function
  | Transition { new_state = Lock_state.Locked | Lock_state.Deep_locked; _ } | On_demand ->
      Sentry.is_locked sentry
  | Transition _ | Bus_txn _ | Eviction _ | Dma_read _ -> false

let secret = Taint.Secret_cleartext
let is_secret l = Taint.rank l >= Taint.rank secret

(** No byte of DRAM may carry secret-cleartext taint while the device
    is locked — the paper's core claim (§2): everything off-SoC is
    ciphertext by the time the lock completes. *)
module No_secret_in_dram = struct
  type t = { addr : int; len : int }

  let name = "no-cleartext-secret-in-dram-while-locked"

  let check sentry event =
    if not (locked_event sentry event) then []
    else
      let dram = Machine.dram (machine sentry) in
      match Dram.shadow dram with
      | None -> []
      | Some sh ->
          let base = (Dram.region dram).Memmap.base in
          Taint.runs sh ~level:secret
          |> List.map (fun (off, len) -> { addr = base + off; len })

  let is_problematic _ = true

  let to_string f =
    Printf.sprintf "secret cleartext in DRAM at 0x%08x (%d bytes) while locked" f.addr f.len
end

(** No secret-cleartext bytes may cross the external memory bus while
    locked: a FuturePlus-style probe (§3.1) sees every transaction. *)
module No_tainted_bus = struct
  type t = Bus.transaction

  let name = "no-tainted-bus-transaction-while-locked"

  let check sentry event =
    match event with
    | Bus_txn txn when Sentry.is_locked sentry && is_secret txn.Bus.taint -> [ txn ]
    | _ -> []

  let is_problematic _ = true

  let to_string txn =
    Fmt.str "secret-tainted bus transaction while locked: %a" Bus.pp_transaction txn
end

(** A dirty line in a locked way must never be written back: lockdown
    is the {e only} thing keeping locked-L2 secrets inside the SoC
    (§4.2, §4.5 — the stock-flush hazard). *)
module Locked_way_never_evicted = struct
  type t = { way : int; addr : int }

  let name = "locked-way-never-evicted"

  let check _sentry event =
    match event with
    | Eviction { way; addr; locked = true } -> [ { way; addr } ]
    | _ -> []

  let is_problematic _ = true

  let to_string f =
    Printf.sprintf "line 0x%08x evicted from locked way %d to DRAM" f.addr f.way
end

(** The register file must carry no secret taint once the device is
    locked/suspended: a context switch spills registers to a DRAM
    kernel stack, which is why [onsoc_enable_irq] zeroes them (§6.2). *)
module Registers_clean_on_suspend = struct
  type t = Taint.level

  let name = "registers-clean-on-suspend"

  let check sentry event =
    if not (locked_event sentry event) then []
    else
      let level = Cpu.reg_taint (Machine.cpu (machine sentry)) in
      if is_secret level then [ level ] else []

  let is_problematic _ = true

  let to_string level =
    Printf.sprintf "register file carries %s taint while locked" (Taint.to_string level)
end

(** Every frame freed by a sensitive process must be scrubbed before
    the lock completes — the freed-page barrier of §7 (stock Linux
    zeroes "eventually", which is too late). *)
module Freed_pages_zeroed = struct
  type t = { frame : int; level : Taint.level }

  let name = "freed-pages-zeroed-before-lock"

  let check sentry event =
    match event with
    | Transition { new_state = Lock_state.Locked | Lock_state.Deep_locked; _ } ->
        let m = machine sentry in
        let sys = Sentry.system sentry in
        Frame_alloc.pending_dirty sys.System.frames
        |> List.filter_map (fun frame ->
               let level = Machine.taint_of m frame Page.size in
               if is_secret level then Some { frame; level } else None)
    | _ -> []

  let is_problematic _ = true

  let to_string f =
    Printf.sprintf "freed frame 0x%08x still %s at lock time" f.frame (Taint.to_string f.level)
end

(** Secrets parked in iRAM must sit behind a TrustZone DMA deny
    window: iRAM is ordinary memory to a DMA engine (§4.4). *)
module Dma_window_excludes_iram = struct
  type t = { addr : int; len : int; via : [ `Window | `Observed_read ] }

  let name = "dma-window-excludes-iram"

  let check sentry event =
    match event with
    | Transition _ | On_demand -> (
        let m = machine sentry in
        let iram = Machine.iram m in
        match Iram.shadow iram with
        | None -> []
        | Some sh ->
            let base = (Iram.region iram).Memmap.base in
            let tz = Machine.trustzone m in
            Taint.runs sh ~level:secret
            |> List.filter_map (fun (off, len) ->
                   let addr = base + off in
                   if Trustzone.dma_allowed tz ~addr ~len then Some { addr; len; via = `Window }
                   else None))
    | Dma_read { addr; len; taint } when is_secret taint -> [ { addr; len; via = `Observed_read } ]
    | Bus_txn _ | Eviction _ | Dma_read _ -> []

  let is_problematic _ = true

  let to_string f =
    match f.via with
    | `Window ->
        Printf.sprintf "secret bytes at 0x%08x (%d bytes) are inside an open DMA window" f.addr
          f.len
    | `Observed_read ->
        Printf.sprintf "DMA read of secret bytes at 0x%08x (%d bytes) completed" f.addr f.len
end

(** The root keys exist only in the fuse and on-SoC storage: their
    bytes must never appear in the DRAM array, nor in unlocked cache
    ways (whose lines eventually write back).  Content-based on
    purpose — this rule guards against flows the taint plumbing itself
    might miss. *)
module Root_key_confined = struct
  type t = { key : string; where : string; addr : int }

  let name = "root-key-confined-to-fuse-and-iram"

  let key_findings m ~label key =
    let found = ref [] in
    (match Sentry_util.Bytes_util.find (Dram.raw (Machine.dram m)) key with
    | Some off ->
        let addr = (Dram.region (Machine.dram m)).Memmap.base + off in
        found := { key = label; where = "DRAM"; addr } :: !found
    | None -> ());
    let l2 = Machine.l2 m in
    let lockdown = Pl310.lockdown l2 in
    Pl310.iter_resident l2 (fun ~way ~addr data ->
        if lockdown land (1 lsl way) = 0 && Sentry_util.Bytes_util.contains data key then
          found := { key = label; where = Printf.sprintf "unlocked L2 way %d" way; addr } :: !found);
    !found

  let check sentry event =
    match event with
    | Transition { new_state = Lock_state.Locked | Lock_state.Deep_locked; _ } | On_demand ->
        let m = machine sentry in
        let keys = Sentry.key_manager sentry in
        let vol = key_findings m ~label:"volatile" (Key_manager.volatile_key keys) in
        let pers =
          match Key_manager.persistent_key keys with
          | Some k -> key_findings m ~label:"persistent" k
          | None -> []
        in
        vol @ pers
    | Transition _ | Bus_txn _ | Eviction _ | Dma_read _ -> []

  let is_problematic _ = true

  let to_string f = Printf.sprintf "%s root key found in %s at 0x%08x" f.key f.where f.addr
end

(** While locked, [Lock_state], the PTE [encrypted]/[young] bits and
    scheduler parking must agree — the invariant an interrupted lock
    walk breaks and [Sentry.recover] restores.  "No cleartext after an
    interrupted lock": every present page of a should-encrypt region
    is ciphertext with its young bit clear (unless resident in locked
    cache via the background pager, or mapping-revoked by the
    [No_access] backend — whose cleartext-in-DRAM concession the
    cold-boot/DMA checkers score instead), and every non-background
    sensitive process is parked un-schedulable. *)
module Locked_state_consistent = struct
  type t =
    | Cleartext_page of { pid : int; vpn : int }
    | Stale_young of { pid : int; vpn : int }
    | Not_parked of { pid : int; pname : string }

  let name = "locked-state-consistent"

  (** The pure audit, independent of the event stream — the fault
      suite calls this directly after recovery. *)
  let audit sentry =
    let sys = Sentry.system sentry in
    let bg = Sentry.background_processes sentry in
    Sentry.sensitive_processes sentry
    |> List.concat_map (fun (proc : Process.t) ->
           let pid = proc.Process.pid in
           let page_findings =
             Address_space.regions proc.Process.aspace
             |> List.concat_map (fun region ->
                    if not (Share_policy.should_encrypt ~all_procs:sys.System.procs region)
                    then []
                    else
                      Address_space.region_ptes proc.Process.aspace region
                      |> List.filter_map (fun (vpn, pte) ->
                             if not pte.Page_table.present then None
                             else if pte.Page_table.backing <> None then
                               (* resident in a locked-cache page: the
                                  cleartext never reaches DRAM *)
                               None
                             else if pte.Page_table.no_access then
                               (* No_access backend: the mapping is
                                  revoked, so the page is protected in
                                  this rule's sense (the CPU cannot
                                  reach it) even though DRAM keeps
                                  cleartext — the cold-boot/DMA
                                  checkers score that concession *)
                               if pte.Page_table.young then Some (Stale_young { pid; vpn })
                               else None
                             else if not pte.Page_table.encrypted then
                               Some (Cleartext_page { pid; vpn })
                             else if pte.Page_table.young then Some (Stale_young { pid; vpn })
                             else None))
           in
           let parked =
             if
               List.memq proc bg
               || (not (List.memq proc sys.System.procs))
               || proc.Process.state = Process.Locked_out
             then []
             else [ Not_parked { pid; pname = proc.Process.name } ]
           in
           page_findings @ parked)

  let check sentry event = if locked_event sentry event then audit sentry else []

  let is_problematic _ = true

  let to_string = function
    | Cleartext_page { pid; vpn } ->
        Printf.sprintf "pid %d page %d is cleartext in DRAM while locked" pid vpn
    | Stale_young { pid; vpn } ->
        Printf.sprintf "pid %d page %d has a stale young bit while locked" pid vpn
    | Not_parked { pid; pname } ->
        Printf.sprintf "sensitive process %s (pid %d) still schedulable while locked" pname pid
end

(** Every built-in rule, in evaluation order. *)
let all : packed list =
  [
    Packed (module No_secret_in_dram);
    Packed (module No_tainted_bus);
    Packed (module Locked_way_never_evicted);
    Packed (module Registers_clean_on_suspend);
    Packed (module Freed_pages_zeroed);
    Packed (module Dma_window_excludes_iram);
    Packed (module Root_key_confined);
    Packed (module Locked_state_consistent);
  ]

let names = List.map packed_name all
