(** Process model: an address space plus scheduling state and the
    Sentry sensitivity mark.

    [Locked_out] is the paper's "un-schedulable" state: processes
    whose memory was encrypted at screen-lock are parked on a special
    queue so the scheduler cannot run them against ciphertext (§7).
    Background-capable sensitive processes instead keep running in
    [Runnable] with the encrypted-DRAM pager active. *)

type run_state = Runnable | Sleeping | Locked_out

type t = {
  pid : int;
  name : string;
  aspace : Address_space.t;
  kstack : int; (* kernel stack frame (DRAM) for register spills *)
  mutable sensitive : bool;
  mutable state : run_state;
  mutable kernel_time_ns : float;
  mutable user_time_ns : float;
  mutable faults : int;
}

(* The default pid space is OS-process-global (it mimics a kernel's
   pid space); the [Atomic.t] keeps allocation race-free across
   Domains.  Interleaved cross-domain allocation is still
   nondeterministic, though — and pids feed the per-page ESSIV IVs —
   so sharded harnesses pass an explicit [?pid] (from a per-shard
   base, via [System.boot ~pid_base]) and never touch this counter;
   single-domain deterministic harnesses [reset_pids] before
   booting. *)
let next_pid = Atomic.make 1

let reset_pids () = Atomic.set next_pid 1

let create ?pid ~name ~aspace ~kstack () =
  let pid = match pid with Some p -> p | None -> Atomic.fetch_and_add next_pid 1 in
  {
    pid;
    name;
    aspace;
    kstack;
    sensitive = false;
    state = Runnable;
    kernel_time_ns = 0.0;
    user_time_ns = 0.0;
    faults = 0;
  }

let mark_sensitive t = t.sensitive <- true

let pp ppf t =
  Fmt.pf ppf "%s(pid=%d%s)" t.name t.pid (if t.sensitive then ", sensitive" else "")
