(** Crash-consistency journal for lock/unlock walks: one 32-byte
    record in iRAM recording which pass is in flight and how far it
    got.  Written last per page (after the PTE flags), so a crash only
    under-counts and recovery's sweep stays idempotent.  Survives warm
    reboots; wiped by the iRAM firmware clear on power-loss reboots
    ([load] then returns [None] and recovery falls back to a full
    sweep keyed off [Lock_state]). *)

open Sentry_soc

type pass = Lock_pass | Unlock_pass

val pass_name : pass -> string

type entry = { pass : pass; pid : int; pages_done : int }

type t

(** Record footprint in iRAM — what to [Iram_alloc.alloc]. *)
val size_bytes : int

(** [create machine ~addr] manages the record at iRAM address [addr].
    Nothing is written until [begin_pass]. *)
val create : Machine.t -> addr:int -> t

val addr : t -> int

(** Open a pass (written before the first page transform). *)
val begin_pass : t -> pass -> pid:int -> unit

(** One more page fully transformed in process [pid]. *)
val record : t -> pid:int -> unit

(** Pages per record write in the batched pipeline.  Mid-pass the
    journaled [pages_done] is a lower bound, trailing reality by up to
    [coalesce - 1] pages — safe, as recovery's sweep is keyed off PTE
    bits and the count only corroborates. *)
val coalesce : int

(** [record_batch t ~pid ~pages] — [pages] more pages transformed in
    process [pid], folded into one iRAM record write. *)
val record_batch : t -> pid:int -> pages:int -> unit

(** Close the pass: record returns to idle. *)
val commit : t -> unit

(** Read the record back; [None] when idle, wiped, or corrupt. *)
val load : t -> entry option
