lib/crypto/key_derive.ml: Bytes Char Machine Sentry_soc Sentry_util Sha256 Trustzone
