(** MemShield-style bulk-crypto offload engine: a deep command queue
    in front of a dedicated crypto unit.  High line rate, high fixed
    per-command completion latency, explicit completion polling — so
    pipelined batches win over the CPU cipher while single-page lazy
    faults lose.  Models simulated time/energy only; callers perform
    the byte transform host-side ([Aes_on_soc.bulk_fused_raw]) so
    ciphertext is bit-identical across backends. *)

type stats = {
  mutable submitted : int;
  mutable completed : int;
  mutable stalls : int;  (** submits that blocked on a full queue *)
  mutable flushes : int;
  mutable stall_ns : float;  (** CPU time spent waiting on the engine *)
}

type t

val create : ?queue_depth:int -> Sentry_soc.Machine.t -> t

(** Queue one page-sized command: charges the doorbell cost, blocks if
    the queue is full, advances the engine timeline and charges engine
    energy.  The command's data must already have been transformed
    host-side. *)
val submit : t -> bytes:int -> unit

(** Block until every in-flight command has completed. *)
val flush : t -> unit

(** Commands currently in flight. *)
val depth : t -> int

(** Drop all queue state (crash recovery: the queue does not survive a
    reset; the journal replay re-submits). *)
val reset : t -> unit

val stats : t -> stats
