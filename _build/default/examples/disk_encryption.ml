(** Securing persistent state with dm-crypt + AES_On_SoC (§7).

    Two otherwise-identical encrypted volumes: one keyed through the
    stock (DRAM-resident) cipher, one through AES_On_SoC.  After a
    cold boot, the Halderman-style key-schedule scanner recovers the
    stock volume's key from the DRAM image — and finds nothing when
    the schedule lives on-SoC.

    Run with: [dune exec examples/disk_encryption.exe] *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core

(* Build a system with an encrypted volume; the cipher the Crypto API
   hands dm-crypt depends on whether Sentry is installed. *)
let build ~with_sentry =
  let system = System.boot `Tegra3 ~seed:(if with_sentry then 31 else 32) in
  let machine = System.machine system in
  let api, label =
    if with_sentry then begin
      (* Sentry registers AES_On_SoC at top priority in the registry *)
      ignore (Sentry.install system (Config.default `Tegra3));
      (system.System.crypto_api, "AES_On_SoC")
    end
    else begin
      let api = Sentry_crypto.Crypto_api.create () in
      let frame = Frame_alloc.alloc system.System.frames in
      let generic =
        Sentry_crypto.Generic_aes.create machine ~ctx_base:frame
          ~variant:Sentry_crypto.Perf.Crypto_api_kernel
      in
      Sentry_crypto.Generic_aes.register generic api;
      (api, "generic AES")
    end
  in
  let key = Prng.bytes (Prng.create ~seed:777) 16 in
  let dev = Block_dev.create machine ~kind:Block_dev.Emmc ~size:Units.mib in
  let dm = Dm_crypt.create ~api ~key (Block_dev.target dev) in
  (machine, dev, dm, key, label)

let () =
  List.iter
    (fun with_sentry ->
      let machine, dev, dm, key, label = build ~with_sentry in
      Printf.printf "--- volume keyed through %s (driver: %s) ---\n" label
        (Dm_crypt.cipher_name dm);
      (* write a file-system's worth of secrets *)
      let t = Dm_crypt.target dm in
      let secret = Bytes.of_string "[wallet.dat] balance=31337 BTC" in
      Blockio.write t ~off:4096 secret;
      let back = Blockio.read t ~off:4096 ~len:(Bytes.length secret) in
      assert (Bytes.equal back secret);
      (* the medium itself holds only ciphertext *)
      Printf.printf "  plaintext on raw flash: %b\n"
        (Bytes_util.contains (Block_dev.raw dev) secret);
      (* flush the caches (time passes), then cold-boot the device *)
      Pl310.flush_masked (Machine.l2 machine);
      let keys =
        Sentry_attacks.Cold_boot.recover_keys machine Sentry_attacks.Cold_boot.Os_reboot
      in
      let got_key = List.exists (Bytes.equal key) keys in
      Printf.printf "  cold boot + key-schedule scan recovers the volume key: %b\n" got_key;
      if with_sentry then assert (not got_key) else assert got_key)
    [ false; true ];
  print_endline "disk_encryption OK"
