(** Arithmetic in GF(2^8) with the AES reduction polynomial 0x11b. *)

val reduce_poly : int

(** Multiply by x (i.e. by 2) in the field. *)
val xtime : int -> int

(** Field multiplication. *)
val mul : int -> int -> int

(** [pow a n] by square-and-multiply. *)
val pow : int -> int -> int

(** Multiplicative inverse; [inv 0 = 0] by AES convention. *)
val inv : int -> int

(** The AES S-box affine transformation. *)
val affine : int -> int

(** S-box entry: affine transform of the field inverse. *)
val sbox_entry : int -> int
