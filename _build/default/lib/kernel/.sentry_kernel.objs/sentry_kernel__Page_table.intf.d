lib/kernel/page_table.mli:
