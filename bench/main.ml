(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation (§8), then runs the Bechamel microbenchmark
    suite over the implementation's primitives.

    {v
    dune exec bench/main.exe                 # everything
    dune exec bench/main.exe -- fig9 fig10   # selected experiments
    dune exec bench/main.exe -- micro        # microbenchmarks only
    dune exec bench/main.exe -- --list       # what exists
    v} *)

let list_experiments () =
  print_endline "Available experiments:";
  List.iter
    (fun (e : Sentry_experiments.Experiments.entry) ->
      Printf.printf "  %-11s %s\n" e.Sentry_experiments.Experiments.id
        e.Sentry_experiments.Experiments.description)
    Sentry_experiments.Experiments.all;
  print_endline "  micro       bechamel microbenchmarks"

let run_all () =
  print_endline "Sentry: reproduction of every table and figure (ASPLOS'15)";
  print_endline "==========================================================\n";
  List.iter Sentry_experiments.Experiments.run_and_print Sentry_experiments.Experiments.all;
  Micro.run ()

let run_selected ~csv ids =
  List.iter
    (fun id ->
      if id = "micro" then Micro.run ()
      else
        match Sentry_experiments.Experiments.find id with
        | Some e ->
            if csv then
              List.iter
                (fun t -> print_string (Sentry_util.Table.to_csv t))
                (e.Sentry_experiments.Experiments.run ())
            else Sentry_experiments.Experiments.run_and_print e
        | None ->
            Printf.eprintf "unknown experiment %S (try --list)\n" id;
            exit 1)
    ids

(* ------------------------- machine-readable ---------------------- *)

let find_or_die id =
  match Sentry_experiments.Experiments.find id with
  | Some e -> e
  | None ->
      Printf.eprintf "unknown experiment %S (try --list)\n" id;
      exit 1

(* One timed run with its host GC cost: wall-clock seconds plus the
   minor/major words the run allocated.  The GC numbers are what the
   zero-allocation fast path is accountable to; the simulated outputs
   themselves are independent of them by construction.

   Caches are dropped before the bracket so trials are i.i.d. — with
   the Figs 2-5 memo warm, only the first trial did the work and the
   committed fig2/fig4 rows showed min ≈ 4 µs vs max ≈ 6.4 s. *)
let time_once run =
  Sentry_experiments.Experiments.reset_caches ();
  let gc0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  ignore (run ());
  let dt = Unix.gettimeofday () -. t0 in
  let gc1 = Gc.quick_stat () in
  (dt, gc1.Gc.minor_words -. gc0.Gc.minor_words, gc1.Gc.major_words -. gc0.Gc.major_words)

(* BENCH_sentry.json: wall-clock summaries per experiment plus the key
   simulator counters from one traced lock-cycle, under a versioned
   schema so downstream tooling can evolve. *)
let run_json ~path ~trials ~slo_spec ids =
  let entries =
    match ids with
    | [] -> Sentry_experiments.Experiments.all
    | ids -> List.map find_or_die ids
  in
  let open Sentry_obs in
  let experiment (e : Sentry_experiments.Experiments.entry) =
    let minor = ref 0.0 and major = ref 0.0 in
    let times =
      Array.init trials (fun _ ->
          let dt, dminor, dmajor = time_once e.Sentry_experiments.Experiments.run in
          minor := !minor +. dminor;
          major := !major +. dmajor;
          dt)
    in
    let s = Sentry_util.Stats.summarize times in
    Printf.printf "  %-11s %d trials, mean %.3fs ± %.3fs, %.2e minor words/trial\n%!"
      e.Sentry_experiments.Experiments.id trials s.Sentry_util.Stats.mean
      s.Sentry_util.Stats.stddev
      (!minor /. float_of_int trials);
    Json_out.Obj
      [
        ("id", Json_out.Str e.Sentry_experiments.Experiments.id);
        ("description", Json_out.Str e.Sentry_experiments.Experiments.description);
        ("n", Json_out.Int s.Sentry_util.Stats.n);
        ("mean_s", Json_out.Float s.Sentry_util.Stats.mean);
        ("stddev_s", Json_out.Float s.Sentry_util.Stats.stddev);
        ("min_s", Json_out.Float s.Sentry_util.Stats.min);
        ("max_s", Json_out.Float s.Sentry_util.Stats.max);
        ("gc_minor_words_mean", Json_out.Float (!minor /. float_of_int trials));
        ("gc_major_words_mean", Json_out.Float (!major /. float_of_int trials));
      ]
  in
  Printf.printf "bench --json: %d experiment(s), %d trial(s) each\n%!"
    (List.length entries) trials;
  let results = List.map experiment entries in
  (* one traced lock-cycle supplies the simulator-side counters *)
  let recorder = Trace.Recorder.create () in
  Trace.install recorder;
  let r = Sentry_core.Trace_scenario.run Sentry_core.Trace_scenario.Lock_cycle `Tegra3 in
  Trace.uninstall ();
  let counters =
    List.map
      (fun (k, v) -> (k, Json_out.Float v))
      (Sentry_core.Obs_report.flat ~recorder r.Sentry_core.Trace_scenario.sentry)
  in
  (* fleet throughput: batched vs per-page at each fleet size; the
     speedup is a same-run ratio so host noise largely cancels *)
  let fleet =
    List.map
      (fun n ->
        let b, p = Sentry_experiments.Exp_fleet.measure ~trials:(max 3 trials) n in
        Printf.printf
          "  fleet n=%-4d batched %.0f pages/s, per-page %.0f pages/s (%.2fx)\n%!" n
          b.Sentry_workloads.Fleet.lock_pages_per_s p.Sentry_workloads.Fleet.lock_pages_per_s
          (b.Sentry_workloads.Fleet.lock_pages_per_s /. p.Sentry_workloads.Fleet.lock_pages_per_s);
        Json_out.Obj
          [
            ("procs", Json_out.Int n);
            ("pages_locked", Json_out.Int b.Sentry_workloads.Fleet.pages_locked);
            ("batched_lock_pages_per_s", Json_out.Float b.Sentry_workloads.Fleet.lock_pages_per_s);
            ("per_page_lock_pages_per_s", Json_out.Float p.Sentry_workloads.Fleet.lock_pages_per_s);
            ( "speedup",
              Json_out.Float
                (b.Sentry_workloads.Fleet.lock_pages_per_s
                /. p.Sentry_workloads.Fleet.lock_pages_per_s) );
            ( "unlock_to_first_touch_ns",
              Json_out.Float b.Sentry_workloads.Fleet.unlock_to_first_touch_ns );
          ])
      Sentry_experiments.Exp_fleet.fleet_sizes
  in
  (* multicore scaling: the sharded fleet at D domains.  The merged
     lock_pages_per_s is total pages over the wall time of the whole
     parallel section, so on an N-core host speedup_vs_d1 should
     approach min(D, N); on a single core it stays flat at ~1.0. *)
  let fleet_domains =
    let cfg = { Sentry_workloads.Fleet.default with procs = 16; pages_per_proc = 24; cycles = 3 } in
    let baseline = ref nan in
    List.map
      (fun d ->
        let sh = Sentry_workloads.Fleet.run_sharded ~domains:d cfg in
        let rate = sh.Sentry_workloads.Fleet.merged.Sentry_workloads.Fleet.lock_pages_per_s in
        if d = 1 then baseline := rate;
        let speedup = rate /. !baseline in
        Printf.printf
          "  fleet_domains d=%d shards=%d %.0f pages/s (%.2fx vs d=1)\n%!" d
          sh.Sentry_workloads.Fleet.shard_count rate speedup;
        Json_out.Obj
          [
            ("domains", Json_out.Int d);
            ("shards", Json_out.Int sh.Sentry_workloads.Fleet.shard_count);
            ( "pages_locked",
              Json_out.Int sh.Sentry_workloads.Fleet.merged.Sentry_workloads.Fleet.pages_locked );
            ("wall_s", Json_out.Float sh.Sentry_workloads.Fleet.wall_s);
            ("lock_pages_per_s", Json_out.Float rate);
            ("speedup_vs_d1", Json_out.Float speedup);
          ])
      [ 1; 2; 4; 8 ]
  in
  (* the serve front end: one quiet default run (zero sheds expected)
     and one chaos soak — both fully simulated, so the section is
     deterministic and diffable across snapshot refreshes *)
  let serve =
    let module Sv = Sentry_serve.Server in
    let quiet = Sv.run Sv.default in
    let soak = Sv.run { Sv.default with Sv.soak = true } in
    Printf.printf
      "  serve: %d served / %d requests (shed rate %.3f); soak %d crash(es), %d audit finding(s)\n%!"
      quiet.Sv.served quiet.Sv.requests quiet.Sv.shed_rate soak.Sv.crashes_injected
      soak.Sv.audit_findings;
    Json_out.Obj [ ("quiet", Sv.json quiet); ("soak", Sv.json soak) ]
  in
  (* the protection-backend race: per-backend app-cycle numbers and
     the measured lock-size crossover between the batched CPU path and
     the MemShield-style offload queue — all simulated, so the section
     is deterministic and diffable across snapshot refreshes *)
  let backends =
    let module EB = Sentry_experiments.Exp_backends in
    let kname = Sentry_core.Backend.kind_name in
    let crossover = EB.lock_crossover_pages () in
    Printf.printf "  backends: offload lock crossover %s; fault ns %s\n%!"
      (match crossover with
      | Some n -> Printf.sprintf "at %d pages" n
      | None -> "not reached")
      (String.concat ", "
         (List.map
            (fun b -> Printf.sprintf "%s %.0f" (kname b) (EB.fault_elapsed_ns b))
            EB.backends));
    let sweep =
      List.map
        (fun n ->
          Json_out.Obj
            [
              ("pages", Json_out.Int n);
              ("batched_lock_ns", Json_out.Float (EB.lock_elapsed_ns Sentry_core.Sentry.Batched ~pages:n));
              ("offload_lock_ns", Json_out.Float (EB.lock_elapsed_ns Sentry_core.Sentry.Offload ~pages:n));
            ])
        EB.sweep_sizes
    in
    let app =
      List.map
        (fun (b, (m : Sentry_experiments.Exp_apps.metrics)) ->
          ( kname b,
            Json_out.Obj
              [
                ("lock_s", Json_out.Float m.Sentry_experiments.Exp_apps.lock_s);
                ("lock_mb", Json_out.Float m.Sentry_experiments.Exp_apps.lock_mb);
                ("unlock_s", Json_out.Float m.Sentry_experiments.Exp_apps.unlock_s);
              ] ))
        (EB.app_race ())
    in
    let faults =
      List.map (fun b -> (kname b, Json_out.Float (EB.fault_elapsed_ns b))) EB.backends
    in
    Json_out.Obj
      [
        ( "lock_crossover_pages",
          match crossover with Some n -> Json_out.Int n | None -> Json_out.Null );
        ("lock_sweep", Json_out.List sweep);
        ("fault_ns", Json_out.Obj faults);
        ("app_mp3", Json_out.Obj app);
      ]
  in
  (* per-tenant-class latency SLOs over one default fleet run — the
     same objectives the CI gate enforces via `sentry_cli slo`.  The
     spec file is optional so bench still runs from any directory. *)
  let slo =
    match Slo.load ~path:slo_spec with
    | Error msg ->
        Printf.printf "  slo: no spec (%s); section omitted\n%!" msg;
        Json_out.Null
    | Ok objectives ->
        let metrics = Metrics.create () in
        ignore (Sentry_workloads.Fleet.run ~metrics Sentry_workloads.Fleet.default);
        (* serve rides along in the same snapshot: the spec's
           queue-wait / shed-rate objectives need its keys *)
        ignore (Sentry_serve.Server.run ~metrics Sentry_serve.Server.default);
        let report = Slo.evaluate objectives (Metrics.flat metrics) in
        Printf.printf "  slo: %d objective(s), %d violation(s)\n%!"
          (List.length report.Slo.outcomes) report.Slo.violations;
        Slo.report_json report
  in
  let doc =
    Json_out.Obj
      [
        ("schema", Json_out.Str "sentry-bench/v1");
        ("trials", Json_out.Int trials);
        ("experiments", Json_out.List results);
        ("fleet", Json_out.List fleet);
        ("fleet_domains", Json_out.List fleet_domains);
        ("serve", serve);
        ("backends", backends);
        ("counters", Json_out.Obj counters);
        ("slo", slo);
      ]
  in
  Export.write_file ~path (Json_out.to_string doc ^ "\n");
  Printf.printf "wrote %s\n" path

(* --------------------------- regression diff --------------------- *)

(* [bench --compare FILE] re-times the experiments recorded in a
   committed snapshot and reports which drifted beyond tolerance.
   Wall clock is environment sensitive (CI runners differ from dev
   machines), so the diff is warn-only: it never fails the build, it
   makes a slowdown visible in the log next to the run that caused
   it. *)
(* Defaults to the snapshot's own trial count.  [time_once] resets the
   cross-trial caches, so trials are i.i.d. and the count only affects
   noise, but matching the snapshot keeps the statistics comparable. *)
let run_compare ~path ~trials ~tolerance ids =
  let open Sentry_obs in
  let doc =
    let text =
      try In_channel.with_open_bin path In_channel.input_all
      with Sys_error msg ->
        Printf.eprintf "cannot read snapshot: %s\n" msg;
        exit 1
    in
    try Json_in.parse text
    with Json_in.Parse_error msg ->
      Printf.eprintf "%s: unparseable snapshot (%s)\n" path msg;
      exit 1
  in
  let snapshot =
    match Option.bind (Json_in.member "experiments" doc) Json_in.to_list with
    | Some exps ->
        List.filter_map
          (fun e ->
            match
              ( Option.bind (Json_in.member "id" e) Json_in.to_string,
                Option.bind (Json_in.member "mean_s" e) Json_in.to_float )
            with
            | Some id, Some mean -> Some (id, mean)
            | _ -> None)
          exps
    | None ->
        Printf.eprintf "%s: no \"experiments\" array (expected schema sentry-bench/v1)\n" path;
        exit 1
  in
  let trials =
    match trials with
    | Some n -> n
    | None -> (
        match Option.bind (Json_in.member "trials" doc) Json_in.to_float with
        | Some n -> int_of_float n
        | None -> 3)
  in
  let selected =
    match ids with
    | [] -> snapshot
    | ids ->
        List.iter
          (fun id ->
            ignore (find_or_die id);
            if not (List.mem_assoc id snapshot) then
              Printf.eprintf "note: %S is not in %s; skipping\n" id path)
          ids;
        List.filter (fun (id, _) -> List.mem id ids) snapshot
  in
  Printf.printf "bench --compare: %d experiment(s) vs %s, %d trial(s) each, tolerance %.0f%%\n"
    (List.length selected) path trials (tolerance *. 100.0);
  Printf.printf "  %-11s %12s %12s %7s\n%!" "id" "snapshot" "fresh min" "ratio";
  (* sub-tolerance absolute drift on the microsecond experiments is
     scheduler noise, not regression *)
  let abs_floor_s = 0.05 in
  let drifted =
    List.filter
      (fun (id, snap_mean) ->
        match Sentry_experiments.Experiments.find id with
        | None ->
            Printf.printf "  %-11s %11.3fs %12s\n%!" id snap_mean "(gone)";
            false
        | Some e ->
            let times =
              Array.init trials (fun _ ->
                  let dt, _, _ = time_once e.Sentry_experiments.Experiments.run in
                  dt)
            in
            (* best-of-N: the min is the noise-robust timing statistic —
               transient machine load inflates the mean, never deflates
               the min — so a warning here means the code itself slowed *)
            let fresh = (Sentry_util.Stats.summarize times).Sentry_util.Stats.min in
            let ratio = if snap_mean > 0.0 then fresh /. snap_mean else Float.infinity in
            let slower =
              fresh -. snap_mean > abs_floor_s && fresh > snap_mean *. (1.0 +. tolerance)
            in
            Printf.printf "  %-11s %11.3fs %11.3fs %6.2fx%s\n%!" id snap_mean fresh ratio
              (if slower then "  WARN: slower than snapshot" else "");
            slower)
      selected
  in
  (match drifted with
  | [] -> Printf.printf "all within tolerance of %s\n" path
  | ds ->
      Printf.printf "%d experiment(s) slower than the snapshot beyond tolerance: %s\n"
        (List.length ds)
        (String.concat ", " (List.map fst ds));
      Printf.printf "(warn-only: wall clock varies across machines; refresh with --json if real)\n")

open Cmdliner

let ids =
  let doc = "Experiment ids to run (default: all + micro). Use --list to enumerate." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_flag =
  let doc = "List available experiments." in
  Arg.(value & flag & info [ "list" ] ~doc)

let csv_flag =
  let doc = "Emit CSV instead of aligned tables (selected experiments only)." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let json_flag =
  let doc = "Write machine-readable results (schema sentry-bench/v1) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let trials_flag =
  let doc =
    "Wall-clock trials per experiment in --json and --compare modes (default: 3 for --json; the \
     snapshot's own trial count for --compare)."
  in
  Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc)

let compare_flag =
  let doc =
    "Re-time the experiments recorded in the snapshot $(docv) and warn about regressions beyond \
     --tolerance. Never fails: wall clock is environment sensitive."
  in
  Arg.(value & opt (some string) None & info [ "compare" ] ~docv:"FILE" ~doc)

let tolerance_flag =
  let doc = "Relative slowdown tolerated by --compare before warning (fraction, e.g. 0.3)." in
  Arg.(value & opt float 0.3 & info [ "tolerance" ] ~docv:"FRAC" ~doc)

let slo_spec_flag =
  let doc =
    "SLO spec evaluated into the --json snapshot's \"slo\" section (omitted if unreadable)."
  in
  Arg.(value & opt string "slo.spec" & info [ "slo-spec" ] ~docv:"FILE" ~doc)

let main list_it csv json compare tolerance trials slo_spec ids =
  if list_it then list_experiments ()
  else
    match (json, compare) with
    | Some _, Some _ ->
        prerr_endline "--json and --compare are mutually exclusive";
        exit 1
    | Some path, None -> run_json ~path ~trials:(Option.value trials ~default:3) ~slo_spec ids
    | None, Some path -> run_compare ~path ~trials ~tolerance ids
    | None, None -> ( match ids with [] -> run_all () | ids -> run_selected ~csv ids)

let cmd =
  let doc = "regenerate the Sentry paper's tables and figures" in
  Cmd.v (Cmd.info "sentry-bench" ~doc)
    Term.(
      const main $ list_flag $ csv_flag $ json_flag $ compare_flag $ tolerance_flag $ trials_flag
      $ slo_spec_flag $ ids)

let () = exit (Cmd.eval cmd)
