(** DMA controller.

    A DMA engine moves data without CPU cooperation and — crucially —
    {e bypasses the L2 cache}: transfers read and write DRAM (or iRAM)
    directly.  Cache coherence is software-managed on these SoCs
    (§4.4): the OS must clean lines before an outgoing transfer and
    invalidate before an incoming one.

    A DMA {e attack} (§3.1) programs this controller over an exposed
    interface to dump memory of a PIN-locked device.  The only
    hardware defence is TrustZone's deny list. *)

type error = Denied | Bad_address | Faulted

type t = {
  dram : Dram.t;
  iram : Iram.t;
  tz : Trustzone.t;
  clock : Clock.t;
  energy : Energy.t;
  mutable on_read : (addr:int -> len:int -> taint:Taint.level -> unit) option;
}

let create ~dram ~iram ~tz ~clock ~energy =
  { dram; iram; tz; clock; energy; on_read = None }

(** [set_read_hook t f] — [f] fires on every {e successful}
    device-initiated read, with the taint join of the bytes that left
    through the peripheral.  Analysis passes use it to catch secrets
    escaping via DMA windows. *)
let set_read_hook t f = t.on_read <- Some f

let clear_read_hook t = t.on_read <- None

let notify_read t ~addr ~len ~taint =
  match t.on_read with Some f -> f ~addr ~len ~taint | None -> ()

let charge t len =
  Clock.advance t.clock (float_of_int len *. Calib.dma_byte_ns);
  Energy.charge t.energy ~category:"dma" (float_of_int len *. Calib.onsoc_byte_j)

let trace t ?args name =
  Sentry_obs.Trace.emit ~ts:(Clock.now t.clock) ~cat:Sentry_obs.Event.Dma ~subsystem:"soc.dma"
    ?args name

let trace_xfer t name ~addr ~len ~target =
  if Sentry_obs.Trace.on () then
    trace t name
      ~args:
        [
          ("addr", Sentry_obs.Event.Int addr);
          ("bytes", Sentry_obs.Event.Int len);
          ("target", Sentry_obs.Event.Str (match target with `Dram -> "dram" | `Iram -> "iram"));
        ]

let trace_denied t ~addr ~len =
  if Sentry_obs.Trace.on () then
    trace t "denied"
      ~args:[ ("addr", Sentry_obs.Event.Int addr); ("bytes", Sentry_obs.Event.Int len) ]

(* Injected transfer fault: the engine aborts with a bus error before
   any byte moves (no charge, no data). *)
let faulted t point ~addr ~len =
  match Sentry_faults.Injector.poll point with
  | None -> false
  | Some _ ->
      if Sentry_obs.Trace.on () then
        trace t "transfer-fault"
          ~args:[ ("addr", Sentry_obs.Event.Int addr); ("bytes", Sentry_obs.Event.Int len) ];
      true

let target t addr len =
  if Dram.contains t.dram addr && Dram.contains t.dram (addr + len - 1) then Some `Dram
  else if Iram.contains t.iram addr && Iram.contains t.iram (addr + len - 1) then Some `Iram
  else None

(** [read t ~addr ~len] — a device-initiated read of physical memory.
    Sees DRAM as it is, stale or not (never the cache's view), and
    iRAM unless TrustZone denies the window. *)
let read t ~addr ~len =
  if not (Trustzone.dma_allowed t.tz ~addr ~len) then begin
    trace_denied t ~addr ~len;
    Error Denied
  end
  else if faulted t Sentry_faults.Injector.Points.dma_read ~addr ~len then Error Faulted
  else
    match target t addr len with
    | None -> Error Bad_address
    | Some `Dram ->
        charge t len;
        trace_xfer t "device-read" ~addr ~len ~target:`Dram;
        notify_read t ~addr ~len ~taint:(Dram.taint_range t.dram addr len);
        Ok (Dram.read t.dram ~initiator:`Dma addr len)
    | Some `Iram ->
        charge t len;
        trace_xfer t "device-read" ~addr ~len ~target:`Iram;
        notify_read t ~addr ~len ~taint:(Iram.taint_range t.iram addr len);
        (* iRAM DMA stays on-SoC: no bus transaction, but the data
           still leaves through the peripheral. *)
        Ok (Bytes.sub (Iram.raw t.iram) (addr - (Iram.region t.iram).Memmap.base) len)

(** [write t ~addr b] — a device-initiated write (e.g. an incoming
    network buffer, or a code-injection attempt). *)
let write t ~addr b =
  let len = Bytes.length b in
  if not (Trustzone.dma_allowed t.tz ~addr ~len) then begin
    trace_denied t ~addr ~len;
    Error Denied
  end
  else if faulted t Sentry_faults.Injector.Points.dma_write ~addr ~len then Error Faulted
  else
    match target t addr len with
    | None -> Error Bad_address
    | Some `Dram ->
        charge t len;
        trace_xfer t "device-write" ~addr ~len ~target:`Dram;
        (* Device-sourced data is public as far as Sentry knows. *)
        Ok (Dram.write t.dram ~initiator:`Dma addr b)
    | Some `Iram ->
        charge t len;
        trace_xfer t "device-write" ~addr ~len ~target:`Iram;
        Bytes.blit b 0 (Iram.raw t.iram) (addr - (Iram.region t.iram).Memmap.base) len;
        Ok (Iram.set_taint t.iram addr len Taint.Public)
