lib/core/system.mli: Bytes Config Machine Sentry_crypto Sentry_kernel Sentry_soc
