(** Size, time (ns) and energy (J) units with pretty-printers. *)

val kib : int
val mib : int
val gib : int

val ns : float
val us : float
val ms : float
val s : float
val minute : float

val uj : float
val mj : float

val pp_bytes : Format.formatter -> int -> unit
val pp_time : Format.formatter -> float -> unit
val pp_energy : Format.formatter -> float -> unit

val bytes_to_mb : int -> float
val throughput_mb_s : bytes:int -> time_ns:float -> float

(** Render any pretty-printer to a string. *)
val to_string : (Format.formatter -> 'a -> unit) -> 'a -> string
