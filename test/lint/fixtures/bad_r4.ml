(* Lint fixture: R4 unsafe escapes outside the audited fast path.
   Expected findings: Bytes.unsafe_get, Obj.magic (2 × R4). *)

let peek b i = Bytes.unsafe_get b i
let launder (x : int) : string = Obj.magic x
