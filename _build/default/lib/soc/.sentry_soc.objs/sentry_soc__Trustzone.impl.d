lib/soc/trustzone.ml: Fun Fuse List Memmap
