lib/workloads/kernel_compile.ml: List Machine Memmap Pl310 Prng Sentry_soc Sentry_util Units
