(** Backend race ("backends"): the four protection backends over the
    Fig-2/Fig-4 app cycle, the fleet churn workload and the open-loop
    server, plus the measured lock-size crossover between the batched
    CPU path and the MemShield-style offload queue. *)

val backends : Sentry_core.Sentry.backend list

(** Simulated elapsed time of one lock walk over a [pages]-page
    process under [backend]. *)
val lock_elapsed_ns : Sentry_core.Sentry.backend -> pages:int -> float

(** Simulated cost of one lazy fault after unlock under [backend]. *)
val fault_elapsed_ns : Sentry_core.Sentry.backend -> float

(** The lock-walk sizes the crossover sweep probes. *)
val sweep_sizes : int list

(** Smallest lock batch (pages) where the offload queue's simulated
    lock walk is at least as fast as the batched CPU path; [None] if
    it never catches up over [sweep_sizes]. *)
val lock_crossover_pages : unit -> int option

(** The app cycle (MP3 profile) under each backend. *)
val app_race : unit -> (Sentry_core.Sentry.backend * Exp_apps.metrics) list

(** The small fleet-churn config under each backend. *)
val fleet_race :
  unit -> (Sentry_core.Sentry.backend * Sentry_workloads.Fleet.stats) list

(** The small open-loop serve config under each backend. *)
val serve_race :
  unit -> (Sentry_core.Sentry.backend * Sentry_serve.Server.stats) list

val run : unit -> Sentry_util.Table.t list
