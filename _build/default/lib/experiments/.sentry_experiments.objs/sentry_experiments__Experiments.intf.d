lib/experiments/experiments.mli: Sentry_util
