(** The Sentry facade: install on a booted system, mark applications
    sensitive, and drive the lock/unlock cycle.

    {[
      let system = System.boot `Tegra3 in
      let sentry = Sentry.install system (Config.default `Tegra3) in
      let app = System.spawn system ~name:"mail" ~bytes in
      Sentry.mark_sensitive sentry app;
      Sentry.enable_background sentry app;   (* tegra only *)
      let _ = Sentry.lock sentry in          (* memory now ciphertext *)
      (* ... app still runs, confined to locked L2 ... *)
      match Sentry.unlock sentry ~pin:"1234" with
      | Ok _ -> (* lazy decryption from here *) ()
      | Error _ -> ()
    ]} *)

type t

(** [install system config] sets up on-SoC storage (DMA-protected via
    TrustZone), the root keys, the AES_On_SoC instance (registered
    with the Crypto API above the generic cipher) and, where the
    platform allows, the background paging engine.
    @raise Invalid_argument on an inconsistent config. *)
val install : System.t -> Config.t -> t

val state : t -> Lock_state.state
val is_locked : t -> bool

(** Mark an application for protection (the settings-menu extension
    of §7). *)
val mark_sensitive : t -> Sentry_kernel.Process.t -> unit

(** Allow a sensitive app to keep running while locked, paged through
    locked L2 cache (Tegra 3 only).
    @raise Invalid_argument without locked-cache paging, or if the
    process is not marked sensitive. *)
val enable_background : t -> Sentry_kernel.Process.t -> unit

(** Encrypt-on-lock: freed-page barrier, per-page encryption, parking,
    masked flush. *)
val lock : t -> Encrypt_on_lock.stats

(** PIN check, background working-set writeback, eager DMA-region
    decryption, lazy-handler installation. *)
val unlock : t -> pin:string -> (Decrypt_on_unlock.stats, Lock_state.unlock_error) result

(** Eager-unlock ablation: decrypt every page now; returns the page
    count. *)
val unlock_eager : t -> pin:string -> (int, Lock_state.unlock_error) result

(** {2 Component access} *)

val system : t -> System.t
val page_crypt : t -> Page_crypt.t
val background_engine : t -> Background.t option
val key_manager : t -> Key_manager.t
val onsoc : t -> Onsoc.t
val aes : t -> Sentry_crypto.Aes_on_soc.t
val config : t -> Config.t

(** Stats of the most recent lock / unlock, if any. *)
val last_lock_stats : t -> Encrypt_on_lock.stats option
val last_unlock_stats : t -> Decrypt_on_unlock.stats option
val lock_state : t -> Lock_state.t
val sensitive_processes : t -> Sentry_kernel.Process.t list
