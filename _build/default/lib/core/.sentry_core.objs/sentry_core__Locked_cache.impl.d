lib/core/locked_cache.ml: Bytes Fun Hashtbl List Machine Memmap Pl310 Sentry_soc Sentry_util Trustzone
