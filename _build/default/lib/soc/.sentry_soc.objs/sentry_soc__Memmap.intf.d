lib/soc/memmap.mli: Format
