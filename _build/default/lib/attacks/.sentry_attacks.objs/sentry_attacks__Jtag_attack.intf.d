lib/attacks/jtag_attack.mli: Bytes Machine Memdump Sentry_soc
