(** Page-size constants (ARM 4 KB small pages). *)

let size = 4096
let shift = 12

let align_down addr = addr land lnot (size - 1)
let align_up addr = align_down (addr + size - 1)
let is_aligned addr = addr land (size - 1) = 0

(** Virtual page number of a virtual address. *)
let vpn_of vaddr = vaddr lsr shift

let addr_of_vpn vpn = vpn lsl shift
let offset_in_page addr = addr land (size - 1)

(** Number of pages covering [bytes]. *)
let count_of_bytes bytes = (bytes + size - 1) / size
