lib/util/stats.ml: Array Fmt
