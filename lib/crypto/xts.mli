(** XTS-AES (IEEE 1619-2007): modern dm-crypt's sector mode.  Whole
    16-byte blocks only (sectors always are); pinned to IEEE 1619
    vectors. *)

type key

(** Split a 32- or 64-byte key into data/tweak halves.
    @raise Invalid_argument otherwise. *)
val expand : Bytes.t -> key

(** The plain64 tweak block for a data-unit number. *)
val tweak_of_sector : int -> Bytes.t

(** Scatter-gather transform of [len] bytes from [src]/[src_off] into
    [dst]/[dst_off]; the buffers may alias (in-place).  The allocating
    wrappers below are implemented on top and produce bit-identical
    bytes. *)
val transform_into :
  key ->
  dir:[ `Encrypt | `Decrypt ] ->
  tweak:Bytes.t ->
  src:Bytes.t ->
  src_off:int ->
  dst:Bytes.t ->
  dst_off:int ->
  len:int ->
  unit

(** @raise Invalid_argument unless data is a multiple of 16 bytes and
    the tweak is 16 bytes (same for [decrypt]). *)
val encrypt : key -> tweak:Bytes.t -> Bytes.t -> Bytes.t

val decrypt : key -> tweak:Bytes.t -> Bytes.t -> Bytes.t

val encrypt_sector : key -> sector:int -> Bytes.t -> Bytes.t
val decrypt_sector : key -> sector:int -> Bytes.t -> Bytes.t
