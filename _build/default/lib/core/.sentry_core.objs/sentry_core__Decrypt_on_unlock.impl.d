lib/core/decrypt_on_unlock.ml: Address_space Clock Energy List Machine Page Page_crypt Page_table Pl310 Process Sched Sentry_kernel Sentry_soc System Vm
