(** Energy accounting with per-category attribution.

    The paper reports energy for encryption, decryption, page zeroing
    and full-memory sweeps separately; categories keep those
    attributable without separate meters. *)

type t = { mutable total_j : float; by_category : (string, float ref) Hashtbl.t }

let create () = { total_j = 0.0; by_category = Hashtbl.create 16 }

let charge t ~category joules =
  t.total_j <- t.total_j +. joules;
  match Hashtbl.find_opt t.by_category category with
  | Some r -> r := !r +. joules
  | None -> Hashtbl.add t.by_category category (ref joules)

let total t = t.total_j

let category t name =
  match Hashtbl.find_opt t.by_category name with Some r -> !r | None -> 0.0

let categories t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.by_category []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  t.total_j <- 0.0;
  Hashtbl.reset t.by_category

(** [metered t ~category:c f] runs [f ()] and returns its result with
    the energy charged to [c] during the call. *)
let metered t ~category:c f =
  let before = category t c in
  let result = f () in
  (result, category t c -. before)

let pp ppf t =
  Fmt.pf ppf "total %a" Sentry_util.Units.pp_energy t.total_j;
  List.iter
    (fun (k, v) -> Fmt.pf ppf "@ %s: %a" k Sentry_util.Units.pp_energy v)
    (categories t)
