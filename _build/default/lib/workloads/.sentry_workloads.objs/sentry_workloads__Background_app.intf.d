lib/workloads/background_app.mli: Sentry_core Sentry_kernel
