(** Table 2: iRAM and DRAM data-remanence rates on the tablet.

    See the implementation for methodology notes. *)

val run : unit -> Sentry_util.Table.t list
