(** Summary statistics over measurement series.

    Every experiment in the paper is "repeated at least ten times" and
    plotted as average plus standard deviation; this module provides the
    same reduction. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

(* NaN-safe extrema: [Float.compare] is a total order (NaN sorts below
   every number), unlike [min]/[max] which propagate NaN asymmetrically
   depending on argument order. *)
let fmin a b = if Float.compare a b <= 0 then a else b
let fmax a b = if Float.compare a b >= 0 then a else b

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty series";
  let sum = Array.fold_left ( +. ) 0.0 xs in
  let mean = sum /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 xs
    /. float_of_int n
  in
  let mn = Array.fold_left fmin xs.(0) xs in
  let mx = Array.fold_left fmax xs.(0) xs in
  { n; mean; stddev = sqrt var; min = mn; max = mx }

(** [repeat ~trials f] runs [f trial_index] and summarizes the results. *)
let repeat ~trials f = summarize (Array.init trials (fun i -> f i))

(** [percentile p xs] with [p] in [0,100]; nearest-rank on a sorted copy. *)
let percentile p xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty series";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let mean xs = (summarize xs).mean

let pp_summary ppf s =
  Fmt.pf ppf "%.4g ± %.2g (n=%d, min=%.4g, max=%.4g)" s.mean s.stddev s.n s.min s.max

(** Ratio of two means, used for overhead factors such as "2.74x". *)
let overhead ~base ~measured =
  if base = 0.0 then infinity else measured /. base
