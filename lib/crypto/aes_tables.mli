(** AES lookup tables, derived at startup from [Gf256].  The layout
    matches Table 4: one 1 KB encryption round table, one 1 KB
    decryption table, both S-boxes and the 40-byte Rcon — none secret,
    all access-protected. *)

val sbox : int array
val inv_sbox : int array

(** Rcon as ten round-constant bytes. *)
val rcon : int array

(** Encryption round-table entry for S-box input [x]: the bytes
    (2s, s, s, 3s) where s = sbox x. *)
val te_entry : int -> int * int * int * int

(** Decryption (InvMixColumns) entry for raw byte [x]:
    (14x, 9x, 13x, 11x). *)
val td_entry : int -> int * int * int * int

(** Word-packed copies for the fast cipher (byte 0 most significant). *)
val te_words : int array

val td_words : int array

(** Byte-rotated copies of [te_words]/[td_words] (by 8, 16 and 24
    bits) so the fast cipher's inner loop is pure table lookups with
    no rotation work.  Derived at startup; never secret. *)
val te_words_r8 : int array

val te_words_r16 : int array
val te_words_r24 : int array
val td_words_r8 : int array
val td_words_r16 : int array
val td_words_r24 : int array

(** Serialised forms placed in (simulated) memory by the instrumented
    cipher; entry [x] occupies bytes [4x..4x+3]. *)
val te_bytes : Bytes.t

val td_bytes : Bytes.t
val sbox_bytes : Bytes.t
val inv_sbox_bytes : Bytes.t
val rcon_bytes : Bytes.t
