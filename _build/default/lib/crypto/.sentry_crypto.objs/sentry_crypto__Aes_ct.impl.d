lib/crypto/aes_ct.ml: Aes_key Array Bytes Char Gf256 Mode
