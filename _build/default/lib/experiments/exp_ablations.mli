(** Ablation benches for the design choices DESIGN.md calls out:

    See the implementation for methodology notes. *)

val run : unit -> Sentry_util.Table.t list
