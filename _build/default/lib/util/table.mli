(** Aligned ASCII tables — the render target of every experiment in
    [Sentry_experiments]. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make : title:string -> header:string list -> ?notes:string list -> string list list -> t
val cell_f : ('a -> string, unit, string) format -> 'a -> string
val to_string : t -> string
val print : t -> unit

(** CSV rendering (title as a comment line) for plotting pipelines. *)
val to_csv : t -> string
