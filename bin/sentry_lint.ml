(** sentry-lint: the domain-safety static analyzer.

    {v
    sentry-lint                          # scan lib/ and bin/, allow file lint.allow
    sentry-lint --json report.json       # also write the machine-readable report
    sentry-lint --json -                 # JSON to stdout
    sentry-lint --allow my.allow dir ... # explicit allow file / roots
    v}

    Exit status 0 iff every finding is covered by a justified
    [lint.allow] entry — the CI gate that keeps new global mutable
    state out of the tree (ROADMAP 1: the Domains refactor). *)

open Cmdliner
open Sentry_lint

let run roots allow_path json_path =
  let roots = if roots = [] then [ "lib"; "bin" ] else roots in
  (match List.find_opt (fun r -> not (Sys.file_exists r)) roots with
  | Some missing ->
      Printf.eprintf "sentry-lint: root %S not found (run from the repository root)\n" missing;
      exit 2
  | None -> ());
  let allow =
    match Allowlist.load allow_path with
    | Ok a -> a
    | Error msg ->
        Printf.eprintf "sentry-lint: %s\n" msg;
        exit 2
  in
  let report =
    try Driver.run ~allow ~roots ()
    with Driver.Parse_error msg ->
      Printf.eprintf "sentry-lint: %s\n" msg;
      exit 2
  in
  (match json_path with
  | Some "-" -> print_string (Driver.to_json_string report ^ "\n")
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Driver.to_json_string report ^ "\n"))
  | None -> ());
  if json_path <> Some "-" then print_string (Driver.to_text report);
  if not (Driver.clean report) then exit 1

let cmd =
  let doc = "domain-safety static analysis: find global mutable state and unsafe escapes" in
  let roots =
    Arg.(value & pos_all string [] & info [] ~docv:"ROOT" ~doc:"source roots (default: lib bin)")
  in
  let allow =
    Arg.(value & opt string "lint.allow"
         & info [ "allow" ] ~docv:"FILE"
             ~doc:"allowlist file; every entry needs a '# justification' (missing file = empty)")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"write the sentry-lint/v1 JSON report ('-' = stdout)")
  in
  Cmd.v (Cmd.info "sentry-lint" ~doc) Term.(const run $ roots $ allow $ json)

(* executable entry point (allowlisted R3) *)
let () = exit (Cmd.eval cmd)
