lib/crypto/gf256.mli:
