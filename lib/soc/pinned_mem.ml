(** The paper's §10 architecture suggestion, implemented: "modern CPUs
    could offer a small amount of memory on the SoC together with a
    pin-on-SoC abstraction ... inaccessible to DMA controllers ...
    low-level firmware should always erase it upon device boot up,
    and should not be modifiable."

    Compared to the two mechanisms Sentry retrofits:
    - unlike iRAM, DMA inaccessibility is a {e hardware} property —
      no TrustZone programming to get right;
    - unlike locked cache ways, no warming protocol, no flush-mask
      kernel surgery, and no capacity stolen from the L2;
    - the zeroing lives in immutable boot ROM, so the
      replace-the-firmware attack vector of §4.3 is closed by
      construction.

    [Machine] wires this in only on the hypothetical future platform
    ([Machine.future]); the [Exp_pinned] experiment measures how much
    of Sentry's machinery it deletes. *)

open Sentry_util

type t = {
  region : Memmap.region;
  data : Bytes.t;
  clock : Clock.t;
  energy : Energy.t;
  mutable shadow : Bytes.t option; (* taint labels, one per data byte *)
}

let create ~clock ~energy ~size =
  {
    region = Memmap.region ~base:Memmap.pinned_base ~size;
    data = Bytes.make size '\000';
    clock;
    energy;
    shadow = None;
  }

let enable_taint t =
  if t.shadow = None then t.shadow <- Some (Taint.create_shadow (Bytes.length t.data))

let taint_range t addr len =
  match t.shadow with
  | None -> Taint.Public
  | Some s -> Taint.max_range s (Memmap.offset t.region addr) len

let region t = t.region
let size t = t.region.Memmap.size
let contains t addr = Memmap.contains t.region addr

let check t addr len =
  if not (contains t addr && (len = 0 || contains t (addr + len - 1))) then
    invalid_arg (Printf.sprintf "Pinned_mem: access out of range 0x%x+%d" addr len)

let charge t len =
  let lines = (len + 31) / 32 in
  Clock.advance t.clock (float_of_int lines *. Calib.iram_line_ns);
  Energy.charge t.energy ~category:"pinned" (float_of_int len *. Calib.onsoc_byte_j)

(** Scatter-gather read straight into [buf] at [off]: identical
    charge to [read] (implemented on top), no allocation. *)
let read_into t addr buf ~off ~len =
  check t addr len;
  charge t len;
  Bytes.blit t.data (Memmap.offset t.region addr) buf off len

let read t addr len =
  let b = Bytes.create len in
  read_into t addr b ~off:0 ~len;
  b

(** Scatter-gather write of the [len]-byte view of [buf] at [off];
    [write] is implemented on top. *)
let write_from t ?(level = Taint.Public) addr buf ~off ~len =
  check t addr len;
  charge t len;
  Bytes.blit buf off t.data (Memmap.offset t.region addr) len;
  match t.shadow with
  | Some s -> Taint.fill s (Memmap.offset t.region addr) len level
  | None -> ()

let write t ?level addr b = write_from t ?level addr b ~off:0 ~len:(Bytes.length b)

(** Immutable boot-ROM behaviour: erased on {e every} boot, warm or
    cold — there is no firmware to replace or skip. *)
let boot_rom_clear t =
  Bytes_util.zero t.data;
  match t.shadow with
  | Some s -> Taint.fill s 0 (Bytes.length s) Taint.Public
  | None -> ()

(** Attack-side view for tests: what an attacker who somehow probed
    the array would see (requires decapping the SoC — out of the
    threat model). *)
let raw t = t.data
