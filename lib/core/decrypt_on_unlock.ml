(** The device-unlock path (§7, On-demand Decryption).

    Most pages decrypt lazily: unlock leaves them encrypted with the
    young bit clear, and the page-fault handler decrypts on first
    touch.  DMA regions (GPU buffers, I/O rings) are decrypted eagerly
    — device accesses use physical addresses and never fault. *)

open Sentry_soc
open Sentry_kernel

type stats = {
  dma_pages_eager : int;
  dma_bytes_eager : int;
  elapsed_ns : float;
  energy_j : float;
}

(** The lazy young-bit fault handler active while unlocked.
    Fail-secure ordering, same as [decrypt_region]: the PTE's
    [encrypted] bit is cleared {e before} the cleartext lands, so a
    crash anywhere inside the handler leaves a page the recovery
    sweep re-encrypts.  (The reverse order — decrypt, then clear —
    had a kill chain: a crash between the two leaves a cleartext
    frame whose PTE still claims ciphertext, the next lock walk skips
    it as already-encrypted, and the secret reaches DRAM
    unprotected.) *)
let fault_handler pc : Vm.fault_handler =
 fun proc ~vaddr pte ->
  let vpn = Page.vpn_of vaddr in
  if pte.Page_table.encrypted then begin
    pte.Page_table.encrypted <- false;
    Page_crypt.decrypt_frame pc ~pid:proc.Process.pid ~vpn ~frame:pte.Page_table.frame
  end;
  (* a leftover no-access mapping (page locked under the No_access
     backend, backend switched while unlocked before it was touched)
     is restored here too — the handler's job is "make this page
     accessible cleartext", whichever bits protect it *)
  pte.Page_table.no_access <- false;
  pte.Page_table.young <- true

(** Offload twin of the lazy handler: the single-page decrypt goes
    through the command queue and blocks on its completion — each
    first touch pays the engine's full fixed latency.  This is the
    losing side of the Offload crossover [exp_backends] measures. *)
let fault_handler_offload pc : Vm.fault_handler =
 fun proc ~vaddr pte ->
  let vpn = Page.vpn_of vaddr in
  if pte.Page_table.encrypted then begin
    pte.Page_table.encrypted <- false;
    Page_crypt.decrypt_frame_offload pc ~pid:proc.Process.pid ~vpn ~frame:pte.Page_table.frame
  end;
  pte.Page_table.no_access <- false;
  pte.Page_table.young <- true

(** No_access lazy handler: restore the mapping — a permission write
    and a TLB shootdown, no crypto.  Residual ciphertext pages from a
    cycle run under a crypto backend (switched while unlocked) still
    decrypt, fail-secure order unchanged. *)
let fault_handler_no_access pc : Vm.fault_handler =
 fun proc ~vaddr pte ->
  let vpn = Page.vpn_of vaddr in
  if pte.Page_table.encrypted then begin
    pte.Page_table.encrypted <- false;
    Page_crypt.decrypt_frame pc ~pid:proc.Process.pid ~vpn ~frame:pte.Page_table.frame
  end;
  if pte.Page_table.no_access then begin
    pte.Page_table.no_access <- false;
    Clock.advance (Machine.clock (Page_crypt.machine pc)) Calib.pte_protect_ns
  end;
  pte.Page_table.young <- true

(* Pre-DMA coherence maintenance for an eagerly-decrypted DMA region:
   devices read these frames physically, bypassing the cache, so the
   decrypted lines must be cleaned out to DRAM.  Frames are sorted and
   contiguous runs coalesced into a single [clean_invalidate_range]
   sweep each — the same line set as a per-page sweep (maintenance
   charges are per dirty line, so the simulated cost is identical),
   without the per-page call overhead. *)
let dma_coherence_sweep machine ptes =
  let l2 = Machine.l2 machine in
  let frames =
    List.sort_uniq compare (List.map (fun (_, pte) -> pte.Page_table.frame) ptes)
  in
  let traced = Sentry_obs.Trace.on () in
  if traced then
    Sentry_obs.Trace.enter_span
      ~ts:(Clock.now (Machine.clock machine))
      ~cat:Sentry_obs.Event.Dma ~subsystem:"soc.dma" "dma-coherence-sweep";
  let rec sweep = function
    | [] -> ()
    | first :: rest ->
        let rec extend last = function
          | f :: tl when f = last + Page.size -> extend f tl
          | tl -> (last, tl)
        in
        let last, rest = extend first rest in
        Pl310.clean_invalidate_range l2 first (last + Page.size - first);
        sweep rest
  in
  sweep frames;
  if traced then
    Sentry_obs.Trace.exit_span
      ~ts:(Clock.now (Machine.clock machine))
      ~args:[ ("pages", Sentry_obs.Event.Int (List.length frames)) ]
      ()

let decrypt_region ?journal pc proc (region : Address_space.region) =
  let pid = proc.Process.pid in
  let pages = ref 0 in
  List.iter
    (fun (vpn, pte) ->
      if pte.Page_table.present && pte.Page_table.encrypted then begin
        (* fail-secure ordering: clear the bit before the cleartext
           lands, so a crash anywhere in this window makes the recovery
           sweep re-encrypt the page.  The reverse order would leave a
           cleartext frame whose PTE still claims ciphertext — invisible
           to recovery. *)
        pte.Page_table.encrypted <- false;
        Page_crypt.decrypt_frame pc ~pid ~vpn ~frame:pte.Page_table.frame;
        pte.Page_table.no_access <- false;
        pte.Page_table.young <- true;
        incr pages;
        Option.iter (fun j -> Lock_journal.record j ~pid) journal
      end)
    (Address_space.region_ptes proc.Process.aspace region);
  (* The coherence sweep belongs to the region decrypt itself, so
     every path that eagerly decrypts a DMA region — the lazy unlock's
     DMA pass, the eager ablation, recovery rollbacks — gets it.  (It
     used to live only in [run], which left [run_eager]'d DMA buffers
     stale in DRAM: a device DMA after an eager unlock read
     ciphertext.) *)
  (match region.Address_space.kind with
  | Address_space.Dma ->
      dma_coherence_sweep (Page_crypt.machine pc)
        (Address_space.region_ptes proc.Process.aspace region)
  | Address_space.Normal | Address_space.Shared _ -> ());
  !pages

(** Batched twin of [decrypt_region]: the region's encrypted pages are
    gathered, frame-sorted and pushed through
    [Page_crypt.decrypt_batch]; per-page fail-secure ordering (bit
    cleared in [prepare], before the transform) and the trailing DMA
    coherence sweep are identical. *)
let decrypt_region_batch_with ~decrypt_batch ?journal pc proc (region : Address_space.region) =
  let pid = proc.Process.pid in
  let work =
    Array.of_list
      (List.filter
         (fun (_, pte) -> pte.Page_table.present && pte.Page_table.encrypted)
         (Address_space.region_ptes proc.Process.aspace region))
  in
  Array.stable_sort (fun (_, a) (_, b) -> compare a.Page_table.frame b.Page_table.frame) work;
  let items =
    Array.map (fun (vpn, pte) -> { Page_crypt.pid; vpn; frame = pte.Page_table.frame }) work
  in
  let pending = ref 0 in
  let flush j =
    if !pending > 0 then begin
      Lock_journal.record_batch j ~pid ~pages:!pending;
      pending := 0
    end
  in
  decrypt_batch pc items
    ~prepare:(fun i -> (snd work.(i)).Page_table.encrypted <- false)
    ~complete:(fun i ->
      (snd work.(i)).Page_table.no_access <- false;
      (snd work.(i)).Page_table.young <- true;
      match journal with
      | Some j ->
          incr pending;
          if !pending >= Lock_journal.coalesce then flush j
      | None -> ());
  Option.iter flush journal;
  (match region.Address_space.kind with
  | Address_space.Dma ->
      dma_coherence_sweep (Page_crypt.machine pc)
        (Address_space.region_ptes proc.Process.aspace region)
  | Address_space.Normal | Address_space.Shared _ -> ());
  Array.length items

let decrypt_region_batched ?journal pc proc region =
  decrypt_region_batch_with ~decrypt_batch:Page_crypt.decrypt_batch ?journal pc proc region

(** Offload twin: the region batch is pipelined into the command
    queue, one completion poll per region. *)
let decrypt_region_offload ?journal pc proc region =
  decrypt_region_batch_with ~decrypt_batch:Page_crypt.decrypt_batch_offload ?journal pc proc
    region

(** No_access eager pass over one region: restore every revoked
    mapping — PTE writes only, no crypto, no coherence sweep (the
    frame bytes never changed).  Residual ciphertext pages (from a
    crypto backend's earlier cycle) go through the batched decrypt so
    devices never DMA ciphertext. *)
let restore_region_no_access ?journal pc proc (region : Address_space.region) =
  let pid = proc.Process.pid in
  let clock = Machine.clock (Page_crypt.machine pc) in
  let residual = decrypt_region_batched ?journal pc proc region in
  let pages = ref residual in
  List.iter
    (fun ((_vpn : int), pte) ->
      if pte.Page_table.present && pte.Page_table.no_access then begin
        pte.Page_table.no_access <- false;
        pte.Page_table.young <- true;
        Clock.advance clock Calib.pte_protect_ns;
        incr pages;
        Option.iter (fun j -> Lock_journal.record j ~pid) journal
      end)
    (Address_space.region_ptes proc.Process.aspace region);
  !pages

(* The eager part of unlock, parameterized over the region-decrypt
   engine and the lazy handler to install: decrypt DMA regions,
   re-admit processes, install the handler. *)
let run_with ~region_decrypt ~handler ?journal pc (system : System.t) ~sensitive =
  let machine = system.System.machine in
  let clock = Machine.clock machine in
  let start = Clock.now clock in
  let energy0 = Energy.category (Machine.energy machine) "aes" in
  let dma_pages = ref 0 in
  Option.iter
    (fun j ->
      let pid = match sensitive with p :: _ -> p.Process.pid | [] -> 0 in
      Lock_journal.begin_pass j Lock_journal.Unlock_pass ~pid)
    journal;
  List.iter
    (fun proc ->
      List.iter
        (fun region ->
          match region.Address_space.kind with
          | Address_space.Dma -> dma_pages := !dma_pages + region_decrypt ?journal pc proc region
          | Address_space.Normal | Address_space.Shared _ -> ())
        (Address_space.regions proc.Process.aspace);
      Sched.make_schedulable system.System.sched proc)
    sensitive;
  Option.iter Lock_journal.commit journal;
  Vm.set_fault_handler system.System.vm (handler pc);
  {
    dma_pages_eager = !dma_pages;
    dma_bytes_eager = !dma_pages * Page.size;
    elapsed_ns = Clock.elapsed clock ~since:start;
    energy_j = Energy.category (Machine.energy machine) "aes" -. energy0;
  }

(** [run pc system ~sensitive] — the eager part of unlock through the
    batched pipeline (the default): each DMA region's pages are
    frame-sorted and decrypted as one batch, followed by one coalesced
    pre-DMA coherence sweep.  With [?journal], eager progress is
    journaled (coalesced per [Lock_journal.coalesce] pages) so a crash
    mid-unlock can be rolled back to fully-locked ([Sentry.recover]
    re-encrypts the already-decrypted pages and aborts the unlock). *)
let run ?journal pc system ~sensitive =
  run_with ~region_decrypt:decrypt_region_batched ~handler:fault_handler ?journal pc system
    ~sensitive

(** The page-at-a-time reference unlock. *)
let run_per_page ?journal pc system ~sensitive =
  run_with ~region_decrypt:decrypt_region ~handler:fault_handler ?journal pc system ~sensitive

(** Offload unlock: eager DMA batches pipeline into the command queue
    (amortized fixed latency), and the installed lazy handler pays the
    full round trip per first touch. *)
let run_offload ?journal pc system ~sensitive =
  run_with ~region_decrypt:decrypt_region_offload ~handler:fault_handler_offload ?journal pc
    system ~sensitive

(** No_access unlock: eagerly restore DMA-region mappings (PTE writes
    only), install the mapping-restore lazy handler. *)
let run_no_access ?journal pc system ~sensitive =
  run_with ~region_decrypt:restore_region_no_access ~handler:fault_handler_no_access ?journal
    pc system ~sensitive

(* The eager-everything ablation, parameterized like [run_with]. *)
let run_eager_with ~region_decrypt ~handler pc (system : System.t) ~sensitive =
  let pages = ref 0 in
  List.iter
    (fun proc ->
      List.iter
        (fun region -> pages := !pages + region_decrypt ?journal:None pc proc region)
        (Address_space.regions proc.Process.aspace);
      Sched.make_schedulable system.System.sched proc)
    sensitive;
  Vm.set_fault_handler system.System.vm (handler pc);
  !pages

(** Eager-everything alternative (the ablation Fig 2 is compared
    against): decrypt every page of every sensitive process now,
    region by region through the batch engine. *)
let run_eager pc system ~sensitive =
  run_eager_with ~region_decrypt:decrypt_region_batched ~handler:fault_handler pc system
    ~sensitive

(** The page-at-a-time eager ablation. *)
let run_eager_per_page pc system ~sensitive =
  run_eager_with ~region_decrypt:decrypt_region ~handler:fault_handler pc system ~sensitive

(** Eager-everything through the offload engine. *)
let run_eager_offload pc system ~sensitive =
  run_eager_with ~region_decrypt:decrypt_region_offload ~handler:fault_handler_offload pc
    system ~sensitive

(** Eager-everything under No_access: restore every mapping now. *)
let run_eager_no_access pc system ~sensitive =
  run_eager_with ~region_decrypt:restore_region_no_access ~handler:fault_handler_no_access pc
    system ~sensitive
