lib/kernel/sched.mli: Machine Process Sentry_soc
