(** A Linux-Crypto-API-like cipher registry.

    Implementations register under a name with a priority; lookups by
    algorithm name return the highest-priority implementation.  Sentry
    registers AES_On_SoC with a higher priority than the generic AES,
    so legacy users of the API — dm-crypt in particular — pick it up
    transparently (§7, Selective Encryption). *)

type impl = {
  name : string; (* driver name, e.g. "aes-generic" *)
  algorithm : string; (* algorithm it implements, e.g. "cbc(aes)" *)
  priority : int;
  set_key : bytes -> unit;
  encrypt : iv:bytes -> bytes -> bytes;
  decrypt : iv:bytes -> bytes -> bytes;
}

type t = { mutable impls : impl list }

let create () = { impls = [] }

let register t impl = t.impls <- impl :: t.impls

let unregister t ~name = t.impls <- List.filter (fun i -> i.name <> name) t.impls

(** [find t ~algorithm] — highest-priority registered implementation.
    @raise Not_found if nothing implements [algorithm]. *)
let find t ~algorithm =
  let candidates = List.filter (fun i -> i.algorithm = algorithm) t.impls in
  match List.sort (fun a b -> compare b.priority a.priority) candidates with
  | [] -> raise Not_found
  | best :: _ ->
      if Sentry_obs.Trace.on () then
        Sentry_obs.Trace.emit ~cat:Sentry_obs.Event.Crypto ~subsystem:"crypto.api" "dispatch"
          ~args:
            [
              ("algorithm", Sentry_obs.Event.Str algorithm);
              ("driver", Sentry_obs.Event.Str best.name);
              ("priority", Sentry_obs.Event.Int best.priority);
            ];
      best

let find_by_name t ~name = List.find (fun i -> i.name = name) t.impls

let list t =
  List.sort (fun a b -> compare (b.priority, b.name) (a.priority, a.name)) t.impls
