(** Figs 6-8: background computation performance while locked
    (alpine, vlock, xmms2). *)

(** Three tables, one per figure. *)
val run : unit -> Sentry_util.Table.t list
