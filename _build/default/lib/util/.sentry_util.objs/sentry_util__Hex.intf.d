lib/util/hex.mli: Bytes
