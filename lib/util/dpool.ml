(** A homegrown fixed-size work pool over [Domain.spawn] — the
    multicore substrate for the sharded fleet, kept dependency-free
    (no Domainslib) to match the compiler-libs-only culture.

    A pool owns [domains] worker domains pulling thunks off one
    mutex-protected queue.  [submit] hands a thunk to the pool and
    returns a promise; [await] blocks the caller until the thunk ran
    (re-raising anything it raised).  Task side effects published
    before a promise is fulfilled are visible to the awaiter — the
    fulfilment happens under the promise mutex, and [Domain.join] on
    [shutdown] orders everything else.

    Determinism contract: the pool promises nothing about {e which}
    domain runs a task or in what order tasks start — callers that
    need deterministic results must make every task independent
    (per-shard state only) and fold the results in submission order,
    which is exactly what [run] does.

    Worker domains are fresh domains: their domain-local state
    ([Domain.DLS]) starts at the defaults, so the ambient trace
    recorder / fault-injection session of the submitting domain never
    leaks into a task.  A task that wants tracing installs its own
    recorder and hands it back in its result. *)

type job = { work : unit -> unit }

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t array;
}

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a promise = {
  p_mutex : Mutex.t;
  p_filled : Condition.t;
  mutable state : 'a state;
}

let domains t = Array.length t.workers

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  let rec next () =
    match Queue.take_opt pool.queue with
    | Some job -> Some job
    | None ->
        if pool.closing then None
        else begin
          Condition.wait pool.nonempty pool.mutex;
          next ()
        end
  in
  let job = next () in
  Mutex.unlock pool.mutex;
  match job with
  | None -> ()
  | Some { work } ->
      (* a conforming job never raises — [submit] boxes the outcome
         into the promise — but a worker must survive one that does: a
         dead worker strands every job still queued behind it and
         deadlocks their awaiters *)
      (try work () with _ -> ());
      worker_loop pool

let create ~domains =
  if domains <= 0 then invalid_arg "Dpool.create: domains must be positive";
  let pool =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init domains (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let fulfil p state =
  Mutex.lock p.p_mutex;
  p.state <- state;
  Condition.broadcast p.p_filled;
  Mutex.unlock p.p_mutex

let submit pool f =
  let p = { p_mutex = Mutex.create (); p_filled = Condition.create (); state = Pending } in
  let work () =
    match f () with
    | v -> fulfil p (Done v)
    | exception e -> fulfil p (Failed (e, Printexc.get_raw_backtrace ()))
  in
  Mutex.lock pool.mutex;
  if pool.closing then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Dpool.submit: pool is shut down"
  end;
  Queue.add { work } pool.queue;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.mutex;
  p

let await p =
  Mutex.lock p.p_mutex;
  while p.state = Pending do
    Condition.wait p.p_filled p.p_mutex
  done;
  let st = p.state in
  Mutex.unlock p.p_mutex;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closing <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers

(** [run ~domains tasks] — execute every task on a transient pool and
    return their results in submission order.  The pool is torn down
    (workers joined) before returning, even if a task raised; the
    first submitted task's exception wins when several fail. *)
let run ~domains tasks =
  let pool = create ~domains in
  Fun.protect
    ~finally:(fun () -> shutdown pool)
    (fun () ->
      let promises = List.map (fun f -> submit pool f) tasks in
      List.map await promises)

(** [run_results ~domains tasks] — like [run], but a raising task
    costs only its own slot: every task still runs, and the outcomes
    come back in submission order as [Ok]/[Error].  ([run] re-raises
    the first failure, which forfeits the later results.) *)
let run_results ~domains tasks =
  let pool = create ~domains in
  Fun.protect
    ~finally:(fun () -> shutdown pool)
    (fun () ->
      let promises = List.map (fun f -> submit pool f) tasks in
      List.map (fun p -> match await p with v -> Ok v | exception e -> Error e) promises)
