(** The phone's hardware crypto accelerator (Nexus 4 prototype).

    Two behaviours from the paper's Fig 11/12 investigation:
    - throughput depends strongly on transfer size: per-request setup
      (descriptor programming, DMA handoff) dominates 4 KB pages,
      while bulk streams approach the engine's line rate;
    - while the phone is locked/asleep the engine's clock is scaled
      down, costing another ~4x.

    Energy per byte is {e worse} than the CPU at page granularity —
    low throughput means the whole system stays awake longer. *)

open Sentry_soc

type t = {
  machine : Machine.t;
  mutable awake : bool;
  mutable key : Aes.key option;
}

let create machine =
  if not (Machine.config machine).Machine.has_crypto_accel then
    invalid_arg "Hw_accel.create: platform has no crypto accelerator";
  { machine; awake = true; key = None }

let set_awake t awake = t.awake <- awake
let awake t = t.awake

(* Line rate and per-request setup cost, solved so a 4 KB request
   lands on the Calib figure for the awake engine. *)
let line_rate_mb_s = 120.0

let setup_bytes =
  (* 4096 / (4096 + s) * line = awake_4k  =>  s = 4096*(line/awake - 1) *)
  4096.0 *. ((line_rate_mb_s /. Calib.aes_nexus_hw_awake_mb_s) -. 1.0)

(** Modeled throughput for a request of [bytes]. *)
let throughput_mb_s t ~bytes =
  let f = float_of_int bytes in
  let base = line_rate_mb_s *. f /. (f +. setup_bytes) in
  if t.awake then base else base /. 4.0

let set_key t key = t.key <- Some (Aes.expand key)

let transform t ~(dir : [ `Encrypt | `Decrypt ]) ~iv data =
  let k = match t.key with Some k -> k | None -> failwith "Hw_accel: no key" in
  let bytes = Bytes.length data in
  let mb_s = throughput_mb_s t ~bytes in
  let seconds = Sentry_util.Units.bytes_to_mb bytes /. mb_s in
  Clock.advance (Machine.clock t.machine) (seconds *. Sentry_util.Units.s);
  Energy.charge (Machine.energy t.machine) ~category:"aes-hw"
    (float_of_int bytes *. Perf.j_per_byte (Perf.Hw_accelerated (if t.awake then `Awake else `Downscaled)));
  let c = Mode.of_key k in
  match dir with
  | `Encrypt -> Mode.cbc_encrypt c ~iv data
  | `Decrypt -> Mode.cbc_decrypt c ~iv data

let encrypt t ~iv data = transform t ~dir:`Encrypt ~iv data
let decrypt t ~iv data = transform t ~dir:`Decrypt ~iv data

(** Register with the Crypto API.  Real accelerator drivers register
    above the generic software cipher but below Sentry's AES_On_SoC. *)
let register t api =
  Crypto_api.register api
    {
      Crypto_api.name = "aes-qce"; (* Qualcomm crypto engine style name *)
      algorithm = "cbc(aes)";
      priority = 300;
      set_key = set_key t;
      encrypt = (fun ~iv data -> encrypt t ~iv data);
      decrypt = (fun ~iv data -> decrypt t ~iv data);
    }
