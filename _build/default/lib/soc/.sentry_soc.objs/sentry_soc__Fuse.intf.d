lib/soc/fuse.mli: Bytes Prng Sentry_util
