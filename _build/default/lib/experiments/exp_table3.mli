(** Table 3: security analysis of the storage alternatives.

    See the implementation for methodology notes. *)

val run : unit -> Sentry_util.Table.t list
