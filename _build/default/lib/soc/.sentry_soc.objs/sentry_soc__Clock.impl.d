lib/soc/clock.ml:
