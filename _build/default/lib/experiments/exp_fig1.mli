(** Fig 1: decrypt-on-page-in, traced step by step on live hardware

    See the implementation for methodology notes. *)

val run : unit -> Sentry_util.Table.t list
