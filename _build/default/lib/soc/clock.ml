(** Simulated wall clock.

    Every component charges time here; experiments report elapsed
    simulated nanoseconds, not host wall-clock. *)

type t = { mutable now_ns : float }

let create () = { now_ns = 0.0 }
let now t = t.now_ns
let advance t dt = t.now_ns <- t.now_ns +. dt
let reset t = t.now_ns <- 0.0

(** [elapsed t ~since] is the simulated time passed since [since]. *)
let elapsed t ~since = t.now_ns -. since

(** [timed t f] runs [f ()] and returns its result together with the
    simulated time it consumed. *)
let timed t f =
  let start = t.now_ns in
  let result = f () in
  (result, t.now_ns -. start)
