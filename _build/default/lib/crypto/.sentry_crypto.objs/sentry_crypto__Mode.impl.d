lib/crypto/mode.ml: Aes Bytes Char Sentry_util
