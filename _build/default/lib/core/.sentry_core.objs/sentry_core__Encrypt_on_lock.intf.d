lib/core/encrypt_on_lock.mli: Page_crypt Sentry_kernel System
