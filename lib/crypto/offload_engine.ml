(** MemShield-style bulk-crypto offload engine (ROADMAP item 3).

    Models a dedicated crypto unit behind a deep command queue: the
    CPU rings a doorbell per page ([submit]), the engine transforms
    commands back-to-back at accelerator line rate, and each command
    additionally pays a large fixed completion latency (queue
    traversal, completion interrupt).  Completion is only observable
    by explicit polling ([flush]) or implicitly when a full queue
    blocks the next submit.

    The consequence the [exp_backends] experiment measures: pipelined
    frame-sorted runs amortize the fixed latency over the whole batch
    and beat the CPU cipher on bulk lock, while a single-page lazy
    fault eats the full round trip and loses to it.

    Only simulated time/energy live here; the byte transform itself is
    performed host-side by the caller ([Aes_on_soc.bulk_fused_raw]) so
    ciphertext stays bit-identical across backends. *)

open Sentry_soc

type stats = {
  mutable submitted : int;
  mutable completed : int;
  mutable stalls : int;  (* submits that blocked on a full queue *)
  mutable flushes : int;
  mutable stall_ns : float;  (* CPU time spent waiting on the engine *)
}

type t = {
  machine : Machine.t;
  queue_depth : int;
  submit_ns : float;
  fixed_latency_ns : float;
  line_mb_s : float;
  j_per_byte : float;
  inflight : float Queue.t;  (* absolute completion times, FIFO *)
  mutable engine_free_ns : float;  (* engine timeline: next idle instant *)
  stats : stats;
}

let create ?(queue_depth = Calib.offload_queue_depth) machine =
  {
    machine;
    queue_depth;
    submit_ns = Calib.offload_submit_ns;
    fixed_latency_ns = Calib.offload_fixed_latency_ns;
    line_mb_s = Calib.offload_line_mb_s;
    j_per_byte = Calib.offload_j_per_byte;
    inflight = Queue.create ();
    engine_free_ns = 0.0;
    stats = { submitted = 0; completed = 0; stalls = 0; flushes = 0; stall_ns = 0.0 };
  }

let depth t = Queue.length t.inflight
let stats t = t.stats

(* Retire every command whose completion time has passed. *)
let retire t ~now =
  while (not (Queue.is_empty t.inflight)) && Queue.peek t.inflight <= now do
    ignore (Queue.pop t.inflight);
    t.stats.completed <- t.stats.completed + 1
  done

let wait_until t ~target =
  let clock = Machine.clock t.machine in
  let now = Clock.now clock in
  if target > now then begin
    t.stats.stall_ns <- t.stats.stall_ns +. (target -. now);
    Clock.advance clock (target -. now);
    if Sentry_obs.Trace.on () then
      Sentry_obs.Trace.span ~cat:Sentry_obs.Event.Crypto ~subsystem:"crypto.offload"
        ~start_ns:now ~end_ns:target
        ~args:[ ("inflight", Sentry_obs.Event.Int (Queue.length t.inflight)) ]
        "offload-wait"
  end;
  retire t ~now:(Clock.now clock)

let submit t ~bytes =
  let clock = Machine.clock t.machine in
  Clock.advance clock t.submit_ns;
  retire t ~now:(Clock.now clock);
  (* Backpressure: a full queue blocks the CPU until the oldest
     command completes — this is what makes a deep batch run at
     engine line rate rather than doorbell rate. *)
  if Queue.length t.inflight >= t.queue_depth then begin
    t.stats.stalls <- t.stats.stalls + 1;
    wait_until t ~target:(Queue.peek t.inflight)
  end;
  let now = Clock.now clock in
  let crypto_ns =
    Sentry_util.Units.bytes_to_mb bytes /. t.line_mb_s *. Sentry_util.Units.s
  in
  let start = Float.max now t.engine_free_ns in
  let done_ns = start +. crypto_ns in
  t.engine_free_ns <- done_ns;
  Queue.add (done_ns +. t.fixed_latency_ns) t.inflight;
  t.stats.submitted <- t.stats.submitted + 1;
  Energy.charge (Machine.energy t.machine) ~category:"aes"
    (float_of_int bytes *. t.j_per_byte)

(* Explicit completion polling: block until every in-flight command
   has retired.  The batched lock/unlock walks call this once per run;
   the lazy fault handler calls it per page — the crossover. *)
let flush t =
  t.stats.flushes <- t.stats.flushes + 1;
  if not (Queue.is_empty t.inflight) then begin
    let last = Queue.fold Float.max 0.0 t.inflight in
    wait_until t ~target:last
  end

(* Crash recovery: the queue does not survive a reset; recovery
   re-submits whatever the journal replays. *)
let reset t =
  Queue.clear t.inflight;
  t.engine_free_ns <- 0.0
