(* Differential and regression suite for the batched lock/unlock
   pipeline.

   The batch engine ([Page_crypt.encrypt_batch]/[decrypt_batch] under
   [Encrypt_on_lock.run]/[Decrypt_on_unlock.run]) claims per-page
   simulated equivalence with the page-at-a-time reference: same
   clock, energy, DRAM contents, taint shadows, PTE flags and attack
   verdicts.  Twin systems booted from the same seed run the same
   workload through each pipeline and their full state fingerprints
   are compared bit for bit.

   The suite also carries the regression tests for the three bugs
   fixed alongside the batch work: the fault handler's fail-secure
   ordering, eager-path DMA coherence, and scheduler queue
   corruption (the latter's property test lives in test/kernel). *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core
module Injector = Sentry_faults.Injector
module Plan = Sentry_faults.Plan
module Fault = Sentry_faults.Fault

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let secret = "FLEET-SECRET-4242424242424242!!"

(* ------------------------- twin harness -------------------------- *)

(* A fig2-style workload: three sensitive apps, one carrying a DMA
   region, all filled with secret cleartext.  [shuffle] kills a
   middle process after two more have spawned, then respawns it, so
   the reused frames break the walk-order = frame-order property the
   sequential layout has. *)
let build ?(config = { (Config.default `Tegra3) with Config.track_taint = true })
    ?(shuffle = false) ~pipeline () =
  (* pids are global to the OS process and feed the per-page ESSIV
     IVs; twins must allocate identical pid sequences *)
  Process.reset_pids ();
  let system = System.boot ~seed:11 `Tegra3 in
  let sentry = Sentry.install system config in
  Sentry.set_pipeline sentry pipeline;
  let machine = System.machine system in
  let spawn_filled ?dma_pages name pages =
    let proc = System.spawn system ~name ~bytes:(pages * Page.size) in
    let aspace = proc.Process.aspace in
    let regions =
      match dma_pages with
      | None -> Address_space.regions aspace
      | Some n ->
          ignore
            (Address_space.map_region aspace ~name:"dma" ~kind:Address_space.Dma
               ~bytes:(n * Page.size));
          Address_space.regions aspace
    in
    Machine.with_taint machine Taint.Secret_cleartext (fun () ->
        List.iter
          (fun r -> System.fill_region system proc r (Bytes.of_string (name ^ secret)))
          regions);
    Sentry.mark_sensitive sentry proc;
    proc
  in
  let mail = spawn_filled "mail" 8 in
  let procs =
    if shuffle then begin
      (* free mail's frames, spawn two more, then respawn mail: its
         new frames come off the free list out of walk order *)
      System.kill system mail;
      let maps = spawn_filled "maps" 12 ~dma_pages:4 in
      let wallet = spawn_filled "wallet" 6 in
      let mail = spawn_filled "mail" 8 in
      [ maps; wallet; mail ]
    end
    else
      let maps = spawn_filled "maps" 12 ~dma_pages:4 in
      let wallet = spawn_filled "wallet" 6 in
      [ mail; maps; wallet ]
  in
  (system, sentry, procs)

let touch_all (system : System.t) procs =
  List.iter
    (fun (proc : Process.t) ->
      List.iter
        (fun (r : Address_space.region) ->
          for p = 0 to r.Address_space.npages - 1 do
            Vm.touch system.System.vm proc
              ~vaddr:(r.Address_space.vstart + (p * Page.size))
          done)
        (Address_space.regions proc.Process.aspace))
    procs

(* ------------------------ state fingerprint ---------------------- *)

type fp = {
  clock : float;
  energy_total : float;
  energy_aes : float;
  l2 : int * int * int * int; (* hits, misses, writebacks, bypasses *)
  dram : Digest.t;
  shadow : Digest.t option;
  ptes : (int * int * int * bool * bool * bool) list;
  crypt : int * int; (* pages encrypted, decrypted *)
}

let fingerprint (system : System.t) sentry procs =
  let m = System.machine system in
  let s = Pl310.stats (Machine.l2 m) in
  let e = Machine.energy m in
  {
    clock = Clock.now (Machine.clock m);
    energy_total = Energy.total e;
    energy_aes = Energy.category e "aes";
    l2 = (s.Pl310.hits, s.Pl310.misses, s.Pl310.writebacks, s.Pl310.bypasses);
    dram = Digest.bytes (Dram.raw (Machine.dram m));
    shadow = Option.map Digest.bytes (Dram.shadow (Machine.dram m));
    ptes =
      List.concat_map
        (fun (proc : Process.t) ->
          List.concat_map
            (fun r ->
              List.map
                (fun (vpn, (pte : Page_table.pte)) ->
                  ( proc.Process.pid,
                    vpn,
                    pte.Page_table.frame,
                    pte.Page_table.present,
                    pte.Page_table.encrypted,
                    pte.Page_table.young ))
                (Address_space.region_ptes proc.Process.aspace r))
            (Address_space.regions proc.Process.aspace))
        procs;
    crypt = Page_crypt.counters (Sentry.page_crypt sentry);
  }

(* Exact comparison: the simulated observables must match bit for
   bit, not within a tolerance. *)
let check_fp label (a : fp) (b : fp) =
  checkb (label ^ ": clock bit-identical") true (a.clock = b.clock);
  checkb (label ^ ": energy total bit-identical") true (a.energy_total = b.energy_total);
  checkb (label ^ ": AES energy bit-identical") true (a.energy_aes = b.energy_aes);
  checkb (label ^ ": L2 stats identical") true (a.l2 = b.l2);
  checkb (label ^ ": DRAM contents identical") true (a.dram = b.dram);
  checkb (label ^ ": taint shadows identical") true (a.shadow = b.shadow);
  checkb (label ^ ": PTE state identical") true (a.ptes = b.ptes);
  checkb (label ^ ": crypt counters identical") true (a.crypt = b.crypt)

(* Semantic subset: memory, taint and PTEs — for layouts where the
   frame sort legitimately reorders the walk (timing then differs in
   op order, though totals stay equal up to float rounding). *)
let check_fp_semantic label (a : fp) (b : fp) =
  checkb (label ^ ": DRAM contents identical") true (a.dram = b.dram);
  checkb (label ^ ": taint shadows identical") true (a.shadow = b.shadow);
  checkb (label ^ ": PTE state identical") true (a.ptes = b.ptes);
  checkb (label ^ ": crypt counters identical") true (a.crypt = b.crypt)

(* ------------------- differential: lock / unlock ----------------- *)

let test_lock_unlock_differential () =
  let sys_b, sen_b, procs_b = build ~pipeline:Sentry.Batched () in
  let sys_p, sen_p, procs_p = build ~pipeline:Sentry.Per_page () in
  let ls_b = Sentry.lock sen_b and ls_p = Sentry.lock sen_p in
  checki "pages encrypted" ls_b.Encrypt_on_lock.pages_encrypted
    ls_p.Encrypt_on_lock.pages_encrypted;
  check_fp "locked" (fingerprint sys_b sen_b procs_b) (fingerprint sys_p sen_p procs_p);
  (match (Sentry.unlock sen_b ~pin:"1234", Sentry.unlock sen_p ~pin:"1234") with
  | Ok us_b, Ok us_p ->
      checki "eager DMA pages" us_b.Decrypt_on_unlock.dma_pages_eager
        us_p.Decrypt_on_unlock.dma_pages_eager
  | _ -> Alcotest.fail "unlock failed");
  check_fp "unlocked" (fingerprint sys_b sen_b procs_b) (fingerprint sys_p sen_p procs_p);
  (* drive every lazy fault; the handler path is shared, but the
     state it starts from must be, too *)
  touch_all sys_b procs_b;
  touch_all sys_p procs_p;
  check_fp "after faults" (fingerprint sys_b sen_b procs_b) (fingerprint sys_p sen_p procs_p)

let test_eager_differential () =
  let sys_b, sen_b, procs_b = build ~pipeline:Sentry.Batched () in
  let sys_p, sen_p, procs_p = build ~pipeline:Sentry.Per_page () in
  ignore (Sentry.lock sen_b);
  ignore (Sentry.lock sen_p);
  (match (Sentry.unlock_eager sen_b ~pin:"1234", Sentry.unlock_eager sen_p ~pin:"1234") with
  | Ok n_b, Ok n_p -> checki "pages decrypted eagerly" n_b n_p
  | _ -> Alcotest.fail "unlock_eager failed");
  check_fp "eager unlock" (fingerprint sys_b sen_b procs_b) (fingerprint sys_p sen_p procs_p)

(* Shuffled frame layout: the batch sort genuinely reorders the walk,
   so only semantic state is promised (and delivered). *)
let test_shuffled_semantic () =
  let sys_b, sen_b, procs_b = build ~shuffle:true ~pipeline:Sentry.Batched () in
  let sys_p, sen_p, procs_p = build ~shuffle:true ~pipeline:Sentry.Per_page () in
  ignore (Sentry.lock sen_b);
  ignore (Sentry.lock sen_p);
  check_fp_semantic "locked (shuffled)" (fingerprint sys_b sen_b procs_b)
    (fingerprint sys_p sen_p procs_p);
  (match (Sentry.unlock sen_b ~pin:"1234", Sentry.unlock sen_p ~pin:"1234") with
  | Ok _, Ok _ -> ()
  | _ -> Alcotest.fail "unlock failed");
  touch_all sys_b procs_b;
  touch_all sys_p procs_p;
  check_fp_semantic "after faults (shuffled)" (fingerprint sys_b sen_b procs_b)
    (fingerprint sys_p sen_p procs_p)

(* Attack verdicts (the Table 3 claim) must agree between pipelines:
   every cold-boot variant against the locked twins. *)
let test_attack_verdicts_agree () =
  List.iter
    (fun variant ->
      let sys_b, sen_b, _ = build ~pipeline:Sentry.Batched () in
      let sys_p, sen_p, _ = build ~pipeline:Sentry.Per_page () in
      ignore (Sentry.lock sen_b);
      ignore (Sentry.lock sen_p);
      let sec = Bytes.of_string secret in
      let v_b = Sentry_attacks.Cold_boot.succeeds (System.machine sys_b) variant ~secret:sec in
      let v_p = Sentry_attacks.Cold_boot.succeeds (System.machine sys_p) variant ~secret:sec in
      checkb
        (Printf.sprintf "verdicts agree (%s)" (Sentry_attacks.Cold_boot.variant_name variant))
        true
        (v_b = v_p);
      checkb
        (Printf.sprintf "defence holds (%s)" (Sentry_attacks.Cold_boot.variant_name variant))
        false v_b)
    [
      Sentry_attacks.Cold_boot.Os_reboot;
      Sentry_attacks.Cold_boot.Device_reflash;
      Sentry_attacks.Cold_boot.Two_second_reset;
    ]

(* ---------------------- coalesced journaling --------------------- *)

(* A batched lock crashed mid-walk must roll forward from its
   coalesced journal: the entry under-counts by up to
   [Lock_journal.coalesce - 1] pages and recovery (keyed off PTE
   bits) completes the pass anyway. *)
let test_journal_coalesced_roll_forward () =
  let config = { (Config.default `Tegra3) with Config.journal = true } in
  let _sys, sentry, _procs = build ~config ~pipeline:Sentry.Batched () in
  checkb "journal active" true (Sentry.journal_enabled sentry);
  Injector.arm
    (Plan.make ~name:"mid-lock"
       [
         Plan.trigger ~point:Injector.Points.page_encrypted ~kind:Fault.Power_loss
           ~at:(Plan.Nth 5);
       ]);
  (try ignore (Sentry.lock sentry) with Injector.Injected _ -> ());
  Injector.disarm ();
  (match Sentry.recover sentry with
  | Some r ->
      checkb "rolled forward to Locked" true (r.Sentry.resumed = Sentry.Resumed_lock);
      checkb "recovery re-encrypted the tail" true (r.Sentry.pages_fixed > 0);
      (match r.Sentry.journal_entry with
      | Some e ->
          (* 5 pages transformed and completed, one coalesce group flushed *)
          checki "coalesced pages_done" Lock_journal.coalesce e.Lock_journal.pages_done
      | None -> Alcotest.fail "journal entry missing")
  | None -> Alcotest.fail "recovery did not run");
  checkb "device locked after recovery" true (Sentry.is_locked sentry)

let test_journal_clean_run_recovers_nothing () =
  let config = { (Config.default `Tegra3) with Config.journal = true } in
  let _sys, sentry, _procs = build ~config ~pipeline:Sentry.Batched () in
  ignore (Sentry.lock sentry);
  (match Sentry.unlock sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unlock failed");
  checkb "nothing to recover after a clean cycle" true (Sentry.recover sentry = None)

(* ----------------- bug 1: fail-secure fault handler --------------- *)

(* Crash the lazy fault handler after the cleartext lands but before
   it returns.  Fail-secure ordering (encrypted bit cleared first)
   means the next lock walk sees the page as cleartext and
   re-encrypts it.  The buggy order (decrypt, then clear) left a
   cleartext frame whose PTE claimed ciphertext: the lock walk
   skipped it and the cold-boot attack read the secret. *)
let test_fault_handler_fail_secure () =
  let sys, sentry, procs = build ~pipeline:Sentry.Batched () in
  ignore (Sentry.lock sentry);
  (match Sentry.unlock sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unlock failed");
  Injector.arm
    (Plan.make ~name:"mid-handler"
       [
         Plan.trigger ~point:Injector.Points.page_decrypted ~kind:Fault.Reset ~at:(Plan.Nth 1);
       ]);
  let proc = List.hd procs in
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  (match Vm.touch sys.System.vm proc ~vaddr:region.Address_space.vstart with
  | () -> Alcotest.fail "fault handler was not interrupted"
  | exception Injector.Injected _ -> ());
  Injector.disarm ();
  (* the interrupted page: cleartext in memory, PTE must say so *)
  let _, pte = List.hd (Address_space.region_ptes proc.Process.aspace region) in
  checkb "interrupted page not marked encrypted" false pte.Page_table.encrypted;
  (* next lock must re-encrypt it, leaving nothing for a cold boot *)
  ignore (Sentry.lock sentry);
  checkb "page re-encrypted by next lock" true pte.Page_table.encrypted;
  checkb "no cleartext for the cold-boot attack" false
    (Sentry_attacks.Cold_boot.succeeds (System.machine sys)
       Sentry_attacks.Cold_boot.Two_second_reset ~secret:(Bytes.of_string secret))

(* ------------------- bug 2: eager DMA coherence ------------------- *)

(* Devices access DMA frames physically, bypassing the cache.  After
   an eager unlock the decrypted cleartext must already be in DRAM —
   the coherence sweep decrypt_region runs for DMA regions cleans the
   dirty lines out.  Without it the cleartext sat dirty in L2 and a
   device DMA read returned stale ciphertext. *)
let test_eager_dma_coherence () =
  let sys, sentry, _ = build ~pipeline:Sentry.Batched () in
  let machine = System.machine sys in
  let maps = List.find (fun p -> p.Process.name = "maps") sys.System.procs in
  let dma =
    match Address_space.find_region maps.Process.aspace ~name:"dma" with
    | Some r -> r
    | None -> Alcotest.fail "maps has no DMA region"
  in
  let ptes = Address_space.region_ptes maps.Process.aspace dma in
  (* ground truth before locking, via the coherent CPU view *)
  let plaintext =
    List.map (fun (_, pte) -> Machine.read machine pte.Page_table.frame Page.size) ptes
  in
  ignore (Sentry.lock sentry);
  (match Sentry.unlock_eager sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unlock_eager failed");
  let raw = Dram.raw (Machine.dram machine) in
  let base = (Machine.dram_region machine).Memmap.base in
  List.iter2
    (fun (vpn, pte) expected ->
      let in_dram = Bytes.sub raw (pte.Page_table.frame - base) Page.size in
      if not (Bytes.equal in_dram expected) then
        Alcotest.failf "DMA frame for vpn %d stale in DRAM after eager unlock" vpn)
    ptes plaintext

(* ------------------- allocation ceiling (batch) ------------------- *)

(* The batch engine must preserve the per-page fast path's allocation
   discipline: one warm-up pass, then a steady-state lock/unlock
   cycle stays under a small per-page budget. *)
let test_batch_allocation_ceiling () =
  let _sys, sentry, _ =
    build ~config:(Config.default `Tegra3) ~pipeline:Sentry.Batched ()
  in
  let cycle () =
    let ls = Sentry.lock sentry in
    (match Sentry.unlock_eager sentry ~pin:"1234" with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "unlock_eager failed");
    ls.Encrypt_on_lock.pages_encrypted
  in
  let pages = cycle () (* warm-up *) in
  let mw0 = Gc.minor_words () in
  let rounds = 8 in
  for _ = 1 to rounds do
    ignore (cycle ())
  done;
  let per_page = (Gc.minor_words () -. mw0) /. float_of_int (rounds * 2 * pages) in
  if per_page > 512.0 then
    Alcotest.failf "batched lock/unlock allocated %.1f minor words per page (ceiling 512)"
      per_page

(* -------------- run-granule memory path differential -------------- *)

(* [Machine.read_run_into]/[write_run_from] (the batch engine's
   memory path) against the per-chunk generic path on twin machines:
   same data, same clock, same L2 statistics. *)
let test_run_path_differential () =
  let mk () =
    let m = Machine.create ~seed:17 (Machine.tegra3 ~dram_size:(4 * Units.mib) ()) in
    Machine.enable_taint m;
    m
  in
  let m_run = mk () and m_gen = mk () in
  let base = (Machine.dram_region m_run).Memmap.base in
  let prng = Prng.create ~seed:23 in
  let buf = Bytes.create Page.size in
  for _ = 1 to 200 do
    let addr = base + (Prng.int prng 256 * 64) in
    let len = 64 + (Prng.int prng 16 * 64) in
    if Prng.int prng 2 = 0 then begin
      Machine.read_run_into m_run addr buf ~off:0 ~len;
      Machine.read_into m_gen addr buf ~off:0 ~len
    end
    else begin
      Bytes.fill buf 0 len (Char.chr (Prng.int prng 256));
      Machine.with_taint m_run Taint.Ciphertext (fun () ->
          Machine.write_run_from m_run addr buf ~off:0 ~len);
      Machine.with_taint m_gen Taint.Ciphertext (fun () ->
          Machine.write_from m_gen addr buf ~off:0 ~len)
    end
  done;
  let fp m =
    let s = Pl310.stats (Machine.l2 m) in
    ( Clock.now (Machine.clock m),
      Energy.total (Machine.energy m),
      (s.Pl310.hits, s.Pl310.misses, s.Pl310.writebacks, s.Pl310.bypasses),
      Digest.bytes (Dram.raw (Machine.dram m)),
      Option.map Digest.bytes (Dram.shadow (Machine.dram m)) )
  in
  checkb "run path = generic path" true (fp m_run = fp m_gen)

let () =
  Alcotest.run "sentry_core_batch"
    [
      ( "differential",
        [
          Alcotest.test_case "lock/unlock/faults" `Quick test_lock_unlock_differential;
          Alcotest.test_case "eager unlock" `Quick test_eager_differential;
          Alcotest.test_case "shuffled layout (semantic)" `Quick test_shuffled_semantic;
          Alcotest.test_case "attack verdicts" `Quick test_attack_verdicts_agree;
          Alcotest.test_case "run memory path" `Quick test_run_path_differential;
        ] );
      ( "journal",
        [
          Alcotest.test_case "coalesced roll-forward" `Quick test_journal_coalesced_roll_forward;
          Alcotest.test_case "clean run" `Quick test_journal_clean_run_recovers_nothing;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "fail-secure fault handler" `Quick test_fault_handler_fail_secure;
          Alcotest.test_case "eager DMA coherence" `Quick test_eager_dma_coherence;
        ] );
      ( "allocation",
        [ Alcotest.test_case "batched cycle ceiling" `Quick test_batch_allocation_ceiling ] );
    ]
