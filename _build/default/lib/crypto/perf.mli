(** Modeled AES performance and energy per variant (Figs 11-12): the
    simulator transforms bytes natively and charges simulated
    time/energy according to the variant that would have run. *)

open Sentry_soc

type variant =
  | Openssl_user
  | Crypto_api_kernel
  | Hw_accelerated of [ `Awake | `Downscaled ]
  | Onsoc_locked_l2
  | Onsoc_iram

type platform = [ `Nexus4 | `Tegra3 ]

val platform_of_machine : Machine.t -> platform
val variant_name : variant -> string

(** Modeled throughput on 4 KB pages, MB/s.
    @raise Invalid_argument for impossible platform/variant pairs. *)
val throughput_mb_s : platform:platform -> variant -> float

(** Modeled full-system energy, J per byte. *)
val j_per_byte : variant -> float

(** Advance the simulated clock and energy meter as if [bytes] had
    been transformed by [variant]. *)
val charge : Machine.t -> variant -> bytes:int -> unit
