(** Deterministic fault plans.

    A plan is a named set of triggers: each trigger watches one hook
    point and fires its fault on a scripted occurrence ([Nth],
    [Every]) or with a PRNG-drawn probability ([Prob], seeded from the
    plan so replays are bit-identical).  Plans are pure data — the
    [Injector] interprets them. *)

type occurrence =
  | Nth of int  (** fire on exactly the k-th arrival at the point (1-based) *)
  | Every of int  (** fire on every k-th arrival *)
  | Prob of float  (** fire with probability p per arrival (plan-seeded PRNG) *)

type trigger = { point : string; kind : Fault.kind; at : occurrence }

type t = { name : string; seed : int; triggers : trigger list }

let make ?(seed = 0xfa17) ~name triggers = { name; seed; triggers }

let trigger ~point ~kind ~at = { point; kind; at }

let occurrence_to_string = function
  | Nth k -> Printf.sprintf "nth=%d" k
  | Every k -> Printf.sprintf "every=%d" k
  | Prob p -> Printf.sprintf "p=%g" p

let pp_trigger ppf tr =
  Fmt.pf ppf "%s @ %s (%s)" (Fault.name tr.kind) tr.point (occurrence_to_string tr.at)

let pp ppf t =
  Fmt.pf ppf "plan %s (seed 0x%x):" t.name t.seed;
  List.iter (fun tr -> Fmt.pf ppf "@ %a;" pp_trigger tr) t.triggers

let describe t = Fmt.str "%a" pp t
