lib/soc/bus.mli: Bytes Clock Energy Format
