(** The booted software stack: machine, kernel services and the
    crypto registry.  Everything above (Sentry itself, workloads,
    experiments) operates on a [t]. *)

open Sentry_soc

type t = {
  machine : Machine.t;
  frames : Sentry_kernel.Frame_alloc.t;
  vm : Sentry_kernel.Vm.t;
  sched : Sentry_kernel.Sched.t;
  zerod : Sentry_kernel.Zerod.t;
  crypto_api : Sentry_crypto.Crypto_api.t;
  arena_base : int;
      (** way-aligned top-of-DRAM region reserved for [Locked_cache] *)
  mutable procs : Sentry_kernel.Process.t list;
  mutable next_pid : int option;
      (** [Some n] when this system owns its pid space ([boot
          ~pid_base]): the next [spawn] gets pid [n].  [None]: pids
          come off the process-global allocator. *)
}

(** Ways' worth of DRAM reserved for the locked-cache arena. *)
val arena_ways : int

(** [boot ?seed ?dram_size ?pid_base platform] creates a machine,
    carves the DRAM layout (kernel reserve | general frames |
    locked-cache arena) and starts the kernel services.  With
    [~pid_base:n] the system owns a private pid space starting at [n]
    (successive spawns get [n], [n+1], …, untouched by any other
    system or domain) — pids feed the per-page ESSIV IVs, so sharded
    harnesses use disjoint deterministic bases per shard.  Without it,
    pids come off the process-global allocator as before. *)
val boot : ?seed:int -> ?dram_size:int -> ?pid_base:int -> Config.platform -> t

val machine : t -> Machine.t

(** Current simulated time (ns). *)
val now : t -> float

(** [spawn t ~name ~bytes] creates a process with one region of
    [bytes] and admits it to the scheduler. *)
val spawn :
  ?kind:Sentry_kernel.Address_space.kind ->
  t ->
  name:string ->
  bytes:int ->
  Sentry_kernel.Process.t

(** Tear a process down, freeing its frames (onto the dirty list). *)
val kill : t -> Sentry_kernel.Process.t -> unit

(** Fill a process region with a repeating pattern via the MMU. *)
val fill_region :
  t -> Sentry_kernel.Process.t -> Sentry_kernel.Address_space.region -> Bytes.t -> unit
