(* Lint fixture: R5 ambient trace/fault calls lexically inside
   closures handed to Domain.spawn / Dpool.submit / Dpool.run.
   Per-domain setup (install/activate) and handle-threading calls
   through Trace.Recorder must NOT be flagged.  Expected findings:
   Trace.emit, Injector.arm, Trace.enter_span, Trace.exit_span. *)

let bad_direct () =
  Domain.spawn (fun () ->
      Trace.emit ~cat:Lock ~subsystem:"fixture" "boom";
      Injector.arm plan)

let bad_pool pool =
  Dpool.submit pool (fun () ->
      Sentry_obs.Trace.enter_span ~cat:Lock ~subsystem:"fixture" "cycle")

let bad_nested () =
  Domain.spawn (fun () -> Dpool.run ~domains:1 [ (fun () -> Trace.exit_span ()) ])

let ok_handle pool r =
  Dpool.submit pool (fun () -> Trace.Recorder.emit r ~cat:Lock ~subsystem:"fixture" "fine")

let ok_setup () =
  Domain.spawn (fun () ->
      Trace.install (Trace.Recorder.create ());
      Trace.uninstall ())
