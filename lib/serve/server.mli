(** Sentry-as-a-service: an open-loop lock/unlock server over the
    batched pipeline — bounded admission with backpressure verdicts,
    a Poisson/diurnal arrival schedule on the simulated clock, batch
    serving through the installed protection backend, and an optional
    chaos-soak mode
    that injects lock-walk crashes mid-traffic and recovers without
    stopping arrivals.  See DESIGN.md §14. *)

open Sentry_core

type config = {
  tenants : int;  (** pool size (fleet tenant-class mix by index) *)
  pages_per_proc : int;  (** medium tenant main-region pages *)
  rate_hz : float;  (** base Poisson arrival rate (simulated Hz) *)
  burst : float;  (** peak-quarter multiplier (diurnal profile) *)
  duration_s : float;  (** simulated arrival-generation span *)
  queue_depth : int;  (** admission FIFO depth (per shard) *)
  backlog_pages_max : int;  (** page backlog cap (journal/iRAM model) *)
  batch_max : int;  (** requests served per unlock/lock cycle *)
  seed : int;
  soak : bool;  (** inject crashes into periodic re-locks *)
  soak_period : int;  (** crash every Nth batch when soaking *)
  backend : Sentry.backend;
}

(** 8 tenants × 8 pages, 40 req/s base with a 3× peak quarter over
    2 simulated seconds, queue depth 64, batches of 8, no soak. *)
val default : config

type dist = {
  count : int;
  mean_ns : float;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
}

type stats = {
  config : config;
  requests : int;  (** arrivals offered to admission *)
  served : int;
  shed : int;  (** queue-depth overflow drops *)
  rejected : int;  (** page-backlog saturation drops *)
  batches : int;  (** unlock → serve → lock cycles run *)
  crashes_injected : int;  (** soak crashes that actually fired *)
  recoveries : int;  (** successful [Sentry.recover] passes *)
  audit_findings : int;  (** post-recovery consistency findings (want 0) *)
  pages_locked : int;  (** summed over completed lock passes *)
  pages_fixed : int;  (** pages rolled forward by recovery *)
  pages_faulted : int;  (** lazy decrypt faults served *)
  shed_rate : float;  (** (shed + rejected) / requests, 0 when idle *)
  latency_samples : (string * float) list;
      (** (tenant_class, unlock_to_first_touch_ns) in service order *)
  queue_wait_samples : (string * float) list;
      (** (tenant_class, queue_wait_ns) in service order *)
  latency_by_class : (string * dist) list;
  queue_wait_by_class : (string * dist) list;
  sim_elapsed_ns : float;
  energy_j : float;
}

(** The page footprint a request charges against the admission
    backlog: its first-touch page plus the tenant's eager-DMA churn. *)
val request_pages : pages_per_proc:int -> Arrivals.request -> int

(** Record a run's samples and counters into a registry under
    [serve/…{tenant_class=…}] — the labeled fan-in sharded runs
    [Metrics.merge].  Excludes the shed-rate gauge (rates don't merge);
    see {!set_shed_rate}. *)
val record_into : Sentry_obs.Metrics.t -> stats -> unit

(** Set the [serve/shed_rate] gauge, stamped at simulated [ts].  Call
    once per merged registry, never per shard. *)
val set_shed_rate : Sentry_obs.Metrics.t -> ts:float -> float -> unit

type shard = {
  shard_index : int;
  first_tenant : int;
  tenants : int;
  pid_base : int;  (** first_tenant + 1 — sharded pids equal serial pids *)
  shard_seed : int;
  shard_stats : stats;
  shard_metrics : Sentry_obs.Metrics.t;
}

type sharded = {
  domains : int;
  shard_count : int;
  wall_s : float;  (** host time over the whole parallel section *)
  shards : shard list;  (** in shard-index order *)
  merged : stats;
  merged_metrics : Sentry_obs.Metrics.t;
}

(** Default shard count for a pool: [min tenants 16]. *)
val default_shards : tenants:int -> int

(** [run_sharded ~domains cfg] — partition the tenant pool with
    {!Sentry_workloads.Fleet.shard_plan}, serve every shard's filtered
    sub-stream of the (identically regenerated) global schedule on a
    [domains]-wide [Dpool], and fold results in shard-index order.
    Merged outputs are invariant in [domains]; only [wall_s] changes.
    @raise Invalid_argument on an invalid config or non-positive
    [domains]/[shards]. *)
val run_sharded : ?platform:Config.platform -> ?shards:int -> domains:int -> config -> sharded

(** [run cfg] — serve the whole schedule serially; with [~domains:d],
    delegate to {!run_sharded} (sharded semantics even at [d = 1])
    and return the merged stats.  With [?metrics], samples, counters
    and the shed-rate gauge land in the registry.
    @raise Invalid_argument on an invalid config. *)
val run :
  ?platform:Config.platform -> ?metrics:Sentry_obs.Metrics.t -> ?domains:int -> config -> stats

(** Machine-readable stats: simulated / deterministic fields only (no
    host wall time), so serialized documents are bit-identical across
    domain counts. *)
val json : stats -> Sentry_obs.Json_out.t

val pp : Format.formatter -> stats -> unit
val pp_sharded : Format.formatter -> sharded -> unit
