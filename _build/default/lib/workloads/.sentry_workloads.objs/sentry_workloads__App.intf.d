lib/workloads/app.mli: Address_space Process Sentry_core Sentry_kernel
