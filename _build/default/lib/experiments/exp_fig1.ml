(** Fig 1: decrypt-on-page-in, traced step by step on live hardware
    state.

    A background-enabled sensitive app is locked, then touches one
    page; each step of the Fig 1 sequence is checked against the
    simulator: PTE young/encrypted bits, which cache way holds the
    page, and whether DRAM behind the locked line ever sees
    plaintext. *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core

let pattern = Bytes.of_string "Fig1-plaintext!!"

let run () =
  let system = System.boot `Tegra3 ~seed:0xf16 in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let proc = System.spawn system ~name:"fig1-app" ~bytes:(64 * Units.kib) in
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  System.fill_region system proc region pattern;
  Sentry.mark_sensitive sentry proc;
  Sentry.enable_background sentry proc;
  let vaddr = region.Address_space.vstart in
  let vpn = Page.vpn_of vaddr in
  let pte () =
    match Page_table.find (Address_space.table proc.Process.aspace) ~vpn with
    | Some p -> p
    | None -> assert false
  in
  let dram_raw () = Dram.raw (Machine.dram machine) in
  let observations = ref [] in
  let observe step fact = observations := [ step; fact ] :: !observations in
  ignore (Sentry.lock sentry);
  let p = pte () in
  observe "after lock"
    (Printf.sprintf "PTE: young=%b encrypted=%b frame=0x%08x; plaintext in DRAM: %b"
       p.Page_table.young p.Page_table.encrypted p.Page_table.frame
       (Bytes_util.contains (dram_raw ()) pattern));
  (* the background app touches the page: young-bit trap fires *)
  let data = Vm.read system.System.vm proc ~vaddr ~len:16 in
  let p = pte () in
  let way =
    match Pl310.way_of (Machine.l2 machine) p.Page_table.frame with
    | Some w -> string_of_int w
    | None -> "none (BUG)"
  in
  observe "step 1-2: copy into locked way + decrypt in place"
    (Printf.sprintf "page now at 0x%08x (locked-cache arena), resident in L2 way %s"
       p.Page_table.frame way);
  observe "step 3: PTE updated, young set"
    (Printf.sprintf "PTE: young=%b encrypted=%b backing=%s" p.Page_table.young
       p.Page_table.encrypted
       (match p.Page_table.backing with Some b -> Printf.sprintf "0x%08x" b | None -> "none"));
  observe "read through MMU"
    (Printf.sprintf "returned %S (correct: %b); plaintext in DRAM: %b" (Bytes.to_string data)
       (Bytes.equal data pattern)
       (Bytes_util.contains (dram_raw ()) pattern));
  [
    Table.make ~title:"Fig 1: decrypt on page-in (mechanism trace)"
      ~header:[ "Step"; "Observation" ]
      ~notes:[ "The plaintext exists only in locked L2 lines; DRAM holds ciphertext throughout." ]
      (List.rev !observations);
  ]
