(** The lint vocabulary: rules, severities and findings.

    A finding's identity for allowlisting purposes is the triple
    (rule, file, symbol) — line numbers churn with every edit, so the
    committed [lint.allow] matches on the stable parts and the line is
    carried only for display and the JSON report. *)

type rule =
  | R1_global_mutable
      (** a structure-level [let] bound to mutable storage ([ref],
          [Hashtbl.create], [Bytes.make], a record literal with
          mutable fields, ...): hidden cross-shard coupling *)
  | R2_global_assign
      (** [:=] or [<-] targeting another module's R1-flagged global *)
  | R3_toplevel_effect
      (** [let () = ...] (or [let _ = ...]) at structure level:
          side effects run at module initialisation *)
  | R4_unsafe_escape
      (** [Obj.magic] / [Bytes.unsafe_*] / [Array.unsafe_*] outside
          the audited fast-path modules *)
  | R5_ambient_in_spawn
      (** an ambient (module-level compat) trace/fault call lexically
          inside a closure handed to [Domain.spawn] / [Dpool.submit] /
          [Dpool.run]: the ambient slots are domain-local and start
          empty in a fresh domain *)

type severity = Error | Warning

let rule_id = function
  | R1_global_mutable -> "R1"
  | R2_global_assign -> "R2"
  | R3_toplevel_effect -> "R3"
  | R4_unsafe_escape -> "R4"
  | R5_ambient_in_spawn -> "R5"

let rule_name = function
  | R1_global_mutable -> "global-mutable"
  | R2_global_assign -> "global-assign"
  | R3_toplevel_effect -> "toplevel-effect"
  | R4_unsafe_escape -> "unsafe-escape"
  | R5_ambient_in_spawn -> "ambient-in-spawn"

let rule_of_id = function
  | "R1" -> Some R1_global_mutable
  | "R2" -> Some R2_global_assign
  | "R3" -> Some R3_toplevel_effect
  | "R4" -> Some R4_unsafe_escape
  | "R5" -> Some R5_ambient_in_spawn
  | _ -> None

(* R3 is a warning: module-init effects are a smell (they run before
   any handle exists to thread through) but not by themselves a
   data race.  Every rule gates CI regardless of severity. *)
let severity = function
  | R1_global_mutable | R2_global_assign | R4_unsafe_escape | R5_ambient_in_spawn -> Error
  | R3_toplevel_effect -> Warning

let severity_name = function Error -> "error" | Warning -> "warning"

type t = {
  rule : rule;
  file : string;  (** path as scanned, '/'-separated, repo-relative *)
  line : int;
  col : int;
  symbol : string;  (** stable identity: bound name, target path or primitive *)
  message : string;
}

let make ~rule ~file ~loc ~symbol ~message =
  let pos = loc.Location.loc_start in
  {
    rule;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    symbol;
    message;
  }

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s %s] %s (symbol: %s)" f.file f.line f.col (rule_id f.rule)
    (rule_name f.rule) f.message f.symbol

(* Stable report order: by file, then line, then rule, then symbol. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare (rule_id a.rule) (rule_id b.rule) in
        if c <> 0 then c else String.compare a.symbol b.symbol
