(** Fig 10: Linux kernel compile duration as a function of locked

    See the implementation for methodology notes. *)

val run : unit -> Sentry_util.Table.t list
