(** Figs 6-8: background computation performance while locked
    (alpine, vlock, xmms2) — kernel time without Sentry and with 256
    or 512 KB of locked L2 cache. *)

open Sentry_util
open Sentry_core
open Sentry_workloads

type cell = { kernel_s : float; faults : int; page_ins : int; page_outs : int }

let run_config (profile : Background_app.profile) ~budget_bytes ~seed =
  let system = System.boot `Tegra3 ~seed in
  let ws_bytes = profile.Background_app.working_set_kb * Units.kib in
  match budget_bytes with
  | None ->
      (* baseline: no Sentry; kernel time is aging faults + syscalls *)
      let proc = System.spawn system ~name:profile.Background_app.bg_name ~bytes:ws_bytes in
      System.fill_region system proc
        (List.hd (Sentry_kernel.Address_space.regions proc.Sentry_kernel.Process.aspace))
        (Bytes.of_string "bgdata!!");
      let r = Background_app.run system proc profile ~seed in
      {
        kernel_s = r.Background_app.kernel_time_ns /. Units.s;
        faults = r.Background_app.faults;
        page_ins = 0;
        page_outs = 0;
      }
  | Some budget ->
      let config = { (Config.default `Tegra3) with Config.background_budget_bytes = budget } in
      let sentry = Sentry.install system config in
      let proc = System.spawn system ~name:profile.Background_app.bg_name ~bytes:ws_bytes in
      System.fill_region system proc
        (List.hd (Sentry_kernel.Address_space.regions proc.Sentry_kernel.Process.aspace))
        (Bytes.of_string "bgdata!!");
      Sentry.mark_sensitive sentry proc;
      Sentry.enable_background sentry proc;
      ignore (Sentry.lock sentry);
      let r = Background_app.run system proc profile ~seed in
      let page_ins, page_outs =
        match Sentry.background_engine sentry with
        | Some bg -> Background.stats bg
        | None -> (0, 0)
      in
      {
        kernel_s = r.Background_app.kernel_time_ns /. Units.s;
        faults = r.Background_app.faults;
        page_ins;
        page_outs;
      }

let table_for (profile : Background_app.profile) ~figure ~paper_note =
  let seed = Hashtbl.hash profile.Background_app.bg_name in
  let base = run_config profile ~budget_bytes:None ~seed in
  let with256 = run_config profile ~budget_bytes:(Some (256 * Units.kib)) ~seed in
  let with512 = run_config profile ~budget_bytes:(Some (512 * Units.kib)) ~seed in
  let row label (c : cell) =
    [
      label;
      Printf.sprintf "%.3f s" c.kernel_s;
      Printf.sprintf "%.2fx" (c.kernel_s /. base.kernel_s);
      string_of_int c.faults;
      Printf.sprintf "%d/%d" c.page_ins c.page_outs;
    ]
  in
  Table.make
    ~title:(Printf.sprintf "Fig %s: background kernel time for %s" figure profile.Background_app.bg_name)
    ~header:[ "Config"; "Time in kernel"; "vs base"; "faults"; "page-ins/outs" ]
    ~notes:[ paper_note ]
    [
      row "Without Sentry" base;
      row "With Sentry (256KB)" with256;
      row "With Sentry (512KB)" with512;
    ]

let run () =
  [
    table_for Background_app.alpine ~figure:"6"
      ~paper_note:"Paper: alpine 2.74x slower with 256 KB of locked cache.";
    table_for Background_app.vlock ~figure:"7"
      ~paper_note:"Paper: vlock overhead small in absolute terms (tiny working set).";
    table_for Background_app.xmms2 ~figure:"8"
      ~paper_note:"Paper: xmms2 48% overhead with 512 KB of locked cache.";
  ]
