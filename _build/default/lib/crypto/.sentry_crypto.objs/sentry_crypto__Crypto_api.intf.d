lib/crypto/crypto_api.mli: Bytes
