lib/kernel/buffer_cache.mli: Blockio Machine Sentry_soc
