(** The protection-backend interface: one complete strategy for
    protecting sensitive memory across a lock/unlock cycle.  [Sentry]
    dispatches lock/unlock walks, the lazy fault handler and recovery
    through the installed backend; switching is guarded to the
    [Unlocked] state. *)

type kind =
  | Batched  (** encrypt-on-lock through the gather/sort/batch engine (default) *)
  | Per_page  (** the page-at-a-time reference pipeline *)
  | Offload
      (** MemShield-inspired deep command queue: high throughput, high
          fixed completion latency, explicit polling *)
  | No_access
      (** MProtect-inspired: locked pages become inaccessible, DRAM
          keeps cleartext (cold boot/DMA succeed by design) *)

val kind_name : kind -> string

(** Accepts both the CLI spelling ("per-page") and the constructor
    spelling ("per_page"). *)
val kind_of_string : string -> kind option

val all_kinds : kind list

module type S = sig
  val kind : kind
  val name : string

  (** Pages per journal record the walks coalesce — recovery's
      progress counters under-count by at most this. *)
  val journal_coalesce : int

  val lock_walk :
    ?journal:Lock_journal.t ->
    Page_crypt.t ->
    System.t ->
    sensitive:Sentry_kernel.Process.t list ->
    background:(Sentry_kernel.Process.t -> bool) ->
    Encrypt_on_lock.stats

  val unlock_walk :
    ?journal:Lock_journal.t ->
    Page_crypt.t ->
    System.t ->
    sensitive:Sentry_kernel.Process.t list ->
    Decrypt_on_unlock.stats

  val unlock_eager :
    Page_crypt.t -> System.t -> sensitive:Sentry_kernel.Process.t list -> int

  val fault_handler : Page_crypt.t -> Sentry_kernel.Vm.fault_handler

  (** Run before a recovery walk replays the journal: tear down any
      backend state that did not survive the crash. *)
  val on_recover : Page_crypt.t -> unit
end

val of_kind : kind -> (module S)
