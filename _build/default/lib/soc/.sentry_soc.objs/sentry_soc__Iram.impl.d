lib/soc/iram.ml: Bytes Bytes_util Calib Clock Energy Memmap Printf Sentry_util
