lib/experiments/exp_table2.ml: Array Bytes Bytes_util Cold_boot Dram Hashtbl Iram List Machine Memdump Printf Sentry_attacks Sentry_soc Sentry_util Stats Table Units
