(** The device-lock path (§2, §7).

    When the screen locks, Sentry:
    + waits for the zeroing thread to scrub freed pages (so no
      sensitive plaintext lingers in de-allocated frames);
    + walks the page tables of every sensitive process and encrypts
      each present page in place, honouring the shared-page policy;
    + clears every young bit so post-unlock accesses trap;
    + parks non-background sensitive processes on the un-schedulable
      queue;
    + flushes the L2 (masked) so no plaintext survives in unlocked
      cache ways. *)

open Sentry_soc
open Sentry_kernel

type stats = {
  pages_encrypted : int;
  bytes_encrypted : int;
  pages_skipped_shared : int;
  freed_pages_zeroed : int;
  elapsed_ns : float;
  energy_j : float;
}

let encrypt_process ?journal pc ~all_procs proc =
  let pid = proc.Process.pid in
  let aspace = proc.Process.aspace in
  let pages = ref 0 and skipped = ref 0 in
  List.iter
    (fun region ->
      if Share_policy.should_encrypt ~all_procs region then
        List.iter
          (fun (vpn, pte) ->
            if pte.Page_table.present && not pte.Page_table.encrypted then begin
              (* ordering is fail-secure and idempotent: ciphertext
                 lands in memory, then — inside the same crash unit,
                 before the page-boundary fault hook — the PTE flags
                 and the journal records.  A crash mid-transform
                 leaves the page cleartext and unflagged (recovery
                 re-encrypts it); a crash at the page boundary leaves
                 it flagged (recovery skips it).  Neither gap ever
                 leaves cleartext believed encrypted, and no page is
                 ever encrypted twice. *)
              Page_crypt.encrypt_frame pc ~pid ~vpn ~frame:pte.Page_table.frame
                ~commit:(fun () ->
                  pte.Page_table.encrypted <- true;
                  incr pages;
                  Option.iter (fun j -> Lock_journal.record j ~pid) journal)
            end;
            pte.Page_table.young <- false)
          (Address_space.region_ptes aspace region)
      else skipped := !skipped + region.Address_space.npages)
    (Address_space.regions aspace);
  (!pages, !skipped)

let finish_lock ?journal (system : System.t) ~sensitive ~background =
  List.iter
    (fun proc ->
      (* the Locked_out guard makes parking idempotent for the
         recovery re-run (make_unschedulable would double-push) *)
      if (not (background proc)) && proc.Process.state <> Process.Locked_out then
        Sched.make_unschedulable system.System.sched proc)
    sensitive;
  Option.iter Lock_journal.commit journal;
  (* no plaintext may survive in unlocked cache ways *)
  Pl310.flush_masked (Machine.l2 system.System.machine)

(** [run_per_page pc system ~sensitive ~background] executes the full
    lock sequence over the sensitive process set, one page at a time
    (the reference pipeline the batched [run] is differentially tested
    against).  With [?journal], walk progress is journaled per page
    and the pass committed at the end, making an interrupted lock
    recoverable ([Sentry.recover]).  The walk itself is idempotent
    (keyed off PTE [encrypted] bits), so recovery simply re-runs it. *)
let run_per_page ?journal pc (system : System.t) ~sensitive ~background =
  let machine = system.System.machine in
  let clock = Machine.clock machine in
  let start = Clock.now clock in
  let energy0 = Energy.category (Machine.energy machine) "aes" in
  (* freed-page barrier *)
  let zeroed = Zerod.drain system.System.zerod in
  let pages = ref 0 and skipped = ref 0 in
  Option.iter
    (fun j ->
      let pid = match sensitive with p :: _ -> p.Process.pid | [] -> 0 in
      Lock_journal.begin_pass j Lock_journal.Lock_pass ~pid)
    journal;
  List.iter
    (fun proc ->
      let p, s = encrypt_process ?journal pc ~all_procs:system.System.procs proc in
      pages := !pages + p;
      skipped := !skipped + s)
    sensitive;
  finish_lock ?journal system ~sensitive ~background;
  {
    pages_encrypted = !pages;
    bytes_encrypted = !pages * Page.size;
    pages_skipped_shared = !skipped;
    freed_pages_zeroed = zeroed;
    elapsed_ns = Clock.elapsed clock ~since:start;
    energy_j = Energy.category (Machine.energy machine) "aes" -. energy0;
  }

(** [run pc system ~sensitive ~background] — the batched lock driver
    (the default pipeline).  One pass over the page tables gathers
    every (pid, vpn, frame) triple to encrypt (clearing young bits as
    it goes), the work list is sorted by frame so the sweep walks DRAM
    and the physically-indexed L2 monotonically, and the whole batch
    goes through [Page_crypt.encrypt_batch] — one staging buffer, one
    cached cipher schedule, the run-granule memory path.  Each page's
    simulated op sequence and fail-secure ordering (ciphertext, then
    PTE flag, then journal) are exactly [run_per_page]'s; journal
    records are coalesced per [Lock_journal.coalesce] pages, an
    under-count recovery tolerates by design. *)
let run_batch_with ~encrypt_batch ?journal pc (system : System.t) ~sensitive ~background =
  let machine = system.System.machine in
  let clock = Machine.clock machine in
  let start = Clock.now clock in
  let energy0 = Energy.category (Machine.energy machine) "aes" in
  (* freed-page barrier *)
  let zeroed = Zerod.drain system.System.zerod in
  let skipped = ref 0 in
  Option.iter
    (fun j ->
      let pid = match sensitive with p :: _ -> p.Process.pid | [] -> 0 in
      Lock_journal.begin_pass j Lock_journal.Lock_pass ~pid)
    journal;
  (* gather: same per-PTE walk effects as [encrypt_process], with the
     transforms deferred to the batch *)
  let work = ref [] in
  List.iter
    (fun proc ->
      let pid = proc.Process.pid in
      let aspace = proc.Process.aspace in
      List.iter
        (fun region ->
          if Share_policy.should_encrypt ~all_procs:system.System.procs region then
            List.iter
              (fun (vpn, pte) ->
                if pte.Page_table.present && not pte.Page_table.encrypted then
                  work := (pid, vpn, pte) :: !work;
                pte.Page_table.young <- false)
              (Address_space.region_ptes aspace region)
          else skipped := !skipped + region.Address_space.npages)
        (Address_space.regions aspace))
    sensitive;
  let work = Array.of_list (List.rev !work) in
  (* stable, so layouts already walked in frame order (the common
     case) keep their walk order exactly *)
  Array.stable_sort
    (fun (_, _, a) (_, _, b) -> compare a.Page_table.frame b.Page_table.frame)
    work;
  let items =
    Array.map (fun (pid, vpn, pte) -> { Page_crypt.pid; vpn; frame = pte.Page_table.frame }) work
  in
  let pending = ref 0 and pending_pid = ref 0 in
  let flush j =
    if !pending > 0 then begin
      Lock_journal.record_batch j ~pid:!pending_pid ~pages:!pending;
      pending := 0
    end
  in
  encrypt_batch pc items ~complete:(fun i ->
      let pid, _, pte = work.(i) in
      (* fail-secure and idempotent: ciphertext already in memory,
         now the PTE flag, then the (coalesced) journal — all before
         the page-boundary fault hook, as in [encrypt_frame] *)
      pte.Page_table.encrypted <- true;
      match journal with
      | Some j ->
          pending_pid := pid;
          incr pending;
          if !pending >= Lock_journal.coalesce then flush j
      | None -> ());
  Option.iter flush journal;
  finish_lock ?journal system ~sensitive ~background;
  {
    pages_encrypted = Array.length work;
    bytes_encrypted = Array.length work * Page.size;
    pages_skipped_shared = !skipped;
    freed_pages_zeroed = zeroed;
    elapsed_ns = Clock.elapsed clock ~since:start;
    energy_j = Energy.category (Machine.energy machine) "aes" -. energy0;
  }

let run ?journal pc system ~sensitive ~background =
  run_batch_with ~encrypt_batch:Page_crypt.encrypt_batch ?journal pc system ~sensitive
    ~background

(** [run_offload] — the batched driver pipelining the frame-sorted run
    into the MemShield-style command queue ([Offload] backend): same
    gather/sort/commit machinery, crypto time/energy accounted by the
    engine, one completion poll per run. *)
let run_offload ?journal pc system ~sensitive ~background =
  run_batch_with ~encrypt_batch:Page_crypt.encrypt_batch_offload ?journal pc system ~sensitive
    ~background

(** [run_no_access] — the MProtect-inspired lock walk ([No_access]
    backend): revoke each sensitive page's mapping instead of
    encrypting it.  No bytes move — the frame keeps its {e cleartext}
    contents, which is exactly the attack surface the Table-3 checkers
    must flag (cold boot and DMA read secrets out of locked DRAM).
    Each page still journals and fires the [page_encrypted] boundary
    hook so crash plans and recovery replay work unchanged; the walk
    is idempotent keyed off the [no_access] bit. *)
let run_no_access ?journal pc (system : System.t) ~sensitive ~background =
  ignore pc;
  let machine = system.System.machine in
  let clock = Machine.clock machine in
  let start = Clock.now clock in
  let energy0 = Energy.category (Machine.energy machine) "aes" in
  (* freed-page barrier: freed frames are not mapped at all, so the
     zero scrub matters even more here — it is the only thing standing
     between a de-allocated cleartext frame and a dump *)
  let zeroed = Zerod.drain system.System.zerod in
  let pages = ref 0 and skipped = ref 0 in
  Option.iter
    (fun j ->
      let pid = match sensitive with p :: _ -> p.Process.pid | [] -> 0 in
      Lock_journal.begin_pass j Lock_journal.Lock_pass ~pid)
    journal;
  List.iter
    (fun proc ->
      let pid = proc.Process.pid in
      let aspace = proc.Process.aspace in
      List.iter
        (fun region ->
          if Share_policy.should_encrypt ~all_procs:system.System.procs region then
            List.iter
              (fun (_vpn, pte) ->
                if pte.Page_table.present && not pte.Page_table.no_access then begin
                  (* permission write + single-entry TLB shootdown:
                     the whole per-page cost of this backend *)
                  pte.Page_table.no_access <- true;
                  incr pages;
                  Clock.advance clock Calib.pte_protect_ns;
                  Option.iter (fun j -> Lock_journal.record j ~pid) journal;
                  Sentry_faults.Injector.fire Sentry_faults.Injector.Points.page_encrypted
                end;
                pte.Page_table.young <- false)
              (Address_space.region_ptes aspace region)
          else skipped := !skipped + region.Address_space.npages)
        (Address_space.regions aspace))
    sensitive;
  finish_lock ?journal system ~sensitive ~background;
  {
    pages_encrypted = !pages;
    bytes_encrypted = 0;
    pages_skipped_shared = !skipped;
    freed_pages_zeroed = zeroed;
    elapsed_ns = Clock.elapsed clock ~since:start;
    energy_j = Energy.category (Machine.energy machine) "aes" -. energy0;
  }
