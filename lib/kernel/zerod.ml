(** The freed-page zeroing kernel thread.

    Linux zeroes freed pages eventually, with no deadline; a sensitive
    application's freed pages can therefore linger in DRAM with their
    plaintext intact.  Sentry's lock path waits for this thread to
    drain before declaring the device locked (§7, Securing Freed
    Pages).  The paper measured the cost as negligible: 4.014 GB/s at
    2.8 uJ/MB. *)

open Sentry_soc

type t = {
  machine : Machine.t;
  frames : Frame_alloc.t;
  mutable pages_zeroed : int;
  mutable enabled : bool;
}

let create machine ~frames = { machine; frames; pages_zeroed = 0; enabled = true }

(** Fault-injection knob: a disabled zerod lets [drain] return without
    scrubbing anything — the stock-Linux hazard Sentry's lock barrier
    exists to close. *)
let set_enabled t enabled = t.enabled <- enabled

let enabled t = t.enabled

let zero_page t frame =
  (* The store stream's cost is the calibrated rate below; write_raw
     avoids double-charging per-line bus time on top of it. *)
  Machine.write_raw t.machine frame (Bytes.make Page.size '\000');
  let page_s = float_of_int Page.size /. Calib.zeroing_bytes_per_s in
  Clock.advance (Machine.clock t.machine) (page_s *. Sentry_util.Units.s);
  Energy.charge (Machine.energy t.machine) ~category:"zerod"
    (Sentry_util.Units.bytes_to_mb Page.size *. Calib.zeroing_j_per_mb);
  t.pages_zeroed <- t.pages_zeroed + 1

(** [drain t] zeroes every pending dirty frame; returns how many.
    A no-op returning 0 while disabled. *)
let drain t =
  if not t.enabled then 0
  else begin
    let start_ns = Clock.now (Machine.clock t.machine) in
    let dirty = Frame_alloc.take_dirty t.frames in
    List.iter (zero_page t) dirty;
    Frame_alloc.give_clean t.frames dirty;
    let n = List.length dirty in
    if Sentry_obs.Trace.on () && n > 0 then
      Sentry_obs.Trace.span ~cat:Sentry_obs.Event.Zerod ~subsystem:"kernel.zerod" ~start_ns
        ~end_ns:(Clock.now (Machine.clock t.machine))
        ~args:[ ("pages", Sentry_obs.Event.Int n) ]
        "drain";
    n
  end

let pages_zeroed t = t.pages_zeroed
