(** First-fit allocator over the usable iRAM — the 192 KB above the
    firmware-reserved first 64 KB (§4.5). *)

open Sentry_soc

type t

val create : Machine.t -> t

(** General constructor over an arbitrary on-SoC range (used for the
    §10 pinned memory). *)
val create_range : base:int -> limit:int -> t

(** Bytes under management (iRAM size minus the firmware area). *)
val usable_bytes : t -> int

val free_bytes : t -> int
val allocated_bytes : t -> int

(** [alloc t ~bytes] — 8-byte-aligned first fit; [None] when iRAM is
    exhausted.  Never returns an address inside the firmware area. *)
val alloc : t -> bytes:int -> int option

(** Return a block (coalescing adjacent free space).
    @raise Invalid_argument if [addr] is not an allocated block. *)
val free : t -> int -> unit

(** Is [addr] inside the allocator's range? *)
val in_range : t -> int -> bool

(** The free list as [(addr, size)] pairs, in list order (sorted by
    address and fully coalesced — the property the tests pin down). *)
val free_blocks : t -> (int * int) list
