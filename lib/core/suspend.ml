(** Secure On Suspend (§7): tie Sentry's encrypt-on-lock to the
    platform's suspend-to-RAM cycle.

    Phones suspend to DRAM (ACPI S3-style) after brief inactivity or a
    power-button press; DRAM self-refreshes while everything else
    powers down — exactly the state cold-boot attacks target.  This
    module runs the lock path on every suspend and tracks the wake
    reasons the paper lists: user interaction (home/camera/power
    buttons), hardware events such as an incoming call, and periodic
    timers.

    Waking does {e not} unlock: the device resumes PIN-locked, and
    only background-enabled sensitive apps may compute (over the
    encrypted-DRAM pager) until the PIN is entered. *)

open Sentry_util
open Sentry_soc

type wake_reason = User_interaction | Incoming_call | Timer_alarm

let wake_reason_name = function
  | User_interaction -> "user interaction"
  | Incoming_call -> "incoming call"
  | Timer_alarm -> "timer alarm"

type t = {
  sentry : Sentry.t;
  mutable suspended : bool;
  mutable suspend_count : int;
  mutable wake_counts : (wake_reason * int) list;
  mutable last_suspend_stats : Encrypt_on_lock.stats option;
}

let last_suspend_stats t = t.last_suspend_stats

let create sentry =
  { sentry; suspended = false; suspend_count = 0; wake_counts = []; last_suspend_stats = None }

let suspended t = t.suspended

exception Already_suspended
exception Not_suspended

(** [suspend t] — screen off, encrypt-on-lock (unless the device is
    already locked from an earlier cycle), then power-collapse: the
    CPU stops (simulated time jumps at wake).  Returns the lock-path
    stats when an encryption pass actually ran. *)
let suspend t =
  if t.suspended then raise Already_suspended;
  let stats = if Sentry.is_locked t.sentry then None else Some (Sentry.lock t.sentry) in
  t.suspended <- true;
  t.suspend_count <- t.suspend_count + 1;
  (match stats with Some s -> t.last_suspend_stats <- Some s | None -> ());
  stats

let bump_wake t reason =
  let n = try List.assoc reason t.wake_counts with Not_found -> 0 in
  t.wake_counts <- (reason, n + 1) :: List.remove_assoc reason t.wake_counts

(** [wake t ~reason ~slept_s] — resume execution after [slept_s]
    seconds of sleep.  The device stays PIN-locked; sensitive state
    stays encrypted (or confined to locked cache for background
    apps). *)
let wake t ~reason ~slept_s =
  if not t.suspended then raise Not_suspended;
  let machine = System.machine (Sentry.system t.sentry) in
  Clock.advance (Machine.clock machine) (slept_s *. Units.s);
  t.suspended <- false;
  bump_wake t reason

(** [wake_and_unlock t ~pin ~slept_s] — the user-interaction path:
    wake, then PIN-unlock. *)
let wake_and_unlock t ~pin ~slept_s =
  wake t ~reason:User_interaction ~slept_s;
  Sentry.unlock t.sentry ~pin

(** A timer-driven background service cycle: wake on alarm, run [work]
    (e.g. a mail poll over the encrypted-DRAM pager), suspend again.
    The device never leaves the locked state: re-suspension goes
    through [suspend] — which is a pure state-machine step here, since
    the device is still Locked and no second encrypt pass runs — and
    happens even when [work] raises, so an aborted service cycle can
    never strand the device awake with DRAM exposed. *)
let background_service_cycle t ~slept_s work =
  wake t ~reason:Timer_alarm ~slept_s;
  Fun.protect
    ~finally:(fun () -> if not t.suspended then ignore (suspend t))
    work

let counts t = (t.suspend_count, t.wake_counts)
