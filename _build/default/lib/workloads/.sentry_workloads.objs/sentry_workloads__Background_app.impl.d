lib/workloads/background_app.ml: Address_space Clock Machine Page Page_table Prng Process Sentry_core Sentry_kernel Sentry_soc Sentry_util System Units Vm
