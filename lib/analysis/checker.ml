(** The rule-engine vocabulary of the secret-flow verifier.

    A checker is a pluggable invariant over the simulated machine: it
    looks at taint shadows, hardware registers and kernel state and
    reports findings.  Checkers are driven by {e events} — lock-state
    transitions, bus transactions, cache evictions, DMA reads, or an
    explicit on-demand sweep — delivered by [Engine].

    The module-per-rule shape ([name] / [check] / [is_problematic] /
    [to_string], packed as a first-class module) keeps each invariant
    self-contained and lets callers register any subset. *)

open Sentry_soc
open Sentry_core

type event =
  | Transition of { old_state : Lock_state.state; new_state : Lock_state.state }
      (** the screen-lock state machine moved *)
  | Bus_txn of Bus.transaction  (** something crossed the external bus *)
  | Eviction of { way : int; addr : int; locked : bool }
      (** the L2 wrote a dirty line back to DRAM *)
  | Dma_read of { addr : int; len : int; taint : Taint.level }
      (** a device-initiated read completed *)
  | On_demand  (** explicit sweep ([Engine.check_now]) *)

let event_name = function
  | Transition _ -> "transition"
  | Bus_txn _ -> "bus-txn"
  | Eviction _ -> "eviction"
  | Dma_read _ -> "dma-read"
  | On_demand -> "on-demand"

(** One invariant.  [check] inspects the machine behind [Sentry.t] for
    [event] and returns findings; [is_problematic] selects the ones
    that are violations (a checker may also return informational
    findings); [to_string] renders a finding for reports. *)
module type CHECKER = sig
  type t

  val name : string
  val check : Sentry.t -> event -> t list
  val is_problematic : t -> bool
  val to_string : t -> string
end

type packed = Packed : (module CHECKER with type t = 'a) -> packed

let packed_name (Packed (module C)) = C.name

type violation = { checker : string; message : string; time_ns : float }

let pp_violation ppf v =
  Fmt.pf ppf "[%s] %s (t=%a)" v.checker v.message Sentry_util.Units.pp_time v.time_ns

let violation_to_string v = Fmt.str "%a" pp_violation v

(** Evaluate one packed checker against [event]; problematic findings
    become violations stamped with the current simulated time. *)
let run_packed sentry event (Packed (module C)) =
  let now = Machine.now (System.machine (Sentry.system sentry)) in
  C.check sentry event
  |> List.filter C.is_problematic
  |> List.map (fun f -> { checker = C.name; message = C.to_string f; time_ns = now })
