(** Cold-boot attacks (§3.1), in the three variants of the Table 2
    experiment.

    The attacker forces a reset, boots code of their choosing (a
    malicious OS, the flasher, or a dumper device) and images whatever
    the memories still hold.  What survives is governed by the
    machine's remanence model; what the attacker then does with the
    image is [Key_finder] / pattern search. *)

open Sentry_soc

type variant = Os_reboot | Device_reflash | Two_second_reset

let variant_name = function
  | Os_reboot -> "OS reboot (no power loss)"
  | Device_reflash -> "device reflash (power loss)"
  | Two_second_reset -> "2 second reset (power loss)"

let reboot_of_variant = function
  | Os_reboot -> Machine.Warm
  | Device_reflash -> Machine.Reflash
  | Two_second_reset -> Machine.Hard_reset 2.0

(** [mount machine variant] — force the reset, then image DRAM and
    iRAM.  Destructive: the machine really reboots. *)
let mount machine variant =
  Machine.reboot machine (reboot_of_variant variant);
  let dram = Machine.dram machine in
  let iram = Machine.iram machine in
  let dram_dump =
    Memdump.of_bytes ~label:"DRAM" ~base:(Dram.region dram).Memmap.base (Dram.snapshot dram)
  in
  let iram_dump =
    Memdump.of_bytes ~label:"iRAM" ~base:(Iram.region iram).Memmap.base (Iram.snapshot iram)
  in
  (dram_dump, iram_dump)

(** Full attack: image memory and scan for AES key schedules. *)
let recover_keys machine variant =
  let dram_dump, iram_dump = mount machine variant in
  Key_finder.keys dram_dump @ Key_finder.keys iram_dump

(** [succeeds machine variant ~secret] — can the attacker find
    [secret] anywhere after the reset?  Matching tolerates ~15%
    decayed bytes, as real cold-boot tooling error-corrects. *)
let succeeds machine variant ~secret =
  let dram_dump, iram_dump = mount machine variant in
  Memdump.contains_fuzzy dram_dump secret ~min_match:0.85
  || Memdump.contains_fuzzy iram_dump secret ~min_match:0.85
