(** Quickstart: protect an app with Sentry, lock the device, mount a
    cold-boot attack, unlock.

    Run with: [dune exec examples/quickstart.exe] *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core

let () =
  (* 1. Boot a Tegra 3-class platform and install Sentry. *)
  let system = System.boot `Tegra3 ~seed:2026 in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Tegra3) in

  (* 2. Launch an app holding a secret. *)
  let app = System.spawn system ~name:"notes" ~bytes:(128 * Units.kib) in
  let region = List.hd (Address_space.regions app.Process.aspace) in
  let secret = Bytes.of_string "my 2FA seed: 42!" in
  System.fill_region system app region secret;
  Pl310.flush_masked (Machine.l2 machine) (* time passes; data reaches DRAM *);

  (* 3. Mark it sensitive and lock the screen. *)
  Sentry.mark_sensitive sentry app;
  let stats = Sentry.lock sentry in
  Printf.printf "locked: %d pages encrypted, %.1f ms, %.2f mJ\n"
    stats.Encrypt_on_lock.pages_encrypted
    (stats.Encrypt_on_lock.elapsed_ns /. 1e6)
    (stats.Encrypt_on_lock.energy_j *. 1e3);

  (* 4. The phone is stolen: the thief taps RESET and boots a memory
     dumper (a FROST-style cold boot attack). *)
  let recovered =
    Sentry_attacks.Cold_boot.succeeds machine Sentry_attacks.Cold_boot.Device_reflash ~secret
  in
  Printf.printf "cold-boot attack recovers the secret: %b\n" recovered;
  assert (not recovered);

  (* 5. Back in the owner's hands (suppose the attack never happened):
     unlock with the PIN and read the data back lazily. *)
  let system = System.boot `Tegra3 ~seed:2027 in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let app = System.spawn system ~name:"notes" ~bytes:(128 * Units.kib) in
  let region = List.hd (Address_space.regions app.Process.aspace) in
  System.fill_region system app region secret;
  Sentry.mark_sensitive sentry app;
  ignore (Sentry.lock sentry);
  (match Sentry.unlock sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> failwith "unlock failed");
  let back = Vm.read system.System.vm app ~vaddr:region.Address_space.vstart ~len:16 in
  Printf.printf "after unlock the app reads: %S\n" (Bytes.to_string back);
  assert (Bytes.equal back secret);
  print_endline "quickstart OK"
