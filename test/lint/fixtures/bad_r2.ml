(* Lint fixture: R2 cross-module assignment to Bad_r1's globals.
   Expected findings: Bad_r1.hits, Bad_r1.cfg (2 × R2). *)

let poke () =
  Bad_r1.hits := 99;
  Bad_r1.cfg.level <- 2
