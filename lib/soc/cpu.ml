(** CPU core state relevant to Sentry: the general-purpose register
    file and the IRQ enable flag.

    Sensitive AES state is loaded into registers during computation.
    If an interrupt fires mid-computation, the context switch spills
    the register file to the kernel stack — in DRAM — leaking key
    material (§6.2).  AES_On_SoC brackets its computation with
    [onsoc_disable_irq]/[onsoc_enable_irq]; the latter zeroes the
    registers before re-enabling interrupts. *)

open Sentry_util

type t = {
  regs : Bytes.t; (* r0-r12 + sp + lr + pc: 16 x 32-bit *)
  clock : Clock.t;
  mutable irqs_enabled : bool;
  mutable irq_disabled_at : float;
  mutable max_irq_window_ns : float;
  mutable reg_taint : Taint.level; (* label of the register file contents *)
  mutable zeroing_enabled : bool; (* fault knob: the onsoc_enable_irq zeroing *)
}

let num_regs = 16
let reg_bytes = num_regs * 4

let create ~clock =
  {
    regs = Bytes.make reg_bytes '\000';
    clock;
    irqs_enabled = true;
    irq_disabled_at = 0.0;
    max_irq_window_ns = 0.0;
    reg_taint = Taint.Public;
    zeroing_enabled = true;
  }

(** Fault-injection knob: with zeroing disabled, [onsoc_enable_irq]
    re-enables interrupts {e without} scrubbing the register file —
    the §6.2 leak the macro exists to prevent. *)
let set_zeroing_enabled t v = t.zeroing_enabled <- v

let irqs_enabled t = t.irqs_enabled

(** Load sensitive working state into the register file (models the
    compiler keeping AES round state in registers).  [taint] labels
    the contents; the register file carries one joint label. *)
let load_regs t ?(taint = Taint.Public) b =
  let n = min (Bytes.length b) reg_bytes in
  Bytes.blit b 0 t.regs 0 n;
  t.reg_taint <- Taint.join t.reg_taint taint

let regs_snapshot t = Bytes.copy t.regs
let reg_taint t = t.reg_taint

let zero_regs t =
  Bytes_util.zero t.regs;
  t.reg_taint <- Taint.Public

(** Plain IRQ disable (no zeroing) — what generic kernel code does. *)
let disable_irqs t =
  if t.irqs_enabled then begin
    t.irqs_enabled <- false;
    t.irq_disabled_at <- Clock.now t.clock
  end

let enable_irqs t =
  if not t.irqs_enabled then begin
    let window = Clock.elapsed t.clock ~since:t.irq_disabled_at in
    if window > t.max_irq_window_ns then t.max_irq_window_ns <- window;
    (* the masked window renders as one span from disable to enable *)
    if Sentry_obs.Trace.on () then
      Sentry_obs.Trace.emit ~ts:t.irq_disabled_at ~cat:Sentry_obs.Event.Irq ~subsystem:"soc.cpu"
        ~phase:(Sentry_obs.Event.Complete window) "irqs-masked";
    t.irqs_enabled <- true
  end

(** The paper's [onsoc_disable_irq()] macro. *)
let onsoc_disable_irq t = disable_irqs t

(** The paper's [onsoc_enable_irq()] macro: zero every general-purpose
    register, then re-enable interrupts, so a subsequent context
    switch has nothing sensitive to spill. *)
let onsoc_enable_irq t =
  if t.zeroing_enabled then zero_regs t;
  enable_irqs t

(** Longest observed interrupts-off window (the paper measures 160 us
    on average on Tegra 3). *)
let max_irq_window_ns t = t.max_irq_window_ns

(** [with_irqs_off t f] — the AES_On_SoC computation bracket. *)
let with_irqs_off t f =
  onsoc_disable_irq t;
  Fun.protect ~finally:(fun () -> onsoc_enable_irq t) f
