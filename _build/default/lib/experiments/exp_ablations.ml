(** Ablation benches for the design choices DESIGN.md calls out:

    + {b locked-cache budget} for background paging (extends the
      Figs 6-8 two-point comparison to a sweep);
    + {b lazy vs eager} unlock decryption (the §7 design choice);
    + {b table-based vs table-free AES} (what hiding the access
      pattern would cost without on-SoC storage);
    + {b IRQ batch size} vs the interrupts-off window (the §6.2
      latency/safety trade: bigger batches amortise the bracket but
      hold interrupts longer than the paper's 160 us). *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core
open Sentry_workloads

(* ------------------- background budget sweep ---------------------- *)

let budget_sweep () =
  let budgets = [ 128; 256; 384; 512 ] in
  let seed = 0xab1 in
  let base =
    let system = System.boot `Tegra3 ~seed in
    let proc =
      System.spawn system ~name:"alpine"
        ~bytes:(Background_app.alpine.Background_app.working_set_kb * Units.kib)
    in
    System.fill_region system proc
      (List.hd (Address_space.regions proc.Process.aspace))
      (Bytes.of_string "ablation");
    (Background_app.run system proc Background_app.alpine ~seed).Background_app.kernel_time_ns
  in
  let rows =
    List.map
      (fun kb ->
        let system = System.boot `Tegra3 ~seed in
        let config =
          { (Config.default `Tegra3) with Config.background_budget_bytes = kb * Units.kib }
        in
        let sentry = Sentry.install system config in
        let proc =
          System.spawn system ~name:"alpine"
            ~bytes:(Background_app.alpine.Background_app.working_set_kb * Units.kib)
        in
        System.fill_region system proc
          (List.hd (Address_space.regions proc.Process.aspace))
          (Bytes.of_string "ablation");
        Sentry.mark_sensitive sentry proc;
        Sentry.enable_background sentry proc;
        ignore (Sentry.lock sentry);
        let r = Background_app.run system proc Background_app.alpine ~seed in
        let page_ins, _ =
          match Sentry.background_engine sentry with
          | Some bg -> Background.stats bg
          | None -> (0, 0)
        in
        [
          Printf.sprintf "%d KB" kb;
          Printf.sprintf "%.3f s" (r.Background_app.kernel_time_ns /. Units.s);
          Printf.sprintf "%.2fx" (r.Background_app.kernel_time_ns /. base);
          string_of_int page_ins;
        ])
      budgets
  in
  Table.make ~title:"Ablation: locked-cache budget vs alpine kernel time"
    ~header:[ "Budget"; "Time in kernel"; "vs no Sentry"; "page-ins" ]
    ~notes:
      [
        Printf.sprintf "No-Sentry baseline: %.3f s." (base /. Units.s);
        "Each extra way costs the rest of the system <1% (Fig 10) but buys";
        "a large cut in background paging overhead.";
      ]
    rows

(* ---------------------- lazy vs eager unlock ---------------------- *)

let lazy_vs_eager () =
  (* The scenario that separates the strategies: the user unlocks,
     glances (no app interaction), and re-locks.  Lazy pays only the
     eager DMA-region decrypt; eager pays the full footprint — twice
     (decrypt, then re-encrypt at lock). *)
  let glance eager =
    let system = System.boot `Nexus4 ~dram_size:(96 * Units.mib) ~seed:0xab2 in
    let machine = System.machine system in
    let sentry = Sentry.install system (Config.default `Nexus4) in
    let app = Sentry_workloads.App.launch system Apps.maps in
    Sentry.mark_sensitive sentry app.App.proc;
    ignore (Sentry.lock sentry);
    let pc = Sentry.page_crypt sentry in
    Page_crypt.reset_counters pc;
    let t0 = Machine.now machine in
    (if eager then ignore (Sentry.unlock_eager sentry ~pin:"1234")
     else ignore (Sentry.unlock sentry ~pin:"1234"));
    let unlock_s = (Machine.now machine -. t0) /. Units.s in
    ignore (Sentry.lock sentry);
    let enc, dec = Page_crypt.counters pc in
    (unlock_s, Units.bytes_to_mb dec, Units.bytes_to_mb enc)
  in
  let lazy_unlock, lazy_dec, lazy_enc = glance false in
  let eager_unlock, eager_dec, eager_enc = glance true in
  Table.make ~title:"Ablation: lazy vs eager unlock decryption (Maps, glance-and-relock)"
    ~header:[ "Strategy"; "Unlock latency"; "MB decrypted"; "MB re-encrypted at lock" ]
    ~notes:
      [
        "Lazy decryption defers the untouched footprint; when the user just";
        "glances and re-locks, the deferred work never happens at all (S7).";
      ]
    [
      [
        "Lazy (Sentry)";
        Printf.sprintf "%.2f s" lazy_unlock;
        Printf.sprintf "%.1f MB" lazy_dec;
        Printf.sprintf "%.1f MB" lazy_enc;
      ];
      [
        "Eager (decrypt everything)";
        Printf.sprintf "%.2f s" eager_unlock;
        Printf.sprintf "%.1f MB" eager_dec;
        Printf.sprintf "%.1f MB" eager_enc;
      ];
    ]

(* -------------------- table-based vs table-free -------------------- *)

let table_free () =
  (* correctness cross-check, then modeled throughput comparison *)
  let key = Bytes.of_string "ablation-key-16b" in
  let k = Sentry_crypto.Aes.expand key in
  let pt = Bytes.of_string "ablation-block!!" in
  let a = Sentry_crypto.Aes.encrypt_block_copy k pt in
  let b = Bytes.create 16 in
  Sentry_crypto.Aes_ct.encrypt_block k pt 0 b 0;
  assert (Bytes.equal a b);
  let table_rate = Calib.aes_tegra_generic_mb_s in
  let free_rate = table_rate /. Calib.aes_tablefree_slowdown in
  Table.make ~title:"Ablation: table-based vs table-free AES (Tegra-class CPU)"
    ~header:[ "Cipher"; "4KB-page rate"; "Access-protected state" ]
    ~notes:
      [
        "Without on-SoC storage the only way to hide table access patterns is";
        "to not have tables; AESSE measured 6-100x for this trade (S9).";
        "Sentry instead keeps the tables on-SoC and pays <1%.";
      ]
    [
      [ "Table-based (generic)"; Printf.sprintf "%.1f MB/s" table_rate; "2600 bytes" ];
      [ "Table-free (Aes_ct)"; Printf.sprintf "%.1f MB/s" free_rate; "0 bytes" ];
      [
        "AES_On_SoC (locked L2)";
        Printf.sprintf "%.1f MB/s" (Calib.aes_tegra_generic_mb_s /. 1.007);
        "2600 bytes, on-SoC";
      ];
    ]

(* -------------------------- IRQ batch size ------------------------ *)

let irq_batch () =
  let window_for_blocks blocks =
    let system = System.boot `Tegra3 ~seed:0xab3 in
    let machine = System.machine system in
    let sentry = Sentry.install system (Config.default `Tegra3) in
    let aes = Sentry.aes sentry in
    let cpu = Machine.cpu machine in
    (* transform one batch worth of data inside a single bracket *)
    let data = Bytes.make (16 * blocks) 'x' in
    ignore (Sentry_crypto.Aes_on_soc.bulk aes ~dir:`Encrypt ~iv:(Bytes.make 16 '\000') data);
    Cpu.max_irq_window_ns cpu
  in
  let rows =
    List.map
      (fun blocks ->
        [
          string_of_int blocks;
          Units.to_string Units.pp_time (window_for_blocks blocks);
        ])
      [ 16; 64; 256; 1024 ]
  in
  Table.make ~title:"Ablation: AES_On_SoC batch size vs interrupts-off window"
    ~header:[ "Blocks per IRQ bracket"; "Max IRQ-off window" ]
    ~notes:
      [
        "The paper holds interrupts ~160 us on average (S6.2); larger batches";
        "amortise the bracket but delay interrupt delivery.";
      ]
    rows

let run () = [ budget_sweep (); lazy_vs_eager (); table_free (); irq_batch () ]
