examples/background_mail.mli:
