(** The Sentry facade: install on a booted system, mark applications
    sensitive, and drive the lock/unlock cycle.

    Usage sketch (see [examples/quickstart.ml]):
    {[
      let system = System.boot `Tegra3 in
      let sentry = Sentry.install system (Config.default `Tegra3) in
      let app = System.spawn system ~name:"mail" ~bytes:(8 * mib) in
      Sentry.mark_sensitive sentry app;
      Sentry.enable_background sentry app;   (* tegra only *)
      let _ = Sentry.lock sentry in          (* memory now ciphertext *)
      ...                                    (* app still runs, on-SoC *)
      match Sentry.unlock sentry ~pin:"1234" with
      | Ok _ -> ...                          (* lazy decrypt from here *)
      | Error _ -> ...
    ]} *)

open Sentry_kernel

type t = {
  system : System.t;
  config : Config.t;
  onsoc : Onsoc.t;
  keys : Key_manager.t;
  aes : Sentry_crypto.Aes_on_soc.t;
  pc : Page_crypt.t;
  lock_state : Lock_state.t;
  background : Background.t option;
  mutable sensitive : Process.t list;
  mutable background_enabled : Process.t list;
  mutable last_lock : Encrypt_on_lock.stats option;
  mutable last_unlock : Decrypt_on_unlock.stats option;
}

let storage_of_config (config : Config.t) =
  match config.Config.storage with
  | Config.Use_iram -> Sentry_crypto.Aes_on_soc.In_iram
  | Config.Use_locked_l2 -> Sentry_crypto.Aes_on_soc.In_locked_l2
  | Config.Use_pinned -> Sentry_crypto.Aes_on_soc.In_pinned

(** [install system config] sets up on-SoC storage, root keys, the
    AES_On_SoC instance (registered with the Crypto API above the
    generic cipher) and, where the platform allows, the background
    paging engine. *)
let install (system : System.t) (config : Config.t) =
  let config =
    match Config.validate config with Ok c -> c | Error msg -> invalid_arg ("Sentry.install: " ^ msg)
  in
  let machine = system.System.machine in
  (* Shadow stores must exist before the first key write is tagged. *)
  if config.Config.track_taint then Sentry_soc.Machine.enable_taint machine;
  (* The recorder timestamps clockless emitters (dm-crypt, the crypto
     registry, this state machine) off the machine clock. *)
  if config.Config.trace then begin
    Sentry_obs.Trace.ensure ();
    Sentry_obs.Trace.set_time_source (fun () ->
        Sentry_soc.Clock.now (Sentry_soc.Machine.clock machine));
    Sentry_obs.Trace.emit ~cat:Sentry_obs.Event.Lock ~subsystem:"core.sentry" "install"
      ~args:
        [
          ("platform", Sentry_obs.Event.Str (Sentry_soc.Machine.config machine).Sentry_soc.Machine.name);
          ("track_taint", Sentry_obs.Event.Bool config.Config.track_taint);
        ]
  end;
  let onsoc = Onsoc.of_config machine config ~arena_base:system.System.arena_base in
  Onsoc.protect_from_dma onsoc machine;
  let keys = Key_manager.create machine onsoc in
  let volatile_key = Key_manager.volatile_key keys in
  let ctx_bytes = Sentry_crypto.Aes_state.total_size Sentry_crypto.Aes_key.Aes_128 in
  let ctx_base = Onsoc.alloc onsoc ~bytes:ctx_bytes in
  let aes =
    Sentry_crypto.Aes_on_soc.create machine ~storage:(storage_of_config config) ~base:ctx_base
      ~key:volatile_key
  in
  Sentry_crypto.Aes_on_soc.register aes system.System.crypto_api;
  Sentry_crypto.Aes_on_soc.register_xts aes system.System.crypto_api;
  let pc = Page_crypt.create machine ~aes ~volatile_key in
  let background =
    match onsoc with
    | Onsoc.Locked_storage locked when config.Config.background_budget_bytes > 0 ->
        (* The configured budget is Sentry's *total* locked-cache
           footprint (what Figs 6-8 call "256KB"/"512KB"), so the
           paging pool is the budget minus what keys and the AES
           context already pinned. *)
        let static_bytes = Locked_cache.used_pages locked * 4096 in
        Some
          (Background.create machine ~pc ~locked
             ~budget_bytes:(max 4096 (config.Config.background_budget_bytes - static_bytes)))
    | Onsoc.Pinned_storage _
      when config.Config.background_budget_bytes > 0
           && (Sentry_soc.Machine.config machine).Sentry_soc.Machine.cache_locking_available ->
        (* S10 platform: keys and the AES context live in pinned
           memory, but the background working set still pages through
           locked cache ways -- the whole budget is available. *)
        let locked =
          Locked_cache.create machine ~arena_base:system.System.arena_base
            ~max_ways:config.Config.max_locked_ways
        in
        Some
          (Background.create machine ~pc ~locked
             ~budget_bytes:config.Config.background_budget_bytes)
    | Onsoc.Locked_storage _ | Onsoc.Iram_storage _ | Onsoc.Pinned_storage _ -> None
  in
  {
    system;
    config;
    onsoc;
    keys;
    aes;
    pc;
    lock_state = Lock_state.create ~pin:config.Config.pin ~max_attempts:config.Config.max_pin_attempts;
    background;
    sensitive = [];
    background_enabled = [];
    last_lock = None;
    last_unlock = None;
  }

let state t = Lock_state.state t.lock_state
let is_locked t = state t = Lock_state.Locked || state t = Lock_state.Deep_locked

(** Mark an application for protection (the systems-settings menu
    extension of §7). *)
let mark_sensitive t proc =
  Process.mark_sensitive proc;
  if not (List.memq proc t.sensitive) then t.sensitive <- proc :: t.sensitive

(** Allow a sensitive app to keep running while locked (requires
    locked-L2 background paging — Tegra 3 only in the paper). *)
let enable_background t proc =
  if t.background = None then
    invalid_arg "Sentry.enable_background: platform has no locked-cache paging";
  if not (List.memq proc t.sensitive) then invalid_arg "Sentry.enable_background: mark it sensitive first";
  if not (List.memq proc t.background_enabled) then
    t.background_enabled <- proc :: t.background_enabled

(** [lock t] — encrypt-on-lock.  Returns the lock-path statistics. *)
let machine_now t = Sentry_soc.Clock.now (Sentry_soc.Machine.clock t.system.System.machine)

let lock t =
  let start_ns = machine_now t in
  Lock_state.begin_lock t.lock_state;
  let stats =
    Encrypt_on_lock.run t.pc t.system ~sensitive:t.sensitive
      ~background:(fun p -> List.memq p t.background_enabled)
  in
  (match t.background with
  | Some bg when t.background_enabled <> [] ->
      Vm.set_fault_handler t.system.System.vm (Background.fault_handler bg)
  | Some _ | None -> Vm.reset_fault_handler t.system.System.vm);
  Lock_state.finish_lock t.lock_state;
  t.last_lock <- Some stats;
  if Sentry_obs.Trace.on () then
    Sentry_obs.Trace.span ~cat:Sentry_obs.Event.Lock ~subsystem:"core.sentry" ~start_ns
      ~end_ns:(machine_now t)
      ~args:
        [
          ("pages_encrypted", Sentry_obs.Event.Int stats.Encrypt_on_lock.pages_encrypted);
          ("freed_pages_zeroed", Sentry_obs.Event.Int stats.Encrypt_on_lock.freed_pages_zeroed);
        ]
      "encrypt-on-lock";
  stats

(** [unlock t ~pin] — PIN check, eager DMA-region decryption, lazy
    handler installation. *)
let unlock t ~pin =
  let start_ns = machine_now t in
  match Lock_state.begin_unlock t.lock_state ~pin with
  | Error e -> Error e
  | Ok () ->
      Option.iter Background.evict_all t.background;
      let stats = Decrypt_on_unlock.run t.pc t.system ~sensitive:t.sensitive in
      Lock_state.finish_unlock t.lock_state;
      t.last_unlock <- Some stats;
      if Sentry_obs.Trace.on () then
        Sentry_obs.Trace.span ~cat:Sentry_obs.Event.Lock ~subsystem:"core.sentry" ~start_ns
          ~end_ns:(machine_now t)
          ~args:
            [
              ("dma_pages_eager", Sentry_obs.Event.Int stats.Decrypt_on_unlock.dma_pages_eager);
            ]
          "decrypt-on-unlock";
      Ok stats

(** Eager-unlock ablation: decrypt everything at unlock time. *)
let unlock_eager t ~pin =
  match Lock_state.begin_unlock t.lock_state ~pin with
  | Error e -> Error e
  | Ok () ->
      Option.iter Background.evict_all t.background;
      let pages = Decrypt_on_unlock.run_eager t.pc t.system ~sensitive:t.sensitive in
      Lock_state.finish_unlock t.lock_state;
      Ok pages

let system t = t.system
let page_crypt t = t.pc
let background_engine t = t.background
let key_manager t = t.keys
let onsoc t = t.onsoc
let aes t = t.aes
let config t = t.config
let last_lock_stats t = t.last_lock
let last_unlock_stats t = t.last_unlock
let lock_state t = t.lock_state
let sensitive_processes t = t.sensitive
