(** The fault-injection engine.

    A {!session} is an explicit handle: a [Plan] plus its PRNG,
    per-point occurrence counters and firing log.  Harnesses create
    one, activate it, drive the workload, and read [fired_of]/
    [occurrences_of] back off the handle — so two sharded machines can
    each own a session once the Domains refactor lands.

    Hook points deep in the memory system ([fire]/[poll]) consult the
    calling domain's {e active} session — one domain-local read, no
    plumbing, nothing allocated while disarmed — which keeps the
    lock-path allocation ceilings intact.  The slot is [Domain.DLS],
    so every tenant shard on a pool worker owns its own session and
    arming one shard never perturbs another.  The module-level
    [arm]/[disarm]/[fired] API is a thin compat layer over handles:
    [arm] is create-and-activate (in the calling domain).

    Active with a [Plan], every [fire]/[poll] arrival at a hook point
    bumps that point's occurrence counter and evaluates the plan's
    triggers:

    - {e interrupting} kinds ([Power_loss], [Reset], [Dma_error])
      raise [Injected] from [fire]; [poll] returns [Dma_error] as a
      value (for result-returning callers like the DMA engine) and
      raises for the globally-fatal kinds;
    - [Bit_flip n] invokes the installed corruption handler (the
      machine-owning harness flips DRAM bits) and execution continues
      — the fault is silent, as in real hardware.

    Every firing is recorded (inspectable via [fired]) and emitted to
    the trace ring under the [Fault] category. *)

open Sentry_util

type record = { point : string; kind : Fault.kind; occurrence : int }

exception Injected of record

type session = {
  plan : Plan.t;
  prng : Prng.t;
  counts : (string, int ref) Hashtbl.t;
  mutable fired : record list; (* newest first *)
  mutable bit_flip_handler : (point:string -> bits:int -> unit) option;
}

let create plan =
  {
    plan;
    prng = Prng.create ~seed:plan.Plan.seed;
    counts = Hashtbl.create 8;
    fired = [];
    bit_flip_handler = None;
  }

let plan_of s = s.plan

(** Firings so far, oldest first. *)
let fired_of s = List.rev s.fired

(** Arrivals seen at [point] in this session. *)
let occurrences_of s point =
  match Hashtbl.find_opt s.counts point with Some c -> !c | None -> 0

(** [set_bit_flip_handler_of s f] — installed by whoever owns the
    machine; receives every [Bit_flip] firing. *)
let set_bit_flip_handler_of s f = s.bit_flip_handler <- Some f

(* ----------------------- the active session ----------------------- *)

(* The active slot is domain-local ([Domain.DLS]): each domain owns
   its own armed session, so a tenant shard running on a pool worker
   activates a per-shard session without racing the main domain's (or
   any sibling shard's).  Freshly spawned domains start disarmed —
   faults inside a shard are an explicit activate, never inherited.
   This retired the R1 lint.allow entry the old [ref] needed. *)
let active_key : session option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get active_key

let activate s = Domain.DLS.set active_key (Some s)
let deactivate () = Domain.DLS.set active_key None

(* ------------------------- compat wrappers ------------------------ *)

let arm plan = activate (create plan)
let disarm () = deactivate ()
let armed () = current () <> None
let plan () = Option.map plan_of (current ())

let set_bit_flip_handler f =
  match current () with
  | Some s -> set_bit_flip_handler_of s f
  | None -> invalid_arg "Injector.set_bit_flip_handler: not armed"

let fired () = match current () with Some s -> fired_of s | None -> []

let occurrences point = match current () with Some s -> occurrences_of s point | None -> 0

(* --------------------------- hook points -------------------------- *)

let trace r =
  if Sentry_obs.Trace.on () then
    Sentry_obs.Trace.emit ~cat:Sentry_obs.Event.Fault ~subsystem:"faults.injector"
      "fault-injected"
      ~args:
        [
          ("point", Sentry_obs.Event.Str r.point);
          ("kind", Sentry_obs.Event.Str (Fault.name r.kind));
          ("occurrence", Sentry_obs.Event.Int r.occurrence);
        ]

let bump s point =
  match Hashtbl.find_opt s.counts point with
  | Some c ->
      incr c;
      !c
  | None ->
      Hashtbl.add s.counts point (ref 1);
      1

let matches s ~n (tr : Plan.trigger) =
  match tr.Plan.at with
  | Plan.Nth k -> n = k
  | Plan.Every k -> k > 0 && n mod k = 0
  | Plan.Prob p -> Prng.flip s.prng ~p

(* Evaluate one arrival: record and apply every matching trigger;
   return the first interrupting fault, if any. *)
let eval s point =
  let n = bump s point in
  List.fold_left
    (fun interrupting (tr : Plan.trigger) ->
      if String.equal tr.Plan.point point && matches s ~n tr then begin
        let r = { point; kind = tr.Plan.kind; occurrence = n } in
        s.fired <- r :: s.fired;
        trace r;
        match tr.Plan.kind with
        | Fault.Bit_flip bits ->
            (match s.bit_flip_handler with Some f -> f ~point ~bits | None -> ());
            interrupting
        | Fault.Power_loss | Fault.Reset | Fault.Dma_error -> (
            match interrupting with Some _ -> interrupting | None -> Some r)
      end
      else interrupting)
    None s.plan.Plan.triggers

(** [fire point] — a hook arrival that cannot report an error value:
    interrupting faults propagate as [Injected]. *)
let fire point =
  match current () with
  | None -> ()
  | Some s -> ( match eval s point with None -> () | Some r -> raise (Injected r))

(** [poll point] — a hook arrival whose caller returns [result]s (the
    DMA engine): a matching [Dma_error] comes back as a value; the
    globally-fatal kinds ([Power_loss], [Reset]) still raise. *)
let poll point =
  match current () with
  | None -> None
  | Some s -> (
      match eval s point with
      | None -> None
      | Some ({ kind = Fault.Dma_error; _ } as r) -> Some r
      | Some r -> raise (Injected r))

(** Canonical hook-point names.  Hooks and plans must agree on these
    strings; keeping them here prevents drift. *)
module Points = struct
  let page_encrypted = "page_crypt.encrypt_frame"
  (* after the ciphertext reached memory, before the PTE flags it *)

  let page_decrypted = "page_crypt.decrypt_frame"
  let frame_transform = "page_crypt.frame_transform" (* mid-call, before write-back *)
  let dm_crypt_sector = "dm_crypt.sector"
  let dma_read = "dma.read"
  let dma_write = "dma.write"
  let machine_write = "machine.write"

  let all =
    [
      page_encrypted;
      page_decrypted;
      frame_transform;
      dm_crypt_sector;
      dma_read;
      dma_write;
      machine_write;
    ]
end
