(** Block cipher modes of operation, generic over a 16-byte block
    transform so the native and instrumented ciphers share them.

    Sentry uses CBC — the Android/Linux default (§6.1). *)

type block_fn = bytes -> int -> bytes -> int -> unit
(** [f src src_off dst dst_off] transforms one 16-byte block. *)

type cipher = { encrypt : block_fn; decrypt : block_fn }

let of_key k = { encrypt = Aes.encrypt_block k; decrypt = Aes.decrypt_block k }

let block = 16

let check_blocks name data =
  if Bytes.length data mod block <> 0 then
    invalid_arg (name ^ ": data not a multiple of the block size")

(* ------------------------------ ECB ------------------------------ *)

let ecb_encrypt c data =
  check_blocks "Mode.ecb_encrypt" data;
  let out = Bytes.create (Bytes.length data) in
  let nblocks = Bytes.length data / block in
  for i = 0 to nblocks - 1 do
    c.encrypt data (block * i) out (block * i)
  done;
  out

let ecb_decrypt c data =
  check_blocks "Mode.ecb_decrypt" data;
  let out = Bytes.create (Bytes.length data) in
  let nblocks = Bytes.length data / block in
  for i = 0 to nblocks - 1 do
    c.decrypt data (block * i) out (block * i)
  done;
  out

(* ------------------------------ CBC ------------------------------ *)

let cbc_encrypt c ~iv data =
  check_blocks "Mode.cbc_encrypt" data;
  if Bytes.length iv <> block then invalid_arg "Mode.cbc_encrypt: bad IV";
  let out = Bytes.create (Bytes.length data) in
  let nblocks = Bytes.length data / block in
  let chain = Bytes.copy iv in
  let tmp = Bytes.create block in
  for i = 0 to nblocks - 1 do
    Bytes.blit data (block * i) tmp 0 block;
    Sentry_util.Bytes_util.xor_into ~src:chain ~dst:tmp;
    c.encrypt tmp 0 out (block * i);
    Bytes.blit out (block * i) chain 0 block
  done;
  out

let cbc_decrypt c ~iv data =
  check_blocks "Mode.cbc_decrypt" data;
  if Bytes.length iv <> block then invalid_arg "Mode.cbc_decrypt: bad IV";
  let out = Bytes.create (Bytes.length data) in
  let nblocks = Bytes.length data / block in
  let chain = Bytes.copy iv in
  let saved = Bytes.create block in
  for i = 0 to nblocks - 1 do
    Bytes.blit data (block * i) saved 0 block;
    c.decrypt data (block * i) out (block * i);
    let slice = Bytes.create block in
    Bytes.blit out (block * i) slice 0 block;
    Sentry_util.Bytes_util.xor_into ~src:chain ~dst:slice;
    Bytes.blit slice 0 out (block * i) block;
    Bytes.blit saved 0 chain 0 block
  done;
  out

(* ------------------------------ CTR ------------------------------ *)

let incr_counter ctr =
  let rec go i =
    if i >= 0 then begin
      let v = (Char.code (Bytes.get ctr i) + 1) land 0xff in
      Bytes.set ctr i (Char.chr v);
      if v = 0 then go (i - 1)
    end
  in
  go (block - 1)

(** CTR encrypt = decrypt; works on any length. *)
let ctr_transform c ~nonce data =
  if Bytes.length nonce <> block then invalid_arg "Mode.ctr_transform: bad nonce";
  let n = Bytes.length data in
  let out = Bytes.create n in
  let ctr = Bytes.copy nonce in
  let keystream = Bytes.create block in
  let off = ref 0 in
  while !off < n do
    c.encrypt ctr 0 keystream 0;
    let chunk = min block (n - !off) in
    for i = 0 to chunk - 1 do
      Bytes.set out (!off + i)
        (Char.chr
           (Char.code (Bytes.get data (!off + i))
           lxor Char.code (Bytes.get keystream i)))
    done;
    incr_counter ctr;
    off := !off + block
  done;
  out

(* ----------------------------- PKCS#7 ---------------------------- *)

let pad_pkcs7 data =
  let n = Bytes.length data in
  let padlen = block - (n mod block) in
  let out = Bytes.create (n + padlen) in
  Bytes.blit data 0 out 0 n;
  Bytes.fill out n padlen (Char.chr padlen);
  out

let unpad_pkcs7 data =
  let n = Bytes.length data in
  if n = 0 || n mod block <> 0 then invalid_arg "Mode.unpad_pkcs7: bad length";
  let padlen = Char.code (Bytes.get data (n - 1)) in
  if padlen = 0 || padlen > block then invalid_arg "Mode.unpad_pkcs7: bad padding";
  for i = n - padlen to n - 1 do
    if Char.code (Bytes.get data i) <> padlen then invalid_arg "Mode.unpad_pkcs7: bad padding"
  done;
  Bytes.sub data 0 (n - padlen)
