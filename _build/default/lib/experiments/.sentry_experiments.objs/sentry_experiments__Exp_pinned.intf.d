lib/experiments/exp_pinned.mli: Sentry_util
