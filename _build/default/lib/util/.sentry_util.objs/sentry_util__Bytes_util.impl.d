lib/util/bytes_util.ml: Bytes Char Option
