lib/util/prng.mli: Bytes
