lib/attacks/verdict.mli: Bytes
