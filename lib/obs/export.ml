(** Exporters: Chrome [trace_event] JSON (Perfetto /
    [chrome://tracing]), a JSONL event dump, and the flat metrics
    report behind [BENCH_sentry.json]. *)

let arg_json = function
  | Event.Int i -> Json_out.Int i
  | Event.Float f -> Json_out.Float f
  | Event.Str s -> Json_out.Str s
  | Event.Bool b -> Json_out.Bool b

let args_json args = Json_out.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)

(* ----------------------- Chrome trace_event ---------------------- *)

(* trace_event timestamps are microseconds. *)
let us ns = ns /. 1000.0

(** One lane (Chrome "thread") per subsystem, in order of first
    appearance; lane names are announced with [thread_name] metadata
    events as the format prescribes. *)
let chrome_trace ?(process_name = "sentry-sim") events =
  let tids = Hashtbl.create 16 in
  let order = ref [] in
  let tid_of subsystem =
    match Hashtbl.find_opt tids subsystem with
    | Some tid -> tid
    | None ->
        let tid = Hashtbl.length tids + 1 in
        Hashtbl.add tids subsystem tid;
        order := (subsystem, tid) :: !order;
        tid
  in
  let event_json (e : Event.t) =
    let common =
      [
        ("name", Json_out.Str e.Event.name);
        ("cat", Json_out.Str (Event.category_name e.Event.cat));
        ("pid", Json_out.Int 1);
        ("tid", Json_out.Int (tid_of e.Event.subsystem));
        ("ts", Json_out.Float (us e.Event.ts_ns));
        ("args", args_json e.Event.args);
      ]
    in
    match e.Event.phase with
    | Event.Instant -> Json_out.Obj (("ph", Json_out.Str "i") :: ("s", Json_out.Str "t") :: common)
    | Event.Complete dur ->
        Json_out.Obj (("ph", Json_out.Str "X") :: ("dur", Json_out.Float (us dur)) :: common)
    | Event.Counter -> Json_out.Obj (("ph", Json_out.Str "C") :: common)
  in
  let body = List.map event_json events in
  let meta =
    Json_out.Obj
      [
        ("name", Json_out.Str "process_name");
        ("ph", Json_out.Str "M");
        ("pid", Json_out.Int 1);
        ("args", Json_out.Obj [ ("name", Json_out.Str process_name) ]);
      ]
    :: List.rev_map
         (fun (subsystem, tid) ->
           Json_out.Obj
             [
               ("name", Json_out.Str "thread_name");
               ("ph", Json_out.Str "M");
               ("pid", Json_out.Int 1);
               ("tid", Json_out.Int tid);
               ("args", Json_out.Obj [ ("name", Json_out.Str subsystem) ]);
             ])
         !order
  in
  Json_out.Obj
    [
      ("traceEvents", Json_out.List (meta @ body));
      ("displayTimeUnit", Json_out.Str "ns");
    ]

let chrome_trace_string ?process_name events =
  Json_out.to_string (chrome_trace ?process_name events)

(* ----------------------------- JSONL ----------------------------- *)

let event_json (e : Event.t) =
  let phase_fields =
    match e.Event.phase with
    | Event.Instant -> [ ("phase", Json_out.Str "instant") ]
    | Event.Complete dur ->
        [ ("phase", Json_out.Str "complete"); ("dur_ns", Json_out.Float dur) ]
    | Event.Counter -> [ ("phase", Json_out.Str "counter") ]
  in
  Json_out.Obj
    ([
       ("ts_ns", Json_out.Float e.Event.ts_ns);
       ("cat", Json_out.Str (Event.category_name e.Event.cat));
       ("subsystem", Json_out.Str e.Event.subsystem);
       ("name", Json_out.Str e.Event.name);
     ]
    @ phase_fields
    @ [ ("args", args_json e.Event.args) ])

(** One JSON object per line. *)
let jsonl events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json_out.add buf (event_json e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* ------------------------- metrics report ------------------------ *)

(** Flat metrics as one [{"key": k, "value": v}] object per line —
    the shape the bench trajectory tooling ingests. *)
let metrics_jsonl pairs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) ->
      Json_out.add buf (Json_out.Obj [ ("key", Json_out.Str k); ("value", Json_out.Float v) ]);
      Buffer.add_char buf '\n')
    pairs;
  Buffer.contents buf

(** Flat metrics as a single JSON object. *)
let metrics_json pairs = Json_out.Obj (List.map (fun (k, v) -> (k, Json_out.Float v)) pairs)

(* ------------------------------ files ---------------------------- *)

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
