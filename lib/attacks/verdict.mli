(** The Table 3 security matrix: a secret placed in each storage
    alternative, each in-scope attack actually mounted against it. *)

type storage = Plain_dram | Iram_storage | Locked_l2_storage

val storage_name : storage -> string

type attack = Cold_boot_attack | Bus_monitoring_attack | Dma_memory_attack

val attack_name : attack -> string

(** The planted secret (shared so callers can report on it). *)
val secret : Bytes.t

(** Fresh machine with the secret placed per [storage]; with
    [track_taint] the planted bytes are labelled [Secret_cleartext] so
    analysis passes can re-derive verdicts from provenance.  Returns
    (system, machine, secret address). *)
val place_secret :
  ?track_taint:bool ->
  seed:int ->
  storage ->
  Sentry_core.System.t * Sentry_soc.Machine.t * int

(** Evaluate one cell on a fresh machine: [true] = the storage held. *)
val safe : storage:storage -> attack:attack -> bool

val storages : storage list
val attacks : attack list

(** The full matrix as (attack, storage, safe) triples. *)
val matrix : unit -> (attack * storage * bool) list
