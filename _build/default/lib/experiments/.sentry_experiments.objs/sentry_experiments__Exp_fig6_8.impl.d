lib/experiments/exp_fig6_8.ml: Background Background_app Bytes Config Hashtbl List Printf Sentry Sentry_core Sentry_kernel Sentry_util Sentry_workloads System Table Units
