(** The Sentry facade: install on a booted system, mark applications
    sensitive, and drive the lock/unlock cycle.

    Usage sketch (see [examples/quickstart.ml]):
    {[
      let system = System.boot `Tegra3 in
      let sentry = Sentry.install system (Config.default `Tegra3) in
      let app = System.spawn system ~name:"mail" ~bytes:(8 * mib) in
      Sentry.mark_sensitive sentry app;
      Sentry.enable_background sentry app;   (* tegra only *)
      let _ = Sentry.lock sentry in          (* memory now ciphertext *)
      ...                                    (* app still runs, on-SoC *)
      match Sentry.unlock sentry ~pin:"1234" with
      | Ok _ -> ...                          (* lazy decrypt from here *)
      | Error _ -> ...
    ]} *)

open Sentry_kernel

type resumed = Resumed_lock | Rolled_back_unlock

(** Which protection backend drives the walks (see [Backend]).
    [Batched] (the default) gathers, frame-sorts and transforms pages
    through the batch engine with coalesced journal records;
    [Per_page] is the page-at-a-time reference pipeline; [Offload]
    pipelines the batched walks into the MemShield-style command
    queue; [No_access] revokes mappings instead of encrypting
    (MProtect-style — DRAM keeps cleartext).  [Batched], [Per_page]
    and [Offload] have bit-identical per-page simulated DRAM/PTE/taint
    observables and differ in journal granularity and time/energy;
    [No_access] diverges by design. *)
type backend = Backend.kind = Batched | Per_page | Offload | No_access

type pipeline = backend
(** Historical alias from when only [Batched]/[Per_page] existed. *)

type recovery_stats = {
  resumed : resumed;
  pages_fixed : int;  (** pages (re-)transformed by the recovery sweep *)
  rekeyed : bool;  (** volatile key was lost and regenerated *)
  journal_entry : Lock_journal.entry option;  (** what the journal said, if it survived *)
  elapsed_ns : float;
}

type t = {
  system : System.t;
  config : Config.t;
  onsoc : Onsoc.t;
  keys : Key_manager.t;
  aes : Sentry_crypto.Aes_on_soc.t;
  pc : Page_crypt.t;
  lock_state : Lock_state.t;
  background : Background.t option;
  journal : Lock_journal.t option;
  (* Host-side check value for the parked volatile key: models the
     kernel's knowledge of whether on-SoC key storage survived a
     reboot (a real port would use a boot counter or key check block).
     Never lives in simulated memory, so it is invisible to the
     modeled attacks. *)
  volatile_key_check : Bytes.t;
  mutable backend : (module Backend.S);
  mutable sensitive : Process.t list;
  mutable background_enabled : Process.t list;
  mutable last_lock : Encrypt_on_lock.stats option;
  mutable last_unlock : Decrypt_on_unlock.stats option;
  mutable last_recovery : recovery_stats option;
}

let storage_of_config (config : Config.t) =
  match config.Config.storage with
  | Config.Use_iram -> Sentry_crypto.Aes_on_soc.In_iram
  | Config.Use_locked_l2 -> Sentry_crypto.Aes_on_soc.In_locked_l2
  | Config.Use_pinned -> Sentry_crypto.Aes_on_soc.In_pinned

(** [install system config] sets up on-SoC storage, root keys, the
    AES_On_SoC instance (registered with the Crypto API above the
    generic cipher) and, where the platform allows, the background
    paging engine. *)
let install (system : System.t) (config : Config.t) =
  let config =
    match Config.validate config with Ok c -> c | Error msg -> invalid_arg ("Sentry.install: " ^ msg)
  in
  let machine = system.System.machine in
  (* Shadow stores must exist before the first key write is tagged. *)
  if config.Config.track_taint then Sentry_soc.Machine.enable_taint machine;
  (* The recorder timestamps clockless emitters (dm-crypt, the crypto
     registry, this state machine) off the machine clock. *)
  if config.Config.trace then begin
    Sentry_obs.Trace.ensure ();
    Sentry_obs.Trace.set_time_source (fun () ->
        Sentry_soc.Clock.now (Sentry_soc.Machine.clock machine));
    Sentry_obs.Trace.emit ~cat:Sentry_obs.Event.Lock ~subsystem:"core.sentry" "install"
      ~args:
        [
          ("platform", Sentry_obs.Event.Str (Sentry_soc.Machine.config machine).Sentry_soc.Machine.name);
          ("track_taint", Sentry_obs.Event.Bool config.Config.track_taint);
        ]
  end;
  let onsoc = Onsoc.of_config machine config ~arena_base:system.System.arena_base in
  Onsoc.protect_from_dma onsoc machine;
  let keys = Key_manager.create machine onsoc in
  let volatile_key = Key_manager.volatile_key keys in
  let ctx_bytes = Sentry_crypto.Aes_state.total_size Sentry_crypto.Aes_key.Aes_128 in
  let ctx_base = Onsoc.alloc onsoc ~bytes:ctx_bytes in
  let aes =
    Sentry_crypto.Aes_on_soc.create machine ~storage:(storage_of_config config) ~base:ctx_base
      ~key:volatile_key
  in
  Sentry_crypto.Aes_on_soc.register aes system.System.crypto_api;
  Sentry_crypto.Aes_on_soc.register_xts aes system.System.crypto_api;
  let pc = Page_crypt.create machine ~aes ~volatile_key in
  let background =
    match onsoc with
    | Onsoc.Locked_storage locked when config.Config.background_budget_bytes > 0 ->
        (* The configured budget is Sentry's *total* locked-cache
           footprint (what Figs 6-8 call "256KB"/"512KB"), so the
           paging pool is the budget minus what keys and the AES
           context already pinned. *)
        let static_bytes = Locked_cache.used_pages locked * 4096 in
        Some
          (Background.create machine ~pc ~locked
             ~budget_bytes:(max 4096 (config.Config.background_budget_bytes - static_bytes)))
    | Onsoc.Pinned_storage _
      when config.Config.background_budget_bytes > 0
           && (Sentry_soc.Machine.config machine).Sentry_soc.Machine.cache_locking_available ->
        (* S10 platform: keys and the AES context live in pinned
           memory, but the background working set still pages through
           locked cache ways -- the whole budget is available. *)
        let locked =
          Locked_cache.create machine ~arena_base:system.System.arena_base
            ~max_ways:config.Config.max_locked_ways
        in
        Some
          (Background.create machine ~pc ~locked
             ~budget_bytes:config.Config.background_budget_bytes)
    | Onsoc.Locked_storage _ | Onsoc.Iram_storage _ | Onsoc.Pinned_storage _ -> None
  in
  let journal =
    if not config.Config.journal then None
    else
      (* The journal lives in iRAM (survives warm reboots; the
         firmware clear wipes it on power loss, which recovery
         tolerates).  On iRAM-storage platforms reuse the key
         allocator so the record cannot overlap the keys; elsewhere
         iRAM is otherwise unused by Sentry, so a fresh allocator over
         it is safe.  Exhaustion is a graceful fallback to the
         journal-less pipeline, not an error. *)
      let alloc =
        match onsoc with
        | Onsoc.Iram_storage a -> a
        | Onsoc.Locked_storage _ | Onsoc.Pinned_storage _ -> Iram_alloc.create machine
      in
      match Iram_alloc.alloc alloc ~bytes:Lock_journal.size_bytes with
      | Some addr -> Some (Lock_journal.create machine ~addr)
      | None -> None
  in
  {
    system;
    config;
    onsoc;
    keys;
    aes;
    pc;
    lock_state = Lock_state.create ~pin:config.Config.pin ~max_attempts:config.Config.max_pin_attempts;
    background;
    journal;
    volatile_key_check = Bytes.copy volatile_key;
    backend = Backend.of_kind Backend.Batched;
    sensitive = [];
    background_enabled = [];
    last_lock = None;
    last_unlock = None;
    last_recovery = None;
  }

let state t = Lock_state.state t.lock_state

let backend t =
  let module B = (val t.backend : Backend.S) in
  B.kind

(** [set_backend t b] — switch the protection backend.  Only legal
    while [Unlocked]: each backend fixes the journal granularity and
    walk driver [recover] assumes, so a switch between lock and unlock
    (or mid-recovery) would replay an interrupted walk under the wrong
    engine.  Switching to the already-installed backend is a no-op in
    any state.
    @raise Invalid_argument outside [Unlocked]. *)
let set_backend t b =
  if b <> backend t then begin
    if Lock_state.state t.lock_state <> Lock_state.Unlocked then
      invalid_arg
        (Printf.sprintf "Sentry.set_backend: cannot switch to %s while %s"
           (Backend.kind_name b)
           (Lock_state.state_name (Lock_state.state t.lock_state)));
    t.backend <- Backend.of_kind b
  end

let pipeline = backend
let set_pipeline = set_backend

(* Backend-dispatched walk drivers. *)
let lock_walk t =
  let module B = (val t.backend : Backend.S) in
  B.lock_walk ?journal:t.journal t.pc t.system ~sensitive:t.sensitive
    ~background:(fun p -> List.memq p t.background_enabled)

let unlock_walk t =
  let module B = (val t.backend : Backend.S) in
  B.unlock_walk ?journal:t.journal t.pc t.system ~sensitive:t.sensitive
let is_locked t = state t = Lock_state.Locked || state t = Lock_state.Deep_locked

(** Mark an application for protection (the systems-settings menu
    extension of §7). *)
let mark_sensitive t proc =
  Process.mark_sensitive proc;
  if not (List.memq proc t.sensitive) then t.sensitive <- proc :: t.sensitive

(** Allow a sensitive app to keep running while locked (requires
    locked-L2 background paging — Tegra 3 only in the paper). *)
let enable_background t proc =
  if t.background = None then
    invalid_arg "Sentry.enable_background: platform has no locked-cache paging";
  if not (List.memq proc t.sensitive) then invalid_arg "Sentry.enable_background: mark it sensitive first";
  if not (List.memq proc t.background_enabled) then
    t.background_enabled <- proc :: t.background_enabled

(** [lock t] — encrypt-on-lock.  Returns the lock-path statistics. *)
let machine_now t = Sentry_soc.Clock.now (Sentry_soc.Machine.clock t.system.System.machine)

(** Fault-handler wiring for the locked state: background paging where
    enabled, otherwise faults on encrypted pages are hard stops. *)
let install_locked_fault_handler t =
  match t.background with
  | Some bg when t.background_enabled <> [] ->
      Vm.set_fault_handler t.system.System.vm (Background.fault_handler bg)
  | Some _ | None -> Vm.reset_fault_handler t.system.System.vm

let lock t =
  let start_ns = machine_now t in
  (* Captured once so the enter/exit pair cannot be torn by a recorder
     appearing mid-walk. *)
  let traced = Sentry_obs.Trace.on () in
  if traced then
    Sentry_obs.Trace.enter_span ~ts:start_ns ~cat:Sentry_obs.Event.Lock ~subsystem:"core.sentry"
      "encrypt-on-lock";
  Lock_state.begin_lock t.lock_state;
  let stats = lock_walk t in
  install_locked_fault_handler t;
  Lock_state.finish_lock t.lock_state;
  t.last_lock <- Some stats;
  if traced then
    Sentry_obs.Trace.exit_span ~ts:(machine_now t)
      ~args:
        [
          ("pages_encrypted", Sentry_obs.Event.Int stats.Encrypt_on_lock.pages_encrypted);
          ("freed_pages_zeroed", Sentry_obs.Event.Int stats.Encrypt_on_lock.freed_pages_zeroed);
        ]
      ();
  stats

(** [unlock t ~pin] — PIN check, eager DMA-region decryption, lazy
    handler installation. *)
let unlock t ~pin =
  let start_ns = machine_now t in
  match Lock_state.begin_unlock t.lock_state ~pin with
  | Error e -> Error e
  | Ok () ->
      let traced = Sentry_obs.Trace.on () in
      if traced then
        Sentry_obs.Trace.enter_span ~ts:start_ns ~cat:Sentry_obs.Event.Lock
          ~subsystem:"core.sentry" "decrypt-on-unlock";
      Option.iter Background.evict_all t.background;
      let stats = unlock_walk t in
      Lock_state.finish_unlock t.lock_state;
      t.last_unlock <- Some stats;
      if traced then
        Sentry_obs.Trace.exit_span ~ts:(machine_now t)
          ~args:
            [
              ("dma_pages_eager", Sentry_obs.Event.Int stats.Decrypt_on_unlock.dma_pages_eager);
            ]
          ();
      Ok stats

(** Re-establish key material after a crash, if it was lost.  A warm
    reboot preserves iRAM, so the parked volatile key reads back
    intact and nothing happens.  After power loss (or on locked-L2
    storage, any reboot — the controller reset dropped lockdown) the
    readback mismatches the host-side check value: re-pin the locked
    ways where applicable, regenerate the volatile key in place, and
    re-key the AES context and the page cipher.  Pages encrypted under
    the lost key stay garbage — fail-secure; recovery re-encrypts
    cleartext remnants under the new key. *)
let ensure_key t =
  if Bytes.equal (Key_manager.volatile_key t.keys) t.volatile_key_check then false
  else begin
    (match t.onsoc with
    | Onsoc.Locked_storage locked -> Locked_cache.relock locked
    | Onsoc.Iram_storage _ | Onsoc.Pinned_storage _ -> ());
    let key = Key_manager.regenerate_volatile t.keys in
    Sentry_crypto.Aes_on_soc.set_key t.aes key;
    Page_crypt.rekey t.pc ~volatile_key:key;
    Bytes.blit key 0 t.volatile_key_check 0 (Bytes.length key);
    true
  end

(** [recover t] — the boot/wake-time crash-recovery pass.  [None] when
    the lock state machine is at rest (nothing was interrupted; any
    stale journal record is cleared).  Mid-[Locking], the encryption
    walk is completed (roll-forward); mid-[Unlocking], the
    already-decrypted pages are re-encrypted and the unlock aborted
    (roll-back to [Locked] — the user re-enters the PIN).  Both paths
    are idempotent: the sweep is keyed off PTE [encrypted] bits and
    parking is guarded, so recovering an already-consistent system is
    a no-op walk. *)
let recover t =
  match Lock_state.state t.lock_state with
  | Lock_state.Unlocked | Lock_state.Locked | Lock_state.Deep_locked ->
      (* nothing in flight; drop any stale record (e.g. a crash after
         the walk finished but before commit) *)
      Option.iter
        (fun j -> if Lock_journal.load j <> None then Lock_journal.commit j)
        t.journal;
      None
  | (Lock_state.Locking | Lock_state.Unlocking) as interrupted ->
      let start_ns = machine_now t in
      let traced = Sentry_obs.Trace.on () in
      if traced then
        Sentry_obs.Trace.enter_span ~ts:start_ns ~cat:Sentry_obs.Event.Recovery
          ~subsystem:"core.recovery" "crash-recovery";
      let journal_entry = Option.bind t.journal Lock_journal.load in
      let rekeyed = ensure_key t in
      (* backend-specific crash teardown (e.g. the offload engine's
         command queue does not survive a reset) *)
      let module B = (val t.backend : Backend.S) in
      B.on_recover t.pc;
      (* The sweep is the lock walk itself: every present, unencrypted
         page of a should-encrypt region gets ciphertext — completing
         an interrupted lock and un-doing an interrupted unlock alike.
         A surviving journal record's [pages_done] is a lower bound
         under the batched pipeline (records coalesce per
         [Lock_journal.coalesce] pages) — corroboration either way;
         the sweep is keyed off PTE bits, not the count. *)
      let stats = lock_walk t in
      install_locked_fault_handler t;
      let resumed =
        match interrupted with
        | Lock_state.Locking ->
            Lock_state.finish_lock t.lock_state;
            Resumed_lock
        | _ ->
            Lock_state.abort_unlock t.lock_state;
            Rolled_back_unlock
      in
      let recovery =
        {
          resumed;
          pages_fixed = stats.Encrypt_on_lock.pages_encrypted;
          rekeyed;
          journal_entry;
          elapsed_ns = machine_now t -. start_ns;
        }
      in
      t.last_recovery <- Some recovery;
      if traced then
        Sentry_obs.Trace.exit_span ~ts:(machine_now t)
          ~args:
            [
              ( "resumed",
                Sentry_obs.Event.Str
                  (match resumed with
                  | Resumed_lock -> "lock"
                  | Rolled_back_unlock -> "unlock-rollback") );
              ("pages_fixed", Sentry_obs.Event.Int recovery.pages_fixed);
              ("rekeyed", Sentry_obs.Event.Bool rekeyed);
              ( "journal_survived",
                Sentry_obs.Event.Bool (journal_entry <> None) );
            ]
          ();
      Some recovery

(** Eager-unlock ablation: decrypt everything at unlock time. *)
let unlock_eager t ~pin =
  match Lock_state.begin_unlock t.lock_state ~pin with
  | Error e -> Error e
  | Ok () ->
      Option.iter Background.evict_all t.background;
      let pages =
        let module B = (val t.backend : Backend.S) in
        B.unlock_eager t.pc t.system ~sensitive:t.sensitive
      in
      Lock_state.finish_unlock t.lock_state;
      Ok pages

let system t = t.system
let page_crypt t = t.pc
let background_engine t = t.background
let key_manager t = t.keys
let onsoc t = t.onsoc
let aes t = t.aes
let config t = t.config
let last_lock_stats t = t.last_lock
let last_unlock_stats t = t.last_unlock
let lock_state t = t.lock_state
let sensitive_processes t = t.sensitive
let background_processes t = t.background_enabled
let journal_enabled t = t.journal <> None
let last_recovery_stats t = t.last_recovery
