(** Instrumented AES: the same cipher as [Aes], but every piece of
    working state — input block, key, round keys, round tables,
    S-boxes, Rcon, counters — lives in memory behind an [Accessor]
    and every access goes through it.

    With a [machine] accessor the state traverses the simulated memory
    hierarchy: if the context sits in DRAM, table lookups appear on the
    external bus with key-dependent addresses (the §3.1 side channel);
    if it sits in iRAM or a locked L2 way, nothing leaves the SoC.

    Intermediate round values are held in OCaml locals — the model's
    CPU registers.  Protecting those registers across interrupts is
    the job of [Aes_on_soc]'s IRQ bracket, not of this module.

    Correctness is pinned by tests to byte-equality with [Aes] (which
    itself is pinned to FIPS-197). *)

type t = {
  acc : Accessor.t;
  size : Aes_key.size;
  nr : int;
  (* cached field offsets *)
  off_input : int;
  off_key : int;
  off_round_index : int;
  off_round_keys : int;
  off_te : int;
  off_td : int;
  off_sbox : int;
  off_inv_sbox : int;
  off_rcon : int;
  off_block_index : int;
  off_ivec : int;
  mutable blocks_done : int;
}

let context_size = Aes_state.total_size

(** [init acc ~key] lays the full cipher context out behind [acc]:
    expands the key schedule and writes tables, key and schedule into
    their [Aes_state] slots. *)
let init acc ~key =
  let size = Aes_key.size_of_bytes (Bytes.length key) in
  let layout = Aes_state.layout size in
  let off name = (Aes_state.find layout name).Aes_state.offset in
  let t =
    {
      acc;
      size;
      nr = Aes_key.rounds size;
      off_input = off "input_block";
      off_key = off "key";
      off_round_index = off "round_index";
      off_round_keys = off "round_keys";
      off_te = off "round_table_te";
      off_td = off "round_table_td";
      off_sbox = off "sbox";
      off_inv_sbox = off "inv_sbox";
      off_rcon = off "rcon";
      off_block_index = off "block_index";
      off_ivec = off "cbc_ivec";
      blocks_done = 0;
    }
  in
  acc.Accessor.store t.off_key key;
  let schedule = Aes_key.serialize (Aes_key.expand key) in
  acc.Accessor.store t.off_round_keys schedule;
  acc.Accessor.store t.off_te Aes_tables.te_bytes;
  acc.Accessor.store t.off_td Aes_tables.td_bytes;
  acc.Accessor.store t.off_sbox Aes_tables.sbox_bytes;
  acc.Accessor.store t.off_inv_sbox Aes_tables.inv_sbox_bytes;
  acc.Accessor.store t.off_rcon Aes_tables.rcon_bytes;
  t

(** Erase all secret and access-protected state (the paper's "write
    0xFF in all sensitive data" unlock step). *)
let wipe t =
  let layout = Aes_state.layout t.size in
  List.iter
    (fun f ->
      match f.Aes_state.sensitivity with
      | Aes_state.Secret | Aes_state.Access_protected ->
          t.acc.Accessor.store f.Aes_state.offset (Bytes.make f.Aes_state.size '\xff')
      | Aes_state.Public -> ())
    layout

(* ------------------------- shared helpers ------------------------ *)

let load_state t off16 =
  let b = t.acc.Accessor.load off16 16 in
  Array.init 16 (fun i -> Char.code (Bytes.get b i))

let store_state t off16 s =
  let b = Bytes.create 16 in
  Array.iteri (fun i v -> Bytes.set b i (Char.chr v)) s;
  t.acc.Accessor.store off16 b

let round_key t r = t.acc.Accessor.load (t.off_round_keys + (16 * r)) 16

let add_round_key t s r =
  let rk = round_key t r in
  for i = 0 to 15 do
    s.(i) <- s.(i) lxor Char.code (Bytes.get rk i)
  done

(* Table entry x as a 4-int vector, read through the accessor: the
   address [off + 4x] is the observable side channel. *)
let table_entry t off x =
  let e = t.acc.Accessor.load (off + (4 * x)) 4 in
  [|
    Char.code (Bytes.get e 0); Char.code (Bytes.get e 1);
    Char.code (Bytes.get e 2); Char.code (Bytes.get e 3);
  |]

let sbox_lookup t x = Accessor.load8 t.acc (t.off_sbox + x)
let inv_sbox_lookup t x = Accessor.load8 t.acc (t.off_inv_sbox + x)
let set_round_index t r = Accessor.store8 t.acc t.off_round_index r

let bump_block_index t =
  t.blocks_done <- t.blocks_done + 1;
  Accessor.store8 t.acc t.off_block_index (t.blocks_done land 0xff)

(* ---------------------------- encrypt ---------------------------- *)

(** One-block encryption; byte order is FIPS column-major (byte [i] is
    row [i mod 4], column [i / 4]). *)
let encrypt_block t src src_off dst dst_off =
  t.acc.Accessor.store t.off_input (Bytes.sub src src_off 16);
  let s = load_state t t.off_input in
  add_round_key t s 0;
  let out = Array.make 16 0 in
  for round = 1 to t.nr - 1 do
    set_round_index t round;
    for c = 0 to 3 do
      (* inputs: row r comes from column (c+r) mod 4 (ShiftRows) *)
      let w0 = table_entry t t.off_te s.(4 * c) in
      let w1 = table_entry t t.off_te s.((4 * ((c + 1) land 3)) + 1) in
      let w2 = table_entry t t.off_te s.((4 * ((c + 2) land 3)) + 2) in
      let w3 = table_entry t t.off_te s.((4 * ((c + 3) land 3)) + 3) in
      for j = 0 to 3 do
        out.((4 * c) + j) <-
          w0.(j) lxor w1.((j + 3) land 3) lxor w2.((j + 2) land 3) lxor w3.((j + 1) land 3)
      done
    done;
    Array.blit out 0 s 0 16;
    add_round_key t s round
  done;
  set_round_index t t.nr;
  for c = 0 to 3 do
    for j = 0 to 3 do
      out.((4 * c) + j) <- sbox_lookup t s.((4 * ((c + j) land 3)) + j)
    done
  done;
  Array.blit out 0 s 0 16;
  add_round_key t s t.nr;
  store_state t t.off_input s;
  bump_block_index t;
  Bytes.blit (t.acc.Accessor.load t.off_input 16) 0 dst dst_off 16

(* ---------------------------- decrypt ---------------------------- *)

let inv_shift_sub t s =
  let out = Array.make 16 0 in
  for c = 0 to 3 do
    for j = 0 to 3 do
      (* row j shifted right by j: output column c takes from column
         (c - j) mod 4 *)
      out.((4 * c) + j) <- inv_sbox_lookup t s.((4 * ((c - j + 4) land 3)) + j)
    done
  done;
  Array.blit out 0 s 0 16

let decrypt_block t src src_off dst dst_off =
  t.acc.Accessor.store t.off_input (Bytes.sub src src_off 16);
  let s = load_state t t.off_input in
  add_round_key t s t.nr;
  for round = t.nr - 1 downto 1 do
    set_round_index t round;
    inv_shift_sub t s;
    add_round_key t s round;
    let out = Array.make 16 0 in
    for c = 0 to 3 do
      let w0 = table_entry t t.off_td s.(4 * c) in
      let w1 = table_entry t t.off_td s.((4 * c) + 1) in
      let w2 = table_entry t t.off_td s.((4 * c) + 2) in
      let w3 = table_entry t t.off_td s.((4 * c) + 3) in
      for j = 0 to 3 do
        out.((4 * c) + j) <-
          w0.(j) lxor w1.((j + 3) land 3) lxor w2.((j + 2) land 3) lxor w3.((j + 1) land 3)
      done
    done;
    Array.blit out 0 s 0 16
  done;
  set_round_index t 0;
  inv_shift_sub t s;
  add_round_key t s 0;
  store_state t t.off_input s;
  bump_block_index t;
  Bytes.blit (t.acc.Accessor.load t.off_input 16) 0 dst dst_off 16

(** Expose as a [Mode.cipher] so ECB/CBC/CTR come for free.  The CBC
    chaining vector (public state) is mirrored into the context's
    [cbc_ivec] slot by [set_iv]. *)
let set_iv t iv = t.acc.Accessor.store t.off_ivec iv

let cipher t = Mode.{ encrypt = encrypt_block t; decrypt = decrypt_block t }

(** The permutation linking the order of round-1 Te lookups to state
    byte positions: lookup [j] reads the table entry indexed by state
    byte [round1_lookup_order.(j)] (after the initial AddRoundKey).
    The bus-monitor attack uses this to invert observed addresses into
    key bytes. *)
let round1_lookup_order = [| 0; 5; 10; 15; 4; 9; 14; 3; 8; 13; 2; 7; 12; 1; 6; 11 |]
