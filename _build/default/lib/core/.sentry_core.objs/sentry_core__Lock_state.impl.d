lib/core/lock_state.ml: String
