(** Summary statistics over measurement series (the paper repeats
    every experiment ≥10 times and plots mean ± stddev). *)

type summary = { n : int; mean : float; stddev : float; min : float; max : float }

(** @raise Invalid_argument on an empty series. *)
val summarize : float array -> summary

val repeat : trials:int -> (int -> float) -> summary

(** Nearest-rank percentile, [p] in [0, 100]. *)
val percentile : float -> float array -> float

val mean : float array -> float
val pp_summary : Format.formatter -> summary -> unit

(** measured / base (infinity when base is 0). *)
val overhead : base:float -> measured:float -> float
