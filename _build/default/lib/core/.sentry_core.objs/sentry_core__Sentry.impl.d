lib/core/sentry.ml: Background Config Decrypt_on_unlock Encrypt_on_lock Key_manager List Lock_state Locked_cache Onsoc Option Page_crypt Process Sentry_crypto Sentry_kernel Sentry_soc System Vm
