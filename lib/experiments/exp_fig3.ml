(** Fig 3: runtime overhead while scripted sessions run after unlock
    (on-demand decryption during use). *)

open Sentry_util

let run () =
  let rows =
    List.map
      (fun (m : Exp_apps.metrics) ->
        [
          m.Exp_apps.profile.Sentry_workloads.App.app_name;
          Printf.sprintf "%.1f s" m.Exp_apps.script_elapsed_s;
          Printf.sprintf "%.1f%%" m.Exp_apps.script_overhead_pct;
          Printf.sprintf "%.1f MB" m.Exp_apps.script_mb;
        ])
      (Exp_apps.all ())
  in
  [
    Table.make ~title:"Fig 3: runtime overhead during scripted use"
      ~header:[ "App"; "Script time"; "Overhead"; "MB decrypted" ]
      ~notes:[ "Paper overheads: Contacts 4.3%, Maps 1.2%, Twitter 1.3%, MP3 0.2%." ]
      rows;
  ]
