(** Root keys, resident on-SoC (§7, Bootstrapping).

    The volatile key (memory pages) is generated per boot and written
    only to on-SoC storage; the persistent key (disk) is derived from
    the boot password and the fuse secret inside TrustZone and also
    parked on-SoC.  Host-side copies handed to cipher constructors are
    outside the simulated address space and invisible to the modeled
    attacks — what matters is that no simulated DRAM ever holds them. *)

open Sentry_soc
open Sentry_crypto

type t = {
  machine : Machine.t;
  onsoc : Onsoc.t;
  volatile_addr : int;
  mutable persistent_addr : int option;
}

let key_len = Key_derive.key_len

(** [create machine onsoc] generates and parks the volatile key. *)
let create machine onsoc =
  let volatile_addr = Onsoc.alloc onsoc ~bytes:key_len in
  let key = Key_derive.volatile_key machine in
  Machine.with_taint machine Taint.Secret_cleartext (fun () ->
      Machine.write machine volatile_addr key);
  { machine; onsoc; volatile_addr; persistent_addr = None }

(** Read the volatile key back from on-SoC storage. *)
let volatile_key t = Machine.read t.machine t.volatile_addr key_len

(** Generate a fresh volatile key and park it at the same on-SoC
    address (crash recovery: the old key was lost with power).  Pages
    encrypted under the old key stay garbage — that is the fail-secure
    outcome; recovery re-encrypts under this key. *)
let regenerate_volatile t =
  let key = Key_derive.volatile_key t.machine in
  Machine.with_taint t.machine Taint.Secret_cleartext (fun () ->
      Machine.write t.machine t.volatile_addr key);
  key

(** Derive the persistent key from the boot password (TrustZone +
    fuse) and park it on-SoC. *)
let unlock_persistent t ~password =
  let key = Key_derive.persistent_key t.machine ~password in
  let addr =
    match t.persistent_addr with
    | Some a -> a
    | None ->
        let a = Onsoc.alloc t.onsoc ~bytes:key_len in
        t.persistent_addr <- Some a;
        a
  in
  Machine.with_taint t.machine Taint.Secret_cleartext (fun () ->
      Machine.write t.machine addr key);
  key

let persistent_key t =
  match t.persistent_addr with
  | None -> None
  | Some a -> Some (Machine.read t.machine a key_len)

(** Wipe both keys from on-SoC storage (the overwrite is public). *)
let wipe t =
  Machine.write t.machine t.volatile_addr (Bytes.make key_len '\xff');
  Option.iter (fun a -> Machine.write t.machine a (Bytes.make key_len '\xff')) t.persistent_addr

(** Where the keys are parked, for analysis passes checking root-key
    confinement. *)
let volatile_addr t = t.volatile_addr
let persistent_addr t = t.persistent_addr
