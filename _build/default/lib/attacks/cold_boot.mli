(** Cold-boot attacks (§3.1) in the three Table 2 reset variants:
    force a reset, image what the memories still hold, scan. *)

open Sentry_soc

type variant = Os_reboot | Device_reflash | Two_second_reset

val variant_name : variant -> string
val reboot_of_variant : variant -> Machine.reboot

(** Force the reset and image DRAM and iRAM.  Destructive. *)
val mount : Machine.t -> variant -> Memdump.t * Memdump.t

(** Image memory and scan both dumps for AES key schedules. *)
val recover_keys : Machine.t -> variant -> Bytes.t list

(** Can the attacker find [secret] after the reset?  Matching
    tolerates ~15% decayed bytes (error-correcting tooling). *)
val succeeds : Machine.t -> variant -> secret:Bytes.t -> bool
