(** Encrypted-DRAM paging for background computation while locked
    (§5, Fig 1): fault → copy ciphertext into a locked-cache page →
    decrypt in place → repoint the PTE; LRU eviction runs the
    sequence in reverse. *)

open Sentry_soc
open Sentry_kernel

type t

(** [create machine ~pc ~locked ~budget_bytes] — [budget_bytes] caps
    the resident plaintext pool (pages = budget / 4 KB). *)
val create :
  Machine.t -> pc:Page_crypt.t -> locked:Locked_cache.t -> budget_bytes:int -> t

(** Pages currently decrypted in locked cache. *)
val resident_pages : t -> int

(** The fault handler active while the device is locked with
    background processes running. *)
val fault_handler : t -> Vm.fault_handler

(** Write the whole working set back to encrypted DRAM (run at unlock
    hand-over and on shutdown). *)
val evict_all : t -> unit

(** (page-ins, page-outs) since creation. *)
val stats : t -> int * int
