(** Minimal dependency-free JSON serialiser.  Non-finite floats
    serialise as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val add : Buffer.t -> t -> unit
val to_string : t -> string
