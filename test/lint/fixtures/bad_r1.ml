(* Lint fixture: every R1 global-mutable shape the rule knows.
   Expected findings: hits, table, scratch, cfg (4 × R1). *)

type config = { mutable level : int; name : string }

let hits = ref 0
let table : (string, int) Hashtbl.t = Hashtbl.create 16
let scratch = Bytes.create 64
let cfg = { level = 0; name = "fixture" }

(* same-module writes are the module's own business: no R2 here *)
let bump () =
  incr hits;
  Hashtbl.replace table "bumps" !hits;
  Bytes.set scratch 0 'x';
  cfg.level <- 1
