(** DMA controller: transfers bypass the L2 cache (coherence is
    software-managed, §4.4) and are subject only to TrustZone's deny
    list — the substrate of both legitimate device I/O and the §3.1
    DMA attack. *)

type error =
  | Denied
  | Bad_address
  | Faulted  (** injected transfer fault: the engine aborted with a bus error *)

type t

val create :
  dram:Dram.t -> iram:Iram.t -> tz:Trustzone.t -> clock:Clock.t -> energy:Energy.t -> t

(** Device-initiated read of physical memory: DRAM as it is (stale or
    not), iRAM unless denied. *)
val read : t -> addr:int -> len:int -> (Bytes.t, error) result

(** Device-initiated write (incoming buffer — or injection attempt). *)
val write : t -> addr:int -> Bytes.t -> (unit, error) result

(** [set_read_hook t f] — [f] fires on every successful
    device-initiated read with the taint join of the bytes that left
    through the peripheral. *)
val set_read_hook : t -> (addr:int -> len:int -> taint:Taint.level -> unit) -> unit

val clear_read_hook : t -> unit
