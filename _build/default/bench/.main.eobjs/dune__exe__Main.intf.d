bench/main.mli:
