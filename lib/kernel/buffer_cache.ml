(** Page cache over a block target, with LRU replacement and a
    direct-I/O bypass.

    The paper's filebench runs show the cache "masking" dm-crypt's
    cost: once the fileset is warm, reads never reach the crypto
    layer.  The direct-I/O variants bypass this module entirely and
    expose the raw encryption overhead (Fig 9). *)

open Sentry_soc

type entry = {
  index : int; (* page index within the device *)
  data : Bytes.t;
  mutable dirty : bool;
  mutable prev : entry option;
  mutable next : entry option;
}

type t = {
  machine : Machine.t;
  lower : Blockio.t;
  capacity : int; (* pages *)
  table : (int, entry) Hashtbl.t;
  mutable head : entry option; (* most recently used *)
  mutable tail : entry option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create machine ~capacity_pages lower =
  {
    machine;
    lower;
    capacity = capacity_pages;
    table = Hashtbl.create (capacity_pages * 2);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

(* ------------------------- LRU list ops -------------------------- *)

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  unlink t e;
  push_front t e

let flush_entry t e =
  if e.dirty then begin
    Blockio.write t.lower ~off:(e.index * Page.size) e.data;
    e.dirty <- false
  end

let trace t name index =
  if Sentry_obs.Trace.on () then
    Sentry_obs.Trace.emit
      ~ts:(Clock.now (Machine.clock t.machine))
      ~cat:Sentry_obs.Event.Mem ~subsystem:"kernel.bcache" name
      ~args:[ ("page", Sentry_obs.Event.Int index) ]

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
      trace t "evict" e.index;
      flush_entry t e;
      unlink t e;
      Hashtbl.remove t.table e.index

(* Small cost for a cache hit: an in-memory page copy. *)
let charge_hit t =
  Clock.advance (Machine.clock t.machine) (float_of_int (Page.size / 32) *. Calib.l2_hit_line_ns)

let lookup t index =
  match Hashtbl.find_opt t.table index with
  | Some e ->
      t.hits <- t.hits + 1;
      charge_hit t;
      touch t e;
      e
  | None ->
      t.misses <- t.misses + 1;
      trace t "miss" index;
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let data =
        let off = index * Page.size in
        let len = min Page.size (t.lower.Blockio.size - off) in
        let b = Blockio.read t.lower ~off ~len in
        if len = Page.size then b
        else begin
          let page = Bytes.make Page.size '\000' in
          Bytes.blit b 0 page 0 len;
          page
        end
      in
      let e = { index; data; dirty = false; prev = None; next = None } in
      Hashtbl.replace t.table index e;
      push_front t e;
      e

(** Write every dirty page down and drop nothing (like sync(2)). *)
let sync t = Hashtbl.iter (fun _ e -> flush_entry t e) t.table

(** Drop the whole cache (after sync), e.g. between benchmark runs. *)
let drop t =
  sync t;
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let stats t = (t.hits, t.misses)

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

(** Cached target view. *)
let target t =
  let size = t.lower.Blockio.size in
  let read ~off ~len =
    let out = Bytes.create len in
    let first = off / Page.size and last = (off + len - 1) / Page.size in
    for index = first to last do
      let e = lookup t index in
      let page_start = index * Page.size in
      let copy_from = max off page_start in
      let copy_to = min (off + len) (page_start + Page.size) in
      Bytes.blit e.data (copy_from - page_start) out (copy_from - off) (copy_to - copy_from)
    done;
    out
  in
  let write ~off b =
    let len = Bytes.length b in
    let first = off / Page.size and last = (off + len - 1) / Page.size in
    for index = first to last do
      let e = lookup t index in
      let page_start = index * Page.size in
      let copy_from = max off page_start in
      let copy_to = min (off + len) (page_start + Page.size) in
      Bytes.blit b (copy_from - off) e.data (copy_from - page_start) (copy_to - copy_from);
      e.dirty <- true
    done
  in
  { Blockio.name = "buffer-cache"; size; read; write }
