lib/soc/pl310.ml: Array Bytes Calib Clock Dram Energy Option Sentry_util
