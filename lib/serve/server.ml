(** Sentry-as-a-service: an open-loop lock/unlock server over the
    batched pipeline.

    The server boots a private [System], pre-spawns a tenant pool with
    the fleet's heterogeneous footprints (every 4th tenant large with
    a DMA region, every 4k+3rd small, the rest medium), locks the
    device, and then drains an {!Arrivals} schedule through a
    {!Admission} queue in batches: each cycle PIN-unlocks, serves
    every request in the batch by faulting in its tenant's first page
    (sampling simulated queue-wait and unlock-to-first-touch per
    tenant class), and re-locks through the installed protection
    backend ([Sentry.backend]).  Arrivals
    are open loop — they land on the simulated clock whether or not
    the queue drains, so overload shows up as [Shed]/[Rejected]
    verdicts rather than as a conveniently slower generator.

    {b Chaos soak.}  With [soak] on, every [soak_period]-th re-lock
    runs under an armed {!Sentry_faults.Injector} session that kills
    the walk at the first page boundary — a software crash: the lock
    daemon dies, the SoC stays powered, so the volatile key survives
    and serving can continue.  The server immediately runs
    [Sentry.recover] (roll-forward to Locked), audits
    [Checkers.Locked_state_consistent], and keeps draining — arrivals
    never stop for a crash.

    {b Sharding.}  [run_sharded] partitions the tenant pool into
    contiguous shards exactly like the fleet workload: every shard
    regenerates the full arrival schedule from the run seed (a pure
    function) and filters out its own tenants, owns a private
    [System] / admission queue / metrics registry / injector sessions,
    and executes on a [Dpool].  The partition and every per-shard
    input depend only on [(tenants, shards)] — never the domain
    count — so merged outputs are bit-identical across [D]. *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core
module Fleet = Sentry_workloads.Fleet
module Injector = Sentry_faults.Injector
module Plan = Sentry_faults.Plan
module Fault = Sentry_faults.Fault
module Checkers = Sentry_analysis.Checkers

type config = {
  tenants : int;  (** pool size (fleet tenant-class mix by index) *)
  pages_per_proc : int;  (** medium tenant main-region pages *)
  rate_hz : float;  (** base Poisson arrival rate (simulated Hz) *)
  burst : float;  (** peak-quarter multiplier (diurnal profile) *)
  duration_s : float;  (** simulated arrival-generation span *)
  queue_depth : int;  (** admission FIFO depth (per shard) *)
  backlog_pages_max : int;  (** page backlog cap (journal/iRAM model) *)
  batch_max : int;  (** requests served per unlock/lock cycle *)
  seed : int;
  soak : bool;  (** inject crashes into periodic re-locks *)
  soak_period : int;  (** crash every Nth batch when soaking *)
  backend : Sentry.backend;
}

let default =
  {
    tenants = 8;
    pages_per_proc = 8;
    rate_hz = 40.0;
    burst = 3.0;
    duration_s = 2.0;
    queue_depth = 64;
    backlog_pages_max = 512;
    batch_max = 8;
    seed = 7;
    soak = false;
    soak_period = 4;
    backend = Sentry.Batched;
  }

type dist = {
  count : int;
  mean_ns : float;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_ns : float;
}

type stats = {
  config : config;
  requests : int;  (** arrivals offered to admission *)
  served : int;
  shed : int;  (** queue-depth overflow drops *)
  rejected : int;  (** page-backlog saturation drops *)
  batches : int;  (** unlock → serve → lock cycles run *)
  crashes_injected : int;  (** soak crashes that actually fired *)
  recoveries : int;  (** successful [Sentry.recover] passes *)
  audit_findings : int;  (** post-recovery consistency findings (want 0) *)
  pages_locked : int;  (** summed over completed lock passes *)
  pages_fixed : int;  (** pages rolled forward by recovery *)
  pages_faulted : int;  (** lazy decrypt faults served *)
  shed_rate : float;  (** (shed + rejected) / requests, 0 when idle *)
  latency_samples : (string * float) list;
      (** (tenant_class, unlock_to_first_touch_ns) in service order *)
  queue_wait_samples : (string * float) list;
      (** (tenant_class, queue_wait_ns) in service order *)
  latency_by_class : (string * dist) list;
  queue_wait_by_class : (string * dist) list;
  sim_elapsed_ns : float;
  energy_j : float;
}

let validate (cfg : config) =
  if cfg.tenants <= 0 || cfg.pages_per_proc <= 0 then
    invalid_arg "Server.run: tenants and pages_per_proc must be positive";
  if cfg.rate_hz <= 0.0 || cfg.duration_s <= 0.0 then
    invalid_arg "Server.run: rate_hz and duration_s must be positive";
  if cfg.queue_depth <= 0 || cfg.backlog_pages_max <= 0 || cfg.batch_max <= 0 then
    invalid_arg "Server.run: queue_depth, backlog_pages_max and batch_max must be positive";
  if cfg.soak_period <= 0 then invalid_arg "Server.run: soak_period must be positive"

(* The decrypt/re-encrypt footprint a request costs the pipeline: its
   first-touch page plus the tenant's eager-DMA churn (large tenants
   re-decrypt their DMA region on every unlock).  This is what the
   admission backlog charges against the journal/iRAM cap. *)
let request_pages ~pages_per_proc (r : Arrivals.request) =
  1 + Fleet.dma_pages_for ~index:r.Arrivals.tenant ~pages_per_proc

let summarize_by_class samples =
  let classes = List.sort_uniq String.compare (List.map fst samples) in
  List.map
    (fun cls ->
      let xs =
        Array.of_list (List.filter_map (fun (c, v) -> if c = cls then Some v else None) samples)
      in
      let s = Stats.summarize xs in
      ( cls,
        {
          count = s.Stats.n;
          mean_ns = s.Stats.mean;
          p50_ns = Stats.percentile 50.0 xs;
          p99_ns = Stats.percentile 99.0 xs;
          p999_ns = Stats.percentile 99.9 xs;
          max_ns = s.Stats.max;
        } ))
    classes

(** Record one run's samples and counters into a metrics registry —
    the labeled fan-in sharded runs [Metrics.merge].  The shed-rate
    gauge is deliberately {e not} recorded here: a rate does not merge
    by last-writer-wins, so callers set it once over merged counts
    via {!set_shed_rate}. *)
let record_into metrics (s : stats) =
  let hist name samples =
    List.iter
      (fun (cls, ns) ->
        Sentry_obs.Metrics.observe
          (Sentry_obs.Metrics.histogram metrics ~subsystem:"serve"
             ~labels:[ ("tenant_class", cls) ]
             name)
          ns)
      samples
  in
  hist "unlock_to_first_touch_ns" s.latency_samples;
  hist "queue_wait_ns" s.queue_wait_samples;
  let count name v =
    Sentry_obs.Metrics.inc ~by:v (Sentry_obs.Metrics.counter metrics ~subsystem:"serve" name)
  in
  count "requests_total" s.requests;
  count "served_total" s.served;
  count "shed_total" s.shed;
  count "rejected_total" s.rejected;
  count "batches_total" s.batches;
  count "crashes_injected_total" s.crashes_injected;
  count "recoveries_total" s.recoveries;
  count "audit_findings_total" s.audit_findings

(** Set the [serve/shed_rate] gauge (stamped at [ts]) from final
    counts — called once per merged registry, never per shard. *)
let set_shed_rate metrics ~ts rate =
  Sentry_obs.Metrics.set_at (Sentry_obs.Metrics.gauge metrics ~subsystem:"serve" "shed_rate") ~ts
    rate

(* One slice: serve the sub-stream of the global schedule whose
   tenants fall in [first, first+count).  Everything simulated lives
   in a private [System], so concurrent slices share nothing. *)
let run_slice ~platform ~seed ~pid_base ~first ~count ?metrics (cfg : config) =
  let system = System.boot ~seed ~pid_base platform in
  let machine = System.machine system in
  let sentry = Sentry.install system { (Config.default platform) with Config.journal = true } in
  Sentry.set_backend sentry cfg.backend;
  (* the tenant pool, global indices — same footprint mix as the
     fleet workload so per-class tails are comparable *)
  let pool =
    Array.init count (fun j ->
        let i = first + j in
        let name = Printf.sprintf "serve%03d" i in
        let main_pages = Fleet.main_pages_for ~index:i ~pages_per_proc:cfg.pages_per_proc in
        let proc = System.spawn system ~name ~bytes:(main_pages * Page.size) in
        let aspace = proc.Process.aspace in
        let main_region =
          match Address_space.find_region aspace ~name:"main" with
          | Some r -> r
          | None -> assert false
        in
        let dma_pages = Fleet.dma_pages_for ~index:i ~pages_per_proc:cfg.pages_per_proc in
        let regions =
          if dma_pages = 0 then [ main_region ]
          else
            [
              main_region;
              Address_space.map_region aspace ~name:"dma" ~kind:Address_space.Dma
                ~bytes:(dma_pages * Page.size);
            ]
        in
        let pattern = Bytes.of_string (name ^ "-secret!") in
        List.iter (fun r -> System.fill_region system proc r pattern) regions;
        Sentry.mark_sensitive sentry proc;
        (proc, main_region))
  in
  (* every shard regenerates the full schedule from the run seed (a
     pure function) and keeps only its own tenants — so the slice's
     sub-stream is identical whether 1 or 16 shards exist around it *)
  let schedule =
    List.filter
      (fun (r : Arrivals.request) -> r.Arrivals.tenant >= first && r.Arrivals.tenant < first + count)
      (Arrivals.generate
         {
           Arrivals.rate_hz = cfg.rate_hz;
           burst = cfg.burst;
           duration_s = cfg.duration_s;
           tenants = cfg.tenants;
           seed = cfg.seed;
         })
  in
  let q = Admission.create ~depth:cfg.queue_depth ~backlog_pages_max:cfg.backlog_pages_max in
  let clock = Machine.clock machine in
  let energy0 = Energy.category (Machine.energy machine) "aes" in
  let sim0 = System.now system in
  let pin = (Sentry.config sentry).Config.pin in
  let requests = ref 0
  and served = ref 0
  and shed = ref 0
  and rejected = ref 0
  and batches = ref 0
  and crashes = ref 0
  and recoveries = ref 0
  and audit_findings = ref 0
  and pages_locked = ref 0
  and pages_fixed = ref 0
  and faulted = ref 0
  and latency = ref []
  and queue_wait = ref [] in
  (* start locked: the service's idle state is the protected one *)
  pages_locked := (Sentry.lock sentry).Encrypt_on_lock.pages_encrypted;
  let pending = ref schedule in
  let admit_until now =
    let rec go () =
      match !pending with
      | r :: rest when r.Arrivals.at_ns <= now ->
          pending := rest;
          incr requests;
          (match
             Admission.offer q ~pages:(request_pages ~pages_per_proc:cfg.pages_per_proc r) r
           with
          | Admission.Queued -> ()
          | Admission.Shed -> incr shed
          | Admission.Rejected -> incr rejected);
          go ()
      | _ -> ()
    in
    go ()
  in
  let lock_with_chaos () =
    (* arm a one-crash session around this re-lock: the walk dies at
       the first page boundary (Reset = the lock daemon crashing in
       software; the SoC stays powered, so the volatile key and the
       tenants' ciphertext survive and serving continues) *)
    let plan =
      Plan.make ~name:"serve-soak" ~seed:(cfg.seed + !batches)
        [
          Plan.trigger ~point:Injector.Points.page_encrypted ~kind:Fault.Reset ~at:(Plan.Nth 1);
        ]
    in
    let session = Injector.create plan in
    Injector.activate session;
    match Sentry.lock sentry with
    | s ->
        (* nothing to encrypt before the trigger point: no crash *)
        Injector.deactivate ();
        pages_locked := !pages_locked + s.Encrypt_on_lock.pages_encrypted
    | exception Injector.Injected _ ->
        Injector.deactivate ();
        incr crashes;
        (match Sentry.recover sentry with
        | Some r ->
            incr recoveries;
            pages_fixed := !pages_fixed + r.Sentry.pages_fixed
        | None -> ());
        (* the whole point of the soak: after every injected crash the
           lock state machine, PTE bits and parking must agree *)
        audit_findings :=
          !audit_findings + List.length (Checkers.Locked_state_consistent.audit sentry)
  in
  admit_until (System.now system);
  while (not (Admission.is_empty q)) || !pending <> [] do
    if Admission.is_empty q then begin
      (* idle: jump the simulated clock to the next arrival *)
      (match !pending with
      | r :: _ ->
          let now = System.now system in
          if r.Arrivals.at_ns > now then Clock.advance clock (r.Arrivals.at_ns -. now)
      | [] -> ());
      admit_until (System.now system)
    end
    else begin
      let batch = Admission.take_batch q ~max:cfg.batch_max in
      incr batches;
      let service_start = System.now system in
      List.iter
        (fun (r : Arrivals.request) ->
          queue_wait := (r.Arrivals.cls, service_start -. r.Arrivals.at_ns) :: !queue_wait)
        batch;
      (match Sentry.unlock sentry ~pin with
      | Ok _ -> ()
      | Error _ -> failwith "Server.run: unlock failed");
      List.iter
        (fun (r : Arrivals.request) ->
          let proc, region = pool.(r.Arrivals.tenant - first) in
          Vm.touch system.System.vm proc ~vaddr:region.Address_space.vstart;
          incr faulted;
          incr served;
          latency := (r.Arrivals.cls, System.now system -. r.Arrivals.at_ns) :: !latency)
        batch;
      if cfg.soak && !batches mod cfg.soak_period = 0 then lock_with_chaos ()
      else pages_locked := !pages_locked + (Sentry.lock sentry).Encrypt_on_lock.pages_encrypted;
      (* service took simulated time; arrivals that landed during the
         cycle queue up now (open loop: their timestamps don't move) *)
      admit_until (System.now system)
    end
  done;
  let latency = List.rev !latency and queue_wait = List.rev !queue_wait in
  let stats =
    {
      config = { cfg with tenants = count };
      requests = !requests;
      served = !served;
      shed = !shed;
      rejected = !rejected;
      batches = !batches;
      crashes_injected = !crashes;
      recoveries = !recoveries;
      audit_findings = !audit_findings;
      pages_locked = !pages_locked;
      pages_fixed = !pages_fixed;
      pages_faulted = !faulted;
      shed_rate =
        (if !requests = 0 then 0.0 else float_of_int (!shed + !rejected) /. float_of_int !requests);
      latency_samples = latency;
      queue_wait_samples = queue_wait;
      latency_by_class = summarize_by_class latency;
      queue_wait_by_class = summarize_by_class queue_wait;
      sim_elapsed_ns = System.now system -. sim0;
      energy_j = Energy.category (Machine.energy machine) "aes" -. energy0;
    }
  in
  Option.iter (fun m -> record_into m stats) metrics;
  stats

(* ------------------------------ sharding --------------------------- *)

type shard = {
  shard_index : int;
  first_tenant : int;
  tenants : int;
  pid_base : int;  (** first_tenant + 1 — sharded pids equal serial pids *)
  shard_seed : int;
  shard_stats : stats;
  shard_metrics : Sentry_obs.Metrics.t;
}

type sharded = {
  domains : int;
  shard_count : int;
  wall_s : float;  (** host time over the whole parallel section *)
  shards : shard list;  (** in shard-index order *)
  merged : stats;
  merged_metrics : Sentry_obs.Metrics.t;
}

let default_shards ~tenants = max 1 (min tenants 16)

let merge_stats (cfg : config) shards =
  let stats_list = List.map (fun sh -> sh.shard_stats) shards in
  let sum f = List.fold_left (fun a s -> a + f s) 0 stats_list in
  let latency = List.concat_map (fun s -> s.latency_samples) stats_list in
  let queue_wait = List.concat_map (fun s -> s.queue_wait_samples) stats_list in
  let requests = sum (fun s -> s.requests) in
  let dropped = sum (fun s -> s.shed) + sum (fun s -> s.rejected) in
  {
    config = cfg;
    requests;
    served = sum (fun s -> s.served);
    shed = sum (fun s -> s.shed);
    rejected = sum (fun s -> s.rejected);
    batches = sum (fun s -> s.batches);
    crashes_injected = sum (fun s -> s.crashes_injected);
    recoveries = sum (fun s -> s.recoveries);
    audit_findings = sum (fun s -> s.audit_findings);
    pages_locked = sum (fun s -> s.pages_locked);
    pages_fixed = sum (fun s -> s.pages_fixed);
    pages_faulted = sum (fun s -> s.pages_faulted);
    shed_rate = (if requests = 0 then 0.0 else float_of_int dropped /. float_of_int requests);
    latency_samples = latency;
    queue_wait_samples = queue_wait;
    latency_by_class = summarize_by_class latency;
    queue_wait_by_class = summarize_by_class queue_wait;
    (* shards serve concurrently in simulated time: the service's
       elapsed time is the slowest shard's, not the sum *)
    sim_elapsed_ns =
      List.fold_left (fun a s -> Float.max a s.sim_elapsed_ns) 0.0 stats_list;
    energy_j = List.fold_left (fun a s -> a +. s.energy_j) 0.0 stats_list;
  }

let seed_for ~seed shard_index = seed + (shard_index * 7919)

let run_sharded ?(platform = `Tegra3) ?shards ~domains (cfg : config) =
  validate cfg;
  if domains <= 0 then invalid_arg "Server.run_sharded: domains must be positive";
  let nshards =
    match shards with
    | Some s ->
        if s <= 0 then invalid_arg "Server.run_sharded: shards must be positive";
        min s cfg.tenants
    | None -> default_shards ~tenants:cfg.tenants
  in
  let plan = Fleet.shard_plan ~procs:cfg.tenants ~shards:nshards in
  let tasks =
    List.mapi
      (fun s (first, count) ->
        fun () ->
          let shard_metrics = Sentry_obs.Metrics.create () in
          let shard_stats =
            run_slice ~platform ~seed:(seed_for ~seed:cfg.seed s) ~pid_base:(first + 1) ~first
              ~count ~metrics:shard_metrics cfg
          in
          {
            shard_index = s;
            first_tenant = first;
            tenants = count;
            pid_base = first + 1;
            shard_seed = seed_for ~seed:cfg.seed s;
            shard_stats;
            shard_metrics;
          })
      plan
  in
  let t0 = Unix.gettimeofday () in
  let results = Dpool.run ~domains tasks in
  let wall_s = Unix.gettimeofday () -. t0 in
  let merged = merge_stats cfg results in
  let merged_metrics =
    List.fold_left
      (fun acc sh -> Sentry_obs.Metrics.merge acc sh.shard_metrics)
      (Sentry_obs.Metrics.create ()) results
  in
  set_shed_rate merged_metrics ~ts:merged.sim_elapsed_ns merged.shed_rate;
  { domains; shard_count = List.length results; wall_s; shards = results; merged; merged_metrics }

let run ?(platform = `Tegra3) ?metrics ?domains (cfg : config) =
  validate cfg;
  match domains with
  | Some d ->
      (* sharded semantics regardless of D, so a ~domains:1 run is
         bit-comparable to a ~domains:4 one *)
      let sh = run_sharded ~platform ~domains:d cfg in
      Option.iter
        (fun m ->
          record_into m sh.merged;
          set_shed_rate m ~ts:sh.merged.sim_elapsed_ns sh.merged.shed_rate)
        metrics;
      sh.merged
  | None ->
      (* serial path: one slice owning the whole pool (pid_base 1
         mirrors the fleet's fresh-boot numbering) *)
      let s = run_slice ~platform ~seed:cfg.seed ~pid_base:1 ~first:0 ~count:cfg.tenants ?metrics cfg in
      Option.iter (fun m -> set_shed_rate m ~ts:s.sim_elapsed_ns s.shed_rate) metrics;
      s

(* Machine-readable stats: only simulated / deterministic fields, so
   the document is bit-identical across domain counts (the D=1 vs D=4
   differential test compares the serialized strings).  Host wall time
   lives in [sharded.wall_s] and the human-readable output only. *)
let json (s : stats) =
  let open Sentry_obs in
  let dist_json (cls, (d : dist)) =
    ( cls,
      Json_out.Obj
        [
          ("count", Json_out.Int d.count);
          ("mean_ns", Json_out.Float d.mean_ns);
          ("p50_ns", Json_out.Float d.p50_ns);
          ("p99_ns", Json_out.Float d.p99_ns);
          ("p999_ns", Json_out.Float d.p999_ns);
          ("max_ns", Json_out.Float d.max_ns);
        ] )
  in
  Json_out.Obj
    [
      ("tenants", Json_out.Int s.config.tenants);
      ("pages_per_proc", Json_out.Int s.config.pages_per_proc);
      ("rate_hz", Json_out.Float s.config.rate_hz);
      ("burst", Json_out.Float s.config.burst);
      ("duration_s", Json_out.Float s.config.duration_s);
      ("queue_depth", Json_out.Int s.config.queue_depth);
      ("backlog_pages_max", Json_out.Int s.config.backlog_pages_max);
      ("batch_max", Json_out.Int s.config.batch_max);
      ("seed", Json_out.Int s.config.seed);
      ("soak", Json_out.Bool s.config.soak);
      ("backend", Json_out.Str (Fleet.backend_label s.config.backend));
      ("requests", Json_out.Int s.requests);
      ("served", Json_out.Int s.served);
      ("shed", Json_out.Int s.shed);
      ("rejected", Json_out.Int s.rejected);
      ("batches", Json_out.Int s.batches);
      ("crashes_injected", Json_out.Int s.crashes_injected);
      ("recoveries", Json_out.Int s.recoveries);
      ("audit_findings", Json_out.Int s.audit_findings);
      ("pages_locked", Json_out.Int s.pages_locked);
      ("pages_fixed", Json_out.Int s.pages_fixed);
      ("pages_faulted", Json_out.Int s.pages_faulted);
      ("shed_rate", Json_out.Float s.shed_rate);
      ("unlock_to_first_touch_by_class", Json_out.Obj (List.map dist_json s.latency_by_class));
      ("queue_wait_by_class", Json_out.Obj (List.map dist_json s.queue_wait_by_class));
      ("sim_elapsed_ns", Json_out.Float s.sim_elapsed_ns);
      ("energy_j", Json_out.Float s.energy_j);
    ]

let pp_dist ppf (cls, d) =
  Fmt.pf ppf "  %-7s n=%-4d p50 %.1f us  p99 %.1f us  p999 %.1f us  max %.1f us" cls d.count
    (d.p50_ns /. 1e3) (d.p99_ns /. 1e3) (d.p999_ns /. 1e3) (d.max_ns /. 1e3)

let pp ppf (s : stats) =
  Fmt.pf ppf
    "serve: %d tenants, %.0f req/s base (burst %.1fx) over %.1f s simulated@\n\
    \  requests            %d (served %d, shed %d, rejected %d; shed rate %.3f)@\n\
    \  batches             %d (max %d requests each)@\n\
    \  chaos               %d crash(es) injected, %d recovered, %d audit finding(s)@\n\
    \  pages               %d locked, %d rolled forward, %d faulted in"
    s.config.tenants s.config.rate_hz s.config.burst s.config.duration_s s.requests s.served
    s.shed s.rejected s.shed_rate s.batches s.config.batch_max s.crashes_injected s.recoveries
    s.audit_findings s.pages_locked s.pages_fixed s.pages_faulted;
  if s.latency_by_class <> [] then begin
    Fmt.pf ppf "@\n  unlock -> first touch:";
    List.iter (fun d -> Fmt.pf ppf "@\n%a" pp_dist d) s.latency_by_class
  end;
  if s.queue_wait_by_class <> [] then begin
    Fmt.pf ppf "@\n  queue wait:";
    List.iter (fun d -> Fmt.pf ppf "@\n%a" pp_dist d) s.queue_wait_by_class
  end;
  Fmt.pf ppf "@\n  simulated time      %.2f ms, AES energy %.3f J" (s.sim_elapsed_ns /. 1e6)
    s.energy_j

let pp_sharded ppf (s : sharded) =
  Fmt.pf ppf "serve (sharded): %d shards on %d domain%s, %.1f ms wall@\n" s.shard_count s.domains
    (if s.domains = 1 then "" else "s")
    (s.wall_s *. 1e3);
  List.iter
    (fun sh ->
      Fmt.pf ppf "  shard %d: tenants %d..%d  pids %d..%d  seed %d  %d served  %d shed@\n"
        sh.shard_index sh.first_tenant
        (sh.first_tenant + sh.tenants - 1)
        sh.pid_base
        (sh.pid_base + sh.tenants - 1)
        sh.shard_seed sh.shard_stats.served sh.shard_stats.shed)
    s.shards;
  pp ppf s.merged
