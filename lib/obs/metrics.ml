(** Metrics registry: named counters, gauges and log-scale histograms,
    registered per subsystem.

    A registry is a plain value — experiments and the CLI build one,
    point subsystems at it (or harvest component stats into it), and
    flatten it into the machine-readable report behind
    [BENCH_sentry.json].  Keys are ["subsystem/name"]; histogram keys
    fan out into [.../count], [.../mean], [.../p50], [.../p95],
    [.../p99] and [.../max] via [Sentry_util.Stats]. *)

type counter = { mutable count : int }
type gauge = { mutable value : float }

type histogram = {
  mutable samples : float array;
  mutable n : int;
  buckets : int array; (* log2-scale occupancy, bucket i covers [2^i, 2^(i+1)) *)
}

type instrument = C of counter | G of gauge | H of histogram

type t = { table : (string, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let key ~subsystem name = subsystem ^ "/" ^ name

let register t ~subsystem name make describe =
  let k = key ~subsystem name in
  match Hashtbl.find_opt t.table k with
  | Some i -> i
  | None ->
      let i = make () in
      ignore describe;
      Hashtbl.add t.table k i;
      i

let counter t ~subsystem name =
  match register t ~subsystem name (fun () -> C { count = 0 }) "counter" with
  | C c -> c
  | G _ | H _ -> invalid_arg ("Metrics.counter: " ^ key ~subsystem name ^ " is not a counter")

let gauge t ~subsystem name =
  match register t ~subsystem name (fun () -> G { value = 0.0 }) "gauge" with
  | G g -> g
  | C _ | H _ -> invalid_arg ("Metrics.gauge: " ^ key ~subsystem name ^ " is not a gauge")

let num_buckets = 64

let histogram t ~subsystem name =
  match
    register t ~subsystem name
      (fun () -> H { samples = Array.make 16 0.0; n = 0; buckets = Array.make num_buckets 0 })
      "histogram"
  with
  | H h -> h
  | C _ | G _ -> invalid_arg ("Metrics.histogram: " ^ key ~subsystem name ^ " is not a histogram")

let inc ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count

let set g v = g.value <- v
let gauge_value g = g.value

(** Log-scale bucket for a (non-negative) observation: floor(log2 v),
    clamped; values below 1 land in bucket 0. *)
let bucket_of v =
  if v < 2.0 then 0
  else min (num_buckets - 1) (int_of_float (Float.log2 v))

let observe h v =
  if h.n = Array.length h.samples then begin
    let bigger = Array.make (2 * h.n) 0.0 in
    Array.blit h.samples 0 bigger 0 h.n;
    h.samples <- bigger
  end;
  h.samples.(h.n) <- v;
  h.n <- h.n + 1;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let observations h = Array.sub h.samples 0 h.n

(** Occupied log2 buckets as [(lower_bound, count)] pairs. *)
let bucket_counts h =
  List.filteri (fun _ (_, n) -> n > 0)
    (List.init num_buckets (fun i -> ((if i = 0 then 0.0 else Float.pow 2.0 (float_of_int i)), h.buckets.(i))))

let hist_percentile h p =
  if h.n = 0 then 0.0 else Sentry_util.Stats.percentile p (observations h)

(** Flatten into sorted [(key, value)] pairs. *)
let flat t =
  let rows = ref [] in
  Hashtbl.iter
    (fun k i ->
      match i with
      | C c -> rows := (k, float_of_int c.count) :: !rows
      | G g -> rows := (k, g.value) :: !rows
      | H h ->
          rows := (k ^ "/count", float_of_int h.n) :: !rows;
          if h.n > 0 then begin
            let s = Sentry_util.Stats.summarize (observations h) in
            rows :=
              (k ^ "/mean", s.Sentry_util.Stats.mean)
              :: (k ^ "/p50", hist_percentile h 50.0)
              :: (k ^ "/p95", hist_percentile h 95.0)
              :: (k ^ "/p99", hist_percentile h 99.0)
              :: (k ^ "/max", s.Sentry_util.Stats.max)
              :: !rows
          end)
    t.table;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

(** Bulk-harvest scalar readings as gauges. *)
let set_many t ~subsystem pairs =
  List.iter (fun (name, v) -> set (gauge t ~subsystem name) v) pairs
