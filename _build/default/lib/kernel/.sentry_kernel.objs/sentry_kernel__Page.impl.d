lib/kernel/page.ml:
