(** The Fig 10 experiment: how much does locking L2 ways slow down the
    rest of the system?

    The paper measures a Linux kernel compile ("make -j 5") while 0-8
    ways are locked.  Here, a synthetic compile-like memory trace —
    a sequential instruction stream interleaved with random accesses
    over a multi-megabyte data set — runs through the {e real} cache
    model with the lockdown register programmed, so the slowdown comes
    from genuinely increased miss rates, not from a formula.  Reported
    minutes are the simulated time scaled so the 0-way run matches the
    paper's 14.41 minutes. *)

open Sentry_util
open Sentry_soc

let paper_baseline_minutes = 14.41

type result = { locked_ways : int; minutes : float; miss_rate : float }

(* One compile-like trace: 85% sequential "instruction" stream over a
   small loop footprint, 15% uniform-random "data" accesses over a
   working set several times the cache. *)
let trace_accesses = 400_000
let code_bytes = 96 * Units.kib
let data_bytes = 2 * Units.mib
let code_fraction_pct = 90

let run_raw ~locked_ways ~seed =
  let machine = Machine.create ~seed (Machine.tegra3 ~dram_size:(8 * Units.mib) ()) in
  let l2 = Machine.l2 machine in
  if locked_ways > 0 then Pl310.set_lockdown l2 ((1 lsl locked_ways) - 1);
  let prng = Prng.create ~seed in
  let dram = Machine.dram_region machine in
  let code_base = dram.Memmap.base + Units.mib in
  let data_base = code_base + code_bytes in
  let start = Machine.now machine in
  let code_pos = ref 0 in
  for _ = 1 to trace_accesses do
    if Prng.int prng 100 < code_fraction_pct then begin
      ignore (Machine.read machine (code_base + !code_pos) 4);
      code_pos := (!code_pos + 32) mod code_bytes
    end
    else begin
      let off = Prng.int prng (data_bytes / 32) * 32 in
      ignore (Machine.read machine (data_base + off) 4)
    end
  done;
  let elapsed = Machine.now machine -. start in
  (elapsed, 1.0 -. Pl310.hit_rate l2)

(** [run ~locked_ways] — simulated compile duration in minutes. *)
let run ?(seed = 0xc0de) ~locked_ways () =
  let baseline, _ = run_raw ~locked_ways:0 ~seed in
  let elapsed, miss_rate = run_raw ~locked_ways ~seed in
  { locked_ways; minutes = paper_baseline_minutes *. elapsed /. baseline; miss_rate }

(** Full sweep for the figure. *)
let sweep ?(seed = 0xc0de) () =
  let baseline, _ = run_raw ~locked_ways:0 ~seed in
  List.init 9 (fun k ->
      let elapsed, miss_rate = run_raw ~locked_ways:k ~seed in
      { locked_ways = k; minutes = paper_baseline_minutes *. elapsed /. baseline; miss_rate })
