(** Sentry configuration. *)

type platform = [ `Tegra3 | `Nexus4 | `Future ]

type onsoc_storage = Use_iram | Use_locked_l2 | Use_pinned

type t = {
  platform : platform;
  storage : onsoc_storage; (* where keys + AES_On_SoC context live *)
  max_locked_ways : int; (* cache-way budget Sentry may lock *)
  background_budget_bytes : int; (* locked-cache pool for background paging *)
  pin : string;
  max_pin_attempts : int; (* wrong PINs before deep-lock *)
  track_taint : bool; (* allocate shadow memory + tag secret flows *)
  trace : bool; (* record structured events in the observability ring *)
  journal : bool; (* crash-consistency journal for lock/unlock walks *)
}

let default_tegra3 =
  {
    platform = `Tegra3;
    storage = Use_locked_l2;
    max_locked_ways = 4;
    background_budget_bytes = 256 * Sentry_util.Units.kib;
    pin = "1234";
    max_pin_attempts = 5;
    track_taint = false;
    trace = false;
    journal = false;
  }

(* The Nexus 4 prototype cannot enable cache locking (locked
   firmware), so Sentry keeps secrets in iRAM only and cannot run
   sensitive apps in the background while locked (§7). *)
let default_nexus4 =
  {
    platform = `Nexus4;
    storage = Use_iram;
    max_locked_ways = 0;
    background_budget_bytes = 0;
    pin = "1234";
    max_pin_attempts = 5;
    track_taint = false;
    trace = false;
    journal = false;
  }

(* The §10 future platform: pinned on-SoC memory for keys and the AES
   context; cache locking still provides the background paging pool. *)
let default_future =
  { default_tegra3 with platform = `Future; storage = Use_pinned }

let default = function
  | `Tegra3 -> default_tegra3
  | `Nexus4 -> default_nexus4
  | `Future -> default_future

let validate t =
  match (t.platform, t.storage) with
  | `Nexus4, Use_locked_l2 ->
      Error "nexus4: cache locking unavailable (locked firmware); use iRAM"
  | `Nexus4, _ when t.max_locked_ways > 0 -> Error "nexus4: cannot lock cache ways"
  | (`Tegra3 | `Nexus4), Use_pinned ->
      Error "pinned on-SoC memory only exists on the future platform (S10)"
  | _ when t.background_budget_bytes > t.max_locked_ways * 128 * Sentry_util.Units.kib ->
      Error "background budget exceeds locked-way capacity"
  | _ -> Ok t
