(** Foreground application model for Figs 2-5: memory profile (how
    much is resident / DMA / touched at resume / touched by the
    script) plus the scripted session driver. *)

open Sentry_kernel

type profile = {
  app_name : string;
  footprint_mb : float;  (** resident set, encrypted at lock *)
  dma_mb : float;  (** DMA region, eager decrypt at unlock *)
  resume_mb : float;  (** touched by the resume path (lazy) *)
  runtime_mb : float;  (** additionally touched during the script *)
  refault_factor : float;  (** aging refaults per runtime page *)
  script_s : float;  (** scripted interaction duration *)
}

type t = {
  profile : profile;
  proc : Process.t;
  main_region : Address_space.region;
  dma_region : Address_space.region;
}

(** Spawn the process with main + DMA regions, filled with
    recognisable content. *)
val launch : Sentry_core.System.t -> profile -> t

(** Touch the resume set (encrypted pages fault and decrypt lazily). *)
val resume : Sentry_core.System.t -> t -> unit

(** Clear young bits on a page range (access-flag aging). *)
val age : t -> first_page:int -> pages:int -> unit

(** Run the scripted session; returns its simulated duration (ns) —
    overhead is the excess over [profile.script_s]. *)
val run_script : Sentry_core.System.t -> t -> float
