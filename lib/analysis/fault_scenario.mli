(** Canned fault-injection scenarios: drive the lock pipeline into an
    injected crash, recover, and report the attack verdict.

    Each named plan arms the {!Sentry_faults.Injector} over a small
    Fig-2-style workload, runs the lock, and — when the fault
    interrupts it — reboots the machine the way the fault implies,
    runs [Sentry.recover], and asks the questions that matter: does a
    cold-boot image still yield the secret, and do the lock state
    machine, PTE bits and scheduler parking agree?  The `sentry_cli
    faults` subcommand and the CI smoke step are thin wrappers over
    [run]. *)

(** The canned plans, by name (what `sentry_cli faults --plan` takes). *)
val plans : (string * Sentry_faults.Plan.t) list

val plan_names : string list
val find_plan : string -> Sentry_faults.Plan.t option

type outcome = {
  plan : Sentry_faults.Plan.t;
  platform : Sentry_core.Config.platform;
  fired : Sentry_faults.Injector.record list;
      (** every fault that fired, oldest first *)
  crashed : bool;  (** the lock walk was interrupted *)
  recovery : Sentry_core.Sentry.recovery_stats option;
  locked : bool;  (** device ended up Locked *)
  secret_recovered : bool;
      (** cold boot after recovery still finds the secret *)
  inconsistencies : int;  (** [Locked_state_consistent.audit] findings *)
  violations : Checker.violation list;  (** full engine verdict *)
}

(** Did the pipeline hold?  Interrupted or not, the run must end
    Locked, self-consistent, with nothing recoverable. *)
val survived : outcome -> bool

(** The pattern the workload pages are filled with — what the
    post-recovery cold-boot scan greps for. *)
val secret : Bytes.t

(** The small Fig-2-style workload: one sensitive app with an 8-page
    main region and a 4-page DMA region, both filled with the search
    pattern. *)
val spawn_workload :
  Sentry_core.System.t -> Sentry_core.Sentry.t -> Sentry_kernel.Process.t

(** Flip random DRAM bits — what armed [Bit_flip] triggers invoke. *)
val bit_flip_handler : Sentry_soc.Machine.t -> point:string -> bits:int -> unit

(** [run ?platform ?variant ?backend plan] — execute the scenario
    under [plan].  [variant] picks the cold-boot attack mounted after
    recovery (default: the 2-second reset, the strongest in Table 2);
    [backend] the protection backend the interrupted walk runs under
    (default [Batched] — [No_access] concedes the cold boot by design,
    so [survived] is expected to be [false] there). *)
val run :
  ?platform:Sentry_core.Config.platform ->
  ?variant:Sentry_attacks.Cold_boot.variant ->
  ?backend:Sentry_core.Sentry.backend ->
  Sentry_faults.Plan.t ->
  outcome
