lib/workloads/app.ml: Address_space Bytes Machine Page Page_table Process Sentry_core Sentry_kernel Sentry_soc Sentry_util System Units Vm
