(** Bus-monitoring attacks (§3.1): payload capture off the wire, plus
    the AES access-pattern side channel — full first-round key recovery
    against an uncached cipher, line-granular candidate sets (and
    multi-sample intersection) against a cached one. *)

open Sentry_soc

type t

(** Clamp the probe on the bus. *)
val attach : Machine.t -> t

val detach : t -> unit
val clear : t -> unit

(** Captured transactions, oldest first. *)
val captured : t -> Bus.transaction list

val transaction_count : t -> int

(** Did [secret] cross the bus in the clear (within a transaction or
    spanning two contiguous ones)? *)
val saw_secret : t -> secret:Bytes.t -> bool

(** Observed Te-table read indices (entry = 4 bytes), oldest first. *)
val te_read_indices : t -> table_base:int -> int list

(** Full first-round key recovery from an uncached known-plaintext
    block: the first 16 table reads give the key outright. *)
val recover_key_first_round : t -> table_base:int -> plaintext:Bytes.t -> Bytes.t option

(** Cached-cipher variant: per-position candidate sets from 32-byte
    line fills (sound superset; [None] when no fills were seen —
    e.g. AES_On_SoC). *)
val recover_key_candidates_cached :
  t -> table_base:int -> plaintext:Bytes.t -> int list array option

(** Intersect candidate sets from independent cold-cache samples. *)
val intersect_candidates : int list array -> int list array -> int list array
