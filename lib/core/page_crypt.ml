(** Per-page encryption under the volatile root key.

    Every 4 KB page is CBC-encrypted with a per-page ESSIV-style IV
    derived from (pid, vpn), so identical pages get distinct
    ciphertexts and pages can be decrypted independently and lazily.
    All transforms go through [Aes_on_soc]; the only cipher state in
    play lives on-SoC. *)

open Sentry_soc
open Sentry_crypto
open Sentry_kernel

type t = {
  machine : Machine.t;
  aes : Aes_on_soc.t;
  mutable essiv : Essiv.t; (* replaced when recovery re-keys after power loss *)
  page_buf : Bytes.t; (* reused staging buffer for the frame paths *)
  mutable bytes_encrypted : int;
  mutable bytes_decrypted : int;
}

let create machine ~aes ~volatile_key =
  {
    machine;
    aes;
    essiv = Essiv.create ~key:volatile_key;
    page_buf = Bytes.create Page.size;
    bytes_encrypted = 0;
    bytes_decrypted = 0;
  }

(** [rekey t ~volatile_key] — rebuild the per-page IV derivation under
    a fresh volatile key (crash recovery: the old key died with the
    power).  The AES context itself is re-keyed separately via
    [Aes_on_soc.set_key]; this [t] (and every reference to it, e.g.
    the background pager's) stays valid. *)
let rekey t ~volatile_key = t.essiv <- Essiv.create ~key:volatile_key

(** IV for page [vpn] of process [pid]. *)
let iv t ~pid ~vpn = Essiv.iv t.essiv ~sector:((pid lsl 24) lxor vpn)

let encrypt_bytes t ~pid ~vpn data =
  t.bytes_encrypted <- t.bytes_encrypted + Bytes.length data;
  Aes_on_soc.bulk t.aes ~dir:`Encrypt ~iv:(iv t ~pid ~vpn) data

let decrypt_bytes t ~pid ~vpn data =
  t.bytes_decrypted <- t.bytes_decrypted + Bytes.length data;
  Aes_on_soc.bulk t.aes ~dir:`Decrypt ~iv:(iv t ~pid ~vpn) data

(** Encrypt a frame in place (lock path).  The ciphertext replaces the
    plaintext through the cached path; the lock sequence ends with a
    masked L2 flush so no plaintext survives in unlocked ways.
    Passing through the cipher declassifies: the frame's bytes are
    re-labelled [Ciphertext]. *)
let trace_frame t name ~pid ~vpn ~frame =
  if Sentry_obs.Trace.on () then
    Sentry_obs.Trace.emit
      ~ts:(Clock.now (Machine.clock t.machine))
      ~cat:Sentry_obs.Event.Crypto ~subsystem:"core.page_crypt" name
      ~args:
        [
          ("pid", Sentry_obs.Event.Int pid);
          ("vpn", Sentry_obs.Event.Int vpn);
          ("frame", Sentry_obs.Event.Int frame);
        ]

let encrypt_frame t ~pid ~vpn ~frame =
  trace_frame t "encrypt-frame" ~pid ~vpn ~frame;
  Machine.read_into t.machine frame t.page_buf ~off:0 ~len:Page.size;
  t.bytes_encrypted <- t.bytes_encrypted + Page.size;
  (* fault hook: a reset here dies mid-call — the frame is still
     cleartext in memory (the staging buffer is not addressable) *)
  Sentry_faults.Injector.fire Sentry_faults.Injector.Points.frame_transform;
  (* in place over the staging buffer: read, transform, write back *)
  Aes_on_soc.bulk_into t.aes ~dir:`Encrypt ~iv:(iv t ~pid ~vpn) ~src:t.page_buf ~src_off:0
    ~dst:t.page_buf ~dst_off:0 ~len:Page.size;
  Machine.with_taint t.machine Taint.Ciphertext (fun () ->
      Machine.write_from t.machine frame t.page_buf ~off:0 ~len:Page.size);
  (* fault hook: power loss after the Nth encrypted page fires here —
     ciphertext is in memory but the PTE has not been flagged yet *)
  Sentry_faults.Injector.fire Sentry_faults.Injector.Points.page_encrypted

(** Decrypt a frame in place (lazy unlock path); the recovered bytes
    are secret cleartext again. *)
let decrypt_frame t ~pid ~vpn ~frame =
  trace_frame t "decrypt-frame" ~pid ~vpn ~frame;
  Machine.read_into t.machine frame t.page_buf ~off:0 ~len:Page.size;
  t.bytes_decrypted <- t.bytes_decrypted + Page.size;
  Sentry_faults.Injector.fire Sentry_faults.Injector.Points.frame_transform;
  Aes_on_soc.bulk_into t.aes ~dir:`Decrypt ~iv:(iv t ~pid ~vpn) ~src:t.page_buf ~src_off:0
    ~dst:t.page_buf ~dst_off:0 ~len:Page.size;
  Machine.with_taint t.machine Taint.Secret_cleartext (fun () ->
      Machine.write_from t.machine frame t.page_buf ~off:0 ~len:Page.size);
  Sentry_faults.Injector.fire Sentry_faults.Injector.Points.page_decrypted

let counters t = (t.bytes_encrypted, t.bytes_decrypted)

let reset_counters t =
  t.bytes_encrypted <- 0;
  t.bytes_decrypted <- 0
