(** The built-in invariant suite: one module per rule of the Sentry
    security argument, each phrased over taint provenance rather than
    content, so a passing run certifies the {e mechanism} (secrets
    never flowed off-SoC) and not just a lucky memory image.

    All rules are read-only: they inspect raw arrays, shadow stores
    and registers directly and never issue simulated CPU accesses that
    would themselves generate events. *)

(** No byte of DRAM may carry secret-cleartext taint while the device
    is locked — the paper's core claim (§2). *)
module No_secret_in_dram : Checker.CHECKER

(** No secret-cleartext bytes may cross the external memory bus while
    locked: a FuturePlus-style probe (§3.1) sees every transaction. *)
module No_tainted_bus : Checker.CHECKER

(** A dirty line in a locked way must never be written back (§4.2,
    §4.5 — the stock-flush hazard). *)
module Locked_way_never_evicted : Checker.CHECKER

(** The register file must carry no secret taint once the device is
    locked/suspended (§6.2). *)
module Registers_clean_on_suspend : Checker.CHECKER

(** Every frame freed by a sensitive process must be scrubbed before
    the lock completes — the freed-page barrier of §7. *)
module Freed_pages_zeroed : Checker.CHECKER

(** Secrets parked in iRAM must sit behind a TrustZone DMA deny
    window (§4.4). *)
module Dma_window_excludes_iram : Checker.CHECKER

(** The root keys exist only in the fuse and on-SoC storage.
    Content-based on purpose — this rule guards against flows the
    taint plumbing itself might miss. *)
module Root_key_confined : Checker.CHECKER

(** While locked, [Lock_state], the PTE [encrypted]/[young] bits and
    scheduler parking must agree — the invariant an interrupted lock
    walk breaks and [Sentry.recover] restores. *)
module Locked_state_consistent : sig
  include Checker.CHECKER

  (** The pure audit, independent of the event stream — the fault
      suite calls this directly after recovery. *)
  val audit : Sentry_core.Sentry.t -> t list
end

(** Every built-in rule, in evaluation order. *)
val all : Checker.packed list

(** [List.map Checker.packed_name all]. *)
val names : string list
