(** Shared runner for the Figs 2-5 application macrobenchmarks.

    Each app runs a full cycle on a Nexus 4 configuration (the paper's
    platform for these figures): launch → lock (Fig 4) → unlock +
    resume (Fig 2) → scripted session (Fig 3), with AES energy metered
    throughout (Fig 5). *)

open Sentry_util
open Sentry_soc
open Sentry_core
open Sentry_workloads

type metrics = {
  profile : App.profile;
  lock_s : float;
  lock_mb : float;
  lock_j : float;
  unlock_s : float;
  unlock_mb : float;
  unlock_j : float;
  script_elapsed_s : float;
  script_overhead_pct : float;
  script_mb : float;
}

let mb_of_bytes b = float_of_int b /. float_of_int Units.mib

let run_app (profile : App.profile) =
  let system = System.boot `Nexus4 ~dram_size:(96 * Units.mib) ~seed:(Hashtbl.hash profile.App.app_name) in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Nexus4) in
  let app = App.launch system profile in
  Sentry.mark_sensitive sentry app.App.proc;
  let pc = Sentry.page_crypt sentry in
  (* ----- device lock (Fig 4) ----- *)
  let stats = Sentry.lock sentry in
  let lock_s = stats.Encrypt_on_lock.elapsed_ns /. Units.s in
  let lock_mb = mb_of_bytes stats.Encrypt_on_lock.bytes_encrypted in
  let lock_j = stats.Encrypt_on_lock.energy_j in
  (* ----- unlock + resume (Fig 2) ----- *)
  Page_crypt.reset_counters pc;
  let t0 = Machine.now machine in
  let e0 = Energy.category (Machine.energy machine) "aes" in
  (match Sentry.unlock sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> failwith "Exp_apps: unlock failed");
  App.resume system app;
  let unlock_s = (Machine.now machine -. t0) /. Units.s in
  let _, dec = Page_crypt.counters pc in
  let unlock_mb = mb_of_bytes dec in
  let unlock_j = Energy.category (Machine.energy machine) "aes" -. e0 in
  (* ----- scripted session (Fig 3) ----- *)
  Page_crypt.reset_counters pc;
  let elapsed_ns = App.run_script system app in
  let _, dec = Page_crypt.counters pc in
  let script_elapsed_s = elapsed_ns /. Units.s in
  let nominal = profile.App.script_s in
  {
    profile;
    lock_s;
    lock_mb;
    lock_j;
    unlock_s;
    unlock_mb;
    unlock_j;
    script_elapsed_s;
    script_overhead_pct = 100.0 *. (script_elapsed_s -. nominal) /. nominal;
    script_mb = mb_of_bytes dec;
  }

(** All four apps, computed once and shared by Figs 2-5. *)
let all = lazy (List.map run_app Apps.all)
