(** Bounded admission with explicit backpressure.

    Two independent limits guard the serving loop, and each failure
    mode gets its own verdict so callers (and the shed-rate SLO) can
    tell load shedding from resource saturation apart:

    - [Shed] — the FIFO already holds [depth] requests: classic queue
      overflow under open-loop arrival pressure.
    - [Rejected] — admitting the request would push the pending page
      backlog past [backlog_pages_max]: the model of journal/iRAM
      saturation, where accepting more re-encryption work than the
      crash-consistency journal can describe would be dishonest.

    Page accounting uses the per-request decrypt/re-encrypt footprint
    the serving loop will actually pay (first-touch page plus the
    tenant's eager-DMA churn), so large tenants hit the backlog limit
    first — resource-based rejection is class-aware by construction. *)

type verdict = Queued | Shed | Rejected

let verdict_name = function Queued -> "queued" | Shed -> "shed" | Rejected -> "rejected"

type t = {
  depth : int;
  backlog_pages_max : int;
  q : (Arrivals.request * int) Queue.t;
  mutable backlog_pages : int;
}

let create ~depth ~backlog_pages_max =
  if depth <= 0 then invalid_arg "Admission.create: depth must be positive";
  if backlog_pages_max <= 0 then
    invalid_arg "Admission.create: backlog_pages_max must be positive";
  { depth; backlog_pages_max; q = Queue.create (); backlog_pages = 0 }

let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let backlog_pages t = t.backlog_pages

(* Depth is checked before backlog: a full queue sheds regardless of
   how light the request is, so [Shed] counts pure arrival overload
   and [Rejected] counts page-weight saturation of a queue that still
   had slots.  An empty queue always admits: a tenant whose footprint
   alone exceeds [backlog_pages_max] would otherwise be rejected
   forever, even with the server idle — the cap bounds *pending* work,
   and one oversized request pending is the closest realisable state
   to the bound. *)
let offer t ~pages req =
  if pages <= 0 then invalid_arg "Admission.offer: pages must be positive";
  if Queue.length t.q >= t.depth then Shed
  else if t.backlog_pages + pages > t.backlog_pages_max && not (Queue.is_empty t.q) then
    Rejected
  else begin
    Queue.add (req, pages) t.q;
    t.backlog_pages <- t.backlog_pages + pages;
    Queued
  end

let take_batch t ~max:n =
  if n <= 0 then invalid_arg "Admission.take_batch: max must be positive";
  let rec go k acc =
    if k = 0 then List.rev acc
    else
      match Queue.take_opt t.q with
      | None -> List.rev acc
      | Some (req, pages) ->
          t.backlog_pages <- t.backlog_pages - pages;
          go (k - 1) (req :: acc)
  in
  go n []
