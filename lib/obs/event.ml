(** Structured trace events.

    One event = one architectural occurrence the paper's evaluation
    reasons about: a cache way locking or a line leaving the SoC, a
    bus transaction, a DMA transfer, a page fault, a crypto transform.
    Events carry the simulated timestamp, a {e category} (the event
    taxonomy, stable across subsystems) and a {e subsystem} (the
    component that emitted it — the Chrome exporter renders one lane
    per subsystem). *)

type category =
  | Cache (* PL310: fills, write-backs, bypasses, lockdown, flushes *)
  | Bus (* external-bus transactions *)
  | Dma (* DMA engine transfers and denials *)
  | Irq (* interrupt masking windows *)
  | Sched (* context switches and register spills *)
  | Pagefault (* young-bit traps and background page-in/out *)
  | Crypto (* cipher dispatch and transforms *)
  | Zerod (* freed-page zeroing sweeps *)
  | Lock (* screen-lock state transitions *)
  | Taint (* secret-flow checker violations *)
  | Mem (* iRAM/DRAM/buffer-cache events outside the paths above *)
  | Fault (* injected faults: power loss, resets, DMA errors, bit flips *)
  | Recovery (* crash-recovery passes over interrupted lock/unlock walks *)

let categories =
  [ Cache; Bus; Dma; Irq; Sched; Pagefault; Crypto; Zerod; Lock; Taint; Mem; Fault; Recovery ]

let category_name = function
  | Cache -> "cache"
  | Bus -> "bus"
  | Dma -> "dma"
  | Irq -> "irq"
  | Sched -> "sched"
  | Pagefault -> "pagefault"
  | Crypto -> "crypto"
  | Zerod -> "zerod"
  | Lock -> "lock"
  | Taint -> "taint"
  | Mem -> "mem"
  | Fault -> "fault"
  | Recovery -> "recovery"

let category_of_name s = List.find_opt (fun c -> category_name c = s) categories

let category_index = function
  | Cache -> 0
  | Bus -> 1
  | Dma -> 2
  | Irq -> 3
  | Sched -> 4
  | Pagefault -> 5
  | Crypto -> 6
  | Zerod -> 7
  | Lock -> 8
  | Taint -> 9
  | Mem -> 10
  | Fault -> 11
  | Recovery -> 12

let num_categories = List.length categories

(** Subsystems known to emit events, for [trace --list-categories].
    The list is documentation, not an enum: emitters are free to use
    new ids, which simply appear as new lanes. *)
let known_subsystems =
  [
    "soc.l2";
    "soc.bus";
    "soc.dma";
    "soc.cpu";
    "soc.iram";
    "soc.dram";
    "kernel.vm";
    "kernel.sched";
    "kernel.zerod";
    "kernel.bcache";
    "kernel.dm_crypt";
    "crypto.api";
    "crypto.aes_on_soc";
    "crypto.perf";
    "core.lock_state";
    "core.sentry";
    "core.page_crypt";
    "core.background";
    "core.lock_journal";
    "core.recovery";
    "faults.injector";
    "analysis.engine";
    "workloads.fleet";
  ]

type arg = Int of int | Float of float | Str of string | Bool of bool

type phase =
  | Instant
  | Complete of float (* span: duration in simulated ns *)
  | Counter

type t = {
  ts_ns : float; (* simulated Clock time at emission (span start for Complete) *)
  cat : category;
  subsystem : string;
  name : string;
  phase : phase;
  span : int; (* span id for Complete events (0 = not a tracked span) *)
  parent : int; (* id of the enclosing span open at emission (0 = root) *)
  args : (string * arg) list;
}

let pp_arg ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Str s -> Fmt.string ppf s
  | Bool b -> Fmt.bool ppf b

let pp ppf e =
  Fmt.pf ppf "[%12.1f] %-9s %-18s %s" e.ts_ns (category_name e.cat) e.subsystem e.name;
  (match e.phase with
  | Complete dur -> Fmt.pf ppf " dur=%.1fns" dur
  | Instant | Counter -> ());
  if e.span <> 0 then Fmt.pf ppf " span=%d" e.span;
  if e.parent <> 0 then Fmt.pf ppf " parent=%d" e.parent;
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%a" k pp_arg v) e.args
