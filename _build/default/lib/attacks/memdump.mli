(** Memory images acquired by an attacker, with exact and
    decay-tolerant searches and the Table 2 remanence metric. *)

type t = { label : string; base : int; data : Bytes.t }

val of_bytes : label:string -> base:int -> Bytes.t -> t
val size : t -> int

val contains : t -> Bytes.t -> bool
val find : t -> Bytes.t -> int option

(** Fuzzy search tolerating decayed bytes: some alignment where at
    least [min_match] (fraction) of the bytes agree. *)
val contains_fuzzy : t -> Bytes.t -> min_match:float -> bool

(** Fraction of pattern-aligned slots still intact. *)
val remanence_ratio : t -> pattern:Bytes.t -> float

val pp : Format.formatter -> t -> unit
