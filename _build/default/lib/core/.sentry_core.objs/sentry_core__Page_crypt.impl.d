lib/core/page_crypt.ml: Aes_on_soc Bytes Essiv Machine Page Sentry_crypto Sentry_kernel Sentry_soc
