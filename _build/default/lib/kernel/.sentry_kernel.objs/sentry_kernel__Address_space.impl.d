lib/kernel/address_space.ml: Frame_alloc List Machine Page Page_table Sentry_soc
