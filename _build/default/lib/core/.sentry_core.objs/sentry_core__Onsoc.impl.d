lib/core/onsoc.ml: Config Iram_alloc Locked_cache Machine Memmap Pinned_mem Sentry_soc Trustzone
