(** SHA-256 (FIPS 180-4), built from scratch.

    Needed as a substrate: ESSIV derives its sector-key as a hash of
    the volume key, and [Key_derive] stretches the boot password with
    the fuse secret.  Pure 32-bit arithmetic on OCaml ints. *)

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let mask = 0xffffffff
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let digest_length = 32

(** [digest msg] is the 32-byte SHA-256 of [msg]. *)
let digest msg =
  let h = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
             0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |] in
  let len = Bytes.length msg in
  (* padding: 0x80, zeros, 64-bit big-endian bit length *)
  let padded_len = ((len + 8) / 64 * 64) + 64 in
  let m = Bytes.make padded_len '\000' in
  Bytes.blit msg 0 m 0 len;
  Bytes.set m len '\x80';
  let bitlen = len * 8 in
  for i = 0 to 7 do
    Bytes.set m (padded_len - 1 - i) (Char.chr ((bitlen lsr (8 * i)) land 0xff))
  done;
  let w = Array.make 64 0 in
  for blk = 0 to (padded_len / 64) - 1 do
    let base = blk * 64 in
    for t = 0 to 15 do
      w.(t) <-
        (Char.code (Bytes.get m (base + (4 * t))) lsl 24)
        lor (Char.code (Bytes.get m (base + (4 * t) + 1)) lsl 16)
        lor (Char.code (Bytes.get m (base + (4 * t) + 2)) lsl 8)
        lor Char.code (Bytes.get m (base + (4 * t) + 3))
    done;
    for t = 16 to 63 do
      let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
      let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
      w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
    for t = 0 to 63 do
      let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
      let ch = (!e land !f) lxor (lnot !e land !g) land mask in
      let temp1 = (!hh + s1 + ch + k.(t) + w.(t)) land mask in
      let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
      let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
      let temp2 = (s0 + maj) land mask in
      hh := !g;
      g := !f;
      f := !e;
      e := (!d + temp1) land mask;
      d := !c;
      c := !b;
      b := !a;
      a := (temp1 + temp2) land mask
    done;
    h.(0) <- (h.(0) + !a) land mask;
    h.(1) <- (h.(1) + !b) land mask;
    h.(2) <- (h.(2) + !c) land mask;
    h.(3) <- (h.(3) + !d) land mask;
    h.(4) <- (h.(4) + !e) land mask;
    h.(5) <- (h.(5) + !f) land mask;
    h.(6) <- (h.(6) + !g) land mask;
    h.(7) <- (h.(7) + !hh) land mask
  done;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set out (4 * i) (Char.chr ((h.(i) lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((h.(i) lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((h.(i) lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (h.(i) land 0xff))
  done;
  out

let digest_string s = digest (Bytes.of_string s)

(** HMAC-SHA256 (FIPS 198-1). *)
let hmac ~key msg =
  let block_len = 64 in
  let key = if Bytes.length key > block_len then digest key else key in
  let pad c =
    let b = Bytes.make block_len c in
    for i = 0 to Bytes.length key - 1 do
      Bytes.set b i (Char.chr (Char.code (Bytes.get key i) lxor Char.code c))
    done;
    b
  in
  let ipad = pad '\x36' and opad = pad '\x5c' in
  digest (Bytes.cat opad (digest (Bytes.cat ipad msg)))
