lib/util/table.mli:
