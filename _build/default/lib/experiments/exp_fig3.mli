(** Fig 3: runtime overhead while scripted sessions run after unlock

    See the implementation for methodology notes. *)

val run : unit -> Sentry_util.Table.t list
