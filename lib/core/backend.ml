(** The protection-backend interface (ROADMAP item 3).

    A backend is one complete strategy for protecting sensitive memory
    across a lock/unlock cycle: a lock walk, an unlock walk, the lazy
    fault handler installed while unlocked, the eager-everything
    ablation, a journal granularity and a crash-recovery hook.
    [Sentry] dispatches every walk through the installed backend and
    guards switching ([Sentry.set_backend]) to the [Unlocked] state.

    Four implementations:
    - [Batched] — the paper's encrypt-on-lock through the PR-5
      gather/sort/batch engine (the default);
    - [Per_page] — the page-at-a-time reference pipeline;
    - [Offload] — MemShield-inspired: the same batched walks pipelined
      into a deep high-throughput, high-fixed-latency command queue
      ([Offload_engine]) with explicit completion polling;
    - [No_access] — MProtect-inspired: locked pages become
      inaccessible instead of encrypted; DRAM keeps cleartext (cold
      boot/DMA succeed by design — Table 3 flips), lock is nearly
      free, faults are mapping restores. *)

type kind = Batched | Per_page | Offload | No_access

let kind_name = function
  | Batched -> "batched"
  | Per_page -> "per-page"
  | Offload -> "offload"
  | No_access -> "no-access"

let kind_of_string = function
  | "batched" -> Some Batched
  | "per-page" | "per_page" -> Some Per_page
  | "offload" -> Some Offload
  | "no-access" | "no_access" -> Some No_access
  | _ -> None

let all_kinds = [ Batched; Per_page; Offload; No_access ]

module type S = sig
  val kind : kind
  val name : string

  (** Pages per journal record the lock/unlock walks coalesce —
      recovery's progress counters under-count by at most this. *)
  val journal_coalesce : int

  val lock_walk :
    ?journal:Lock_journal.t ->
    Page_crypt.t ->
    System.t ->
    sensitive:Sentry_kernel.Process.t list ->
    background:(Sentry_kernel.Process.t -> bool) ->
    Encrypt_on_lock.stats

  val unlock_walk :
    ?journal:Lock_journal.t ->
    Page_crypt.t ->
    System.t ->
    sensitive:Sentry_kernel.Process.t list ->
    Decrypt_on_unlock.stats

  (** The eager-everything ablation; returns pages processed. *)
  val unlock_eager :
    Page_crypt.t -> System.t -> sensitive:Sentry_kernel.Process.t list -> int

  (** The lazy handler active while unlocked. *)
  val fault_handler : Page_crypt.t -> Sentry_kernel.Vm.fault_handler

  (** Run before a recovery walk replays the journal: tear down any
      backend state that did not survive the crash. *)
  val on_recover : Page_crypt.t -> unit
end

module Batched_impl : S = struct
  let kind = Batched
  let name = kind_name kind
  let journal_coalesce = Lock_journal.coalesce
  let lock_walk = Encrypt_on_lock.run
  let unlock_walk = Decrypt_on_unlock.run
  let unlock_eager = Decrypt_on_unlock.run_eager
  let fault_handler = Decrypt_on_unlock.fault_handler
  let on_recover _ = ()
end

module Per_page_impl : S = struct
  let kind = Per_page
  let name = kind_name kind
  let journal_coalesce = 1
  let lock_walk = Encrypt_on_lock.run_per_page
  let unlock_walk = Decrypt_on_unlock.run_per_page
  let unlock_eager = Decrypt_on_unlock.run_eager_per_page
  let fault_handler = Decrypt_on_unlock.fault_handler
  let on_recover _ = ()
end

module Offload_impl : S = struct
  let kind = Offload
  let name = kind_name kind
  let journal_coalesce = Lock_journal.coalesce
  let lock_walk = Encrypt_on_lock.run_offload
  let unlock_walk = Decrypt_on_unlock.run_offload
  let unlock_eager = Decrypt_on_unlock.run_eager_offload
  let fault_handler = Decrypt_on_unlock.fault_handler_offload

  (* the command queue does not survive a crash; recovery's walk
     re-submits whatever the journal says is outstanding *)
  let on_recover pc = Sentry_crypto.Offload_engine.reset (Page_crypt.engine pc)
end

module No_access_impl : S = struct
  let kind = No_access
  let name = kind_name kind
  let journal_coalesce = 1
  let lock_walk = Encrypt_on_lock.run_no_access
  let unlock_walk = Decrypt_on_unlock.run_no_access
  let unlock_eager = Decrypt_on_unlock.run_eager_no_access
  let fault_handler = Decrypt_on_unlock.fault_handler_no_access
  let on_recover _ = ()
end

let of_kind : kind -> (module S) = function
  | Batched -> (module Batched_impl)
  | Per_page -> (module Per_page_impl)
  | Offload -> (module Offload_impl)
  | No_access -> (module No_access_impl)
