(** CPU core state relevant to Sentry: the register file (where
    sensitive cipher state lives during computation) and the IRQ
    enable flag.  A context switch with IRQs enabled spills the
    registers to a DRAM kernel stack; the [onsoc_*] bracket prevents
    that (§6.2). *)

type t

val num_regs : int
val reg_bytes : int

val create : clock:Clock.t -> t
val irqs_enabled : t -> bool

(** Load sensitive working state into the register file; [taint]
    labels the contents (the file carries one joint label). *)
val load_regs : t -> ?taint:Taint.level -> Bytes.t -> unit

val regs_snapshot : t -> Bytes.t

(** Current joint taint label of the register file; [zero_regs]
    resets it to [Public]. *)
val reg_taint : t -> Taint.level

val zero_regs : t -> unit

(** Plain IRQ disable/enable (no zeroing) — generic kernel code. *)
val disable_irqs : t -> unit

val enable_irqs : t -> unit

(** The paper's [onsoc_disable_irq()] macro. *)
val onsoc_disable_irq : t -> unit

(** The paper's [onsoc_enable_irq()]: zero every register, then
    re-enable interrupts. *)
val onsoc_enable_irq : t -> unit

(** Fault-injection knob: disabling makes [onsoc_enable_irq] skip the
    register scrub (the §6.2 leak the macro prevents). *)
val set_zeroing_enabled : t -> bool -> unit

(** Longest observed interrupts-off window (the paper measures
    ~160 us on average). *)
val max_irq_window_ns : t -> float

(** The AES_On_SoC computation bracket; exception-safe. *)
val with_irqs_off : t -> (unit -> 'a) -> 'a
