(** Screen-lock state machine with PIN check and deep-lock (§1). *)

type state = Unlocked | Locking | Locked | Unlocking | Deep_locked

type t

val create : pin:string -> max_attempts:int -> t
val state : t -> state
val state_name : state -> string

exception Invalid_transition of string

(** Unlocked → Locking.  @raise Invalid_transition otherwise. *)
val begin_lock : t -> unit

(** Locking → Locked. *)
val finish_lock : t -> unit

type unlock_error =
  | Bad_pin
  | Deep_lock_engaged  (** too many wrong PINs; device refuses all PINs *)

(** Locked → Unlocking on a correct PIN; wrong attempts accumulate
    toward deep-lock and reset on success. *)
val begin_unlock : t -> pin:string -> (unit, unlock_error) result

(** Unlocking → Unlocked. *)
val finish_unlock : t -> unit

(** Unlocking → Locked, without counting an unlock: crash recovery
    rolled a half-decrypted unlock back to fully-encrypted. *)
val abort_unlock : t -> unit

(** (locks completed, unlocks completed, consecutive failed PINs). *)
val counts : t -> int * int * int

(** [on_transition t f] — [f] fires after every state change, in
    registration order (analysis hooks). *)
val on_transition : t -> (old_state:state -> new_state:state -> unit) -> unit

val clear_observers : t -> unit
