(** Byte-buffer helpers shared by the simulator and the attack tools. *)

(** [fill_pattern b pat] tiles [pat] across the whole of [b].  Seeds
    one copy of [pat], then doubles the filled prefix with [blit] —
    bytes are identical to the naive per-byte tiling, without the
    per-byte division over multi-megabyte workload regions. *)
let fill_pattern b pat =
  let pn = Bytes.length pat in
  if pn = 0 then invalid_arg "Bytes_util.fill_pattern: empty pattern";
  let n = Bytes.length b in
  let head = min pn n in
  Bytes.blit pat 0 b 0 head;
  let filled = ref head in
  while !filled < n do
    let chunk = min !filled (n - !filled) in
    Bytes.blit b 0 b !filled chunk;
    filled := !filled + chunk
  done

(** [count_pattern b pat] counts non-overlapping, pattern-aligned
    occurrences of [pat] in [b] — the measurement used by the paper's
    remanence experiment (fill memory with an 8-byte pattern, power
    cycle, grep and count). *)
let count_pattern b pat =
  let pn = Bytes.length pat in
  if pn = 0 then invalid_arg "Bytes_util.count_pattern: empty pattern";
  let n = Bytes.length b in
  let count = ref 0 in
  let i = ref 0 in
  while !i + pn <= n do
    let rec matches j = j = pn || (Bytes.get b (!i + j) = Bytes.get pat j && matches (j + 1)) in
    if matches 0 then incr count;
    i := !i + pn
  done;
  !count

(** [find b needle] returns the offset of the first occurrence of
    [needle] in [b], or [None]. Naive scan; dumps are tens of MB at most. *)
let find b needle =
  let nn = Bytes.length needle and n = Bytes.length b in
  if nn = 0 then Some 0
  else
    let limit = n - nn in
    let rec scan i =
      if i > limit then None
      else
        let rec matches j =
          j = nn || (Bytes.unsafe_get b (i + j) = Bytes.unsafe_get needle j && matches (j + 1))
        in
        if matches 0 then Some i else scan (i + 1)
    in
    scan 0

(** [contains b needle] tests whether [needle] occurs anywhere in [b]. *)
let contains b needle = Option.is_some (find b needle)

(** [xor_into ~src ~dst] xors [src] into [dst] in place.
    Lengths must match. *)
let xor_into ~src ~dst =
  let n = Bytes.length src in
  if Bytes.length dst <> n then invalid_arg "Bytes_util.xor_into: length mismatch";
  for i = 0 to n - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get src i) lxor Char.code (Bytes.unsafe_get dst i)))
  done

(** Constant-time equality (length leak only); attacks must not get a
    timing oracle from the simulator's own comparisons. *)
let equal_ct a b =
  let n = Bytes.length a in
  if Bytes.length b <> n then false
  else begin
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc lor (Char.code (Bytes.unsafe_get a i) lxor Char.code (Bytes.unsafe_get b i))
    done;
    !acc = 0
  end

(** [is_zero b] is true when every byte of [b] is ['\000']. *)
let is_zero b =
  let n = Bytes.length b in
  let rec go i = i = n || (Bytes.unsafe_get b i = '\000' && go (i + 1)) in
  go 0

(** [zero b] overwrites [b] with zero bytes. *)
let zero b = Bytes.fill b 0 (Bytes.length b) '\000'
