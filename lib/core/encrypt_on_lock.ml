(** The device-lock path (§2, §7).

    When the screen locks, Sentry:
    + waits for the zeroing thread to scrub freed pages (so no
      sensitive plaintext lingers in de-allocated frames);
    + walks the page tables of every sensitive process and encrypts
      each present page in place, honouring the shared-page policy;
    + clears every young bit so post-unlock accesses trap;
    + parks non-background sensitive processes on the un-schedulable
      queue;
    + flushes the L2 (masked) so no plaintext survives in unlocked
      cache ways. *)

open Sentry_soc
open Sentry_kernel

type stats = {
  pages_encrypted : int;
  bytes_encrypted : int;
  pages_skipped_shared : int;
  freed_pages_zeroed : int;
  elapsed_ns : float;
  energy_j : float;
}

let encrypt_process ?journal pc ~all_procs proc =
  let pid = proc.Process.pid in
  let aspace = proc.Process.aspace in
  let pages = ref 0 and skipped = ref 0 in
  List.iter
    (fun region ->
      if Share_policy.should_encrypt ~all_procs region then
        List.iter
          (fun (vpn, pte) ->
            if pte.Page_table.present && not pte.Page_table.encrypted then begin
              Page_crypt.encrypt_frame pc ~pid ~vpn ~frame:pte.Page_table.frame;
              (* ordering is fail-secure: ciphertext lands in memory,
                 then the PTE flags, then the journal.  A crash in any
                 gap at worst re-encrypts a page on recovery — never
                 leaves cleartext believed encrypted. *)
              pte.Page_table.encrypted <- true;
              incr pages;
              Option.iter (fun j -> Lock_journal.record j ~pid) journal
            end;
            pte.Page_table.young <- false)
          (Address_space.region_ptes aspace region)
      else skipped := !skipped + region.Address_space.npages)
    (Address_space.regions aspace);
  (!pages, !skipped)

(** [run pc system ~sensitive ~background] executes the full lock
    sequence over the sensitive process set.  With [?journal], walk
    progress is journaled per page and the pass committed at the end,
    making an interrupted lock recoverable ([Sentry.recover]).  The
    walk itself is idempotent (keyed off PTE [encrypted] bits), so
    recovery simply re-runs it. *)
let run ?journal pc (system : System.t) ~sensitive ~background =
  let machine = system.System.machine in
  let clock = Machine.clock machine in
  let start = Clock.now clock in
  let energy0 = Energy.category (Machine.energy machine) "aes" in
  (* freed-page barrier *)
  let zeroed = Zerod.drain system.System.zerod in
  let pages = ref 0 and skipped = ref 0 in
  Option.iter
    (fun j ->
      let pid = match sensitive with p :: _ -> p.Process.pid | [] -> 0 in
      Lock_journal.begin_pass j Lock_journal.Lock_pass ~pid)
    journal;
  List.iter
    (fun proc ->
      let p, s = encrypt_process ?journal pc ~all_procs:system.System.procs proc in
      pages := !pages + p;
      skipped := !skipped + s;
      (* the Locked_out guard makes parking idempotent for the
         recovery re-run (make_unschedulable would double-push) *)
      if (not (background proc)) && proc.Process.state <> Process.Locked_out then
        Sched.make_unschedulable system.System.sched proc)
    sensitive;
  Option.iter Lock_journal.commit journal;
  (* no plaintext may survive in unlocked cache ways *)
  Pl310.flush_masked (Machine.l2 machine);
  {
    pages_encrypted = !pages;
    bytes_encrypted = !pages * Page.size;
    pages_skipped_shared = !skipped;
    freed_pages_zeroed = zeroed;
    elapsed_ns = Clock.elapsed clock ~since:start;
    energy_j = Energy.category (Machine.energy machine) "aes" -. energy0;
  }
