lib/experiments/exp_fig1.ml: Address_space Bytes Bytes_util Config Dram List Machine Page Page_table Pl310 Printf Process Sentry Sentry_core Sentry_kernel Sentry_soc Sentry_util System Table Units Vm
