lib/crypto/aes_block.ml: Accessor Aes_key Aes_state Aes_tables Array Bytes Char List Mode
