(** Integration tests: whole-system scenarios crossing every library,
    plus the paper's headline security invariants end to end. *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core
open Sentry_attacks

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_bytes = Alcotest.(check bytes)

let secret = Bytes.of_string "INTEGRATION-SECRET-0xF00D"

let launch ?(bytes = 64 * Units.kib) ?(seed = 1) ?(platform = `Tegra3) () =
  let system = System.boot platform ~seed in
  let sentry = Sentry.install system (Config.default platform) in
  let proc = System.spawn system ~name:"victim" ~bytes in
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  System.fill_region system proc region secret;
  Pl310.flush_masked (Machine.l2 (System.machine system));
  Sentry.mark_sensitive sentry proc;
  (system, sentry, proc, region)

(* -------------------- headline invariant sweeps -------------------- *)

(* scan ALL of DRAM for the secret at every step of a full cycle *)
let test_full_cycle_dram_audit () =
  let system, sentry, proc, region = launch () in
  let machine = System.machine system in
  let dram () = Bytes_util.contains (Dram.raw (Machine.dram machine)) secret in
  checkb "unlocked: plaintext present (by design)" true (dram ());
  ignore (Sentry.lock sentry);
  checkb "locked: no plaintext" false (dram ());
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> Alcotest.fail "unlock");
  checkb "post-unlock, untouched: still ciphertext" false (dram ());
  ignore (Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:8);
  Pl310.flush_masked (Machine.l2 machine);
  checkb "after touch: plaintext again (unlocked device)" true (dram ())

let test_repeated_cycles_stable () =
  let system, sentry, proc, region = launch () in
  for cycle = 1 to 8 do
    ignore (Sentry.lock sentry);
    checkb
      (Printf.sprintf "cycle %d ciphertext" cycle)
      false
      (Bytes_util.contains (Dram.raw (Machine.dram (System.machine system))) secret);
    (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> Alcotest.fail "unlock");
    check_bytes
      (Printf.sprintf "cycle %d readback" cycle)
      secret
      (Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:(Bytes.length secret))
  done

let test_multi_app_mixed_sensitivity () =
  let system = System.boot `Tegra3 ~seed:3 in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let machine = System.machine system in
  let mk name content =
    let p = System.spawn system ~name ~bytes:(32 * Units.kib) in
    let r = List.hd (Address_space.regions p.Process.aspace) in
    System.fill_region system p r (Bytes.of_string content);
    (p, r)
  in
  let bank, bank_r = mk "bank" "BANKDATA" in
  let game, game_r = mk "game" "GAMEDATA" in
  let mail, mail_r = mk "mail" "MAILDATA" in
  Sentry.mark_sensitive sentry bank;
  Sentry.mark_sensitive sentry mail;
  Pl310.flush_masked (Machine.l2 machine);
  ignore (Sentry.lock sentry);
  let dram = Dram.raw (Machine.dram machine) in
  checkb "bank encrypted" false (Bytes_util.contains dram (Bytes.of_string "BANKDATA"));
  checkb "mail encrypted" false (Bytes_util.contains dram (Bytes.of_string "MAILDATA"));
  checkb "game untouched" true (Bytes_util.contains dram (Bytes.of_string "GAMEDATA"));
  checkb "game still runnable" true (game.Process.state = Process.Runnable);
  check_bytes "game reads fine while locked" (Bytes.of_string "GAMEDATA")
    (Vm.read system.System.vm game ~vaddr:game_r.Address_space.vstart ~len:8);
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> Alcotest.fail "unlock");
  check_bytes "bank restored" (Bytes.of_string "BANKDATA")
    (Vm.read system.System.vm bank ~vaddr:bank_r.Address_space.vstart ~len:8);
  check_bytes "mail restored" (Bytes.of_string "MAILDATA")
    (Vm.read system.System.vm mail ~vaddr:mail_r.Address_space.vstart ~len:8)

let test_shared_pages_policy_end_to_end () =
  let system = System.boot `Tegra3 ~seed:4 in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let machine = System.machine system in
  let p1 = System.spawn system ~name:"sens1" ~bytes:4096 in
  let p2 = System.spawn system ~name:"sens2" ~bytes:4096 in
  let p3 = System.spawn system ~name:"plain" ~bytes:4096 in
  (* group "ss": shared between two sensitive apps *)
  let r_ss =
    Address_space.map_region p1.Process.aspace ~name:"ss" ~kind:(Address_space.Shared "ss")
      ~bytes:4096
  in
  Address_space.share_region p2.Process.aspace ~from_space:p1.Process.aspace r_ss;
  System.fill_region system p1 r_ss (Bytes.of_string "SHARED-SENS!");
  (* group "sp": shared with the non-sensitive app *)
  let r_sp =
    Address_space.map_region p1.Process.aspace ~name:"sp" ~kind:(Address_space.Shared "sp")
      ~bytes:4096
  in
  Address_space.share_region p3.Process.aspace ~from_space:p1.Process.aspace r_sp;
  System.fill_region system p1 r_sp (Bytes.of_string "SHARED-PLAIN");
  Sentry.mark_sensitive sentry p1;
  Sentry.mark_sensitive sentry p2;
  Pl310.flush_masked (Machine.l2 machine);
  ignore (Sentry.lock sentry);
  let dram = Dram.raw (Machine.dram machine) in
  checkb "sensitive-only share encrypted" false
    (Bytes_util.contains dram (Bytes.of_string "SHARED-SENS!"));
  checkb "mixed share left alone" true
    (Bytes_util.contains dram (Bytes.of_string "SHARED-PLAIN"));
  (* the innocent app can still read the mixed share while locked *)
  check_bytes "p3 reads shared page" (Bytes.of_string "SHARED-PLAIN")
    (Vm.read system.System.vm p3 ~vaddr:r_sp.Address_space.vstart ~len:12)

(* -------------------------- suspend cycle -------------------------- *)

let test_suspend_resume_cycle () =
  let system, sentry, proc, region = launch ~seed:5 () in
  let machine = System.machine system in
  let susp = Suspend.create sentry in
  (* suspend encrypts *)
  (match Suspend.suspend susp with
  | Some stats -> checkb "encrypted" true (stats.Encrypt_on_lock.pages_encrypted > 0)
  | None -> Alcotest.fail "expected a lock pass");
  checkb "suspended" true (Suspend.suspended susp);
  checkb "no plaintext while asleep" false
    (Bytes_util.contains (Dram.raw (Machine.dram machine)) secret);
  (* incoming call wakes the device; still locked *)
  Suspend.wake susp ~reason:Suspend.Incoming_call ~slept_s:600.0;
  checkb "still locked" true (Sentry.is_locked sentry);
  (* suspend again: no second encryption pass *)
  checkb "no re-encryption" true (Suspend.suspend susp = None);
  (* user wakes and unlocks *)
  (match Suspend.wake_and_unlock susp ~pin:"1234" ~slept_s:60.0 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unlock");
  check_bytes "data back" secret
    (Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:(Bytes.length secret));
  let suspends, wakes = Suspend.counts susp in
  checki "suspend count" 2 suspends;
  checki "wake reasons" 2 (List.length wakes)

let test_suspend_background_service () =
  let system = System.boot `Tegra3 ~seed:6 in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let proc = System.spawn system ~name:"mailer" ~bytes:(64 * Units.kib) in
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  System.fill_region system proc region secret;
  Sentry.mark_sensitive sentry proc;
  Sentry.enable_background sentry proc;
  let susp = Suspend.create sentry in
  ignore (Suspend.suspend susp);
  (* three timer wakes: each polls mail while the device stays locked *)
  for i = 1 to 3 do
    let data =
      Suspend.background_service_cycle susp ~slept_s:900.0 (fun () ->
          Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:8)
    in
    check_bytes (Printf.sprintf "poll %d" i) (Bytes.sub secret 0 8) data;
    checkb "locked throughout" true (Sentry.is_locked sentry)
  done;
  checkb "still no plaintext in DRAM" false
    (Bytes_util.contains (Dram.raw (Machine.dram (System.machine system))) secret)

let test_suspend_background_cycle_exception_safe () =
  let _, sentry, _, _ = launch ~seed:9 () in
  let susp = Suspend.create sentry in
  ignore (Suspend.suspend susp);
  let suspends0, _ = Suspend.counts susp in
  (* a service that dies mid-cycle must not strand the device awake *)
  (match Suspend.background_service_cycle susp ~slept_s:900.0 (fun () -> failwith "service crashed") with
  | (_ : unit) -> Alcotest.fail "the service exception must propagate"
  | exception Failure msg -> Alcotest.(check string) "original exception" "service crashed" msg);
  checkb "re-suspended despite the crash" true (Suspend.suspended susp);
  checkb "still locked" true (Sentry.is_locked sentry);
  let suspends1, _ = Suspend.counts susp in
  checki "re-suspension went through suspend" (suspends0 + 1) suspends1;
  (* the state machine is intact: a clean cycle and a user unlock work *)
  checki "next cycle fine" 42 (Suspend.background_service_cycle susp ~slept_s:900.0 (fun () -> 42));
  checkb "suspended again" true (Suspend.suspended susp);
  match Suspend.wake_and_unlock susp ~pin:"1234" ~slept_s:10.0 with
  | Ok _ -> checkb "unlocked" false (Sentry.is_locked sentry)
  | Error _ -> Alcotest.fail "unlock after a crashed cycle"

let test_suspend_errors () =
  let _, sentry, _, _ = launch ~seed:7 () in
  let susp = Suspend.create sentry in
  Alcotest.check_raises "wake while awake" Suspend.Not_suspended (fun () ->
      Suspend.wake susp ~reason:Suspend.User_interaction ~slept_s:1.0);
  ignore (Suspend.suspend susp);
  Alcotest.check_raises "double suspend" Suspend.Already_suspended (fun () ->
      ignore (Suspend.suspend susp))

(* ------------------------ stock-flush danger ----------------------- *)

let test_stock_flush_would_leak_sentry_prevents () =
  (* reproduce the paper's discovery end to end: if any kernel path
     ran the stock full flush while Sentry holds plaintext in locked
     ways, the plaintext would hit DRAM.  Sentry's patched flush
     (masked) does not. *)
  let system = System.boot `Tegra3 ~seed:8 in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let proc = System.spawn system ~name:"bg" ~bytes:(16 * Units.kib) in
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  System.fill_region system proc region secret;
  Sentry.mark_sensitive sentry proc;
  Sentry.enable_background sentry proc;
  ignore (Sentry.lock sentry);
  (* fault a page into the locked cache: plaintext now on-SoC *)
  ignore (Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:8);
  let dram = Dram.raw (Machine.dram machine) in
  (* the Sentry-patched maintenance path: safe *)
  Pl310.flush_masked (Machine.l2 machine);
  checkb "masked flush safe" false (Bytes_util.contains dram secret);
  (* the stock path the paper had to eliminate: leaks *)
  Pl310.flush_all_stock (Machine.l2 machine);
  checkb "stock flush leaks" true (Bytes_util.contains dram secret)

(* ----------------------- dm-crypt end to end ----------------------- *)

let test_dm_crypt_full_stack_with_sentry () =
  let system = System.boot `Tegra3 ~seed:9 in
  let machine = System.machine system in
  ignore (Sentry.install system (Config.default `Tegra3));
  let dev = Block_dev.create machine ~kind:Block_dev.Ramdisk ~size:(512 * Units.kib) in
  let key = Prng.bytes (Prng.create ~seed:91) 16 in
  let dm = Dm_crypt.create ~api:system.System.crypto_api ~key (Block_dev.target dev) in
  checkb "picked aes-on-soc" true (Dm_crypt.cipher_name dm = "aes-on-soc");
  let cache = Buffer_cache.create machine ~capacity_pages:32 (Dm_crypt.target dm) in
  let fs = Ramfs.create (Buffer_cache.target cache) in
  let f = Ramfs.create_file fs ~name:"diary.txt" ~size:8192 in
  Ramfs.write fs f ~off:0 secret;
  Buffer_cache.sync cache;
  (* the medium holds ciphertext *)
  checkb "flash ciphertext" false (Bytes_util.contains (Block_dev.raw dev) secret);
  (* and a cold boot recovers neither the data nor the volume key *)
  Pl310.flush_masked (Machine.l2 machine);
  let keys = Cold_boot.recover_keys machine Cold_boot.Os_reboot in
  checkb "no key schedules in DRAM" true (not (List.exists (Bytes.equal key) keys));
  (* file contents still decrypt correctly (fresh mapping, same key) *)
  let dm2 = Dm_crypt.create ~api:system.System.crypto_api ~key (Block_dev.target dev) in
  let fs2 = Ramfs.create (Dm_crypt.target dm2) in
  let f2 = Ramfs.create_file fs2 ~name:"diary.txt" ~size:8192 in
  ignore f2;
  let back = Blockio.read (Dm_crypt.target dm2) ~off:0 ~len:(Bytes.length secret) in
  check_bytes "volume still readable" secret back

(* ----------------------- minimum footprint ------------------------- *)

let test_minimum_two_page_configuration () =
  (* §7: Sentry works with just two on-SoC pages — one for AES_On_SoC,
     one for the page being transformed — albeit slowly. *)
  let system = System.boot `Tegra3 ~seed:10 in
  let config =
    {
      (Config.default `Tegra3) with
      Config.max_locked_ways = 1;
      background_budget_bytes = 4 * 4096 (* key page + ctx page + 1 work page + slack *);
    }
  in
  let sentry = Sentry.install system config in
  let proc = System.spawn system ~name:"tiny" ~bytes:(32 * Units.kib) in
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  System.fill_region system proc region secret;
  (* the pattern is 25 bytes, so page starts fall mid-pattern: record
     the expected prefix of each page before locking *)
  let expected =
    Array.init 8 (fun i ->
        Vm.read system.System.vm proc ~vaddr:(region.Address_space.vstart + (i * 4096)) ~len:8)
  in
  Sentry.mark_sensitive sentry proc;
  Sentry.enable_background sentry proc;
  ignore (Sentry.lock sentry);
  (* touch every page: with a 1-2 page pool this thrashes, but works *)
  for i = 0 to 7 do
    check_bytes "correct under thrash" expected.(i)
      (Vm.read system.System.vm proc ~vaddr:(region.Address_space.vstart + (i * 4096)) ~len:8)
  done;
  let bg = Option.get (Sentry.background_engine sentry) in
  let page_ins, page_outs = Background.stats bg in
  checkb "heavy paging" true (page_ins >= 8 && page_outs >= 6);
  checkb "no plaintext" false
    (Bytes_util.contains (Dram.raw (Machine.dram (System.machine system))) secret)

(* ------------------------ table-free cipher ------------------------ *)

let test_aes_ct_matches_fips () =
  let hexd = Hex.decode in
  List.iter
    (fun (k, pt, ct) ->
      let key = Sentry_crypto.Aes_ct.expand (hexd k) in
      let out = Bytes.create 16 in
      Sentry_crypto.Aes_ct.encrypt_block key (hexd pt) 0 out 0;
      check_bytes "ct" (hexd ct) out;
      let dec = Bytes.create 16 in
      Sentry_crypto.Aes_ct.decrypt_block key (hexd ct) 0 dec 0;
      check_bytes "pt" (hexd pt) dec)
    [
      ( "2b7e151628aed2a6abf7158809cf4f3c",
        "3243f6a8885a308d313198a2e0370734",
        "3925841d02dc09fbdc118597196a0b32" );
      ( "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "8ea2b7ca516745bfeafc49904b496089" );
    ]

let test_aes_ct_agrees_with_fast_on_random () =
  let p = Prng.create ~seed:11 in
  for _ = 1 to 50 do
    let key = Prng.bytes p 16 in
    let pt = Prng.bytes p 16 in
    let want = Sentry_crypto.Aes.encrypt_block_copy (Sentry_crypto.Aes.expand key) pt in
    let got = Bytes.create 16 in
    Sentry_crypto.Aes_ct.encrypt_block (Sentry_crypto.Aes_ct.expand key) pt 0 got 0;
    check_bytes "agree" want got
  done

let test_aes_ct_cbc_via_mode () =
  let key = Bytes.make 16 'k' and iv = Bytes.make 16 'i' in
  let data = Bytes.make 64 'd' in
  let want = Sentry_crypto.Mode.cbc_encrypt (Sentry_crypto.Mode.of_key (Sentry_crypto.Aes.expand key)) ~iv data in
  let got =
    Sentry_crypto.Mode.cbc_encrypt (Sentry_crypto.Aes_ct.cipher (Sentry_crypto.Aes_ct.expand key)) ~iv data
  in
  check_bytes "cbc agree" want got

let test_two_background_apps_share_pool () =
  (* two sensitive background apps page through the same locked pool
     while a non-sensitive app keeps running -- contents must never
     cross and DRAM stays clean *)
  let system = System.boot `Tegra3 ~seed:55 in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let vm = system.System.vm in
  let mk name tag =
    let p = System.spawn system ~name ~bytes:(48 * Page.size) in
    let r = List.hd (Address_space.regions p.Process.aspace) in
    System.fill_region system p r (Bytes.of_string tag);
    Sentry.mark_sensitive sentry p;
    Sentry.enable_background sentry p;
    (p, r)
  in
  let mail, mail_r = mk "mail" "MAILPAGE" in
  let cal, cal_r = mk "calendar" "CALEPAGE" in
  let game = System.spawn system ~name:"game" ~bytes:(8 * Page.size) in
  let game_r = List.hd (Address_space.regions game.Process.aspace) in
  System.fill_region system game game_r (Bytes.of_string "GAMEPAGE");
  ignore (Sentry.lock sentry);
  let dram = Dram.raw (Machine.dram (System.machine system)) in
  (* interleave accesses: pool (62 pages) < combined WS (96 pages) *)
  for i = 0 to 47 do
    check_bytes "mail page" (Bytes.of_string "MAILPAGE")
      (Vm.read vm mail ~vaddr:(mail_r.Address_space.vstart + (i * Page.size)) ~len:8);
    check_bytes "calendar page" (Bytes.of_string "CALEPAGE")
      (Vm.read vm cal ~vaddr:(cal_r.Address_space.vstart + (i * Page.size)) ~len:8);
    check_bytes "game page (not sentry-managed)" (Bytes.of_string "GAMEPAGE")
      (Vm.read vm game ~vaddr:(game_r.Address_space.vstart + ((i mod 8) * Page.size)) ~len:8)
  done;
  checkb "no mail plaintext in DRAM" false (Bytes_util.contains dram (Bytes.of_string "MAILPAGE"));
  checkb "no calendar plaintext in DRAM" false
    (Bytes_util.contains dram (Bytes.of_string "CALEPAGE"));
  let bg = Option.get (Sentry.background_engine sentry) in
  let page_ins, page_outs = Background.stats bg in
  checkb "cross-process thrash" true (page_ins >= 96 && page_outs >= 30);
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> Alcotest.fail "unlock");
  check_bytes "mail intact after unlock" (Bytes.of_string "MAILPAGE")
    (Vm.read vm mail ~vaddr:mail_r.Address_space.vstart ~len:8)

(* ------------------------ failure injection ------------------------ *)

let test_attack_during_locking_window () =
  (* The encrypt-on-lock pass is not atomic: a device stolen mid-lock
     (power cut before the pass completes) still has the un-encrypted
     tail in DRAM.  Sentry cannot close this window — it can only make
     it short (Fig 4: ~1s) — so the simulator must show it exists. *)
  let system = System.boot `Tegra3 ~seed:51 in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let proc = System.spawn system ~name:"victim" ~bytes:(64 * Units.kib) in
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  System.fill_region system proc region secret;
  Pl310.flush_masked (Machine.l2 machine);
  Sentry.mark_sensitive sentry proc;
  (* interrupt the lock by encrypting only half the pages by hand *)
  let pc = Sentry.page_crypt sentry in
  List.iteri
    (fun i (vpn, pte) ->
      if i < region.Address_space.npages / 2 then begin
        Page_crypt.encrypt_frame pc ~pid:proc.Process.pid ~vpn ~frame:pte.Page_table.frame;
        pte.Page_table.encrypted <- true
      end)
    (Address_space.region_ptes proc.Process.aspace region);
  Pl310.flush_masked (Machine.l2 machine);
  (* the unencrypted tail is still exposed *)
  checkb "mid-lock window exists" true
    (Cold_boot.succeeds machine Cold_boot.Os_reboot ~secret);
  (* whereas a completed lock pass is not *)
  let system2, sentry2, _, _ = launch ~seed:52 () in
  ignore (Sentry.lock sentry2);
  checkb "completed lock safe" false
    (Cold_boot.succeeds (System.machine system2) Cold_boot.Os_reboot ~secret)

let test_dma_tamper_no_integrity_claim () =
  (* Sentry provides confidentiality, not integrity (CBC, no MAC): a
     DMA write into an encrypted page is not detected — it decrypts to
     garbage.  TrustZone can deny the windows that matter; this test
     documents the residual behaviour on an unprotected frame. *)
  let system, sentry, proc, region = launch ~seed:53 () in
  let machine = System.machine system in
  ignore (Sentry.lock sentry);
  let _, pte = List.hd (Address_space.region_ptes proc.Process.aspace region) in
  (match Dma_attack.inject machine ~addr:pte.Page_table.frame (Bytes.make 32 '\xAA') with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "frame not TrustZone-protected, write should land");
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> Alcotest.fail "unlock");
  let back = Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:16 in
  checkb "tamper corrupts silently (no integrity)" false (Bytes.equal back (Bytes.sub secret 0 16))

let test_deep_lock_survives_reboot_of_state_machine () =
  (* once deep-locked, even a correct PIN is refused until reprovision *)
  let _, sentry, _, _ = launch ~seed:54 () in
  ignore (Sentry.lock sentry);
  for _ = 1 to 5 do
    ignore (Sentry.unlock sentry ~pin:"0000")
  done;
  (match Sentry.unlock sentry ~pin:"1234" with
  | Error Lock_state.Deep_lock_engaged -> ()
  | _ -> Alcotest.fail "deep lock must hold");
  checkb "state" true (Sentry.state sentry = Lock_state.Deep_locked)

let test_cold_boot_during_background_loses_nothing_to_attacker () =
  (* A cold boot strikes while background pages are decrypted in the
     locked cache: the attacker gets nothing (cache is on-SoC, DRAM is
     ciphertext).  The flip side is also by design: the volatile key
     dies with the boot, so the ciphertext is gone for everyone --
     exactly the semantics of volatile RAM. *)
  let system = System.boot `Tegra3 ~seed:61 in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let proc = System.spawn system ~name:"bg" ~bytes:(32 * Units.kib) in
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  System.fill_region system proc region secret;
  Sentry.mark_sensitive sentry proc;
  Sentry.enable_background sentry proc;
  ignore (Sentry.lock sentry);
  (* pages live decrypted in the locked cache right now *)
  for i = 0 to 7 do
    ignore (Vm.read system.System.vm proc ~vaddr:(region.Address_space.vstart + (i * 4096)) ~len:8)
  done;
  checkb "attacker gets nothing" false
    (Cold_boot.succeeds machine Cold_boot.Device_reflash ~secret);
  checkb "no key schedules either" true
    (let d, _denied = Dma_attack.dump machine ~target:`Dram in
     Key_finder.scan d = [])

let test_killing_sensitive_app_while_locked () =
  (* the app's (encrypted) frames go to the dirty list; the next lock
     pass's zeroing barrier scrubs them *)
  let system = System.boot `Tegra3 ~seed:62 in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let proc = System.spawn system ~name:"doomed" ~bytes:(16 * Units.kib) in
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  System.fill_region system proc region secret;
  Sentry.mark_sensitive sentry proc;
  ignore (Sentry.lock sentry);
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> Alcotest.fail "unlock");
  System.kill system proc;
  checkb "frames parked dirty" true
    (Sentry_kernel.Frame_alloc.dirty_frames system.System.frames >= 4);
  let zeroed = Sentry_kernel.Zerod.drain system.System.zerod in
  checkb "scrubbed" true (zeroed >= 4);
  checkb "nothing left" false
    (Bytes_util.contains (Dram.raw (Machine.dram (System.machine system))) secret)

(* ---------------------- §10 future platform ------------------------ *)

let test_pinned_memory_basics () =
  let m = Machine.create ~seed:41 (Machine.future ~dram_size:(4 * Units.mib) ()) in
  let pm = Option.get (Machine.pinned m) in
  let base = (Pinned_mem.region pm).Memmap.base in
  Machine.write m base (Bytes.of_string "pinned!!");
  check_bytes "roundtrip" (Bytes.of_string "pinned!!") (Machine.read m base 8);
  (* no bus traffic *)
  let txns, _, _ = Bus.stats (Machine.bus m) in
  Machine.write m base (Bytes.make 1024 'x');
  let txns', _, _ = Bus.stats (Machine.bus m) in
  checki "on-SoC" txns txns';
  (* DMA cannot even decode it *)
  (match Dma.read (Machine.dma m) ~addr:base ~len:8 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "DMA reached pinned memory");
  (* boot ROM erases on every reset, warm included *)
  Machine.write m base secret;
  Machine.reboot m Machine.Warm;
  checkb "erased on warm reboot" true (Bytes_util.is_zero (Pinned_mem.raw pm));
  checkb "tegra has none" true (Machine.pinned (Machine.create (Machine.tegra3 ())) = None)

let test_pinned_config_gating () =
  let tegra = System.boot `Tegra3 ~seed:42 in
  Alcotest.check_raises "tegra rejects pinned"
    (Invalid_argument
       "Sentry.install: pinned on-SoC memory only exists on the future platform (S10)")
    (fun () ->
      ignore
        (Sentry.install tegra { (Config.default `Tegra3) with Config.storage = Config.Use_pinned }))

let test_sentry_on_future_platform () =
  let system = System.boot `Future ~seed:43 in
  let sentry = Sentry.install system (Config.default `Future) in
  checkb "pinned storage picked" true
    (match Sentry.onsoc sentry with Onsoc.Pinned_storage _ -> true | _ -> false);
  let proc = System.spawn system ~name:"app" ~bytes:(32 * Units.kib) in
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  System.fill_region system proc region secret;
  Sentry.mark_sensitive sentry proc;
  Sentry.enable_background sentry proc;
  ignore (Sentry.lock sentry);
  checkb "encrypted" false
    (Bytes_util.contains (Dram.raw (Machine.dram (System.machine system))) secret);
  (* background still works: pool comes from locked cache *)
  let b = Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:8 in
  check_bytes "background read" (Bytes.sub secret 0 8) b;
  (* keys survive nowhere findable: pinned isn't in any attack surface *)
  checkb "dma" false (Dma_attack.succeeds (System.machine system) ~secret);
  match Sentry.unlock sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unlock"

let test_jtag_attack_and_fuse () =
  let system = System.boot `Tegra3 ~seed:44 in
  let machine = System.machine system in
  (* place a secret in iRAM: invisible to every in-scope attack... *)
  Machine.write machine (Memmap.iram_base + (100 * Units.kib)) secret;
  checkb "jtag reads even iRAM" true (Jtag_attack.succeeds machine ~secret);
  (* ...but JTAG is preventable: burn the fuse *)
  Fuse.burn_jtag_fuse (Machine.fuse machine);
  checkb "fused device resists" false (Jtag_attack.succeeds machine ~secret);
  checkb "result is Jtag_disabled" true (Jtag_attack.dump machine = Jtag_attack.Jtag_disabled)

(* --------------------- experiment smoke tests ---------------------- *)

let test_experiments_registry_complete () =
  let ids = List.map (fun e -> e.Sentry_experiments.Experiments.id) Sentry_experiments.Experiments.all in
  List.iter
    (fun id -> checkb id true (List.mem id ids))
    [
      "table1"; "table2"; "table3"; "table4"; "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6";
      "fig7"; "pinned"; "ablations";
      "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "motivation"; "ablations";
    ];
  checkb "find works" true (Sentry_experiments.Experiments.find "fig9" <> None);
  checkb "unknown" true (Sentry_experiments.Experiments.find "fig99" = None)

let test_experiment_tables_nonempty () =
  (* run the cheap experiments and sanity-check their tables *)
  List.iter
    (fun id ->
      match Sentry_experiments.Experiments.find id with
      | Some e ->
          let tables = e.Sentry_experiments.Experiments.run () in
          checkb (id ^ " has tables") true (tables <> []);
          List.iter
            (fun t -> checkb (id ^ " has rows") true (t.Table.rows <> []))
            tables
      | None -> Alcotest.fail ("missing " ^ id))
    [ "table3"; "table4"; "fig1"; "fig11"; "fig12" ]

let () =
  Alcotest.run "sentry_integration"
    [
      ( "invariants",
        [
          Alcotest.test_case "full-cycle DRAM audit" `Quick test_full_cycle_dram_audit;
          Alcotest.test_case "repeated cycles" `Quick test_repeated_cycles_stable;
          Alcotest.test_case "multi-app mixed sensitivity" `Quick test_multi_app_mixed_sensitivity;
          Alcotest.test_case "shared pages end to end" `Quick test_shared_pages_policy_end_to_end;
          Alcotest.test_case "two background apps share pool" `Quick
            test_two_background_apps_share_pool;
        ] );
      ( "suspend",
        [
          Alcotest.test_case "suspend/resume" `Quick test_suspend_resume_cycle;
          Alcotest.test_case "background service" `Quick test_suspend_background_service;
          Alcotest.test_case "crashed cycle re-suspends" `Quick
            test_suspend_background_cycle_exception_safe;
          Alcotest.test_case "errors" `Quick test_suspend_errors;
        ] );
      ( "system",
        [
          Alcotest.test_case "stock flush danger" `Quick test_stock_flush_would_leak_sentry_prevents;
          Alcotest.test_case "dm-crypt full stack" `Quick test_dm_crypt_full_stack_with_sentry;
          Alcotest.test_case "two-page minimum" `Quick test_minimum_two_page_configuration;
        ] );
      ( "aes_ct",
        [
          Alcotest.test_case "fips" `Quick test_aes_ct_matches_fips;
          Alcotest.test_case "agrees with fast" `Quick test_aes_ct_agrees_with_fast_on_random;
          Alcotest.test_case "cbc via mode" `Quick test_aes_ct_cbc_via_mode;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "mid-lock window" `Quick test_attack_during_locking_window;
          Alcotest.test_case "tamper: no integrity claim" `Quick
            test_dma_tamper_no_integrity_claim;
          Alcotest.test_case "deep lock holds" `Quick test_deep_lock_survives_reboot_of_state_machine;
          Alcotest.test_case "cold boot during background" `Quick
            test_cold_boot_during_background_loses_nothing_to_attacker;
          Alcotest.test_case "kill sensitive app" `Quick test_killing_sensitive_app_while_locked;
        ] );
      ( "future-platform",
        [
          Alcotest.test_case "pinned memory basics" `Quick test_pinned_memory_basics;
          Alcotest.test_case "config gating" `Quick test_pinned_config_gating;
          Alcotest.test_case "sentry on future" `Quick test_sentry_on_future_platform;
          Alcotest.test_case "jtag + fuse" `Quick test_jtag_attack_and_fuse;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry complete" `Quick test_experiments_registry_complete;
          Alcotest.test_case "tables nonempty" `Quick test_experiment_tables_nonempty;
        ] );
    ]
