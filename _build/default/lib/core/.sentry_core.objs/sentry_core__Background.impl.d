lib/core/background.ml: Address_space List Locked_cache Machine Page Page_crypt Page_table Pl310 Process Sentry_kernel Sentry_soc Vm
