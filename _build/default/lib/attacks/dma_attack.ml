(** DMA attacks (§3.1): program a DMA-capable peripheral to dump
    memory from a PIN-locked, powered-on device.

    Transfers bypass the L2 cache (coherence is software-managed on
    these SoCs), so locked-way contents are invisible; iRAM is
    reachable unless TrustZone denies the window. *)

open Sentry_soc

(** [dump machine ~target] — page-sized DMA reads over the whole
    region.  Regions TrustZone denies come back as an error; a real
    attacker simply gets no data (or a bus abort). *)
let dump machine ~(target : [ `Dram | `Iram ]) =
  let dma = Machine.dma machine in
  let region =
    match target with
    | `Dram -> Machine.dram_region machine
    | `Iram -> Machine.iram_region machine
  in
  let chunk = 4096 in
  let buf = Buffer.create region.Memmap.size in
  let denied = ref 0 in
  let off = ref 0 in
  while !off < region.Memmap.size do
    let len = min chunk (region.Memmap.size - !off) in
    (match Dma.read dma ~addr:(region.Memmap.base + !off) ~len with
    | Ok b -> Buffer.add_bytes buf b
    | Error _ ->
        incr denied;
        Buffer.add_bytes buf (Bytes.make len '\000'));
    off := !off + len
  done;
  let label = match target with `Dram -> "DRAM-via-DMA" | `Iram -> "iRAM-via-DMA" in
  (Memdump.of_bytes ~label ~base:region.Memmap.base (Buffer.to_bytes buf), !denied)

(** [succeeds machine ~secret] — dump both targets, grep for the
    secret. *)
let succeeds machine ~secret =
  let dram_dump, _ = dump machine ~target:`Dram in
  let iram_dump, _ = dump machine ~target:`Iram in
  Memdump.contains dram_dump secret || Memdump.contains iram_dump secret

(** Code-injection flavour: attempt a DMA {e write}. *)
let inject machine ~addr data = Dma.write (Machine.dma machine) ~addr data
