lib/experiments/exp_fig10.mli: Sentry_util
