lib/kernel/zerod.ml: Bytes Calib Clock Energy Frame_alloc List Machine Page Sentry_soc Sentry_util
