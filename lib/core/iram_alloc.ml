(** Allocator over the usable iRAM.

    Manages the 192 KB above the firmware-reserved first 64 KB of the
    256 KB iRAM (§4.5: "the first 64KB of iRAM appear to be used by
    our tablet's firmware; overwriting this region crashes the
    tablet").  First-fit free-list allocator with coalescing — small
    and predictable, like a real on-chip SRAM heap. *)

open Sentry_soc

type block = { addr : int; size : int }

type t = {
  base : int; (* first usable address *)
  limit : int;
  mutable free_list : block list; (* sorted by address *)
  mutable allocated : (int * int) list; (* addr, size *)
}

(* The same free-list allocator also manages the §10 pinned memory;
   [create_range] is the general constructor. *)
let create_range ~base ~limit =
  { base; limit; free_list = [ { addr = base; size = limit - base } ]; allocated = [] }

let create machine =
  let region = Machine.iram_region machine in
  create_range
    ~base:(region.Memmap.base + Memmap.iram_firmware_reserved)
    ~limit:(Memmap.limit region)

let usable_bytes t = t.limit - t.base

let free_bytes t = List.fold_left (fun acc b -> acc + b.size) 0 t.free_list

let allocated_bytes t = List.fold_left (fun acc (_, s) -> acc + s) 0 t.allocated

let align8 n = (n + 7) land lnot 7

(** [alloc t ~bytes] — first fit; [None] when iRAM is exhausted. *)
let alloc t ~bytes =
  let bytes = align8 (max 8 bytes) in
  let rec take acc = function
    | [] -> None
    | b :: rest when b.size >= bytes ->
        let remainder =
          if b.size = bytes then [] else [ { addr = b.addr + bytes; size = b.size - bytes } ]
        in
        t.free_list <- List.rev_append acc (remainder @ rest);
        t.allocated <- (b.addr, bytes) :: t.allocated;
        Some b.addr
    | b :: rest -> take (b :: acc) rest
  in
  take [] t.free_list

let coalesce blocks =
  let sorted = List.sort (fun a b -> compare a.addr b.addr) blocks in
  let rec merge = function
    | a :: b :: rest when a.addr + a.size = b.addr ->
        merge ({ addr = a.addr; size = a.size + b.size } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge sorted

(** [free t addr] returns a block to the free list (coalescing). *)
let free t addr =
  match List.assoc_opt addr t.allocated with
  | None -> invalid_arg "Iram_alloc.free: not an allocated block"
  | Some size ->
      t.allocated <- List.filter (fun (a, _) -> a <> addr) t.allocated;
      t.free_list <- coalesce ({ addr; size } :: t.free_list)

(** Every address handed out is above the firmware area — the
    invariant the tests pin down. *)
let in_range t addr = addr >= t.base && addr < t.limit

(** The free list as [(addr, size)] pairs, in list order — the
    property tests assert address sortedness and accounting over it. *)
let free_blocks t = List.map (fun b -> (b.addr, b.size)) t.free_list
