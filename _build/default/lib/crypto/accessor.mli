(** Memory accessors: where a cipher's working state physically
    lives — a plain buffer ([native]), or simulated memory through
    the cache hierarchy ([machine]) or over the bus on every access
    ([machine_uncached]). *)

open Sentry_soc

type t = {
  load : int -> int -> Bytes.t;  (** [load off len] *)
  store : int -> Bytes.t -> unit;
  base : int option;  (** physical base when memory-backed *)
  description : string;
}

val native : Bytes.t -> t
val machine : Machine.t -> base:int -> t
val machine_uncached : Machine.t -> base:int -> t

val load8 : t -> int -> int
val store8 : t -> int -> int -> unit
