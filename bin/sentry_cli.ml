(** sentry-cli: drive the simulator from the command line.

    {v
    sentry-cli list                         # available experiments
    sentry-cli exp table3 fig10             # run experiments
    sentry-cli demo                         # lock/unlock walk-through
    sentry-cli attack --variant reflash     # mount a cold-boot attack
    v} *)

open Cmdliner
open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core

(* Shared --backend plumbing: every workload-ish subcommand takes
   --backend NAME, with the older --per-page flag kept as an alias for
   --backend per-page. *)
let backend_names = String.concat "|" (List.map Backend.kind_name Backend.all_kinds)

let resolve_backend ~per_page = function
  | Some name -> (
      match Backend.kind_of_string name with
      | Some b -> b
      | None ->
          Printf.eprintf "unknown backend %S (%s)\n" name backend_names;
          exit 1)
  | None -> if per_page then Sentry.Per_page else Sentry.Batched

let backend_arg =
  Arg.(value & opt (some string) None
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"protection backend: batched|per-page|offload|no-access")

(* ------------------------------ list ----------------------------- *)

let list_cmd =
  let doc = "list available experiments" in
  let run () =
    List.iter
      (fun (e : Sentry_experiments.Experiments.entry) ->
        Printf.printf "  %-11s %s\n" e.Sentry_experiments.Experiments.id
          e.Sentry_experiments.Experiments.description)
      Sentry_experiments.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ------------------------------ exp ------------------------------ *)

let exp_cmd =
  let doc = "run experiments by id (see list)" in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let run ids =
    List.iter
      (fun id ->
        match Sentry_experiments.Experiments.find id with
        | Some e -> Sentry_experiments.Experiments.run_and_print e
        | None ->
            Printf.eprintf "unknown experiment %S\n" id;
            exit 1)
      ids
  in
  Cmd.v (Cmd.info "exp" ~doc) Term.(const run $ ids)

(* ------------------------------ demo ----------------------------- *)

let demo () =
  let system = System.boot `Tegra3 ~seed:42 in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  Printf.printf "Booted %s: %s DRAM, %s iRAM, %d-way %s L2\n"
    (Machine.config machine).Machine.name
    (Units.to_string Units.pp_bytes (Machine.config machine).Machine.dram_size)
    (Units.to_string Units.pp_bytes (Machine.config machine).Machine.iram_size)
    (Pl310.ways (Machine.l2 machine))
    (Units.to_string Units.pp_bytes (Pl310.size (Machine.l2 machine)));
  let app = System.spawn system ~name:"mail" ~bytes:(512 * Units.kib) in
  let region = List.hd (Address_space.regions app.Process.aspace) in
  let secret = Bytes.of_string "ATTACK AT DAWN!!" in
  System.fill_region system app region secret;
  (* let time pass: dirty lines reach DRAM *)
  Pl310.flush_masked (Machine.l2 machine);
  Sentry.mark_sensitive sentry app;
  Sentry.enable_background sentry app;
  let dram = Dram.raw (Machine.dram machine) in
  Printf.printf "mail app running; secret in DRAM: %b\n" (Bytes_util.contains dram secret);
  let stats = Sentry.lock sentry in
  Printf.printf "LOCKED: %d pages encrypted in %s; secret in DRAM: %b\n"
    stats.Encrypt_on_lock.pages_encrypted
    (Units.to_string Units.pp_time stats.Encrypt_on_lock.elapsed_ns)
    (Bytes_util.contains dram secret);
  let data = Vm.read system.System.vm app ~vaddr:region.Address_space.vstart ~len:16 in
  Printf.printf "background read while locked: %S; secret in DRAM: %b\n"
    (Bytes.to_string data)
    (Bytes_util.contains dram secret);
  (match Sentry.unlock sentry ~pin:"0000" with
  | Error Lock_state.Bad_pin -> print_endline "wrong PIN rejected"
  | _ -> print_endline "unexpected");
  (match Sentry.unlock sentry ~pin:"1234" with
  | Ok s ->
      Printf.printf "UNLOCKED (eager DMA pages: %d); lazy decryption from here on\n"
        s.Decrypt_on_unlock.dma_pages_eager
  | Error _ -> print_endline "unlock failed");
  let data = Vm.read system.System.vm app ~vaddr:region.Address_space.vstart ~len:16 in
  Printf.printf "read after unlock: %S\n" (Bytes.to_string data)

let demo_cmd =
  let doc = "walk through a lock / background / unlock cycle" in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const demo $ const ())

(* ----------------------------- analyze --------------------------- *)

let analyze platform fault matrix =
  let open Sentry_analysis in
  let platform =
    match platform with
    | "tegra3" -> `Tegra3
    | "nexus4" -> `Nexus4
    | "future" -> `Future
    | p ->
        Printf.eprintf "unknown platform %S (tegra3|nexus4|future)\n" p;
        exit 1
  in
  let fault =
    match fault with
    | "none" -> Scenario.No_fault
    | f -> (
        match List.find_opt (fun x -> Scenario.fault_name x = f) Scenario.faults with
        | Some x -> x
        | None ->
            Printf.eprintf "unknown fault %S (none|%s)\n" f
              (String.concat "|" (List.map Scenario.fault_name Scenario.faults));
            exit 1)
  in
  let r = Scenario.run ~fault platform in
  Printf.printf "secret-flow analysis: platform=%s fault=%s\n%s"
    (match platform with `Tegra3 -> "tegra3" | `Nexus4 -> "nexus4" | `Future -> "future")
    (Scenario.fault_name fault)
    (Engine.report r.Scenario.engine);
  let scenario_ok =
    match Scenario.expected_checker fault with
    | None -> r.Scenario.violations = []
    | Some name ->
        Printf.printf "expected checker %s: %s\n" name
          (if Scenario.tripped_expected r then "tripped" else "NOT TRIPPED");
        Scenario.tripped_expected r
  in
  let matrix_ok =
    if not matrix then true
    else begin
      print_string (Verdict_check.report ());
      Verdict_check.agrees ()
    end
  in
  if not (scenario_ok && matrix_ok) then exit 1

let analyze_cmd =
  let doc = "verify secret-flow invariants over the canned lock/unlock scenario" in
  let platform =
    Arg.(value & opt string "tegra3" & info [ "platform" ] ~docv:"PLATFORM" ~doc:"tegra3|nexus4|future")
  in
  let fault =
    Arg.(
      value & opt string "none"
      & info [ "fault" ] ~docv:"FAULT"
          ~doc:"inject a protection fault and confirm the matching checker flags it")
  in
  let matrix =
    Arg.(value & flag & info [ "matrix" ] ~doc:"also cross-check taint verdicts against the Table 3 attack matrix")
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze $ platform $ fault $ matrix)

(* ------------------------------ trace ---------------------------- *)

let platform_of_string = function
  | "tegra3" -> `Tegra3
  | "nexus4" -> `Nexus4
  | "future" -> `Future
  | p ->
      Printf.eprintf "unknown platform %S (tegra3|nexus4|future)\n" p;
      exit 1

let trace scenario platform chrome jsonl folded metrics capacity top list_categories =
  let open Sentry_obs in
  if list_categories then begin
    Printf.printf "categories:\n";
    List.iter (fun c -> Printf.printf "  %s\n" (Event.category_name c)) Event.categories;
    Printf.printf "subsystems:\n";
    List.iter (fun s -> Printf.printf "  %s\n" s) Event.known_subsystems
  end
  else begin
    let scenario =
      match Trace_scenario.of_string scenario with
      | Some s -> s
      | None ->
          Printf.eprintf "unknown scenario %S (%s)\n" scenario
            (String.concat "|" (List.map Trace_scenario.name_to_string Trace_scenario.all));
          exit 1
    in
    let platform = platform_of_string platform in
    (* an explicit recorder handle: installed as ambient for the
       emitters, but read back through the handle after uninstall *)
    let recorder = Trace.Recorder.create ~capacity () in
    Trace.install recorder;
    let r = Trace_scenario.run scenario platform in
    Trace.uninstall ();
    let events = Trace.Recorder.events recorder in
    let stats = Trace.Recorder.stats recorder in
    Printf.printf "scenario %s on %s: %d events recorded (%d dropped)\n"
      (Trace_scenario.name_to_string scenario)
      (Machine.config (System.machine r.Trace_scenario.system)).Machine.name
      stats.Trace.emitted stats.Trace.dropped;
    List.iter
      (fun (cat, n) -> Printf.printf "  %-10s %d\n" (Event.category_name cat) n)
      (Trace.Recorder.category_counts recorder);
    let write what path contents =
      Export.write_file ~path contents;
      Printf.printf "wrote %s to %s\n" what path
    in
    Option.iter
      (fun path -> write "Chrome trace" path (Export.chrome_trace_string events))
      chrome;
    Option.iter (fun path -> write "event JSONL" path (Export.jsonl events)) jsonl;
    Option.iter (fun path -> write "folded stacks" path (Export.folded events)) folded;
    Option.iter
      (fun path ->
        write "metrics" path
          (Export.metrics_jsonl (Obs_report.flat ~recorder r.Trace_scenario.sentry)))
      metrics;
    if top > 0 then print_string (Export.top_spans_table (Export.top_spans ~limit:top events))
  end

let trace_cmd =
  let doc = "record a canned scenario and export traces / metrics" in
  let scenario =
    Arg.(value & pos 0 string "lock-cycle" & info [] ~docv:"SCENARIO" ~doc:"lock-cycle|dm-crypt-io")
  in
  let platform =
    Arg.(value & opt string "tegra3" & info [ "platform" ] ~docv:"PLATFORM" ~doc:"tegra3|nexus4|future")
  in
  let chrome =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"write a Chrome trace_event JSON (Perfetto / chrome://tracing)")
  in
  let jsonl =
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE"
           ~doc:"write raw events, one JSON object per line")
  in
  let folded =
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE"
           ~doc:"write folded stacks (one 'frame;frame self_ns' line per unique span stack; flamegraph.pl input)")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"write the flat metrics report, one {key,value} per line")
  in
  let capacity =
    Arg.(value & opt int 65536 & info [ "capacity" ] ~docv:"N" ~doc:"trace ring capacity (events)")
  in
  let top =
    Arg.(value & opt int 0 & info [ "top" ] ~docv:"N"
           ~doc:"print the N spans with the largest self time (0 = off)")
  in
  let list_categories =
    Arg.(value & flag & info [ "list-categories" ] ~doc:"print event categories and known subsystems, then exit")
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const trace $ scenario $ platform $ chrome $ jsonl $ folded $ metrics $ capacity $ top
          $ list_categories)

(* ----------------------------- faults ---------------------------- *)

let faults plan_name platform variant backend list_plans =
  let open Sentry_analysis in
  if list_plans then
    List.iter
      (fun (name, plan) -> Printf.printf "  %-22s %s\n" name (Sentry_faults.Plan.describe plan))
      Fault_scenario.plans
  else begin
    let platform = platform_of_string platform in
    let backend = resolve_backend ~per_page:false backend in
    let variant =
      match variant with
      | "warm" -> Sentry_attacks.Cold_boot.Os_reboot
      | "reflash" -> Sentry_attacks.Cold_boot.Device_reflash
      | "reset" -> Sentry_attacks.Cold_boot.Two_second_reset
      | v ->
          Printf.eprintf "unknown cold-boot variant %S (warm|reflash|reset)\n" v;
          exit 1
    in
    let plans =
      if plan_name = "all" then Fault_scenario.plans
      else
        match Fault_scenario.find_plan plan_name with
        | Some p -> [ (plan_name, p) ]
        | None ->
            Printf.eprintf "unknown plan %S (all|%s)\n" plan_name
              (String.concat "|" Fault_scenario.plan_names);
            exit 1
    in
    let ok =
      List.for_all
        (fun (name, plan) ->
          let o = Fault_scenario.run ~platform ~variant ~backend plan in
          Printf.printf "plan %s: %s\n" name (Sentry_faults.Plan.describe plan);
          List.iter
            (fun (r : Sentry_faults.Injector.record) ->
              Printf.printf "  fired %s at %s (arrival %d)\n"
                (Sentry_faults.Fault.name r.Sentry_faults.Injector.kind)
                r.Sentry_faults.Injector.point r.Sentry_faults.Injector.occurrence)
            o.Fault_scenario.fired;
          if o.Fault_scenario.fired = [] then print_endline "  (no trigger fired)";
          (match o.Fault_scenario.recovery with
          | Some r ->
              Printf.printf "  recovery: %s, %d pages fixed%s%s\n"
                (match r.Sentry.resumed with
                | Sentry.Resumed_lock -> "lock rolled forward"
                | Sentry.Rolled_back_unlock -> "unlock rolled back")
                r.Sentry.pages_fixed
                (if r.Sentry.rekeyed then ", volatile key regenerated" else "")
                (if r.Sentry.journal_entry <> None then " (journal survived)" else "")
          | None ->
              if o.Fault_scenario.crashed then print_endline "  recovery: none ran"
              else print_endline "  no crash: lock completed normally");
          List.iter
            (fun v -> Printf.printf "  VIOLATION %s\n" (Checker.violation_to_string v))
            o.Fault_scenario.violations;
          Printf.printf "  locked=%b inconsistencies=%d secret_recovered=%b -> %s\n" o.Fault_scenario.locked
            o.Fault_scenario.inconsistencies o.Fault_scenario.secret_recovered
            (if Fault_scenario.survived o then "SURVIVED" else "FAILED");
          Fault_scenario.survived o)
        plans
    in
    if not ok then exit 1
  end

let faults_cmd =
  let doc = "replay a fault-injection plan against the lock pipeline and report the verdict" in
  let plan =
    Arg.(value & opt string "power-loss-mid-lock"
         & info [ "plan" ] ~docv:"PLAN" ~doc:"canned plan name, or 'all' (see --list)")
  in
  let platform =
    Arg.(value & opt string "nexus4" & info [ "platform" ] ~docv:"PLATFORM" ~doc:"tegra3|nexus4|future")
  in
  let variant =
    Arg.(value & opt string "reset"
         & info [ "variant" ] ~docv:"VARIANT" ~doc:"cold-boot attack mounted after recovery: warm|reflash|reset")
  in
  let list_plans = Arg.(value & flag & info [ "list" ] ~doc:"print the canned plans, then exit") in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(const faults $ plan $ platform $ variant $ backend_arg $ list_plans)

(* ----------------------------- attack ---------------------------- *)

let attack variant protect =
  let system = System.boot `Tegra3 ~seed:7 in
  let machine = System.machine system in
  let secret = Bytes.of_string "CREDIT-CARD-4242424242424242" in
  let app = System.spawn system ~name:"wallet" ~bytes:(64 * Units.kib) in
  let region = List.hd (Address_space.regions app.Process.aspace) in
  System.fill_region system app region secret;
  (* let time pass: dirty lines reach DRAM *)
  Pl310.flush_masked (Machine.l2 machine);
  if protect then begin
    let sentry = Sentry.install system (Config.default `Tegra3) in
    Sentry.mark_sensitive sentry app;
    ignore (Sentry.lock sentry);
    print_endline "Sentry installed; device locked."
  end
  else print_endline "No protection (device merely PIN-locked).";
  let found =
    match variant with
    | "warm" -> Sentry_attacks.Cold_boot.succeeds machine Sentry_attacks.Cold_boot.Os_reboot ~secret
    | "reflash" ->
        Sentry_attacks.Cold_boot.succeeds machine Sentry_attacks.Cold_boot.Device_reflash ~secret
    | "reset" ->
        Sentry_attacks.Cold_boot.succeeds machine Sentry_attacks.Cold_boot.Two_second_reset ~secret
    | "dma" -> Sentry_attacks.Dma_attack.succeeds machine ~secret
    | v ->
        Printf.eprintf "unknown attack variant %S (warm|reflash|reset|dma)\n" v;
        exit 1
  in
  Printf.printf "Attack '%s' mounted: secret %s\n" variant
    (if found then "RECOVERED (device compromised)" else "not found (defence held)")

let attack_cmd =
  let doc = "mount a memory attack against the simulated device" in
  let variant =
    Arg.(value & opt string "reflash" & info [ "variant" ] ~docv:"VARIANT" ~doc:"warm|reflash|reset|dma")
  in
  let protect =
    Arg.(value & flag & info [ "sentry" ] ~doc:"protect the device with Sentry before attacking")
  in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const attack $ variant $ protect)

(* ----------------------------- fleet ----------------------------- *)

let fleet procs pages cycles wakes io touch per_page backend domains json folded =
  let open Sentry_obs in
  let module F = Sentry_workloads.Fleet in
  let cfg =
    {
      F.procs;
      pages_per_proc = pages;
      cycles;
      touch_fraction = touch;
      service_wakes = wakes;
      io_sectors = io;
      backend = resolve_backend ~per_page backend;
    }
  in
  (* only pay for tracing when the folded-stacks export was asked for;
     with --domains, installing here is what opts the shards into
     per-shard recorders (merged deterministically afterwards) *)
  let recorder =
    match folded with
    | None -> None
    | Some _ ->
        let r = Trace.Recorder.create ~capacity:65536 () in
        Trace.install r;
        Some r
  in
  let s, sharded =
    match domains with
    | None -> (F.run cfg, None)
    | Some d ->
        let sh = F.run_sharded ~domains:d cfg in
        (sh.F.merged, Some sh)
  in
  Option.iter (fun _ -> Trace.uninstall ()) recorder;
  (let folded_source =
     match (folded, sharded) with
     | Some path, Some sh -> Option.map (fun r -> (path, r)) sh.F.merged_recorder
     | Some path, None -> Option.map (fun r -> (path, r)) recorder
     | None, _ -> None
   in
   match folded_source with
   | Some (path, r) ->
       Export.write_file ~path (Export.folded (Trace.Recorder.events r));
       Printf.printf "wrote folded stacks to %s\n" path
   | None -> ());
  if json then begin
    let latency_json (cls, (l : F.latency)) =
      ( cls,
        Json_out.Obj
          [
            ("count", Json_out.Int l.F.count);
            ("mean_ns", Json_out.Float l.F.mean_ns);
            ("p50_ns", Json_out.Float l.F.p50_ns);
            ("p99_ns", Json_out.Float l.F.p99_ns);
            ("p999_ns", Json_out.Float l.F.p999_ns);
            ("max_ns", Json_out.Float l.F.max_ns);
          ] )
    in
    let shard_fields =
      match sharded with
      | None -> []
      | Some sh ->
          [
            ("domains", Json_out.Int sh.F.domains);
            ("shards", Json_out.Int sh.F.shard_count);
            ("wall_s", Json_out.Float sh.F.wall_s);
          ]
    in
    let doc =
      Json_out.Obj
        (shard_fields
        @ [
          ("procs", Json_out.Int procs);
          ("pages_per_proc", Json_out.Int pages);
          ("cycles", Json_out.Int cycles);
          ("backend", Json_out.Str (F.backend_label cfg.F.backend));
          ("fleet_pages", Json_out.Int s.F.fleet_pages);
          ("pages_locked", Json_out.Int s.F.pages_locked);
          ("pages_unlocked_eager", Json_out.Int s.F.pages_unlocked_eager);
          ("pages_faulted", Json_out.Int s.F.pages_faulted);
          ("service_wakes", Json_out.Int s.F.service_wakes_run);
          ("io_sectors", Json_out.Int s.F.io_sectors_done);
          ("lock_wall_s", Json_out.Float s.F.lock_wall_s);
          ("unlock_wall_s", Json_out.Float s.F.unlock_wall_s);
          ("lock_pages_per_s", Json_out.Float s.F.lock_pages_per_s);
          ("unlock_to_first_touch_ns", Json_out.Float s.F.unlock_to_first_touch_ns);
          ("unlock_to_first_touch_by_class", Json_out.Obj (List.map latency_json s.F.latency_by_class));
          ("sim_elapsed_ns", Json_out.Float s.F.sim_elapsed_ns);
          ("energy_j", Json_out.Float s.F.energy_j);
        ])
    in
    print_endline (Json_out.to_string doc)
  end
  else
    match sharded with
    | Some sh -> Format.printf "%a@." F.pp_sharded sh
    | None -> Format.printf "%a@." F.pp s

let fleet_cmd =
  let doc = "run the multi-tenant fleet churn workload" in
  let procs =
    Arg.(value & opt int 8 & info [ "procs" ] ~docv:"N" ~doc:"sensitive processes in the fleet")
  in
  let pages =
    Arg.(value & opt int 16 & info [ "pages" ] ~docv:"M" ~doc:"pages per process main region")
  in
  let cycles =
    Arg.(value & opt int 3 & info [ "cycles" ] ~docv:"C" ~doc:"lock/unlock churn cycles")
  in
  let wakes =
    Arg.(value & opt int 1 & info [ "wakes" ] ~docv:"W" ~doc:"background service wakes per locked period")
  in
  let io =
    Arg.(value & opt int 8 & info [ "io" ] ~docv:"SECTORS" ~doc:"dm-crypt sectors written+read per wake")
  in
  let touch =
    Arg.(value & opt float 0.25 & info [ "touch" ] ~docv:"FRAC" ~doc:"fraction of pages faulted in after unlock")
  in
  let per_page =
    Arg.(value & flag & info [ "per-page" ] ~doc:"alias for --backend per-page")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D"
           ~doc:"shard the tenants and run them on $(docv) OCaml domains; merged outputs are \
                 identical for every $(docv)")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"machine-readable output") in
  let folded =
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE"
           ~doc:"trace the run and write folded stacks (flamegraph.pl input)")
  in
  Cmd.v (Cmd.info "fleet" ~doc)
    Term.(const fleet $ procs $ pages $ cycles $ wakes $ io $ touch $ per_page $ backend_arg
          $ domains $ json $ folded)

(* ----------------------------- serve ----------------------------- *)

let serve tenants pages rate burst duration queue_depth backlog batch seed soak soak_period
    per_page backend domains json =
  let module Sv = Sentry_serve.Server in
  let cfg =
    {
      Sv.tenants;
      pages_per_proc = pages;
      rate_hz = rate;
      burst;
      duration_s = duration;
      queue_depth;
      backlog_pages_max = backlog;
      batch_max = batch;
      seed;
      soak;
      soak_period;
      backend = resolve_backend ~per_page backend;
    }
  in
  let stats, sharded =
    match domains with
    | None -> (Sv.run cfg, None)
    | Some d ->
        let sh = Sv.run_sharded ~domains:d cfg in
        (sh.Sv.merged, Some sh)
  in
  if json then print_endline (Sentry_obs.Json_out.to_string (Sv.json stats))
  else begin
    (match sharded with
    | Some sh -> Format.printf "%a@." Sv.pp_sharded sh
    | None -> Format.printf "%a@." Sv.pp stats);
    if stats.Sv.audit_findings > 0 then
      Printf.printf "WARNING: %d post-recovery consistency finding(s)\n" stats.Sv.audit_findings
  end;
  (* soak contract: the run only counts as surviving chaos if crashes
     actually fired, every one recovered, and the audit stayed clean *)
  if
    soak
    && (stats.Sv.crashes_injected = 0
       || stats.Sv.recoveries <> stats.Sv.crashes_injected
       || stats.Sv.audit_findings > 0)
  then exit 1

let serve_cmd =
  let doc = "run the open-loop lock/unlock server (admission backpressure, optional chaos soak)" in
  let tenants =
    Arg.(value & opt int 8 & info [ "tenants" ] ~docv:"N" ~doc:"tenant pool size (fleet class mix)")
  in
  let pages =
    Arg.(value & opt int 8 & info [ "pages" ] ~docv:"M" ~doc:"pages per medium tenant main region")
  in
  let rate =
    Arg.(value & opt float 40.0 & info [ "rate" ] ~docv:"HZ" ~doc:"base Poisson arrival rate (simulated Hz)")
  in
  let burst =
    Arg.(value & opt float 3.0 & info [ "burst" ] ~docv:"X" ~doc:"peak-quarter rate multiplier (diurnal profile)")
  in
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"S" ~doc:"simulated arrival-generation span (seconds)")
  in
  let queue_depth =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"D" ~doc:"admission FIFO depth (overflow sheds)")
  in
  let backlog =
    Arg.(value & opt int 512 & info [ "backlog-pages" ] ~docv:"P"
           ~doc:"pending page backlog cap (journal/iRAM saturation rejects)")
  in
  let batch =
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"B" ~doc:"requests served per unlock/lock cycle")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"schedule / system PRNG seed") in
  let soak =
    Arg.(value & flag & info [ "soak" ] ~doc:"chaos soak: inject a lock-walk crash into every \
                                              $(b,--soak-period)th re-lock and recover mid-traffic")
  in
  let soak_period =
    Arg.(value & opt int 4 & info [ "soak-period" ] ~docv:"K" ~doc:"crash every Kth batch when soaking")
  in
  let per_page =
    Arg.(value & flag & info [ "per-page" ] ~doc:"alias for --backend per-page")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D"
           ~doc:"shard the tenant pool and serve on $(docv) OCaml domains; merged outputs are \
                 identical for every $(docv)")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"machine-readable output (deterministic fields only)") in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const serve $ tenants $ pages $ rate $ burst $ duration $ queue_depth $ backlog $ batch
          $ seed $ soak $ soak_period $ per_page $ backend_arg $ domains $ json)

(* ------------------------------ slo ------------------------------ *)

let slo spec procs pages cycles wakes io touch per_page backend domains json =
  let open Sentry_obs in
  let module F = Sentry_workloads.Fleet in
  match Slo.load ~path:spec with
  | Error msg ->
      Printf.eprintf "slo: %s\n" msg;
      exit 2
  | Ok objectives ->
      let cfg =
        {
          F.procs;
          pages_per_proc = pages;
          cycles;
          touch_fraction = touch;
          service_wakes = wakes;
          io_sectors = io;
          backend = resolve_backend ~per_page backend;
        }
      in
      (* with --domains the gate runs over the merged per-shard
         registries — the same snapshot regardless of D.  The serve
         workload rides along in the same snapshot so the queue-wait
         and shed-rate objectives are gated by the same invocation. *)
      let module Sv = Sentry_serve.Server in
      let flat =
        match domains with
        | None ->
            let metrics = Metrics.create () in
            ignore (F.run ~metrics cfg);
            ignore (Sv.run ~metrics Sv.default);
            Metrics.flat metrics
        | Some d ->
            let fleet_metrics = (F.run_sharded ~domains:d cfg).F.merged_metrics in
            let serve_metrics = (Sv.run_sharded ~domains:d Sv.default).Sv.merged_metrics in
            Metrics.flat (Metrics.merge fleet_metrics serve_metrics)
      in
      let report = Slo.evaluate objectives flat in
      Format.printf "%a@." Slo.pp_report report;
      Option.iter
        (fun path ->
          Export.write_file ~path (Json_out.to_string (Slo.report_json report) ^ "\n");
          Printf.printf "wrote SLO report to %s\n" path)
        json;
      if not (Slo.ok report) then exit 1

let slo_cmd =
  let doc = "run the fleet workload and gate its latency distributions against an SLO spec" in
  let spec =
    Arg.(value & opt string "slo.spec"
         & info [ "spec" ] ~docv:"FILE" ~doc:"objective spec: 'KEY [STAT] <=|>= THRESHOLD' lines")
  in
  let procs = Arg.(value & opt int 8 & info [ "procs" ] ~docv:"N" ~doc:"sensitive processes in the fleet") in
  let pages = Arg.(value & opt int 16 & info [ "pages" ] ~docv:"M" ~doc:"pages per medium tenant") in
  let cycles = Arg.(value & opt int 3 & info [ "cycles" ] ~docv:"C" ~doc:"lock/unlock churn cycles") in
  let wakes =
    Arg.(value & opt int 1 & info [ "wakes" ] ~docv:"W" ~doc:"background service wakes per locked period")
  in
  let io =
    Arg.(value & opt int 8 & info [ "io" ] ~docv:"SECTORS" ~doc:"dm-crypt sectors written+read per wake")
  in
  let touch =
    Arg.(value & opt float 0.25 & info [ "touch" ] ~docv:"FRAC" ~doc:"fraction of pages faulted in after unlock")
  in
  let per_page =
    Arg.(value & flag & info [ "per-page" ] ~doc:"alias for --backend per-page")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D"
           ~doc:"run the fleet sharded on $(docv) domains and gate the merged metrics snapshot")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"also write the report as JSON")
  in
  Cmd.v (Cmd.info "slo" ~doc)
    Term.(const slo $ spec $ procs $ pages $ cycles $ wakes $ io $ touch $ per_page $ backend_arg
          $ domains $ json)

let () =
  let doc = "Sentry: on-SoC protection against memory attacks (simulator)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "sentry-cli" ~doc)
          [
            list_cmd; exp_cmd; demo_cmd; attack_cmd; analyze_cmd; trace_cmd; faults_cmd; fleet_cmd;
            serve_cmd; slo_cmd;
          ]))
