lib/crypto/generic_aes.ml: Accessor Aes Aes_block Bytes Cpu Crypto_api Machine Mode Perf Sentry_soc Xts
