lib/crypto/aes_on_soc.ml: Accessor Aes Aes_block Bytes Cpu Crypto_api Machine Mode Perf Sentry_soc Xts
