lib/workloads/kernel_compile.mli:
