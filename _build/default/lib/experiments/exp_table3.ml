(** Table 3: security analysis of the storage alternatives.

    Every cell is an actual mounted attack against a secret placed in
    that storage (plus the DRAM control row the paper's argument
    implies). *)

open Sentry_util
open Sentry_attacks

let cell ~attack ~storage =
  if Verdict.safe ~storage ~attack then "Safe" else "UNSAFE"

let run () =
  let rows =
    List.map
      (fun attack ->
        Verdict.attack_name attack
        :: List.map (fun storage -> cell ~attack ~storage) Verdict.storages)
      Verdict.attacks
  in
  [
    Table.make ~title:"Table 3: storage alternatives vs. memory attacks (mounted)"
      ~header:("Attack" :: List.map Verdict.storage_name Verdict.storages)
      ~notes:
        [
          "iRAM is DMA-safe only because TrustZone denies the window (S4.4);";
          "locked L2 is DMA-safe intrinsically: DMA bypasses the cache.";
          "Paper: both on-SoC options Safe against all three attacks.";
        ]
      rows;
  ]
