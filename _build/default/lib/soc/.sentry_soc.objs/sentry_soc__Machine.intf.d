lib/soc/machine.mli: Bus Bytes Clock Cpu Dma Dram Energy Fuse Iram Memmap Pinned_mem Pl310 Prng Sentry_util Trustzone
