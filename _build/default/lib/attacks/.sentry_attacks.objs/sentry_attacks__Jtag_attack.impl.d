lib/attacks/jtag_attack.ml: Bytes Dram Fuse Iram List Machine Memdump Memmap Pinned_mem Sentry_soc
