(* Cross-backend differential suite for the protection-backend
   interface ([Backend]).

   The three crypto backends — [Batched], [Per_page] and the
   MemShield-style [Offload] command queue — claim bit-identical
   simulated DRAM contents, taint shadows, PTE protection state and
   crypt counters after lock, after unlock and after every lazy fault,
   on both the fig2-style layout and a fleet-style multi-tenant mix.
   (Clock and energy legitimately differ for [Offload]: that is the
   point of the engine.)

   The MProtect-style [No_access] backend diverges exactly where
   designed: DRAM keeps cleartext while locked, so the cold-boot and
   DMA verdicts flip from "defence held" to "secret recovered", while
   the locked-state consistency audit still scores the mapping-revoked
   pages as protected.  Switching backends between cycles must leave
   no stranded protection state behind. *)

open Sentry_soc
open Sentry_kernel
open Sentry_core
module Checkers = Sentry_analysis.Checkers

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let secret = "FLEET-SECRET-4242424242424242!!"

(* ------------------------- twin harness -------------------------- *)

(* [`Fig2] is the three-app layout of the batch suite; [`Fleet] is a
   six-tenant mix with the fleet's class heterogeneity (large tenants
   carry a DMA region, small ones half-size regions). *)
let build ?(config = { (Config.default `Tegra3) with Config.track_taint = true })
    ?(layout = `Fig2) ~backend () =
  Process.reset_pids ();
  let system = System.boot ~seed:11 `Tegra3 in
  let sentry = Sentry.install system config in
  Sentry.set_backend sentry backend;
  let machine = System.machine system in
  let spawn_filled ?dma_pages name pages =
    let proc = System.spawn system ~name ~bytes:(pages * Page.size) in
    let aspace = proc.Process.aspace in
    let regions =
      match dma_pages with
      | None -> Address_space.regions aspace
      | Some n ->
          ignore
            (Address_space.map_region aspace ~name:"dma" ~kind:Address_space.Dma
               ~bytes:(n * Page.size));
          Address_space.regions aspace
    in
    Machine.with_taint machine Taint.Secret_cleartext (fun () ->
        List.iter
          (fun r -> System.fill_region system proc r (Bytes.of_string (name ^ secret)))
          regions);
    Sentry.mark_sensitive sentry proc;
    proc
  in
  let procs =
    match layout with
    | `Fig2 ->
        [
          spawn_filled "mail" 8;
          spawn_filled "maps" 12 ~dma_pages:4;
          spawn_filled "wallet" 6;
        ]
    | `Fleet ->
        List.init 6 (fun i ->
            let name = Printf.sprintf "fleet%03d" i in
            match i mod 4 with
            | 0 -> spawn_filled name 16 ~dma_pages:2
            | 3 -> spawn_filled name 4
            | _ -> spawn_filled name 8)
  in
  (system, sentry, procs)

let touch_all (system : System.t) procs =
  List.iter
    (fun (proc : Process.t) ->
      List.iter
        (fun (r : Address_space.region) ->
          for p = 0 to r.Address_space.npages - 1 do
            Vm.touch system.System.vm proc
              ~vaddr:(r.Address_space.vstart + (p * Page.size))
          done)
        (Address_space.regions proc.Process.aspace))
    procs

(* Semantic fingerprint: DRAM contents, taint shadows, PTE protection
   state (including the no-access bit) and crypt counters.  Clock and
   energy are deliberately excluded — the offload engine's cost model
   differs by design. *)
type fp = {
  dram : Digest.t;
  shadow : Digest.t option;
  ptes : (int * int * int * bool * bool * bool * bool) list;
  crypt : int * int;
}

let fingerprint (system : System.t) sentry procs =
  let m = System.machine system in
  {
    dram = Digest.bytes (Dram.raw (Machine.dram m));
    shadow = Option.map Digest.bytes (Dram.shadow (Machine.dram m));
    ptes =
      List.concat_map
        (fun (proc : Process.t) ->
          List.concat_map
            (fun r ->
              List.map
                (fun (vpn, (pte : Page_table.pte)) ->
                  ( proc.Process.pid,
                    vpn,
                    pte.Page_table.frame,
                    pte.Page_table.present,
                    pte.Page_table.encrypted,
                    pte.Page_table.young,
                    pte.Page_table.no_access ))
                (Address_space.region_ptes proc.Process.aspace r))
            (Address_space.regions proc.Process.aspace))
        procs;
    crypt = Page_crypt.counters (Sentry.page_crypt sentry);
  }

let check_fp label (a : fp) (b : fp) =
  checkb (label ^ ": DRAM contents identical") true (a.dram = b.dram);
  checkb (label ^ ": taint shadows identical") true (a.shadow = b.shadow);
  checkb (label ^ ": PTE state identical") true (a.ptes = b.ptes);
  checkb (label ^ ": crypt counters identical") true (a.crypt = b.crypt)

(* ------------------ crypto backends: equivalence ------------------ *)

(* Batched / Per_page / Offload through a full lock → unlock → every
   lazy fault cycle: bit-identical semantic state at each stage. *)
let equivalence_cycle layout other =
  let lbl = Backend.kind_name other in
  let sys_b, sen_b, procs_b = build ~layout ~backend:Sentry.Batched () in
  let sys_o, sen_o, procs_o = build ~layout ~backend:other () in
  let ls_b = Sentry.lock sen_b and ls_o = Sentry.lock sen_o in
  checki (lbl ^ ": pages encrypted") ls_b.Encrypt_on_lock.pages_encrypted
    ls_o.Encrypt_on_lock.pages_encrypted;
  check_fp (lbl ^ " locked") (fingerprint sys_b sen_b procs_b)
    (fingerprint sys_o sen_o procs_o);
  (match (Sentry.unlock sen_b ~pin:"1234", Sentry.unlock sen_o ~pin:"1234") with
  | Ok us_b, Ok us_o ->
      checki (lbl ^ ": eager DMA pages") us_b.Decrypt_on_unlock.dma_pages_eager
        us_o.Decrypt_on_unlock.dma_pages_eager
  | _ -> Alcotest.fail "unlock failed");
  check_fp (lbl ^ " unlocked") (fingerprint sys_b sen_b procs_b)
    (fingerprint sys_o sen_o procs_o);
  touch_all sys_b procs_b;
  touch_all sys_o procs_o;
  check_fp (lbl ^ " after faults") (fingerprint sys_b sen_b procs_b)
    (fingerprint sys_o sen_o procs_o)

let test_crypto_backends_fig2 () =
  List.iter (equivalence_cycle `Fig2) [ Sentry.Per_page; Sentry.Offload ]

let test_crypto_backends_fleet () =
  List.iter (equivalence_cycle `Fleet) [ Sentry.Per_page; Sentry.Offload ]

(* The offload command queue must be fully drained by each walk's
   completion poll: nothing may stay in flight across calls, or the
   next walk's timing would depend on the previous one's leftovers. *)
let test_offload_queue_drained () =
  let _sys, sentry, _ = build ~backend:Sentry.Offload () in
  let engine = Page_crypt.engine (Sentry.page_crypt sentry) in
  ignore (Sentry.lock sentry);
  checki "queue drained after lock" 0 (Sentry_crypto.Offload_engine.depth engine);
  (match Sentry.unlock_eager sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unlock_eager failed");
  checki "queue drained after eager unlock" 0 (Sentry_crypto.Offload_engine.depth engine);
  let stats = Sentry_crypto.Offload_engine.stats engine in
  checki "every submit completed" stats.Sentry_crypto.Offload_engine.submitted
    stats.Sentry_crypto.Offload_engine.completed

(* A crashed offload lock walk rolls forward like the batched one: the
   command queue dies with the machine, recovery resets it and the
   journal-driven sweep finishes the pass. *)
let test_offload_crash_roll_forward () =
  let module Injector = Sentry_faults.Injector in
  let module Plan = Sentry_faults.Plan in
  let module Fault = Sentry_faults.Fault in
  let config = { (Config.default `Tegra3) with Config.track_taint = true; journal = true } in
  let sys, sentry, _ = build ~config ~backend:Sentry.Offload () in
  Injector.arm
    (Plan.make ~name:"mid-offload-lock"
       [
         Plan.trigger ~point:Injector.Points.page_encrypted ~kind:Fault.Power_loss
           ~at:(Plan.Nth 5);
       ]);
  (try ignore (Sentry.lock sentry) with Injector.Injected _ -> ());
  Injector.disarm ();
  (match Sentry.recover sentry with
  | Some r ->
      checkb "rolled forward to Locked" true (r.Sentry.resumed = Sentry.Resumed_lock);
      checkb "recovery re-encrypted the tail" true (r.Sentry.pages_fixed > 0)
  | None -> Alcotest.fail "recovery did not run");
  checkb "device locked after recovery" true (Sentry.is_locked sentry);
  checkb "no cleartext for the cold-boot attack" false
    (Sentry_attacks.Cold_boot.succeeds (System.machine sys)
       Sentry_attacks.Cold_boot.Two_second_reset ~secret:(Bytes.of_string secret))

(* --------------- no-access: designed divergence ------------------- *)

(* Locking under [No_access] encrypts nothing: every sensitive PTE is
   mapping-revoked while the frames keep their cleartext (the walk's
   masked L2 flush still writes dirty lines back, as every backend's
   does), and the consistency audit still comes back clean — revoked
   pages count as protected even though they are cleartext. *)
let test_no_access_leaves_cleartext () =
  let sys, sentry, procs = build ~backend:Sentry.No_access () in
  let machine = System.machine sys in
  let stats = Sentry.lock sentry in
  checki "no bytes encrypted" 0 stats.Encrypt_on_lock.bytes_encrypted;
  checkb "lock fired per-page progress" true (stats.Encrypt_on_lock.pages_encrypted > 0);
  checkb "DRAM still holds the cleartext secret" true
    (Sentry_util.Bytes_util.contains
       (Dram.raw (Machine.dram machine))
       (Bytes.of_string secret));
  List.iter
    (fun (proc : Process.t) ->
      List.iter
        (fun r ->
          List.iter
            (fun (vpn, (pte : Page_table.pte)) ->
              if pte.Page_table.present then begin
                checkb (Printf.sprintf "pid %d vpn %d revoked" proc.Process.pid vpn) true
                  pte.Page_table.no_access;
                checkb
                  (Printf.sprintf "pid %d vpn %d not marked encrypted" proc.Process.pid vpn)
                  false pte.Page_table.encrypted
              end)
            (Address_space.region_ptes proc.Process.aspace r))
        (Address_space.regions proc.Process.aspace))
    procs;
  checki "audit scores revoked pages as protected" 0
    (List.length (Checkers.Locked_state_consistent.audit sentry))

(* The Table 3 flip: the same attacks whose defence holds under the
   crypto backends recover the secret under [No_access].  The cold
   boot uses the reflash variant (97.5% DRAM survival): the 2-second
   reset's remanence decay destroys even cleartext past the fuzzy
   matcher's threshold, which would mask the flip being tested. *)
let test_no_access_verdicts_flip () =
  let sec = Bytes.of_string secret in
  let attack backend =
    let sys, sentry, _ = build ~backend () in
    ignore (Sentry.lock sentry);
    let m = System.machine sys in
    ( Sentry_attacks.Cold_boot.succeeds m Sentry_attacks.Cold_boot.Device_reflash ~secret:sec,
      Sentry_attacks.Dma_attack.succeeds m ~secret:sec )
  in
  let cold_b, dma_b = attack Sentry.Batched in
  checkb "batched: cold boot defence holds" false cold_b;
  checkb "batched: DMA defence holds" false dma_b;
  let cold_n, dma_n = attack Sentry.No_access in
  checkb "no-access: cold boot recovers the secret" true cold_n;
  checkb "no-access: DMA recovers the secret" true dma_n

(* Unlock restores the mappings without any crypto, and the restored
   pages read back their original cleartext. *)
let test_no_access_unlock_restores () =
  let sys, sentry, procs = build ~backend:Sentry.No_access () in
  ignore (Sentry.lock sentry);
  (match Sentry.unlock sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unlock failed");
  touch_all sys procs;
  List.iter
    (fun (proc : Process.t) ->
      List.iter
        (fun r ->
          List.iter
            (fun (vpn, (pte : Page_table.pte)) ->
              checkb (Printf.sprintf "pid %d vpn %d restored" proc.Process.pid vpn) false
                pte.Page_table.no_access)
            (Address_space.region_ptes proc.Process.aspace r))
        (Address_space.regions proc.Process.aspace))
    procs;
  checkb "cleartext readable after restore" true
    (Sentry_util.Bytes_util.contains
       (Dram.raw (Machine.dram (System.machine sys)))
       (Bytes.of_string secret))

(* ----------------- backend switches between cycles ---------------- *)

(* A lazy unlock leaves residual protection (encrypted or revoked
   pages) behind; switching backends while [Unlocked] must not strand
   it.  Crypto -> no-access: the no-access fault handler still
   decrypts residual ciphertext.  No-access -> crypto: the standard
   handler still clears residual revocations.  Each full cycle ends
   with every page readable and unprotected. *)
let test_backend_switch_no_stranded_state () =
  let sys, sentry, procs = build ~backend:Sentry.Batched () in
  let clean (label : string) =
    List.iter
      (fun (proc : Process.t) ->
        List.iter
          (fun r ->
            List.iter
              (fun (vpn, (pte : Page_table.pte)) ->
                checkb (Printf.sprintf "%s: pid %d vpn %d unprotected" label proc.Process.pid vpn)
                  false
                  (pte.Page_table.encrypted || pte.Page_table.no_access))
              (Address_space.region_ptes proc.Process.aspace r))
          (Address_space.regions proc.Process.aspace))
      procs;
    checkb (label ^ ": cleartext readable") true
      (Sentry_util.Bytes_util.contains
         (Dram.raw (Machine.dram (System.machine sys)))
         (Bytes.of_string secret))
  in
  let cycle backend =
    Sentry.set_backend sentry backend;
    ignore (Sentry.lock sentry);
    (match Sentry.unlock sentry ~pin:"1234" with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "unlock failed");
    (* the lazy residue from this cycle is faulted through the *next*
       backend's handler only after the switch below *)
    touch_all sys procs;
    clean ("after " ^ Backend.kind_name backend ^ " cycle")
  in
  (* lazy unlock, then switch with residue still in the PTEs: touch
     after the switch drives the new backend's handler over the old
     backend's leftovers *)
  ignore (Sentry.lock sentry);
  (match Sentry.unlock sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unlock failed");
  Sentry.set_backend sentry Sentry.No_access;
  touch_all sys procs;
  clean "batched residue via no-access handler";
  ignore (Sentry.lock sentry);
  (match Sentry.unlock sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unlock failed");
  Sentry.set_backend sentry Sentry.Offload;
  touch_all sys procs;
  clean "no-access residue via offload handler";
  (* and full clean cycles under each backend still round-trip *)
  List.iter cycle [ Sentry.Offload; Sentry.No_access; Sentry.Batched ]

let () =
  Alcotest.run "sentry_core_backends"
    [
      ( "equivalence",
        [
          Alcotest.test_case "crypto backends, fig2 layout" `Quick test_crypto_backends_fig2;
          Alcotest.test_case "crypto backends, fleet layout" `Quick test_crypto_backends_fleet;
          Alcotest.test_case "offload queue drained" `Quick test_offload_queue_drained;
          Alcotest.test_case "offload crash roll-forward" `Quick
            test_offload_crash_roll_forward;
        ] );
      ( "no-access",
        [
          Alcotest.test_case "lock leaves cleartext" `Quick test_no_access_leaves_cleartext;
          Alcotest.test_case "attack verdicts flip" `Quick test_no_access_verdicts_flip;
          Alcotest.test_case "unlock restores mappings" `Quick test_no_access_unlock_restores;
        ] );
      ( "switching",
        [
          Alcotest.test_case "no stranded state" `Quick test_backend_switch_no_stranded_state;
        ] );
    ]
