(** Classification and layout of AES's working state (paper §6.1,
    Table 4).

    Every byte the cipher touches is classified:
    - {b Secret}: leaks break confidentiality directly (input block,
      key, round keys).
    - {b Public}: harmless if leaked (round/block counters, CBC
      chaining vector — the chaining vector is ciphertext).
    - {b Access-protected}: contents are public constants, but the
      {e order} in which entries are read is key-dependent, so a bus
      monitor that can see the addresses recovers key material
      (round tables, S-boxes, Rcon).

    The same layout doubles as the concrete memory map of the
    instrumented cipher's context ([Aes_block]): AES_On_SoC must fit
    this whole context in on-SoC storage.  It fits in a single 4 KB
    page, which is why Sentry's minimum on-SoC footprint is two pages
    (§7): one for AES_On_SoC, one for the page being transformed. *)

type sensitivity = Secret | Public | Access_protected

let pp_sensitivity ppf = function
  | Secret -> Fmt.string ppf "Secret"
  | Public -> Fmt.string ppf "Public"
  | Access_protected -> Fmt.string ppf "Access-protected"

type field = { name : string; size : int; sensitivity : sensitivity; offset : int }

(** [layout size] — the context fields, in memory order, for the given
    key size. *)
let layout size =
  let nr = Aes_key.rounds size in
  let fields =
    [
      ("input_block", 16, Secret);
      ("key", Aes_key.key_bytes size, Secret);
      ("round_index", 1, Public);
      ("round_keys", 16 * (nr + 1), Secret);
      ("round_table_te", 1024, Access_protected);
      ("round_table_td", 1024, Access_protected);
      ("sbox", 256, Access_protected);
      ("inv_sbox", 256, Access_protected);
      ("rcon", 40, Access_protected);
      ("block_index", 1, Public);
      ("cbc_ivec", 16, Public);
    ]
  in
  (* Fields are word-aligned, as a C compiler would lay the struct
     out; the cold-boot key-schedule scanner relies on real schedules
     being 4-byte aligned. *)
  let align4 n = (n + 3) land lnot 3 in
  let off = ref 0 in
  List.map
    (fun (name, size, sensitivity) ->
      let offset = align4 !off in
      off := offset + size;
      { name; size; sensitivity; offset })
    fields

let find layout name =
  match List.find_opt (fun f -> f.name = name) layout with
  | Some f -> f
  | None -> invalid_arg ("Aes_state.find: " ^ name)

(** Raw state bytes (the Table 4 sum — no padding). *)
let total_size size = List.fold_left (fun acc f -> acc + f.size) 0 (layout size)

(** Context footprint in memory, padding included. *)
let context_bytes size =
  List.fold_left (fun acc f -> max acc (f.offset + f.size)) 0 (layout size)

(** Total bytes per sensitivity class. *)
let by_sensitivity size =
  let sum s =
    List.fold_left
      (fun acc f -> if f.sensitivity = s then acc + f.size else acc)
      0 (layout size)
  in
  (sum Secret, sum Public, sum Access_protected)

(** Bytes that must live on-SoC (secret + access-protected). *)
let onsoc_bytes size =
  let secret, _, ap = by_sensitivity size in
  secret + ap
