(** Fault-injection and crash-recovery suite.

    Three layers:
    - unit tests of the injector engine (occurrence matching,
      determinism, the disarmed fast path);
    - hook tests at each subsystem (DMA transfer faults, dm-crypt
      sector atomicity, DRAM bit flips);
    - the acceptance tests of the crash-consistent lock pipeline:
      power loss at {e every} page boundary of a lock pass, recovery,
      and the Table 2 cold-boot attacks against the result — plus the
      unlock-rollback and journal-less variants. *)

open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core
open Sentry_analysis
module Fault = Sentry_faults.Fault
module Plan = Sentry_faults.Plan
module Injector = Sentry_faults.Injector

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let one ~point ~kind ~at = Plan.make ~name:"test" [ Plan.trigger ~point ~kind ~at ]

(* ------------------------------ injector -------------------------- *)

let test_disarmed_is_noop () =
  Injector.disarm ();
  Injector.fire "anywhere";
  checkb "no poll result" true (Injector.poll "anywhere" = None);
  checkb "nothing fired" true (Injector.fired () = []);
  checkb "not armed" false (Injector.armed ())

let test_nth_occurrence () =
  Injector.arm (one ~point:"p" ~kind:Fault.Power_loss ~at:(Plan.Nth 3));
  Injector.fire "p";
  Injector.fire "q" (* different point: does not count toward "p" *);
  Injector.fire "p";
  (match Injector.fire "p" with
  | () -> Alcotest.fail "3rd arrival must raise"
  | exception Injector.Injected r ->
      checki "occurrence" 3 r.Injector.occurrence;
      checkb "kind" true (r.Injector.kind = Fault.Power_loss));
  checki "one firing recorded" 1 (List.length (Injector.fired ()));
  checki "arrivals counted" 3 (Injector.occurrences "p");
  Injector.disarm ()

let test_every_occurrence () =
  Injector.arm (one ~point:"d" ~kind:Fault.Dma_error ~at:(Plan.Every 2));
  checkb "1st clean" true (Injector.poll "d" = None);
  checkb "2nd faults" true (Injector.poll "d" <> None);
  checkb "3rd clean" true (Injector.poll "d" = None);
  checkb "4th faults" true (Injector.poll "d" <> None);
  checki "two firings" 2 (List.length (Injector.fired ()));
  Injector.disarm ()

let test_prob_deterministic () =
  let plan = Plan.make ~name:"coin" ~seed:7
      [ Plan.trigger ~point:"c" ~kind:Fault.Dma_error ~at:(Plan.Prob 0.5) ]
  in
  let pattern () =
    Injector.arm plan;
    let hits = List.init 64 (fun _ -> Injector.poll "c" <> None) in
    Injector.disarm ();
    hits
  in
  let a = pattern () and b = pattern () in
  checkb "same seed, same firings" true (a = b);
  checkb "some fired" true (List.mem true a);
  checkb "some did not" true (List.mem false a)

let test_bit_flip_invokes_handler_and_continues () =
  Injector.arm (one ~point:"w" ~kind:(Fault.Bit_flip 4) ~at:(Plan.Every 1));
  let calls = ref 0 and bits_seen = ref 0 in
  Injector.set_bit_flip_handler (fun ~point:_ ~bits ->
      incr calls;
      bits_seen := bits);
  Injector.fire "w";
  Injector.fire "w";
  checki "handler per firing" 2 !calls;
  checki "bit count through" 4 !bits_seen;
  checki "firings recorded" 2 (List.length (Injector.fired ()));
  Injector.disarm ();
  Alcotest.check_raises "handler needs an armed injector"
    (Invalid_argument "Injector.set_bit_flip_handler: not armed") (fun () ->
      Injector.set_bit_flip_handler (fun ~point:_ ~bits:_ -> ()))

(** The explicit-handle surface: firings and occurrence counts stay
    readable off the session after deactivation, and two sessions over
    the same plan are independent. *)
let test_session_handle_api () =
  let plan = one ~point:"s" ~kind:Fault.Dma_error ~at:(Plan.Every 2) in
  let s1 = Injector.create plan in
  checkb "plan threads through" true (Injector.plan_of s1 == plan);
  Injector.activate s1;
  checkb "activation shows in compat armed" true (Injector.armed ());
  checkb "1st clean" true (Injector.poll "s" = None);
  checkb "2nd faults" true (Injector.poll "s" <> None);
  Injector.deactivate ();
  checkb "deactivated" false (Injector.armed ());
  (* the session outlives deactivation: results read off the handle *)
  checki "firings on handle" 1 (List.length (Injector.fired_of s1));
  checki "arrivals on handle" 2 (Injector.occurrences_of s1 "s");
  (* a second session over the same plan starts from scratch *)
  let s2 = Injector.create plan in
  Injector.activate s2;
  checkb "fresh occurrence counter" true (Injector.poll "s" = None);
  Injector.deactivate ();
  checki "s1 untouched" 1 (List.length (Injector.fired_of s1));
  checki "s2 independent" 0 (List.length (Injector.fired_of s2))

(* The active-session slot is [Domain.DLS]: a fresh domain starts
   disarmed even while the spawner has a session active, a worker's
   activate stays its own, and firings land on the worker's session
   handle only — the isolation each fleet shard's fault session
   relies on. *)
let test_session_domain_local () =
  let s_main = Injector.create (one ~point:"m" ~kind:Fault.Dma_error ~at:(Plan.Nth 1)) in
  Injector.activate s_main;
  Fun.protect ~finally:Injector.deactivate (fun () ->
      let worker =
        Domain.spawn (fun () ->
            let inherited = Injector.armed () in
            let mine = Injector.create (one ~point:"w" ~kind:Fault.Dma_error ~at:(Plan.Nth 1)) in
            Injector.activate mine;
            let fired_here = Injector.poll "w" <> None in
            Injector.deactivate ();
            (inherited, fired_here, List.length (Injector.fired_of mine)))
      in
      let inherited, fired_here, worker_firings = Domain.join worker in
      checkb "fresh domain starts disarmed" false inherited;
      checkb "worker session fires in its domain" true fired_here;
      checki "firings on the worker handle" 1 worker_firings;
      checkb "main session still active" true
        (match Injector.current () with Some x -> x == s_main | None -> false);
      checki "main session saw nothing" 0 (List.length (Injector.fired_of s_main)))

(* --------------------------- subsystem hooks ---------------------- *)

let test_dma_transfer_fault () =
  let machine = Machine.create (Machine.nexus4 ()) in
  let addr = (Dram.region (Machine.dram machine)).Memmap.base in
  Injector.arm (one ~point:Injector.Points.dma_read ~kind:Fault.Dma_error ~at:(Plan.Every 1));
  (match Dma.read (Machine.dma machine) ~addr ~len:16 with
  | Error Dma.Faulted -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Faulted");
  Injector.disarm ();
  (* disarmed: same transfer goes through *)
  match Dma.read (Machine.dma machine) ~addr ~len:16 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "clean transfer must succeed"

let test_dma_write_fault () =
  let machine = Machine.create (Machine.nexus4 ()) in
  let addr = (Dram.region (Machine.dram machine)).Memmap.base in
  Injector.arm (one ~point:Injector.Points.dma_write ~kind:Fault.Dma_error ~at:(Plan.Nth 1));
  (match Dma.write (Machine.dma machine) ~addr (Bytes.make 16 'x') with
  | Error Dma.Faulted -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Faulted");
  Injector.disarm ()

let test_reset_mid_dmcrypt_leaves_target_untouched () =
  let machine = Machine.create (Machine.tegra3 ~dram_size:(4 * Units.mib) ()) in
  let frames =
    Frame_alloc.create machine
      ~region:(Memmap.region ~base:(Dram.region (Machine.dram machine)).Memmap.base
                 ~size:(1 * Units.mib))
  in
  let api = Sentry_crypto.Crypto_api.create () in
  let g =
    Sentry_crypto.Generic_aes.create machine ~ctx_base:(Frame_alloc.alloc frames)
      ~variant:Sentry_crypto.Perf.Crypto_api_kernel
  in
  Sentry_crypto.Generic_aes.register g api;
  let dev = Block_dev.create machine ~kind:Block_dev.Ramdisk ~size:(64 * Units.kib) in
  let dm = Dm_crypt.create ~api ~key:(Bytes.make 16 'k') (Block_dev.target dev) in
  let before = Bytes.copy (Block_dev.raw dev) in
  Injector.arm (one ~point:Injector.Points.dm_crypt_sector ~kind:Fault.Reset ~at:(Plan.Nth 1));
  (match Blockio.write (Dm_crypt.target dm) ~off:0 (Bytes.make 512 'S') with
  | () -> Alcotest.fail "sector write must be interrupted"
  | exception Injector.Injected _ -> ());
  Injector.disarm ();
  (* sector ops are atomic at the lower target: the interrupted write
     must not have reached the device at all *)
  checkb "medium untouched" true (Bytes.equal before (Block_dev.raw dev))

let test_bit_flips_corrupt_dram () =
  let machine = Machine.create (Machine.nexus4 ()) in
  let base = (Dram.region (Machine.dram machine)).Memmap.base in
  Injector.arm (one ~point:Injector.Points.machine_write ~kind:(Fault.Bit_flip 8) ~at:(Plan.Every 1));
  Injector.set_bit_flip_handler (Fault_scenario.bit_flip_handler machine);
  for i = 0 to 15 do
    Machine.write machine (base + (i * 64)) (Bytes.make 64 '\x00')
  done;
  let firings = List.length (Injector.fired ()) in
  Injector.disarm ();
  checkb "flips fired" true (firings >= 16);
  (* 8 random flips per store over a small DRAM: some corruption must
     be visible somewhere *)
  let raw = Dram.raw (Machine.dram machine) in
  let corrupted = ref false in
  Bytes.iter (fun c -> if c <> '\x00' && c <> '\xff' then corrupted := true) raw;
  ignore !corrupted (* flips may land on already-0x00/0xff bytes; the firing count is the real assertion *)

(* ----------------------- crash-consistent pipeline ----------------- *)

let fresh_sentry () =
  Process.reset_pids ();
  let system = System.boot `Nexus4 ~seed:42 in
  let config = { (Config.default `Nexus4) with Config.track_taint = true; journal = true } in
  let sentry = Sentry.install system config in
  let app = Fault_scenario.spawn_workload system sentry in
  (system, sentry, app)

(** The convergence fingerprint: every PTE's (vpn, present, encrypted,
    young) plus the process run state. *)
let pte_snapshot (app : Process.t) =
  Address_space.regions app.Process.aspace
  |> List.concat_map (fun r ->
         Address_space.region_ptes app.Process.aspace r
         |> List.map (fun (vpn, pte) ->
                ( vpn,
                  pte.Page_table.present,
                  pte.Page_table.encrypted,
                  pte.Page_table.young )))

(** Reference: an uninterrupted lock over the same workload. *)
let reference () =
  let _, sentry, app = fresh_sentry () in
  let stats = Sentry.lock sentry in
  (stats.Encrypt_on_lock.pages_encrypted, pte_snapshot app, app.Process.state)

let check_converged ~ref_ptes ~ref_state sentry (app : Process.t) =
  checkb "device locked" true (Sentry.state sentry = Lock_state.Locked);
  checkb "PTEs converge to uninterrupted lock" true (pte_snapshot app = ref_ptes);
  checkb "parking converges" true (app.Process.state = ref_state);
  checki "locked-state audit clean" 0
    (List.length (Checkers.Locked_state_consistent.audit sentry))

(** The tentpole acceptance test: kill the lock walk with power loss
    after the Nth encrypted page, for {e every} N, recover, and mount
    each Table 2 cold-boot variant against the result.  The secret
    must never be recoverable and the final state must equal the
    uninterrupted lock's. *)
let test_power_loss_every_page_boundary () =
  let total, ref_ptes, ref_state = reference () in
  checkb "workload big enough to matter" true (total >= 12);
  List.iter
    (fun variant ->
      for k = 1 to total do
        let system, sentry, app = fresh_sentry () in
        let machine = System.machine system in
        Injector.arm
          (one ~point:Injector.Points.page_encrypted ~kind:Fault.Power_loss ~at:(Plan.Nth k));
        (match Sentry.lock sentry with
        | (_ : Encrypt_on_lock.stats) ->
            Alcotest.failf "lock survived injected power loss at page %d" k
        | exception Injector.Injected _ -> ());
        Injector.disarm ();
        Machine.reboot machine (Machine.Hard_reset 2.0);
        (match Sentry.recover sentry with
        | None -> Alcotest.fail "recover must see the interrupted lock"
        | Some r ->
            checkb "rolled forward" true (r.Sentry.resumed = Sentry.Resumed_lock);
            checkb "rekeyed after power loss" true r.Sentry.rekeyed);
        check_converged ~ref_ptes ~ref_state sentry app;
        checkb
          (Printf.sprintf "no secret via %s after crash at page %d"
             (Sentry_attacks.Cold_boot.variant_name variant)
             k)
          false
          (Sentry_attacks.Cold_boot.succeeds machine variant ~secret:Fault_scenario.secret)
      done)
    [
      Sentry_attacks.Cold_boot.Os_reboot;
      Sentry_attacks.Cold_boot.Device_reflash;
      Sentry_attacks.Cold_boot.Two_second_reset;
    ]

(** The harder remanence case: a watchdog reset (warm — DRAM fully
    survives) mid-walk.  Whatever was still cleartext at the crash is
    sitting intact in DRAM; recovery must encrypt it before the
    attacker images memory. *)
let test_warm_reset_every_page_boundary () =
  let total, ref_ptes, ref_state = reference () in
  for k = 1 to total do
    let system, sentry, app = fresh_sentry () in
    let machine = System.machine system in
    Injector.arm
      (one ~point:Injector.Points.page_encrypted ~kind:Fault.Reset ~at:(Plan.Nth k));
    (match Sentry.lock sentry with
    | (_ : Encrypt_on_lock.stats) -> Alcotest.failf "lock survived injected reset at page %d" k
    | exception Injector.Injected _ -> ());
    Injector.disarm ();
    Machine.reboot machine Machine.Warm;
    (match Sentry.recover sentry with
    | None -> Alcotest.fail "recover must see the interrupted lock"
    | Some r ->
        checkb "no rekey on warm reboot" false r.Sentry.rekeyed;
        checkb "journal survived warm reboot" true (r.Sentry.journal_entry <> None);
        (match r.Sentry.journal_entry with
        | Some e ->
            checkb "journal pass" true (e.Lock_journal.pass = Lock_journal.Lock_pass);
            (* the hook fires after page k's commit (ciphertext, PTE
               flag, journal record), so a crash at page k leaves k
               pages complete — of which the coalesced journal (one
               record write per [Lock_journal.coalesce] pages) had
               persisted the last full group *)
            checki "journal page count"
              (k / Lock_journal.coalesce * Lock_journal.coalesce)
              e.Lock_journal.pages_done
        | None -> ()));
    check_converged ~ref_ptes ~ref_state sentry app;
    checkb "no secret via OS reboot" false
      (Sentry_attacks.Cold_boot.succeeds machine Sentry_attacks.Cold_boot.Os_reboot
         ~secret:Fault_scenario.secret)
  done

(** The coalesced-journal blind spot: [Lock_journal.record_batch]
    writes one record per [Lock_journal.coalesce] pages, so a crash
    at page boundary k strictly inside a group leaves up to
    [coalesce - 1] committed pages the journal never counted.
    Roll-forward must treat those tail pages — and the boundary page
    itself — as done: re-encrypting any of them would double-encrypt,
    garbling the page for good under the surviving key.  The scenario
    where that data loss is observable is a {e software} crash of the
    lock walk (the daemon dies, the machine does not reboot): memory
    and caches survive intact, so after recovery every byte must
    still be accounted for.  (Reboot variants lose unflushed dirty L2
    lines by design — the every-page-boundary tests above cover their
    security, but content equality is only meaningful here.)  Proven
    the strong way: every workload frame's ciphertext after recovery,
    and its plaintext after a post-recovery unlock, must be
    bit-identical to an uninterrupted twin. *)

(** Current bytes of every present workload page through the machine's
    coherent view (cache included — ciphertext written during a lock
    sits in dirty L2 lines until the masked flush). *)
let frame_bytes machine (app : Process.t) =
  Address_space.regions app.Process.aspace
  |> List.concat_map (fun r ->
         Address_space.region_ptes app.Process.aspace r
         |> List.filter_map (fun (vpn, pte) ->
                if pte.Page_table.present then begin
                  let buf = Bytes.create Page.size in
                  Machine.read_into machine pte.Page_table.frame buf ~off:0 ~len:Page.size;
                  Some (vpn, buf)
                end
                else None))

let touch_everything system (app : Process.t) =
  List.iter
    (fun region ->
      for i = 0 to region.Address_space.npages - 1 do
        Vm.touch system.System.vm app ~vaddr:(region.Address_space.vstart + (i * Page.size))
      done)
    (Address_space.regions app.Process.aspace)

let test_mid_batch_tail_idempotent () =
  let plaintext, ciphertext, total =
    let system, sentry, app = fresh_sentry () in
    let machine = System.machine system in
    let plaintext = frame_bytes machine app in
    let stats = Sentry.lock sentry in
    (plaintext, frame_bytes machine app, stats.Encrypt_on_lock.pages_encrypted)
  in
  checkb "crash points sit strictly inside a coalesce group" true
    (total >= Lock_journal.coalesce + 4);
  let check_pages name k expected got =
    List.iter2
      (fun (vpn, b) (vpn', b') ->
        checki "page sets align" vpn vpn';
        checkb (Printf.sprintf "%s of page %d bit-identical (crash at %d)" name vpn k) true
          (Bytes.equal b b'))
      expected got
  in
  (* k = 5, 6, 7 with coalesce = 4: one full group journaled, then
     1..3 committed tail pages inside the journal's blind spot *)
  List.iter
    (fun k ->
      let system, sentry, app = fresh_sentry () in
      let machine = System.machine system in
      Injector.arm (one ~point:Injector.Points.page_encrypted ~kind:Fault.Reset ~at:(Plan.Nth k));
      (match Sentry.lock sentry with
      | (_ : Encrypt_on_lock.stats) -> Alcotest.failf "lock survived injected reset at page %d" k
      | exception Injector.Injected _ -> ());
      Injector.disarm ();
      (match Sentry.recover sentry with
      | None -> Alcotest.fail "recover must see the interrupted lock"
      | Some r ->
          checkb "rolled forward" true (r.Sentry.resumed = Sentry.Resumed_lock);
          checkb "software crash keeps the key" false r.Sentry.rekeyed;
          (match r.Sentry.journal_entry with
          | Some e ->
              checki "journal under-counts to the last full group"
                (k / Lock_journal.coalesce * Lock_journal.coalesce)
                e.Lock_journal.pages_done
          | None -> Alcotest.fail "journal entry missing");
          (* committed pages — journaled or not — are never redone *)
          checki "recovery re-encrypts exactly the untransformed pages" (total - k)
            r.Sentry.pages_fixed);
      checkb "device locked" true (Sentry.state sentry = Lock_state.Locked);
      (* ciphertext converges bit-for-bit: a double-encrypted tail or
         boundary page would diverge right here *)
      check_pages "ciphertext" k ciphertext (frame_bytes machine app);
      (* and the data survives the crash: unlock + touch restores the
         exact pre-lock plaintext (double-encrypt would decrypt to
         garbage instead) *)
      (match Sentry.unlock sentry ~pin:(Sentry.config sentry).Config.pin with
      | Ok (_ : Decrypt_on_unlock.stats) -> ()
      | Error _ -> Alcotest.fail "post-recovery unlock failed");
      touch_everything system app;
      check_pages "plaintext" k plaintext (frame_bytes machine app))
    [ 5; 6; 7 ]

(** Crash mid-transform (before the ciphertext write-back): the page
    is still cleartext and its PTE still says so — recovery must
    re-encrypt it, not trust a half-done transform. *)
let test_reset_mid_frame_transform () =
  let _, ref_ptes, ref_state = reference () in
  let system, sentry, app = fresh_sentry () in
  let machine = System.machine system in
  Injector.arm
    (one ~point:Injector.Points.frame_transform ~kind:Fault.Reset ~at:(Plan.Nth 5));
  (match Sentry.lock sentry with
  | (_ : Encrypt_on_lock.stats) -> Alcotest.fail "lock survived mid-transform reset"
  | exception Injector.Injected _ -> ());
  Injector.disarm ();
  Machine.reboot machine Machine.Warm;
  (match Sentry.recover sentry with
  | None -> Alcotest.fail "recover must run"
  | Some r ->
      (* 4 pages were fully encrypted before the 5th transform died —
         exactly one full coalesce group, so the journal persisted all
         of them *)
      checki "journal saw 4 pages" 4
        (match r.Sentry.journal_entry with Some e -> e.Lock_journal.pages_done | None -> -1));
  check_converged ~ref_ptes ~ref_state sentry app;
  checkb "no secret" false
    (Sentry_attacks.Cold_boot.succeeds machine Sentry_attacks.Cold_boot.Os_reboot
       ~secret:Fault_scenario.secret)

(** Crash mid-unlock: the eager DMA decrypt dies after the 2nd page.
    Recovery must re-encrypt what was decrypted and roll the state
    machine back to Locked without counting an unlock. *)
let test_unlock_rollback () =
  let _, ref_ptes, ref_state = reference () in
  let system, sentry, app = fresh_sentry () in
  let machine = System.machine system in
  ignore (Sentry.lock sentry);
  Injector.arm
    (one ~point:Injector.Points.page_decrypted ~kind:Fault.Reset ~at:(Plan.Nth 2));
  (match Sentry.unlock sentry ~pin:(Sentry.config sentry).Config.pin with
  | Ok _ | Error _ -> Alcotest.fail "unlock survived injected reset"
  | exception Injector.Injected _ -> ());
  Injector.disarm ();
  Machine.reboot machine Machine.Warm;
  (match Sentry.recover sentry with
  | None -> Alcotest.fail "recover must see the interrupted unlock"
  | Some r ->
      checkb "rolled back" true (r.Sentry.resumed = Sentry.Rolled_back_unlock);
      checkb "re-encrypted the decrypted pages" true (r.Sentry.pages_fixed >= 2));
  check_converged ~ref_ptes ~ref_state sentry app;
  let locks, unlocks, _ = Lock_state.counts (Sentry.lock_state sentry) in
  checki "one lock" 1 locks;
  checki "aborted unlock not counted" 0 unlocks;
  checkb "no secret" false
    (Sentry_attacks.Cold_boot.succeeds machine Sentry_attacks.Cold_boot.Os_reboot
       ~secret:Fault_scenario.secret);
  (* and the device still unlocks cleanly afterwards *)
  match Sentry.unlock sentry ~pin:(Sentry.config sentry).Config.pin with
  | Ok _ -> checkb "unlocked" true (Sentry.state sentry = Lock_state.Unlocked)
  | Error _ -> Alcotest.fail "post-recovery unlock failed"

(** Recovery with no journal at all — both the [Config.journal = false]
    case and the firmware-cleared-record case collapse to the same
    Lock_state-keyed sweep, which must converge by itself. *)
let test_recovery_without_journal () =
  let _, ref_ptes, ref_state = reference () in
  Process.reset_pids ();
  let system = System.boot `Nexus4 ~seed:42 in
  let config = { (Config.default `Nexus4) with Config.track_taint = true; journal = false } in
  let sentry = Sentry.install system config in
  let app = Fault_scenario.spawn_workload system sentry in
  checkb "journal off" false (Sentry.journal_enabled sentry);
  let machine = System.machine system in
  Injector.arm
    (one ~point:Injector.Points.page_encrypted ~kind:Fault.Power_loss ~at:(Plan.Nth 6));
  (match Sentry.lock sentry with
  | (_ : Encrypt_on_lock.stats) -> Alcotest.fail "lock survived"
  | exception Injector.Injected _ -> ());
  Injector.disarm ();
  Machine.reboot machine (Machine.Hard_reset 2.0);
  (match Sentry.recover sentry with
  | None -> Alcotest.fail "recover must run without a journal"
  | Some r -> checkb "no journal entry" true (r.Sentry.journal_entry = None));
  check_converged ~ref_ptes ~ref_state sentry app

(** Journal allocation when iRAM has no room: the exact expression
    [Sentry.install] uses must yield [None] (graceful fallback to the
    journal-less pipeline), never an exception. *)
let test_journal_alloc_exhaustion_graceful () =
  let a = Iram_alloc.create_range ~base:0x40010000 ~limit:(0x40010000 + 16) in
  checkb "16 B of iRAM: no record" true (Iram_alloc.alloc a ~bytes:Lock_journal.size_bytes = None);
  (* with room for exactly one record, the journal fits and a second
     does not — the allocator stays well-behaved either way *)
  let b = Iram_alloc.create_range ~base:0x40010000 ~limit:(0x40010000 + Lock_journal.size_bytes) in
  checkb "32 B: record fits" true (Iram_alloc.alloc b ~bytes:Lock_journal.size_bytes <> None);
  checkb "second record: graceful None" true
    (Iram_alloc.alloc b ~bytes:Lock_journal.size_bytes = None)

(** A stale journal record (crash after the walk finished, before
    commit… or a record left by a completed pass) is cleared by a
    recover on a consistent system, which otherwise does nothing. *)
let test_recover_noop_when_consistent () =
  let _, sentry, _ = fresh_sentry () in
  checkb "nothing to recover when unlocked" true (Sentry.recover sentry = None);
  ignore (Sentry.lock sentry);
  checkb "nothing to recover when locked" true (Sentry.recover sentry = None)

(* ------------------------- canned scenarios ------------------------ *)

let test_canned_plans_survive () =
  List.iter
    (fun (name, plan) ->
      Process.reset_pids ();
      let o = Fault_scenario.run plan in
      checkb (name ^ ": ends locked, consistent, nothing recoverable") true
        (Fault_scenario.survived o))
    Fault_scenario.plans

let test_canned_plan_lookup () =
  checkb "known plan" true (Fault_scenario.find_plan "power-loss-mid-lock" <> None);
  checkb "unknown plan" true (Fault_scenario.find_plan "no-such-plan" = None);
  checki "plan inventory" 6 (List.length Fault_scenario.plan_names)

(* ------------------------------ main ------------------------------ *)

let () =
  Alcotest.run "sentry_faults"
    [
      ( "injector",
        [
          Alcotest.test_case "disarmed noop" `Quick test_disarmed_is_noop;
          Alcotest.test_case "nth occurrence" `Quick test_nth_occurrence;
          Alcotest.test_case "every occurrence" `Quick test_every_occurrence;
          Alcotest.test_case "prob deterministic" `Quick test_prob_deterministic;
          Alcotest.test_case "bit flip handler" `Quick test_bit_flip_invokes_handler_and_continues;
          Alcotest.test_case "session handle api" `Quick test_session_handle_api;
          Alcotest.test_case "session is domain-local" `Quick test_session_domain_local;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "dma read faults" `Quick test_dma_transfer_fault;
          Alcotest.test_case "dma write faults" `Quick test_dma_write_fault;
          Alcotest.test_case "dm-crypt sector atomic" `Quick
            test_reset_mid_dmcrypt_leaves_target_untouched;
          Alcotest.test_case "bit flips land in dram" `Quick test_bit_flips_corrupt_dram;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "power loss at every page boundary" `Slow
            test_power_loss_every_page_boundary;
          Alcotest.test_case "warm reset at every page boundary" `Slow
            test_warm_reset_every_page_boundary;
          Alcotest.test_case "mid-batch tail idempotent" `Quick test_mid_batch_tail_idempotent;
          Alcotest.test_case "reset mid frame transform" `Quick test_reset_mid_frame_transform;
          Alcotest.test_case "unlock rollback" `Quick test_unlock_rollback;
          Alcotest.test_case "recovery without journal" `Quick test_recovery_without_journal;
          Alcotest.test_case "journal alloc exhaustion" `Quick
            test_journal_alloc_exhaustion_graceful;
          Alcotest.test_case "recover noop when consistent" `Quick
            test_recover_noop_when_consistent;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "canned plans survive" `Slow test_canned_plans_survive;
          Alcotest.test_case "plan lookup" `Quick test_canned_plan_lookup;
        ] );
    ]
