lib/kernel/ramfs.ml: Blockio Bytes Hashtbl Page Printf
