(** §7's motivation numbers for selective encryption:

    - encrypting all of a 2 GB phone's DRAM takes over a minute and
      ~70 J, i.e. a battery survives only ~410 suspend/resume cycles;
    - the freed-page zeroing barrier costs ~4 GB/s at 2.8 uJ/MB
      (negligible);
    - with selective encryption, protecting one app costs ~2% of the
      battery per day at 150 unlocks.

    The full-memory sweep runs for real over a smaller simulated DRAM
    and scales linearly (encryption cost is strictly per-byte). *)

open Sentry_util
open Sentry_soc
open Sentry_crypto
open Sentry_core
open Sentry_workloads

let full_memory_sweep () =
  let sim_mb = 64 in
  let target_mb = 2048 in
  let system = System.boot `Nexus4 ~dram_size:(sim_mb * Units.mib) ~seed:0x407 in
  let machine = System.machine system in
  let frame = Sentry_kernel.Frame_alloc.alloc system.System.frames in
  let g = Generic_aes.create machine ~ctx_base:frame ~variant:Perf.Crypto_api_kernel in
  Generic_aes.set_key g (Bytes.make 16 'k');
  let t0 = Machine.now machine in
  let e0 = Energy.category (Machine.energy machine) "aes" in
  let chunk = Bytes.make (256 * Units.kib) 'x' in
  let iv = Bytes.make 16 '\000' in
  for _ = 1 to sim_mb * 4 do
    ignore (Generic_aes.bulk g ~dir:`Encrypt ~iv chunk)
  done;
  let scale = float_of_int target_mb /. float_of_int sim_mb in
  let seconds = (Machine.now machine -. t0) /. Units.s *. scale in
  let joules = (Energy.category (Machine.energy machine) "aes" -. e0) *. scale in
  (seconds, joules)

let zeroing_cost () =
  let system = System.boot `Nexus4 ~seed:0x408 in
  let machine = System.machine system in
  let frames = system.System.frames in
  let n = 2048 in
  let held = List.init n (fun _ -> Sentry_kernel.Frame_alloc.alloc frames) in
  List.iter (Sentry_kernel.Frame_alloc.free frames) held;
  let t0 = Machine.now machine in
  let e0 = Energy.category (Machine.energy machine) "zerod" in
  let zeroed = Sentry_kernel.Zerod.drain system.System.zerod in
  let bytes = zeroed * 4096 in
  let gb_s =
    float_of_int bytes /. float_of_int Units.gib /. ((Machine.now machine -. t0) /. Units.s)
  in
  let uj_mb =
    (Energy.category (Machine.energy machine) "zerod" -. e0) /. Units.bytes_to_mb bytes *. 1e6
  in
  (gb_s, uj_mb)

let run () =
  let sweep_s, sweep_j = full_memory_sweep () in
  let cycles = Calib.nexus4_battery_j /. sweep_j in
  let gb_s, uj_mb = zeroing_cost () in
  let strawman =
    [
      [ "Full 2 GB encryption time"; Printf.sprintf "%.0f s" sweep_s; "over a minute" ];
      [ "Full 2 GB encryption energy"; Printf.sprintf "%.0f J" sweep_j; "over 70 J" ];
      [ "Battery cycles until empty"; Printf.sprintf "%.0f" cycles; "410" ];
      [ "Freed-page zeroing rate"; Printf.sprintf "%.2f GB/s" gb_s; "4.014 GB/s" ];
      [ "Freed-page zeroing energy"; Printf.sprintf "%.2f uJ/MB" uj_mb; "2.8 uJ/MB" ];
    ]
  in
  let daily =
    List.map
      (fun profile ->
        let r = Daily_use.estimate profile in
        [
          r.Daily_use.app_name;
          Printf.sprintf "%.2f J" (r.Daily_use.joules_per_lock +. r.Daily_use.joules_per_unlock);
          Printf.sprintf "%.0f J" r.Daily_use.joules_per_day;
          Printf.sprintf "%.1f%%" (100.0 *. r.Daily_use.battery_fraction);
        ])
      Apps.all
  in
  [
    Table.make ~title:"S7 motivation: why encrypt selectively, not everything"
      ~header:[ "Quantity"; "measured"; "paper" ]
      strawman;
    Table.make ~title:"S7/S8: daily battery cost of selective protection (150 cycles)"
      ~header:[ "App"; "J/cycle"; "J/day"; "battery/day" ]
      ~notes:[ "Paper: about 2% of a device's battery per day per protected application." ]
      daily;
  ]
