lib/kernel/dm_crypt.mli: Blockio Bytes Crypto_api Sentry_crypto
