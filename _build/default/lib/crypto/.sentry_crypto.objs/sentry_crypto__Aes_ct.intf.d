lib/crypto/aes_ct.mli: Aes_key Bytes Mode
