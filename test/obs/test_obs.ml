(** Observability-layer tests: ring semantics, metrics reductions,
    exporter output shape (checked with a small standalone JSON
    parser) and end-to-end trace determinism over the canned
    scenarios. *)

open Sentry_obs

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ----------------------- a tiny JSON parser ----------------------- *)

(* Enough JSON to validate exporter output without a json dependency:
   objects, arrays, strings (with escapes), numbers, booleans, null. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some x when x = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some ('"' | '\\' | '/') ->
                Buffer.add_char b s.[!pos];
                advance ();
                go ()
            | Some 'n' ->
                Buffer.add_char b '\n';
                advance ();
                go ()
            | Some 't' ->
                Buffer.add_char b '\t';
                advance ();
                go ()
            | Some ('b' | 'f' | 'r') ->
                advance ();
                go ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  advance ()
                done;
                Buffer.add_char b '?';
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "empty input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (
            advance ();
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or }"
            in
            Obj (members [])
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (
            advance ();
            Arr [])
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ]"
            in
            Arr (elems [])
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

let with_fresh_trace ?capacity f =
  Trace.start ?capacity ();
  Fun.protect ~finally:Trace.stop f

(* ------------------------------ trace ----------------------------- *)

let emit_n n =
  for i = 0 to n - 1 do
    Trace.emit
      ~ts:(float_of_int i)
      ~cat:Event.Bus ~subsystem:"soc.bus"
      ~args:[ ("i", Event.Int i) ]
      "tick"
  done

let test_trace_off_is_silent () =
  Trace.stop ();
  checkb "off" false (Trace.on ());
  Trace.emit ~cat:Event.Bus ~subsystem:"soc.bus" "ignored";
  checki "no events" 0 (List.length (Trace.events ()));
  let s = Trace.stats () in
  checki "emitted" 0 s.Trace.emitted;
  checki "capacity" 0 s.Trace.capacity

let test_trace_records_in_order () =
  with_fresh_trace (fun () ->
      emit_n 5;
      let evs = Trace.events () in
      checki "count" 5 (List.length evs);
      List.iteri
        (fun i (e : Event.t) ->
          checkf "ordered ts" (float_of_int i) e.Event.ts_ns;
          Alcotest.(check string) "subsystem" "soc.bus" e.Event.subsystem)
        evs)

let test_ring_overflow_keeps_newest () =
  with_fresh_trace ~capacity:8 (fun () ->
      emit_n 20;
      let s = Trace.stats () in
      checki "emitted" 20 s.Trace.emitted;
      checki "dropped" 12 s.Trace.dropped;
      let evs = Trace.events () in
      checki "retained = capacity" 8 (List.length evs);
      (* newest 8 survive: ts 12..19, oldest first *)
      List.iteri
        (fun i (e : Event.t) -> checkf "newest window" (float_of_int (12 + i)) e.Event.ts_ns)
        evs;
      (* per-category counts include dropped events *)
      match Trace.category_counts () with
      | [ (Event.Bus, n) ] -> checki "category total" 20 n
      | _ -> Alcotest.fail "expected only Bus counts")

let test_trace_clear_keeps_recorder () =
  with_fresh_trace (fun () ->
      emit_n 3;
      Trace.clear ();
      checkb "still on" true (Trace.on ());
      checki "empty" 0 (List.length (Trace.events ())))

let test_span_duration () =
  with_fresh_trace (fun () ->
      Trace.span ~cat:Event.Crypto ~subsystem:"crypto.perf" ~start_ns:100.0 ~end_ns:350.0
        "op";
      match Trace.events () with
      | [ e ] -> (
          checkf "start" 100.0 e.Event.ts_ns;
          match e.Event.phase with
          | Event.Complete d -> checkf "duration" 250.0 d
          | _ -> Alcotest.fail "expected Complete")
      | _ -> Alcotest.fail "expected one event")

(** The explicit-handle surface: recorders are values, the ambient
    install is just a pointer to one of them, and a recorder's ring
    stays readable after [uninstall]. *)
let test_recorder_handle_api () =
  let r1 = Trace.Recorder.create ~capacity:4 () in
  let r2 = Trace.Recorder.create () in
  checkb "nothing installed yet" true (Trace.installed () = None);
  Trace.install r1;
  checkb "compat on() sees the install" true (Trace.on ());
  emit_n 6;
  (* swap recorders mid-stream: emitters are oblivious *)
  Trace.install r2;
  emit_n 2;
  Trace.uninstall ();
  checkb "uninstalled" false (Trace.on ());
  let s1 = Trace.Recorder.stats r1 and s2 = Trace.Recorder.stats r2 in
  checki "r1 emitted" 6 s1.Trace.emitted;
  checki "r1 dropped to capacity" 2 s1.Trace.dropped;
  checki "r2 emitted" 2 s2.Trace.emitted;
  checki "r2 kept both" 2 (List.length (Trace.Recorder.events r2));
  (* direct emission onto a handle needs no install at all *)
  Trace.Recorder.emit r2 ~cat:Event.Lock ~subsystem:"t" "direct";
  checki "direct emit" 3 (Trace.Recorder.stats r2).Trace.emitted;
  checkb "bad capacity rejected" true
    (try
       ignore (Trace.Recorder.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

(* ----------------------------- metrics ---------------------------- *)

let test_metrics_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~subsystem:"t" "hits" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  checki "counter" 5 (Metrics.counter_value c);
  let g = Metrics.gauge m ~subsystem:"t" "level" in
  Metrics.set g 2.5;
  checkf "gauge" 2.5 (Metrics.gauge_value g);
  let flat = Metrics.flat m in
  checkf "flat counter" 5.0 (List.assoc "t/hits" flat);
  checkf "flat gauge" 2.5 (List.assoc "t/level" flat)

let test_metrics_histogram_percentiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~subsystem:"t" "lat" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  let flat = Metrics.flat m in
  checkf "count" 100.0 (List.assoc "t/lat/count" flat);
  checkf "mean" 50.5 (List.assoc "t/lat/mean" flat);
  checkf "p50" 50.0 (List.assoc "t/lat/p50" flat);
  checkf "p95" 95.0 (List.assoc "t/lat/p95" flat);
  checkf "p99" 99.0 (List.assoc "t/lat/p99" flat);
  checkf "max" 100.0 (List.assoc "t/lat/max" flat)

(** Regression: the flat export must be sorted by key regardless of
    registration order, so two registries with the same instruments
    produce byte-identical reports (what the bench snapshot diffs and
    the differential suites rely on). *)
let test_metrics_flat_order_independent () =
  let keys =
    [ "zerod/pages"; "bus/txns"; "lock/count"; "aes/bytes"; "sched/switches" ]
  in
  let value_of key = float_of_int (Hashtbl.hash key mod 1000) in
  let with_values order =
    let m = Metrics.create () in
    List.iter
      (fun key ->
        match String.split_on_char '/' key with
        | [ subsystem; name ] ->
            Metrics.inc ~by:(int_of_float (value_of key)) (Metrics.counter m ~subsystem name)
        | _ -> assert false)
      order;
    Metrics.flat m
  in
  let a = with_values keys in
  let b = with_values (List.rev keys) in
  checkb "insertion order is invisible" true (a = b);
  let ks = List.map fst a in
  checkb "keys sorted" true (ks = List.sort String.compare ks);
  checki "all present" (List.length keys) (List.length a)

let test_metrics_kind_clash () =
  let m = Metrics.create () in
  ignore (Metrics.counter m ~subsystem:"t" "x");
  checkb "clash raises" true
    (try
       ignore (Metrics.gauge m ~subsystem:"t" "x");
       false
     with Invalid_argument _ -> true)

(* ---------------------------- exporters --------------------------- *)

let sample_events =
  [
    {
      Event.ts_ns = 1000.0;
      cat = Event.Lock;
      subsystem = "core.lock_state";
      name = "lock-transition";
      phase = Event.Instant;
      args = [ ("from", Event.Str "unlocked"); ("to", Event.Str "locking") ];
    };
    {
      Event.ts_ns = 2000.0;
      cat = Event.Crypto;
      subsystem = "crypto.perf";
      name = "aes-charge";
      phase = Event.Complete 512.0;
      args = [ ("bytes", Event.Int 4096); ("ok", Event.Bool true) ];
    };
  ]

let test_chrome_trace_shape () =
  let doc = Json.parse (Export.chrome_trace_string sample_events) in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  checkb "displayTimeUnit" true (Json.member "displayTimeUnit" doc = Some (Json.Str "ns"));
  (* metadata names the process and one lane per subsystem *)
  let phases =
    List.filter_map (fun e -> Json.member "ph" e) events
    |> List.map (function Json.Str s -> s | _ -> Alcotest.fail "ph not a string")
  in
  checkb "has metadata" true (List.mem "M" phases);
  checkb "has instant" true (List.mem "i" phases);
  checkb "has span" true (List.mem "X" phases);
  List.iter
    (fun e ->
      checkb "every event has a name" true (Json.member "name" e <> None);
      checkb "every event has a pid" true (Json.member "pid" e <> None);
      match Json.member "ph" e with
      | Some (Json.Str "X") ->
          (* spans carry microsecond dur: 512 ns = 0.512 us *)
          checkb "span dur" true (Json.member "dur" e = Some (Json.Num 0.512));
          checkb "span ts in us" true (Json.member "ts" e = Some (Json.Num 2.0))
      | _ -> ())
    events

let test_jsonl_parses_per_line () =
  let lines =
    Export.jsonl sample_events |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  checki "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      let o = Json.parse line in
      checkb "cat" true (Json.member "cat" o <> None);
      checkb "ts_ns" true (Json.member "ts_ns" o <> None))
    lines

let test_metrics_jsonl () =
  let lines =
    Export.metrics_jsonl [ ("a/b", 1.5); ("c/d", infinity) ]
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  checki "two lines" 2 (List.length lines);
  (match Json.parse (List.nth lines 0) with
  | o ->
      checkb "key" true (Json.member "key" o = Some (Json.Str "a/b"));
      checkb "value" true (Json.member "value" o = Some (Json.Num 1.5)));
  (* non-finite floats must not corrupt the JSON *)
  checkb "inf is null" true (Json.member "value" (Json.parse (List.nth lines 1)) = Some Json.Null)

(* ------------------------- end-to-end runs ------------------------ *)

let run_scenario ?seed name platform =
  Trace.start ();
  let r = Sentry_core.Trace_scenario.run ?seed name platform in
  let evs = Trace.events () in
  let flat = Sentry_core.Obs_report.flat r.Sentry_core.Trace_scenario.sentry in
  Trace.stop ();
  (evs, flat)

let test_scenario_deterministic () =
  let a, _ = run_scenario Sentry_core.Trace_scenario.Lock_cycle `Tegra3 in
  let b, _ = run_scenario Sentry_core.Trace_scenario.Lock_cycle `Tegra3 in
  checki "same length" (List.length a) (List.length b);
  checkb "identical event streams" true (a = b)

let test_scenario_platform_sensitivity () =
  let a, _ = run_scenario Sentry_core.Trace_scenario.Lock_cycle `Tegra3 in
  let b, _ = run_scenario Sentry_core.Trace_scenario.Lock_cycle `Nexus4 in
  (* no cache locking and no background paging on the nexus4: the
     streams must reflect the platform, not just the scenario script *)
  checkb "streams differ" true (a <> b)

let required_names =
  [ "lock-transition"; "page-fault"; "aes-charge"; "device-read"; "read" ]

let test_scenario_covers_required_events () =
  List.iter
    (fun platform ->
      let evs, _ = run_scenario Sentry_core.Trace_scenario.Lock_cycle platform in
      let names = List.map (fun (e : Event.t) -> e.Event.name) evs in
      List.iter
        (fun n -> checkb (Printf.sprintf "%s present" n) true (List.mem n names))
        required_names)
    [ `Tegra3; `Nexus4; `Future ]

let test_scenario_metrics_report () =
  let _, flat = run_scenario Sentry_core.Trace_scenario.Lock_cycle `Tegra3 in
  checkb "bus transactions" true (List.assoc "soc.bus/transactions" flat > 0.0);
  checkb "locks counted" true (List.assoc "core.lock_state/locks" flat = 1.0);
  checkb "events recorded" true (List.assoc "obs.trace/events_emitted" flat > 0.0);
  (* keys are sorted for stable, diffable reports *)
  let keys = List.map fst flat in
  checkb "sorted keys" true (keys = List.sort compare keys)

let test_chrome_export_of_scenario_parses () =
  let evs, _ = run_scenario Sentry_core.Trace_scenario.Dm_crypt_io `Tegra3 in
  match Json.parse (Export.chrome_trace_string evs) with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "chrome trace must be a JSON object"

let () =
  Alcotest.run "sentry_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "off is silent" `Quick test_trace_off_is_silent;
          Alcotest.test_case "records in order" `Quick test_trace_records_in_order;
          Alcotest.test_case "overflow keeps newest" `Quick test_ring_overflow_keeps_newest;
          Alcotest.test_case "clear keeps recorder" `Quick test_trace_clear_keeps_recorder;
          Alcotest.test_case "span duration" `Quick test_span_duration;
          Alcotest.test_case "recorder handle api" `Quick test_recorder_handle_api;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter/gauge" `Quick test_metrics_counter_gauge;
          Alcotest.test_case "histogram percentiles" `Quick test_metrics_histogram_percentiles;
          Alcotest.test_case "flat order independent" `Quick test_metrics_flat_order_independent;
          Alcotest.test_case "kind clash" `Quick test_metrics_kind_clash;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
          Alcotest.test_case "jsonl per line" `Quick test_jsonl_parses_per_line;
          Alcotest.test_case "metrics jsonl" `Quick test_metrics_jsonl;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "platform sensitivity" `Quick test_scenario_platform_sensitivity;
          Alcotest.test_case "covers required events" `Quick test_scenario_covers_required_events;
          Alcotest.test_case "metrics report" `Quick test_scenario_metrics_report;
          Alcotest.test_case "chrome export parses" `Quick test_chrome_export_of_scenario_parses;
        ] );
    ]
