(** The Fig 10 experiment: a compile-like memory trace through the
    real cache model with 0-8 ways locked; minutes are scaled so the
    0-way run matches the paper's 14.41. *)

val paper_baseline_minutes : float

type result = { locked_ways : int; minutes : float; miss_rate : float }

val run : ?seed:int -> locked_ways:int -> unit -> result

(** The full 0-8 sweep. *)
val sweep : ?seed:int -> unit -> result list
