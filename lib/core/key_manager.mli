(** Root keys, resident on-SoC (§7, Bootstrapping): the per-boot
    volatile key for memory pages and the fuse+password-derived
    persistent key for disk state. *)

open Sentry_soc

type t

val key_len : int

(** Generate the volatile key and park it on-SoC. *)
val create : Machine.t -> Onsoc.t -> t

(** Read the volatile key back from on-SoC storage. *)
val volatile_key : t -> Bytes.t

(** Generate a fresh volatile key and park it at the same on-SoC
    address (crash recovery after the old key was lost with power). *)
val regenerate_volatile : t -> Bytes.t

(** Derive the persistent key inside TrustZone (fuse secret + boot
    password) and park it on-SoC. *)
val unlock_persistent : t -> password:string -> Bytes.t

(** The parked persistent key, if derived this boot. *)
val persistent_key : t -> Bytes.t option

(** Overwrite both keys with 0xFF. *)
val wipe : t -> unit

(** Physical addresses where the keys are parked, for analysis passes
    checking root-key confinement. *)
val volatile_addr : t -> int

val persistent_addr : t -> int option
