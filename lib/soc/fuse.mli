(** Secure hardware fuse: a per-device secret readable only through
    TrustZone, plus the JTAG-disable fuse (§3.2, §7). *)

open Sentry_util

type t

val secret_len : int
val create : prng:Prng.t -> t

(** The raw secret wire — for the TrustZone implementation only;
    everything else must go through [Trustzone.read_fuse]. *)
val secret_unchecked : t -> Bytes.t

(** Irreversibly disable JTAG at provisioning time. *)
val burn_jtag_fuse : t -> unit

val jtag_enabled : t -> bool

(** Has the JTAG fuse been burned? *)
val burned : t -> bool
