lib/attacks/memdump.ml: Bytes Bytes_util Fmt Option Sentry_util Units
