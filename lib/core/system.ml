(** The booted software stack: machine + kernel services + crypto
    registry.  Everything above (Sentry, workloads, experiments)
    operates on a [t].

    DRAM layout carved at boot:
    {v
    [ kernel reserved | general frames ............ | locked-cache arena ]
    v}
    The arena (way-aligned, way-sized slots) is only used when the
    platform can lock cache ways; it is excluded from the frame
    allocator either way so layout stays identical across configs. *)

open Sentry_soc

type t = {
  machine : Machine.t;
  frames : Sentry_kernel.Frame_alloc.t;
  vm : Sentry_kernel.Vm.t;
  sched : Sentry_kernel.Sched.t;
  zerod : Sentry_kernel.Zerod.t;
  crypto_api : Sentry_crypto.Crypto_api.t;
  arena_base : int;
  mutable procs : Sentry_kernel.Process.t list;
  mutable next_pid : int option;
      (* [Some n]: this system owns its pid space and the next spawn
         gets [n] ([boot ~pid_base]).  [None]: pids come off the
         process-global atomic allocator (legacy single-machine
         behavior). *)
}

let arena_ways = 7 (* slots reserved; locking budget is configured lower *)

let boot ?(seed = 0x5e17) ?dram_size ?pid_base (platform : Config.platform) =
  let conf =
    match platform with
    | `Tegra3 -> Machine.tegra3 ?dram_size ()
    | `Nexus4 -> Machine.nexus4 ?dram_size ()
    | `Future -> Machine.future ?dram_size ()
  in
  let machine = Machine.create ~seed conf in
  let dram = Machine.dram_region machine in
  let way_size = Pl310.way_size (Machine.l2 machine) in
  let arena_size = arena_ways * way_size in
  let arena_base =
    (* top of DRAM, way-aligned *)
    (Memmap.limit dram - arena_size) / way_size * way_size
  in
  let kernel_reserved = 2 * Sentry_util.Units.mib in
  let frames_region =
    Memmap.region ~base:(dram.Memmap.base + kernel_reserved)
      ~size:(arena_base - dram.Memmap.base - kernel_reserved)
  in
  let frames = Sentry_kernel.Frame_alloc.create machine ~region:frames_region in
  {
    machine;
    frames;
    vm = Sentry_kernel.Vm.create machine;
    sched = Sentry_kernel.Sched.create machine;
    zerod = Sentry_kernel.Zerod.create machine ~frames;
    crypto_api = Sentry_crypto.Crypto_api.create ();
    arena_base;
    procs = [];
    next_pid = pid_base;
  }

let machine t = t.machine
let now t = Machine.now t.machine

(** [spawn t ~name ~bytes] creates a process with one [Normal] region
    of [bytes] and admits it to the scheduler. *)
let spawn ?(kind = Sentry_kernel.Address_space.Normal) t ~name ~bytes =
  let aspace = Sentry_kernel.Address_space.create t.machine ~frames:t.frames in
  ignore (Sentry_kernel.Address_space.map_region aspace ~name:"main" ~kind ~bytes);
  let kstack = Sentry_kernel.Frame_alloc.alloc t.frames in
  let pid =
    match t.next_pid with
    | Some n ->
        t.next_pid <- Some (n + 1);
        Some n
    | None -> None
  in
  let proc = Sentry_kernel.Process.create ?pid ~name ~aspace ~kstack () in
  t.procs <- proc :: t.procs;
  Sentry_kernel.Sched.admit t.sched proc;
  proc

let kill t proc =
  t.procs <- List.filter (fun p -> p != proc) t.procs;
  List.iter
    (fun r -> Sentry_kernel.Address_space.unmap_region proc.Sentry_kernel.Process.aspace r)
    (Sentry_kernel.Address_space.regions proc.Sentry_kernel.Process.aspace);
  Sentry_kernel.Frame_alloc.free t.frames proc.Sentry_kernel.Process.kstack

(** Fill a process region with recognisable content via the MMU. *)
let fill_region t proc (region : Sentry_kernel.Address_space.region) pattern =
  let bytes = Sentry_kernel.Address_space.region_bytes region in
  let data = Bytes.create bytes in
  Sentry_util.Bytes_util.fill_pattern data pattern;
  Sentry_kernel.Vm.write t.vm proc ~vaddr:region.Sentry_kernel.Address_space.vstart data
