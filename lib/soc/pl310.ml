(** PL310-style shared L2 cache controller with lockdown-by-way.

    Geometry mirrors the Tegra 3: 1 MB, 8 ways of 128 KB, 32-byte
    lines, write-back + write-allocate.  The controller supports:

    - {b Lockdown by way} (the "data lockdown" register): a bitmask of
      ways that receive no new allocations.  Lines already resident in
      a locked way keep serving hits and absorbing writes, but are
      never evicted — so their data never reaches DRAM.  This is the
      mechanism Sentry repurposes for security (§4.2).
    - {b Clean/invalidate with a way mask}: Sentry's kernel patch
      (§4.5) routes every L2 flush through a mask that skips locked
      ways.  The stock full flush, by contrast, cleans {e all} ways —
      including locked ones — and drops the lockdown, which is exactly
      the dangerous behaviour the paper discovered and disabled.

    If an access misses and every way is either locked or disabled,
    the access bypasses the cache entirely (uncached DRAM access), as
    the PL310 does when allocation is impossible. *)

type line = {
  mutable valid : bool;
  mutable dirty : bool;
  mutable tag : int;
  data : Bytes.t;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable bypasses : int;
}

type t = {
  dram : Dram.t;
  clock : Clock.t;
  energy : Energy.t;
  ways : int;
  way_size : int;
  line_size : int;
  sets : int;
  set_shift : int; (* log2 line_size *)
  lines : line array array; (* way -> set *)
  mutable lockdown : int; (* bit w set: way w receives no allocations *)
  mutable flush_mask : int; (* bit w set: maintenance ops skip way w *)
  rr : int array; (* per-set round-robin victim pointer *)
  stats : stats;
  mutable shadows : Bytes.t array array option; (* way -> set -> per-byte line taint *)
  mutable on_writeback : (way:int -> addr:int -> locked:bool -> unit) option;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* Trace emission; every call site is guarded by [Trace.on] so the
   disabled path costs one global test and allocates nothing. *)
let obs = "soc.l2"

let trace t ?ts ?phase ?args name =
  let ts = match ts with Some ts -> ts | None -> Clock.now t.clock in
  Sentry_obs.Trace.emit ~ts ~cat:Sentry_obs.Event.Cache ~subsystem:obs ?phase ?args name

let create ?(ways = 8) ?(way_size = 128 * Sentry_util.Units.kib) ?(line_size = 32) ~dram
    ~clock ~energy () =
  let sets = way_size / line_size in
  {
    dram;
    clock;
    energy;
    ways;
    way_size;
    line_size;
    sets;
    set_shift = log2 line_size;
    lines =
      Array.init ways (fun _ ->
          Array.init sets (fun _ ->
              { valid = false; dirty = false; tag = 0; data = Bytes.make line_size '\000' }));
    lockdown = 0;
    flush_mask = 0;
    rr = Array.make sets 0;
    stats = { hits = 0; misses = 0; writebacks = 0; bypasses = 0 };
    shadows = None;
    on_writeback = None;
  }

(* ------------------------- taint shadow -------------------------- *)

let enable_taint t =
  Dram.enable_taint t.dram;
  if t.shadows = None then
    t.shadows <-
      Some (Array.init t.ways (fun _ -> Array.init t.sets (fun _ -> Taint.create_shadow t.line_size)))

let taint_enabled t = t.shadows <> None

let line_shadow t w set =
  match t.shadows with Some s -> Some s.(w).(set) | None -> None

(** [set_writeback_hook t f] — [f] fires whenever a dirty line is
    written back to DRAM, with [locked] true when the line's way is
    currently under lockdown (the eviction the Sentry kernel patch
    must never let happen, §4.5). *)
let set_writeback_hook t f = t.on_writeback <- Some f

let clear_writeback_hook t = t.on_writeback <- None

let ways t = t.ways
let way_size t = t.way_size
let line_size t = t.line_size
let size t = t.ways * t.way_size
let stats t = t.stats

let set_of_addr t addr = (addr lsr t.set_shift) land (t.sets - 1)
let tag_of_addr t addr = addr lsr (t.set_shift + log2 t.sets)
let line_base t addr = addr land lnot (t.line_size - 1)

(* ---------------- lockdown & flush-mask registers ---------------- *)

let lockdown t = t.lockdown

(** [set_lockdown t mask] programs the lockdown-by-way register.  A set
    bit means the corresponding way allocates no new lines. *)
let set_lockdown t mask =
  Clock.advance t.clock Calib.pl310_op_ns;
  let masked = mask land ((1 lsl t.ways) - 1) in
  if Sentry_obs.Trace.on () && masked <> t.lockdown then
    trace t "way-lockdown"
      ~args:[ ("old_mask", Sentry_obs.Event.Int t.lockdown); ("new_mask", Sentry_obs.Event.Int masked) ];
  t.lockdown <- masked

let flush_mask t = t.flush_mask

(** [set_flush_mask t mask] records which ways the Sentry-patched
    kernel must skip during cache maintenance. *)
let set_flush_mask t mask = t.flush_mask <- mask land ((1 lsl t.ways) - 1)

(* --------------------------- lookup ------------------------------ *)

(** [lookup t addr] finds the way currently holding [addr]'s line. *)
let lookup t addr =
  let set = set_of_addr t addr and tag = tag_of_addr t addr in
  let rec go w =
    if w = t.ways then None
    else
      let l = t.lines.(w).(set) in
      if l.valid && l.tag = tag then Some w else go (w + 1)
  in
  go 0

let resident t addr = Option.is_some (lookup t addr)

(** Way that holds [addr], if any — exposed for tests validating the
    warming protocol. *)
let way_of t addr = lookup t addr

let charge_hit t =
  t.stats.hits <- t.stats.hits + 1;
  Clock.advance t.clock Calib.l2_hit_line_ns;
  Energy.charge t.energy ~category:"l2" (float_of_int t.line_size *. Calib.onsoc_byte_j)

let write_back t w set =
  let l = t.lines.(w).(set) in
  if l.valid && l.dirty then begin
    let addr =
      (l.tag lsl (t.set_shift + log2 t.sets)) lor (set lsl t.set_shift)
    in
    Dram.write t.dram ~initiator:`L2 ?taint:(line_shadow t w set) addr (Bytes.copy l.data);
    Clock.advance t.clock Calib.dram_line_ns;
    l.dirty <- false;
    t.stats.writebacks <- t.stats.writebacks + 1;
    let locked = t.lockdown land (1 lsl w) <> 0 in
    if Sentry_obs.Trace.on () then
      trace t "line-writeback"
        ~args:
          [
            ("way", Sentry_obs.Event.Int w);
            ("addr", Sentry_obs.Event.Int addr);
            ("locked", Sentry_obs.Event.Bool locked);
          ];
    match t.on_writeback with
    | Some f -> f ~way:w ~addr ~locked
    | None -> ()
  end

(** Pick a victim way for allocation in [set], honouring lockdown.
    Invalid lines in unlocked ways are preferred; otherwise round-robin
    over unlocked ways.  [None] when every way is locked. *)
let victim_way t set =
  let unlocked w = t.lockdown land (1 lsl w) = 0 in
  let rec find_invalid w =
    if w = t.ways then None
    else if unlocked w && not t.lines.(w).(set).valid then Some w
    else find_invalid (w + 1)
  in
  match find_invalid 0 with
  | Some w -> Some w
  | None ->
      let n_unlocked = ref 0 in
      for w = 0 to t.ways - 1 do
        if unlocked w then incr n_unlocked
      done;
      if !n_unlocked = 0 then None
      else begin
        (* advance round-robin pointer to the next unlocked way *)
        let rec next w = if unlocked (w mod t.ways) then w mod t.ways else next (w + 1) in
        let w = next t.rr.(set) in
        t.rr.(set) <- (w + 1) mod t.ways;
        Some w
      end

(** Allocate (fill) the line containing [addr]; returns the way, or
    [None] when allocation is impossible (fully locked cache). *)
let fill t addr =
  let set = set_of_addr t addr and tag = tag_of_addr t addr in
  match victim_way t set with
  | None -> None
  | Some w ->
      let l = t.lines.(w).(set) in
      write_back t w set;
      let base = line_base t addr in
      let fresh = Dram.read t.dram ~initiator:`L2 base t.line_size in
      Bytes.blit fresh 0 l.data 0 t.line_size;
      (match line_shadow t w set with
      | Some sh -> Bytes.blit (Dram.shadow_of_range t.dram base t.line_size) 0 sh 0 t.line_size
      | None -> ());
      l.valid <- true;
      l.dirty <- false;
      l.tag <- tag;
      Clock.advance t.clock (Calib.l2_hit_line_ns +. Calib.dram_line_ns);
      if Sentry_obs.Trace.on () then
        trace t "line-fill"
          ~args:[ ("way", Sentry_obs.Event.Int w); ("addr", Sentry_obs.Event.Int base) ];
      Some w

(* ----------------------- CPU access path ------------------------- *)

(* One line-granule access: [off] is the offset inside the line,
   [len] stays within the line.  [taint] labels written bytes. *)
let access_chunk t addr ~write ~taint buf buf_off len =
  let off_in_line = addr land (t.line_size - 1) in
  let store_into w =
    let set = set_of_addr t addr in
    let l = t.lines.(w).(set) in
    if write then begin
      Bytes.blit buf buf_off l.data off_in_line len;
      (match line_shadow t w set with
      | Some sh -> Taint.fill sh off_in_line len taint
      | None -> ());
      l.dirty <- true
    end
    else Bytes.blit l.data off_in_line buf buf_off len
  in
  match lookup t addr with
  | Some w ->
      charge_hit t;
      store_into w
  | None -> (
      t.stats.misses <- t.stats.misses + 1;
      match fill t addr with
      | Some w -> store_into w
      | None ->
          (* allocation impossible: uncached DRAM access *)
          t.stats.bypasses <- t.stats.bypasses + 1;
          if Sentry_obs.Trace.on () then
            trace t "bypass"
              ~args:[ ("addr", Sentry_obs.Event.Int addr); ("write", Sentry_obs.Event.Bool write) ];
          Clock.advance t.clock Calib.dram_line_ns;
          if write then
            Dram.write t.dram ~initiator:`Cpu ~level:taint addr (Bytes.sub buf buf_off len)
          else
            let b = Dram.read t.dram ~initiator:`Cpu addr len in
            Bytes.blit b 0 buf buf_off len)

let iter_chunks t addr len f =
  let pos = ref addr and remaining = ref len and done_ = ref 0 in
  while !remaining > 0 do
    let off_in_line = !pos land (t.line_size - 1) in
    let chunk = min !remaining (t.line_size - off_in_line) in
    f !pos !done_ chunk;
    pos := !pos + chunk;
    done_ := !done_ + chunk;
    remaining := !remaining - chunk
  done

(** [read t addr len] performs a cached CPU read. *)
let read t addr len =
  let out = Bytes.create len in
  iter_chunks t addr len (fun a o n ->
      access_chunk t a ~write:false ~taint:Taint.Public out o n);
  out

(** [write t ?taint addr b] performs a cached CPU write
    (write-allocate), labelling the written bytes [taint]. *)
let write t ?(taint = Taint.Public) addr b =
  iter_chunks t addr (Bytes.length b) (fun a o n -> access_chunk t a ~write:true ~taint b o n)

(** Taint join over a physical range as the CPU sees it: resident
    lines' shadows where cached, DRAM's shadow elsewhere. *)
let taint_range t addr len =
  if not (taint_enabled t) then Taint.Public
  else begin
    let acc = ref Taint.Public in
    iter_chunks t addr len (fun a _ n ->
        let off_in_line = a land (t.line_size - 1) in
        let lvl =
          match lookup t a with
          | Some w -> (
              match line_shadow t w (set_of_addr t a) with
              | Some sh -> Taint.max_range sh off_in_line n
              | None -> Taint.Public)
          | None -> Dram.taint_range t.dram a n
        in
        acc := Taint.join !acc lvl);
    !acc
  end

(** Iterate over every valid resident line: [f ~way ~addr data] sees
    the controller's live data array (read-only by convention) — used
    by analysis passes searching the cache for key material. *)
let iter_resident t f =
  for w = 0 to t.ways - 1 do
    for set = 0 to t.sets - 1 do
      let l = t.lines.(w).(set) in
      if l.valid then
        let addr = (l.tag lsl (t.set_shift + log2 t.sets)) lor (set lsl t.set_shift) in
        f ~way:w ~addr l.data
    done
  done

(* ---------------------- maintenance ops -------------------------- *)

let clean_invalidate_way t w =
  (* flushing a locked way is the §4.2 hazard: record it loudly *)
  if Sentry_obs.Trace.on () && t.lockdown land (1 lsl w) <> 0 then
    trace t "locked-way-flush" ~args:[ ("way", Sentry_obs.Event.Int w) ];
  for set = 0 to t.sets - 1 do
    write_back t w set;
    t.lines.(w).(set).valid <- false
  done;
  Clock.advance t.clock Calib.pl310_op_ns

(** [flush_masked t] — the Sentry-patched kernel flush: cleans and
    invalidates every way {e not} excluded by the flush mask, and
    leaves the lockdown register alone. *)
let flush_masked t =
  let start_ns = Clock.now t.clock in
  for w = 0 to t.ways - 1 do
    if t.flush_mask land (1 lsl w) = 0 then clean_invalidate_way t w
  done;
  if Sentry_obs.Trace.on () then
    trace t "flush-masked" ~ts:start_ns
      ~phase:(Sentry_obs.Event.Complete (Clock.now t.clock -. start_ns))
      ~args:[ ("skip_mask", Sentry_obs.Event.Int t.flush_mask) ]

(** [flush_all_stock t] — the stock kernel's full clean+invalidate.
    As the paper's hardware validation found (§4.2), this {e does}
    write back and drop locked ways and resets the lockdown state:
    running it with secrets in a locked way leaks them to DRAM.
    Sentry replaces every call site of this with [flush_masked]. *)
let flush_all_stock t =
  let start_ns = Clock.now t.clock in
  for w = 0 to t.ways - 1 do
    clean_invalidate_way t w
  done;
  if Sentry_obs.Trace.on () then begin
    trace t "flush-all-stock" ~ts:start_ns
      ~phase:(Sentry_obs.Event.Complete (Clock.now t.clock -. start_ns))
      ~args:[ ("dropped_lockdown", Sentry_obs.Event.Int t.lockdown) ];
    if t.lockdown <> 0 then
      trace t "way-lockdown"
        ~args:
          [ ("old_mask", Sentry_obs.Event.Int t.lockdown); ("new_mask", Sentry_obs.Event.Int 0) ]
  end;
  t.lockdown <- 0

(** Per-line maintenance used by DMA coherence code.  Honours the
    flush mask: lines resident in protected ways are left alone. *)
let clean_invalidate_range t addr len =
  iter_chunks t addr len (fun a _ _ ->
      match lookup t a with
      | Some w when t.flush_mask land (1 lsl w) = 0 ->
          let set = set_of_addr t a in
          write_back t w set;
          t.lines.(w).(set).valid <- false
      | Some _ | None -> ())

(** Invalidate without cleaning (used before incoming DMA writes so
    the CPU does not read stale lines).  Locked/masked ways are
    skipped. *)
let invalidate_range t addr len =
  iter_chunks t addr len (fun a _ _ ->
      match lookup t a with
      | Some w when t.flush_mask land (1 lsl w) = 0 ->
          t.lines.(w).(set_of_addr t a).valid <- false
      | Some _ | None -> ())

(** Power-on reset: the low-level firmware resets the controller and
    zeroes the data arrays, so cache contents never survive a cold
    boot (§4.3). *)
let reset t =
  for w = 0 to t.ways - 1 do
    for set = 0 to t.sets - 1 do
      let l = t.lines.(w).(set) in
      l.valid <- false;
      l.dirty <- false;
      l.tag <- 0;
      Bytes.fill l.data 0 t.line_size '\000';
      match line_shadow t w set with
      | Some sh -> Taint.fill sh 0 t.line_size Taint.Public
      | None -> ()
    done
  done;
  t.lockdown <- 0;
  t.flush_mask <- 0;
  Array.fill t.rr 0 t.sets 0

(** Test/attack helper: the raw bytes of a resident line, if any.
    Models probing the SRAM arrays directly (requires decapping the
    SoC — out of the paper's threat model, but used by tests to check
    what is and is not inside the package). *)
let peek_line t addr =
  match lookup t addr with
  | None -> None
  | Some w -> Some (Bytes.copy t.lines.(w).(set_of_addr t addr).data)

let hit_rate t =
  let s = t.stats in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
