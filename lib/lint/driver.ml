(** The lint driver: walk the source roots, parse every [.ml], run the
    rules, apply the allowlist, and render text / JSON reports.

    The audited fast-path exemption for R4 is a fixed list here rather
    than [lint.allow] entries: those modules (the PR-3/PR-5
    zero-allocation kernels) hold their safety argument in their own
    differential suites and allocation-ceiling tests, and listing them
    in code keeps the committed allowlist for {e exceptions}, not
    architecture. *)

(** PR-3/PR-5 fast-path modules whose [unsafe_*] accessors are part of
    the audited zero-allocation design. *)
let fastpath_modules =
  [
    "lib/util/bytes_util.ml";  (* scatter-gather blit/compare kernels *)
    "lib/util/prng.ml";  (* hot-path fill with hoisted bounds *)
    "lib/crypto/aes.ml";  (* T-table rounds over pre-sized state *)
    "lib/crypto/mode.ml";  (* in-place CBC/ECB/XTS over scratch *)
    "lib/soc/pl310.ml";  (* per-access way scan, read_run fast path *)
    "lib/soc/dram.ml";  (* validated-once run blits *)
    "lib/soc/taint.ml";  (* shadow-store run scans *)
  ]

let normalize_path p =
  let p = String.split_on_char '\\' p |> String.concat "/" in
  if String.length p > 2 && String.sub p 0 2 = "./" then String.sub p 2 (String.length p - 2)
  else p

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let is_fastpath file =
  let file = normalize_path file in
  List.exists (fun m -> ends_with ~suffix:m file) fastpath_modules

(* ------------------------- file discovery ------------------------- *)

let skip_dirs = [ "_build"; ".git"; "fixtures" ]

let rec ml_files_under path =
  if Sys.is_directory path then
    if List.mem (Filename.basename path) skip_dirs then []
    else
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.concat_map (fun entry -> ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ normalize_path path ]
  else []

let discover roots =
  roots |> List.concat_map ml_files_under |> List.sort_uniq String.compare

(* ----------------------------- parsing ---------------------------- *)

exception Parse_error of string

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      try Parse.implementation lexbuf
      with exn ->
        raise
          (Parse_error
             (Printf.sprintf "%s: %s" path
                (match exn with Failure m -> m | e -> Printexc.to_string e))))

(* ------------------------------ report ---------------------------- *)

type report = {
  files_scanned : int;
  findings : Finding.t list;  (** every finding, allowed or not, sorted *)
  allowed : Finding.t list;
  unallowed : Finding.t list;
  stale_allows : Allowlist.entry list;  (** entries that matched nothing *)
}

let run ?(allow = Allowlist.empty) ~roots () =
  let files = discover roots in
  let scans =
    List.map (fun file -> Rules.scan_file ~file ~r4_exempt:(is_fastpath file) (parse_file file)) files
  in
  let globals = List.concat_map (fun s -> s.Rules.globals) scans in
  let assigns = List.concat_map (fun s -> s.Rules.assigns) scans in
  let findings =
    List.concat_map (fun s -> s.Rules.findings) scans @ Rules.resolve_assigns ~globals assigns
    |> List.sort Finding.compare
  in
  let allowed, unallowed = List.partition (Allowlist.allows allow) findings in
  {
    files_scanned = List.length files;
    findings;
    allowed;
    unallowed;
    stale_allows = Allowlist.unused allow findings;
  }

let clean r = r.unallowed = []

(* ------------------------------- text ----------------------------- *)

let to_text r =
  let buf = Buffer.create 512 in
  List.iter
    (fun f -> Buffer.add_string buf (Finding.to_string f ^ "\n"))
    r.unallowed;
  List.iter
    (fun f -> Buffer.add_string buf ("allowed: " ^ Finding.to_string f ^ "\n"))
    r.allowed;
  List.iter
    (fun (e : Allowlist.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "stale allow entry (line %d): %s %s %s — matched nothing, prune it\n"
           e.Allowlist.source_line
           (Finding.rule_id e.Allowlist.rule)
           e.Allowlist.file e.Allowlist.symbol))
    r.stale_allows;
  Buffer.add_string buf
    (Printf.sprintf "%d file(s) scanned: %d finding(s), %d allowlisted, %d violation(s)\n"
       r.files_scanned (List.length r.findings) (List.length r.allowed)
       (List.length r.unallowed));
  Buffer.contents buf

(* ------------------------------- JSON ----------------------------- *)

let finding_json ~allowed (f : Finding.t) =
  Sentry_obs.Json_out.Obj
    [
      ("rule", Sentry_obs.Json_out.Str (Finding.rule_id f.Finding.rule));
      ("name", Sentry_obs.Json_out.Str (Finding.rule_name f.Finding.rule));
      ( "severity",
        Sentry_obs.Json_out.Str (Finding.severity_name (Finding.severity f.Finding.rule)) );
      ("file", Sentry_obs.Json_out.Str f.Finding.file);
      ("line", Sentry_obs.Json_out.Int f.Finding.line);
      ("col", Sentry_obs.Json_out.Int f.Finding.col);
      ("symbol", Sentry_obs.Json_out.Str f.Finding.symbol);
      ("message", Sentry_obs.Json_out.Str f.Finding.message);
      ("allowed", Sentry_obs.Json_out.Bool allowed);
    ]

let to_json r =
  let open Sentry_obs.Json_out in
  Obj
    [
      ("schema", Str "sentry-lint/v1");
      ("files_scanned", Int r.files_scanned);
      ( "findings",
        List
          (List.map
             (fun f -> finding_json ~allowed:(List.memq f r.allowed) f)
             r.findings) );
      ( "stale_allows",
        List
          (List.map
             (fun (e : Allowlist.entry) ->
               Obj
                 [
                   ("rule", Str (Finding.rule_id e.Allowlist.rule));
                   ("file", Str e.Allowlist.file);
                   ("symbol", Str e.Allowlist.symbol);
                   ("source_line", Int e.Allowlist.source_line);
                 ])
             r.stale_allows) );
      ( "summary",
        Obj
          [
            ("total", Int (List.length r.findings));
            ("allowed", Int (List.length r.allowed));
            ("violations", Int (List.length r.unallowed));
          ] );
    ]

let to_json_string r = Sentry_obs.Json_out.to_string (to_json r)
