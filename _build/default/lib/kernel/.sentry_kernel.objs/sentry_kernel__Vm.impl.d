lib/kernel/vm.ml: Address_space Bytes Calib Clock Machine Page Page_table Process Sentry_soc
