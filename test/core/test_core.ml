open Sentry_util
open Sentry_soc
open Sentry_kernel
open Sentry_core

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_bytes = Alcotest.(check bytes)

let pattern = Bytes.of_string "TOPSECRT"

let boot ?(seed = 1) () = System.boot `Tegra3 ~seed

let spawn_filled system ~bytes =
  let proc = System.spawn system ~name:"app" ~bytes in
  let region = List.hd (Address_space.regions proc.Process.aspace) in
  System.fill_region system proc region pattern;
  (proc, region)

let dram_holds system needle =
  Bytes_util.contains (Dram.raw (Machine.dram (System.machine system))) needle

(* ---------------------------- Iram_alloc -------------------------- *)

let test_iram_alloc_respects_firmware_area () =
  let system = boot () in
  let a = Iram_alloc.create (System.machine system) in
  checki "usable" (192 * Units.kib) (Iram_alloc.usable_bytes a);
  for _ = 1 to 100 do
    match Iram_alloc.alloc a ~bytes:512 with
    | Some addr ->
        checkb "above firmware" true
          (addr >= Memmap.iram_base + Memmap.iram_firmware_reserved)
    | None -> ()
  done

let test_iram_alloc_exhaustion_and_free () =
  let system = boot () in
  let a = Iram_alloc.create (System.machine system) in
  let blocks = ref [] in
  (try
     while true do
       match Iram_alloc.alloc a ~bytes:(16 * Units.kib) with
       | Some addr -> blocks := addr :: !blocks
       | None -> raise Exit
     done
   with Exit -> ());
  checki "12 x 16KB fits in 192KB" 12 (List.length !blocks);
  checkb "exhausted" true (Iram_alloc.alloc a ~bytes:(16 * Units.kib) = None);
  List.iter (Iram_alloc.free a) !blocks;
  checki "all free" (192 * Units.kib) (Iram_alloc.free_bytes a);
  checkb "big alloc after coalesce" true (Iram_alloc.alloc a ~bytes:(150 * Units.kib) <> None)

let test_iram_alloc_double_free () =
  let system = boot () in
  let a = Iram_alloc.create (System.machine system) in
  let addr = Option.get (Iram_alloc.alloc a ~bytes:100) in
  Iram_alloc.free a addr;
  Alcotest.check_raises "double free" (Invalid_argument "Iram_alloc.free: not an allocated block")
    (fun () -> Iram_alloc.free a addr)

(* --------------------------- Locked_cache ------------------------- *)

let make_locked ?(max_ways = 2) system =
  Locked_cache.create (System.machine system) ~arena_base:system.System.arena_base ~max_ways

let test_locked_cache_alloc_locks_way () =
  let system = boot () in
  let lc = make_locked system in
  checki "no ways yet" 0 (Locked_cache.locked_ways lc);
  let page = Locked_cache.alloc_page lc in
  checki "one way" 1 (Locked_cache.locked_ways lc);
  checkb "page in arena" true (Locked_cache.contains lc page);
  checki "31 left" 31 (Locked_cache.free_pages lc)

let test_locked_cache_pages_resident_in_locked_way () =
  let system = boot () in
  let machine = System.machine system in
  let lc = make_locked system in
  let page = Locked_cache.alloc_page lc in
  (* every line of the page must be resident in a locked way *)
  let l2 = Machine.l2 machine in
  for i = 0 to 127 do
    match Pl310.way_of l2 (page + (i * 32)) with
    | Some w -> checkb "way locked" true (Pl310.lockdown l2 land (1 lsl w) <> 0)
    | None -> Alcotest.fail "line not resident"
  done

let test_locked_cache_data_never_in_dram () =
  let system = boot () in
  let machine = System.machine system in
  let lc = make_locked system in
  let page = Locked_cache.alloc_page lc in
  Machine.write machine page (Bytes.of_string "ON-SOC-ONLY-DATA");
  (* pressure + flushes *)
  let dram = Machine.dram_region machine in
  for i = 0 to 8191 do
    ignore (Machine.read machine (dram.Memmap.base + (i * 32)) 8)
  done;
  Pl310.flush_masked (Machine.l2 machine);
  checkb "never written back" false (dram_holds system (Bytes.of_string "ON-SOC-ONLY-DATA"));
  check_bytes "still readable" (Bytes.of_string "ON-SOC-ONLY-DATA") (Machine.read machine page 16)

let test_locked_cache_grows_on_demand () =
  let system = boot () in
  let lc = make_locked ~max_ways:2 system in
  let pages = List.init 33 (fun _ -> Locked_cache.alloc_page lc) in
  checki "second way locked" 2 (Locked_cache.locked_ways lc);
  checki "33 distinct" 33 (List.length (List.sort_uniq compare pages))

let test_locked_cache_budget_exhausted () =
  let system = boot () in
  let lc = make_locked ~max_ways:1 system in
  for _ = 1 to 32 do
    ignore (Locked_cache.alloc_page lc)
  done;
  Alcotest.check_raises "exhausted" Locked_cache.Exhausted (fun () ->
      ignore (Locked_cache.alloc_page lc))

let test_locked_cache_free_page_scrubs_and_recycles () =
  let system = boot () in
  let machine = System.machine system in
  let lc = make_locked system in
  let page = Locked_cache.alloc_page lc in
  Machine.write machine page (Bytes.of_string "scrub-me");
  Locked_cache.free_page lc page;
  checkb "scrubbed" false
    (Bytes_util.contains (Machine.read machine page 4096) (Bytes.of_string "scrub-me"));
  let again = Locked_cache.alloc_page lc in
  checki "recycled" page again

let test_locked_cache_unlock_all_erases () =
  let system = boot () in
  let machine = System.machine system in
  let lc = make_locked system in
  let page = Locked_cache.alloc_page lc in
  Machine.write machine page (Bytes.of_string "ERASE-ON-UNLOCK!");
  Locked_cache.unlock_all lc;
  checki "no ways" 0 (Locked_cache.locked_ways lc);
  checki "lockdown cleared" 0 (Pl310.lockdown (Machine.l2 machine));
  (* even if the (now unlocked) lines get written back, only 0xFF can
     reach DRAM *)
  Pl310.flush_masked (Machine.l2 machine);
  checkb "secret gone" false (dram_holds system (Bytes.of_string "ERASE-ON-UNLOCK!"))

let test_locked_cache_rejects_nexus () =
  let system = System.boot `Nexus4 ~seed:2 in
  Alcotest.check_raises "nexus"
    (Invalid_argument "Locked_cache: cache locking unavailable on this platform") (fun () ->
      ignore (make_locked system))

let test_locked_cache_leaves_a_way_unlocked () =
  let system = boot () in
  Alcotest.check_raises "8 ways"
    (Invalid_argument "Locked_cache: must leave at least one way unlocked") (fun () ->
      ignore (make_locked ~max_ways:8 system))

(* ------------------------------ Onsoc ----------------------------- *)

let test_onsoc_iram_flavor () =
  let system = boot () in
  let onsoc = Onsoc.of_config (System.machine system)
      { (Config.default `Tegra3) with Config.storage = Config.Use_iram }
      ~arena_base:system.System.arena_base
  in
  let addr = Onsoc.alloc onsoc ~bytes:64 in
  checkb "in iram" true (Machine.in_iram (System.machine system) addr);
  Onsoc.free onsoc addr

let test_onsoc_locked_flavor () =
  let system = boot () in
  let onsoc =
    Onsoc.of_config (System.machine system) (Config.default `Tegra3)
      ~arena_base:system.System.arena_base
  in
  let addr = Onsoc.alloc onsoc ~bytes:4096 in
  checkb "in dram arena" true (Machine.in_dram (System.machine system) addr)

let test_onsoc_dma_protection () =
  let system = boot () in
  let machine = System.machine system in
  let onsoc = Onsoc.of_config machine
      { (Config.default `Tegra3) with Config.storage = Config.Use_iram }
      ~arena_base:system.System.arena_base
  in
  Onsoc.protect_from_dma onsoc machine;
  let addr = Onsoc.alloc onsoc ~bytes:64 in
  Machine.write machine addr (Bytes.of_string "key!");
  match Dma.read (Machine.dma machine) ~addr ~len:4 with
  | Error Dma.Denied -> ()
  | _ -> Alcotest.fail "iram should be DMA-denied"

(* --------------------------- Key_manager -------------------------- *)

let test_key_manager_volatile_on_soc () =
  let system = boot () in
  let machine = System.machine system in
  let onsoc =
    Onsoc.of_config machine (Config.default `Tegra3) ~arena_base:system.System.arena_base
  in
  let km = Key_manager.create machine onsoc in
  let key = Key_manager.volatile_key km in
  checki "length" 16 (Bytes.length key);
  check_bytes "stable" key (Key_manager.volatile_key km);
  (* the key must not be in DRAM-proper (it lives in the locked arena,
     whose DRAM cells hold only stale warming data) *)
  Pl310.flush_masked (Machine.l2 machine);
  checkb "not in dram" false (dram_holds system key)

let test_key_manager_persistent () =
  let system = boot () in
  let machine = System.machine system in
  let onsoc =
    Onsoc.of_config machine (Config.default `Tegra3) ~arena_base:system.System.arena_base
  in
  let km = Key_manager.create machine onsoc in
  checkb "none yet" true (Key_manager.persistent_key km = None);
  let k = Key_manager.unlock_persistent km ~password:"pw" in
  checkb "stored" true (Key_manager.persistent_key km = Some k);
  let k2 = Key_manager.unlock_persistent km ~password:"pw" in
  check_bytes "re-derivable" k k2

let test_key_manager_wipe () =
  let system = boot () in
  let machine = System.machine system in
  let onsoc =
    Onsoc.of_config machine (Config.default `Tegra3) ~arena_base:system.System.arena_base
  in
  let km = Key_manager.create machine onsoc in
  let key = Key_manager.volatile_key km in
  Key_manager.wipe km;
  checkb "wiped" false (Bytes.equal key (Key_manager.volatile_key km))

(* ---------------------------- Lock_state -------------------------- *)

let test_lock_state_cycle () =
  let ls = Lock_state.create ~pin:"1234" ~max_attempts:3 in
  checkb "unlocked" true (Lock_state.state ls = Lock_state.Unlocked);
  Lock_state.begin_lock ls;
  Lock_state.finish_lock ls;
  checkb "locked" true (Lock_state.state ls = Lock_state.Locked);
  (match Lock_state.begin_unlock ls ~pin:"1234" with Ok () -> () | Error _ -> Alcotest.fail "pin");
  Lock_state.finish_unlock ls;
  checkb "unlocked again" true (Lock_state.state ls = Lock_state.Unlocked);
  let locks, unlocks, _ = Lock_state.counts ls in
  checki "locks" 1 locks;
  checki "unlocks" 1 unlocks

let test_lock_state_deep_lock () =
  let ls = Lock_state.create ~pin:"1234" ~max_attempts:3 in
  Lock_state.begin_lock ls;
  Lock_state.finish_lock ls;
  for _ = 1 to 3 do
    match Lock_state.begin_unlock ls ~pin:"0000" with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "bad pin accepted"
  done;
  checkb "deep locked" true (Lock_state.state ls = Lock_state.Deep_locked);
  (* even the right PIN is refused now *)
  match Lock_state.begin_unlock ls ~pin:"1234" with
  | Error Lock_state.Deep_lock_engaged -> ()
  | _ -> Alcotest.fail "deep lock not engaged"

let test_lock_state_counter_resets_on_success () =
  let ls = Lock_state.create ~pin:"1234" ~max_attempts:3 in
  Lock_state.begin_lock ls;
  Lock_state.finish_lock ls;
  ignore (Lock_state.begin_unlock ls ~pin:"1111");
  ignore (Lock_state.begin_unlock ls ~pin:"2222");
  (match Lock_state.begin_unlock ls ~pin:"1234" with Ok () -> () | Error _ -> Alcotest.fail "pin");
  Lock_state.finish_unlock ls;
  let _, _, failed = Lock_state.counts ls in
  checki "reset" 0 failed

let test_lock_state_invalid_transitions () =
  let ls = Lock_state.create ~pin:"1" ~max_attempts:3 in
  Alcotest.check_raises "finish without begin"
    (Lock_state.Invalid_transition "finish_lock from unlocked") (fun () ->
      Lock_state.finish_lock ls);
  Alcotest.check_raises "unlock while unlocked"
    (Lock_state.Invalid_transition "begin_unlock from unlocked") (fun () ->
      ignore (Lock_state.begin_unlock ls ~pin:"1"))

(* --------------------------- Share_policy ------------------------- *)

let test_share_policy () =
  let system = boot () in
  let p1 = System.spawn system ~name:"sensitive1" ~bytes:4096 in
  let p2 = System.spawn system ~name:"sensitive2" ~bytes:4096 in
  let p3 = System.spawn system ~name:"innocent" ~bytes:4096 in
  let r_all =
    Address_space.map_region p1.Process.aspace ~name:"shm-a" ~kind:(Address_space.Shared "a")
      ~bytes:4096
  in
  Address_space.share_region p2.Process.aspace ~from_space:p1.Process.aspace r_all;
  let r_mixed =
    Address_space.map_region p1.Process.aspace ~name:"shm-b" ~kind:(Address_space.Shared "b")
      ~bytes:4096
  in
  Address_space.share_region p3.Process.aspace ~from_space:p1.Process.aspace r_mixed;
  Process.mark_sensitive p1;
  Process.mark_sensitive p2;
  let all_procs = system.System.procs in
  checkb "sensitive-only group encrypted" true (Share_policy.should_encrypt ~all_procs r_all);
  checkb "mixed group skipped" false (Share_policy.should_encrypt ~all_procs r_mixed);
  checkb "normal encrypted" true
    (Share_policy.should_encrypt ~all_procs
       (Option.get (Address_space.find_region p1.Process.aspace ~name:"main")))

(* ------------------------- Sentry facade -------------------------- *)

let install ?(config = Config.default `Tegra3) system = Sentry.install system config

let test_sentry_lock_encrypts_unlock_restores () =
  let system = boot () in
  let sentry = install system in
  let proc, region = spawn_filled system ~bytes:(64 * Units.kib) in
  Sentry.mark_sensitive sentry proc;
  Pl310.flush_masked (Machine.l2 (System.machine system));
  checkb "plaintext before" true (dram_holds system pattern);
  let stats = Sentry.lock sentry in
  checki "16 pages" 16 stats.Encrypt_on_lock.pages_encrypted;
  checkb "ciphertext after" false (dram_holds system pattern);
  checkb "unschedulable" true (proc.Process.state = Process.Locked_out);
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> Alcotest.fail "unlock");
  checkb "schedulable" true (proc.Process.state = Process.Runnable);
  check_bytes "lazy decrypt on touch" pattern
    (Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:8)

let test_sentry_lock_is_idempotent_per_page () =
  let system = boot () in
  let sentry = install system in
  let proc, _ = spawn_filled system ~bytes:(16 * Units.kib) in
  Sentry.mark_sensitive sentry proc;
  ignore (Sentry.lock sentry);
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> ());
  (* nothing touched: all pages still ciphertext; second lock must not
     double-encrypt *)
  let stats = Sentry.lock sentry in
  checki "nothing re-encrypted" 0 stats.Encrypt_on_lock.pages_encrypted;
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> ());
  let proc_region = List.hd (Address_space.regions proc.Process.aspace) in
  check_bytes "content intact" pattern
    (Vm.read system.System.vm proc ~vaddr:proc_region.Address_space.vstart ~len:8)

let test_sentry_wrong_pin_keeps_encrypted () =
  let system = boot () in
  let sentry = install system in
  let proc, _ = spawn_filled system ~bytes:(16 * Units.kib) in
  Sentry.mark_sensitive sentry proc;
  ignore (Sentry.lock sentry);
  (match Sentry.unlock sentry ~pin:"9999" with
  | Error Lock_state.Bad_pin -> ()
  | _ -> Alcotest.fail "bad pin accepted");
  checkb "still locked" true (Sentry.is_locked sentry);
  checkb "still ciphertext" false (dram_holds system pattern);
  checkb "still unschedulable" true (proc.Process.state = Process.Locked_out)

let test_sentry_deep_lock_after_attempts () =
  let system = boot () in
  let sentry = install system in
  let proc, _ = spawn_filled system ~bytes:4096 in
  Sentry.mark_sensitive sentry proc;
  ignore (Sentry.lock sentry);
  for _ = 1 to 5 do
    ignore (Sentry.unlock sentry ~pin:"0000")
  done;
  match Sentry.unlock sentry ~pin:"1234" with
  | Error Lock_state.Deep_lock_engaged -> ()
  | _ -> Alcotest.fail "expected deep lock"

let test_sentry_dma_region_eager_decrypt () =
  let system = boot () in
  let sentry = install system in
  let proc = System.spawn system ~name:"gpuapp" ~bytes:(16 * Units.kib) in
  let dma_region =
    Address_space.map_region proc.Process.aspace ~name:"dma" ~kind:Address_space.Dma
      ~bytes:(8 * Units.kib)
  in
  System.fill_region system proc dma_region pattern;
  Sentry.mark_sensitive sentry proc;
  ignore (Sentry.lock sentry);
  match Sentry.unlock sentry ~pin:"1234" with
  | Ok stats ->
      checki "dma pages eager" 2 stats.Decrypt_on_unlock.dma_pages_eager;
      (* the DMA engine (no page faults!) must see plaintext at once *)
      let pte = List.hd (Address_space.region_ptes proc.Process.aspace dma_region) |> snd in
      (match Dma.read (Machine.dma (System.machine system)) ~addr:pte.Page_table.frame ~len:8 with
      | Ok b -> check_bytes "device view" pattern b
      | Error _ -> Alcotest.fail "dma denied")
  | Error _ -> Alcotest.fail "unlock"

let test_sentry_nonsensitive_untouched () =
  let system = boot () in
  let sentry = install system in
  let _sens, _ = spawn_filled system ~bytes:4096 in
  let innocent = System.spawn system ~name:"innocent" ~bytes:4096 in
  let r = List.hd (Address_space.regions innocent.Process.aspace) in
  System.fill_region system innocent r (Bytes.of_string "INNOCENT");
  let sens = List.hd system.System.procs in
  ignore sens;
  Sentry.mark_sensitive sentry (List.find (fun p -> p.Process.name = "app") system.System.procs);
  ignore (Sentry.lock sentry);
  checkb "innocent still runnable" true (innocent.Process.state = Process.Runnable);
  check_bytes "innocent data readable without faults" (Bytes.of_string "INNOCENT")
    (Vm.read system.System.vm innocent ~vaddr:r.Address_space.vstart ~len:8)

let test_sentry_freed_page_barrier () =
  let system = boot () in
  let sentry = install system in
  let proc, _ = spawn_filled system ~bytes:(16 * Units.kib) in
  Sentry.mark_sensitive sentry proc;
  (* app frees a region holding secrets just before lock *)
  let tmp =
    Address_space.map_region proc.Process.aspace ~name:"tmp" ~kind:Address_space.Normal
      ~bytes:8192
  in
  System.fill_region system proc tmp (Bytes.of_string "FREEDSEC");
  Pl310.flush_masked (Machine.l2 (System.machine system));
  Address_space.unmap_region proc.Process.aspace tmp;
  let stats = Sentry.lock sentry in
  checkb "zerod ran" true (stats.Encrypt_on_lock.freed_pages_zeroed >= 2);
  checkb "freed secrets gone" false (dram_holds system (Bytes.of_string "FREEDSEC"))

let test_sentry_eager_unlock_ablation () =
  let system = boot () in
  let sentry = install system in
  let proc, region = spawn_filled system ~bytes:(32 * Units.kib) in
  Sentry.mark_sensitive sentry proc;
  ignore (Sentry.lock sentry);
  (match Sentry.unlock_eager sentry ~pin:"1234" with
  | Ok pages -> checki "all pages decrypted" 8 pages
  | Error _ -> Alcotest.fail "unlock");
  (* no faults needed to read now *)
  let faults0 = proc.Process.faults in
  ignore (Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:8);
  checkb "no new decrypt faults" true (proc.Process.faults - faults0 <= 1)

let test_sentry_nexus_config () =
  let system = System.boot `Nexus4 ~seed:5 in
  let sentry = install ~config:(Config.default `Nexus4) system in
  let proc, region = spawn_filled system ~bytes:(16 * Units.kib) in
  Sentry.mark_sensitive sentry proc;
  ignore (Sentry.lock sentry);
  checkb "encrypted" false (dram_holds system pattern);
  checkb "no background engine" true (Sentry.background_engine sentry = None);
  Alcotest.check_raises "background rejected"
    (Invalid_argument "Sentry.enable_background: platform has no locked-cache paging")
    (fun () -> Sentry.enable_background sentry proc);
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> Alcotest.fail "unlock");
  check_bytes "restored" pattern
    (Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:8)

let test_sentry_config_validation () =
  let system = System.boot `Nexus4 ~seed:6 in
  Alcotest.check_raises "nexus locked-l2 config"
    (Invalid_argument
       "Sentry.install: nexus4: cache locking unavailable (locked firmware); use iRAM")
    (fun () ->
      ignore (install ~config:{ (Config.default `Nexus4) with Config.storage = Config.Use_locked_l2 } system))

let test_sentry_registers_crypto_api () =
  let system = boot () in
  ignore (install system);
  let impl = Sentry_crypto.Crypto_api.find system.System.crypto_api ~algorithm:"cbc(aes)" in
  checkb "aes-on-soc wins" true (impl.Sentry_crypto.Crypto_api.name = "aes-on-soc")

let test_sentry_journal_flag () =
  let system = boot ~seed:30 () in
  let sentry = install system in
  checkb "journal off by default" false (Sentry.journal_enabled sentry);
  checkb "nothing to recover" true (Sentry.recover sentry = None);
  let system2 = boot ~seed:31 () in
  let sentry2 =
    install ~config:{ (Config.default `Tegra3) with Config.journal = true } system2
  in
  checkb "journal on when configured" true (Sentry.journal_enabled sentry2);
  checkb "idle system: recover is a no-op" true (Sentry.recover sentry2 = None);
  checkb "no stats recorded" true (Sentry.last_recovery_stats sentry2 = None)

(* Regression: [set_pipeline] (now [set_backend]) used to accept a
   switch in any state — swapping the walk driver and journal
   granularity out from under a Locked system, so a later unlock (or a
   recovery replaying an interrupted walk) ran under the wrong engine.
   The switch must be confined to [Unlocked]; re-selecting the
   installed backend stays a state-independent no-op. *)
let test_sentry_backend_switch_guarded () =
  let system = boot ~seed:32 () in
  let sentry = install system in
  let proc, _ = spawn_filled system ~bytes:(32 * Units.kib) in
  Sentry.mark_sensitive sentry proc;
  ignore (Sentry.lock sentry);
  Alcotest.check_raises "switch rejected while locked"
    (Invalid_argument "Sentry.set_backend: cannot switch to per-page while locked")
    (fun () -> Sentry.set_pipeline sentry Sentry.Per_page);
  checkb "backend unchanged" true (Sentry.pipeline sentry = Sentry.Batched);
  Sentry.set_pipeline sentry Sentry.Batched;
  checkb "no-op re-select kept the lock" true (Sentry.is_locked sentry);
  (match Sentry.unlock sentry ~pin:"1234" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unlock");
  Sentry.set_pipeline sentry Sentry.Per_page;
  checkb "switch allowed while unlocked" true (Sentry.pipeline sentry = Sentry.Per_page)

(* ---------------------------- Background -------------------------- *)

let boot_background ?(budget = 256 * Units.kib) ?(bytes = 512 * Units.kib) () =
  let system = boot ~seed:11 () in
  let config = { (Config.default `Tegra3) with Config.background_budget_bytes = budget } in
  let sentry = Sentry.install system config in
  let proc, region = spawn_filled system ~bytes in
  Sentry.mark_sensitive sentry proc;
  Sentry.enable_background sentry proc;
  ignore (Sentry.lock sentry);
  (system, sentry, proc, region)

let test_background_reads_correct_data () =
  let system, _, proc, region = boot_background () in
  for i = 0 to 127 do
    check_bytes "page content" pattern
      (Vm.read system.System.vm proc
         ~vaddr:(region.Address_space.vstart + (i * Page.size))
         ~len:8)
  done

let test_background_never_leaks_plaintext () =
  let system, sentry, proc, region = boot_background () in
  let leaked = ref false in
  for i = 0 to 127 do
    ignore
      (Vm.read system.System.vm proc
         ~vaddr:(region.Address_space.vstart + (i * Page.size))
         ~len:8);
    if dram_holds system pattern then leaked := true
  done;
  checkb "no plaintext in DRAM at any point" false !leaked;
  let bg = Option.get (Sentry.background_engine sentry) in
  let page_ins, page_outs = Background.stats bg in
  checkb "paged in" true (page_ins >= 128);
  checkb "evicted" true (page_outs > 0)

let test_background_budget_respected () =
  let system, sentry, proc, region = boot_background ~budget:(256 * Units.kib) () in
  let bg = Option.get (Sentry.background_engine sentry) in
  for i = 0 to 127 do
    ignore
      (Vm.read system.System.vm proc
         ~vaddr:(region.Address_space.vstart + (i * Page.size))
         ~len:8);
    checkb "within budget" true (Background.resident_pages bg <= 62)
  done

let test_background_writes_survive_eviction () =
  let system, _, proc, region = boot_background () in
  let vm = system.System.vm in
  (* write to page 0, then storm the rest to force its eviction *)
  Vm.write vm proc ~vaddr:region.Address_space.vstart (Bytes.of_string "MODIFIED");
  for i = 1 to 127 do
    ignore (Vm.read vm proc ~vaddr:(region.Address_space.vstart + (i * Page.size)) ~len:8)
  done;
  (* page 0 must have been evicted (encrypted back); reading it again
     pages it back in with the modification intact *)
  check_bytes "write survived round trip" (Bytes.of_string "MODIFIED")
    (Vm.read vm proc ~vaddr:region.Address_space.vstart ~len:8);
  checkb "still no plaintext" false (dram_holds system (Bytes.of_string "MODIFIED"))

let test_background_evict_all_on_unlock () =
  let system, sentry, proc, region = boot_background () in
  ignore (Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:8);
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> Alcotest.fail "unlock");
  let bg = Option.get (Sentry.background_engine sentry) in
  checki "nothing resident" 0 (Background.resident_pages bg);
  check_bytes "readable after unlock" pattern
    (Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len:8)

let qcheck_tests =
  let open QCheck in
  [
    (* Locked-cache protocol invariants under random alloc/free
       sequences: every live page's lines stay resident in a locked
       way, lockdown and flush masks stay equal, and at least one way
       is always left unlocked for the rest of the system. *)
    Test.make ~name:"locked-cache protocol invariants" ~count:20
      (list_of_size Gen.(1 -- 40) (oneofl [ `Alloc; `Free ]))
      (fun ops ->
        let system = System.boot `Tegra3 ~seed:19 ~dram_size:(8 * Units.mib) in
        let machine = System.machine system in
        let l2 = Machine.l2 machine in
        let lc =
          Locked_cache.create machine ~arena_base:system.System.arena_base ~max_ways:3
        in
        let live = ref [] in
        List.for_all
          (fun op ->
            (match op with
            | `Alloc -> (
                try live := Locked_cache.alloc_page lc :: !live
                with Locked_cache.Exhausted -> ())
            | `Free -> (
                match !live with
                | p :: rest ->
                    Locked_cache.free_page lc p;
                    live := rest
                | [] -> ()));
            Pl310.lockdown l2 = Pl310.flush_mask l2
            && Pl310.lockdown l2 land (1 lsl (Pl310.ways l2 - 1)) = 0
            && List.for_all
                 (fun page ->
                   match Pl310.way_of l2 page with
                   | Some w -> Pl310.lockdown l2 land (1 lsl w) <> 0
                   | None -> false)
                 !live)
          ops);
    (* Model-based test of the background pager: a random sequence of
       reads, writes and aging sweeps against a locked device must
       behave exactly like a plain byte array -- and never put
       plaintext in DRAM. *)
    Test.make ~name:"background pager refines a plain store" ~count:8
      (list_of_size Gen.(5 -- 40)
         (triple (int_range 0 31) (oneofl [ `Read; `Write; `Age ]) (string_of_size Gen.(return 8))))
      (fun ops ->
        let system, sentry, proc, region = (
          let system = System.boot `Tegra3 ~seed:17 ~dram_size:(8 * Units.mib) in
          let config = { (Config.default `Tegra3) with Config.background_budget_bytes = 64 * 1024 } in
          let sentry = install ~config system in
          let proc = System.spawn system ~name:"model" ~bytes:(32 * Page.size) in
          let region = List.hd (Address_space.regions proc.Process.aspace) in
          System.fill_region system proc region (Bytes.of_string "modelbgq");
          Sentry.mark_sensitive sentry proc;
          Sentry.enable_background sentry proc;
          ignore (Sentry.lock sentry);
          (system, sentry, proc, region))
        in
        ignore sentry;
        let vm = system.System.vm in
        let model = Bytes.create (32 * Page.size) in
        Bytes_util.fill_pattern model (Bytes.of_string "modelbgq");
        let dram = Dram.raw (Machine.dram (System.machine system)) in
        let table = Address_space.table proc.Process.aspace in
        let vpn0 = Page.vpn_of region.Address_space.vstart in
        List.for_all
          (fun (page, op, payload) ->
            let vaddr = region.Address_space.vstart + (page * Page.size) in
            (match op with
            | `Read -> ()
            | `Write ->
                Vm.write vm proc ~vaddr (Bytes.of_string payload);
                Bytes.blit_string payload 0 model (page * Page.size) 8
            | `Age -> (
                match Page_table.find table ~vpn:(vpn0 + page) with
                | Some pte -> pte.Page_table.young <- false
                | None -> ()));
            let got = Vm.read vm proc ~vaddr ~len:8 in
            Bytes.equal got (Bytes.sub model (page * Page.size) 8)
            && (not (Bytes_util.contains dram (Bytes.of_string "modelbgq")))
            && not (String.length payload = 8 && Bytes_util.contains dram (Bytes.of_string payload)))
          ops);
    Test.make ~name:"iram allocator: blocks disjoint and in range" ~count:30
      (list_of_size Gen.(1 -- 20) (int_range 8 4096))
      (fun sizes ->
        let system = boot ~seed:13 () in
        let a = Iram_alloc.create (System.machine system) in
        let blocks =
          List.filter_map (fun b -> Option.map (fun addr -> (addr, b)) (Iram_alloc.alloc a ~bytes:b)) sizes
        in
        let sorted = List.sort compare blocks in
        let rec disjoint = function
          | (a1, s1) :: ((a2, _) :: _ as rest) ->
              a1 + ((s1 + 7) / 8 * 8) <= a2 && disjoint rest
          | _ -> true
        in
        List.for_all (fun (addr, _) -> Iram_alloc.in_range a addr) blocks && disjoint sorted);
    (* Allocator bookkeeping under random alloc/free interleavings:
       free + allocated always equals usable, the free list always sums
       to free_bytes, and it stays address-sorted with no two adjacent
       blocks touching (i.e. fully coalesced). *)
    Test.make ~name:"iram allocator: accounting and coalesced free list" ~count:40
      (list_of_size Gen.(1 -- 40) (pair (int_range 1 2048) bool))
      (fun ops ->
        let system = boot ~seed:21 () in
        let a = Iram_alloc.create (System.machine system) in
        let live = ref [] in
        List.for_all
          (fun (n, do_free) ->
            (if do_free && !live <> [] then begin
               (* free from a pseudo-random position, not just the head *)
               let i = n mod List.length !live in
               Iram_alloc.free a (List.nth !live i);
               live := List.filteri (fun j _ -> j <> i) !live
             end
             else
               match Iram_alloc.alloc a ~bytes:n with
               | Some addr -> live := addr :: !live
               | None -> ());
            let blocks = Iram_alloc.free_blocks a in
            let rec sorted_and_coalesced = function
              | (a1, s1) :: ((a2, _) :: _ as rest) ->
                  a1 + s1 < a2 && sorted_and_coalesced rest
              | _ -> true
            in
            Iram_alloc.free_bytes a + Iram_alloc.allocated_bytes a
            = Iram_alloc.usable_bytes a
            && List.fold_left (fun acc (_, s) -> acc + s) 0 blocks = Iram_alloc.free_bytes a
            && sorted_and_coalesced blocks
            && List.for_all
                 (fun (addr, s) ->
                   s > 0 && Iram_alloc.in_range a addr && Iram_alloc.in_range a (addr + s - 1))
                 blocks)
          ops);
    Test.make ~name:"lock/unlock roundtrip preserves process memory" ~count:10
      (pair (int_range 1 16) small_printable_string)
      (fun (pages, content) ->
        QCheck.assume (String.length content > 0);
        let system = boot ~seed:14 () in
        let sentry = install system in
        let proc = System.spawn system ~name:"q" ~bytes:(pages * Page.size) in
        let region = List.hd (Address_space.regions proc.Process.aspace) in
        System.fill_region system proc region (Bytes.of_string content);
        Sentry.mark_sensitive sentry proc;
        ignore (Sentry.lock sentry);
        (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> assert false);
        let len = min 64 (pages * Page.size) in
        let want = Bytes.create len in
        Bytes_util.fill_pattern want (Bytes.of_string content);
        Bytes.equal want (Vm.read system.System.vm proc ~vaddr:region.Address_space.vstart ~len));
  ]

(* --------------------------- pid spaces ---------------------------- *)

(* [boot ~pid_base] gives a system a private pid space (pids feed the
   per-page ESSIV IVs, so sharded fleets need disjoint deterministic
   ranges); systems booted without it keep drawing from the global
   allocator, unperturbed by private-space spawns. *)
let test_system_pid_base_private_space () =
  Process.reset_pids ();
  let global_sys = System.boot `Tegra3 ~seed:1 in
  let g0 = System.spawn global_sys ~name:"g0" ~bytes:Page.size in
  let owned = System.boot `Tegra3 ~seed:2 ~pid_base:100 in
  let a = System.spawn owned ~name:"a" ~bytes:Page.size in
  let b = System.spawn owned ~name:"b" ~bytes:Page.size in
  checki "first pid is the base" 100 a.Process.pid;
  checki "pids consecutive" 101 b.Process.pid;
  let g1 = System.spawn global_sys ~name:"g1" ~bytes:Page.size in
  checki "global allocator untouched by the private space" (g0.Process.pid + 1) g1.Process.pid

let () =
  Alcotest.run "sentry_core"
    [
      ( "iram_alloc",
        [
          Alcotest.test_case "firmware area" `Quick test_iram_alloc_respects_firmware_area;
          Alcotest.test_case "exhaustion + coalesce" `Quick test_iram_alloc_exhaustion_and_free;
          Alcotest.test_case "double free" `Quick test_iram_alloc_double_free;
        ] );
      ( "locked_cache",
        [
          Alcotest.test_case "alloc locks way" `Quick test_locked_cache_alloc_locks_way;
          Alcotest.test_case "pages resident in locked way" `Quick
            test_locked_cache_pages_resident_in_locked_way;
          Alcotest.test_case "data never in DRAM" `Quick test_locked_cache_data_never_in_dram;
          Alcotest.test_case "grows on demand" `Quick test_locked_cache_grows_on_demand;
          Alcotest.test_case "budget exhausted" `Quick test_locked_cache_budget_exhausted;
          Alcotest.test_case "free scrubs + recycles" `Quick
            test_locked_cache_free_page_scrubs_and_recycles;
          Alcotest.test_case "unlock_all erases" `Quick test_locked_cache_unlock_all_erases;
          Alcotest.test_case "rejects nexus" `Quick test_locked_cache_rejects_nexus;
          Alcotest.test_case "leaves a way unlocked" `Quick test_locked_cache_leaves_a_way_unlocked;
        ] );
      ( "onsoc",
        [
          Alcotest.test_case "iram flavor" `Quick test_onsoc_iram_flavor;
          Alcotest.test_case "locked flavor" `Quick test_onsoc_locked_flavor;
          Alcotest.test_case "dma protection" `Quick test_onsoc_dma_protection;
        ] );
      ( "key_manager",
        [
          Alcotest.test_case "volatile on-soc" `Quick test_key_manager_volatile_on_soc;
          Alcotest.test_case "persistent" `Quick test_key_manager_persistent;
          Alcotest.test_case "wipe" `Quick test_key_manager_wipe;
        ] );
      ( "lock_state",
        [
          Alcotest.test_case "cycle" `Quick test_lock_state_cycle;
          Alcotest.test_case "deep lock" `Quick test_lock_state_deep_lock;
          Alcotest.test_case "counter reset" `Quick test_lock_state_counter_resets_on_success;
          Alcotest.test_case "invalid transitions" `Quick test_lock_state_invalid_transitions;
        ] );
      ("share_policy", [ Alcotest.test_case "policy" `Quick test_share_policy ]);
      ( "pid_space",
        [ Alcotest.test_case "pid_base private space" `Quick test_system_pid_base_private_space ] );
      ( "sentry",
        [
          Alcotest.test_case "lock encrypts, unlock restores" `Quick
            test_sentry_lock_encrypts_unlock_restores;
          Alcotest.test_case "lock idempotent" `Quick test_sentry_lock_is_idempotent_per_page;
          Alcotest.test_case "wrong pin" `Quick test_sentry_wrong_pin_keeps_encrypted;
          Alcotest.test_case "deep lock" `Quick test_sentry_deep_lock_after_attempts;
          Alcotest.test_case "dma eager decrypt" `Quick test_sentry_dma_region_eager_decrypt;
          Alcotest.test_case "non-sensitive untouched" `Quick test_sentry_nonsensitive_untouched;
          Alcotest.test_case "freed-page barrier" `Quick test_sentry_freed_page_barrier;
          Alcotest.test_case "eager unlock ablation" `Quick test_sentry_eager_unlock_ablation;
          Alcotest.test_case "nexus config" `Quick test_sentry_nexus_config;
          Alcotest.test_case "config validation" `Quick test_sentry_config_validation;
          Alcotest.test_case "crypto api registration" `Quick test_sentry_registers_crypto_api;
          Alcotest.test_case "journal flag" `Quick test_sentry_journal_flag;
          Alcotest.test_case "backend switch guarded" `Quick
            test_sentry_backend_switch_guarded;
        ] );
      ( "background",
        [
          Alcotest.test_case "reads correct data" `Quick test_background_reads_correct_data;
          Alcotest.test_case "never leaks plaintext" `Quick test_background_never_leaks_plaintext;
          Alcotest.test_case "budget respected" `Quick test_background_budget_respected;
          Alcotest.test_case "writes survive eviction" `Quick test_background_writes_survive_eviction;
          Alcotest.test_case "evict all on unlock" `Quick test_background_evict_all_on_unlock;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
