examples/attack_lab.mli:
