(** Observability-layer tests: ring semantics, metrics reductions,
    exporter output shape (checked with a small standalone JSON
    parser) and end-to-end trace determinism over the canned
    scenarios. *)

open Sentry_obs

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ----------------------- a tiny JSON parser ----------------------- *)

(* Enough JSON to validate exporter output without a json dependency:
   objects, arrays, strings (with escapes), numbers, booleans, null. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some x when x = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some ('"' | '\\' | '/') ->
                Buffer.add_char b s.[!pos];
                advance ();
                go ()
            | Some 'n' ->
                Buffer.add_char b '\n';
                advance ();
                go ()
            | Some 't' ->
                Buffer.add_char b '\t';
                advance ();
                go ()
            | Some ('b' | 'f' | 'r') ->
                advance ();
                go ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  advance ()
                done;
                Buffer.add_char b '?';
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "empty input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (
            advance ();
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or }"
            in
            Obj (members [])
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (
            advance ();
            Arr [])
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ]"
            in
            Arr (elems [])
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

let with_fresh_trace ?capacity f =
  Trace.start ?capacity ();
  Fun.protect ~finally:Trace.stop f

(* ------------------------------ trace ----------------------------- *)

let emit_n n =
  for i = 0 to n - 1 do
    Trace.emit
      ~ts:(float_of_int i)
      ~cat:Event.Bus ~subsystem:"soc.bus"
      ~args:[ ("i", Event.Int i) ]
      "tick"
  done

let test_trace_off_is_silent () =
  Trace.stop ();
  checkb "off" false (Trace.on ());
  Trace.emit ~cat:Event.Bus ~subsystem:"soc.bus" "ignored";
  checki "no events" 0 (List.length (Trace.events ()));
  let s = Trace.stats () in
  checki "emitted" 0 s.Trace.emitted;
  checki "capacity" 0 s.Trace.capacity

let test_trace_records_in_order () =
  with_fresh_trace (fun () ->
      emit_n 5;
      let evs = Trace.events () in
      checki "count" 5 (List.length evs);
      List.iteri
        (fun i (e : Event.t) ->
          checkf "ordered ts" (float_of_int i) e.Event.ts_ns;
          Alcotest.(check string) "subsystem" "soc.bus" e.Event.subsystem)
        evs)

let test_ring_overflow_keeps_newest () =
  with_fresh_trace ~capacity:8 (fun () ->
      emit_n 20;
      let s = Trace.stats () in
      checki "emitted" 20 s.Trace.emitted;
      checki "dropped" 12 s.Trace.dropped;
      let evs = Trace.events () in
      checki "retained = capacity" 8 (List.length evs);
      (* newest 8 survive: ts 12..19, oldest first *)
      List.iteri
        (fun i (e : Event.t) -> checkf "newest window" (float_of_int (12 + i)) e.Event.ts_ns)
        evs;
      (* per-category counts include dropped events *)
      match Trace.category_counts () with
      | [ (Event.Bus, n) ] -> checki "category total" 20 n
      | _ -> Alcotest.fail "expected only Bus counts")

let test_trace_clear_keeps_recorder () =
  with_fresh_trace (fun () ->
      emit_n 3;
      Trace.clear ();
      checkb "still on" true (Trace.on ());
      checki "empty" 0 (List.length (Trace.events ())))

let test_span_duration () =
  with_fresh_trace (fun () ->
      Trace.span ~cat:Event.Crypto ~subsystem:"crypto.perf" ~start_ns:100.0 ~end_ns:350.0
        "op";
      match Trace.events () with
      | [ e ] -> (
          checkf "start" 100.0 e.Event.ts_ns;
          match e.Event.phase with
          | Event.Complete d -> checkf "duration" 250.0 d
          | _ -> Alcotest.fail "expected Complete")
      | _ -> Alcotest.fail "expected one event")

(** The explicit-handle surface: recorders are values, the ambient
    install is just a pointer to one of them, and a recorder's ring
    stays readable after [uninstall]. *)
let test_recorder_handle_api () =
  let r1 = Trace.Recorder.create ~capacity:4 () in
  let r2 = Trace.Recorder.create () in
  checkb "nothing installed yet" true (Trace.installed () = None);
  Trace.install r1;
  checkb "compat on() sees the install" true (Trace.on ());
  emit_n 6;
  (* swap recorders mid-stream: emitters are oblivious *)
  Trace.install r2;
  emit_n 2;
  Trace.uninstall ();
  checkb "uninstalled" false (Trace.on ());
  let s1 = Trace.Recorder.stats r1 and s2 = Trace.Recorder.stats r2 in
  checki "r1 emitted" 6 s1.Trace.emitted;
  checki "r1 dropped to capacity" 2 s1.Trace.dropped;
  checki "r2 emitted" 2 s2.Trace.emitted;
  checki "r2 kept both" 2 (List.length (Trace.Recorder.events r2));
  (* direct emission onto a handle needs no install at all *)
  Trace.Recorder.emit r2 ~cat:Event.Lock ~subsystem:"t" "direct";
  checki "direct emit" 3 (Trace.Recorder.stats r2).Trace.emitted;
  checkb "bad capacity rejected" true
    (try
       ignore (Trace.Recorder.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

(* --------------------------- causal spans ------------------------- *)

let test_enter_exit_nesting () =
  let r = Trace.Recorder.create () in
  Trace.Recorder.enter_span r ~ts:10.0 ~cat:Event.Lock ~subsystem:"s" "outer";
  checki "depth 1" 1 (Trace.Recorder.open_depth r);
  Trace.Recorder.enter_span r ~ts:20.0 ~cat:Event.Crypto ~subsystem:"s" "inner";
  Trace.Recorder.emit r ~ts:25.0 ~cat:Event.Bus ~subsystem:"s" "tick";
  Trace.Recorder.exit_span r ~ts:30.0 ();
  Trace.Recorder.exit_span r ~ts:40.0 ~args:[ ("pages", Event.Int 3) ] ();
  checki "depth 0" 0 (Trace.Recorder.open_depth r);
  (* exiting with nothing open must not blow up mid-recovery *)
  Trace.Recorder.exit_span r ();
  match Trace.Recorder.events r with
  | [ tick; inner; outer ] ->
      (* the instant inside the inner span is parented to it *)
      checki "tick not a span" 0 tick.Event.span;
      checki "tick parent" 2 tick.Event.parent;
      checki "inner id" 2 inner.Event.span;
      checki "inner parent" 1 inner.Event.parent;
      checkf "inner start" 20.0 inner.Event.ts_ns;
      (match inner.Event.phase with
      | Event.Complete d -> checkf "inner dur" 10.0 d
      | _ -> Alcotest.fail "inner not Complete");
      checki "outer id" 1 outer.Event.span;
      checki "outer parent is root" 0 outer.Event.parent;
      (match outer.Event.phase with
      | Event.Complete d -> checkf "outer dur" 30.0 d
      | _ -> Alcotest.fail "outer not Complete");
      checkb "exit args land on the span" true (outer.Event.args = [ ("pages", Event.Int 3) ])
  | evs -> Alcotest.fail (Printf.sprintf "expected 3 events, got %d" (List.length evs))

let nested_span_events () =
  let r = Trace.Recorder.create () in
  Trace.Recorder.enter_span r ~ts:10.0 ~cat:Event.Lock ~subsystem:"s" "outer";
  Trace.Recorder.enter_span r ~ts:20.0 ~cat:Event.Crypto ~subsystem:"s" "inner";
  Trace.Recorder.exit_span r ~ts:30.0 ();
  Trace.Recorder.exit_span r ~ts:40.0 ();
  Trace.Recorder.events r

let test_folded_stacks () =
  let folded = Export.folded (nested_span_events ()) in
  (* one line per unique stack, root-first frames, self time (the
     outer span's 30 ns minus the inner's 10), sorted by stack *)
  Alcotest.(check string) "folded" "s:outer 20\ns:outer;s:inner 10\n" folded

let test_top_spans () =
  let rows = Export.top_spans (nested_span_events ()) in
  (match rows with
  | [ a; b ] ->
      Alcotest.(check string) "biggest self first" "s:outer" a.Export.sr_frame;
      checki "outer count" 1 a.Export.sr_count;
      checkf "outer total" 30.0 a.Export.sr_total_ns;
      checkf "outer self" 20.0 a.Export.sr_self_ns;
      Alcotest.(check string) "then inner" "s:inner" b.Export.sr_frame;
      checkf "inner self" 10.0 b.Export.sr_self_ns
  | rows -> Alcotest.fail (Printf.sprintf "expected 2 rows, got %d" (List.length rows)));
  checki "limit honoured" 1 (List.length (Export.top_spans ~limit:1 (nested_span_events ())))

let test_recorder_merge () =
  let mk ts0 =
    let r = Trace.Recorder.create () in
    Trace.Recorder.enter_span r ~ts:ts0 ~cat:Event.Lock ~subsystem:"s" "op";
    Trace.Recorder.exit_span r ~ts:(ts0 +. 5.0) ();
    Trace.Recorder.emit r ~ts:(ts0 +. 6.0) ~cat:Event.Bus ~subsystem:"s" "tick";
    r
  in
  let a = mk 0.0 and b = mk 2.0 in
  let m = Trace.Recorder.merge a b in
  let evs = Trace.Recorder.events m in
  checki "all retained" 4 (List.length evs);
  let s = Trace.Recorder.stats m in
  checki "emitted sums" 4 s.Trace.emitted;
  checki "nothing dropped" 0 s.Trace.dropped;
  let tss = List.map (fun (e : Event.t) -> e.Event.ts_ns) evs in
  checkb "interleaved by ts" true (tss = List.sort compare tss);
  (* b's span ids are offset past a's: causal trees never collide *)
  let ids = List.filter_map (fun (e : Event.t) -> if e.Event.span <> 0 then Some e.Event.span else None) evs in
  checki "both spans present" 2 (List.length ids);
  checkb "distinct ids" true (List.sort_uniq compare ids = List.sort compare ids);
  (* per-category counts add *)
  checkb "counts add" true
    (List.sort compare (Trace.Recorder.category_counts m)
    = List.sort compare [ (Event.Lock, 2); (Event.Bus, 2) ]);
  (* deterministic, and the inputs are untouched *)
  checkb "deterministic" true (Trace.Recorder.events (Trace.Recorder.merge a b) = evs);
  checki "a intact" 2 (List.length (Trace.Recorder.events a));
  checki "b intact" 2 (List.length (Trace.Recorder.events b))

(* ----------------------------- metrics ---------------------------- *)

let test_metrics_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~subsystem:"t" "hits" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  checki "counter" 5 (Metrics.counter_value c);
  let g = Metrics.gauge m ~subsystem:"t" "level" in
  Metrics.set g 2.5;
  checkf "gauge" 2.5 (Metrics.gauge_value g);
  let flat = Metrics.flat m in
  checkf "flat counter" 5.0 (List.assoc "t/hits" flat);
  checkf "flat gauge" 2.5 (List.assoc "t/level" flat)

let test_metrics_histogram_percentiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~subsystem:"t" "lat" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  let flat = Metrics.flat m in
  checkf "count" 100.0 (List.assoc "t/lat/count" flat);
  checkf "mean" 50.5 (List.assoc "t/lat/mean" flat);
  checkf "p50" 50.0 (List.assoc "t/lat/p50" flat);
  checkf "p95" 95.0 (List.assoc "t/lat/p95" flat);
  checkf "p99" 99.0 (List.assoc "t/lat/p99" flat);
  checkf "max" 100.0 (List.assoc "t/lat/max" flat)

(** Regression: the flat export must be sorted by key regardless of
    registration order, so two registries with the same instruments
    produce byte-identical reports (what the bench snapshot diffs and
    the differential suites rely on). *)
let test_metrics_flat_order_independent () =
  let keys =
    [ "zerod/pages"; "bus/txns"; "lock/count"; "aes/bytes"; "sched/switches" ]
  in
  let value_of key = float_of_int (Hashtbl.hash key mod 1000) in
  let with_values order =
    let m = Metrics.create () in
    List.iter
      (fun key ->
        match String.split_on_char '/' key with
        | [ subsystem; name ] ->
            Metrics.inc ~by:(int_of_float (value_of key)) (Metrics.counter m ~subsystem name)
        | _ -> assert false)
      order;
    Metrics.flat m
  in
  let a = with_values keys in
  let b = with_values (List.rev keys) in
  checkb "insertion order is invisible" true (a = b);
  let ks = List.map fst a in
  checkb "keys sorted" true (ks = List.sort String.compare ks);
  checki "all present" (List.length keys) (List.length a)

let test_metrics_kind_clash () =
  let m = Metrics.create () in
  ignore (Metrics.counter m ~subsystem:"t" "x");
  checkb "clash raises" true
    (try
       ignore (Metrics.gauge m ~subsystem:"t" "x");
       false
     with Invalid_argument _ -> true)

let test_metrics_labels () =
  Alcotest.(check string) "labels sorted by key" "s/n{a=1,b=2}"
    (Metrics.key ~subsystem:"s" ~labels:[ ("b", "2"); ("a", "1") ] "n");
  let m = Metrics.create () in
  let large = Metrics.counter m ~subsystem:"s" ~labels:[ ("tenant_class", "large") ] "hits" in
  let small = Metrics.counter m ~subsystem:"s" ~labels:[ ("tenant_class", "small") ] "hits" in
  let plain = Metrics.counter m ~subsystem:"s" "hits" in
  Metrics.inc large;
  Metrics.inc ~by:2 small;
  Metrics.inc ~by:4 plain;
  let flat = Metrics.flat m in
  checkf "unlabeled stays separate" 4.0 (List.assoc "s/hits" flat);
  checkf "large" 1.0 (List.assoc "s/hits{tenant_class=large}" flat);
  checkf "small" 2.0 (List.assoc "s/hits{tenant_class=small}" flat);
  checkb "structural chars rejected" true
    (try
       ignore (Metrics.key ~subsystem:"s" ~labels:[ ("a,b", "x") ] "n");
       false
     with Invalid_argument _ -> true)

let test_histogram_bounded_reservoir () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~subsystem:"t" "lat" in
  for i = 1 to 10_000 do
    Metrics.observe h (float_of_int i)
  done;
  checki "count keeps growing" 10_000 (Metrics.hist_count h);
  checki "reservoir capped" Metrics.reservoir_capacity (Array.length (Metrics.observations h));
  checkf "max exact" 10_000.0 (Metrics.hist_max h);
  checkf "min exact" 1.0 (Metrics.hist_min h);
  (* beyond the reservoir, percentiles are HDR bucket-upper-bound
     estimates: over-estimates within the 6.25% bucket width, clamped
     to the tracked max *)
  let p50 = Metrics.hist_percentile h 50.0 in
  checkb "p50 within bucket error" true (p50 >= 5000.0 && p50 <= 5000.0 *. 1.0625);
  let p999 = Metrics.hist_percentile h 99.9 in
  checkb "p999 near the tail" true (p999 >= 9990.0 && p999 <= 10_000.0);
  checkb "p999 exported" true (List.mem_assoc "t/lat/p999" (Metrics.flat m))

let test_histogram_p999_exact_path () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~subsystem:"t" "lat" in
  for i = 1 to 200 do
    Metrics.observe h (float_of_int i)
  done;
  (* 200 samples fit the reservoir: percentiles are exact nearest-rank *)
  checkf "p999 exact" 200.0 (Metrics.hist_percentile h 99.9);
  checkf "p50 exact" 100.0 (Metrics.hist_percentile h 50.0)

let test_metrics_merge_semantics () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.inc ~by:3 (Metrics.counter a ~subsystem:"s" "c");
  Metrics.inc ~by:4 (Metrics.counter b ~subsystem:"s" "c");
  Metrics.set_at (Metrics.gauge a ~subsystem:"s" "g") ~ts:10.0 1.0;
  Metrics.set_at (Metrics.gauge b ~subsystem:"s" "g") ~ts:5.0 9.0;
  let ha = Metrics.histogram a ~subsystem:"s" "h" in
  let hb = Metrics.histogram b ~subsystem:"s" "h" in
  List.iter (Metrics.observe ha) [ 1.0; 5.0 ];
  List.iter (Metrics.observe hb) [ 2.0; 10.0 ];
  (* b also carries an instrument a never saw *)
  Metrics.inc (Metrics.counter b ~subsystem:"s" "only_b");
  let flat = Metrics.flat (Metrics.merge a b) in
  checkf "counters add" 7.0 (List.assoc "s/c" flat);
  checkf "later simulated write wins" 1.0 (List.assoc "s/g" flat);
  checkf "hist count" 4.0 (List.assoc "s/h/count" flat);
  checkf "hist mean" 4.5 (List.assoc "s/h/mean" flat);
  checkf "hist max" 10.0 (List.assoc "s/h/max" flat);
  checkf "b-only instrument survives" 1.0 (List.assoc "s/only_b" flat);
  checkb "merge commutes on the flat report" true
    (flat = Metrics.flat (Metrics.merge b a));
  (* snapshots are isolated deep copies *)
  let snap = Metrics.snapshot a in
  Metrics.inc (Metrics.counter a ~subsystem:"s" "c");
  checkf "snapshot frozen" 3.0 (List.assoc "s/c" (Metrics.flat snap));
  (* same key, different kind: merge must refuse *)
  let x = Metrics.create () and y = Metrics.create () in
  ignore (Metrics.counter x ~subsystem:"s" "k");
  ignore (Metrics.gauge y ~subsystem:"s" "k");
  checkb "kind mismatch raises" true
    (try
       ignore (Metrics.merge x y);
       false
     with Invalid_argument _ -> true)

(* ------------------------ merge properties ------------------------ *)

(* Counter values are ints, so merge is exactly associative and
   commutative; histogram count/bucket-occupancy/min/max likewise.
   (Float sums and reservoir order are deliberately excluded: addition
   is commutative but not associative to the ulp.) *)

let counter_registry kvs =
  let m = Metrics.create () in
  List.iter
    (fun (i, v) ->
      Metrics.inc ~by:v (Metrics.counter m ~subsystem:"q" (Printf.sprintf "c%d" (i mod 4))))
    kvs;
  m

let counters_gen = QCheck.(list (pair small_nat small_nat))

let hist_registry xs =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~subsystem:"q" "h" in
  List.iter (fun n -> Metrics.observe h (float_of_int (n + 1))) xs;
  m

let hist_sig m =
  let h = Metrics.histogram m ~subsystem:"q" "h" in
  (Metrics.hist_count h, Metrics.bucket_counts h, Metrics.hist_min h, Metrics.hist_max h)

let obs_gen = QCheck.(list small_nat)

let prop_counter_merge_comm =
  QCheck.Test.make ~name:"counter merge commutative" ~count:100
    QCheck.(pair counters_gen counters_gen)
    (fun (xs, ys) ->
      Metrics.flat (Metrics.merge (counter_registry xs) (counter_registry ys))
      = Metrics.flat (Metrics.merge (counter_registry ys) (counter_registry xs)))

let prop_counter_merge_assoc =
  QCheck.Test.make ~name:"counter merge associative" ~count:100
    QCheck.(triple counters_gen counters_gen counters_gen)
    (fun (xs, ys, zs) ->
      let a () = counter_registry xs and b () = counter_registry ys and c () = counter_registry zs in
      Metrics.flat (Metrics.merge (Metrics.merge (a ()) (b ())) (c ()))
      = Metrics.flat (Metrics.merge (a ()) (Metrics.merge (b ()) (c ()))))

let prop_hist_merge_comm =
  QCheck.Test.make ~name:"histogram bucket merge commutative" ~count:100
    QCheck.(pair obs_gen obs_gen)
    (fun (xs, ys) ->
      hist_sig (Metrics.merge (hist_registry xs) (hist_registry ys))
      = hist_sig (Metrics.merge (hist_registry ys) (hist_registry xs)))

let prop_hist_merge_assoc =
  QCheck.Test.make ~name:"histogram bucket merge associative" ~count:100
    QCheck.(triple obs_gen obs_gen obs_gen)
    (fun (xs, ys, zs) ->
      let a () = hist_registry xs and b () = hist_registry ys and c () = hist_registry zs in
      hist_sig (Metrics.merge (Metrics.merge (a ()) (b ())) (c ()))
      = hist_sig (Metrics.merge (a ()) (Metrics.merge (b ()) (c ()))))

(* The reservoir merge must not bias percentiles toward any shard's
   earliest samples (the pre-fix behavior kept shard 0's reservoir and
   a *prefix* of each later shard's).  Pool random shards in a random
   merge order and require every exported percentile to match the
   pooled ground truth: exactly while the pooled count fits the
   reservoir, within the 6.25% HDR bucket width beyond it — and to be
   identical across merge orders either way. *)
let hist_registry_values vs =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~subsystem:"q" "h" in
  List.iter (fun v -> Metrics.observe h (float_of_int v)) vs;
  m

let merge_in_order rs = function
  | [] -> invalid_arg "merge_in_order"
  | perm ->
      let arr = Array.of_list rs in
      (match List.map (fun i -> arr.(i)) perm with
      | r0 :: rest -> List.fold_left Metrics.merge r0 rest
      | [] -> assert false)

(* Deterministic pin of the same fix: two equal-weight shards past the
   reservoir must both survive in the merged exact-sample window (the
   pre-fix prefix-take kept only shard 0's), in either merge order. *)
let test_merged_reservoir_weighted () =
  let lo = hist_registry_values (List.init 300 (fun _ -> 1_000)) in
  let hi = hist_registry_values (List.init 300 (fun _ -> 3_000)) in
  List.iter
    (fun (name, m) ->
      let h = Metrics.histogram m ~subsystem:"q" "h" in
      let obs = Metrics.observations h in
      checki (name ^ ": reservoir full") Metrics.reservoir_capacity (Array.length obs);
      let n_lo = Array.fold_left (fun a v -> if v = 1_000.0 then a + 1 else a) 0 obs in
      let n_hi = Array.fold_left (fun a v -> if v = 3_000.0 then a + 1 else a) 0 obs in
      checki (name ^ ": nothing else") Metrics.reservoir_capacity (n_lo + n_hi);
      checki (name ^ ": equal shard weights split the window") n_lo n_hi)
    [ ("lo-hi", Metrics.merge lo hi); ("hi-lo", Metrics.merge hi lo) ]

let prop_hist_merge_unbiased =
  let shards_gen =
    QCheck.(pair (list_of_size Gen.(2 -- 5) (list_of_size Gen.(0 -- 300) (1 -- 100_000))) small_nat)
  in
  QCheck.Test.make ~name:"merged percentiles track pooled samples in any merge order" ~count:60
    shards_gen
    (fun (shards, seed) ->
      let shards = if shards = [] then [ [ 1 ] ] else shards in
      let rs = List.map hist_registry_values shards in
      let k = List.length rs in
      let ids = List.init k Fun.id in
      (* a deterministic pseudo-random permutation, plus its reverse *)
      let perm =
        List.map snd (List.sort compare (List.map (fun i -> (Hashtbl.hash (seed, i), i)) ids))
      in
      let ha = Metrics.histogram (merge_in_order rs perm) ~subsystem:"q" "h" in
      let hb = Metrics.histogram (merge_in_order rs (List.rev perm)) ~subsystem:"q" "h" in
      let pooled = Array.of_list (List.concat_map (List.map float_of_int) shards) in
      let n = Array.length pooled in
      n = 0
      || List.for_all
           (fun p ->
             let truth = Sentry_util.Stats.percentile p pooled in
             let est = Metrics.hist_percentile ha p in
             Metrics.hist_percentile hb p = est
             &&
             if n <= Metrics.reservoir_capacity then est = truth
             else est >= truth && est <= truth *. 1.0625 *. (1.0 +. 1e-9))
           [ 50.0; 90.0; 99.0; 99.9 ])

(* ------------------------------- slo ------------------------------ *)

let test_slo_parse_and_evaluate () =
  let spec = "# header comment\n\na/b p99 <= 10\na/b/count >= 2\nc/d >= 1.5 # trailing\n" in
  match Slo.parse spec with
  | Error e -> Alcotest.fail e
  | Ok objs ->
      checki "three objectives" 3 (List.length objs);
      (match objs with
      | o :: _ -> Alcotest.(check string) "stat expands into the key" "a/b/p99" o.Slo.key
      | [] -> Alcotest.fail "no objectives");
      let r = Slo.evaluate objs [ ("a/b/p99", 5.0); ("a/b/count", 2.0); ("c/d", 1.0) ] in
      checki "one violation" 1 r.Slo.violations;
      checkb "not ok" false (Slo.ok r);
      let missing = Slo.evaluate objs [ ("a/b/p99", 5.0) ] in
      checki "missing keys are violations" 2 missing.Slo.violations;
      let pass = Slo.evaluate objs [ ("a/b/p99", 10.0); ("a/b/count", 2.0); ("c/d", 1.5) ] in
      checkb "thresholds are inclusive" true (Slo.ok pass)

let test_slo_parse_errors () =
  let bad s = match Slo.parse s with Error _ -> true | Ok _ -> false in
  checkb "bad operator" true (bad "a/b == 1\n");
  checkb "bad threshold" true (bad "a/b <= fast\n");
  checkb "unknown stat" true (bad "a/b p42 <= 1\n");
  checkb "missing threshold" true (bad "a/b <=\n")

let test_slo_report_json () =
  match Slo.parse "a/b <= 1\nmissing/key >= 0\n" with
  | Error e -> Alcotest.fail e
  | Ok objs ->
      let report = Slo.evaluate objs [ ("a/b", 2.0) ] in
      let doc = Json.parse (Json_out.to_string (Slo.report_json report)) in
      checkb "ok false" true (Json.member "ok" doc = Some (Json.Bool false));
      checkb "violations" true (Json.member "violations" doc = Some (Json.Num 2.0));
      (match Json.member "results" doc with
      | Some (Json.Arr [ first; second ]) ->
          checkb "actual present" true (Json.member "actual" first = Some (Json.Num 2.0));
          checkb "missing actual is null" true (Json.member "actual" second = Some Json.Null)
      | _ -> Alcotest.fail "results must list both objectives")

(* ---------------------------- exporters --------------------------- *)

let sample_events =
  [
    {
      Event.ts_ns = 1000.0;
      cat = Event.Lock;
      subsystem = "core.lock_state";
      name = "lock-transition";
      phase = Event.Instant;
      span = 0;
      parent = 0;
      args = [ ("from", Event.Str "unlocked"); ("to", Event.Str "locking") ];
    };
    {
      Event.ts_ns = 2000.0;
      cat = Event.Crypto;
      subsystem = "crypto.perf";
      name = "aes-charge";
      phase = Event.Complete 512.0;
      span = 1;
      parent = 0;
      args = [ ("bytes", Event.Int 4096); ("ok", Event.Bool true) ];
    };
  ]

let test_chrome_trace_shape () =
  let doc = Json.parse (Export.chrome_trace_string sample_events) in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  checkb "displayTimeUnit" true (Json.member "displayTimeUnit" doc = Some (Json.Str "ns"));
  (* metadata names the process and one lane per subsystem *)
  let phases =
    List.filter_map (fun e -> Json.member "ph" e) events
    |> List.map (function Json.Str s -> s | _ -> Alcotest.fail "ph not a string")
  in
  checkb "has metadata" true (List.mem "M" phases);
  checkb "has instant" true (List.mem "i" phases);
  checkb "has span" true (List.mem "X" phases);
  List.iter
    (fun e ->
      checkb "every event has a name" true (Json.member "name" e <> None);
      checkb "every event has a pid" true (Json.member "pid" e <> None);
      match Json.member "ph" e with
      | Some (Json.Str "X") ->
          (* spans carry microsecond dur: 512 ns = 0.512 us *)
          checkb "span dur" true (Json.member "dur" e = Some (Json.Num 0.512));
          checkb "span ts in us" true (Json.member "ts" e = Some (Json.Num 2.0))
      | _ -> ())
    events

let test_jsonl_parses_per_line () =
  let lines =
    Export.jsonl sample_events |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  checki "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      let o = Json.parse line in
      checkb "cat" true (Json.member "cat" o <> None);
      checkb "ts_ns" true (Json.member "ts_ns" o <> None))
    lines

let test_metrics_jsonl () =
  let lines =
    Export.metrics_jsonl [ ("a/b", 1.5); ("c/d", infinity) ]
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  checki "two lines" 2 (List.length lines);
  (match Json.parse (List.nth lines 0) with
  | o ->
      checkb "key" true (Json.member "key" o = Some (Json.Str "a/b"));
      checkb "value" true (Json.member "value" o = Some (Json.Num 1.5)));
  (* non-finite floats must not corrupt the JSON *)
  checkb "inf is null" true (Json.member "value" (Json.parse (List.nth lines 1)) = Some Json.Null)

(* ------------------------- end-to-end runs ------------------------ *)

let run_scenario ?seed name platform =
  Trace.start ();
  let r = Sentry_core.Trace_scenario.run ?seed name platform in
  let evs = Trace.events () in
  let flat = Sentry_core.Obs_report.flat r.Sentry_core.Trace_scenario.sentry in
  Trace.stop ();
  (evs, flat)

let test_scenario_deterministic () =
  let a, _ = run_scenario Sentry_core.Trace_scenario.Lock_cycle `Tegra3 in
  let b, _ = run_scenario Sentry_core.Trace_scenario.Lock_cycle `Tegra3 in
  checki "same length" (List.length a) (List.length b);
  checkb "identical event streams" true (a = b)

let test_scenario_platform_sensitivity () =
  let a, _ = run_scenario Sentry_core.Trace_scenario.Lock_cycle `Tegra3 in
  let b, _ = run_scenario Sentry_core.Trace_scenario.Lock_cycle `Nexus4 in
  (* no cache locking and no background paging on the nexus4: the
     streams must reflect the platform, not just the scenario script *)
  checkb "streams differ" true (a <> b)

let required_names =
  [ "lock-transition"; "page-fault"; "aes-charge"; "device-read"; "read" ]

let test_scenario_covers_required_events () =
  List.iter
    (fun platform ->
      let evs, _ = run_scenario Sentry_core.Trace_scenario.Lock_cycle platform in
      let names = List.map (fun (e : Event.t) -> e.Event.name) evs in
      List.iter
        (fun n -> checkb (Printf.sprintf "%s present" n) true (List.mem n names))
        required_names)
    [ `Tegra3; `Nexus4; `Future ]

let test_scenario_metrics_report () =
  let _, flat = run_scenario Sentry_core.Trace_scenario.Lock_cycle `Tegra3 in
  checkb "bus transactions" true (List.assoc "soc.bus/transactions" flat > 0.0);
  checkb "locks counted" true (List.assoc "core.lock_state/locks" flat = 1.0);
  checkb "events recorded" true (List.assoc "obs.trace/events_emitted" flat > 0.0);
  (* keys are sorted for stable, diffable reports *)
  let keys = List.map fst flat in
  checkb "sorted keys" true (keys = List.sort compare keys)

let test_chrome_export_of_scenario_parses () =
  let evs, _ = run_scenario Sentry_core.Trace_scenario.Dm_crypt_io `Tegra3 in
  match Json.parse (Export.chrome_trace_string evs) with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "chrome trace must be a JSON object"

(* --------------------- ambient slot is per-domain ------------------ *)

(* The ambient recorder lives in [Domain.DLS]: a freshly spawned
   domain starts untraced, a worker's install never clobbers the
   spawner's, and nothing the worker records lands in the main
   domain's recorder.  This is what lets each fleet shard own a
   private recorder on a pool worker. *)
let test_trace_ambient_domain_local () =
  let r = Trace.Recorder.create ~capacity:16 () in
  Trace.install r;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let worker =
        Domain.spawn (fun () ->
            let inherited = Trace.on () in
            let mine = Trace.Recorder.create ~capacity:16 () in
            Trace.install mine;
            Trace.Recorder.emit mine ~ts:1.0 ~cat:Event.Sched ~subsystem:"test" "worker-event";
            let own = match Trace.installed () with Some x -> x == mine | None -> false in
            let seen = (Trace.Recorder.stats mine).Trace.emitted in
            Trace.uninstall ();
            (inherited, own, seen))
      in
      let inherited, own, seen = Domain.join worker in
      checkb "fresh domain starts untraced" false inherited;
      checkb "worker sees its own install" true own;
      checki "worker recorder saw its event" 1 seen;
      checkb "main slot untouched" true
        (match Trace.installed () with Some x -> x == r | None -> false);
      checki "main recorder saw nothing" 0 (Trace.Recorder.stats r).Trace.emitted)

let () =
  Alcotest.run "sentry_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "off is silent" `Quick test_trace_off_is_silent;
          Alcotest.test_case "ambient is domain-local" `Quick test_trace_ambient_domain_local;
          Alcotest.test_case "records in order" `Quick test_trace_records_in_order;
          Alcotest.test_case "overflow keeps newest" `Quick test_ring_overflow_keeps_newest;
          Alcotest.test_case "clear keeps recorder" `Quick test_trace_clear_keeps_recorder;
          Alcotest.test_case "span duration" `Quick test_span_duration;
          Alcotest.test_case "recorder handle api" `Quick test_recorder_handle_api;
        ] );
      ( "spans",
        [
          Alcotest.test_case "enter/exit nesting" `Quick test_enter_exit_nesting;
          Alcotest.test_case "folded stacks" `Quick test_folded_stacks;
          Alcotest.test_case "top spans" `Quick test_top_spans;
          Alcotest.test_case "recorder merge" `Quick test_recorder_merge;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter/gauge" `Quick test_metrics_counter_gauge;
          Alcotest.test_case "histogram percentiles" `Quick test_metrics_histogram_percentiles;
          Alcotest.test_case "flat order independent" `Quick test_metrics_flat_order_independent;
          Alcotest.test_case "kind clash" `Quick test_metrics_kind_clash;
          Alcotest.test_case "labels" `Quick test_metrics_labels;
          Alcotest.test_case "bounded reservoir" `Quick test_histogram_bounded_reservoir;
          Alcotest.test_case "p999 exact path" `Quick test_histogram_p999_exact_path;
          Alcotest.test_case "merge semantics" `Quick test_metrics_merge_semantics;
          QCheck_alcotest.to_alcotest prop_counter_merge_comm;
          QCheck_alcotest.to_alcotest prop_counter_merge_assoc;
          QCheck_alcotest.to_alcotest prop_hist_merge_comm;
          QCheck_alcotest.to_alcotest prop_hist_merge_assoc;
          Alcotest.test_case "merged reservoir is count-weighted" `Quick
            test_merged_reservoir_weighted;
          QCheck_alcotest.to_alcotest prop_hist_merge_unbiased;
        ] );
      ( "slo",
        [
          Alcotest.test_case "parse and evaluate" `Quick test_slo_parse_and_evaluate;
          Alcotest.test_case "parse errors" `Quick test_slo_parse_errors;
          Alcotest.test_case "report json" `Quick test_slo_report_json;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
          Alcotest.test_case "jsonl per line" `Quick test_jsonl_parses_per_line;
          Alcotest.test_case "metrics jsonl" `Quick test_metrics_jsonl;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "platform sensitivity" `Quick test_scenario_platform_sensitivity;
          Alcotest.test_case "covers required events" `Quick test_scenario_covers_required_events;
          Alcotest.test_case "metrics report" `Quick test_scenario_metrics_report;
          Alcotest.test_case "chrome export parses" `Quick test_chrome_export_of_scenario_parses;
        ] );
    ]
