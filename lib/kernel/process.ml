(** Process model: an address space plus scheduling state and the
    Sentry sensitivity mark.

    [Locked_out] is the paper's "un-schedulable" state: processes
    whose memory was encrypted at screen-lock are parked on a special
    queue so the scheduler cannot run them against ciphertext (§7).
    Background-capable sensitive processes instead keep running in
    [Runnable] with the encrypted-DRAM pager active. *)

type run_state = Runnable | Sleeping | Locked_out

type t = {
  pid : int;
  name : string;
  aspace : Address_space.t;
  kstack : int; (* kernel stack frame (DRAM) for register spills *)
  mutable sensitive : bool;
  mutable state : run_state;
  mutable kernel_time_ns : float;
  mutable user_time_ns : float;
  mutable faults : int;
}

(* Pids are OS-process-global on purpose (they mimic a kernel's pid
   space), but that makes them cross-shard state: an [Atomic.t] keeps
   allocation race-free once tenant shards run on separate Domains.
   The remaining coupling — shards interleaving allocations see
   interleaved numbering — is why deterministic harnesses
   [reset_pids] before booting; per-shard pid spaces arrive with the
   machine-handle refactor (ROADMAP 1). *)
let next_pid = Atomic.make 1

let reset_pids () = Atomic.set next_pid 1

let create ~name ~aspace ~kstack =
  let pid = Atomic.fetch_and_add next_pid 1 in
  {
    pid;
    name;
    aspace;
    kstack;
    sensitive = false;
    state = Runnable;
    kernel_time_ns = 0.0;
    user_time_ns = 0.0;
    faults = 0;
  }

let mark_sensitive t = t.sensitive <- true

let pp ppf t =
  Fmt.pf ppf "%s(pid=%d%s)" t.name t.pid (if t.sensitive then ", sensitive" else "")
