(** Fleet throughput: batched vs per-page lock/unlock pipeline over a
    multi-tenant fleet at N ∈ {4, 32, 128} processes.

    The simulated columns (unlock-to-first-touch, AES energy) are
    pipeline-independent by construction; the host-side
    [lock_pages_per_s] column is what the batch engine buys.  Wall
    clock is environment sensitive, so the table reports a same-run
    ratio rather than absolute promises. *)

open Sentry_util
open Sentry_workloads

let fleet_sizes = [ 4; 32; 128 ]

(* Best host throughput over [trials] runs: the simulated outputs are
   deterministic, so repeated runs only tighten the wall-clock
   estimate against scheduler noise. *)
let best_of ~trials cfg =
  let best = ref None in
  for _ = 1 to trials do
    let s = Fleet.run cfg in
    match !best with
    | Some b when b.Fleet.lock_pages_per_s >= s.Fleet.lock_pages_per_s -> ()
    | _ -> best := Some s
  done;
  Option.get !best

let measure ?(trials = 3) n =
  let cfg =
    {
      Fleet.default with
      Fleet.procs = n;
      pages_per_proc = 16;
      cycles = 2;
      service_wakes = 1;
      io_sectors = 8;
    }
  in
  let batched = best_of ~trials { cfg with Fleet.backend = Sentry_core.Sentry.Batched } in
  let per_page = best_of ~trials { cfg with Fleet.backend = Sentry_core.Sentry.Per_page } in
  (batched, per_page)

let run () =
  let results = List.map (fun n -> (n, measure n)) fleet_sizes in
  let rows =
    List.map
      (fun (n, (b, p)) ->
        [
          string_of_int n;
          string_of_int b.Fleet.pages_locked;
          Printf.sprintf "%.0f" b.Fleet.lock_pages_per_s;
          Printf.sprintf "%.0f" p.Fleet.lock_pages_per_s;
          Printf.sprintf "%.2fx" (b.Fleet.lock_pages_per_s /. p.Fleet.lock_pages_per_s);
          Printf.sprintf "%.1f us" (b.Fleet.unlock_to_first_touch_ns /. 1e3);
          Printf.sprintf "%.3f J" b.Fleet.energy_j;
        ])
      results
  in
  [
    Table.make ~title:"Fleet: batched vs per-page lock/unlock throughput"
      ~header:
        [
          "Procs";
          "Pages locked";
          "Batched pages/s";
          "Per-page pages/s";
          "Speedup";
          "Unlock->touch (sim)";
          "AES energy (sim)";
        ]
      ~notes:
        [
          "Host wall-clock throughput; simulated columns are identical across pipelines.";
          "Speedup is a same-run ratio, so scheduler noise largely cancels.";
        ]
      rows;
  ]
