lib/util/prng.ml: Array Bytes Char Float Int64 Stdlib
