(** Size, time and energy units with pretty-printers.

    Time in the simulator is kept in nanoseconds (as float), energy in
    joules.  All conversions are centralised here so the calibration
    constants in [Sentry_soc.Calib] read naturally. *)

let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024

let ns = 1.0
let us = 1e3
let ms = 1e6
let s = 1e9
let minute = 60.0 *. s

let uj = 1e-6
let mj = 1e-3

(** [pp_bytes ppf n] prints [n] bytes with a binary-unit suffix. *)
let pp_bytes ppf n =
  let f = float_of_int n in
  if n >= gib then Fmt.pf ppf "%.2f GB" (f /. float_of_int gib)
  else if n >= mib then Fmt.pf ppf "%.2f MB" (f /. float_of_int mib)
  else if n >= kib then Fmt.pf ppf "%.1f KB" (f /. float_of_int kib)
  else Fmt.pf ppf "%d B" n

(** [pp_time ppf t] prints a nanosecond count with an adaptive unit. *)
let pp_time ppf t =
  if t >= minute then Fmt.pf ppf "%.2f min" (t /. minute)
  else if t >= s then Fmt.pf ppf "%.2f s" (t /. s)
  else if t >= ms then Fmt.pf ppf "%.2f ms" (t /. ms)
  else if t >= us then Fmt.pf ppf "%.2f us" (t /. us)
  else Fmt.pf ppf "%.0f ns" t

(** [pp_energy ppf e] prints joules with an adaptive unit. *)
let pp_energy ppf e =
  if e >= 1.0 then Fmt.pf ppf "%.2f J" e
  else if e >= mj then Fmt.pf ppf "%.2f mJ" (e /. mj)
  else Fmt.pf ppf "%.2f uJ" (e /. uj)

let bytes_to_mb n = float_of_int n /. float_of_int mib

(** Throughput in MB/s given bytes moved and nanoseconds elapsed. *)
let throughput_mb_s ~bytes ~time_ns =
  if time_ns <= 0.0 then 0.0 else bytes_to_mb bytes /. (time_ns /. s)

let to_string pp v = Fmt.str "%a" pp v
