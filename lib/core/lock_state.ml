(** Screen-lock state machine with PIN and deep-lock.

    Mirrors the device behaviour the paper builds on (§1): PIN-unlock
    after idle, and a deep-lock state after a few wrong PINs to stop
    brute force. *)

type state = Unlocked | Locking | Locked | Unlocking | Deep_locked

type t = {
  pin : string;
  max_attempts : int;
  mutable state : state;
  mutable failed_attempts : int;
  mutable lock_count : int;
  mutable unlock_count : int;
  mutable observers : (old_state:state -> new_state:state -> unit) list;
}

let create ~pin ~max_attempts =
  {
    pin;
    max_attempts;
    state = Unlocked;
    failed_attempts = 0;
    lock_count = 0;
    unlock_count = 0;
    observers = [];
  }

let state t = t.state

(** [on_transition t f] — [f] fires after every state change, in
    registration order.  Used by the analysis engine to evaluate
    invariants at lock/unlock boundaries. *)
let on_transition t f = t.observers <- t.observers @ [ f ]

let clear_observers t = t.observers <- []

let state_name = function
  | Unlocked -> "unlocked"
  | Locking -> "locking"
  | Locked -> "locked"
  | Unlocking -> "unlocking"
  | Deep_locked -> "deep-locked"

let transition t new_state =
  let old_state = t.state in
  t.state <- new_state;
  if Sentry_obs.Trace.on () then
    Sentry_obs.Trace.emit ~cat:Sentry_obs.Event.Lock ~subsystem:"core.lock_state"
      "lock-transition"
      ~args:
        [
          ("from", Sentry_obs.Event.Str (state_name old_state));
          ("to", Sentry_obs.Event.Str (state_name new_state));
        ];
  List.iter (fun f -> f ~old_state ~new_state) t.observers

exception Invalid_transition of string

let begin_lock t =
  match t.state with
  | Unlocked -> transition t Locking
  | s -> raise (Invalid_transition ("begin_lock from " ^ state_name s))

let finish_lock t =
  match t.state with
  | Locking ->
      t.lock_count <- t.lock_count + 1;
      transition t Locked
  | s -> raise (Invalid_transition ("finish_lock from " ^ state_name s))

type unlock_error = Bad_pin | Deep_lock_engaged

(** [begin_unlock t ~pin] checks the PIN; wrong attempts accumulate
    toward deep-lock. *)
let begin_unlock t ~pin =
  match t.state with
  | Deep_locked -> Error Deep_lock_engaged
  | Locked ->
      if String.equal pin t.pin then begin
        t.failed_attempts <- 0;
        transition t Unlocking;
        Ok ()
      end
      else begin
        t.failed_attempts <- t.failed_attempts + 1;
        if Sentry_obs.Trace.on () then
          Sentry_obs.Trace.emit ~cat:Sentry_obs.Event.Lock ~subsystem:"core.lock_state"
            "pin-rejected"
            ~args:[ ("failed_attempts", Sentry_obs.Event.Int t.failed_attempts) ];
        if t.failed_attempts >= t.max_attempts then transition t Deep_locked;
        Error Bad_pin
      end
  | s -> raise (Invalid_transition ("begin_unlock from " ^ state_name s))

let finish_unlock t =
  match t.state with
  | Unlocking ->
      t.unlock_count <- t.unlock_count + 1;
      transition t Unlocked
  | s -> raise (Invalid_transition ("finish_unlock from " ^ state_name s))

(** [abort_unlock t] — crash recovery rolled a half-decrypted unlock
    back to fully-encrypted: return to [Locked] without counting an
    unlock.  The user re-enters the PIN. *)
let abort_unlock t =
  match t.state with
  | Unlocking -> transition t Locked
  | s -> raise (Invalid_transition ("abort_unlock from " ^ state_name s))

let counts t = (t.lock_count, t.unlock_count, t.failed_attempts)
