lib/soc/pl310.mli: Bytes Clock Dram Energy
