(** A minimal extent-based file system over a [Blockio] target.

    Just enough structure for the filebench engine: named files with
    contiguous extents, created once and then read/written at random
    or sequential offsets.  Files can be opened through the cached
    target or (direct I/O) straight through dm-crypt. *)

type file = { fname : string; extent : int (* byte offset on target *); fsize : int }

type t = {
  target : Blockio.t;
  files : (string, file) Hashtbl.t;
  mutable next_free : int;
}

let create target = { target; files = Hashtbl.create 64; next_free = 0 }

exception No_space

(** [create_file t ~name ~size] allocates a contiguous extent. *)
let create_file t ~name ~size =
  if Hashtbl.mem t.files name then invalid_arg ("Ramfs.create_file: exists: " ^ name);
  let extent = t.next_free in
  if extent + size > t.target.Blockio.size then raise No_space;
  t.next_free <- extent + ((size + Page.size - 1) / Page.size * Page.size);
  let f = { fname = name; extent; fsize = size } in
  Hashtbl.replace t.files name f;
  f

let lookup t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None -> raise Not_found

let file_size f = f.fsize

let check_io f off len =
  if off < 0 || len < 0 || off + len > f.fsize then
    invalid_arg (Printf.sprintf "Ramfs: I/O beyond EOF on %s" f.fname)

let read t f ~off ~len =
  check_io f off len;
  Blockio.read t.target ~off:(f.extent + off) ~len

let write t f ~off b =
  check_io f off (Bytes.length b);
  Blockio.write t.target ~off:(f.extent + off) b

let files t = Hashtbl.fold (fun _ f acc -> f :: acc) t.files []
let used_bytes t = t.next_free
