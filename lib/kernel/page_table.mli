(** Page-table entries with the ARM access ("young") bit — a cleared
    young bit on a present page traps on the next access, the hook
    behind decrypt-on-page-in (Fig 1) — plus Sentry's PTE metadata
    ([encrypted], [backing]). *)

type pte = {
  mutable frame : int;  (** physical address of the backing frame *)
  mutable present : bool;
  mutable young : bool;  (** cleared => trap on next access *)
  mutable writable : bool;
  mutable encrypted : bool;  (** frame currently holds ciphertext *)
  mutable no_access : bool;
      (** MProtect-style revoked mapping: frame keeps cleartext, any
          access traps (and segfaults unless a handler clears it) *)
  mutable backing : int option;
      (** original DRAM frame while resident in a locked-cache page *)
}

val make_pte : frame:int -> pte

type t

val create : unit -> t
val find : t -> vpn:int -> pte option

(** Exception-style twin of [find] for the translation fast path (no
    [Some] allocation per hit).
    @raise Not_found when [vpn] is unmapped. *)
val find_exn : t -> vpn:int -> pte
val set : t -> vpn:int -> pte -> unit
val remove : t -> vpn:int -> unit
val iter : t -> (int -> pte -> unit) -> unit
val fold : t -> (int -> pte -> 'a -> 'a) -> 'a -> 'a
val page_count : t -> int

(** Arm the traps: clear every young bit (run at device lock). *)
val clear_young_bits : t -> unit
