(** The global trace recorder: a bounded ring buffer of [Event.t].

    Mirrors the [Config.track_taint] pattern: nothing is allocated and
    the hot-path guard is a single physical-equality test until
    [start] is called.  Emitters write

    {[
      if Trace.on () then
        Trace.emit ~ts:(Clock.now clock) ~cat:Event.Bus ~subsystem:"soc.bus" "read" ~args:[...]
    ]}

    so the disabled path neither allocates the argument list nor
    builds the event.

    On overflow the ring keeps the {e newest} events (oldest are
    overwritten) and counts drops — a trace of a long run always ends
    with the most recent window plus an honest drop counter. *)

type t = {
  buf : Event.t option array;
  capacity : int;
  mutable total : int; (* events ever emitted into this recorder *)
  counts : int array; (* per-category emission counts (never dropped) *)
  mutable now : unit -> float; (* simulated-time source for clockless emitters *)
}

let default_capacity = 1 lsl 16

let current : t option ref = ref None

let on () = !current <> None

let start ?(capacity = default_capacity) ?(now = fun () -> 0.0) () =
  if capacity <= 0 then invalid_arg "Trace.start: capacity must be positive";
  current :=
    Some
      {
        buf = Array.make capacity None;
        capacity;
        total = 0;
        counts = Array.make Event.num_categories 0;
        now;
      }

(** Idempotent [start]: keeps an already-running recorder (and its
    events) instead of replacing it. *)
let ensure ?capacity ?now () = if not (on ()) then start ?capacity ?now ()

let stop () = current := None

let set_time_source f = match !current with Some t -> t.now <- f | None -> ()

let now () = match !current with Some t -> t.now () | None -> 0.0

let emit ?ts ~cat ~subsystem ?(phase = Event.Instant) ?(args = []) name =
  match !current with
  | None -> ()
  | Some t ->
      let ts_ns = match ts with Some ts -> ts | None -> t.now () in
      let e = { Event.ts_ns; cat; subsystem; name; phase; args } in
      t.buf.(t.total mod t.capacity) <- Some e;
      t.total <- t.total + 1;
      let i = Event.category_index cat in
      t.counts.(i) <- t.counts.(i) + 1

(** Emit a span given its boundaries (simulated ns). *)
let span ?(args = []) ~cat ~subsystem ~start_ns ~end_ns name =
  emit ~ts:start_ns ~cat ~subsystem ~phase:(Event.Complete (end_ns -. start_ns)) ~args name

type stats = { emitted : int; dropped : int; capacity : int }

let stats () =
  match !current with
  | None -> { emitted = 0; dropped = 0; capacity = 0 }
  | Some t ->
      { emitted = t.total; dropped = max 0 (t.total - t.capacity); capacity = t.capacity }

(** Retained events, oldest first. *)
let events () =
  match !current with
  | None -> []
  | Some t ->
      let n = min t.total t.capacity in
      let first = if t.total <= t.capacity then 0 else t.total mod t.capacity in
      List.init n (fun i ->
          match t.buf.((first + i) mod t.capacity) with
          | Some e -> e
          | None -> assert false)

(** Per-category emission counts (includes dropped events). *)
let category_counts () =
  match !current with
  | None -> []
  | Some t ->
      List.filter_map
        (fun c ->
          let n = t.counts.(Event.category_index c) in
          if n = 0 then None else Some (c, n))
        Event.categories

(** Drop every retained event and reset the counters, keeping the
    recorder enabled. *)
let clear () =
  match !current with
  | None -> ()
  | Some t ->
      Array.fill t.buf 0 t.capacity None;
      t.total <- 0;
      Array.fill t.counts 0 Event.num_categories 0
