(** Encrypted-DRAM paging for background computation while locked
    (§5, Fig 1).

    The working set of a background-enabled sensitive process lives in
    locked-L2-backed pages; everything else stays encrypted in DRAM.
    On a young-bit fault:

    + copy the encrypted page from its DRAM frame into a locked-cache
      page (allocating one, evicting the LRU resident page if the
      budget is spent);
    + decrypt it in place — the plaintext exists only in locked lines;
    + repoint the PTE at the locked page and set its young bit.

    Eviction runs the sequence in reverse: encrypt in place, copy the
    ciphertext back to the original DRAM frame, repoint the PTE and
    clear young so the next touch faults again. *)

open Sentry_soc
open Sentry_kernel

type resident = { proc : Process.t; vpn : int; locked_page : int }

type t = {
  machine : Machine.t;
  pc : Page_crypt.t;
  locked : Locked_cache.t;
  budget_pages : int;
  mutable lru : resident list; (* head = most recent *)
  mutable page_ins : int;
  mutable page_outs : int;
}

let create machine ~pc ~locked ~budget_bytes =
  {
    machine;
    pc;
    locked;
    budget_pages = budget_bytes / Page.size;
    lru = [];
    page_ins = 0;
    page_outs = 0;
  }

let resident_pages t = List.length t.lru

let trace t name ~pid ~vpn =
  if Sentry_obs.Trace.on () then
    Sentry_obs.Trace.emit
      ~ts:(Clock.now (Machine.clock t.machine))
      ~cat:Sentry_obs.Event.Mem ~subsystem:"core.background" name
      ~args:[ ("pid", Sentry_obs.Event.Int pid); ("vpn", Sentry_obs.Event.Int vpn) ]

let find_pte proc vpn =
  match Page_table.find (Address_space.table proc.Process.aspace) ~vpn with
  | Some pte -> pte
  | None -> invalid_arg "Background: resident page lost its PTE"

(** Page-out one resident page (Fig 1 reversed). *)
let evict t r =
  trace t "page-out" ~pid:r.proc.Process.pid ~vpn:r.vpn;
  let pte = find_pte r.proc r.vpn in
  let backing =
    match pte.Page_table.backing with
    | Some b -> b
    | None -> invalid_arg "Background.evict: page has no DRAM backing"
  in
  (* encrypt in place inside the locked way *)
  let plain = Machine.read t.machine r.locked_page Page.size in
  let ct = Page_crypt.encrypt_bytes t.pc ~pid:r.proc.Process.pid ~vpn:r.vpn plain in
  Machine.with_taint t.machine Taint.Ciphertext (fun () ->
      Machine.write t.machine r.locked_page ct;
      (* copy ciphertext back to DRAM (uncached: it must actually land),
         then invalidate any stale lines over the frame — the page-in copy
         read the old ciphertext through the cache, and software manages
         coherence on this SoC (§4.4) *)
      Machine.write_uncached t.machine backing ct);
  Pl310.invalidate_range (Machine.l2 t.machine) backing Page.size;
  pte.Page_table.frame <- backing;
  pte.Page_table.backing <- None;
  pte.Page_table.encrypted <- true;
  pte.Page_table.young <- false;
  Locked_cache.free_page t.locked r.locked_page;
  t.page_outs <- t.page_outs + 1

let evict_lru t =
  match List.rev t.lru with
  | [] -> ()
  | oldest :: _ ->
      t.lru <- List.filter (fun r -> r != oldest) t.lru;
      evict t oldest

(** Page-in (Fig 1): called from the fault handler. *)
let page_in t proc ~vpn pte =
  trace t "page-in" ~pid:proc.Process.pid ~vpn;
  if resident_pages t >= t.budget_pages then evict_lru t;
  let locked_page = Locked_cache.alloc_page t.locked in
  let dram_frame = pte.Page_table.frame in
  (* step 1: copy encrypted page into the locked way *)
  let ct = Machine.read t.machine dram_frame Page.size in
  Machine.with_taint t.machine Taint.Ciphertext (fun () ->
      Machine.write t.machine locked_page ct);
  (* step 2: decrypt in place (plaintext only in locked lines) *)
  let plain = Page_crypt.decrypt_bytes t.pc ~pid:proc.Process.pid ~vpn ct in
  Machine.with_taint t.machine Taint.Secret_cleartext (fun () ->
      Machine.write t.machine locked_page plain);
  (* step 3: repoint the PTE and set young *)
  pte.Page_table.frame <- locked_page;
  pte.Page_table.backing <- Some dram_frame;
  pte.Page_table.encrypted <- false;
  pte.Page_table.young <- true;
  t.lru <- { proc; vpn; locked_page } :: t.lru;
  t.page_ins <- t.page_ins + 1

let touch_lru t proc vpn =
  match List.partition (fun r -> r.proc == proc && r.vpn = vpn) t.lru with
  | [ r ], rest -> t.lru <- r :: rest
  | _ -> ()

(** The fault handler active while the device is locked with
    background processes running. *)
let fault_handler t : Vm.fault_handler =
 fun proc ~vaddr pte ->
  let vpn = Page.vpn_of vaddr in
  if pte.Page_table.encrypted && pte.Page_table.backing = None then page_in t proc ~vpn pte
  else begin
    (* plain young-bit aging of an already-resident page *)
    touch_lru t proc vpn;
    pte.Page_table.young <- true
  end

(** Flush the whole working set back to encrypted DRAM (run before
    unlock hands over to the lazy decryptor, and on shutdown). *)
let evict_all t =
  List.iter (evict t) t.lru;
  t.lru <- []

let stats t = (t.page_ins, t.page_outs)
