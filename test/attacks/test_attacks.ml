open Sentry_util
open Sentry_soc
open Sentry_crypto
open Sentry_core
open Sentry_attacks

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_bytes = Alcotest.(check bytes)

let boot ?(seed = 1) () = System.boot `Tegra3 ~seed

(* ----------------------------- Memdump ---------------------------- *)

let test_memdump_search () =
  let d = Memdump.of_bytes ~label:"t" ~base:0x1000 (Bytes.of_string "aaaNEEDLEbbb") in
  checkb "contains" true (Memdump.contains d (Bytes.of_string "NEEDLE"));
  Alcotest.(check (option int)) "find with base" (Some 0x1003)
    (Memdump.find d (Bytes.of_string "NEEDLE"));
  checkb "missing" false (Memdump.contains d (Bytes.of_string "nadel"))

let test_memdump_fuzzy () =
  let d = Memdump.of_bytes ~label:"t" ~base:0 (Bytes.of_string "xxABCDEFGHIJyy") in
  let needle = Bytes.of_string "ABCXEFGHIJ" in
  (* 9 of 10 bytes match *)
  checkb "fuzzy 85%" true (Memdump.contains_fuzzy d needle ~min_match:0.85);
  checkb "strict 100%" false (Memdump.contains_fuzzy d needle ~min_match:1.0)

let test_memdump_remanence_ratio () =
  let b = Bytes.create 80 in
  Bytes_util.fill_pattern b (Bytes.of_string "PATTERNZ");
  Bytes.set b 3 '?';
  (* kills slot 0 *)
  let d = Memdump.of_bytes ~label:"t" ~base:0 b in
  Alcotest.(check (float 1e-9)) "9/10" 0.9
    (Memdump.remanence_ratio d ~pattern:(Bytes.of_string "PATTERNZ"))

(* ---------------------------- Key_finder -------------------------- *)

let test_key_finder_multiple_keys () =
  let p = Prng.create ~seed:3 in
  let k1 = Prng.bytes p 16 and k2 = Prng.bytes p 16 in
  let s1 = Aes_key.serialize (Aes_key.expand k1) in
  let s2 = Aes_key.serialize (Aes_key.expand k2) in
  let image =
    Bytes.concat Bytes.empty [ Prng.bytes p 1000; s1; Prng.bytes p 500; s2; Prng.bytes p 200 ]
  in
  (* schedules are word-aligned in the image? 1000 and 1516 are both
     multiples of 4, good. *)
  let d = Memdump.of_bytes ~label:"t" ~base:0 image in
  let hits = Key_finder.scan d in
  checki "two keys" 2 (List.length hits);
  checkb "k1 found" true (Key_finder.finds_key d ~key:k1);
  checkb "k2 found" true (Key_finder.finds_key d ~key:k2);
  checki "k1 offset" 1000 (List.hd hits).Key_finder.offset

let test_key_finder_unaligned_scan () =
  let p = Prng.create ~seed:4 in
  let k = Prng.bytes p 16 in
  let s = Aes_key.serialize (Aes_key.expand k) in
  let image = Bytes.cat (Prng.bytes p 7) s in
  let d = Memdump.of_bytes ~label:"t" ~base:0 image in
  checkb "missed at alignment 4" true (Key_finder.scan d = []);
  checki "found at alignment 1" 1 (List.length (Key_finder.scan ~alignment:1 d))

let test_key_finder_clean_image () =
  let p = Prng.create ~seed:5 in
  let d = Memdump.of_bytes ~label:"t" ~base:0 (Prng.bytes p 65536) in
  checki "no keys in noise" 0 (List.length (Key_finder.scan ~alignment:1 d))

(* ----------------------------- Cold_boot -------------------------- *)

let plant_secret_in_dram system secret =
  let machine = System.machine system in
  let frame = Sentry_kernel.Frame_alloc.alloc system.System.frames in
  Machine.write_uncached machine frame secret;
  frame

let test_cold_boot_warm_reads_dram () =
  let system = boot () in
  let secret = Bytes.of_string "SECRET-IN-DRAM-SHOULD-SURVIVE-WARM" in
  ignore (plant_secret_in_dram system secret);
  checkb "warm reboot finds it" true
    (Cold_boot.succeeds (System.machine system) Cold_boot.Os_reboot ~secret)

let test_cold_boot_two_second_destroys () =
  let system = boot () in
  let secret = Bytes.of_string "SECRET-IN-DRAM-DIES-AFTER-2S-RESET" in
  ignore (plant_secret_in_dram system secret);
  checkb "2s reset destroys" false
    (Cold_boot.succeeds (System.machine system) Cold_boot.Two_second_reset ~secret)

let test_cold_boot_iram_safe () =
  let system = boot () in
  let machine = System.machine system in
  let secret = Bytes.of_string "IRAM-SECRET-KEY!" in
  Machine.write machine (Memmap.iram_base + (128 * Units.kib)) secret;
  checkb "reflash wipes iram" false
    (Cold_boot.succeeds machine Cold_boot.Device_reflash ~secret)

let test_cold_boot_recovers_generic_key () =
  let system = boot ~seed:7 () in
  let machine = System.machine system in
  let key = Prng.bytes (Machine.prng machine) 16 in
  let g =
    Generic_aes.create machine
      ~ctx_base:(Sentry_kernel.Frame_alloc.alloc system.System.frames)
      ~variant:Perf.Openssl_user
  in
  Generic_aes.set_key g key;
  Pl310.flush_masked (Machine.l2 machine);
  let keys = Cold_boot.recover_keys machine Cold_boot.Os_reboot in
  checkb "key recovered" true (List.exists (Bytes.equal key) keys)

let test_cold_boot_misses_onsoc_key () =
  let system = boot ~seed:8 () in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  ignore sentry;
  (* the volatile key's schedule lives only on-SoC *)
  let keys = Cold_boot.recover_keys machine Cold_boot.Os_reboot in
  checki "nothing" 0 (List.length keys)

let test_cold_boot_image_once_answers_everything () =
  let system = boot ~seed:11 () in
  let machine = System.machine system in
  let secret = Bytes.of_string "ONE-RESET-MANY-QUESTIONS-SECRET!" in
  ignore (plant_secret_in_dram system secret);
  let key = Prng.bytes (Machine.prng machine) 16 in
  let g =
    Generic_aes.create machine
      ~ctx_base:(Sentry_kernel.Frame_alloc.alloc system.System.frames)
      ~variant:Perf.Openssl_user
  in
  Generic_aes.set_key g key;
  Pl310.flush_masked (Machine.l2 machine);
  (* one destructive reset, then every question against the same image *)
  let img = Cold_boot.image machine Cold_boot.Os_reboot in
  checkb "secret in image" true (Cold_boot.secret_in_image img ~secret);
  checkb "same image, same answer" true (Cold_boot.secret_in_image img ~secret);
  checkb "key schedule in image" true
    (List.exists (Bytes.equal key) (Cold_boot.keys_of_image img))

let test_cold_boot_wrappers_agree_with_image () =
  (* warm reboots keep DRAM intact, so the one-shot wrappers (which
     each mount their own reset) must agree with the image API *)
  let system = boot ~seed:12 () in
  let machine = System.machine system in
  let secret = Bytes.of_string "WRAPPER-VS-IMAGE-AGREEMENT-CHECK" in
  ignore (plant_secret_in_dram system secret);
  let img = Cold_boot.image machine Cold_boot.Os_reboot in
  checkb "image finds it" true (Cold_boot.secret_in_image img ~secret);
  checkb "succeeds wrapper agrees" true (Cold_boot.succeeds machine Cold_boot.Os_reboot ~secret);
  let dram_dump, iram_dump = Cold_boot.mount machine Cold_boot.Os_reboot in
  checkb "mount wrapper sees dram" true (Memdump.contains dram_dump secret);
  checkb "mount wrapper misses iram" false (Memdump.contains iram_dump secret)

(* ---------------------------- Dma_attack -------------------------- *)

let test_dma_dump_finds_dram_secret () =
  let system = boot () in
  let secret = Bytes.of_string "DMA-VISIBLE" in
  ignore (plant_secret_in_dram system secret);
  checkb "found" true (Dma_attack.succeeds (System.machine system) ~secret)

let test_dma_dump_misses_locked_cache () =
  let system = boot () in
  let machine = System.machine system in
  let lc =
    Locked_cache.create machine ~arena_base:system.System.arena_base ~max_ways:1
  in
  let page = Locked_cache.alloc_page lc in
  let secret = Bytes.of_string "CACHE-CONFINED!!" in
  Machine.write machine page secret;
  checkb "invisible to DMA" false (Dma_attack.succeeds machine ~secret)

let test_dma_denied_counter () =
  let system = boot () in
  let machine = System.machine system in
  let tz = Machine.trustzone machine in
  Trustzone.with_secure_world tz (fun () ->
      Trustzone.deny_dma tz (Machine.iram_region machine));
  let _, denied = Dma_attack.dump machine ~target:`Iram in
  checkb "all pages denied" true (denied = 256 * Units.kib / 4096)

let test_dma_injection () =
  let system = boot () in
  let machine = System.machine system in
  let frame = Sentry_kernel.Frame_alloc.alloc system.System.frames in
  (match Dma_attack.inject machine ~addr:frame (Bytes.of_string "EVIL") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unprotected write should succeed");
  let tz = Machine.trustzone machine in
  Trustzone.with_secure_world tz (fun () ->
      Trustzone.deny_dma tz (Memmap.region ~base:frame ~size:4096));
  match Dma_attack.inject machine ~addr:frame (Bytes.of_string "EVIL") with
  | Error Dma.Denied -> ()
  | _ -> Alcotest.fail "protected write should be denied"

(* --------------------------- Bus_monitor -------------------------- *)

let test_bus_monitor_payload_capture () =
  let system = boot () in
  let machine = System.machine system in
  let monitor = Bus_monitor.attach machine in
  let frame = Sentry_kernel.Frame_alloc.alloc system.System.frames in
  let secret = Bytes.of_string "WIRE-SECRET-0123456789" in
  Machine.write_uncached machine frame secret;
  checkb "seen on the wire" true (Bus_monitor.saw_secret monitor ~secret);
  Bus_monitor.detach monitor

let test_bus_monitor_misses_onsoc_traffic () =
  let system = boot () in
  let machine = System.machine system in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let monitor = Bus_monitor.attach machine in
  let aes = Sentry.aes sentry in
  ignore (Aes_on_soc.encrypt aes ~iv:(Bytes.make 16 '\000') (Bytes.make 64 'p'));
  checki "zero transactions" 0 (Bus_monitor.transaction_count monitor);
  Bus_monitor.detach monitor

let uncached_victim ~seed =
  let system = boot ~seed () in
  let machine = System.machine system in
  let key = Prng.bytes (Machine.prng machine) 16 in
  let frame = Sentry_kernel.Frame_alloc.alloc system.System.frames in
  let g = Generic_aes.create ~uncached:true machine ~ctx_base:frame ~variant:Perf.Openssl_user in
  Generic_aes.set_key g key;
  let layout = Aes_state.layout Aes_key.Aes_128 in
  let te_base = frame + (Aes_state.find layout "round_table_te").Aes_state.offset in
  (system, machine, g, key, te_base, frame)

let test_first_round_attack_recovers_key () =
  let _, machine, g, key, te_base, _ = uncached_victim ~seed:21 in
  let monitor = Bus_monitor.attach machine in
  let plaintext = Bytes.of_string "attack plaintext" in
  ignore (Generic_aes.encrypt_instrumented g ~iv:(Bytes.make 16 '\000') plaintext);
  (match Bus_monitor.recover_key_first_round monitor ~table_base:te_base ~plaintext with
  | Some k -> check_bytes "exact key" key k
  | None -> Alcotest.fail "no recovery");
  Bus_monitor.detach monitor

let test_first_round_attack_needs_traffic () =
  let _, machine, _, _, te_base, _ = uncached_victim ~seed:22 in
  let monitor = Bus_monitor.attach machine in
  checkb "nothing to recover" true
    (Bus_monitor.recover_key_first_round monitor ~table_base:te_base
       ~plaintext:(Bytes.make 16 'x')
    = None);
  Bus_monitor.detach monitor

let cached_victim ~seed =
  let system = boot ~seed () in
  let machine = System.machine system in
  let key = Prng.bytes (Machine.prng machine) 16 in
  let frame = Sentry_kernel.Frame_alloc.alloc system.System.frames in
  let g = Generic_aes.create machine ~ctx_base:frame ~variant:Perf.Openssl_user in
  Generic_aes.set_key g key;
  let layout = Aes_state.layout Aes_key.Aes_128 in
  let te_base = frame + (Aes_state.find layout "round_table_te").Aes_state.offset in
  (machine, g, key, te_base)

let test_cached_attack_candidates_sound () =
  let machine, g, key, te_base = cached_victim ~seed:23 in
  Pl310.flush_masked (Machine.l2 machine);
  let monitor = Bus_monitor.attach machine in
  let plaintext = Bytes.of_string "cached plaintext" in
  ignore (Generic_aes.encrypt_instrumented g ~iv:(Bytes.make 16 '\000') plaintext);
  (match Bus_monitor.recover_key_candidates_cached monitor ~table_base:te_base ~plaintext with
  | Some cands ->
      Array.iteri
        (fun pos c ->
          checkb "true byte in candidates" true (List.mem (Char.code (Bytes.get key pos)) c);
          checkb "some reduction" true (List.length c < 256))
        cands
  | None -> Alcotest.fail "no fills observed");
  Bus_monitor.detach monitor

let test_cached_attack_multisample_converges () =
  let machine, g, key, te_base = cached_victim ~seed:24 in
  let prng = Prng.create ~seed:25 in
  let cands = ref (Array.init 16 (fun _ -> List.init 256 Fun.id)) in
  for _ = 1 to 24 do
    Pl310.flush_masked (Machine.l2 machine);
    let monitor = Bus_monitor.attach machine in
    let plaintext = Prng.bytes prng 16 in
    ignore (Generic_aes.encrypt_instrumented g ~iv:(Bytes.make 16 '\000') plaintext);
    (match Bus_monitor.recover_key_candidates_cached monitor ~table_base:te_base ~plaintext with
    | Some c -> cands := Bus_monitor.intersect_candidates !cands c
    | None -> ());
    Bus_monitor.detach monitor
  done;
  let total = Array.fold_left (fun acc c -> acc + List.length c) 0 !cands in
  checkb "under 3 candidates/byte on average" true (total < 48);
  Array.iteri
    (fun pos c -> checkb "true byte survives" true (List.mem (Char.code (Bytes.get key pos)) c))
    !cands

let test_te_read_indices_order () =
  let _, machine, g, key, te_base, _ = uncached_victim ~seed:26 in
  let monitor = Bus_monitor.attach machine in
  let plaintext = Bytes.make 16 '\000' in
  ignore (Generic_aes.encrypt_instrumented g ~iv:(Bytes.make 16 '\000') plaintext);
  let indices = Bus_monitor.te_read_indices monitor ~table_base:te_base in
  (* with pt = 0, round-1 indices are exactly the key bytes in lookup
     order *)
  let first16 = List.filteri (fun i _ -> i < 16) indices in
  List.iteri
    (fun j idx ->
      let pos = Aes_block.round1_lookup_order.(j) in
      checki "index = key byte" (Char.code (Bytes.get key pos)) idx)
    first16;
  Bus_monitor.detach monitor

(* ------------------------------ Verdict --------------------------- *)

let test_verdict_matrix_matches_table3 () =
  List.iter
    (fun (attack, storage, safe) ->
      let expected = match storage with Verdict.Plain_dram -> false | _ -> true in
      checkb
        (Printf.sprintf "%s vs %s" (Verdict.attack_name attack) (Verdict.storage_name storage))
        expected safe)
    (Verdict.matrix ())

(* ------------------------- Sentry vs attacks ---------------------- *)

let locked_device ?(background = false) ~seed () =
  let system = boot ~seed () in
  let sentry = Sentry.install system (Config.default `Tegra3) in
  let proc = System.spawn system ~name:"victim" ~bytes:(64 * Units.kib) in
  let region = List.hd (Sentry_kernel.Address_space.regions proc.Sentry_kernel.Process.aspace) in
  let secret = Bytes.of_string "USER-DATA-SECRET" in
  System.fill_region system proc region secret;
  Pl310.flush_masked (Machine.l2 (System.machine system));
  Sentry.mark_sensitive sentry proc;
  if background then Sentry.enable_background sentry proc;
  ignore (Sentry.lock sentry);
  (system, sentry, proc, region, secret)

let test_locked_device_resists_all_attacks () =
  (* DMA first (non-destructive), cold boot last *)
  let system, _, _, _, secret = locked_device ~seed:31 () in
  let machine = System.machine system in
  checkb "dma" false (Dma_attack.succeeds machine ~secret);
  checkb "keys invisible to scan" true
    (Cold_boot.recover_keys machine Cold_boot.Os_reboot = []);
  let system, _, _, _, secret = locked_device ~seed:32 () in
  checkb "reflash cold boot" false
    (Cold_boot.succeeds (System.machine system) Cold_boot.Device_reflash ~secret)

let test_background_device_resists_dma_mid_computation () =
  let system, _, proc, region, secret = locked_device ~background:true ~seed:33 () in
  let machine = System.machine system in
  (* the app computes on its data while locked... *)
  for i = 0 to 15 do
    ignore
      (Sentry_kernel.Vm.read system.System.vm proc
         ~vaddr:(region.Sentry_kernel.Address_space.vstart + (i * 4096))
         ~len:16)
  done;
  (* ...and a DMA attack strikes mid-flight *)
  checkb "dma during background" false (Dma_attack.succeeds machine ~secret)

let test_unlocked_device_is_fair_game () =
  (* the paper's main observation: protecting an unlocked device is
     pointless; Sentry only protects the locked state *)
  let system, sentry, proc, region, secret = locked_device ~seed:34 () in
  let machine = System.machine system in
  (match Sentry.unlock sentry ~pin:"1234" with Ok _ -> () | Error _ -> Alcotest.fail "unlock");
  (* user touches their data; it is plaintext again *)
  ignore
    (Sentry_kernel.Vm.read system.System.vm proc
       ~vaddr:region.Sentry_kernel.Address_space.vstart ~len:16);
  Pl310.flush_masked (Machine.l2 machine);
  checkb "unlocked device leaks to DMA (by design)" true (Dma_attack.succeeds machine ~secret)

let () =
  Alcotest.run "sentry_attacks"
    [
      ( "memdump",
        [
          Alcotest.test_case "search" `Quick test_memdump_search;
          Alcotest.test_case "fuzzy" `Quick test_memdump_fuzzy;
          Alcotest.test_case "remanence ratio" `Quick test_memdump_remanence_ratio;
        ] );
      ( "key_finder",
        [
          Alcotest.test_case "multiple keys" `Quick test_key_finder_multiple_keys;
          Alcotest.test_case "unaligned" `Quick test_key_finder_unaligned_scan;
          Alcotest.test_case "clean image" `Quick test_key_finder_clean_image;
        ] );
      ( "cold_boot",
        [
          Alcotest.test_case "warm reads dram" `Quick test_cold_boot_warm_reads_dram;
          Alcotest.test_case "2s destroys" `Quick test_cold_boot_two_second_destroys;
          Alcotest.test_case "iram safe" `Quick test_cold_boot_iram_safe;
          Alcotest.test_case "recovers generic key" `Quick test_cold_boot_recovers_generic_key;
          Alcotest.test_case "misses on-soc key" `Quick test_cold_boot_misses_onsoc_key;
          Alcotest.test_case "image once, many questions" `Quick
            test_cold_boot_image_once_answers_everything;
          Alcotest.test_case "wrappers agree with image" `Quick
            test_cold_boot_wrappers_agree_with_image;
        ] );
      ( "dma_attack",
        [
          Alcotest.test_case "finds dram secret" `Quick test_dma_dump_finds_dram_secret;
          Alcotest.test_case "misses locked cache" `Quick test_dma_dump_misses_locked_cache;
          Alcotest.test_case "denied counter" `Quick test_dma_denied_counter;
          Alcotest.test_case "injection" `Quick test_dma_injection;
        ] );
      ( "bus_monitor",
        [
          Alcotest.test_case "payload capture" `Quick test_bus_monitor_payload_capture;
          Alcotest.test_case "misses on-soc traffic" `Quick test_bus_monitor_misses_onsoc_traffic;
          Alcotest.test_case "first-round recovery" `Quick test_first_round_attack_recovers_key;
          Alcotest.test_case "needs traffic" `Quick test_first_round_attack_needs_traffic;
          Alcotest.test_case "cached candidates sound" `Quick test_cached_attack_candidates_sound;
          Alcotest.test_case "multi-sample converges" `Quick
            test_cached_attack_multisample_converges;
          Alcotest.test_case "index order" `Quick test_te_read_indices_order;
        ] );
      ("verdict", [ Alcotest.test_case "table 3 matrix" `Quick test_verdict_matrix_matches_table3 ]);
      ( "sentry-vs-attacks",
        [
          Alcotest.test_case "locked device resists" `Quick test_locked_device_resists_all_attacks;
          Alcotest.test_case "background resists DMA" `Quick
            test_background_device_resists_dma_mid_computation;
          Alcotest.test_case "unlocked is fair game" `Quick test_unlocked_device_is_fair_game;
        ] );
    ]
