lib/experiments/exp_fig6_8.mli: Sentry_util
